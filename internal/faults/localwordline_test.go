package faults

import (
	"math/rand"
	"testing"

	"pair/internal/dram"
)

func TestInjectLocalWordlineConfinedToOneMat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		m := dram.NewBurst(16, 8)
		if InjectLocalWordline(rng, m) == 0 {
			t.Fatal("empty local wordline pattern")
		}
		mats := map[int]bool{}
		for pin := 0; pin < m.Pins; pin++ {
			if m.PinSymbol(pin) != 0 {
				mats[pin/MatPins] = true
			}
		}
		if len(mats) != 1 {
			t.Fatalf("local wordline touched %d mats", len(mats))
		}
	}
}

func TestApplyLocalWordlineDeterministicMat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := dram.NewBurst(16, 8)
	ApplyLocalWordline(rng, m, 3)
	for pin := 0; pin < m.Pins; pin++ {
		if m.PinSymbol(pin) != 0 && pin/MatPins != 3 {
			t.Fatalf("mat 3 fault corrupted pin %d", pin)
		}
	}
}

func TestSampleLocalWordlineFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	org := dram.DDR4x16()
	f := Sample(rng, PermanentLocalWordline, org)
	if got := f.FootprintAccesses(org); got != int64(org.Cols) {
		t.Fatalf("footprint %d, want %d (one row)", got, org.Cols)
	}
	if f.Lane < 0 || f.Lane >= org.Pins/MatPins {
		t.Fatalf("mat index %d out of range", f.Lane)
	}
}
