package faults

import (
	"math/rand"
	"testing"

	"pair/internal/dram"
)

func newMask() *dram.Burst { return dram.NewBurst(16, 8) }

func TestKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", k)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestDefaultFITTableSane(t *testing.T) {
	table := DefaultFITTable()
	if len(table) == 0 {
		t.Fatal("empty FIT table")
	}
	seen := map[Kind]bool{}
	for _, e := range table {
		if e.Rate <= 0 {
			t.Fatalf("%v has non-positive rate", e.Kind)
		}
		if seen[e.Kind] {
			t.Fatalf("%v duplicated", e.Kind)
		}
		seen[e.Kind] = true
	}
	if seen[InherentCell] {
		t.Fatal("inherent cells are a rate parameter, not a FIT entry")
	}
}

func TestInjectInherentRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	total, flips := 0, 0
	for trial := 0; trial < 2000; trial++ {
		m := newMask()
		flips += InjectInherent(rng, m, 0.01)
		total += 128
	}
	rate := float64(flips) / float64(total)
	if rate < 0.007 || rate > 0.013 {
		t.Fatalf("observed BER %.4f, want ~0.01", rate)
	}
	m := newMask()
	if InjectInherent(rng, m, 0) != 0 || m.PopCount() != 0 {
		t.Fatal("BER 0 flipped bits")
	}
}

func TestInjectNCells(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 5; n++ {
		m := newMask()
		if got := InjectNCells(rng, m, n); got != n || m.PopCount() != n {
			t.Fatalf("n=%d: injected %d, popcount %d", n, got, m.PopCount())
		}
	}
	// Saturation: more cells than bits.
	m := newMask()
	if got := InjectNCells(rng, m, 1000); got != 128 {
		t.Fatalf("saturated injection = %d, want 128", got)
	}
}

func TestInjectPinConfinedToOnePin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		m := newMask()
		n := InjectPin(rng, m)
		if n == 0 {
			t.Fatal("pin fault flipped nothing")
		}
		pins := map[int]bool{}
		for pin := 0; pin < m.Pins; pin++ {
			if m.PinSymbol(pin) != 0 {
				pins[pin] = true
			}
		}
		if len(pins) != 1 {
			t.Fatalf("pin fault touched %d pins", len(pins))
		}
	}
}

func TestInjectLaneSingleBit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := newMask()
	if InjectLane(rng, m) != 1 || m.PopCount() != 1 {
		t.Fatal("lane fault is not a single bit")
	}
}

func TestInjectBeatConfinedToOneBeat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		m := newMask()
		InjectBeat(rng, m)
		beats := map[int]bool{}
		for pin := 0; pin < m.Pins; pin++ {
			for beat := 0; beat < m.Beats; beat++ {
				if m.Get(pin, beat) {
					beats[beat] = true
				}
			}
		}
		if len(beats) != 1 {
			t.Fatalf("beat fault touched %d beats", len(beats))
		}
	}
}

func TestInjectWordNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		m := newMask()
		if InjectWord(rng, m) == 0 || m.PopCount() == 0 {
			t.Fatal("word fault flipped nothing")
		}
	}
}

func TestInjectPinBurstContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for b := 1; b <= 8; b++ {
		m := newMask()
		if got := InjectPinBurst(rng, m, b); got != b || m.PopCount() != b {
			t.Fatalf("b=%d: injected %d bits", b, m.PopCount())
		}
		// All on one pin, contiguous beats.
		var pin = -1
		beats := []int{}
		for p := 0; p < m.Pins; p++ {
			for beat := 0; beat < m.Beats; beat++ {
				if m.Get(p, beat) {
					if pin == -1 {
						pin = p
					} else if pin != p {
						t.Fatal("pin burst spans pins")
					}
					beats = append(beats, beat)
				}
			}
		}
		for i := 1; i < len(beats); i++ {
			if beats[i] != beats[i-1]+1 {
				t.Fatal("pin burst not contiguous")
			}
		}
	}
	// Over-length burst clamps.
	m := newMask()
	if InjectPinBurst(rng, m, 100) != 8 {
		t.Fatal("over-length pin burst did not clamp")
	}
}

func TestInjectBeatBurstContiguousPins(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for b := 1; b <= 16; b++ {
		m := newMask()
		if got := InjectBeatBurst(rng, m, b); got != b || m.PopCount() != b {
			t.Fatalf("b=%d: injected %d bits", b, m.PopCount())
		}
	}
	m := newMask()
	if InjectBeatBurst(rng, m, 100) != 16 {
		t.Fatal("over-length beat burst did not clamp")
	}
}

func TestSampleFootprints(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	org := dram.DDR4x16()
	cases := []struct {
		kind Kind
		want int64
	}{
		{PermanentCell, 1},
		{PermanentWord, 1},
		{PermanentPin, int64(org.Banks()) * int64(org.Rows) * int64(org.Cols)},
		{PermanentColumn, int64(org.Rows)},
		{PermanentRow, int64(org.Cols)},
		{PermanentBank, int64(org.Rows) * int64(org.Cols)},
	}
	for _, c := range cases {
		f := Sample(rng, c.kind, org)
		if got := f.FootprintAccesses(org); got != c.want {
			t.Fatalf("%v footprint %d, want %d", c.kind, got, c.want)
		}
	}
}

func TestAffects(t *testing.T) {
	f := Fault{Kind: PermanentColumn, Bank: 2, Row: -1, Col: 5}
	if !f.Affects(2, 100, 5) || f.Affects(2, 100, 6) || f.Affects(3, 100, 5) {
		t.Fatal("Affects logic wrong")
	}
}

func TestOverlapAccesses(t *testing.T) {
	org := dram.DDR4x16()
	row := Fault{Kind: PermanentRow, Chip: 0, Bank: 1, Row: 10, Col: -1}
	col := Fault{Kind: PermanentColumn, Chip: 0, Bank: 1, Row: -1, Col: 3}
	if got := row.OverlapAccesses(col, org); got != 1 {
		t.Fatalf("row x column overlap = %d, want 1", got)
	}
	colOtherBank := Fault{Kind: PermanentColumn, Chip: 0, Bank: 2, Row: -1, Col: 3}
	if row.OverlapAccesses(colOtherBank, org) != 0 {
		t.Fatal("different banks overlapped")
	}
	otherChip := Fault{Kind: PermanentColumn, Chip: 1, Bank: 1, Row: -1, Col: 3}
	if row.OverlapAccesses(otherChip, org) != 0 {
		t.Fatal("different chips overlapped at chip level")
	}
	if row.SameRankOverlap(otherChip, org) != 1 {
		t.Fatal("rank-level overlap must ignore chips")
	}
	pin := Fault{Kind: PermanentPin, Chip: 0, Bank: -1, Row: -1, Col: -1}
	if got := pin.OverlapAccesses(row, org); got != int64(org.Cols) {
		t.Fatalf("pin x row overlap = %d, want %d", got, org.Cols)
	}
	cellA := Fault{Kind: PermanentCell, Chip: 0, Bank: 1, Row: 10, Col: 3}
	cellB := Fault{Kind: PermanentCell, Chip: 0, Bank: 1, Row: 10, Col: 3}
	if cellA.OverlapAccesses(cellB, org) != 1 {
		t.Fatal("co-located cells must overlap")
	}
}

func TestApplyToAccessPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	org := dram.DDR4x16()

	cell := Sample(rng, PermanentCell, org)
	m := newMask()
	cell.ApplyToAccess(rng, m)
	if m.PopCount() != 1 {
		t.Fatalf("cell pattern weight %d", m.PopCount())
	}
	// Deterministic position: applying twice cancels.
	cell.ApplyToAccess(rng, m)
	if m.PopCount() != 0 {
		t.Fatal("cell pattern not deterministic")
	}

	pin := Sample(rng, PermanentPin, org)
	m = newMask()
	pin.ApplyToAccess(rng, m)
	touched := 0
	for p := 0; p < 16; p++ {
		if m.PinSymbol(p) != 0 {
			touched++
		}
	}
	if touched != 1 {
		t.Fatalf("pin fault touched %d pins", touched)
	}

	row := Sample(rng, PermanentRow, org)
	m = newMask()
	row.ApplyToAccess(rng, m)
	if m.PopCount() == 0 {
		t.Fatal("row fault produced empty pattern")
	}
}

func TestIsTransient(t *testing.T) {
	if !(Fault{Kind: TransientBit}).IsTransient() {
		t.Fatal("transient bit not transient")
	}
	if (Fault{Kind: PermanentRow}).IsTransient() {
		t.Fatal("row fault transient")
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Kind: PermanentRow, Chip: 1, Bank: 2, Row: 3, Col: -1, Lane: -1}
	if f.String() == "" {
		t.Fatal("empty String")
	}
}
