package faults

import (
	"math/rand"
	"testing"

	"pair/internal/bitvec"
	"pair/internal/dram"
)

// testRank builds a 4-chip rank access shaped like the commodity x16
// schemes' storage images: a 16x8 data burst per chip plus an 8-bit
// on-die region and a 16x1 transferred-redundancy burst, so scenarios
// exercise all three regions.
func testRank() []ChipAccess {
	access := make([]ChipAccess, 4)
	for i := range access {
		access[i] = ChipAccess{
			Data:  dram.NewBurst(16, 8),
			OnDie: bitvec.New(8),
			Xfer:  dram.NewBurst(16, 1),
		}
	}
	return access
}

func rankPopCount(access []ChipAccess) int {
	n := 0
	for i := range access {
		a := &access[i]
		if a.Data != nil {
			n += a.Data.PopCount()
		}
		if a.OnDie != nil {
			n += a.OnDie.PopCount()
		}
		if a.Xfer != nil {
			n += a.Xfer.PopCount()
		}
	}
	return n
}

func chipsTouched(access []ChipAccess) int {
	n := 0
	for i := range access {
		a := access[i]
		if a.Data.PopCount() > 0 || a.OnDie.PopCount() > 0 || a.Xfer.PopCount() > 0 {
			n++
		}
	}
	return n
}

// TestScenarioDeterminism: equal (spec, seed) must produce identical
// corruption across independently built scenario instances — the
// contract that makes campaign results reproducible per fault layer.
func TestScenarioDeterminism(t *testing.T) {
	for _, id := range ScenarioIDs() {
		a1, a2 := testRank(), testRank()
		s1, s2 := MustScenario(id), MustScenario(id)
		r1, r2 := rand.New(rand.NewSource(99)), rand.New(rand.NewSource(99))
		for trial := 0; trial < 50; trial++ {
			n1 := s1.Inject(r1, a1)
			n2 := s2.Inject(r2, a2)
			if n1 != n2 {
				t.Fatalf("%s trial %d: flip counts %d != %d", id, trial, n1, n2)
			}
		}
		for c := range a1 {
			if !a1[c].Data.Equal(a2[c].Data) || !a1[c].OnDie.Equal(a2[c].OnDie) || !a1[c].Xfer.Equal(a2[c].Xfer) {
				t.Fatalf("%s: corruption diverged on chip %d", id, c)
			}
		}
	}
}

// TestScenarioFlipCounts: on a fresh rank, each scenario's return value
// must equal the population count of the corruption it left behind.
// Retention may in principle overlap two clusters (XOR cancellation), so
// it asserts >=; everything else is exact by construction.
func TestScenarioFlipCounts(t *testing.T) {
	for _, id := range ScenarioIDs() {
		sc := MustScenario(id)
		rng := rand.New(rand.NewSource(7))
		exact := id != "retention"
		for trial := 0; trial < 200; trial++ {
			access := testRank()
			n := sc.Inject(rng, access)
			pop := rankPopCount(access)
			if n < 0 {
				t.Fatalf("%s trial %d: negative flip count %d", id, trial, n)
			}
			if exact && pop != n {
				t.Fatalf("%s trial %d: returned %d flips but popcount is %d", id, trial, n, pop)
			}
			if !exact && pop > n {
				t.Fatalf("%s trial %d: popcount %d exceeds reported %d", id, trial, pop, n)
			}
		}
	}
}

// TestScenarioSpatialSignatures pins each builtin scenario's physical
// footprint: which regions it may touch, how many chips, and the shape
// of the corruption inside a chip.
func TestScenarioSpatialSignatures(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	t.Run("pin", func(t *testing.T) {
		sc := MustScenario("pin")
		for trial := 0; trial < 100; trial++ {
			access := testRank()
			sc.Inject(rng, access)
			if got := chipsTouched(access); got != 1 {
				t.Fatalf("pin touched %d chips", got)
			}
			for i := range access {
				a := access[i]
				if a.OnDie.PopCount() != 0 {
					t.Fatal("pin fault reached the on-die region")
				}
				pins := map[int]bool{}
				for pin := 0; pin < 16; pin++ {
					for beat := 0; beat < 8; beat++ {
						if a.Data.Get(pin, beat) {
							pins[pin] = true
						}
					}
					if a.Xfer.Get(pin, 0) {
						pins[pin] = true
					}
				}
				if len(pins) > 1 {
					t.Fatalf("pin fault spread over %d pins", len(pins))
				}
			}
		}
	})

	t.Run("pinburst", func(t *testing.T) {
		sc := MustScenario("pinburst:b=4")
		for trial := 0; trial < 100; trial++ {
			access := testRank()
			if n := sc.Inject(rng, access); n != 4 {
				t.Fatalf("pinburst:b=4 flipped %d bits", n)
			}
			for i := range access {
				a := access[i]
				if a.Data.PopCount() == 0 {
					continue
				}
				// All flips on one pin, on consecutive beats.
				var pin = -1
				first, last := -1, -1
				for p := 0; p < 16; p++ {
					for beat := 0; beat < 8; beat++ {
						if !a.Data.Get(p, beat) {
							continue
						}
						if pin == -1 {
							pin = p
						}
						if p != pin {
							t.Fatal("pinburst spread across pins")
						}
						if first == -1 {
							first = beat
						}
						last = beat
					}
				}
				if last-first != 3 {
					t.Fatalf("pinburst beats not contiguous: first %d last %d", first, last)
				}
			}
		}
	})

	t.Run("beatburst", func(t *testing.T) {
		sc := MustScenario("beatburst:b=8")
		for trial := 0; trial < 100; trial++ {
			access := testRank()
			if n := sc.Inject(rng, access); n != 8 {
				t.Fatalf("beatburst:b=8 flipped %d bits", n)
			}
			for i := range access {
				a := access[i]
				if a.Data.PopCount() == 0 {
					continue
				}
				beats := map[int]int{}
				first, last := 16, -1
				for p := 0; p < 16; p++ {
					for beat := 0; beat < 8; beat++ {
						if a.Data.Get(p, beat) {
							beats[beat]++
							if p < first {
								first = p
							}
							if p > last {
								last = p
							}
						}
					}
				}
				if len(beats) != 1 {
					t.Fatalf("beatburst spread across %d beats", len(beats))
				}
				if last-first != 7 {
					t.Fatalf("beatburst pins not contiguous: first %d last %d", first, last)
				}
			}
		}
	})

	t.Run("chipkill", func(t *testing.T) {
		sc := MustScenario("chipkill:chips=2")
		for trial := 0; trial < 50; trial++ {
			access := testRank()
			sc.Inject(rng, access)
			if got := chipsTouched(access); got != 2 {
				t.Fatalf("chipkill:chips=2 touched %d chips", got)
			}
		}
		// Clamped to the rank size when chips exceeds it.
		access := testRank()
		MustScenario("chipkill:chips=9").Inject(rng, access)
		if got := chipsTouched(access); got != 4 {
			t.Fatalf("chipkill:chips=9 on a 4-chip rank touched %d chips", got)
		}
	})

	t.Run("rowhammer", func(t *testing.T) {
		sc := MustScenario("rowhammer:radius=1")
		for trial := 0; trial < 100; trial++ {
			access := testRank()
			if n := sc.Inject(rng, access); n == 0 {
				t.Fatal("rowhammer flipped nothing")
			}
			for i := range access {
				a := access[i]
				if a.OnDie.PopCount() != 0 || a.Xfer.PopCount() != 0 {
					t.Fatal("rowhammer left the data array")
				}
				var pins []int
				for p := 0; p < 16; p++ {
					for beat := 0; beat < 8; beat++ {
						if a.Data.Get(p, beat) {
							pins = append(pins, p)
							break
						}
					}
				}
				if len(pins) > 0 && pins[len(pins)-1]-pins[0] > 2 {
					t.Fatalf("rowhammer radius=1 spans pins %v", pins)
				}
			}
		}
	})

	t.Run("vrt", func(t *testing.T) {
		always := MustScenario("vrt:flicker=1")
		never := MustScenario("vrt:flicker=0")
		for trial := 0; trial < 50; trial++ {
			access := testRank()
			if n := always.Inject(rng, access); n != 1 {
				t.Fatalf("vrt:flicker=1 flipped %d bits", n)
			}
			if n := never.Inject(rng, access); n != 0 {
				t.Fatalf("vrt:flicker=0 flipped %d bits", n)
			}
		}
	})

	t.Run("inherent", func(t *testing.T) {
		access := testRank()
		total := 0
		for i := range access {
			total += access[i].TotalBits()
		}
		if n := MustScenario("inherent:ber=1").Inject(rng, access); n != total {
			t.Fatalf("inherent:ber=1 flipped %d of %d stored bits", n, total)
		}
		if rankPopCount(access) != total {
			t.Fatal("inherent:ber=1 missed stored bits")
		}
	})

	t.Run("cell", func(t *testing.T) {
		sc := MustScenario("cell:n=3")
		for trial := 0; trial < 100; trial++ {
			access := testRank()
			if n := sc.Inject(rng, access); n != 3 {
				t.Fatalf("cell:n=3 flipped %d bits", n)
			}
			if got := chipsTouched(access); got != 1 {
				t.Fatalf("cell touched %d chips", got)
			}
		}
	})

	t.Run("localwordline", func(t *testing.T) {
		sc := MustScenario("localwordline")
		for trial := 0; trial < 100; trial++ {
			access := testRank()
			sc.Inject(rng, access)
			for i := range access {
				a := access[i]
				var pins []int
				for p := 0; p < 16; p++ {
					for beat := 0; beat < 8; beat++ {
						if a.Data.Get(p, beat) {
							pins = append(pins, p)
							break
						}
					}
				}
				if len(pins) == 0 {
					continue
				}
				if pins[len(pins)-1]-pins[0] >= MatPins || pins[0]/MatPins != pins[len(pins)-1]/MatPins {
					t.Fatalf("localwordline crossed a mat boundary: pins %v", pins)
				}
			}
		}
	})

	t.Run("retention-clusters", func(t *testing.T) {
		// With a saturating population and large clusters the corruption
		// must show pin-adjacent runs, not isolated cells: mean run length
		// strictly above 1.
		sc := MustScenario("retention:pop=0.02,cluster=4")
		runs, flips := 0, 0
		for trial := 0; trial < 50; trial++ {
			access := testRank()
			sc.Inject(rng, access)
			for i := range access {
				a := access[i]
				for beat := 0; beat < 8; beat++ {
					inRun := false
					for p := 0; p < 16; p++ {
						if a.Data.Get(p, beat) {
							flips++
							if !inRun {
								runs++
								inRun = true
							}
						} else {
							inRun = false
						}
					}
				}
			}
		}
		if runs == 0 {
			t.Fatal("retention never seeded at pop=0.02")
		}
		if mean := float64(flips) / float64(runs); mean < 1.5 {
			t.Fatalf("retention clustering absent: mean run length %.2f", mean)
		}
	})

	t.Run("compose", func(t *testing.T) {
		sc := MustScenario("compose(lane,lane)")
		access := testRank()
		if n := sc.Inject(rng, access); n != 2 {
			t.Fatalf("compose(lane,lane) flipped %d bits", n)
		}
	})
}

// TestScenarioDataOnlyAccess: scenarios must tolerate accesses exposing
// only a Data burst (the faultmap CLI renders exactly that view).
func TestScenarioDataOnlyAccess(t *testing.T) {
	for _, id := range ScenarioIDs() {
		sc := MustScenario(id)
		rng := rand.New(rand.NewSource(3))
		access := []ChipAccess{{Data: dram.NewBurst(16, 8)}}
		for trial := 0; trial < 20; trial++ {
			sc.Inject(rng, access) // must not panic
		}
	}
}
