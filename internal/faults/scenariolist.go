package faults

import (
	"fmt"
	"strings"
)

// ListFaultsText renders the scenario registry as the text every CLI
// prints for -list-faults: the spec grammar, one line per scenario and
// the per-scenario option keys. The output is deterministic; CI diffs it
// against the README fault-scenario table so docs cannot drift.
func ListFaultsText() string {
	var b strings.Builder
	b.WriteString("fault spec grammar: name[:key=val,...] or compose(spec,spec,...)   e.g. pinburst:b=4, compose(pin,inherent:ber=1e-5)\n\n")

	b.WriteString("scenarios\n")
	for _, e := range AllScenarios() {
		fmt.Fprintf(&b, "  %-14s %s\n", e.ID, e.Description)
	}

	b.WriteString("\noptions\n")
	for _, e := range AllScenarios() {
		if len(e.Options) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s:\n", e.ID)
		for _, o := range e.Options {
			fmt.Fprintf(&b, "    %-8s %s\n", o.Key, o.Doc)
		}
	}
	return b.String()
}
