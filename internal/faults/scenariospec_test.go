package faults

import (
	"strings"
	"testing"
)

// TestParseFaultSpecCanonical pins the canonical form of representative
// specs and checks the parse∘canonical = identity discipline: parsing
// the canonical form must reproduce it byte-for-byte, since campaign
// labels embed these strings.
func TestParseFaultSpecCanonical(t *testing.T) {
	cases := []struct {
		spec, canonical string
	}{
		{"pin", "pin"},
		{"pinburst:b=4", "pinburst:b=4"},
		{"retention:pop=1e-6,cluster=2.5", "retention:cluster=2.5,pop=1e-6"},
		{"rowhammer:radius=1,rate=0.3", "rowhammer:radius=1,rate=0.3"},
		{"vrt:flicker=0.2", "vrt:flicker=0.2"},
		{"chipkill:chips=2", "chipkill:chips=2"},
		{"inherent:ber=1e-4", "inherent:ber=1e-4"},
		{"compose(pin,inherent:ber=1e-5)", "compose(pin,inherent:ber=1e-5)"},
		{"compose(retention:pop=1e-6,cluster=2.5,pin)", "compose(retention:cluster=2.5,pop=1e-6,pin)"},
		{"compose(compose(pin,lane),vrt:flicker=0.5)", "compose(compose(pin,lane),vrt:flicker=0.5)"},
	}
	for _, c := range cases {
		s, err := ParseFaultSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseFaultSpec(%q): %v", c.spec, err)
		}
		if got := s.String(); got != c.canonical {
			t.Fatalf("canonical of %q = %q, want %q", c.spec, got, c.canonical)
		}
		again, err := ParseFaultSpec(c.canonical)
		if err != nil {
			t.Fatalf("reparse canonical %q: %v", c.canonical, err)
		}
		if got := again.String(); got != c.canonical {
			t.Fatalf("parse∘canonical not identity: %q -> %q", c.canonical, got)
		}
	}
}

// TestParseFaultSpecErrors rejects every malformed shape the grammar
// rules out, with the offending spec quoted in the error.
func TestParseFaultSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		":pop=1",
		"retention:pop",
		"retention:=1",
		"retention:pop=1,pop=2",
		"a:k=v:w",
		"compose",
		"compose:k=1",
		"compose()",
		"compose(pin",
		"compose(pin))",
		"pin)",
		"(pin)",
		"compose(pin,)",
		"compose(compose)",
	} {
		if _, err := ParseFaultSpec(spec); err == nil {
			t.Fatalf("ParseFaultSpec(%q) unexpectedly succeeded", spec)
		}
	}
}

// TestNewScenarioErrors drives registry-level rejection: unknown IDs and
// option keys enumerate the valid choices, and option values are
// range-checked by the constructors.
func TestNewScenarioErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"nosuch", "unknown scenario"},
		{"nosuch", "retention"}, // the error enumerates valid IDs
		{"pin:b=1", "takes no options"},
		{"pinburst:len=4", "does not accept"},
		{"pinburst:b=0", "outside"},
		{"pinburst:b=x", "not an integer"},
		{"inherent:ber=2", "outside"},
		{"retention:cluster=0.5", "outside"},
		{"rowhammer:rate=0", "must be > 0"},
		{"vrt:flicker=nan", "outside"},
		{"compose(pin,nosuch)", "unknown scenario"},
	}
	for _, c := range cases {
		_, err := NewScenario(c.spec)
		if err == nil {
			t.Fatalf("NewScenario(%q) unexpectedly succeeded", c.spec)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("NewScenario(%q) error %q missing %q", c.spec, err, c.want)
		}
	}
}

// TestScenarioSpecRoundTrip checks that every registered scenario's bare
// ID builds and reports itself as its spec, and that option-carrying
// specs surface verbatim through Scenario.Spec.
func TestScenarioSpecRoundTrip(t *testing.T) {
	for _, id := range ScenarioIDs() {
		sc, err := NewScenario(id)
		if err != nil {
			t.Fatalf("NewScenario(%q): %v", id, err)
		}
		if sc.Spec() != id {
			t.Fatalf("Spec() of %q = %q", id, sc.Spec())
		}
	}
	sc := MustScenario("retention:pop=1e-6,cluster=2.5")
	if got, want := sc.Spec(), "retention:cluster=2.5,pop=1e-6"; got != want {
		t.Fatalf("Spec() = %q, want canonical %q", got, want)
	}
}

// TestParseFaultSpecList exercises the list splitting rules: whitespace
// always separates, commas separate unless continuing an option list or
// inside compose parentheses.
func TestParseFaultSpecList(t *testing.T) {
	scs, err := ParseFaultSpecList("pin,retention:pop=1e-5,cluster=2 compose(pin,vrt:flicker=0.5),lane")
	if err != nil {
		t.Fatalf("ParseFaultSpecList: %v", err)
	}
	var specs []string
	for _, sc := range scs {
		specs = append(specs, sc.Spec())
	}
	want := []string{"pin", "retention:cluster=2,pop=1e-5", "compose(pin,vrt:flicker=0.5)", "lane"}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs %v, want %v", len(specs), specs, want)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("spec[%d] = %q, want %q", i, specs[i], want[i])
		}
	}
	if _, err := ParseFaultSpecList("pin,compose(lane"); err == nil {
		t.Fatal("unbalanced compose in a list unexpectedly accepted")
	}
}

// TestComposeProgrammatic checks the Compose combinator's canonical spec
// and its degenerate forms.
func TestComposeProgrammatic(t *testing.T) {
	if Compose() != nil {
		t.Fatal("Compose() should be nil (no ambient corruption)")
	}
	pin := MustScenario("pin")
	if got := Compose(pin); got != pin {
		t.Fatal("Compose of one scenario should be that scenario")
	}
	c := Compose(pin, MustScenario("inherent:ber=1e-5"))
	if got, want := c.Spec(), "compose(pin,inherent:ber=1e-5)"; got != want {
		t.Fatalf("Compose spec = %q, want %q", got, want)
	}
	// The combinator's spec must round-trip through the grammar.
	rebuilt, err := NewScenario(c.Spec())
	if err != nil {
		t.Fatalf("rebuilding %q: %v", c.Spec(), err)
	}
	if rebuilt.Spec() != c.Spec() {
		t.Fatalf("round-trip spec %q != %q", rebuilt.Spec(), c.Spec())
	}
}

// TestListFaultsTextMentionsEverything mirrors the schemes listing test:
// every registered scenario and every documented option key must appear.
func TestListFaultsTextMentionsEverything(t *testing.T) {
	text := ListFaultsText()
	if !strings.Contains(text, composeID+"(") {
		t.Fatal("ListFaultsText missing the compose combinator")
	}
	for _, e := range AllScenarios() {
		if !strings.Contains(text, e.ID) {
			t.Fatalf("ListFaultsText missing scenario %q", e.ID)
		}
		for _, o := range e.Options {
			if !strings.Contains(text, o.Key) {
				t.Fatalf("ListFaultsText missing option %q of %q", o.Key, e.ID)
			}
		}
	}
}
