package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Fault-scenario spec grammar, with the same canonical-form/ID-stability
// discipline as schemes.ParseSpec:
//
//	name[:key=val,...]
//	compose(spec,spec,...)
//
// where name is a registered scenario ID and the key=val options are
// interpreted by the scenario's constructor hook. compose nests freely.
// Examples:
//
//	retention:pop=1e-6,cluster=2.5
//	rowhammer:radius=1,rate=0.3
//	compose(pin,inherent:ber=1e-5)
//
// The canonical form (ScenarioSpec.String) sorts option keys and keeps
// the raw option values; parsing the canonical form reproduces the spec
// exactly, which keeps campaign labels embedding a spec stable.

// composeID is the grammar keyword for scenario composition; no scenario
// may register under it.
const composeID = "compose"

// ScenarioSpec is a parsed fault-scenario spec. Leaf specs carry an ID
// and options; compose specs carry ID "compose" and the child specs.
type ScenarioSpec struct {
	// ID is the registered scenario identifier, or "compose".
	ID string
	// Options holds the key=val options of a leaf spec, if any.
	Options map[string]string
	// Parts holds the children of a compose spec, in injection order.
	Parts []ScenarioSpec
}

// ParseFaultSpec parses the fault-scenario spec grammar. It only
// validates the syntax; Build resolves the ID and options against the
// registry.
func ParseFaultSpec(spec string) (ScenarioSpec, error) {
	if strings.HasPrefix(spec, composeID+"(") {
		if !strings.HasSuffix(spec, ")") {
			return ScenarioSpec{}, fmt.Errorf("faults: unterminated compose in spec %q", spec)
		}
		inner := spec[len(composeID)+1 : len(spec)-1]
		if inner == "" {
			return ScenarioSpec{}, fmt.Errorf("faults: empty compose in spec %q", spec)
		}
		parts, err := splitFaultSpecs(inner)
		if err != nil {
			return ScenarioSpec{}, fmt.Errorf("faults: %v in spec %q", err, spec)
		}
		s := ScenarioSpec{ID: composeID}
		for _, p := range parts {
			child, err := ParseFaultSpec(p)
			if err != nil {
				return ScenarioSpec{}, err
			}
			s.Parts = append(s.Parts, child)
		}
		return s, nil
	}
	if strings.ContainsAny(spec, "()") {
		return ScenarioSpec{}, fmt.Errorf("faults: malformed spec %q (parentheses only follow %q)", spec, composeID)
	}
	s := ScenarioSpec{}
	head := spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		head = spec[:i]
		opts := spec[i+1:]
		if strings.IndexByte(opts, ':') >= 0 {
			// One ':' per leaf keeps every canonical form reparseable when
			// embedded in compose(...) argument lists.
			return ScenarioSpec{}, fmt.Errorf("faults: malformed spec %q (only one ':' allowed)", spec)
		}
		s.Options = map[string]string{}
		for _, kv := range strings.Split(opts, ",") {
			k, v, found := strings.Cut(kv, "=")
			if !found || k == "" {
				return ScenarioSpec{}, fmt.Errorf("faults: malformed option %q in spec %q (want key=val)", kv, spec)
			}
			if _, dup := s.Options[k]; dup {
				return ScenarioSpec{}, fmt.Errorf("faults: duplicate option %q in spec %q", k, spec)
			}
			s.Options[k] = v
		}
	}
	if head == "" {
		return ScenarioSpec{}, fmt.Errorf("faults: empty scenario name in spec %q", spec)
	}
	if head == composeID {
		return ScenarioSpec{}, fmt.Errorf("faults: %q needs a parenthesized spec list in spec %q", composeID, spec)
	}
	s.ID = head
	return s, nil
}

// String renders the spec in canonical form: options sorted by key with
// their raw values, compose children joined in order.
func (s ScenarioSpec) String() string {
	var b strings.Builder
	if s.ID == composeID {
		b.WriteString(composeID)
		b.WriteByte('(')
		for i, p := range s.Parts {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(p.String())
		}
		b.WriteByte(')')
		return b.String()
	}
	b.WriteString(s.ID)
	if len(s.Options) > 0 {
		keys := make([]string, 0, len(s.Options))
		for k := range s.Options {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sep := byte(':')
		for _, k := range keys {
			b.WriteByte(sep)
			sep = ','
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(s.Options[k])
		}
	}
	return b.String()
}

// Build resolves the spec against the scenario registry and constructs
// the scenario. The built scenario's Spec() is this spec's canonical
// form.
func (s ScenarioSpec) Build() (Scenario, error) {
	if s.ID == composeID {
		if len(s.Parts) == 0 {
			return nil, fmt.Errorf("faults: empty compose spec")
		}
		children := make([]Scenario, len(s.Parts))
		for i, p := range s.Parts {
			c, err := p.Build()
			if err != nil {
				return nil, err
			}
			children[i] = c
		}
		inject := func(rng *rand.Rand, access []ChipAccess) int {
			n := 0
			for _, c := range children {
				n += c.Inject(rng, access)
			}
			return n
		}
		return &scenarioFunc{spec: s.String(), inject: inject}, nil
	}
	e, ok := LookupScenario(s.ID)
	if !ok {
		return nil, unknownScenarioError(s.ID)
	}
	if err := validateScenarioOptions(e, s.Options); err != nil {
		return nil, err
	}
	fn, err := e.New(s.Options)
	if err != nil {
		return nil, fmt.Errorf("faults: building scenario %q: %w", s.String(), err)
	}
	return &scenarioFunc{spec: s.String(), inject: fn}, nil
}

// NewScenario parses a spec string and builds the scenario it describes.
// Errors enumerate the valid scenario IDs or option keys, all generated
// from the registry.
func NewScenario(spec string) (Scenario, error) {
	s, err := ParseFaultSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// MustScenario is NewScenario, panicking on error; for specs known at
// compile time.
func MustScenario(spec string) Scenario {
	sc, err := NewScenario(spec)
	if err != nil {
		panic(err)
	}
	return sc
}

// BuildScenarios constructs every spec in the list, stopping at the
// first error.
func BuildScenarios(specs []string) ([]Scenario, error) {
	out := make([]Scenario, 0, len(specs))
	for _, spec := range specs {
		sc, err := NewScenario(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// ParseFaultSpecList splits a comma/whitespace-separated spec list and
// builds each entry. Option lists and compose arguments also use commas,
// so a comma continues the current spec when it sits inside parentheses
// or directly follows an option list with another key=val; otherwise it
// separates specs. Whitespace always separates specs.
func ParseFaultSpecList(list string) ([]Scenario, error) {
	specs, err := SplitFaultSpecList(list)
	if err != nil {
		return nil, err
	}
	return BuildScenarios(specs)
}

// SplitFaultSpecList splits a comma/whitespace-separated scenario spec
// list into its individual spec strings, validating only the syntax of
// each — the wire-format helper mirroring schemes.SplitSpecList for
// remote submission.
func SplitFaultSpecList(list string) ([]string, error) {
	var specs []string
	for _, f := range strings.FieldsFunc(list, func(r rune) bool { return r == ' ' || r == '\t' }) {
		parts, err := splitFaultSpecs(f)
		if err != nil {
			return nil, fmt.Errorf("faults: %v in spec list %q", err, list)
		}
		specs = append(specs, parts...)
	}
	for _, spec := range specs {
		if _, err := ParseFaultSpec(spec); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// splitFaultSpecs splits one whitespace-free token into specs on the
// commas that separate specs: commas inside parentheses never split, and
// a top-level comma followed by a bare key=val (no ':' or '(') continues
// the current spec's option list. Unbalanced parentheses are an error so
// a malformed compose cannot silently become several leaf specs.
func splitFaultSpecs(tok string) ([]string, error) {
	var parts []string
	depth, last := 0, 0
	for i := 0; i < len(tok); i++ {
		switch tok[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced %q", ")")
			}
		case ',':
			if depth == 0 {
				parts = append(parts, tok[last:i])
				last = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced %q", "(")
	}
	parts = append(parts, tok[last:])

	var out []string
	cur, started := "", false
	for _, p := range parts {
		switch {
		case !started:
			cur, started = p, true
		case strings.Contains(cur, ":") && strings.Contains(p, "=") && !strings.ContainsAny(p, ":("):
			// continuing the current spec's option list
			cur += "," + p
		default:
			out = append(out, cur)
			cur = p
		}
	}
	if started {
		out = append(out, cur)
	}
	return out, nil
}
