package faults

import (
	"fmt"
	"math/rand"

	"pair/internal/dram"
)

// Fault is a device-level permanent (or transient single-bit) fault with a
// geometric footprint inside one chip. Wildcard fields use -1 ("all").
type Fault struct {
	Kind Kind
	Chip int   // chip index within the rank
	Bank int   // flat bank index within the chip, or -1 for all banks
	Row  int   // or -1 for all rows
	Col  int   // or -1 for all columns
	Lane int   // bit position within the access for cell/lane faults, else -1
	Seed int64 // per-fault seed: deterministic "random" corruption patterns
}

// Sample draws a fault of the given kind with a uniformly random footprint
// in a chip of the organization. The chip index is also drawn uniformly
// over the data chips.
func Sample(rng *rand.Rand, kind Kind, org dram.Organization) Fault {
	f := Fault{
		Kind: kind,
		Chip: rng.Intn(org.ChipsPerRank),
		Bank: rng.Intn(org.Banks()),
		Row:  rng.Intn(org.Rows),
		Col:  rng.Intn(org.Cols),
		Lane: rng.Intn(org.AccessBits()),
		Seed: rng.Int63(),
	}
	switch kind {
	case InherentCell, TransientBit, PermanentCell:
		// point fault: all coordinates fixed
	case PermanentWord:
		f.Lane = -1
	case PermanentPin:
		f.Bank, f.Row, f.Col = -1, -1, -1
		f.Lane = rng.Intn(org.Pins) // reuse Lane as the pin index
	case PermanentColumn:
		f.Row = -1
	case PermanentRow:
		f.Col, f.Lane = -1, -1
	case PermanentLocalWordline:
		f.Col = -1
		f.Lane = rng.Intn(org.Pins / MatPins) // reuse Lane as the mat index
	case PermanentBank:
		f.Row, f.Col, f.Lane = -1, -1, -1
	default:
		panic(fmt.Sprintf("faults: cannot sample kind %v", kind))
	}
	return f
}

// FootprintAccesses returns the number of column accesses of the chip the
// fault touches.
func (f Fault) FootprintAccesses(org dram.Organization) int64 {
	banks := int64(1)
	if f.Bank < 0 {
		banks = int64(org.Banks())
	}
	rows := int64(1)
	if f.Row < 0 {
		rows = int64(org.Rows)
	}
	cols := int64(1)
	if f.Col < 0 {
		cols = int64(org.Cols)
	}
	return banks * rows * cols
}

// Affects reports whether the fault touches the access at (bank,row,col)
// of its chip.
func (f Fault) Affects(bank, row, col int) bool {
	if f.Bank >= 0 && f.Bank != bank {
		return false
	}
	if f.Row >= 0 && f.Row != row {
		return false
	}
	if f.Col >= 0 && f.Col != col {
		return false
	}
	return true
}

// OverlapAccesses returns the number of accesses touched by both f and g.
// Faults in different chips never share an access... from the chip's point
// of view; rank-level codes see cross-chip combinations, which the caller
// handles by checking bank/row/col overlap with SameRankOverlap.
func (f Fault) OverlapAccesses(g Fault, org dram.Organization) int64 {
	if f.Chip != g.Chip {
		return 0
	}
	return f.rankOverlap(g, org)
}

// SameRankOverlap returns the number of (bank,row,col) access coordinates
// touched by both faults regardless of chip — the overlap a rank-level
// codeword (which spans all chips at the same coordinates) experiences.
func (f Fault) SameRankOverlap(g Fault, org dram.Organization) int64 {
	return f.rankOverlap(g, org)
}

func (f Fault) rankOverlap(g Fault, org dram.Organization) int64 {
	banks := overlap1D(f.Bank, g.Bank, org.Banks())
	rows := overlap1D(f.Row, g.Row, org.Rows)
	cols := overlap1D(f.Col, g.Col, org.Cols)
	return banks * rows * cols
}

// overlap1D returns the size of the intersection of two (possibly
// wildcard) coordinates over a domain of n values.
func overlap1D(a, b, n int) int64 {
	switch {
	case a < 0 && b < 0:
		return int64(n)
	case a < 0 || b < 0:
		return 1
	case a == b:
		return 1
	default:
		return 0
	}
}

// ApplyToAccess XORs the fault's per-access error pattern into mask. The
// access is assumed to be inside the fault's footprint. Patterns that are
// "random garbage" in the model (word/row/bank faults) are drawn from rng;
// structural patterns (cell, lane, pin) are deterministic.
func (f Fault) ApplyToAccess(rng *rand.Rand, mask *dram.Burst) {
	switch f.Kind {
	case InherentCell, TransientBit, PermanentCell:
		mask.Flip(f.Lane%mask.Pins, (f.Lane/mask.Pins)%mask.Beats)
	case PermanentColumn:
		mask.Flip(f.Lane%mask.Pins, (f.Lane/mask.Pins)%mask.Beats)
	case PermanentPin:
		pin := f.Lane % mask.Pins
		n := 0
		for n == 0 {
			for beat := 0; beat < mask.Beats; beat++ {
				if rng.Intn(2) == 1 {
					mask.Flip(pin, beat)
					n++
				}
			}
		}
	case PermanentLocalWordline:
		injectLocalWordlineAt(rng, mask, f.Lane%(mask.Pins/MatPins))
	case PermanentWord, PermanentRow, PermanentBank:
		n := 0
		for n == 0 {
			for pin := 0; pin < mask.Pins; pin++ {
				for beat := 0; beat < mask.Beats; beat++ {
					if rng.Intn(2) == 1 {
						mask.Flip(pin, beat)
						n++
					}
				}
			}
		}
	default:
		panic(fmt.Sprintf("faults: cannot apply kind %v", f.Kind))
	}
}

// IsTransient reports whether scrubbing removes the fault.
func (f Fault) IsTransient() bool { return f.Kind == TransientBit }

// String renders the fault for logs.
func (f Fault) String() string {
	return fmt.Sprintf("%v chip%d bank%d row%d col%d lane%d", f.Kind, f.Chip, f.Bank, f.Row, f.Col, f.Lane)
}
