package faults

import "testing"

// FuzzParseFaultSpec is the parse-or-reject property of the fault-spec
// grammar: no input may panic the parser, and any accepted spec must
// satisfy parse∘canonical = identity — the canonical form reparses to
// the same canonical form, since campaign labels embed it. Rebuilding
// through the registry must also never panic (errors are fine: most
// random IDs are unregistered).
func FuzzParseFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"pin",
		"pinburst:b=4",
		"retention:pop=1e-6,cluster=2.5",
		"rowhammer:radius=1,rate=0.3",
		"vrt:flicker=0.2",
		"chipkill:chips=2",
		"inherent:ber=1e-4",
		"compose(pin,inherent:ber=1e-5)",
		"compose(compose(pin,lane),vrt)",
		"compose(retention:pop=1e-6,cluster=2.5,pin)",
		"compose",
		"compose()",
		"a:k=v:w",
		"a,b",
		"x:=",
		"((((",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseFaultSpec(spec)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		canon := s.String()
		again, err := ParseFaultSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q of accepted spec %q fails to reparse: %v", canon, spec, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("parse∘canonical not identity: %q reparsed to %q", canon, got)
		}
		if sc, err := s.Build(); err == nil && sc.Spec() != canon {
			t.Fatalf("built scenario spec %q != canonical %q", sc.Spec(), canon)
		}
	})
}
