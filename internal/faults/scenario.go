package faults

// This file is the scenario registry: field-realistic fault scenarios as
// self-registering entries, mirroring the scheme registry in
// internal/schemes. A scenario is a seeded per-trial corruption of one
// rank access — from inherent weak-cell noise through retention-failure
// clusters, row-hammer disturbance and variable-retention-time flicker up
// to whole-chip kills — addressable by a spec string (see
// scenariospec.go) so the -faults flag, the F13 experiment table and the
// differential strength/weakness suite all draw from one source of truth.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"pair/internal/bitvec"
	"pair/internal/dram"
)

// ChipAccess is a scenario's view of one chip's contribution to a
// protected access, mirroring the three storage regions of ecc.ChipImage
// (which this package cannot import without a cycle):
//
//   - Data: the bits that cross the DQ pins during the burst.
//   - OnDie: redundancy that never leaves the die (in-DRAM check bits).
//     Array faults reach it; interface faults never do.
//   - Xfer: redundancy that crosses the pins on extension beats.
//
// Unused regions are nil; scenarios must tolerate any of the three being
// absent (the faultmap CLI renders Data-only accesses).
type ChipAccess struct {
	Data  *dram.Burst
	OnDie *bitvec.Vec
	Xfer  *dram.Burst
}

// TotalBits returns the number of stored bits the access exposes.
func (a *ChipAccess) TotalBits() int {
	n := 0
	if a.Data != nil {
		n += a.Data.Pins * a.Data.Beats
	}
	if a.OnDie != nil {
		n += a.OnDie.Len()
	}
	if a.Xfer != nil {
		n += a.Xfer.Pins * a.Xfer.Beats
	}
	return n
}

// flipBit flips stored bit idx, indexing Data, then OnDie, then Xfer —
// the same region order ecc uses for its global stored-bit indices.
func (a *ChipAccess) flipBit(idx int) {
	if a.Data != nil {
		n := a.Data.Pins * a.Data.Beats
		if idx < n {
			a.Data.Flip(idx%a.Data.Pins, idx/a.Data.Pins)
			return
		}
		idx -= n
	}
	if a.OnDie != nil {
		if idx < a.OnDie.Len() {
			a.OnDie.Flip(idx)
			return
		}
		idx -= a.OnDie.Len()
	}
	a.Xfer.Flip(idx%a.Xfer.Pins, idx/a.Xfer.Pins)
}

// Scenario is one registered fault scenario instance. Inject corrupts a
// rank access (one ChipAccess per chip, data chips first) using only the
// given RNG, and returns the number of bit positions it XORed. An
// instance holds no per-trial state, so one Scenario value is safe for
// concurrent use from campaign shard workers, and equal (spec, RNG
// stream) always produce the same corruption — the determinism contract
// the campaign engine extends down to the fault layer.
type Scenario interface {
	// Spec returns the canonical spec string that rebuilds this scenario
	// (parse∘canonical = identity); campaign labels embed it.
	Spec() string
	// Inject applies one trial's corruption and returns the flip count.
	Inject(rng *rand.Rand, access []ChipAccess) int
}

// InjectFunc is the corruption hook a scenario constructor returns.
type InjectFunc func(rng *rand.Rand, access []ChipAccess) int

// ScenarioEntry is one registered scenario: identity, documentation and
// the constructor hook that validates options and builds the injector.
type ScenarioEntry struct {
	// ID is the canonical scenario identifier ("retention", "pin", ...).
	ID string
	// Description is a one-line summary for listings.
	Description string
	// Options documents the option keys the hook accepts; specs using
	// any other key are rejected before the hook runs.
	Options []OptionDoc
	// New builds the injector from the spec's validated options.
	New func(opts map[string]string) (InjectFunc, error)
}

// OptionDoc documents one option key a scenario's constructor accepts.
type OptionDoc struct {
	Key string
	Doc string
}

// optionKeys returns the documented option keys.
func (e *ScenarioEntry) optionKeys() []string {
	keys := make([]string, len(e.Options))
	for i, o := range e.Options {
		keys[i] = o.Key
	}
	return keys
}

var (
	scenarioRegistry = map[string]*ScenarioEntry{}
	scenarioOrder    []string // registration (presentation) order
)

// RegisterScenario adds a scenario to the registry. It panics on a
// duplicate or malformed entry — registration happens in init functions,
// where a panic is a build-time error. IDs must stay inside the spec
// grammar's name alphabet (lowercase letters, digits, '-') so every
// registered scenario remains addressable by spec.
func RegisterScenario(e ScenarioEntry) {
	if e.ID == "" || e.New == nil {
		panic("faults: scenario entry needs an ID and a constructor")
	}
	if e.ID == composeID {
		panic(fmt.Sprintf("faults: scenario ID %q is reserved by the spec grammar", composeID))
	}
	for _, r := range e.ID {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			panic(fmt.Sprintf("faults: scenario ID %q outside the spec name alphabet [a-z0-9-]", e.ID))
		}
	}
	if _, dup := scenarioRegistry[e.ID]; dup {
		panic(fmt.Sprintf("faults: duplicate scenario %q", e.ID))
	}
	cp := e
	scenarioRegistry[e.ID] = &cp
	scenarioOrder = append(scenarioOrder, e.ID)
}

// LookupScenario returns the entry registered under id.
func LookupScenario(id string) (*ScenarioEntry, bool) {
	e, ok := scenarioRegistry[id]
	return e, ok
}

// ScenarioIDs returns every registered scenario ID in registration order.
func ScenarioIDs() []string {
	return append([]string(nil), scenarioOrder...)
}

// AllScenarios returns every registered entry in registration order.
func AllScenarios() []*ScenarioEntry {
	out := make([]*ScenarioEntry, len(scenarioOrder))
	for i, id := range scenarioOrder {
		out[i] = scenarioRegistry[id]
	}
	return out
}

// unknownScenarioError builds the error for an unregistered scenario ID;
// the valid-ID list is generated from the registry so it cannot drift.
func unknownScenarioError(id string) error {
	return fmt.Errorf("faults: unknown scenario %q (valid: %s)", id, strings.Join(scenarioOrder, "|"))
}

// validateScenarioOptions checks that every option key of a spec is
// documented by the entry.
func validateScenarioOptions(e *ScenarioEntry, opts map[string]string) error {
	if len(opts) == 0 {
		return nil
	}
	allowed := map[string]bool{}
	for _, k := range e.optionKeys() {
		allowed[k] = true
	}
	var bad []string
	for k := range opts {
		if !allowed[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	keys := e.optionKeys()
	if len(keys) == 0 {
		return fmt.Errorf("faults: scenario %q takes no options, got %s", e.ID, strings.Join(bad, ","))
	}
	return fmt.Errorf("faults: scenario %q does not accept option(s) %s (valid: %s)",
		e.ID, strings.Join(bad, ","), strings.Join(keys, "|"))
}

// scenarioFunc is the Scenario implementation every registry build
// returns: a canonical spec string plus the constructor's injector.
type scenarioFunc struct {
	spec   string
	inject InjectFunc
}

func (s *scenarioFunc) Spec() string { return s.spec }

func (s *scenarioFunc) Inject(rng *rand.Rand, access []ChipAccess) int {
	return s.inject(rng, access)
}

// Compose combines scenarios into one that injects each in order per
// trial — the programmatic form of the compose(a,b,...) spec. A single
// scenario is returned unchanged; an empty list composes to nil (no
// ambient corruption).
func Compose(scs ...Scenario) Scenario {
	switch len(scs) {
	case 0:
		return nil
	case 1:
		return scs[0]
	}
	spec := composeID + "("
	for i, sc := range scs {
		if i > 0 {
			spec += ","
		}
		spec += sc.Spec()
	}
	spec += ")"
	return &scenarioFunc{spec: spec, inject: func(rng *rand.Rand, access []ChipAccess) int {
		n := 0
		for _, sc := range scs {
			n += sc.Inject(rng, access)
		}
		return n
	}}
}
