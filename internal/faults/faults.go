// Package faults models DRAM fault behaviour at the two granularities the
// PAIR evaluation needs.
//
// Access level: injectors that corrupt a single chip access (a
// dram.Burst) with a given pattern — inherent weak-cell flips at a swept
// bit-error rate, single-cell upsets, whole-pin (DQ/TSV) faults, bitline
// lanes, beat faults, and burst errors along or across pins. These drive
// the codeword-level reliability experiments (F1/F2/T2/F6/F7).
//
// Device level: permanent fault records with geometric footprints (which
// accesses of which bank/row/column they touch), FIT rates shaped after
// published field studies, footprint intersection, and per-access error
// pattern synthesis. These drive the lifetime Monte-Carlo (F3), where the
// dangerous events are single faults whose pattern defeats a scheme and
// pairs of faults whose footprints overlap in one access.
package faults

import (
	"fmt"
	"math/rand"

	"pair/internal/dram"
)

// Kind enumerates the fault classes of the model.
type Kind int

const (
	// InherentCell is a process-scaling weak cell: a random single bit,
	// present from manufacturing, at a per-bit rate swept by experiments.
	InherentCell Kind = iota
	// TransientBit is a soft single-bit upset; scrubbing removes it.
	TransientBit
	// PermanentCell is a hard single-cell fault (one bit of one access).
	PermanentCell
	// PermanentWord corrupts one whole column access (random pattern).
	PermanentWord
	// PermanentPin kills one DQ pin of a chip: every access loses that
	// pin's symbol (TSV/bond-wire/IO driver failures).
	PermanentPin
	// PermanentColumn is a bitline fault: one bit lane of every access at
	// one column address of one bank.
	PermanentColumn
	// PermanentRow is a full wordline fault: every access of one row of
	// one bank returns garbage.
	PermanentRow
	// PermanentLocalWordline is a mat-local wordline fault: every access
	// of one row is corrupted only in the MatPins pins the failing mat
	// feeds. Scaled DRAM breaks rows at mat granularity more often than
	// whole-row; the locality is what pin-aligned codewords exploit.
	PermanentLocalWordline
	// PermanentBank is a local-decoder/sense-amp fault: every access of
	// one bank is suspect (random corruption per access).
	PermanentBank
	numKinds
)

// NumKinds is the number of fault kinds.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case InherentCell:
		return "inherent-cell"
	case TransientBit:
		return "transient-bit"
	case PermanentCell:
		return "permanent-cell"
	case PermanentWord:
		return "permanent-word"
	case PermanentPin:
		return "permanent-pin"
	case PermanentColumn:
		return "permanent-column"
	case PermanentRow:
		return "permanent-row"
	case PermanentLocalWordline:
		return "permanent-local-wordline"
	case PermanentBank:
		return "permanent-bank"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FITEntry is a failure-in-time rate (failures per 10^9 device-hours) for
// one fault kind of one chip.
type FITEntry struct {
	Kind Kind
	Rate float64
}

// DefaultFITTable returns per-chip FIT rates shaped after the published
// field studies this literature cites (Sridharan et al.). The absolute
// values set the x-axis scale of the lifetime experiment; the scheme
// ordering the paper claims depends on the *mix* (distributed cell faults
// dominate, pattern faults are significant), which these preserve.
func DefaultFITTable() []FITEntry {
	return []FITEntry{
		{TransientBit, 14.2},
		{PermanentCell, 18.6},
		{PermanentWord, 1.4},
		{PermanentPin, 2.0},
		{PermanentColumn, 5.1},
		{PermanentRow, 4.8},
		{PermanentLocalWordline, 4.0},
		{PermanentBank, 10.0},
	}
}

// --- Access-level injectors -------------------------------------------
//
// Each injector XORs an error pattern into mask (a zeroed Burst of the
// chip-access shape) and returns the number of bits flipped.

// InjectInherent flips each bit independently with probability ber.
func InjectInherent(rng *rand.Rand, mask *dram.Burst, ber float64) int {
	n := 0
	for pin := 0; pin < mask.Pins; pin++ {
		for beat := 0; beat < mask.Beats; beat++ {
			if rng.Float64() < ber {
				mask.Flip(pin, beat)
				n++
			}
		}
	}
	return n
}

// InjectNCells flips exactly n distinct random bits.
func InjectNCells(rng *rand.Rand, mask *dram.Burst, n int) int {
	total := mask.Pins * mask.Beats
	if n > total {
		n = total
	}
	perm := rng.Perm(total)
	for _, idx := range perm[:n] {
		mask.Flip(idx%mask.Pins, idx/mask.Pins)
	}
	return n
}

// InjectPin corrupts one random pin: each of its beats is replaced by a
// random value, guaranteeing at least one flipped bit. Returns flips.
func InjectPin(rng *rand.Rand, mask *dram.Burst) int {
	return injectPinAt(rng, mask, rng.Intn(mask.Pins))
}

func injectPinAt(rng *rand.Rand, mask *dram.Burst, pin int) int {
	n := 0
	for n == 0 {
		for beat := 0; beat < mask.Beats; beat++ {
			if rng.Intn(2) == 1 {
				mask.Flip(pin, beat)
				n++
			}
		}
	}
	return n
}

// InjectLane flips one fixed (pin, beat) position — the per-access
// signature of a bitline (column) fault.
func InjectLane(rng *rand.Rand, mask *dram.Burst) int {
	mask.Flip(rng.Intn(mask.Pins), rng.Intn(mask.Beats))
	return 1
}

// InjectBeat corrupts one random beat across all pins (an IO-strobe
// glitch): each pin's bit in that beat flips with probability 1/2, at
// least one flip guaranteed.
func InjectBeat(rng *rand.Rand, mask *dram.Burst) int {
	beat := rng.Intn(mask.Beats)
	n := 0
	for n == 0 {
		for pin := 0; pin < mask.Pins; pin++ {
			if rng.Intn(2) == 1 {
				mask.Flip(pin, beat)
				n++
			}
		}
	}
	return n
}

// InjectWord replaces the whole access with random corruption: every bit
// flips with probability 1/2 (at least one flip guaranteed). The
// returned count is exact: the retry loop only repeats after a pass that
// flipped nothing, which leaves both the mask and the count untouched.
func InjectWord(rng *rand.Rand, mask *dram.Burst) int {
	n := 0
	for n == 0 {
		for pin := 0; pin < mask.Pins; pin++ {
			for beat := 0; beat < mask.Beats; beat++ {
				if rng.Intn(2) == 1 {
					mask.Flip(pin, beat)
					n++
				}
			}
		}
	}
	return n
}

// MatPins is the number of adjacent DQ pins one mat feeds in this model;
// a mat-local wordline fault corrupts exactly these pins of an access.
const MatPins = 2

// InjectLocalWordline corrupts the MatPins adjacent pins of one random
// mat across all beats (each bit flips with probability 1/2, at least one
// flip). Returns the number of flips.
func InjectLocalWordline(rng *rand.Rand, mask *dram.Burst) int {
	return injectLocalWordlineAt(rng, mask, rng.Intn(mask.Pins/MatPins))
}

// ApplyLocalWordline corrupts the pins of the given mat index (for
// device-level faults whose mat is fixed).
func ApplyLocalWordline(rng *rand.Rand, mask *dram.Burst, mat int) int {
	return injectLocalWordlineAt(rng, mask, mat%(mask.Pins/MatPins))
}

// injectLocalWordlineAt corrupts the mat's pins; as in InjectWord, the
// zero-flip retry keeps the returned count equal to the bits flipped.
func injectLocalWordlineAt(rng *rand.Rand, mask *dram.Burst, mat int) int {
	base := mat * MatPins
	n := 0
	for n == 0 {
		for i := 0; i < MatPins; i++ {
			for beat := 0; beat < mask.Beats; beat++ {
				if rng.Intn(2) == 1 {
					mask.Flip(base+i, beat)
					n++
				}
			}
		}
	}
	return n
}

// InjectPinBurst flips b consecutive beats of one random pin — a burst
// error along the pin's serial line, the pattern PAIR's pin alignment
// confines to one symbol. The length clamps to [0, mask.Beats]; like
// every injector it returns the actual number of flipped bits, so a
// non-positive b flips nothing, returns 0 and draws no randomness.
func InjectPinBurst(rng *rand.Rand, mask *dram.Burst, b int) int {
	if b <= 0 {
		return 0
	}
	if b > mask.Beats {
		b = mask.Beats
	}
	pin := rng.Intn(mask.Pins)
	start := rng.Intn(mask.Beats - b + 1)
	for i := 0; i < b; i++ {
		mask.Flip(pin, start+i)
	}
	return b
}

// InjectBeatBurst flips one beat's bit on b consecutive pins — a burst
// across the bus width (crosstalk), the pattern beat-aligned symbols
// confine but pin-aligned symbols spread. The length clamps to
// [0, mask.Pins] and the return value is the actual flip count, exactly
// as for InjectPinBurst.
func InjectBeatBurst(rng *rand.Rand, mask *dram.Burst, b int) int {
	if b <= 0 {
		return 0
	}
	if b > mask.Pins {
		b = mask.Pins
	}
	beat := rng.Intn(mask.Beats)
	start := rng.Intn(mask.Pins - b + 1)
	for i := 0; i < b; i++ {
		mask.Flip(start+i, beat)
	}
	return b
}
