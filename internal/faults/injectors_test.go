package faults

import (
	"math/rand"
	"testing"

	"pair/internal/dram"
)

// TestInjectorFlipCountsExact audits every access-level injector against
// the shared contract: the return value equals the number of bits set in
// a fresh mask, for every injector, shape and trial. This pins the
// subtle retry-loop invariant of InjectWord/InjectLocalWordline (a
// zero-flip pass leaves mask and count untouched) and the burst
// injectors' clamped lengths.
func TestInjectorFlipCountsExact(t *testing.T) {
	shapes := []struct{ pins, beats int }{{16, 8}, {16, 16}, {8, 8}, {4, 8}}
	injectors := []struct {
		name   string
		inject func(*rand.Rand, *dram.Burst) int
	}{
		{"InjectInherent(0.1)", func(r *rand.Rand, m *dram.Burst) int { return InjectInherent(r, m, 0.1) }},
		{"InjectNCells(3)", func(r *rand.Rand, m *dram.Burst) int { return InjectNCells(r, m, 3) }},
		{"InjectPin", InjectPin},
		{"InjectLane", InjectLane},
		{"InjectBeat", InjectBeat},
		{"InjectWord", InjectWord},
		{"InjectLocalWordline", InjectLocalWordline},
		{"InjectPinBurst(4)", func(r *rand.Rand, m *dram.Burst) int { return InjectPinBurst(r, m, 4) }},
		{"InjectPinBurst(64)", func(r *rand.Rand, m *dram.Burst) int { return InjectPinBurst(r, m, 64) }},
		{"InjectBeatBurst(2)", func(r *rand.Rand, m *dram.Burst) int { return InjectBeatBurst(r, m, 2) }},
		{"InjectBeatBurst(64)", func(r *rand.Rand, m *dram.Burst) int { return InjectBeatBurst(r, m, 64) }},
	}
	for _, in := range injectors {
		rng := rand.New(rand.NewSource(5))
		for _, sh := range shapes {
			for trial := 0; trial < 500; trial++ {
				mask := dram.NewBurst(sh.pins, sh.beats)
				n := in.inject(rng, mask)
				if got := mask.PopCount(); got != n {
					t.Fatalf("%s on %dx%d trial %d: returned %d, mask has %d bits",
						in.name, sh.pins, sh.beats, trial, n, got)
				}
			}
		}
	}
}

// TestBurstInjectorDegenerateLengths is the regression for the raw-b
// return: non-positive lengths must flip nothing, return 0 and consume
// no randomness (a caller-visible -len value reaches these via the
// faultmap CLI).
func TestBurstInjectorDegenerateLengths(t *testing.T) {
	for _, b := range []int{0, -1, -3} {
		rng := rand.New(rand.NewSource(1))
		before := rng.Int63()
		rng.Seed(1)
		mask := dram.NewBurst(16, 8)
		if n := InjectPinBurst(rng, mask, b); n != 0 || mask.PopCount() != 0 {
			t.Fatalf("InjectPinBurst(b=%d) = %d with %d bits set", b, n, mask.PopCount())
		}
		if n := InjectBeatBurst(rng, mask, b); n != 0 || mask.PopCount() != 0 {
			t.Fatalf("InjectBeatBurst(b=%d) = %d with %d bits set", b, n, mask.PopCount())
		}
		if got := rng.Int63(); got != before {
			t.Fatalf("degenerate burst length b=%d consumed randomness", b)
		}
	}
}

// TestInjectorSpatialFootprints pins each injector's spatial signature
// on a 16x8 access: the axes it may spread along and the regions of the
// grid it must stay inside.
func TestInjectorSpatialFootprints(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		pinMask := dram.NewBurst(16, 8)
		InjectPin(rng, pinMask)
		assertPinsSpanned(t, "InjectPin", pinMask, 1)

		laneMask := dram.NewBurst(16, 8)
		InjectLane(rng, laneMask)
		if laneMask.PopCount() != 1 {
			t.Fatal("InjectLane must flip exactly one bit")
		}

		beatMask := dram.NewBurst(16, 8)
		InjectBeat(rng, beatMask)
		assertBeatsSpanned(t, "InjectBeat", beatMask, 1)

		lwlMask := dram.NewBurst(16, 8)
		InjectLocalWordline(rng, lwlMask)
		assertPinsSpanned(t, "InjectLocalWordline", lwlMask, MatPins)

		pbMask := dram.NewBurst(16, 8)
		InjectPinBurst(rng, pbMask, 4)
		assertPinsSpanned(t, "InjectPinBurst", pbMask, 1)

		bbMask := dram.NewBurst(16, 8)
		InjectBeatBurst(rng, bbMask, 4)
		assertBeatsSpanned(t, "InjectBeatBurst", bbMask, 1)
	}
}

// assertPinsSpanned fails when the mask's flips span more than width
// adjacent pins.
func assertPinsSpanned(t *testing.T, name string, m *dram.Burst, width int) {
	t.Helper()
	first, last := -1, -1
	for pin := 0; pin < m.Pins; pin++ {
		for beat := 0; beat < m.Beats; beat++ {
			if m.Get(pin, beat) {
				if first == -1 {
					first = pin
				}
				last = pin
				break
			}
		}
	}
	if first == -1 {
		t.Fatalf("%s flipped nothing", name)
	}
	if last-first+1 > width {
		t.Fatalf("%s spans %d pins, want <= %d", name, last-first+1, width)
	}
}

// assertBeatsSpanned fails when the mask's flips span more than width
// beats.
func assertBeatsSpanned(t *testing.T, name string, m *dram.Burst, width int) {
	t.Helper()
	first, last := -1, -1
	for beat := 0; beat < m.Beats; beat++ {
		for pin := 0; pin < m.Pins; pin++ {
			if m.Get(pin, beat) {
				if first == -1 {
					first = beat
				}
				last = beat
				break
			}
		}
	}
	if first == -1 {
		t.Fatalf("%s flipped nothing", name)
	}
	if last-first+1 > width {
		t.Fatalf("%s spans %d beats, want <= %d", name, last-first+1, width)
	}
}
