package faults

import (
	"fmt"
	"math/rand"
	"strconv"

	"pair/internal/dram"
)

// Builtin fault scenarios. Each mirrors the physical reach the
// corresponding ecc injection path established: interface faults (pin,
// bursts, lane, beat) touch only what crosses the pins — Data always,
// Xfer redundancy when present, never OnDie — while array faults
// (retention, row hammer, VRT, cell, chipkill, inherent) reach every
// stored bit including the on-die redundancy, because weak cells do not
// care which logical region they sit in.

func init() {
	RegisterScenario(ScenarioEntry{
		ID:          "inherent",
		Description: "process-scaling weak cells: every stored bit of every chip flips independently at a bit-error rate",
		Options: []OptionDoc{
			{Key: "ber", Doc: "per-bit flip probability in [0,1] (default 1e-4)"},
		},
		New: func(opts map[string]string) (InjectFunc, error) {
			ber, err := optFloat(opts, "ber", 1e-4, 0, 1)
			if err != nil {
				return nil, err
			}
			return func(rng *rand.Rand, access []ChipAccess) int {
				n := 0
				for i := range access {
					n += bernoulliChip(rng, &access[i], ber)
				}
				return n
			}, nil
		},
	})

	RegisterScenario(ScenarioEntry{
		ID:          "retention",
		Description: "retention-failure population: rare weak-cell seeds that fail in clusters along adjacent bit positions",
		Options: []OptionDoc{
			{Key: "pop", Doc: "expected failed-cell fraction in [0,1] (default 1e-4)"},
			{Key: "cluster", Doc: "mean cluster size >= 1 spread along adjacent pins (default 2)"},
		},
		New: func(opts map[string]string) (InjectFunc, error) {
			pop, err := optFloat(opts, "pop", 1e-4, 0, 1)
			if err != nil {
				return nil, err
			}
			cluster, err := optFloat(opts, "cluster", 2, 1, 64)
			if err != nil {
				return nil, err
			}
			seedRate := pop / cluster
			return func(rng *rand.Rand, access []ChipAccess) int {
				n := 0
				for i := range access {
					n += injectRetention(rng, &access[i], seedRate, cluster)
				}
				return n
			}, nil
		},
	})

	RegisterScenario(ScenarioEntry{
		ID:          "vrt",
		Description: "variable retention time: one random stored cell of one chip flickers, flipping with the given probability",
		Options: []OptionDoc{
			{Key: "flicker", Doc: "per-access flip probability of the weak cell, in [0,1] (default 0.2)"},
		},
		New: func(opts map[string]string) (InjectFunc, error) {
			flicker, err := optFloat(opts, "flicker", 0.2, 0, 1)
			if err != nil {
				return nil, err
			}
			return func(rng *rand.Rand, access []ChipAccess) int {
				a := &access[rng.Intn(len(access))]
				idx := rng.Intn(a.TotalBits())
				if rng.Float64() >= flicker {
					return 0
				}
				a.flipBit(idx)
				return 1
			}, nil
		},
	})

	RegisterScenario(ScenarioEntry{
		ID:          "rowhammer",
		Description: "row-hammer disturbance: victim cells clustered around an aggressor wordline position on one chip",
		Options: []OptionDoc{
			{Key: "radius", Doc: "pin distance from the aggressor position that can flip, >= 0 (default 1)"},
			{Key: "rate", Doc: "per-cell flip probability inside the radius, in (0,1] (default 0.25)"},
		},
		New: func(opts map[string]string) (InjectFunc, error) {
			radius, err := optInt(opts, "radius", 1, 0, 1<<20)
			if err != nil {
				return nil, err
			}
			rate, err := optFloat(opts, "rate", 0.25, 0, 1)
			if err != nil {
				return nil, err
			}
			if rate == 0 {
				return nil, fmt.Errorf("option rate must be > 0")
			}
			return func(rng *rand.Rand, access []ChipAccess) int {
				a := &access[rng.Intn(len(access))]
				return injectRowHammer(rng, a.Data, radius, rate)
			}, nil
		},
	})

	RegisterScenario(ScenarioEntry{
		ID:          "cell",
		Description: "hard cell faults: exactly n distinct random stored bits of one chip flip",
		Options: []OptionDoc{
			{Key: "n", Doc: "number of distinct flipped cells, >= 1 (default 1)"},
		},
		New: func(opts map[string]string) (InjectFunc, error) {
			count, err := optInt(opts, "n", 1, 1, 1<<20)
			if err != nil {
				return nil, err
			}
			return func(rng *rand.Rand, access []ChipAccess) int {
				a := &access[rng.Intn(len(access))]
				k := count
				if total := a.TotalBits(); k > total {
					k = total
				}
				for _, idx := range rng.Perm(a.TotalBits())[:k] {
					a.flipBit(idx)
				}
				return k
			}, nil
		},
	})

	RegisterScenario(ScenarioEntry{
		ID:          "pin",
		Description: "DQ pin fault (TSV/bond-wire/IO driver): one pin's lane corrupted in everything crossing the pins",
		New: noOptions(func(rng *rand.Rand, access []ChipAccess) int {
			a := &access[rng.Intn(len(access))]
			return injectPinAccess(rng, a, rng.Intn(a.Data.Pins))
		}),
	})

	RegisterScenario(ScenarioEntry{
		ID:          "pinburst",
		Description: "burst error along one pin's serial line: b consecutive beats flip on one pin of one chip",
		Options: []OptionDoc{
			{Key: "b", Doc: "burst length in beats, >= 1 (default 4)"},
		},
		New: func(opts map[string]string) (InjectFunc, error) {
			b, err := optInt(opts, "b", 4, 1, 1<<20)
			if err != nil {
				return nil, err
			}
			return func(rng *rand.Rand, access []ChipAccess) int {
				a := &access[rng.Intn(len(access))]
				return InjectPinBurst(rng, a.Data, b)
			}, nil
		},
	})

	RegisterScenario(ScenarioEntry{
		ID:          "beatburst",
		Description: "burst error across the bus width (crosstalk): one beat flips on b consecutive pins of one chip",
		Options: []OptionDoc{
			{Key: "b", Doc: "burst length in pins, >= 1 (default 2)"},
		},
		New: func(opts map[string]string) (InjectFunc, error) {
			b, err := optInt(opts, "b", 2, 1, 1<<20)
			if err != nil {
				return nil, err
			}
			return func(rng *rand.Rand, access []ChipAccess) int {
				a := &access[rng.Intn(len(access))]
				return InjectBeatBurst(rng, a.Data, b)
			}, nil
		},
	})

	RegisterScenario(ScenarioEntry{
		ID:          "lane",
		Description: "bitline (column) fault: one fixed (pin, beat) bit of one chip flips",
		New: noOptions(func(rng *rand.Rand, access []ChipAccess) int {
			a := &access[rng.Intn(len(access))]
			return InjectLane(rng, a.Data)
		}),
	})

	RegisterScenario(ScenarioEntry{
		ID:          "beat",
		Description: "IO-strobe glitch: one beat corrupted across all pins of one chip",
		New: noOptions(func(rng *rand.Rand, access []ChipAccess) int {
			a := &access[rng.Intn(len(access))]
			return InjectBeat(rng, a.Data)
		}),
	})

	RegisterScenario(ScenarioEntry{
		ID:          "localwordline",
		Description: "mat-local wordline fault: the adjacent pins one mat feeds corrupted across all beats of one chip",
		New: noOptions(func(rng *rand.Rand, access []ChipAccess) int {
			a := &access[rng.Intn(len(access))]
			return InjectLocalWordline(rng, a.Data)
		}),
	})

	RegisterScenario(ScenarioEntry{
		ID:          "chipkill",
		Description: "whole-chip failure: every stored bit of k distinct chips randomized (data, on-die and transferred redundancy)",
		Options: []OptionDoc{
			{Key: "chips", Doc: "number of simultaneously failing chips, >= 1 (default 1)"},
		},
		New: func(opts map[string]string) (InjectFunc, error) {
			chips, err := optInt(opts, "chips", 1, 1, 1<<20)
			if err != nil {
				return nil, err
			}
			return func(rng *rand.Rand, access []ChipAccess) int {
				k := chips
				if k > len(access) {
					k = len(access)
				}
				n := 0
				for _, c := range rng.Perm(len(access))[:k] {
					n += corruptChipAccess(rng, &access[c])
				}
				return n
			}, nil
		},
	})
}

// noOptions wraps an option-free injector as a constructor hook.
func noOptions(fn InjectFunc) func(opts map[string]string) (InjectFunc, error) {
	return func(opts map[string]string) (InjectFunc, error) {
		return fn, nil
	}
}

// optFloat resolves a float option against [lo, hi] with a default.
func optFloat(opts map[string]string, key string, def, lo, hi float64) (float64, error) {
	raw, ok := opts[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("option %s=%q is not a number", key, raw)
	}
	if !(v >= lo && v <= hi) { // negated so NaN is rejected too
		return 0, fmt.Errorf("option %s=%q outside [%g, %g]", key, raw, lo, hi)
	}
	return v, nil
}

// optInt resolves an integer option against [lo, hi] with a default.
func optInt(opts map[string]string, key string, def, lo, hi int) (int, error) {
	raw, ok := opts[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("option %s=%q is not an integer", key, raw)
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("option %s=%q outside [%d, %d]", key, raw, lo, hi)
	}
	return v, nil
}

// bernoulliChip flips every stored bit of the access independently with
// probability p, all three regions alike, in Data/OnDie/Xfer order.
func bernoulliChip(rng *rand.Rand, a *ChipAccess, p float64) int {
	if p <= 0 {
		return 0
	}
	n := 0
	if a.Data != nil {
		n += InjectInherent(rng, a.Data, p)
	}
	if a.OnDie != nil {
		for i := 0; i < a.OnDie.Len(); i++ {
			if rng.Float64() < p {
				a.OnDie.Flip(i)
				n++
			}
		}
	}
	if a.Xfer != nil {
		n += InjectInherent(rng, a.Xfer, p)
	}
	return n
}

// injectRetention seeds weak cells at seedRate per stored bit and grows
// each seed into a cluster with the given mean size: along adjacent pins
// of the same beat in the burst regions, along adjacent indices in the
// on-die region (clipped at the region edge, so boundary clusters
// truncate instead of wrapping).
func injectRetention(rng *rand.Rand, a *ChipAccess, seedRate, cluster float64) int {
	n := 0
	grow := func() int { return clusterSize(rng, cluster) }
	if a.Data != nil {
		n += retentionBurst(rng, a.Data, seedRate, grow)
	}
	if a.OnDie != nil {
		for i := 0; i < a.OnDie.Len(); i++ {
			if rng.Float64() < seedRate {
				size := grow()
				for j := 0; j < size && i+j < a.OnDie.Len(); j++ {
					a.OnDie.Flip(i + j)
					n++
				}
			}
		}
	}
	if a.Xfer != nil {
		n += retentionBurst(rng, a.Xfer, seedRate, grow)
	}
	return n
}

func retentionBurst(rng *rand.Rand, b *dram.Burst, seedRate float64, grow func() int) int {
	n := 0
	for beat := 0; beat < b.Beats; beat++ {
		for pin := 0; pin < b.Pins; pin++ {
			if rng.Float64() < seedRate {
				size := grow()
				for j := 0; j < size && pin+j < b.Pins; j++ {
					b.Flip(pin+j, beat)
					n++
				}
			}
		}
	}
	return n
}

// clusterSize draws a geometric cluster size with the given mean >= 1,
// capped at 64 so a pathological stream cannot run away.
func clusterSize(rng *rand.Rand, mean float64) int {
	size := 1
	if mean <= 1 {
		return size
	}
	p := 1 - 1/mean
	for size < 64 && rng.Float64() < p {
		size++
	}
	return size
}

// injectRowHammer flips each cell within radius pins of an aggressor
// position with the given rate, retrying until at least one bit flips —
// an access known to sit next to a hammered row is disturbed.
func injectRowHammer(rng *rand.Rand, b *dram.Burst, radius int, rate float64) int {
	center := rng.Intn(b.Pins)
	lo, hi := center-radius, center+radius
	if lo < 0 {
		lo = 0
	}
	if hi > b.Pins-1 {
		hi = b.Pins - 1
	}
	n := 0
	for n == 0 {
		for pin := lo; pin <= hi; pin++ {
			for beat := 0; beat < b.Beats; beat++ {
				if rng.Float64() < rate {
					b.Flip(pin, beat)
					n++
				}
			}
		}
	}
	return n
}

// injectPinAccess corrupts the given pin's lane in everything that
// crosses the pins — the data burst and any transferred redundancy — and
// never the on-die region, which stays inside the die. At least one bit
// flips.
func injectPinAccess(rng *rand.Rand, a *ChipAccess, pin int) int {
	n := 0
	for n == 0 {
		for beat := 0; beat < a.Data.Beats; beat++ {
			if rng.Intn(2) == 1 {
				a.Data.Flip(pin, beat)
				n++
			}
		}
		if a.Xfer != nil && pin < a.Xfer.Pins {
			for beat := 0; beat < a.Xfer.Beats; beat++ {
				if rng.Intn(2) == 1 {
					a.Xfer.Flip(pin, beat)
					n++
				}
			}
		}
	}
	return n
}

// corruptChipAccess randomizes the whole chip access (each stored bit
// flips with probability 1/2, at least one flip) — the chipkill
// signature: data, on-die and transferred redundancy all garbled.
func corruptChipAccess(rng *rand.Rand, a *ChipAccess) int {
	n := 0
	for n == 0 {
		if a.Data != nil {
			n += randomizeBurst(rng, a.Data)
		}
		if a.OnDie != nil {
			for i := 0; i < a.OnDie.Len(); i++ {
				if rng.Intn(2) == 1 {
					a.OnDie.Flip(i)
					n++
				}
			}
		}
		if a.Xfer != nil {
			n += randomizeBurst(rng, a.Xfer)
		}
	}
	return n
}

func randomizeBurst(rng *rand.Rand, b *dram.Burst) int {
	n := 0
	for pin := 0; pin < b.Pins; pin++ {
		for beat := 0; beat < b.Beats; beat++ {
			if rng.Intn(2) == 1 {
				b.Flip(pin, beat)
				n++
			}
		}
	}
	return n
}
