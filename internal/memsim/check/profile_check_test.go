package check_test

import (
	"testing"

	"pair/internal/experiments"
	"pair/internal/memsim"
	"pair/internal/memsim/check"
	"pair/internal/trace"
)

// runBrokenProfile simulates with a deliberately corrupted copy of the
// DDR5-4800 profile while the checker asserts the true profile — the
// DDR5 counterpart of runBroken: a scheduler bug against BL16 occupancy,
// long-CCD spacing or same-bank refresh windows cannot pass unseen.
func runBrokenProfile(t *testing.T, mutate func(*memsim.Profile), wl trace.Workload) *check.Checker {
	t.Helper()
	truth := memsim.MustProfile("ddr5-4800")
	broken := *truth
	mutate(&broken)
	cfg := broken.Config()
	chk := check.ForProfile(truth)
	cfg.Observer = chk
	memsim.MustRun(cfg, wl)
	return chk
}

func TestBrokenDDR5TimingIsCaught(t *testing.T) {
	// One hot line: CAS commands pack at the bus/tCCD floor, where BL16
	// occupancy and same-bank-group spacing bugs surface.
	hotLine := trace.Generate(trace.Params{
		Name: "hot", Requests: 600, Lines: 1, Pattern: trace.Sequential,
		ReadFrac: 1, MeanGap: 0, Window: 8, Seed: 3,
	})
	// Dense random stream: touches every bank continuously, so an access
	// scheduled inside another bank's REFsb blackout happens within a few
	// refresh slots.
	dense := trace.Generate(trace.Params{
		Name: "dense", Requests: 2500, Lines: 1 << 16, Pattern: trace.Random,
		ReadFrac: 0.6, MeanGap: 1, Window: 8, Seed: 4,
	})
	// Sparse long stream: crosses many tREFI boundaries with little load.
	sparse := trace.Generate(trace.Params{
		Name: "sparse", Requests: 1500, Lines: 1 << 16, Pattern: trace.Random,
		ReadFrac: 1, MeanGap: 40, Window: 2, Seed: 5,
	})
	cases := []struct {
		name string
		rule string
		wl   trace.Workload
		mut  func(*memsim.Profile)
	}{
		// A scheduler still assuming DDR4's tCCD_L=6 under-spaces
		// same-bank-group CAS pairs.
		{"short-tCCDL", "tCCD_L", hotLine, func(p *memsim.Profile) { p.Timing.TCCDL = 6 }},
		// A BL8-literal emitter under BL16 occupies the bus for half a
		// burst — the checker's occupancy floor catches it even though
		// the emitted data windows are self-consistent.
		{"bl8-regression", "burst-short", hotLine, func(p *memsim.Profile) { p.Org.BurstLen = 8 }},
		// Ignoring the per-bank refresh blackout schedules CAS/ACT inside
		// the true tRFCsb window of the bank being refreshed.
		{"short-tRFCsb", "tRFCsb", dense, func(p *memsim.Profile) { p.Timing.TRFCSB = 4 }},
		// A drifted tREFI shifts every REFsb off its slot grid.
		{"skewed-tREFI", "tREFIsb-align", dense, func(p *memsim.Profile) { p.Timing.TREFI = 9000 }},
		// Issuing DDR4-style all-bank REFab on a same-bank-refresh part.
		{"refab-on-refsb-part", "refresh-mode", sparse, func(p *memsim.Profile) { p.Refresh = memsim.RefreshAllBank }},
		// Generic PRE/ACT spacing stays enforced under the profile too.
		{"zero-tRP", "tRP", dense, func(p *memsim.Profile) { p.Timing.TRP = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chk := runBrokenProfile(t, tc.mut, tc.wl)
			wantRule(t, chk, tc.rule)
		})
	}
	// Control: the unmutated DDR5 scheduler is clean on every workload.
	for _, wl := range []trace.Workload{hotLine, dense, sparse} {
		chk := runBrokenProfile(t, func(*memsim.Profile) {}, wl)
		if err := chk.Err(); err != nil {
			t.Fatalf("control run on %s flagged: %v", wl.Name, err)
		}
	}
}

// TestCrossProfileSchemesProtocolClean is the cross-profile differential
// acceptance test: every scheme cost model runs clean under the
// profile-parameterized checker on every builtin profile (and a page-
// policy variant), so no scheme's extra traffic depends on DDR4
// assumptions.
func TestCrossProfileSchemesProtocolClean(t *testing.T) {
	profiles := []string{
		"ddr4-2400",
		"ddr5-4800",
		"ddr5-4800:policy=closed",
		"lpddr5-6400",
	}
	wls := []trace.Workload{
		trace.Generate(trace.Params{
			Name: "mix", Requests: 800, Lines: 1 << 16, Pattern: trace.Random,
			ReadFrac: 0.55, MaskedFrac: 0.3, MeanGap: 2, Window: 12, Seed: 11,
		}),
		trace.Generate(trace.Params{
			Name: "stream", Requests: 800, Lines: 1 << 18, Pattern: trace.Sequential,
			ReadFrac: 0.8, MaskedFrac: 0.1, MeanGap: 1, Window: 16, Seed: 12,
		}),
	}
	for _, spec := range profiles {
		prof := memsim.MustProfile(spec)
		for _, s := range experiments.PerfSchemes() {
			for _, wl := range wls {
				cfg := prof.Config()
				cfg.Cost = s.Cost()
				chk := check.ForProfile(prof)
				cfg.Observer = chk
				res := memsim.MustRun(cfg, wl)
				if err := chk.Err(); err != nil {
					t.Fatalf("%s/%s/%s: %v", spec, s.Name(), wl.Name, err)
				}
				if n := len(chk.Violations()); n != 0 {
					t.Fatalf("%s/%s/%s: %d violations", spec, s.Name(), wl.Name, n)
				}
				if res.Reads == 0 {
					t.Fatalf("%s/%s/%s: degenerate run", spec, s.Name(), wl.Name)
				}
			}
		}
	}
}
