// Package check is an independent JEDEC protocol checker and
// observability layer over the memsim command stream.
//
// The timing simulator asserts its constraints implicitly, by
// construction of the scheduler's arithmetic; nothing there can tell you
// when a constraint is silently missing (the class of bug where a timing
// field is defined but never wired into schedule()). The Checker closes
// that loop: it observes the typed ACT/PRE/RD/WR/REF/REFsb command stream
// a run emits through memsim.Config.Observer and re-derives every claimed
// constraint from first principles — per-bank (tRC, tRCD, tRP, tRAS,
// tWR, tRTP), per-rank (tRRD_S, tRRD_L, tFAW), per-bus (tCCD_S, tCCD_L,
// tWTR, tRTW, data-bus overlap, burst occupancy) and refresh (tREFI
// cadence, the tRFC blackout, staggered same-bank tRFCsb windows) —
// reporting each violation with full command context. Because the checker
// shares no code with the scheduler, a bug must be made twice,
// independently, to go unseen.
//
// New asserts a bare DDR4-style timing table over a single-bus stream;
// ForProfile derives everything — burst occupancy, per-subchannel buses,
// refresh mode — from a memsim.Profile instead.
package check

import (
	"fmt"

	"pair/internal/memsim"
)

// Violation is one observed protocol breach.
type Violation struct {
	Rule string         // constraint name, e.g. "tRRD_L"
	Cmd  memsim.Command // the offending command
	Prev memsim.Command // the earlier command establishing the constraint
	Need uint64         // minimum spacing in cycles (0 for state-machine rules)
	Got  int64          // observed spacing (may be negative on ordering bugs)
}

// String renders the violation with command context.
func (v Violation) String() string {
	if v.Need == 0 && v.Got == 0 {
		return fmt.Sprintf("%s: %s (after %s)", v.Rule, v.Cmd, v.Prev)
	}
	return fmt.Sprintf("%s: %s only %d cycles after %s, need %d", v.Rule, v.Cmd, v.Got, v.Prev, v.Need)
}

// seen is a command slot that may not have been observed yet.
type seen struct {
	cmd memsim.Command
	ok  bool
}

func (s *seen) set(c memsim.Command) {
	s.cmd, s.ok = c, true
}

// bankHist is the checker's per-bank state.
type bankHist struct {
	lastACT seen
	lastPRE seen
	lastRD  seen // CAS of the last read (tRTP)
	lastWR  seen // last write; its DataEnd anchors tWR
	open    bool
	everACT bool
}

// Channel-qualified keys: every piece of bus-local state is tracked per
// data bus, so independent subchannels never constrain each other while
// commands sharing a bus still do. Legacy single-bus streams carry
// Channel 0 everywhere and collapse to the old global behavior.
type chanBank struct{ ch, fb int }
type chanRank struct{ ch, rank int }
type chanRankGroup struct{ ch, rank, group int }

// Checker verifies the JEDEC timing constraints of an observed command
// stream. Attach it via memsim.Config.Observer, run, then consult
// Violations or Err. The zero limit keeps the first 32 violations with
// full context; Total always counts all of them.
type Checker struct {
	t   memsim.Timing
	max int

	// Profile-derived stream expectations. minBurst is the clean burst
	// occupancy in cycles (4 for BL8, 8 for BL16); sameBank selects the
	// staggered REFsb refresh discipline re-derived from slotPeriod,
	// numBanks and banksPerGrp.
	minBurst    int
	sameBank    bool
	slotPeriod  uint64
	numBanks    int
	banksPerGrp int

	banks    map[chanBank]*bankHist
	rankACT  map[chanRank]seen      // last ACT per bus+rank (tRRD_S)
	groupACT map[chanRankGroup]seen // last ACT per bus+rank+group (tRRD_L)
	faw      map[chanRank]*[4]seen  // last 4 ACTs per bus+rank, oldest first
	groupCAS map[chanRankGroup]seen // last CAS per bus+rank+group (tCCD_L)
	lastCAS  map[int]seen           // any CAS per bus (tCCD_S)
	lastWR   map[int]seen           // last write per bus (tWTR anchor)
	lastRD   map[int]seen           // last read per bus (tRTW anchor)
	lastData map[int]seen           // last data burst per bus (overlap)
	lastREF  seen
	lastAt   uint64
	started  bool

	commands uint64
	total    int
	viol     []Violation
}

func newChecker(t memsim.Timing) *Checker {
	return &Checker{
		t:        t,
		max:      32,
		minBurst: 4,
		banks:    map[chanBank]*bankHist{},
		rankACT:  map[chanRank]seen{},
		groupACT: map[chanRankGroup]seen{},
		faw:      map[chanRank]*[4]seen{},
		groupCAS: map[chanRankGroup]seen{},
		lastCAS:  map[int]seen{},
		lastWR:   map[int]seen{},
		lastRD:   map[int]seen{},
		lastData: map[int]seen{},
	}
}

// New builds a checker asserting the given timing table over a legacy
// single-bus BL8 stream with all-bank refresh. Pass the same Timing the
// simulated controller runs with to audit the model against its own
// claims, or a reference table to audit one model against another.
func New(t memsim.Timing) *Checker {
	return newChecker(t)
}

// ForProfile builds a checker asserting the profile's timing table with
// the profile's burst occupancy, per-bus constraint scoping and refresh
// mode. The REFsb stagger geometry is re-derived here, independently of
// the scheduler's arithmetic.
func ForProfile(p *memsim.Profile) *Checker {
	c := newChecker(p.Timing)
	c.minBurst = p.BurstCycles(0)
	c.numBanks = p.NumBanks()
	c.banksPerGrp = p.Org.BanksPerGrp
	if p.Refresh == memsim.RefreshSameBank {
		c.sameBank = true
		c.slotPeriod = p.RefSlotPeriod()
	}
	return c
}

// Commands returns the number of commands observed.
func (c *Checker) Commands() uint64 { return c.commands }

// Total returns the total number of violations, including any beyond the
// recorded cap.
func (c *Checker) Total() int { return c.total }

// Violations returns the recorded violations (capped at 32).
func (c *Checker) Violations() []Violation { return c.viol }

// Err summarizes the run: nil when the stream was clean, otherwise an
// error naming the count and the first violation.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	return fmt.Errorf("check: %d protocol violations in %d commands; first: %s",
		c.total, c.commands, c.viol[0])
}

func (c *Checker) add(rule string, prev, cmd memsim.Command, need uint64, got int64) {
	c.total++
	if len(c.viol) < c.max {
		c.viol = append(c.viol, Violation{Rule: rule, Cmd: cmd, Prev: prev, Need: need, Got: got})
	}
}

// require asserts cmd.At >= from+need, where from is a reference point on
// the earlier command prev (its issue time or data end).
func (c *Checker) require(rule string, prev memsim.Command, from uint64, cmd memsim.Command, need int) {
	if cmd.At < from+uint64(need) {
		c.add(rule, prev, cmd, uint64(need), int64(cmd.At)-int64(from))
	}
}

func (c *Checker) bank(ch, fb int) *bankHist {
	k := chanBank{ch, fb}
	b := c.banks[k]
	if b == nil {
		b = &bankHist{}
		c.banks[k] = b
	}
	return b
}

// Observe implements memsim.Observer.
func (c *Checker) Observe(cmd memsim.Command) {
	c.commands++

	// The stream contract: events arrive in non-decreasing time order.
	if c.started && cmd.At < c.lastAt {
		c.add("event-order", memsim.Command{At: c.lastAt}, cmd, 0, int64(cmd.At)-int64(c.lastAt))
	}
	c.started = true
	if cmd.At > c.lastAt {
		c.lastAt = cmd.At
	}

	if cmd.Kind != memsim.CmdREF && cmd.Kind != memsim.CmdREFSB {
		c.checkRefreshBlackout(cmd)
	}

	switch cmd.Kind {
	case memsim.CmdACT:
		c.observeACT(cmd)
	case memsim.CmdPRE:
		c.observePRE(cmd)
	case memsim.CmdRD, memsim.CmdWR:
		c.observeCAS(cmd)
	case memsim.CmdREF, memsim.CmdREFSB:
		c.observeREF(cmd)
	}
}

// checkRefreshBlackout asserts the command lies outside the refresh
// window its mode implies. All-bank: no command may issue inside
// [k*tREFI, k*tREFI+tRFC). Same-bank: a REFsb slot fires every
// slotPeriod cycles rotating through the banks, and only commands to the
// refreshing bank must stay out of [slot, slot+tRFCsb).
func (c *Checker) checkRefreshBlackout(cmd memsim.Command) {
	if c.sameBank {
		bank := uint64(cmd.Addr.Group*c.banksPerGrp + cmd.Addr.Bank)
		g := cmd.At / c.slotPeriod
		if g < bank {
			return
		}
		g -= (g - bank) % uint64(c.numBanks)
		if g == 0 {
			return
		}
		if start := g * c.slotPeriod; cmd.At < start+uint64(c.t.TRFCSB) {
			ref := memsim.Command{Kind: memsim.CmdREFSB, At: start, FlatBank: -1, Addr: cmd.Addr}
			c.require("tRFCsb", ref, start, cmd, c.t.TRFCSB)
		}
		return
	}
	if idx := cmd.At / uint64(c.t.TREFI); idx > 0 {
		start := idx * uint64(c.t.TREFI)
		if cmd.At < start+uint64(c.t.TRFC) {
			ref := memsim.Command{Kind: memsim.CmdREF, At: start, FlatBank: -1}
			c.require("tRFC", ref, start, cmd, c.t.TRFC)
		}
	}
}

func (c *Checker) observeACT(cmd memsim.Command) {
	ch := cmd.Channel
	b := c.bank(ch, cmd.FlatBank)
	if b.open {
		c.add("ACT-on-open-row", b.lastACT.cmd, cmd, 0, 0)
	}
	if b.lastACT.ok {
		c.require("tRC", b.lastACT.cmd, b.lastACT.cmd.At, cmd, c.t.TRC)
	}
	if b.lastPRE.ok {
		c.require("tRP", b.lastPRE.cmd, b.lastPRE.cmd.At, cmd, c.t.TRP)
	}
	rank := chanRank{ch, cmd.Addr.Rank}
	if p := c.rankACT[rank]; p.ok {
		// Any two ACTs in a rank are at least tRRD_S apart; same bank
		// group tightens that to tRRD_L below.
		c.require("tRRD_S", p.cmd, p.cmd.At, cmd, c.t.TRRDS)
	}
	rg := chanRankGroup{ch, cmd.Addr.Rank, cmd.Addr.Group}
	if p := c.groupACT[rg]; p.ok {
		c.require("tRRD_L", p.cmd, p.cmd.At, cmd, c.t.TRRDL)
	}
	ring := c.faw[rank]
	if ring == nil {
		ring = &[4]seen{}
		c.faw[rank] = ring
	}
	if ring[0].ok {
		// This is the 5th ACT counted from ring[0]: at most 4 ACTs may
		// land in any tFAW window.
		c.require("tFAW", ring[0].cmd, ring[0].cmd.At, cmd, c.t.TFAW)
	}
	copy(ring[:], ring[1:])
	ring[3] = seen{}
	ring[3].set(cmd)

	b.lastACT.set(cmd)
	b.open = true
	b.everACT = true
	p := c.rankACT[rank]
	p.set(cmd)
	c.rankACT[rank] = p
	g := c.groupACT[rg]
	g.set(cmd)
	c.groupACT[rg] = g
}

func (c *Checker) observePRE(cmd memsim.Command) {
	b := c.bank(cmd.Channel, cmd.FlatBank)
	if !b.open {
		c.add("PRE-on-closed-bank", b.lastPRE.cmd, cmd, 0, 0)
	}
	if b.lastACT.ok {
		c.require("tRAS", b.lastACT.cmd, b.lastACT.cmd.At, cmd, c.t.TRAS)
	}
	if b.lastWR.ok {
		c.require("tWR", b.lastWR.cmd, b.lastWR.cmd.DataEnd, cmd, c.t.TWR)
	}
	if b.lastRD.ok {
		c.require("tRTP", b.lastRD.cmd, b.lastRD.cmd.At, cmd, c.t.TRTP)
	}
	b.lastPRE.set(cmd)
	b.open = false
}

func (c *Checker) observeCAS(cmd memsim.Command) {
	ch := cmd.Channel
	b := c.bank(ch, cmd.FlatBank)
	if !b.open {
		c.add("CAS-on-closed-bank", b.lastACT.cmd, cmd, 0, 0)
	}
	if b.lastACT.ok {
		c.require("tRCD", b.lastACT.cmd, b.lastACT.cmd.At, cmd, c.t.TRCD)
	}
	if p := c.lastCAS[ch]; p.ok {
		c.require("tCCD_S", p.cmd, p.cmd.At, cmd, c.t.TCCDS)
	}
	rg := chanRankGroup{ch, cmd.Addr.Rank, cmd.Addr.Group}
	if p := c.groupCAS[rg]; p.ok {
		c.require("tCCD_L", p.cmd, p.cmd.At, cmd, c.t.TCCDL)
	}
	isWrite := cmd.Kind == memsim.CmdWR
	if isWrite {
		if p := c.lastRD[ch]; p.ok {
			c.require("tRTW", p.cmd, p.cmd.DataEnd, cmd, c.t.TRTW)
		}
	} else {
		if p := c.lastWR[ch]; p.ok {
			c.require("tWTR", p.cmd, p.cmd.DataEnd, cmd, c.t.TWTR)
		}
	}

	// Data burst well-formedness and bus occupancy.
	casToData := c.t.CL
	rule := "CL"
	if isWrite {
		casToData = c.t.CWL
		rule = "CWL"
	}
	if cmd.DataStart != cmd.At+uint64(casToData) {
		c.add(rule, cmd, cmd, uint64(casToData), int64(cmd.DataStart)-int64(cmd.At))
	}
	if cmd.DataEnd <= cmd.DataStart {
		c.add("empty-burst", cmd, cmd, 0, 0)
	} else if cmd.DataEnd-cmd.DataStart < uint64(c.minBurst) {
		// A full burst occupies BurstLen/2 cycles; a shorter window means
		// the emitter is still assuming a shorter burst length (the BL8
		// literal bug class).
		c.add("burst-short", cmd, cmd, uint64(c.minBurst), int64(cmd.DataEnd)-int64(cmd.DataStart))
	}
	if p := c.lastData[ch]; p.ok && cmd.DataStart < p.cmd.DataEnd {
		c.add("bus-overlap", p.cmd, cmd, 0,
			int64(cmd.DataStart)-int64(p.cmd.DataEnd))
	}

	if isWrite {
		b.lastWR.set(cmd)
		w := c.lastWR[ch]
		w.set(cmd)
		c.lastWR[ch] = w
	} else {
		b.lastRD.set(cmd)
		r := c.lastRD[ch]
		r.set(cmd)
		c.lastRD[ch] = r
	}
	p := c.lastCAS[ch]
	p.set(cmd)
	c.lastCAS[ch] = p
	g := c.groupCAS[rg]
	g.set(cmd)
	c.groupCAS[rg] = g
	d := c.lastData[ch]
	d.set(cmd)
	c.lastData[ch] = d
}

func (c *Checker) observeREF(cmd memsim.Command) {
	if c.sameBank {
		if cmd.Kind == memsim.CmdREF {
			// An all-bank REF in a same-bank profile means the emitter and
			// the profile disagree about the refresh discipline.
			c.add("refresh-mode", memsim.Command{}, cmd, 0, 0)
			return
		}
		if cmd.At%c.slotPeriod != 0 {
			c.add("tREFIsb-align", memsim.Command{}, cmd, 0, int64(cmd.At%c.slotPeriod))
		} else {
			slot := cmd.At / c.slotPeriod
			want := int(slot % uint64(c.numBanks))
			got := cmd.Addr.Group*c.banksPerGrp + cmd.Addr.Bank
			if got != want {
				// The stagger rotation is fixed: slot g refreshes bank
				// g mod banks.
				c.add("REFsb-bank", memsim.Command{}, cmd, uint64(want), int64(got))
			}
		}
	} else {
		if cmd.Kind == memsim.CmdREFSB {
			c.add("refresh-mode", memsim.Command{}, cmd, 0, 0)
			return
		}
		if cmd.At%uint64(c.t.TREFI) != 0 {
			c.add("tREFI-align", memsim.Command{}, cmd, 0, int64(cmd.At%uint64(c.t.TREFI)))
		}
	}
	if c.lastREF.ok && cmd.At <= c.lastREF.cmd.At {
		c.add("tREFI-order", c.lastREF.cmd, cmd, 0, int64(cmd.At)-int64(c.lastREF.cmd.At))
	}
	c.lastREF.set(cmd)
}
