// Package check is an independent JEDEC protocol checker and
// observability layer over the memsim command stream.
//
// The timing simulator asserts its constraints implicitly, by
// construction of the scheduler's arithmetic; nothing there can tell you
// when a constraint is silently missing (the class of bug where a timing
// field is defined but never wired into schedule()). The Checker closes
// that loop: it observes the typed ACT/PRE/RD/WR/REF command stream a
// run emits through memsim.Config.Observer and re-derives every claimed
// constraint from first principles — per-bank (tRC, tRCD, tRP, tRAS,
// tWR, tRTP), per-rank (tRRD_S, tRRD_L, tFAW), channel-wide (tCCD_S,
// tCCD_L, tWTR, tRTW, data-bus overlap) and refresh (tREFI cadence, the
// tRFC blackout window) — reporting each violation with full command
// context. Because the checker shares no code with the scheduler, a bug
// must be made twice, independently, to go unseen.
package check

import (
	"fmt"

	"pair/internal/memsim"
)

// Violation is one observed protocol breach.
type Violation struct {
	Rule string         // constraint name, e.g. "tRRD_L"
	Cmd  memsim.Command // the offending command
	Prev memsim.Command // the earlier command establishing the constraint
	Need uint64         // minimum spacing in cycles (0 for state-machine rules)
	Got  int64          // observed spacing (may be negative on ordering bugs)
}

// String renders the violation with command context.
func (v Violation) String() string {
	if v.Need == 0 && v.Got == 0 {
		return fmt.Sprintf("%s: %s (after %s)", v.Rule, v.Cmd, v.Prev)
	}
	return fmt.Sprintf("%s: %s only %d cycles after %s, need %d", v.Rule, v.Cmd, v.Got, v.Prev, v.Need)
}

// seen is a command slot that may not have been observed yet.
type seen struct {
	cmd memsim.Command
	ok  bool
}

func (s *seen) set(c memsim.Command) {
	s.cmd, s.ok = c, true
}

// bankHist is the checker's per-bank state.
type bankHist struct {
	lastACT seen
	lastPRE seen
	lastRD  seen // CAS of the last read (tRTP)
	lastWR  seen // last write; its DataEnd anchors tWR
	open    bool
	everACT bool
}

type rankGroup struct{ rank, group int }

// Checker verifies the JEDEC timing constraints of an observed command
// stream. Attach it via memsim.Config.Observer, run, then consult
// Violations or Err. The zero limit keeps the first 32 violations with
// full context; Total always counts all of them.
type Checker struct {
	t   memsim.Timing
	max int

	banks    map[int]*bankHist
	rankACT  map[int]seen             // last ACT per rank (tRRD_S)
	groupACT map[rankGroup]seen       // last ACT per rank+group (tRRD_L)
	faw      map[int]*[4]seen         // last 4 ACTs per rank, oldest first
	groupCAS map[rankGroup]seen       // last CAS per rank+group (tCCD_L)
	lastCAS  seen                     // any CAS (tCCD_S)
	lastWR   seen                     // last write anywhere (tWTR anchor)
	lastRD   seen                     // last read anywhere (tRTW anchor)
	lastData seen                     // last data burst (bus overlap)
	lastREF  seen
	lastAt   uint64
	started  bool

	commands uint64
	total    int
	viol     []Violation
}

// New builds a checker asserting the given timing table. Pass the same
// Timing the simulated controller runs with to audit the model against
// its own claims, or a reference table to audit one model against
// another.
func New(t memsim.Timing) *Checker {
	return &Checker{
		t:        t,
		max:      32,
		banks:    map[int]*bankHist{},
		rankACT:  map[int]seen{},
		groupACT: map[rankGroup]seen{},
		faw:      map[int]*[4]seen{},
		groupCAS: map[rankGroup]seen{},
	}
}

// Commands returns the number of commands observed.
func (c *Checker) Commands() uint64 { return c.commands }

// Total returns the total number of violations, including any beyond the
// recorded cap.
func (c *Checker) Total() int { return c.total }

// Violations returns the recorded violations (capped at 32).
func (c *Checker) Violations() []Violation { return c.viol }

// Err summarizes the run: nil when the stream was clean, otherwise an
// error naming the count and the first violation.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	return fmt.Errorf("check: %d protocol violations in %d commands; first: %s",
		c.total, c.commands, c.viol[0])
}

func (c *Checker) add(rule string, prev, cmd memsim.Command, need uint64, got int64) {
	c.total++
	if len(c.viol) < c.max {
		c.viol = append(c.viol, Violation{Rule: rule, Cmd: cmd, Prev: prev, Need: need, Got: got})
	}
}

// require asserts cmd.At >= from+need, where from is a reference point on
// the earlier command prev (its issue time or data end).
func (c *Checker) require(rule string, prev memsim.Command, from uint64, cmd memsim.Command, need int) {
	if cmd.At < from+uint64(need) {
		c.add(rule, prev, cmd, uint64(need), int64(cmd.At)-int64(from))
	}
}

func (c *Checker) bank(fb int) *bankHist {
	b := c.banks[fb]
	if b == nil {
		b = &bankHist{}
		c.banks[fb] = b
	}
	return b
}

// Observe implements memsim.Observer.
func (c *Checker) Observe(cmd memsim.Command) {
	c.commands++

	// The stream contract: events arrive in non-decreasing time order.
	if c.started && cmd.At < c.lastAt {
		c.add("event-order", memsim.Command{At: c.lastAt}, cmd, 0, int64(cmd.At)-int64(c.lastAt))
	}
	c.started = true
	if cmd.At > c.lastAt {
		c.lastAt = cmd.At
	}

	// Refresh blackout: no command may issue inside [k*tREFI, k*tREFI+tRFC).
	if cmd.Kind != memsim.CmdREF {
		if idx := cmd.At / uint64(c.t.TREFI); idx > 0 {
			start := idx * uint64(c.t.TREFI)
			if cmd.At < start+uint64(c.t.TRFC) {
				ref := memsim.Command{Kind: memsim.CmdREF, At: start, FlatBank: -1}
				c.require("tRFC", ref, start, cmd, c.t.TRFC)
			}
		}
	}

	switch cmd.Kind {
	case memsim.CmdACT:
		c.observeACT(cmd)
	case memsim.CmdPRE:
		c.observePRE(cmd)
	case memsim.CmdRD, memsim.CmdWR:
		c.observeCAS(cmd)
	case memsim.CmdREF:
		c.observeREF(cmd)
	}
}

func (c *Checker) observeACT(cmd memsim.Command) {
	b := c.bank(cmd.FlatBank)
	if b.open {
		c.add("ACT-on-open-row", b.lastACT.cmd, cmd, 0, 0)
	}
	if b.lastACT.ok {
		c.require("tRC", b.lastACT.cmd, b.lastACT.cmd.At, cmd, c.t.TRC)
	}
	if b.lastPRE.ok {
		c.require("tRP", b.lastPRE.cmd, b.lastPRE.cmd.At, cmd, c.t.TRP)
	}
	rank := cmd.Addr.Rank
	if p := c.rankACT[rank]; p.ok {
		// Any two ACTs in a rank are at least tRRD_S apart; same bank
		// group tightens that to tRRD_L below.
		c.require("tRRD_S", p.cmd, p.cmd.At, cmd, c.t.TRRDS)
	}
	rg := rankGroup{rank, cmd.Addr.Group}
	if p := c.groupACT[rg]; p.ok {
		c.require("tRRD_L", p.cmd, p.cmd.At, cmd, c.t.TRRDL)
	}
	ring := c.faw[rank]
	if ring == nil {
		ring = &[4]seen{}
		c.faw[rank] = ring
	}
	if ring[0].ok {
		// This is the 5th ACT counted from ring[0]: at most 4 ACTs may
		// land in any tFAW window.
		c.require("tFAW", ring[0].cmd, ring[0].cmd.At, cmd, c.t.TFAW)
	}
	copy(ring[:], ring[1:])
	ring[3] = seen{}
	ring[3].set(cmd)

	b.lastACT.set(cmd)
	b.open = true
	b.everACT = true
	p := c.rankACT[rank]
	p.set(cmd)
	c.rankACT[rank] = p
	g := c.groupACT[rg]
	g.set(cmd)
	c.groupACT[rg] = g
}

func (c *Checker) observePRE(cmd memsim.Command) {
	b := c.bank(cmd.FlatBank)
	if !b.open {
		c.add("PRE-on-closed-bank", b.lastPRE.cmd, cmd, 0, 0)
	}
	if b.lastACT.ok {
		c.require("tRAS", b.lastACT.cmd, b.lastACT.cmd.At, cmd, c.t.TRAS)
	}
	if b.lastWR.ok {
		c.require("tWR", b.lastWR.cmd, b.lastWR.cmd.DataEnd, cmd, c.t.TWR)
	}
	if b.lastRD.ok {
		c.require("tRTP", b.lastRD.cmd, b.lastRD.cmd.At, cmd, c.t.TRTP)
	}
	b.lastPRE.set(cmd)
	b.open = false
}

func (c *Checker) observeCAS(cmd memsim.Command) {
	b := c.bank(cmd.FlatBank)
	if !b.open {
		c.add("CAS-on-closed-bank", b.lastACT.cmd, cmd, 0, 0)
	}
	if b.lastACT.ok {
		c.require("tRCD", b.lastACT.cmd, b.lastACT.cmd.At, cmd, c.t.TRCD)
	}
	if c.lastCAS.ok {
		c.require("tCCD_S", c.lastCAS.cmd, c.lastCAS.cmd.At, cmd, c.t.TCCDS)
	}
	rg := rankGroup{cmd.Addr.Rank, cmd.Addr.Group}
	if p := c.groupCAS[rg]; p.ok {
		c.require("tCCD_L", p.cmd, p.cmd.At, cmd, c.t.TCCDL)
	}
	isWrite := cmd.Kind == memsim.CmdWR
	if isWrite {
		if c.lastRD.ok {
			c.require("tRTW", c.lastRD.cmd, c.lastRD.cmd.DataEnd, cmd, c.t.TRTW)
		}
	} else {
		if c.lastWR.ok {
			c.require("tWTR", c.lastWR.cmd, c.lastWR.cmd.DataEnd, cmd, c.t.TWTR)
		}
	}

	// Data burst well-formedness and bus occupancy.
	casToData := c.t.CL
	rule := "CL"
	if isWrite {
		casToData = c.t.CWL
		rule = "CWL"
	}
	if cmd.DataStart != cmd.At+uint64(casToData) {
		c.add(rule, cmd, cmd, uint64(casToData), int64(cmd.DataStart)-int64(cmd.At))
	}
	if cmd.DataEnd <= cmd.DataStart {
		c.add("empty-burst", cmd, cmd, 0, 0)
	}
	if c.lastData.ok && cmd.DataStart < c.lastData.cmd.DataEnd {
		c.add("bus-overlap", c.lastData.cmd, cmd, 0,
			int64(cmd.DataStart)-int64(c.lastData.cmd.DataEnd))
	}

	if isWrite {
		b.lastWR.set(cmd)
		c.lastWR.set(cmd)
	} else {
		b.lastRD.set(cmd)
		c.lastRD.set(cmd)
	}
	c.lastCAS.set(cmd)
	p := c.groupCAS[rg]
	p.set(cmd)
	c.groupCAS[rg] = p
	c.lastData.set(cmd)
}

func (c *Checker) observeREF(cmd memsim.Command) {
	if cmd.At%uint64(c.t.TREFI) != 0 {
		c.add("tREFI-align", memsim.Command{}, cmd, 0, int64(cmd.At%uint64(c.t.TREFI)))
	}
	if c.lastREF.ok && cmd.At <= c.lastREF.cmd.At {
		c.add("tREFI-order", c.lastREF.cmd, cmd, 0, int64(cmd.At)-int64(c.lastREF.cmd.At))
	}
	c.lastREF.set(cmd)
}
