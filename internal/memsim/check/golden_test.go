package check_test

import (
	"testing"

	"pair/internal/experiments"
	"pair/internal/memsim"
	"pair/internal/memsim/check"
	"pair/internal/trace"
)

// goldenCycles pins the end-to-end cycle count of every SPEC-like
// workload under each scheme's cost model at 1500 requests. The runs are
// deterministic, so any drift means the timing model changed — revisit
// EXPERIMENTS.md (the F4/F5 tables are produced by this code) before
// updating a number. iecc and pair agree exactly: their cost models add
// decode latency but no extra bus traffic, and cycles count bus time.
var goldenCycles = map[string]map[string]uint64{
	"none": {"lbm": 24739, "mcf": 53152, "milc": 31550, "gcc": 53398, "bwaves": 23302, "cactu": 51930, "omnetpp": 53606, "x264": 54976, "xz": 53254, "fotonik": 24558},
	"iecc": {"lbm": 24651, "mcf": 53171, "milc": 32100, "gcc": 55734, "bwaves": 23493, "cactu": 54648, "omnetpp": 55254, "x264": 61223, "xz": 55330, "fotonik": 24999},
	"xed":  {"lbm": 27820, "mcf": 54860, "milc": 43222, "gcc": 68280, "bwaves": 26021, "cactu": 87474, "omnetpp": 65170, "x264": 89314, "xz": 72902, "fotonik": 28788},
	"duo":  {"lbm": 25901, "mcf": 53208, "milc": 32992, "gcc": 55901, "bwaves": 24734, "cactu": 54821, "omnetpp": 55351, "x264": 61576, "xz": 55456, "fotonik": 26171},
	"pair": {"lbm": 24651, "mcf": 53171, "milc": 32100, "gcc": 55734, "bwaves": 23493, "cactu": 54648, "omnetpp": 55254, "x264": 61223, "xz": 55330, "fotonik": 24999},
}

// TestSPECSuiteProtocolCleanGolden is the differential acceptance test:
// the full SPEC-like suite under all five scheme cost models runs with
// the JEDEC checker attached, expecting zero violations and the pinned
// golden cycle counts.
func TestSPECSuiteProtocolCleanGolden(t *testing.T) {
	suite := trace.SPECLike(1500)
	for _, s := range experiments.PerfSchemes() {
		golden, ok := goldenCycles[s.Name()]
		if !ok {
			t.Fatalf("no golden row for scheme %q", s.Name())
		}
		for _, wl := range suite {
			cfg := memsim.DefaultConfig()
			cfg.Cost = s.Cost()
			chk := check.New(cfg.Timing)
			cfg.Observer = chk
			res := memsim.MustRun(cfg, wl)
			if err := chk.Err(); err != nil {
				t.Errorf("%s/%s: %v", s.Name(), wl.Name, err)
				continue
			}
			if chk.Commands() == 0 {
				t.Errorf("%s/%s: checker observed no commands", s.Name(), wl.Name)
			}
			if want := golden[wl.Name]; res.Cycles != want {
				t.Errorf("%s/%s: %d cycles, golden %d", s.Name(), wl.Name, res.Cycles, want)
			}
		}
	}
}
