package check_test

import (
	"strings"
	"testing"

	"pair/internal/dram"
	"pair/internal/memsim"
	"pair/internal/memsim/check"
	"pair/internal/trace"
)

// feed builds a checker over DDR4-2400 and plays a synthetic stream.
func feed(cmds ...memsim.Command) *check.Checker {
	c := check.New(memsim.DDR4_2400())
	for _, cmd := range cmds {
		c.Observe(cmd)
	}
	return c
}

func addr(rank, group, bank, row int) dram.Address {
	return dram.Address{Rank: rank, Group: group, Bank: bank, Row: row}
}

// act/rd/pre build minimal well-formed commands for synthetic streams.
func act(at uint64, rank, group, bank, fb int) memsim.Command {
	return memsim.Command{Kind: memsim.CmdACT, At: at, Addr: addr(rank, group, bank, 7), FlatBank: fb}
}

// burstCycles is the BL8 data-bus occupancy of the synthetic streams.
const burstCycles = 4

func rd(at uint64, rank, group, bank, fb int) memsim.Command {
	t := memsim.DDR4_2400()
	start := at + uint64(t.CL)
	return memsim.Command{Kind: memsim.CmdRD, At: at, Addr: addr(rank, group, bank, 7),
		FlatBank: fb, DataStart: start, DataEnd: start + burstCycles}
}

func wr(at uint64, rank, group, bank, fb int) memsim.Command {
	t := memsim.DDR4_2400()
	start := at + uint64(t.CWL)
	return memsim.Command{Kind: memsim.CmdWR, At: at, Addr: addr(rank, group, bank, 7),
		FlatBank: fb, DataStart: start, DataEnd: start + burstCycles}
}

func pre(at uint64, rank, group, bank, fb int) memsim.Command {
	return memsim.Command{Kind: memsim.CmdPRE, At: at, Addr: addr(rank, group, bank, 7), FlatBank: fb}
}

// wantRule asserts the checker recorded at least one violation of the
// named rule.
func wantRule(t *testing.T, c *check.Checker, rule string) {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("no %s violation; got %v", rule, c.Violations())
}

func TestCheckerCleanSyntheticStream(t *testing.T) {
	// ACT, a pair of reads tRCD later, PRE after tRAS, re-ACT after tRC.
	c := feed(
		act(100, 0, 0, 0, 0),
		rd(116, 0, 0, 0, 0),
		rd(124, 0, 0, 0, 0),
		pre(140, 0, 0, 0, 0),
		act(160, 0, 0, 0, 0),
		rd(180, 0, 0, 0, 0),
	)
	if err := c.Err(); err != nil {
		t.Fatalf("clean stream flagged: %v", err)
	}
	if c.Commands() != 6 {
		t.Fatalf("commands %d", c.Commands())
	}
}

func TestCheckerPerBankRules(t *testing.T) {
	// CAS 10 cycles after ACT: tRCD (16) violated.
	wantRule(t, feed(act(100, 0, 0, 0, 0), rd(110, 0, 0, 0, 0)), "tRCD")
	// PRE 20 cycles after ACT: tRAS (32) violated.
	wantRule(t, feed(act(100, 0, 0, 0, 0), pre(120, 0, 0, 0, 0)), "tRAS")
	// ACT 8 cycles after PRE: tRP (16) violated.
	wantRule(t, feed(act(100, 0, 0, 0, 0), pre(140, 0, 0, 0, 0), act(148, 0, 0, 0, 0)), "tRP")
	// Re-ACT 40 cycles after ACT: tRC (48); the hasty PRE breaks tRP too.
	wantRule(t, feed(act(100, 0, 0, 0, 0), pre(132, 0, 0, 0, 0), act(140, 0, 0, 0, 0)), "tRC")
	// CAS with no open row.
	wantRule(t, feed(rd(100, 0, 0, 0, 0)), "CAS-on-closed-bank")
	// ACT on an already-open row.
	wantRule(t, feed(act(100, 0, 0, 0, 0), act(160, 0, 0, 0, 0)), "ACT-on-open-row")
	// PRE on a never-opened bank.
	wantRule(t, feed(pre(100, 0, 0, 0, 0)), "PRE-on-closed-bank")
	// PRE 4 cycles after a write burst ends: tWR (18).
	wantRule(t, feed(act(100, 0, 0, 0, 0), wr(116, 0, 0, 0, 0), pre(136, 0, 0, 0, 0)), "tWR")
	// PRE 4 cycles after a read CAS: tRTP (9).
	wantRule(t, feed(act(100, 0, 0, 0, 0), rd(132, 0, 0, 0, 0), pre(136, 0, 0, 0, 0)), "tRTP")
}

func TestCheckerRankAndChannelRules(t *testing.T) {
	// Two ACTs to different bank groups 2 cycles apart: tRRD_S (4).
	wantRule(t, feed(act(100, 0, 0, 0, 0), act(102, 0, 1, 0, 4)), "tRRD_S")
	// Two ACTs to the same bank group 5 cycles apart: tRRD_L (6).
	wantRule(t, feed(act(100, 0, 0, 0, 0), act(105, 0, 0, 1, 1)), "tRRD_L")
	// A 5th ACT inside the tFAW (26) window of the 1st.
	wantRule(t, feed(
		act(100, 0, 0, 0, 0), act(106, 0, 1, 0, 4), act(112, 0, 2, 0, 8),
		act(118, 0, 3, 0, 12), act(124, 0, 0, 1, 1),
	), "tFAW")
	// Same-group CASes 5 apart: tCCD_L (6) but not tCCD_S (4).
	c := feed(act(100, 0, 0, 0, 0), act(108, 0, 0, 1, 1), rd(130, 0, 0, 0, 0), rd(135, 0, 0, 1, 1))
	wantRule(t, c, "tCCD_L")
	for _, v := range c.Violations() {
		if v.Rule == "tCCD_S" {
			t.Fatalf("spurious tCCD_S at spacing 5: %v", v)
		}
	}
	// Cross-group CASes 3 apart: tCCD_S (4).
	wantRule(t, feed(act(100, 0, 0, 0, 0), act(108, 0, 1, 0, 4), rd(130, 0, 0, 0, 0), rd(133, 0, 1, 0, 4)), "tCCD_S")
	// Read 2 cycles after a write burst ends: tWTR (9).
	wantRule(t, feed(act(100, 0, 0, 0, 0), act(108, 0, 1, 0, 4), wr(130, 0, 0, 0, 0), rd(148, 0, 1, 0, 4)), "tWTR")
	// Write 2 cycles after a read burst ends: tRTW (8).
	wantRule(t, feed(act(100, 0, 0, 0, 0), act(108, 0, 1, 0, 4), rd(130, 0, 0, 0, 0), wr(152, 0, 1, 0, 4)), "tRTW")
}

func TestCheckerDataBusRules(t *testing.T) {
	tm := memsim.DDR4_2400()
	// A read whose burst starts at CL-1: CL consistency violated.
	bad := rd(130, 0, 0, 0, 0)
	bad.DataStart--
	bad.DataEnd--
	wantRule(t, feed(act(100, 0, 0, 0, 0), bad), "CL")
	// Overlapping bursts on the shared data bus: a WR 4 cycles after a RD
	// satisfies tCCD_S, but CWL < CL pulls its burst onto the read's.
	a := rd(130, 0, 0, 0, 0)
	b := wr(134, 0, 1, 0, 4)
	if b.DataStart >= a.DataEnd {
		t.Fatalf("test setup: bursts %d..%d and %d.. do not overlap", a.DataStart, a.DataEnd, b.DataStart)
	}
	c := feed(act(100, 0, 0, 0, 0), act(108, 0, 1, 0, 4), a, b)
	wantRule(t, c, "bus-overlap")
	_ = tm
	// Empty burst.
	e := rd(130, 0, 0, 0, 0)
	e.DataEnd = e.DataStart
	wantRule(t, feed(act(100, 0, 0, 0, 0), e), "empty-burst")
}

func TestCheckerRefreshRules(t *testing.T) {
	tm := memsim.DDR4_2400()
	refi := uint64(tm.TREFI)
	// A command inside the tRFC blackout after a refresh boundary.
	c := feed(act(refi+10, 0, 0, 0, 0))
	wantRule(t, c, "tRFC")
	// Misaligned REF.
	wantRule(t, feed(memsim.Command{Kind: memsim.CmdREF, At: refi + 3, FlatBank: -1}), "tREFI-align")
	// Out-of-order events.
	wantRule(t, feed(act(200, 0, 0, 0, 0), pre(180, 0, 0, 0, 0)), "event-order")
}

func TestCheckerViolationCapAndErr(t *testing.T) {
	c := check.New(memsim.DDR4_2400())
	for i := 0; i < 50; i++ {
		c.Observe(rd(uint64(1000+40*i), 0, 0, 0, 0)) // every CAS hits a closed bank
	}
	if c.Total() != 50 {
		t.Fatalf("total %d, want 50", c.Total())
	}
	if len(c.Violations()) != 32 {
		t.Fatalf("recorded %d, want cap 32", len(c.Violations()))
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "50 protocol violations") {
		t.Fatalf("err %v", err)
	}
	if clean := check.New(memsim.DDR4_2400()); clean.Err() != nil {
		t.Fatal("empty checker reported an error")
	}
}

// runBroken simulates with a deliberately corrupted timing table while the
// checker asserts the true DDR4-2400 constraints — the acceptance test
// that a scheduler timing bug cannot pass unseen.
func runBroken(t *testing.T, mutate func(*memsim.Timing), wl trace.Workload) *check.Checker {
	t.Helper()
	cfg := memsim.DefaultConfig()
	mutate(&cfg.Timing)
	chk := check.New(memsim.DDR4_2400())
	cfg.Observer = chk
	memsim.MustRun(cfg, wl)
	return chk
}

func TestBrokenTimingIsCaught(t *testing.T) {
	// One hot line: every access hits the same open row, so CAS commands
	// pack at the bus/tCCD floor — the stream where CCD bugs surface.
	hotLine := trace.Generate(trace.Params{
		Name: "hot", Requests: 600, Lines: 1, Pattern: trace.Sequential,
		ReadFrac: 1, MeanGap: 0, Window: 8, Seed: 3,
	})
	// Small footprint: rows stay open, so read/write turnarounds happen
	// between row hits where the tWTR/tRTW slack is the binding constraint.
	hotMix := trace.Generate(trace.Params{
		Name: "hotmix", Requests: 600, Lines: 64, Pattern: trace.Random,
		ReadFrac: 0.5, MeanGap: 0, Window: 8, Seed: 5,
	})
	// Large random footprint: conflict misses exercise PRE/ACT spacing.
	mixed := trace.Generate(trace.Params{
		Name: "mix", Requests: 600, Lines: 1 << 16, Pattern: trace.Random,
		ReadFrac: 0.5, MeanGap: 1, Window: 8, Seed: 4,
	})
	cases := []struct {
		name string
		rule string
		wl   trace.Workload
		mut  func(*memsim.Timing)
	}{
		{"zero-tRP", "tRP", mixed, func(tm *memsim.Timing) { tm.TRP = 0 }},
		{"zero-tRCD", "tRCD", mixed, func(tm *memsim.Timing) { tm.TRCD = 0 }},
		{"short-tRAS", "tRAS", mixed, func(tm *memsim.Timing) { tm.TRAS = 2; tm.TRC = 18 }},
		{"short-tCCDL", "tCCD_L", hotLine, func(tm *memsim.Timing) { tm.TCCDL = 2 }},
		{"zero-tWTR", "tWTR", hotMix, func(tm *memsim.Timing) { tm.TWTR = 0 }},
		{"zero-tRTW", "tRTW", hotMix, func(tm *memsim.Timing) { tm.TRTW = 0 }},
		{"short-tRFC", "tRFC", mixed, func(tm *memsim.Timing) { tm.TRFC = 4 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chk := runBroken(t, tc.mut, tc.wl)
			wantRule(t, chk, tc.rule)
		})
	}
	// Control: the unmutated scheduler is clean on every workload.
	for _, wl := range []trace.Workload{hotLine, hotMix, mixed} {
		chk := runBroken(t, func(*memsim.Timing) {}, wl)
		if err := chk.Err(); err != nil {
			t.Fatalf("control run on %s flagged: %v", wl.Name, err)
		}
	}
}
