package check

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pair/internal/memsim"
)

// Monitor is a lightweight observability sink over the command stream:
// per-kind command histograms, row-buffer hit breakdown, data-bus
// occupancy and the per-bank activate distribution. It performs no
// checking; pair it with a Checker through memsim.MultiObserver.
type Monitor struct {
	Counts   memsim.CmdCounts
	RowHits  uint64
	RowMiss  uint64
	BusBusy  uint64 // cycles of data-bus occupancy
	FirstAt  uint64
	LastAt   uint64 // includes data tail of the last burst
	started  bool
	bankACTs map[chanBank]uint64
	bankAddr map[chanBank]memsim.Command // a representative command per bank
	fresh    map[chanBank]bool           // bank was activated since its last CAS
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		bankACTs: map[chanBank]uint64{},
		bankAddr: map[chanBank]memsim.Command{},
		fresh:    map[chanBank]bool{},
	}
}

// Observe implements memsim.Observer.
func (m *Monitor) Observe(c memsim.Command) {
	if !m.started {
		m.FirstAt = c.At
		m.started = true
	}
	if c.At > m.LastAt {
		m.LastAt = c.At
	}
	key := chanBank{c.Channel, c.FlatBank}
	switch c.Kind {
	case memsim.CmdACT:
		m.Counts.ACT++
		m.bankACTs[key]++
		m.bankAddr[key] = c
		m.fresh[key] = true
	case memsim.CmdPRE:
		m.Counts.PRE++
	case memsim.CmdRD, memsim.CmdWR:
		if c.Kind == memsim.CmdRD {
			m.Counts.RD++
		} else {
			m.Counts.WR++
		}
		// The first CAS after an ACT is the miss that opened the row;
		// every further CAS to the open row is a hit.
		if m.fresh[key] {
			m.RowMiss++
			m.fresh[key] = false
		} else {
			m.RowHits++
		}
		m.BusBusy += c.DataEnd - c.DataStart
		if c.DataEnd > m.LastAt {
			m.LastAt = c.DataEnd
		}
	case memsim.CmdREF, memsim.CmdREFSB:
		m.Counts.REF++
	}
}

// RowHitRate returns the fraction of CAS commands that hit an open row.
func (m *Monitor) RowHitRate() float64 {
	if n := m.RowHits + m.RowMiss; n > 0 {
		return float64(m.RowHits) / float64(n)
	}
	return 0
}

// BusUtilization returns data-bus occupancy over the observed span.
func (m *Monitor) BusUtilization() float64 {
	if span := m.LastAt - m.FirstAt; span > 0 {
		return float64(m.BusBusy) / float64(span)
	}
	return 0
}

// Render formats the run summary.
func (m *Monitor) Render() string {
	var sb strings.Builder
	c := m.Counts
	fmt.Fprintf(&sb, "commands: ACT %d  PRE %d  RD %d  WR %d  REF %d\n",
		c.ACT, c.PRE, c.RD, c.WR, c.REF)
	fmt.Fprintf(&sb, "row buffer: %.1f%% hits (%d hits / %d misses)\n",
		m.RowHitRate()*100, m.RowHits, m.RowMiss)
	fmt.Fprintf(&sb, "data bus: %.1f%% utilized (%d busy / %d observed cycles)\n",
		m.BusUtilization()*100, m.BusBusy, m.LastAt-m.FirstAt)
	if len(m.bankACTs) > 0 {
		type ba struct {
			fb chanBank
			n  uint64
		}
		all := make([]ba, 0, len(m.bankACTs))
		for fb, n := range m.bankACTs {
			all = append(all, ba{fb, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			if all[i].fb.ch != all[j].fb.ch {
				return all[i].fb.ch < all[j].fb.ch
			}
			return all[i].fb.fb < all[j].fb.fb
		})
		top := all[0]
		a := m.bankAddr[top.fb].Addr
		fmt.Fprintf(&sb, "banks: %d touched; busiest rk%d bg%d ba%d with %d ACTs (%.1f%%)\n",
			len(all), a.Rank, a.Group, a.Bank, top.n, float64(top.n)/float64(c.ACT)*100)
	}
	return sb.String()
}

// Tracer streams every command as one line of text — the -cmdtrace mode
// of the CLIs. Lines look like:
//
//	@1184 ACT rk0 bg1 ba2 r0x1a c0x0
//	@1200 RD rk0 bg1 ba2 r0x1a c0x7 data 1216..1220
type Tracer struct {
	W io.Writer
	// Limit, when positive, caps the number of lines written (the stream
	// can be long); a final ellipsis line marks truncation.
	Limit   int
	written int
}

// Observe implements memsim.Observer.
func (t *Tracer) Observe(c memsim.Command) {
	if t.Limit > 0 {
		if t.written == t.Limit {
			fmt.Fprintln(t.W, "... (command trace truncated)")
			t.written++
			return
		}
		if t.written > t.Limit {
			return
		}
	}
	fmt.Fprintln(t.W, c)
	t.written++
}
