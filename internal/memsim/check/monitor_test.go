package check_test

import (
	"strings"
	"testing"

	"pair/internal/memsim"
	"pair/internal/memsim/check"
	"pair/internal/trace"
)

func mixWorkload(requests int) trace.Workload {
	return trace.Generate(trace.Params{
		Name: "mon", Requests: requests, Lines: 1 << 14, Pattern: trace.Random,
		ReadFrac: 0.7, MaskedFrac: 0.1, MeanGap: 2, Window: 8, Seed: 9,
	})
}

func TestMonitorAgreesWithResult(t *testing.T) {
	mon := check.NewMonitor()
	cfg := memsim.DefaultConfig()
	cfg.Observer = mon
	res := memsim.MustRun(cfg, mixWorkload(2000))

	if mon.Counts != res.Cmds {
		t.Fatalf("monitor counts %+v != Result.Cmds %+v", mon.Counts, res.Cmds)
	}
	// The monitor infers row hits from the stream alone (first CAS after
	// an ACT is the miss); it must reproduce the simulator's accounting.
	if mon.RowHits != res.RowHits || mon.RowMiss != res.RowMisses {
		t.Fatalf("monitor hits/misses %d/%d != result %d/%d",
			mon.RowHits, mon.RowMiss, res.RowHits, res.RowMisses)
	}
	if mon.BusBusy != res.BusBusyCycles {
		t.Fatalf("monitor bus busy %d != result %d", mon.BusBusy, res.BusBusyCycles)
	}
	if u := mon.BusUtilization(); u <= 0 || u > 1 {
		t.Fatalf("bus utilization %v", u)
	}

	out := mon.Render()
	for _, want := range []string{"commands:", "row buffer:", "data bus:", "banks:", "busiest"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMonitorEmpty(t *testing.T) {
	mon := check.NewMonitor()
	if mon.RowHitRate() != 0 || mon.BusUtilization() != 0 {
		t.Fatal("empty monitor reported nonzero rates")
	}
	if out := mon.Render(); !strings.Contains(out, "commands:") {
		t.Fatalf("empty render:\n%s", out)
	}
}

func TestTracerLimitTruncates(t *testing.T) {
	var sb strings.Builder
	tr := &check.Tracer{W: &sb, Limit: 5}
	cfg := memsim.DefaultConfig()
	cfg.Observer = tr
	memsim.MustRun(cfg, mixWorkload(200))

	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d lines, want 5 + ellipsis", len(lines))
	}
	if !strings.Contains(lines[5], "truncated") {
		t.Fatalf("no truncation marker: %q", lines[5])
	}
	for _, ln := range lines[:5] {
		if !strings.HasPrefix(ln, "@") {
			t.Fatalf("malformed trace line %q", ln)
		}
	}
}

func TestTracerUnlimited(t *testing.T) {
	var sb strings.Builder
	tr := &check.Tracer{W: &sb}
	cfg := memsim.DefaultConfig()
	cfg.Observer = tr
	res := memsim.MustRun(cfg, mixWorkload(200))

	n := strings.Count(sb.String(), "\n")
	want := res.Cmds.ACT + res.Cmds.PRE + res.Cmds.RD + res.Cmds.WR + res.Cmds.REF
	if uint64(n) != want {
		t.Fatalf("%d trace lines, want %d commands", n, want)
	}
}
