// Package memsim is a trace-driven, command-level DRAM timing simulator,
// parameterized by device Profile (DDR4/DDR5/LPDDR5). It models per-bank
// state machines (ACT/RD/WR/PRE with row-buffer hits/misses), one data
// bus per channel/subchannel, bank-group timing (tCCD_L vs tCCD_S), the
// tFAW activation window, periodic refresh (all-bank REFab or staggered
// same-bank REFsb), open/closed-page policies, a FR-FCFS scheduler with
// write draining, and a limited-outstanding-request (MLP window)
// processor front-end.
//
// ECC schemes plug in through ecc.AccessCost: burst extension beats
// (DUO), companion parity writes (XED), read-modify-write reads for
// masked writes, decode latency on read completions, and detection
// re-reads. The performance experiments (paper figures F4/F5) compare
// total execution cycles across schemes on identical traces.
//
// Fidelity note (documented reconstruction decision): commands are chosen
// one at a time in global time order rather than per-cycle per-channel,
// which slightly serializes command issue but preserves everything the
// study measures — bus occupancy, RMW amplification, extra writes, burst
// length and latency adders. Multi-bus profiles keep one burst timeline
// per channel/subchannel, so bursts overlap across buses.
package memsim

// Timing holds DRAM timing parameters in memory-controller clock cycles
// (one cycle = one DRAM command clock; DDR transfers two beats per cycle).
// Burst length lives in the Profile's Organization, not here.
type Timing struct {
	NSPerCycle float64 // wall-clock nanoseconds per controller cycle

	CL   int // read CAS latency
	CWL  int // write CAS latency
	TRCD int // ACT to CAS
	TRP  int // PRE to ACT
	TRAS int // ACT to PRE
	TRC  int // ACT to ACT (same bank)

	TCCDS int // CAS to CAS, different bank group
	TCCDL int // CAS to CAS, same bank group
	TRRDS int // ACT to ACT, different bank group
	TRRDL int // ACT to ACT, same bank group
	TFAW  int // four-activation window per rank

	TWR  int // write recovery (end of write data to PRE)
	TWTR int // write-to-read turnaround
	TRTW int // read-to-write turnaround
	TRTP int // read to PRE

	TRFC   int // all-bank refresh cycle time (REFab)
	TRFCSB int // same-bank refresh cycle time (REFsb); 0 when unsupported
	TREFI  int // refresh interval
}

// DDR4_2400 returns DDR4-2400R timing (1200 MHz command clock).
func DDR4_2400() Timing {
	return Timing{
		NSPerCycle: 0.833,
		CL:         16,
		CWL:        12,
		TRCD:       16,
		TRP:        16,
		TRAS:       32,
		TRC:        48,
		TCCDS:      4,
		TCCDL:      6,
		TRRDS:      4,
		TRRDL:      6,
		TFAW:       26,
		TWR:        18,
		TWTR:       9,
		TRTW:       8,
		TRTP:       9,
		TRFC:       384,
		TREFI:      9344,
	}
}

// DDR5_4800 returns DDR5-4800B timing (2400 MHz command clock). Latencies
// in nanoseconds are close to DDR4's, so at twice the clock the cycle
// counts roughly double; tCCD_L stretches to 16 cycles (BL16 keeps the
// bus busy 8 cycles per access) and refresh is normally issued same-bank
// (tRFCsb) instead of the full tRFC blackout.
func DDR5_4800() Timing {
	return Timing{
		NSPerCycle: 0.417,
		CL:         40,
		CWL:        38,
		TRCD:       39,
		TRP:        39,
		TRAS:       77,
		TRC:        116,
		TCCDS:      8,
		TCCDL:      16,
		TRRDS:      8,
		TRRDL:      12,
		TFAW:       32,
		TWR:        72,
		TWTR:       24,
		TRTW:       18,
		TRTP:       18,
		TRFC:       708,
		TRFCSB:     312,
		TREFI:      9360,
	}
}

// LPDDR5_6400 returns LPDDR5-6400 timing (3200 MHz command-equivalent
// clock as modeled here). Mobile parts trade higher core latencies (in
// cycles) for lower energy; refresh is per-bank.
func LPDDR5_6400() Timing {
	return Timing{
		NSPerCycle: 0.3125,
		CL:         54,
		CWL:        30,
		TRCD:       58,
		TRP:        58,
		TRAS:       134,
		TRC:        192,
		TCCDS:      8,
		TCCDL:      16,
		TRRDS:      16,
		TRRDL:      32,
		TFAW:       64,
		TWR:        109,
		TWTR:       38,
		TRTW:       22,
		TRTP:       24,
		TRFC:       672,
		TRFCSB:     448,
		TREFI:      12480,
	}
}

// NSToCycles converts nanoseconds to whole cycles, rounding up.
func (t Timing) NSToCycles(ns float64) uint64 {
	if ns <= 0 {
		return 0
	}
	c := ns / t.NSPerCycle
	u := uint64(c)
	if float64(u) < c {
		u++
	}
	return u
}
