// Package memsim is a trace-driven, command-level DDR4 timing simulator.
// It models per-bank state machines (ACT/RD/WR/PRE with row-buffer
// hits/misses), the shared data bus, bank-group timing (tCCD_L vs tCCD_S),
// the tFAW activation window, periodic refresh, a FR-FCFS scheduler with
// write draining, and a limited-outstanding-request (MLP window) processor
// front-end.
//
// ECC schemes plug in through ecc.AccessCost: burst extension beats
// (DUO), companion parity writes (XED), read-modify-write reads for
// masked writes, decode latency on read completions, and detection
// re-reads. The performance experiments (paper figures F4/F5) compare
// total execution cycles across schemes on identical traces.
//
// Fidelity note (documented reconstruction decision): commands are chosen
// one at a time in global time order rather than per-cycle per-channel,
// which slightly serializes command issue but preserves everything the
// study measures — bus occupancy, RMW amplification, extra writes, burst
// length and latency adders.
package memsim

// Timing holds DDR4 timing parameters in memory-controller clock cycles
// (one cycle = one DRAM command clock; DDR transfers two beats per cycle).
type Timing struct {
	NSPerCycle float64 // wall-clock nanoseconds per controller cycle

	CL   int // read CAS latency
	CWL  int // write CAS latency
	TRCD int // ACT to CAS
	TRP  int // PRE to ACT
	TRAS int // ACT to PRE
	TRC  int // ACT to ACT (same bank)
	TBL  int // burst length in cycles for BL8 (8 beats / 2 per cycle)

	TCCDS int // CAS to CAS, different bank group
	TCCDL int // CAS to CAS, same bank group
	TRRDS int // ACT to ACT, different bank group
	TRRDL int // ACT to ACT, same bank group
	TFAW  int // four-activation window per rank

	TWR  int // write recovery (end of write data to PRE)
	TWTR int // write-to-read turnaround
	TRTW int // read-to-write turnaround
	TRTP int // read to PRE

	TRFC  int // refresh cycle time
	TREFI int // refresh interval
}

// DDR4_2400 returns DDR4-2400R timing (1200 MHz command clock).
func DDR4_2400() Timing {
	return Timing{
		NSPerCycle: 0.833,
		CL:         16,
		CWL:        12,
		TRCD:       16,
		TRP:        16,
		TRAS:       32,
		TRC:        48,
		TBL:        4,
		TCCDS:      4,
		TCCDL:      6,
		TRRDS:      4,
		TRRDL:      6,
		TFAW:       26,
		TWR:        18,
		TWTR:       9,
		TRTW:       8,
		TRTP:       9,
		TRFC:       384,
		TREFI:      9344,
	}
}

// NSToCycles converts nanoseconds to whole cycles, rounding up.
func (t Timing) NSToCycles(ns float64) uint64 {
	if ns <= 0 {
		return 0
	}
	c := ns / t.NSPerCycle
	u := uint64(c)
	if float64(u) < c {
		u++
	}
	return u
}

// BurstCycles returns the data-bus occupancy of a burst of 8+extra beats
// (two beats per cycle, rounded up).
func (t Timing) BurstCycles(extraBeats int) int {
	beats := 8 + extraBeats
	return (beats + 1) / 2
}
