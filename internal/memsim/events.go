package memsim

import (
	"fmt"

	"pair/internal/dram"
)

// CmdKind identifies a DRAM command in the observed event stream.
type CmdKind int

const (
	CmdACT   CmdKind = iota // row activate
	CmdPRE                  // precharge (row close)
	CmdRD                   // read CAS
	CmdWR                   // write CAS
	CmdREF                  // all-bank refresh (REFab)
	CmdREFSB                // same-bank refresh (REFsb); Addr names the bank
)

// String returns the JEDEC mnemonic.
func (k CmdKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	case CmdREFSB:
		return "REFsb"
	}
	return fmt.Sprintf("CmdKind(%d)", int(k))
}

// Command is one command-bus event emitted by the scheduler. Events are
// delivered in non-decreasing At order across the whole run.
type Command struct {
	Kind CmdKind
	At   uint64 // issue cycle on the command bus

	// Addr and FlatBank locate the target bank (zero / -1 for REF; REFsb
	// carries the refreshing bank's Group/Bank with FlatBank -1).
	// For PRE, Addr.Row is the row being closed.
	Addr     dram.Address
	FlatBank int

	// Channel is the data bus (channel x subchannel index) the command
	// targets; 0 for single-bus profiles, -1 for refreshes, which apply
	// across buses.
	Channel int

	// Line is the cache-line index of the access (RD/WR only).
	Line uint64
	// DataStart/DataEnd bound the data-bus occupancy [start, end) of the
	// burst following a RD/WR command; zero for ACT/PRE/REF.
	DataStart, DataEnd uint64
}

// String renders the command for traces and violation reports. The
// channel prefix appears only on multi-bus streams so single-channel
// (DDR4) traces render exactly as before.
func (c Command) String() string {
	ch := ""
	if c.Channel > 0 {
		ch = fmt.Sprintf("ch%d ", c.Channel)
	}
	switch c.Kind {
	case CmdREF:
		return fmt.Sprintf("@%d REF", c.At)
	case CmdREFSB:
		return fmt.Sprintf("@%d REFsb bg%d ba%d", c.At, c.Addr.Group, c.Addr.Bank)
	case CmdRD, CmdWR:
		return fmt.Sprintf("@%d %s%s %s data %d..%d", c.At, ch, c.Kind, c.Addr, c.DataStart, c.DataEnd)
	default:
		return fmt.Sprintf("@%d %s%s %s", c.At, ch, c.Kind, c.Addr)
	}
}

// Observer receives every DRAM command the scheduler issues, in
// non-decreasing time order. Implementations must not retain the Command
// beyond the call. A nil Config.Observer costs nothing on the hot path.
type Observer interface {
	Observe(Command)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Command)

// Observe implements Observer.
func (f ObserverFunc) Observe(c Command) { f(c) }

type multiObserver []Observer

func (m multiObserver) Observe(c Command) {
	for _, o := range m {
		o.Observe(c)
	}
}

// MultiObserver fans one command stream out to several observers. Nil
// entries are dropped; with zero or one live observer it returns nil or
// the observer itself.
func MultiObserver(obs ...Observer) Observer {
	var live multiObserver
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
