package memsim

import (
	"fmt"
	"sort"
	"strings"

	"pair/internal/dram"
)

// PagePolicy selects the controller's row-buffer management policy.
type PagePolicy int

const (
	// OpenPage leaves rows open after an access, betting on locality;
	// conflicting accesses pay an explicit PRE before the next ACT.
	OpenPage PagePolicy = iota
	// ClosedPage auto-precharges after every access (RDA/WRA), betting
	// against locality; every access pays ACT but never a conflict PRE.
	ClosedPage
)

func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open"
	case ClosedPage:
		return "closed"
	}
	return fmt.Sprintf("PagePolicy(%d)", int(p))
}

// RefreshMode selects how refresh blocks command issue.
type RefreshMode int

const (
	// RefreshAllBank blocks every bank for tRFC at each tREFI boundary
	// (DDR4 REFab).
	RefreshAllBank RefreshMode = iota
	// RefreshSameBank staggers per-bank refreshes (DDR5 REFsb / LPDDR5
	// per-bank refresh): one bank is blocked for tRFCsb per slot while
	// the rest of the device keeps serving.
	RefreshSameBank
)

func (m RefreshMode) String() string {
	switch m {
	case RefreshAllBank:
		return "all-bank"
	case RefreshSameBank:
		return "same-bank"
	}
	return fmt.Sprintf("RefreshMode(%d)", int(m))
}

// Profile bundles everything the timing simulator needs to model one
// memory subsystem generation: the device organization (burst length,
// bank-group geometry), the timing table, the channel/subchannel count,
// the refresh mode and the page policy. Profiles are addressable by spec
// (`ddr5-4800:policy=closed,channels=2`) from every binary, mirroring the
// schemes/faults grammars.
type Profile struct {
	// ID is the registered base profile identifier, e.g. "ddr5-4800".
	ID          string
	Description string

	// Org is the per-(sub)channel device organization. Its BurstLen
	// drives the data-bus occupancy of every access.
	Org    dram.Organization
	Timing Timing

	// Channels is the number of independent channels; Subchannels the
	// independent subchannels per channel (DDR5: two 32-bit subchannels
	// sharing the DIMM). Cache lines interleave across all of them.
	Channels    int
	Subchannels int

	Policy  PagePolicy
	Refresh RefreshMode

	// spec is the canonical spec this profile was built from (ID when
	// constructed at defaults).
	spec string
}

// Spec returns the canonical spec string of the profile (option keys
// sorted), stable under parse/canonical round-trips.
func (p *Profile) Spec() string {
	if p.spec == "" {
		return p.ID
	}
	return p.spec
}

// Buses returns the number of independent data buses (channels x
// subchannels); each has its own banks, CAS history and burst timeline.
func (p *Profile) Buses() int {
	b := p.Channels * p.Subchannels
	if b < 1 {
		return 1
	}
	return b
}

// BurstCycles returns the data-bus occupancy in cycles of one access of
// BurstLen+extra beats (DDR: two beats per command-clock cycle, rounded
// up).
func (p *Profile) BurstCycles(extraBeats int) int {
	beats := p.Org.BurstLen + extraBeats
	return (beats + 1) / 2
}

// NumBanks returns the banks per device (the REFsb stagger universe).
func (p *Profile) NumBanks() int { return p.Org.BankGroups * p.Org.BanksPerGrp }

// RefSlotPeriod returns the same-bank refresh slot period in cycles: one
// REFsb fires per slot, rotating through the banks, so every bank is
// refreshed once per NumBanks slots.
func (p *Profile) RefSlotPeriod() uint64 {
	return uint64(p.Timing.TREFI) / uint64(p.NumBanks())
}

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	if err := p.Org.Validate(); err != nil {
		return err
	}
	switch {
	case p.Timing.NSPerCycle <= 0:
		return fmt.Errorf("memsim: profile %s: non-positive NSPerCycle", p.Spec())
	case p.Channels < 1 || p.Channels > 16:
		return fmt.Errorf("memsim: profile %s: channels %d out of range [1,16]", p.Spec(), p.Channels)
	case p.Subchannels < 1 || p.Subchannels > 4:
		return fmt.Errorf("memsim: profile %s: subchannels %d out of range [1,4]", p.Spec(), p.Subchannels)
	}
	if p.Refresh == RefreshSameBank {
		if p.Timing.TRFCSB <= 0 {
			return fmt.Errorf("memsim: profile %s: same-bank refresh needs TRFCSB > 0", p.Spec())
		}
		if p.RefSlotPeriod() == 0 {
			return fmt.Errorf("memsim: profile %s: tREFI too short for %d REFsb slots", p.Spec(), p.NumBanks())
		}
	}
	return nil
}

// Config returns a single-rank simulator configuration running this
// profile (seed 1, no ECC cost model).
func (p *Profile) Config() Config {
	return Config{Profile: p, Org: p.Org, Ranks: 1, Timing: p.Timing, Seed: 1}
}

// ProfileEntry is one registered profile.
type ProfileEntry struct {
	ID          string
	Description string
	New         func() Profile
}

var profileReg []ProfileEntry

// RegisterProfile adds a profile to the registry; duplicate IDs panic
// (registration is an init-time programming error).
func RegisterProfile(e ProfileEntry) {
	if e.ID == "" || e.New == nil {
		panic("memsim: RegisterProfile: empty ID or nil constructor")
	}
	for _, p := range profileReg {
		if p.ID == e.ID {
			panic("memsim: duplicate profile " + e.ID)
		}
	}
	profileReg = append(profileReg, e)
	sort.Slice(profileReg, func(i, j int) bool { return profileReg[i].ID < profileReg[j].ID })
}

// ProfileEntries returns the registered profiles, sorted by ID.
func ProfileEntries() []ProfileEntry {
	out := make([]ProfileEntry, len(profileReg))
	copy(out, profileReg)
	return out
}

// LookupProfile finds a registered profile by ID.
func LookupProfile(id string) (ProfileEntry, bool) {
	for _, e := range profileReg {
		if e.ID == id {
			return e, true
		}
	}
	return ProfileEntry{}, false
}

// ProfileIDs returns the registered profile IDs, sorted.
func ProfileIDs() []string {
	ids := make([]string, len(profileReg))
	for i, e := range profileReg {
		ids[i] = e.ID
	}
	return ids
}

func init() {
	RegisterProfile(ProfileEntry{
		ID:          "ddr4-2400",
		Description: "DDR4-2400R x16 channel: BL8, one 64-bit channel, all-bank refresh, open page (the study's baseline)",
		New: func() Profile {
			return Profile{
				ID:          "ddr4-2400",
				Description: "DDR4-2400 64-bit channel, BL8, REFab",
				Org:         dram.DDR4x16(),
				Timing:      DDR4_2400(),
				Channels:    1,
				Subchannels: 1,
				Policy:      OpenPage,
				Refresh:     RefreshAllBank,
			}
		},
	})
	RegisterProfile(ProfileEntry{
		ID:          "ddr5-4800",
		Description: "DDR5-4800 channel: two independent 32-bit subchannels, BL16, same-bank refresh (REFsb), open page",
		New: func() Profile {
			return Profile{
				ID:          "ddr5-4800",
				Description: "DDR5-4800 2x32-bit subchannels, BL16, REFsb",
				Org:         dram.DDR5x16(),
				Timing:      DDR5_4800(),
				Channels:    1,
				Subchannels: 2,
				Policy:      OpenPage,
				Refresh:     RefreshSameBank,
			}
		},
	})
	RegisterProfile(ProfileEntry{
		ID:          "lpddr5-6400",
		Description: "LPDDR5-6400: two x16 channels, BL16, per-bank refresh, closed page (mobile-style controller)",
		New: func() Profile {
			return Profile{
				ID:          "lpddr5-6400",
				Description: "LPDDR5-6400 2x16-bit channels, BL16, per-bank refresh, closed page",
				Org:         dram.LPDDR5x16(),
				Timing:      LPDDR5_6400(),
				Channels:    2,
				Subchannels: 1,
				Policy:      ClosedPage,
				Refresh:     RefreshSameBank,
			}
		},
	})
}

// ListProfilesText renders the profile registry as the text every CLI
// prints for -list-profiles: the spec grammar, one line per profile, a
// parameter table and the option keys. The output is deterministic; CI
// diffs it against the README profile table so docs cannot drift.
func ListProfilesText() string {
	var b strings.Builder
	b.WriteString("profile spec grammar: name[:key=val,...]   e.g. ddr5-4800:channels=2,policy=closed\n\n")

	b.WriteString("profiles\n")
	for _, e := range ProfileEntries() {
		fmt.Fprintf(&b, "  %-12s %s\n", e.ID, e.Description)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "%-12s %-9s %-6s %-6s %-10s %-7s %-9s %s\n",
		"profile", "ns/cycle", "BL", "buses", "refresh", "policy", "banks", "CL/tRCD/tRP/tRFC")
	for _, e := range ProfileEntries() {
		p := e.New()
		trfc := p.Timing.TRFC
		if p.Refresh == RefreshSameBank {
			trfc = p.Timing.TRFCSB
		}
		fmt.Fprintf(&b, "%-12s %-9.4g %-6d %-6d %-10s %-7s %dx%-6d %d/%d/%d/%d\n",
			e.ID, p.Timing.NSPerCycle, p.Org.BurstLen, p.Buses(), p.Refresh, p.Policy,
			p.Org.BankGroups, p.Org.BanksPerGrp,
			p.Timing.CL, p.Timing.TRCD, p.Timing.TRP, trfc)
	}

	b.WriteString("\noptions\n")
	b.WriteString("  policy    open|closed — row-buffer management (closed auto-precharges after every access)\n")
	b.WriteString("  channels  1..16 — independent channels; cache lines interleave across channels x subchannels\n")
	b.WriteString("  refresh   all-bank|same-bank — REFab blackout vs staggered per-bank REFsb windows\n")
	return b.String()
}
