package memsim_test

import (
	"testing"

	"pair/internal/ecc"
	"pair/internal/memsim"
	"pair/internal/trace"
)

func TestScrubTrafficInjected(t *testing.T) {
	wl := seqReads(3000)
	cfg := memsim.DefaultConfig()
	cfg.ScrubPeriod = 500
	res := Run(cfg, wl)
	if res.ScrubReads == 0 {
		t.Fatal("no scrub reads injected")
	}
	// Rough rate check: about one scrub per 500 cycles of runtime.
	want := res.Cycles / 500
	if res.ScrubReads < want/2 || res.ScrubReads > want*2 {
		t.Fatalf("scrub reads %d, expected ~%d", res.ScrubReads, want)
	}
	// Scrubbing must cost cycles.
	base := Run(memsim.DefaultConfig(), wl)
	if res.Cycles <= base.Cycles {
		t.Fatal("scrub traffic free")
	}
	// Trace read accounting must be unaffected.
	if res.Reads != base.Reads {
		t.Fatal("scrub reads leaked into trace read count")
	}
}

func TestScrubOffByDefault(t *testing.T) {
	res := Run(memsim.DefaultConfig(), trace.SPECLike(500)[0])
	if res.ScrubReads != 0 {
		t.Fatal("scrubbing on by default")
	}
}

func TestReadLatencyHistogram(t *testing.T) {
	res := Run(memsim.DefaultConfig(), seqReads(2000))
	if res.ReadLatency == nil || res.ReadLatency.Count() != 2000 {
		t.Fatalf("histogram missing or wrong count")
	}
	tm := memsim.DDR4_2400()
	p99 := res.P99ReadLatencyNS(tm)
	avg := res.AvgReadLatencyNS(tm)
	if p99 < avg {
		t.Fatalf("p99 %.1f < mean %.1f", p99, avg)
	}
	if (memsim.Result{}).P99ReadLatencyNS(tm) != 0 {
		t.Fatal("empty result must report 0 p99")
	}
}

func TestTailLatencyGrowsUnderRMWCosts(t *testing.T) {
	// Companion writes and RMW reads interfere with reads: the p99 read
	// latency must grow more than the mean when XED-like costs apply.
	wl := trace.Generate(trace.Params{
		Name: "wh", Requests: 6000, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 0.6, MaskedFrac: 0.4, MeanGap: 3, Window: 8, Seed: 9,
	})
	tm := memsim.DDR4_2400()
	base := Run(memsim.DefaultConfig(), wl)
	cfg := memsim.DefaultConfig()
	cfg.Cost = ecc.AccessCost{ExtraWritesPerWrite: 1, ExtraReadsPerMaskedWrite: 1}
	xed := Run(cfg, wl)
	if xed.P99ReadLatencyNS(tm) <= base.P99ReadLatencyNS(tm) {
		t.Fatalf("tail latency did not grow: %.1f vs %.1f",
			xed.P99ReadLatencyNS(tm), base.P99ReadLatencyNS(tm))
	}
}
