package memsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/stats"
	"pair/internal/trace"
)

// Config parameterizes one simulation run.
type Config struct {
	Org    dram.Organization
	Ranks  int
	Timing Timing
	Cost   ecc.AccessCost
	Seed   int64
	// ScrubPeriod, when positive, injects one patrol-scrub read every
	// ScrubPeriod cycles (walking the address space sequentially) — the
	// background traffic a memory-scrubbing reliability policy costs.
	ScrubPeriod uint64
	// Observer, when non-nil, receives every DRAM command the scheduler
	// issues (ACT/PRE/RD/WR/REF) in non-decreasing time order. It feeds
	// the protocol checker and observability layers in memsim/check.
	Observer Observer
}

// DefaultConfig returns a single-rank DDR4-2400 x16 channel with no ECC
// cost model.
func DefaultConfig() Config {
	return Config{Org: dram.DDR4x16(), Ranks: 1, Timing: DDR4_2400(), Seed: 1}
}

// CmdCounts tallies the DRAM commands issued during a run.
type CmdCounts struct {
	ACT, PRE, RD, WR, REF uint64
}

// Result aggregates one run.
type Result struct {
	Cycles         uint64 // completion time of the last operation
	Reads          uint64 // trace reads
	Writes         uint64 // trace writes (full + masked)
	MaskedWrites   uint64
	ExtraReads     uint64 // RMW and detection re-reads
	ExtraWrites    uint64 // companion parity writes
	RowHits        uint64
	RowMisses      uint64
	Refreshes      uint64
	ScrubReads     uint64 // injected patrol-scrub reads
	ReadLatencySum uint64 // sum over trace reads, in cycles
	// Cmds is the command-bus histogram (RD/WR include scrub and
	// ECC-cost extras; REF mirrors Refreshes).
	Cmds CmdCounts
	// BusBusyCycles is the total data-bus occupancy, for utilization.
	BusBusyCycles uint64
	// ReadLatency holds the per-read latency distribution in cycles
	// (tail latency is where RMW and companion-write interference show).
	ReadLatency *stats.Histogram
}

// P99ReadLatencyNS returns the 99th-percentile trace-read latency in
// nanoseconds (0 when no reads were observed).
func (r Result) P99ReadLatencyNS(t Timing) float64 {
	if r.ReadLatency == nil || r.ReadLatency.Count() == 0 {
		return 0
	}
	return r.ReadLatency.Percentile(99) * t.NSPerCycle
}

// AvgReadLatencyNS returns the mean trace-read latency in nanoseconds.
func (r Result) AvgReadLatencyNS(t Timing) float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.ReadLatencySum) / float64(r.Reads) * t.NSPerCycle
}

// ExecSeconds returns wall-clock execution time.
func (r Result) ExecSeconds(t Timing) float64 {
	return float64(r.Cycles) * t.NSPerCycle * 1e-9
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (r Result) RowHitRate() float64 {
	if n := r.RowHits + r.RowMisses; n > 0 {
		return float64(r.RowHits) / float64(n)
	}
	return 0
}

// BusUtilization returns the fraction of run cycles the data bus was
// transferring.
func (r Result) BusUtilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.BusBusyCycles) / float64(r.Cycles)
}

type opKind int

const (
	opRead opKind = iota
	opWrite
)

// op is one bus-level access derived from a trace request.
type op struct {
	kind      opKind
	line      uint64
	readyAt   uint64 // earliest schedulable cycle
	enq       uint64 // admission time (FCFS order, latency base)
	reqIdx    int    // owning trace request, -1 for posted extras
	dependent *op    // released when this op completes (RMW write leg)
	last      bool   // completing this op completes the trace request
	isRead    bool   // trace-visible read (latency accounting)
}

type bankState struct {
	openRow  int
	actOK    uint64 // earliest next ACT (tRC)
	casOK    uint64 // earliest next CAS after ACT (tRCD met)
	preOK    uint64 // earliest next PRE
	lastBeat uint64 // end of last data transfer on this bank
}

type completionEvent struct {
	at     uint64
	reqIdx int
	o      *op
}

type completionHeap []completionEvent

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completionEvent)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// simulator carries the run state.
type simulator struct {
	cfg    Config
	mapper *dram.AddressMapper
	rng    *rand.Rand

	now         uint64
	banks       []bankState
	busFreeAt   uint64
	lastCASGrp  int // bank group of the previous CAS (-1 initially)
	lastCASAt   uint64
	lastWasWr   bool
	lastDataEnd uint64
	fawRing     [][]uint64 // per rank, last 4 ACT times
	lastACTRank []uint64   // per rank, last ACT time (tRRD_S)
	lastACTGrp  [][]uint64 // per rank per bank group, last ACT time (tRRD_L)
	lastRefresh uint64

	evbuf []Command // per-schedule event batch, sorted before delivery

	res Result
}

// Run simulates the workload under the configuration and returns the
// aggregate result. Runs are deterministic for a fixed (Config, Workload).
// An invalid Organization/Ranks combination is reported as an error
// (the zero Ranks defaults to 1).
func Run(cfg Config, wl trace.Workload) (Result, error) {
	if cfg.Ranks == 0 {
		cfg.Ranks = 1
	}
	if cfg.Ranks < 0 {
		return Result{}, fmt.Errorf("memsim: invalid rank count %d", cfg.Ranks)
	}
	if cfg.Timing.NSPerCycle == 0 {
		cfg.Timing = DDR4_2400()
	}
	mapper, err := dram.NewAddressMapper(cfg.Org, cfg.Ranks)
	if err != nil {
		return Result{}, fmt.Errorf("memsim: %w", err)
	}
	s := &simulator{
		cfg:        cfg,
		mapper:     mapper,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		lastCASGrp: -1,
	}
	s.res.ReadLatency = stats.NewHistogram()
	s.banks = make([]bankState, mapper.NumFlatBanks())
	for i := range s.banks {
		s.banks[i].openRow = -1
	}
	s.fawRing = make([][]uint64, cfg.Ranks)
	s.lastACTRank = make([]uint64, cfg.Ranks)
	s.lastACTGrp = make([][]uint64, cfg.Ranks)
	for i := range s.fawRing {
		s.fawRing[i] = make([]uint64, 4)
		s.lastACTGrp[i] = make([]uint64, cfg.Org.BankGroups)
	}
	s.run(wl)
	return s.res, nil
}

// MustRun is Run for configurations known to be valid; it panics on a
// configuration error. Intended for tests and examples.
func MustRun(cfg Config, wl trace.Workload) Result {
	res, err := Run(cfg, wl)
	if err != nil {
		panic(err.Error())
	}
	return res
}

func (s *simulator) run(wl trace.Workload) {
	window := wl.Window
	if window <= 0 {
		window = 8
	}
	cap64 := s.mapper.Capacity()

	var (
		pending     []*op // admitted, schedulable (or waiting on readyAt)
		completions completionHeap
		outstanding int
		traceIdx    int
		arrive      uint64 // issue-pipeline clock of the next trace request
		lastFinish  uint64
		nextScrub   = s.cfg.ScrubPeriod
		scrubLine   uint64
	)
	if len(wl.Reqs) > 0 {
		arrive = uint64(wl.Reqs[0].Gap)
	}
	admit := func() {
		for traceIdx < len(wl.Reqs) && arrive <= s.now && outstanding < window {
			r := wl.Reqs[traceIdx]
			line := r.Line % cap64
			ops := s.expand(r, line, traceIdx)
			pending = append(pending, ops...)
			outstanding++
			traceIdx++
			if traceIdx < len(wl.Reqs) {
				arrive += uint64(wl.Reqs[traceIdx].Gap)
				if arrive < s.now {
					arrive = s.now
				}
			}
		}
	}

	for {
		// Retire completions up to now.
		for len(completions) > 0 && completions[0].at <= s.now {
			ev := heap.Pop(&completions).(completionEvent)
			if ev.reqIdx >= 0 {
				outstanding--
			}
			if ev.o != nil && ev.o.dependent != nil {
				dep := ev.o.dependent
				dep.readyAt = ev.at
				pending = append(pending, dep)
			}
		}
		admit()
		// Patrol scrub: one read per elapsed period, each stamped at its
		// scheduled time so a multi-period jump of the clock catches up
		// without compressing the ScrubReads accounting.
		for s.cfg.ScrubPeriod > 0 && s.now >= nextScrub {
			pending = append(pending, &op{kind: opRead, line: scrubLine % cap64, readyAt: nextScrub, enq: nextScrub, reqIdx: -1})
			s.res.ScrubReads++
			scrubLine += 64 // stride across rows over time
			nextScrub += s.cfg.ScrubPeriod
		}

		// Pick the next operation: FR-FCFS with write draining.
		idx := s.pick(pending)
		if idx < 0 {
			// Nothing schedulable now: advance time to the next event.
			next := uint64(math.MaxUint64)
			if len(completions) > 0 {
				next = completions[0].at
			}
			if traceIdx < len(wl.Reqs) && outstanding < window && arrive < next {
				next = arrive
			}
			for _, o := range pending {
				if o.readyAt > s.now && o.readyAt < next {
					next = o.readyAt
				}
			}
			// Patrol scrubs fire on time during request gaps — but only
			// while work remains, so a drained run still terminates.
			if s.cfg.ScrubPeriod > 0 && nextScrub < next &&
				(len(pending) > 0 || outstanding > 0 || traceIdx < len(wl.Reqs)) {
				next = nextScrub
			}
			if next == uint64(math.MaxUint64) {
				break // drained
			}
			s.now = next
			continue
		}
		o := pending[idx]
		pending = append(pending[:idx], pending[idx+1:]...)
		finish := s.schedule(o)
		if finish > lastFinish {
			lastFinish = finish
		}
		if o.isRead {
			s.res.ReadLatencySum += finish - o.enq
			s.res.ReadLatency.Observe(float64(finish - o.enq))
		}
		reqIdx := -1
		if o.last {
			reqIdx = o.reqIdx
		}
		heap.Push(&completions, completionEvent{at: finish, reqIdx: reqIdx, o: o})
	}
	s.res.Cycles = lastFinish
}

// expand turns a trace request into bus operations, applying the ECC cost
// model.
func (s *simulator) expand(r trace.Request, line uint64, idx int) []*op {
	cost := s.cfg.Cost
	var ops []*op
	switch r.Op {
	case trace.Read:
		s.res.Reads++
		ops = append(ops, &op{kind: opRead, line: line, readyAt: s.now, enq: s.now, reqIdx: idx, last: true, isRead: true})
		if cost.DetectionRereadRate > 0 && s.rng.Float64() < cost.DetectionRereadRate {
			s.res.ExtraReads++
			ops = append(ops, &op{kind: opRead, line: line, readyAt: s.now, enq: s.now, reqIdx: -1})
		}
	case trace.Write, trace.MaskedWrite:
		s.res.Writes++
		w := &op{kind: opWrite, line: line, readyAt: s.now, enq: s.now, reqIdx: idx, last: true}
		if r.Op == trace.MaskedWrite {
			s.res.MaskedWrites++
			if cost.ExtraReadsPerMaskedWrite > 0 && s.rng.Float64() < cost.ExtraReadsPerMaskedWrite {
				// Read-modify-write: the write leg waits for the read.
				s.res.ExtraReads++
				rd := &op{kind: opRead, line: line, readyAt: s.now, enq: s.now, reqIdx: idx, dependent: w}
				ops = append(ops, rd)
				w = nil // released on read completion
			}
		}
		if w != nil {
			ops = append(ops, w)
		}
		if cost.ExtraWritesPerWrite > 0 && s.rng.Float64() < cost.ExtraWritesPerWrite {
			// Companion parity-image write (posted; separate region).
			s.res.ExtraWrites++
			pline := (line + s.mapper.Capacity()/2) % s.mapper.Capacity()
			ops = append(ops, &op{kind: opWrite, line: pline, readyAt: s.now, enq: s.now, reqIdx: -1})
		}
		if cost.ExtraReadsPerWrite > 0 && s.rng.Float64() < cost.ExtraReadsPerWrite {
			s.res.ExtraReads++
			ops = append(ops, &op{kind: opRead, line: line, readyAt: s.now, enq: s.now, reqIdx: -1})
		}
	}
	return ops
}

// pick chooses the next operation index, or -1 if none is ready. Policy:
// FR-FCFS — row hits first, then oldest — with reads prioritized over
// writes unless the write backlog exceeds the drain threshold.
func (s *simulator) pick(pending []*op) int {
	const drainThreshold = 12
	nwReady, nrReady := 0, 0
	for _, o := range pending {
		if o.readyAt <= s.now {
			if o.kind == opWrite {
				nwReady++
			} else {
				nrReady++
			}
		}
	}
	if nwReady+nrReady == 0 {
		return -1
	}
	preferWrites := nwReady > drainThreshold || nrReady == 0

	best := -1
	bestHit := false
	var bestEnq uint64
	for i, o := range pending {
		if o.readyAt > s.now {
			continue
		}
		if (o.kind == opWrite) != preferWrites {
			continue
		}
		a := s.mapper.Map(o.line)
		hit := s.banks[s.mapper.FlatBank(a)].openRow == a.Row
		if best < 0 || (hit && !bestHit) || (hit == bestHit && o.enq < bestEnq) {
			best = i
			bestHit = hit
			bestEnq = o.enq
		}
	}
	return best
}

// refreshDefer pushes a command time out of the refresh blackout window:
// an all-bank refresh starts at every multiple of tREFI (absolute time)
// and blocks command issue for tRFC; the window itself elapses in the
// background, so only commands landing inside it stall.
func refreshDefer(t Timing, x uint64) uint64 {
	idx := x / uint64(t.TREFI)
	if idx == 0 {
		return x
	}
	if start := idx * uint64(t.TREFI); x < start+uint64(t.TRFC) {
		return start + uint64(t.TRFC)
	}
	return x
}

// emit queues a command event for this scheduling step (no-op without an
// observer).
func (s *simulator) emit(c Command) {
	if s.cfg.Observer != nil {
		s.evbuf = append(s.evbuf, c)
	}
}

// flushEvents delivers the step's events in time order.
func (s *simulator) flushEvents() {
	if len(s.evbuf) == 0 {
		return
	}
	sort.SliceStable(s.evbuf, func(i, j int) bool { return s.evbuf[i].At < s.evbuf[j].At })
	for _, c := range s.evbuf {
		s.cfg.Observer.Observe(c)
	}
	s.evbuf = s.evbuf[:0]
}

// schedule issues the operation, advancing bank/bus state, and returns its
// completion cycle. Command times are planned first (every JEDEC floor is
// a lower bound, so each constraint only moves commands later), then
// committed and emitted to the observer in time order.
func (s *simulator) schedule(o *op) uint64 {
	t := s.cfg.Timing
	a := s.mapper.Map(o.line)
	fb := s.mapper.FlatBank(a)
	b := &s.banks[fb]
	isWrite := o.kind == opWrite
	miss := b.openRow != a.Row

	earliest := refreshDefer(t, maxU(s.now, o.readyAt))

	// Row management plan.
	var preAt, actAt, casAt uint64
	needPRE := false
	if miss {
		actFloor := earliest
		if b.openRow >= 0 {
			// A row is open: precharge it first (tRAS/tWR/tRTP hold PRE
			// back via preOK; tRP separates PRE from the next ACT).
			needPRE = true
			preAt = refreshDefer(t, maxU(earliest, b.preOK))
			actFloor = preAt + uint64(t.TRP)
		}
		// Inter-ACT constraints within the rank: tRC on the bank, tRRD_S
		// against the last ACT anywhere in the rank, tRRD_L against the
		// last ACT in the same bank group, and the tFAW window.
		ring := s.fawRing[a.Rank]
		actAt = maxU(actFloor, b.actOK,
			ring[0]+uint64(t.TFAW),
			s.lastACTRank[a.Rank]+uint64(t.TRRDS),
			s.lastACTGrp[a.Rank][a.Group]+uint64(t.TRRDL))
		actAt = refreshDefer(t, actAt)
		casAt = maxU(earliest, actAt+uint64(t.TRCD))
	} else {
		casAt = maxU(earliest, b.casOK)
	}

	// CAS-to-CAS spacing by bank group, and bus turnaround.
	if s.lastCASGrp >= 0 {
		ccd := uint64(t.TCCDS)
		if s.lastCASGrp == a.Group {
			ccd = uint64(t.TCCDL)
		}
		casAt = maxU(casAt, s.lastCASAt+ccd)
	}
	if s.lastDataEnd > 0 {
		if isWrite && !s.lastWasWr {
			casAt = maxU(casAt, s.lastDataEnd+uint64(t.TRTW))
		} else if !isWrite && s.lastWasWr {
			casAt = maxU(casAt, s.lastDataEnd+uint64(t.TWTR))
		}
	}

	// Data-bus occupancy.
	extra := s.cfg.Cost.ExtraReadBeats
	casToData := uint64(t.CL)
	if isWrite {
		extra = s.cfg.Cost.ExtraWriteBeats
		casToData = uint64(t.CWL)
	}
	burst := uint64(t.BurstCycles(extra))
	if s.busFreeAt > casAt+casToData {
		casAt = s.busFreeAt - casToData
	}
	casAt = refreshDefer(t, casAt)

	dataStart := casAt + casToData
	dataEnd := dataStart + burst

	// Refresh accounting: count every tREFI boundary the command clock
	// crossed since the last one observed.
	if refIdx := casAt / uint64(t.TREFI); refIdx > s.lastRefresh {
		for k := s.lastRefresh + 1; k <= refIdx; k++ {
			s.emit(Command{Kind: CmdREF, At: k * uint64(t.TREFI), FlatBank: -1})
		}
		s.res.Refreshes += refIdx - s.lastRefresh
		s.res.Cmds.REF += refIdx - s.lastRefresh
		s.lastRefresh = refIdx
	}

	// Commit state.
	if miss {
		s.res.RowMisses++
		if needPRE {
			closed := a
			closed.Row = b.openRow
			closed.Col = 0
			s.emit(Command{Kind: CmdPRE, At: preAt, Addr: closed, FlatBank: fb})
			s.res.Cmds.PRE++
		}
		ring := s.fawRing[a.Rank]
		copy(ring, ring[1:])
		ring[3] = actAt
		s.lastACTRank[a.Rank] = actAt
		s.lastACTGrp[a.Rank][a.Group] = actAt
		b.actOK = actAt + uint64(t.TRC)
		b.casOK = actAt + uint64(t.TRCD)
		b.preOK = actAt + uint64(t.TRAS)
		b.openRow = a.Row
		opened := a
		opened.Col = 0
		s.emit(Command{Kind: CmdACT, At: actAt, Addr: opened, FlatBank: fb})
		s.res.Cmds.ACT++
	} else {
		s.res.RowHits++
	}

	s.now = casAt
	s.lastCASGrp = a.Group
	s.lastCASAt = casAt
	s.lastWasWr = isWrite
	s.lastDataEnd = dataEnd
	s.busFreeAt = dataEnd
	b.casOK = maxU(b.casOK, casAt+uint64(t.TCCDL))
	kind := CmdRD
	if isWrite {
		kind = CmdWR
		b.preOK = maxU(b.preOK, dataEnd+uint64(t.TWR))
		s.res.Cmds.WR++
	} else {
		b.preOK = maxU(b.preOK, casAt+uint64(t.TRTP))
		s.res.Cmds.RD++
	}
	b.lastBeat = dataEnd
	s.res.BusBusyCycles += burst
	s.emit(Command{Kind: kind, At: casAt, Addr: a, FlatBank: fb, Line: o.line, DataStart: dataStart, DataEnd: dataEnd})
	s.flushEvents()

	finish := dataEnd
	if !isWrite {
		finish += s.cfg.Timing.NSToCycles(s.cfg.Cost.DecodeLatencyNS)
	}
	return finish
}

func maxU(xs ...uint64) uint64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
