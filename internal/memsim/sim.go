package memsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/stats"
	"pair/internal/trace"
)

// Config parameterizes one simulation run.
type Config struct {
	// Profile, when non-nil, selects the full device profile (organization,
	// timing, channel count, refresh mode, page policy) and overrides Org
	// and Timing. A nil Profile preserves the legacy single-bus behavior:
	// Org + Timing with all-bank refresh and open-page policy.
	Profile *Profile

	Org    dram.Organization
	Ranks  int
	Timing Timing
	Cost   ecc.AccessCost
	Seed   int64
	// ScrubPeriod, when positive, injects one patrol-scrub read every
	// ScrubPeriod cycles (walking the address space sequentially) — the
	// background traffic a memory-scrubbing reliability policy costs.
	ScrubPeriod uint64
	// Observer, when non-nil, receives every DRAM command the scheduler
	// issues (ACT/PRE/RD/WR/REF/REFsb) in non-decreasing time order. It
	// feeds the protocol checker and observability layers in memsim/check.
	Observer Observer
}

// DefaultConfig returns a single-rank DDR4-2400 x16 channel with no ECC
// cost model.
func DefaultConfig() Config {
	return Config{Org: dram.DDR4x16(), Ranks: 1, Timing: DDR4_2400(), Seed: 1}
}

// CmdCounts tallies the DRAM commands issued during a run.
type CmdCounts struct {
	ACT, PRE, RD, WR, REF uint64
}

// Result aggregates one run.
type Result struct {
	Cycles         uint64 // completion time of the last operation
	Reads          uint64 // trace reads
	Writes         uint64 // trace writes (full + masked)
	MaskedWrites   uint64
	ExtraReads     uint64 // RMW and detection re-reads
	ExtraWrites    uint64 // companion parity writes
	RowHits        uint64
	RowMisses      uint64
	Refreshes      uint64 // REFab boundaries, or REFsb slots in same-bank mode
	ScrubReads     uint64 // injected patrol-scrub reads
	ReadLatencySum uint64 // sum over trace reads, in cycles
	// Cmds is the command-bus histogram (RD/WR include scrub and
	// ECC-cost extras; REF mirrors Refreshes and includes REFsb).
	Cmds CmdCounts
	// BusBusyCycles is the total data-bus occupancy summed over buses.
	BusBusyCycles uint64
	// ReadLatency holds the per-read latency distribution in cycles
	// (tail latency is where RMW and companion-write interference show).
	ReadLatency *stats.Histogram
}

// P99ReadLatencyNS returns the 99th-percentile trace-read latency in
// nanoseconds (0 when no reads were observed).
func (r Result) P99ReadLatencyNS(t Timing) float64 {
	if r.ReadLatency == nil || r.ReadLatency.Count() == 0 {
		return 0
	}
	return r.ReadLatency.Percentile(99) * t.NSPerCycle
}

// P999ReadLatencyNS returns the 99.9th-percentile trace-read latency in
// nanoseconds (0 when no reads were observed) — the deep-tail metric the
// traffic experiments report.
func (r Result) P999ReadLatencyNS(t Timing) float64 {
	if r.ReadLatency == nil || r.ReadLatency.Count() == 0 {
		return 0
	}
	return r.ReadLatency.Percentile(99.9) * t.NSPerCycle
}

// AvgReadLatencyNS returns the mean trace-read latency in nanoseconds.
func (r Result) AvgReadLatencyNS(t Timing) float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.ReadLatencySum) / float64(r.Reads) * t.NSPerCycle
}

// ExecSeconds returns wall-clock execution time.
func (r Result) ExecSeconds(t Timing) float64 {
	return float64(r.Cycles) * t.NSPerCycle * 1e-9
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (r Result) RowHitRate() float64 {
	if n := r.RowHits + r.RowMisses; n > 0 {
		return float64(r.RowHits) / float64(n)
	}
	return 0
}

// BusUtilization returns the fraction of run cycles the data buses were
// transferring. Occupancy is summed over buses, so multi-bus profiles can
// exceed 1.0 when subchannels transfer concurrently.
func (r Result) BusUtilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.BusBusyCycles) / float64(r.Cycles)
}

type opKind int

const (
	opRead opKind = iota
	opWrite
)

// op is one bus-level access derived from a trace request.
type op struct {
	kind      opKind
	line      uint64
	readyAt   uint64 // earliest schedulable cycle
	enq       uint64 // admission time (FCFS order, latency base)
	reqIdx    int    // owning trace request, -1 for posted extras
	dependent *op    // released when this op completes (RMW write leg)
	last      bool   // completing this op completes the trace request
	isRead    bool   // trace-visible read (latency accounting)
}

type bankState struct {
	openRow  int
	actOK    uint64 // earliest next ACT (tRC)
	casOK    uint64 // earliest next CAS after ACT (tRCD met)
	preOK    uint64 // earliest next PRE
	lastBeat uint64 // end of last data transfer on this bank
}

type completionEvent struct {
	at     uint64
	reqIdx int
	o      *op
}

// completionQueue is a typed binary min-heap on completion time. It
// replicates container/heap's sift algorithm exactly (append + sift-up on
// push; swap-root-to-tail + sift-down on pop), because the pop order of
// equal-time completions determines pending-queue order and therefore the
// golden cycle counts.
type completionQueue []completionEvent

func (q *completionQueue) push(e completionEvent) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].at <= h[i].at {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*q = h
}

func (q *completionQueue) pop() completionEvent {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].at < h[l].at {
			m = r
		}
		if h[i].at <= h[m].at {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e := h[n]
	*q = h[:n]
	return e
}

// busState is the timing state of one data bus (channel or subchannel):
// its banks, burst timeline, CAS/ACT history and turnaround direction.
type busState struct {
	banks       []bankState
	busFreeAt   uint64
	lastCASGrp  int // bank group of the previous CAS (-1 initially)
	lastCASAt   uint64
	lastWasWr   bool
	lastDataEnd uint64
	fawRing     [][]uint64 // per rank, last 4 ACT times
	lastACTRank []uint64   // per rank, last ACT time (tRRD_S)
	lastACTGrp  [][]uint64 // per rank per bank group, last ACT time (tRRD_L)
}

// simulator carries the run state.
type simulator struct {
	cfg    Config
	prof   *Profile
	mapper *dram.AddressMapper
	rng    *rand.Rand

	now         uint64
	buses       []busState
	nBuses      uint64
	totalCap    uint64 // addressable lines across all buses
	lastRefresh uint64 // last REFab boundary or REFsb slot observed

	evbuf []Command // per-schedule event batch, sorted before delivery
	held  []Command // future-time events (closed-page auto-PRE)

	res Result
}

// Run simulates the workload under the configuration and returns the
// aggregate result. Runs are deterministic for a fixed (Config, Workload).
// An invalid Organization/Ranks combination is reported as an error
// (the zero Ranks defaults to 1).
func Run(cfg Config, wl trace.Workload) (Result, error) {
	if cfg.Ranks == 0 {
		cfg.Ranks = 1
	}
	if cfg.Ranks < 0 {
		return Result{}, fmt.Errorf("memsim: invalid rank count %d", cfg.Ranks)
	}
	prof := cfg.Profile
	if prof != nil {
		if err := prof.Validate(); err != nil {
			return Result{}, err
		}
		cfg.Org = prof.Org
		cfg.Timing = prof.Timing
	} else {
		if cfg.Timing.NSPerCycle == 0 {
			cfg.Timing = DDR4_2400()
		}
		// Legacy configuration: wrap Org+Timing in an implicit single-bus,
		// all-bank-refresh, open-page profile so every scheduling decision
		// below is profile-derived yet bit-identical to the DDR4 era.
		p := Profile{ID: "custom", Org: cfg.Org, Timing: cfg.Timing, Channels: 1, Subchannels: 1}
		prof = &p
	}
	mapper, err := dram.NewAddressMapper(cfg.Org, cfg.Ranks)
	if err != nil {
		return Result{}, fmt.Errorf("memsim: %w", err)
	}
	s := &simulator{
		cfg:    cfg,
		prof:   prof,
		mapper: mapper,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	s.res.ReadLatency = stats.NewHistogram()
	s.nBuses = uint64(prof.Buses())
	s.totalCap = mapper.Capacity() * s.nBuses
	s.buses = make([]busState, s.nBuses)
	for bi := range s.buses {
		bus := &s.buses[bi]
		bus.lastCASGrp = -1
		bus.banks = make([]bankState, mapper.NumFlatBanks())
		for i := range bus.banks {
			bus.banks[i].openRow = -1
		}
		bus.fawRing = make([][]uint64, cfg.Ranks)
		bus.lastACTRank = make([]uint64, cfg.Ranks)
		bus.lastACTGrp = make([][]uint64, cfg.Ranks)
		for i := range bus.fawRing {
			bus.fawRing[i] = make([]uint64, 4)
			bus.lastACTGrp[i] = make([]uint64, cfg.Org.BankGroups)
		}
	}
	s.run(wl)
	return s.res, nil
}

// MustRun is Run for configurations known to be valid; it panics on a
// configuration error. Intended for tests and examples.
func MustRun(cfg Config, wl trace.Workload) Result {
	res, err := Run(cfg, wl)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// locate maps a line index to its data bus and per-bus address: lines
// interleave across buses (bus = line mod buses), so consecutive lines
// spread over channels/subchannels.
func (s *simulator) locate(line uint64) (int, dram.Address) {
	if s.nBuses == 1 {
		return 0, s.mapper.Map(line)
	}
	return int(line % s.nBuses), s.mapper.Map(line / s.nBuses)
}

func (s *simulator) run(wl trace.Workload) {
	window := wl.Window
	if window <= 0 {
		window = 8
	}
	cap64 := s.totalCap

	var (
		pending     []*op // admitted, schedulable (or waiting on readyAt)
		completions completionQueue
		outstanding int
		traceIdx    int
		arrive      uint64 // issue-pipeline clock of the next trace request
		lastFinish  uint64
		nextScrub   = s.cfg.ScrubPeriod
		scrubLine   uint64
	)
	if len(wl.Reqs) > 0 {
		arrive = uint64(wl.Reqs[0].Gap)
	}
	admit := func() {
		for traceIdx < len(wl.Reqs) && arrive <= s.now && outstanding < window {
			r := wl.Reqs[traceIdx]
			line := r.Line % cap64
			ops := s.expand(r, line, traceIdx)
			pending = append(pending, ops...)
			outstanding++
			traceIdx++
			if traceIdx < len(wl.Reqs) {
				arrive += uint64(wl.Reqs[traceIdx].Gap)
				if arrive < s.now {
					arrive = s.now
				}
			}
		}
	}

	for {
		// Retire completions up to now.
		for len(completions) > 0 && completions[0].at <= s.now {
			ev := completions.pop()
			if ev.reqIdx >= 0 {
				outstanding--
			}
			if ev.o != nil && ev.o.dependent != nil {
				dep := ev.o.dependent
				dep.readyAt = ev.at
				pending = append(pending, dep)
			}
		}
		admit()
		// Patrol scrub: one read per elapsed period, each stamped at its
		// scheduled time so a multi-period jump of the clock catches up
		// without compressing the ScrubReads accounting.
		for s.cfg.ScrubPeriod > 0 && s.now >= nextScrub {
			pending = append(pending, &op{kind: opRead, line: scrubLine % cap64, readyAt: nextScrub, enq: nextScrub, reqIdx: -1})
			s.res.ScrubReads++
			scrubLine += 64 // stride across rows over time
			nextScrub += s.cfg.ScrubPeriod
		}

		// Pick the next operation: FR-FCFS with write draining.
		idx := s.pick(pending)
		if idx < 0 {
			// Nothing schedulable now: advance time to the next event.
			next := uint64(math.MaxUint64)
			if len(completions) > 0 {
				next = completions[0].at
			}
			if traceIdx < len(wl.Reqs) && outstanding < window && arrive < next {
				next = arrive
			}
			for _, o := range pending {
				if o.readyAt > s.now && o.readyAt < next {
					next = o.readyAt
				}
			}
			// Patrol scrubs fire on time during request gaps — but only
			// while work remains, so a drained run still terminates.
			if s.cfg.ScrubPeriod > 0 && nextScrub < next &&
				(len(pending) > 0 || outstanding > 0 || traceIdx < len(wl.Reqs)) {
				next = nextScrub
			}
			if next == uint64(math.MaxUint64) {
				break // drained
			}
			s.now = next
			continue
		}
		o := pending[idx]
		pending = append(pending[:idx], pending[idx+1:]...)
		finish := s.schedule(o)
		if finish > lastFinish {
			lastFinish = finish
		}
		if o.isRead {
			s.res.ReadLatencySum += finish - o.enq
			s.res.ReadLatency.Observe(float64(finish - o.enq))
		}
		reqIdx := -1
		if o.last {
			reqIdx = o.reqIdx
		}
		completions.push(completionEvent{at: finish, reqIdx: reqIdx, o: o})
	}
	s.drainHeld()
	s.res.Cycles = lastFinish
}

// expand turns a trace request into bus operations, applying the ECC cost
// model.
func (s *simulator) expand(r trace.Request, line uint64, idx int) []*op {
	cost := s.cfg.Cost
	var ops []*op
	switch r.Op {
	case trace.Read:
		s.res.Reads++
		ops = append(ops, &op{kind: opRead, line: line, readyAt: s.now, enq: s.now, reqIdx: idx, last: true, isRead: true})
		if cost.DetectionRereadRate > 0 && s.rng.Float64() < cost.DetectionRereadRate {
			s.res.ExtraReads++
			ops = append(ops, &op{kind: opRead, line: line, readyAt: s.now, enq: s.now, reqIdx: -1})
		}
	case trace.Write, trace.MaskedWrite:
		s.res.Writes++
		w := &op{kind: opWrite, line: line, readyAt: s.now, enq: s.now, reqIdx: idx, last: true}
		if r.Op == trace.MaskedWrite {
			s.res.MaskedWrites++
			if cost.ExtraReadsPerMaskedWrite > 0 && s.rng.Float64() < cost.ExtraReadsPerMaskedWrite {
				// Read-modify-write: the write leg waits for the read.
				s.res.ExtraReads++
				rd := &op{kind: opRead, line: line, readyAt: s.now, enq: s.now, reqIdx: idx, dependent: w}
				ops = append(ops, rd)
				w = nil // released on read completion
			}
		}
		if w != nil {
			ops = append(ops, w)
		}
		if cost.ExtraWritesPerWrite > 0 && s.rng.Float64() < cost.ExtraWritesPerWrite {
			// Companion parity-image write (posted; separate region).
			s.res.ExtraWrites++
			pline := (line + s.totalCap/2) % s.totalCap
			ops = append(ops, &op{kind: opWrite, line: pline, readyAt: s.now, enq: s.now, reqIdx: -1})
		}
		if cost.ExtraReadsPerWrite > 0 && s.rng.Float64() < cost.ExtraReadsPerWrite {
			s.res.ExtraReads++
			ops = append(ops, &op{kind: opRead, line: line, readyAt: s.now, enq: s.now, reqIdx: -1})
		}
	}
	return ops
}

// pick chooses the next operation index, or -1 if none is ready. Policy:
// FR-FCFS — row hits first, then oldest — with reads prioritized over
// writes unless the write backlog exceeds the drain threshold.
func (s *simulator) pick(pending []*op) int {
	const drainThreshold = 12
	nwReady, nrReady := 0, 0
	for _, o := range pending {
		if o.readyAt <= s.now {
			if o.kind == opWrite {
				nwReady++
			} else {
				nrReady++
			}
		}
	}
	if nwReady+nrReady == 0 {
		return -1
	}
	preferWrites := nwReady > drainThreshold || nrReady == 0

	best := -1
	bestHit := false
	var bestEnq uint64
	for i, o := range pending {
		if o.readyAt > s.now {
			continue
		}
		if (o.kind == opWrite) != preferWrites {
			continue
		}
		busIdx, a := s.locate(o.line)
		hit := s.buses[busIdx].banks[s.mapper.FlatBank(a)].openRow == a.Row
		if best < 0 || (hit && !bestHit) || (hit == bestHit && o.enq < bestEnq) {
			best = i
			bestHit = hit
			bestEnq = o.enq
		}
	}
	return best
}

// refreshDefer pushes a command time out of the refresh blackout window.
// All-bank mode: a refresh starts at every multiple of tREFI (absolute
// time) and blocks every bank for tRFC. Same-bank mode: REFsb slots fire
// every tREFI/banks cycles rotating through the banks, and only commands
// to the refreshing bank stall, for tRFCsb. The windows elapse in the
// background; only commands landing inside them are deferred.
func (s *simulator) refreshDefer(x uint64, bankIdx int) uint64 {
	t := s.cfg.Timing
	if s.prof.Refresh == RefreshSameBank {
		period := s.prof.RefSlotPeriod()
		nb := uint64(s.prof.NumBanks())
		g := x / period
		if g < uint64(bankIdx) {
			return x
		}
		g -= (g - uint64(bankIdx)) % nb
		if g == 0 {
			return x
		}
		if start := g * period; x < start+uint64(t.TRFCSB) {
			return start + uint64(t.TRFCSB)
		}
		return x
	}
	idx := x / uint64(t.TREFI)
	if idx == 0 {
		return x
	}
	if start := idx * uint64(t.TREFI); x < start+uint64(t.TRFC) {
		return start + uint64(t.TRFC)
	}
	return x
}

// emit queues a command event for this scheduling step (no-op without an
// observer).
func (s *simulator) emit(c Command) {
	if s.cfg.Observer != nil {
		s.evbuf = append(s.evbuf, c)
	}
}

// emitHeld queues a future-time command (closed-page auto-precharge) that
// must not be delivered until the clock passes it.
func (s *simulator) emitHeld(c Command) {
	if s.cfg.Observer != nil {
		s.held = append(s.held, c)
	}
}

// flushEvents delivers the step's events in time order, merging in any
// held events the clock has passed.
func (s *simulator) flushEvents() {
	if s.cfg.Observer == nil {
		return
	}
	if len(s.held) > 0 {
		kept := s.held[:0]
		for _, c := range s.held {
			if c.At <= s.now {
				s.evbuf = append(s.evbuf, c)
			} else {
				kept = append(kept, c)
			}
		}
		s.held = kept
	}
	if len(s.evbuf) == 0 {
		return
	}
	sort.SliceStable(s.evbuf, func(i, j int) bool { return s.evbuf[i].At < s.evbuf[j].At })
	for _, c := range s.evbuf {
		s.cfg.Observer.Observe(c)
	}
	s.evbuf = s.evbuf[:0]
}

// drainHeld delivers any still-held events at the end of the run; they
// all lie at or beyond the final clock, so time order is preserved.
func (s *simulator) drainHeld() {
	if s.cfg.Observer == nil || len(s.held) == 0 {
		return
	}
	s.evbuf = append(s.evbuf, s.held...)
	s.held = s.held[:0]
	sort.SliceStable(s.evbuf, func(i, j int) bool { return s.evbuf[i].At < s.evbuf[j].At })
	for _, c := range s.evbuf {
		s.cfg.Observer.Observe(c)
	}
	s.evbuf = s.evbuf[:0]
}

// schedule issues the operation, advancing bank/bus state, and returns its
// completion cycle. Command times are planned first (every JEDEC floor is
// a lower bound, so each constraint only moves commands later), then
// committed and emitted to the observer in time order.
func (s *simulator) schedule(o *op) uint64 {
	t := s.cfg.Timing
	busIdx, a := s.locate(o.line)
	bus := &s.buses[busIdx]
	fb := s.mapper.FlatBank(a)
	b := &bus.banks[fb]
	bankIdx := a.Group*s.cfg.Org.BanksPerGrp + a.Bank
	isWrite := o.kind == opWrite
	miss := b.openRow != a.Row

	earliest := s.refreshDefer(maxU(s.now, o.readyAt), bankIdx)

	// Row management plan.
	var preAt, actAt, casAt uint64
	needPRE := false
	if miss {
		actFloor := earliest
		if b.openRow >= 0 {
			// A row is open: precharge it first (tRAS/tWR/tRTP hold PRE
			// back via preOK; tRP separates PRE from the next ACT).
			needPRE = true
			preAt = s.refreshDefer(maxU(earliest, b.preOK), bankIdx)
			actFloor = preAt + uint64(t.TRP)
		}
		// Inter-ACT constraints within the rank: tRC on the bank, tRRD_S
		// against the last ACT anywhere in the rank, tRRD_L against the
		// last ACT in the same bank group, and the tFAW window.
		ring := bus.fawRing[a.Rank]
		actAt = maxU(actFloor, b.actOK,
			ring[0]+uint64(t.TFAW),
			bus.lastACTRank[a.Rank]+uint64(t.TRRDS),
			bus.lastACTGrp[a.Rank][a.Group]+uint64(t.TRRDL))
		actAt = s.refreshDefer(actAt, bankIdx)
		casAt = maxU(earliest, actAt+uint64(t.TRCD))
	} else {
		casAt = maxU(earliest, b.casOK)
	}

	// CAS-to-CAS spacing by bank group, and bus turnaround — both per
	// data bus; independent subchannels do not constrain each other.
	if bus.lastCASGrp >= 0 {
		ccd := uint64(t.TCCDS)
		if bus.lastCASGrp == a.Group {
			ccd = uint64(t.TCCDL)
		}
		casAt = maxU(casAt, bus.lastCASAt+ccd)
	}
	if bus.lastDataEnd > 0 {
		if isWrite && !bus.lastWasWr {
			casAt = maxU(casAt, bus.lastDataEnd+uint64(t.TRTW))
		} else if !isWrite && bus.lastWasWr {
			casAt = maxU(casAt, bus.lastDataEnd+uint64(t.TWTR))
		}
	}

	// Data-bus occupancy: the burst length is profile-derived (BL8 = 4
	// cycles, BL16 = 8), extended by the scheme's extra beats.
	extra := s.cfg.Cost.ExtraReadBeats
	casToData := uint64(t.CL)
	if isWrite {
		extra = s.cfg.Cost.ExtraWriteBeats
		casToData = uint64(t.CWL)
	}
	burst := uint64(s.prof.BurstCycles(extra))
	if bus.busFreeAt > casAt+casToData {
		casAt = bus.busFreeAt - casToData
	}
	casAt = s.refreshDefer(casAt, bankIdx)

	dataStart := casAt + casToData
	dataEnd := dataStart + burst

	// Refresh accounting: count every refresh boundary (tREFI in all-bank
	// mode, REFsb slot in same-bank mode) the command clock crossed since
	// the last one observed.
	if s.prof.Refresh == RefreshSameBank {
		period := s.prof.RefSlotPeriod()
		nb := uint64(s.prof.NumBanks())
		if slot := casAt / period; slot > s.lastRefresh {
			for g := s.lastRefresh + 1; g <= slot; g++ {
				bank := int(g % nb)
				s.emit(Command{Kind: CmdREFSB, At: g * period, FlatBank: -1, Channel: -1,
					Addr: dram.Address{Group: bank / s.cfg.Org.BanksPerGrp, Bank: bank % s.cfg.Org.BanksPerGrp}})
			}
			s.res.Refreshes += slot - s.lastRefresh
			s.res.Cmds.REF += slot - s.lastRefresh
			s.lastRefresh = slot
		}
	} else if refIdx := casAt / uint64(t.TREFI); refIdx > s.lastRefresh {
		for k := s.lastRefresh + 1; k <= refIdx; k++ {
			s.emit(Command{Kind: CmdREF, At: k * uint64(t.TREFI), FlatBank: -1})
		}
		s.res.Refreshes += refIdx - s.lastRefresh
		s.res.Cmds.REF += refIdx - s.lastRefresh
		s.lastRefresh = refIdx
	}

	// Commit state.
	if miss {
		s.res.RowMisses++
		if needPRE {
			closed := a
			closed.Row = b.openRow
			closed.Col = 0
			s.emit(Command{Kind: CmdPRE, At: preAt, Addr: closed, FlatBank: fb, Channel: busIdx})
			s.res.Cmds.PRE++
		}
		ring := bus.fawRing[a.Rank]
		copy(ring, ring[1:])
		ring[3] = actAt
		bus.lastACTRank[a.Rank] = actAt
		bus.lastACTGrp[a.Rank][a.Group] = actAt
		b.actOK = actAt + uint64(t.TRC)
		b.casOK = actAt + uint64(t.TRCD)
		b.preOK = actAt + uint64(t.TRAS)
		b.openRow = a.Row
		opened := a
		opened.Col = 0
		s.emit(Command{Kind: CmdACT, At: actAt, Addr: opened, FlatBank: fb, Channel: busIdx})
		s.res.Cmds.ACT++
	} else {
		s.res.RowHits++
	}

	s.now = casAt
	bus.lastCASGrp = a.Group
	bus.lastCASAt = casAt
	bus.lastWasWr = isWrite
	bus.lastDataEnd = dataEnd
	bus.busFreeAt = dataEnd
	b.casOK = maxU(b.casOK, casAt+uint64(t.TCCDL))
	kind := CmdRD
	if isWrite {
		kind = CmdWR
		b.preOK = maxU(b.preOK, dataEnd+uint64(t.TWR))
		s.res.Cmds.WR++
	} else {
		b.preOK = maxU(b.preOK, casAt+uint64(t.TRTP))
		s.res.Cmds.RD++
	}
	b.lastBeat = dataEnd
	s.res.BusBusyCycles += burst
	s.emit(Command{Kind: kind, At: casAt, Addr: a, FlatBank: fb, Channel: busIdx, Line: o.line, DataStart: dataStart, DataEnd: dataEnd})

	if s.prof.Policy == ClosedPage {
		// Auto-precharge (RDA/WRA): close the row as soon as tRAS, tRTP
		// (reads) and tWR (writes) allow — preOK already carries all three
		// floors — and gate the bank's next ACT on tRP after it. The PRE
		// event lies in the future, so it is held until the clock passes.
		preAt := s.refreshDefer(b.preOK, bankIdx)
		closed := a
		closed.Col = 0
		s.emitHeld(Command{Kind: CmdPRE, At: preAt, Addr: closed, FlatBank: fb, Channel: busIdx})
		s.res.Cmds.PRE++
		b.openRow = -1
		b.actOK = maxU(b.actOK, preAt+uint64(t.TRP))
	}
	s.flushEvents()

	finish := dataEnd
	if !isWrite {
		finish += s.cfg.Timing.NSToCycles(s.cfg.Cost.DecodeLatencyNS)
	}
	return finish
}

func maxU(xs ...uint64) uint64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
