package memsim_test

import (
	"strings"
	"testing"

	"pair/internal/memsim"
	"pair/internal/trace"
)

func TestProfileRegistry(t *testing.T) {
	ids := memsim.ProfileIDs()
	want := []string{"ddr4-2400", "ddr5-4800", "lpddr5-6400"}
	if len(ids) != len(want) {
		t.Fatalf("profiles %v, want %v", ids, want)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("profiles %v, want %v", ids, want)
		}
		e, ok := memsim.LookupProfile(id)
		if !ok || e.ID != id || e.Description == "" {
			t.Fatalf("lookup %q: %+v ok=%v", id, e, ok)
		}
		p := e.New()
		if err := p.Validate(); err != nil {
			t.Fatalf("builtin %q invalid: %v", id, err)
		}
		if p.Spec() != id {
			t.Fatalf("builtin %q spec %q", id, p.Spec())
		}
	}
	if _, ok := memsim.LookupProfile("ddr6"); ok {
		t.Fatal("phantom profile")
	}
	list := memsim.ListProfilesText()
	for _, id := range want {
		if !strings.Contains(list, id) {
			t.Fatalf("ListProfilesText missing %q:\n%s", id, list)
		}
	}
}

func TestProfileGeometry(t *testing.T) {
	ddr4 := memsim.MustProfile("ddr4-2400")
	if ddr4.Buses() != 1 || ddr4.Policy != memsim.OpenPage || ddr4.Refresh != memsim.RefreshAllBank {
		t.Fatalf("ddr4 geometry: %+v", ddr4)
	}
	ddr5 := memsim.MustProfile("ddr5-4800")
	if ddr5.Buses() != 2 || ddr5.Subchannels != 2 || ddr5.Org.BurstLen != 16 {
		t.Fatalf("ddr5 geometry: %+v", ddr5)
	}
	if ddr5.Refresh != memsim.RefreshSameBank || ddr5.NumBanks() != 32 {
		t.Fatalf("ddr5 refresh geometry: %+v", ddr5)
	}
	if ddr5.RefSlotPeriod() != uint64(ddr5.Timing.TREFI)/32 {
		t.Fatalf("ddr5 slot period %d", ddr5.RefSlotPeriod())
	}
	lp := memsim.MustProfile("lpddr5-6400")
	if lp.Channels != 2 || lp.Policy != memsim.ClosedPage || lp.NumBanks() != 16 {
		t.Fatalf("lpddr5 geometry: %+v", lp)
	}
	if memsim.OpenPage.String() != "open" || memsim.ClosedPage.String() != "closed" ||
		memsim.RefreshAllBank.String() != "all-bank" || memsim.RefreshSameBank.String() != "same-bank" {
		t.Fatal("enum strings")
	}
}

func TestParseProfileSpec(t *testing.T) {
	cases := []struct {
		spec      string
		canonical string
		ok        bool
	}{
		{"ddr4-2400", "ddr4-2400", true},
		{"ddr5-4800:policy=closed", "ddr5-4800:policy=closed", true},
		{"ddr5-4800:policy=closed,channels=2", "ddr5-4800:channels=2,policy=closed", true},
		{"x:b=2,a=1", "x:a=1,b=2", true}, // syntax only; Build resolves the ID
		{"", "", false},
		{":policy=open", "", false},
		{"ddr5-4800:policy=open:channels=2", "", false},
		{"ddr5-4800:policy", "", false},
		{"ddr5-4800:=open", "", false},
		{"ddr5-4800:policy=open,policy=closed", "", false},
	}
	for _, tc := range cases {
		s, err := memsim.ParseProfileSpec(tc.spec)
		if tc.ok != (err == nil) {
			t.Fatalf("parse %q: err=%v, want ok=%v", tc.spec, err, tc.ok)
		}
		if err != nil {
			continue
		}
		if s.String() != tc.canonical {
			t.Fatalf("parse %q canonical %q, want %q", tc.spec, s.String(), tc.canonical)
		}
		// Canonical form must reparse to itself.
		s2, err := memsim.ParseProfileSpec(s.String())
		if err != nil || s2.String() != s.String() {
			t.Fatalf("canonical %q not stable: %q, %v", s.String(), s2.String(), err)
		}
	}
}

func TestNewProfileOptions(t *testing.T) {
	p, err := memsim.NewProfile("ddr5-4800:policy=closed,channels=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Channels != 2 || p.Subchannels != 2 || p.Buses() != 4 || p.Policy != memsim.ClosedPage {
		t.Fatalf("options not applied: %+v", p)
	}
	if p.Spec() != "ddr5-4800:channels=2,policy=closed" {
		t.Fatalf("spec %q", p.Spec())
	}
	p2, err := memsim.NewProfile("ddr5-4800:refresh=all-bank")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Refresh != memsim.RefreshAllBank {
		t.Fatalf("refresh override: %+v", p2)
	}
	cfg := p.Config()
	if cfg.Profile != p || cfg.Ranks != 1 || cfg.Org.BurstLen != 16 {
		t.Fatalf("profile config: %+v", cfg)
	}
}

func TestNewProfileErrors(t *testing.T) {
	bad := []string{
		"ddr6",                     // unknown profile
		"ddr5-4800:tcl=40",         // unknown option
		"ddr5-4800:policy=maybe",   // bad policy
		"ddr5-4800:channels=0",     // out of range
		"ddr5-4800:channels=99",    // out of range
		"ddr5-4800:channels=two",   // not a number
		"ddr5-4800:refresh=never",  // bad refresh mode
		"ddr4-2400:refresh=same-bank", // DDR4 table has no tRFCsb
	}
	for _, spec := range bad {
		if _, err := memsim.NewProfile(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
	// Error text enumerates valid IDs (registry-driven UX).
	_, err := memsim.NewProfile("ddr6")
	if err == nil || !strings.Contains(err.Error(), "ddr5-4800") {
		t.Fatalf("unknown-profile error %v should list valid IDs", err)
	}
}

// FuzzParseProfileSpec asserts parse-or-reject (no panics) and the
// parse/canonical identity: any accepted spec's canonical form reparses
// to the same canonical form.
func FuzzParseProfileSpec(f *testing.F) {
	for _, seed := range []string{
		"ddr4-2400",
		"ddr5-4800:policy=closed,channels=2",
		"lpddr5-6400:refresh=all-bank",
		"a:b=c",
		":x=y",
		"p:k=v,k=v",
		"p:k=v:k=v",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := memsim.ParseProfileSpec(spec)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := memsim.ParseProfileSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q of accepted %q rejected: %v", canon, spec, err)
		}
		if s2.String() != canon {
			t.Fatalf("canonical not a fixed point: %q -> %q -> %q", spec, canon, s2.String())
		}
	})
}

// TestProfileRunsClean runs a mixed workload on every builtin profile and
// a few option variants with the profile-parameterized checker attached
// (via the harness Run); any protocol violation panics.
func TestProfileRunsClean(t *testing.T) {
	specs := []string{
		"ddr4-2400",
		"ddr5-4800",
		"ddr5-4800:policy=closed",
		"ddr5-4800:channels=2",
		"ddr5-4800:refresh=all-bank",
		"lpddr5-6400",
		"lpddr5-6400:policy=open",
	}
	wl := trace.Generate(trace.Params{
		Name: "mix", Requests: 3000, Lines: 1 << 16, Pattern: trace.Random,
		ReadFrac: 0.6, MaskedFrac: 0.3, MeanGap: 1, Window: 16, Seed: 42,
	})
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			cfg := memsim.MustProfile(spec).Config()
			res := Run(cfg, wl)
			if res.Cycles == 0 || res.Reads == 0 {
				t.Fatalf("degenerate run: %+v", res)
			}
			if res.RowHits+res.RowMisses != res.Reads+res.Writes {
				t.Fatalf("row accounting: %+v", res)
			}
		})
	}
}

func TestClosedPagePolicyNeverHits(t *testing.T) {
	// Closed page auto-precharges after every access: row hits are
	// impossible even on a maximally row-local stream.
	reqs := make([]trace.Request, 500)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Line: 5, Gap: 4}
	}
	wl := trace.Workload{Name: "hot", Window: 4, Reqs: reqs}
	res := Run(memsim.MustProfile("lpddr5-6400").Config(), wl)
	if res.RowHits != 0 || res.RowMisses != 500 {
		t.Fatalf("closed page hit rows: %+v", res)
	}
	// The same stream under open page is hit-dominated and faster.
	open := Run(memsim.MustProfile("lpddr5-6400:policy=open").Config(), wl)
	if open.RowHits == 0 {
		t.Fatalf("open-page control had no hits: %+v", open)
	}
	if open.Cycles >= res.Cycles {
		t.Fatalf("open page (%d cycles) not faster than closed (%d) on a hot row", open.Cycles, res.Cycles)
	}
}

func TestMoreChannelsFinishSaturatedStreamFaster(t *testing.T) {
	reqs := make([]trace.Request, 4000)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Line: uint64(i), Gap: 0}
	}
	wl := trace.Workload{Name: "sat", Window: 32, Reqs: reqs}
	two := Run(memsim.MustProfile("ddr5-4800").Config(), wl)            // 2 buses
	four := Run(memsim.MustProfile("ddr5-4800:channels=2").Config(), wl) // 4 buses
	if four.Cycles >= two.Cycles {
		t.Fatalf("4 buses (%d cycles) not faster than 2 (%d) when saturated", four.Cycles, two.Cycles)
	}
}

func TestSameBankRefreshEvents(t *testing.T) {
	prof := memsim.MustProfile("ddr5-4800")
	var refsb uint64
	var lastAt uint64
	period := prof.RefSlotPeriod()
	cfg := prof.Config()
	cfg.Observer = memsim.ObserverFunc(func(c memsim.Command) {
		if c.Kind == memsim.CmdREFSB {
			refsb++
			if c.At%period != 0 {
				t.Errorf("REFsb at %d not slot-aligned (period %d)", c.At, period)
			}
			if c.At <= lastAt && lastAt != 0 {
				t.Errorf("REFsb order: %d after %d", c.At, lastAt)
			}
			lastAt = c.At
		}
	})
	// Long sparse stream: the clock crosses many REFsb slots.
	reqs := make([]trace.Request, 400)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Line: uint64(i) * 97, Gap: 500}
	}
	res := memsim.MustRun(cfg, trace.Workload{Name: "sparse", Window: 4, Reqs: reqs})
	if refsb == 0 {
		t.Fatal("no REFsb events observed")
	}
	if res.Refreshes != refsb || res.Cmds.REF != refsb {
		t.Fatalf("Refreshes %d, Cmds.REF %d, events %d", res.Refreshes, res.Cmds.REF, refsb)
	}
	// Same-bank refresh beats the all-bank blackout on this stream: the
	// whole-device tRFC stall is replaced by per-bank tRFCsb windows.
	allBank := Run(memsim.MustProfile("ddr5-4800:refresh=all-bank").Config(),
		trace.Workload{Name: "sparse", Window: 4, Reqs: reqs})
	if allBank.Refreshes == 0 {
		t.Fatalf("all-bank control had no refreshes: %+v", allBank)
	}
}
