package memsim_test

import (
	"testing"

	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/memsim"
	"pair/internal/trace"
)

func seqReads(n int) trace.Workload {
	return trace.Generate(trace.Params{
		Name: "seq", Requests: n, Lines: 1 << 18, Pattern: trace.Sequential,
		ReadFrac: 1.0, MeanGap: 2, Window: 16, Seed: 1,
	})
}

func TestTimingHelpers(t *testing.T) {
	tm := memsim.DDR4_2400()
	ddr4 := memsim.MustProfile("ddr4-2400")
	if ddr4.BurstCycles(0) != 4 {
		t.Fatalf("BL8 = %d cycles", ddr4.BurstCycles(0))
	}
	if ddr4.BurstCycles(1) != 5 {
		t.Fatalf("BL9 = %d cycles (9 beats round up)", ddr4.BurstCycles(1))
	}
	ddr5 := memsim.MustProfile("ddr5-4800")
	if ddr5.BurstCycles(0) != 8 {
		t.Fatalf("BL16 = %d cycles", ddr5.BurstCycles(0))
	}
	if tm.NSToCycles(0) != 0 {
		t.Fatal("0ns != 0 cycles")
	}
	if tm.NSToCycles(0.9) != 2 {
		t.Fatalf("0.9ns = %d cycles, want 2 (round up)", tm.NSToCycles(0.9))
	}
}

func TestRunBasicInvariants(t *testing.T) {
	res := Run(memsim.DefaultConfig(), seqReads(2000))
	if res.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	if res.Reads != 2000 || res.Writes != 0 {
		t.Fatalf("counts wrong: %+v", res)
	}
	if res.RowHits+res.RowMisses != 2000 {
		t.Fatalf("row accounting wrong: %+v", res)
	}
	// Sequential reads must be row-hit dominated.
	if float64(res.RowHits)/2000 < 0.8 {
		t.Fatalf("sequential row hit rate %v too low", float64(res.RowHits)/2000)
	}
	if res.AvgReadLatencyNS(memsim.DDR4_2400()) < 10 {
		t.Fatalf("read latency %vns implausibly low", res.AvgReadLatencyNS(memsim.DDR4_2400()))
	}
	if res.ExecSeconds(memsim.DDR4_2400()) <= 0 {
		t.Fatal("non-positive execution time")
	}
}

func TestRunDeterministic(t *testing.T) {
	wl := trace.SPECLike(3000)[3] // gcc-like with writes
	a := Run(memsim.DefaultConfig(), wl)
	b := Run(memsim.DefaultConfig(), wl)
	// Compare everything except the histogram pointer; its percentiles
	// must also agree.
	ah, bh := a.ReadLatency, b.ReadLatency
	a.ReadLatency, b.ReadLatency = nil, nil
	if a != b {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
	if ah.Percentile(99) != bh.Percentile(99) || ah.Count() != bh.Count() {
		t.Fatal("latency distribution not deterministic")
	}
}

func TestRandomSlowerThanSequential(t *testing.T) {
	seq := Run(memsim.DefaultConfig(), trace.Generate(trace.Params{
		Name: "s", Requests: 4000, Lines: 1 << 18, Pattern: trace.Sequential,
		ReadFrac: 1, MeanGap: 2, Window: 16, Seed: 2,
	}))
	rnd := Run(memsim.DefaultConfig(), trace.Generate(trace.Params{
		Name: "r", Requests: 4000, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 1, MeanGap: 2, Window: 16, Seed: 2,
	}))
	if rnd.Cycles <= seq.Cycles {
		t.Fatalf("random (%d) not slower than sequential (%d)", rnd.Cycles, seq.Cycles)
	}
	if rnd.RowMisses <= seq.RowMisses {
		t.Fatal("random should miss rows more")
	}
}

func TestBurstExtensionCostsBandwidth(t *testing.T) {
	// DUO-style +1 beat must slow a bandwidth-bound stream measurably but
	// mildly (~10% upper bound at 12.5% more bus occupancy).
	wl := seqReads(6000)
	base := Run(memsim.DefaultConfig(), wl)
	cfg := memsim.DefaultConfig()
	cfg.Cost = ecc.AccessCost{ExtraReadBeats: 1, ExtraWriteBeats: 1}
	ext := Run(cfg, wl)
	slowdown := float64(ext.Cycles) / float64(base.Cycles)
	if slowdown <= 1.0 {
		t.Fatalf("burst extension did not slow down (%v)", slowdown)
	}
	if slowdown > 1.30 {
		t.Fatalf("burst extension slowdown %v implausibly large", slowdown)
	}
}

func TestExtraWritesCostThroughput(t *testing.T) {
	// XED-style companion writes on a write-heavy stream.
	wl := trace.Generate(trace.Params{
		Name: "w", Requests: 6000, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 0.5, MaskedFrac: 0, MeanGap: 2, Window: 16, Seed: 3,
	})
	base := Run(memsim.DefaultConfig(), wl)
	cfg := memsim.DefaultConfig()
	cfg.Cost = ecc.AccessCost{ExtraWritesPerWrite: 1.0}
	xed := Run(cfg, wl)
	if xed.ExtraWrites == 0 {
		t.Fatal("no companion writes issued")
	}
	slowdown := float64(xed.Cycles) / float64(base.Cycles)
	if slowdown < 1.05 {
		t.Fatalf("companion writes slowdown only %v", slowdown)
	}
}

func TestMaskedWriteRMW(t *testing.T) {
	wl := trace.Generate(trace.Params{
		Name: "m", Requests: 4000, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 0.4, MaskedFrac: 1.0, MeanGap: 2, Window: 8, Seed: 4,
	})
	base := Run(memsim.DefaultConfig(), wl)
	cfg := memsim.DefaultConfig()
	cfg.Cost = ecc.AccessCost{ExtraReadsPerMaskedWrite: 1.0}
	rmw := Run(cfg, wl)
	if rmw.ExtraReads == 0 {
		t.Fatal("no RMW reads issued")
	}
	if rmw.Cycles <= base.Cycles {
		t.Fatal("RMW did not slow down")
	}
	s := wl.Stats()
	if rmw.ExtraReads != uint64(s.MaskedWrites) {
		t.Fatalf("RMW reads %d != masked writes %d", rmw.ExtraReads, s.MaskedWrites)
	}
}

func TestDecodeLatencyAddsToReads(t *testing.T) {
	// Measure on an unloaded, serialized stream (window 1, long gaps):
	// there the decode adder appears verbatim in the idle read latency.
	// On saturated streams it instead surfaces as later window releases,
	// which TestSchemeCostsOrdering covers.
	wl := trace.Generate(trace.Params{
		Name: "idle", Requests: 1500, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 1, MeanGap: 200, Window: 1, Seed: 8,
	})
	base := Run(memsim.DefaultConfig(), wl)
	cfg := memsim.DefaultConfig()
	cfg.Cost = ecc.AccessCost{DecodeLatencyNS: 10}
	dec := Run(cfg, wl)
	diff := dec.AvgReadLatencyNS(cfg.Timing) - base.AvgReadLatencyNS(cfg.Timing)
	if diff < 8 || diff > 16 {
		t.Fatalf("latency delta %vns, want ~10ns", diff)
	}
	if dec.Cycles <= base.Cycles {
		t.Fatal("decode latency not visible in execution time of a serialized stream")
	}
}

func TestDetectionRereads(t *testing.T) {
	wl := seqReads(4000)
	cfg := memsim.DefaultConfig()
	cfg.Cost = ecc.AccessCost{DetectionRereadRate: 0.5}
	res := Run(cfg, wl)
	frac := float64(res.ExtraReads) / 4000
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("re-read rate %v, want ~0.5", frac)
	}
}

func TestRefreshHappens(t *testing.T) {
	// A long, slow trace must cross several tREFI boundaries.
	wl := trace.Generate(trace.Params{
		Name: "slow", Requests: 3000, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 1, MeanGap: 40, Window: 2, Seed: 5,
	})
	res := Run(memsim.DefaultConfig(), wl)
	if res.Refreshes == 0 {
		t.Fatal("no refreshes over a long run")
	}
}

func TestMultiRank(t *testing.T) {
	cfg := memsim.DefaultConfig()
	cfg.Ranks = 2
	res := Run(cfg, seqReads(2000))
	if res.Reads != 2000 {
		t.Fatal("multi-rank run lost requests")
	}
}

func TestWindowLimitsMLP(t *testing.T) {
	// The same random-read trace with window 1 must take much longer than
	// with window 16 (no overlap of row misses).
	base := trace.Params{
		Name: "w", Requests: 3000, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 1, MeanGap: 1, Seed: 6,
	}
	p1 := base
	p1.Window = 1
	p16 := base
	p16.Window = 16
	r1 := Run(memsim.DefaultConfig(), trace.Generate(p1))
	r16 := Run(memsim.DefaultConfig(), trace.Generate(p16))
	if float64(r1.Cycles)/float64(r16.Cycles) < 1.5 {
		t.Fatalf("window-1 (%d) not much slower than window-16 (%d)", r1.Cycles, r16.Cycles)
	}
}

func TestSchemeCostsOrdering(t *testing.T) {
	// End-to-end sanity on a write-heavy workload: XED-like costs must be
	// slowest; DUO-like and PAIR-like close to baseline.
	wl := trace.Generate(trace.Params{
		Name: "wh", Requests: 8000, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 0.55, MaskedFrac: 0.3, MeanGap: 2, Window: 12, Seed: 7,
	})
	run := func(c ecc.AccessCost) uint64 {
		cfg := memsim.DefaultConfig()
		cfg.Cost = c
		return Run(cfg, wl).Cycles
	}
	baseline := run(ecc.AccessCost{})
	pairC := run(ecc.AccessCost{DecodeLatencyNS: 2, ExtraReadsPerMaskedWrite: 1})
	duoC := run(ecc.AccessCost{ExtraReadBeats: 1, ExtraWriteBeats: 1, DecodeLatencyNS: 4, ExtraReadsPerMaskedWrite: 1})
	xedC := run(ecc.AccessCost{DecodeLatencyNS: 1, ExtraWritesPerWrite: 1, ExtraReadsPerMaskedWrite: 1})
	if !(baseline <= pairC && pairC <= xedC) {
		t.Fatalf("ordering broken: base=%d pair=%d xed=%d", baseline, pairC, xedC)
	}
	if !(pairC <= duoC && duoC <= xedC) {
		t.Fatalf("ordering broken: pair=%d duo=%d xed=%d", pairC, duoC, xedC)
	}
	// XED must cost more than PAIR by a visible margin on this mix.
	if float64(xedC)/float64(pairC) < 1.05 {
		t.Fatalf("XED/PAIR ratio %v too small", float64(xedC)/float64(pairC))
	}
	_ = dram.DDR4x16()
}
