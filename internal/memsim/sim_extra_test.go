package memsim_test

import (
	"testing"

	"pair/internal/dram"
	"pair/internal/memsim"
	"pair/internal/trace"
)

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := memsim.DefaultConfig()
	cfg.Org = dram.Organization{} // invalid: zero geometry
	if _, err := memsim.Run(cfg, seqReads(10)); err == nil {
		t.Fatal("Run accepted an invalid organization")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic on an invalid organization")
		}
	}()
	memsim.MustRun(cfg, seqReads(10))
}

func TestRunRanksValidation(t *testing.T) {
	cfg := memsim.DefaultConfig()
	cfg.Ranks = 0
	res, err := memsim.Run(cfg, seqReads(100))
	if err != nil || res.Reads != 100 {
		t.Fatalf("ranks=0 should default to 1: res=%+v err=%v", res, err)
	}
	cfg.Ranks = -3
	if _, err := memsim.Run(cfg, seqReads(100)); err == nil {
		t.Fatal("Run accepted a negative rank count")
	}
}

// TestEventStreamConsistent cross-checks the observer stream against the
// Result aggregates: time-ordered events, matching command counts, and
// a CAS count that explains every access the run reports.
func TestEventStreamConsistent(t *testing.T) {
	wl := trace.SPECLike(3000)[3] // gcc-like with writes
	var got memsim.CmdCounts
	var lastAt uint64
	cfg := memsim.DefaultConfig()
	cfg.Observer = memsim.ObserverFunc(func(c memsim.Command) {
		if c.At < lastAt {
			t.Fatalf("event stream not time-ordered: %s after @%d", c, lastAt)
		}
		lastAt = c.At
		switch c.Kind {
		case memsim.CmdACT:
			got.ACT++
		case memsim.CmdPRE:
			got.PRE++
		case memsim.CmdRD:
			got.RD++
		case memsim.CmdWR:
			got.WR++
		case memsim.CmdREF:
			got.REF++
		}
	})
	res := Run(cfg, wl)
	if got != res.Cmds {
		t.Fatalf("observer counts %+v != Result.Cmds %+v", got, res.Cmds)
	}
	if got.REF != res.Refreshes {
		t.Fatalf("REF events %d != Refreshes %d", got.REF, res.Refreshes)
	}
	if got.ACT != res.RowMisses {
		t.Fatalf("ACTs %d != row misses %d", got.ACT, res.RowMisses)
	}
	cas := got.RD + got.WR
	want := res.Reads + res.Writes + res.ExtraReads + res.ExtraWrites + res.ScrubReads
	if cas != want {
		t.Fatalf("CAS commands %d != accesses %d", cas, want)
	}
	if res.BusUtilization() <= 0 || res.BusUtilization() > 1 {
		t.Fatalf("bus utilization %v out of range", res.BusUtilization())
	}
	if res.RowHitRate() <= 0 || res.RowHitRate() >= 1 {
		t.Fatalf("row hit rate %v out of range", res.RowHitRate())
	}
}

// TestTRRDEnforcedBetweenACTs drives a timing grade whose tRCD is small
// enough that, without tRRD enforcement, back-to-back activates to
// different banks of a rank would pack closer than tRRD_S/tRRD_L.
func TestTRRDEnforcedBetweenACTs(t *testing.T) {
	tm := memsim.DDR4_2400()
	tm.TRCD = 1
	tm.TRP = 2
	tm.TRAS = 4
	tm.TRC = 8
	tm.TRRDS = 8
	tm.TRRDL = 12
	cfg := memsim.DefaultConfig()
	cfg.Timing = tm

	type act struct {
		at          uint64
		rank, group int
	}
	var acts []act
	cfg.Observer = memsim.ObserverFunc(func(c memsim.Command) {
		if c.Kind == memsim.CmdACT {
			acts = append(acts, act{c.At, c.Addr.Rank, c.Addr.Group})
		}
	})
	memsim.MustRun(cfg, trace.Generate(trace.Params{
		Name: "rrd", Requests: 3000, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 1, MeanGap: 1, Window: 16, Seed: 11,
	}))
	if len(acts) < 100 {
		t.Fatalf("only %d ACTs observed", len(acts))
	}
	lastRank := map[int]uint64{}
	lastGrp := map[[2]int]uint64{}
	for _, a := range acts {
		if prev, ok := lastRank[a.rank]; ok && a.at < prev+uint64(tm.TRRDS) {
			t.Fatalf("tRRD_S violated: ACT@%d only %d after ACT@%d", a.at, a.at-prev, prev)
		}
		if prev, ok := lastGrp[[2]int{a.rank, a.group}]; ok && a.at < prev+uint64(tm.TRRDL) {
			t.Fatalf("tRRD_L violated: ACT@%d only %d after ACT@%d", a.at, a.at-prev, prev)
		}
		lastRank[a.rank] = a.at
		lastGrp[[2]int{a.rank, a.group}] = a.at
	}
}

// TestScrubFiresDuringIdleGaps covers the idle-advance fix: a long
// request gap must not starve the patrol scrubber — scrub reads fire at
// their scheduled period throughout the gap rather than bunching up when
// the next request finally arrives.
func TestScrubFiresDuringIdleGaps(t *testing.T) {
	const period = 1000
	const gap = 200000
	reqs := []trace.Request{
		{Op: trace.Read, Line: 1, Gap: 0},
		{Op: trace.Read, Line: 2, Gap: gap},
	}
	cfg := memsim.DefaultConfig()
	cfg.ScrubPeriod = period
	var scrubRDs []uint64
	cfg.Observer = memsim.ObserverFunc(func(c memsim.Command) {
		if c.Kind == memsim.CmdRD {
			scrubRDs = append(scrubRDs, c.At)
		}
	})
	res := Run(cfg, trace.Workload{Name: "gap", Window: 2, Reqs: reqs})
	want := uint64(gap / period)
	if res.ScrubReads < want-2 || res.ScrubReads > want+2 {
		t.Fatalf("scrub reads %d, want ~%d over the gap", res.ScrubReads, want)
	}
	// The scrubs must be spread over the gap: every consecutive pair of
	// scrub reads inside the gap is ~one period apart, never compressed
	// into a burst at the end.
	var inGap []uint64
	for _, at := range scrubRDs {
		if at > 2*period && at < gap-2*period {
			inGap = append(inGap, at)
		}
	}
	if len(inGap) < int(want)/2 {
		t.Fatalf("only %d scrub reads landed inside the idle gap", len(inGap))
	}
	for i := 1; i < len(inGap); i++ {
		d := inGap[i] - inGap[i-1]
		if d < period/2 || d > period*2 {
			t.Fatalf("scrub spacing %d at #%d, want ~%d (compressed catch-up?)", d, i, uint64(period))
		}
	}
}
