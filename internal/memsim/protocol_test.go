package memsim_test

import (
	"testing"

	"pair/internal/memsim"
	"pair/internal/trace"
)

// isolatedRead builds a trace whose accesses are so far apart that every
// request sees an idle controller; latencies then reflect pure protocol
// timing.
func isolatedTrace(reqs []trace.Request) trace.Workload {
	return trace.Workload{Name: "isolated", Window: 1, Reqs: reqs}
}

func TestIsolatedRowMissLatency(t *testing.T) {
	// Random far-apart rows: every read is ACT + CAS: latency ~=
	// tRCD + CL + burst cycles.
	tm := memsim.DDR4_2400()
	reqs := make([]trace.Request, 200)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Line: uint64(i) * 1_000_003, Gap: 2000}
	}
	res := Run(memsim.DefaultConfig(), isolatedTrace(reqs))
	wantCycles := float64(tm.TRCD+tm.CL) + float64(memsim.MustProfile("ddr4-2400").BurstCycles(0))
	got := float64(res.ReadLatencySum) / float64(res.Reads)
	// Allow refresh interference and the occasional precharge.
	if got < wantCycles || got > wantCycles+float64(tm.TRP)+20 {
		t.Fatalf("isolated miss latency %.1f cycles, want ~%.0f", got, wantCycles)
	}
}

func TestIsolatedRowHitLatency(t *testing.T) {
	// Same row repeatedly: after the first access everything is a row
	// hit: latency ~= CL + burst.
	tm := memsim.DDR4_2400()
	reqs := make([]trace.Request, 200)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Line: 5, Gap: 2000}
	}
	res := Run(memsim.DefaultConfig(), isolatedTrace(reqs))
	if res.RowHits < 190 {
		t.Fatalf("row hits %d of 200", res.RowHits)
	}
	wantHit := float64(tm.CL) + float64(memsim.MustProfile("ddr4-2400").BurstCycles(0))
	got := float64(res.ReadLatencySum) / float64(res.Reads)
	// One miss amortized over 200 plus refresh slack.
	if got < wantHit || got > wantHit+10 {
		t.Fatalf("hit latency %.1f cycles, want ~%.0f", got, wantHit)
	}
}

func TestSameBankConflictSlowerThanDifferentBanks(t *testing.T) {
	// Back-to-back accesses to two rows of the SAME bank must pay tRC
	// per swap; the same pattern spread over different banks must not.
	cfg := memsim.DefaultConfig()
	mk := func(stride uint64) trace.Workload {
		reqs := make([]trace.Request, 2000)
		for i := range reqs {
			// Alternate two lines: stride chosen to land in same bank,
			// different rows (capacity/banks apart) vs different banks.
			reqs[i] = trace.Request{Op: trace.Read, Line: uint64(i%2) * stride, Gap: 1}
		}
		return trace.Workload{Name: "conflict", Window: 4, Reqs: reqs}
	}
	m, _ := cfg.Org, cfg.Ranks
	_ = m
	// Same bank, different row: stride = one full bank's worth of lines.
	sameBank := Run(cfg, mk(1<<20))
	// Different banks: adjacent lines (XOR interleave spreads them).
	diffBank := Run(cfg, mk(1))
	if sameBank.Cycles <= diffBank.Cycles {
		t.Fatalf("bank conflict (%d) not slower than interleaved (%d)", sameBank.Cycles, diffBank.Cycles)
	}
	if float64(sameBank.Cycles)/float64(diffBank.Cycles) < 1.5 {
		t.Fatalf("bank-conflict penalty too small: %d vs %d", sameBank.Cycles, diffBank.Cycles)
	}
}

func TestWriteThenReadTurnaround(t *testing.T) {
	// A read right after a write to the same open row pays tWTR: its
	// latency must exceed the pure row-hit read latency.
	tm := memsim.DDR4_2400()
	var reqs []trace.Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs,
			trace.Request{Op: trace.Write, Line: 7, Gap: 2000},
			trace.Request{Op: trace.Read, Line: 7, Gap: 0},
		)
	}
	res := Run(memsim.DefaultConfig(), trace.Workload{Name: "wtr", Window: 2, Reqs: reqs})
	hitLat := float64(tm.CL) + float64(memsim.MustProfile("ddr4-2400").BurstCycles(0))
	got := float64(res.ReadLatencySum) / float64(res.Reads)
	if got <= hitLat {
		t.Fatalf("post-write read latency %.1f <= pure hit %.1f: turnaround missing", got, hitLat)
	}
}

func TestThroughputBoundedByBus(t *testing.T) {
	// A fully saturated row-hit stream cannot beat one burst per
	// burst(+CCD) window: cycles >= reads * burst at the very least.
	reqs := make([]trace.Request, 5000)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Line: uint64(i), Gap: 0}
	}
	res := Run(memsim.DefaultConfig(), trace.Workload{Name: "sat", Window: 32, Reqs: reqs})
	burst := memsim.MustProfile("ddr4-2400").BurstCycles(0)
	if res.Cycles < uint64(len(reqs)*burst) {
		t.Fatalf("throughput exceeds bus capacity: %d cycles for %d bursts", res.Cycles, len(reqs))
	}
}
