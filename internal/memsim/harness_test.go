package memsim_test

import (
	"pair/internal/memsim"
	"pair/internal/memsim/check"
	"pair/internal/trace"
)

// Run executes the simulation with an independent JEDEC protocol checker
// riding the command stream. Any protocol violation panics with full
// command context — every test in this package doubles as a
// timing-correctness test of the scheduler. Profile runs get the
// profile-parameterized checker.
func Run(cfg memsim.Config, wl trace.Workload) memsim.Result {
	var chk *check.Checker
	if cfg.Profile != nil {
		chk = check.ForProfile(cfg.Profile)
	} else {
		tm := cfg.Timing
		if tm.NSPerCycle == 0 {
			tm = memsim.DDR4_2400()
		}
		chk = check.New(tm)
	}
	cfg.Observer = memsim.MultiObserver(cfg.Observer, chk)
	res := memsim.MustRun(cfg, wl)
	if err := chk.Err(); err != nil {
		panic("workload " + wl.Name + ": " + err.Error())
	}
	return res
}
