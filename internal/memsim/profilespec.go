package memsim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Profile spec grammar, with the same canonical-form discipline as
// schemes.ParseSpec and faults.ParseFaultSpec:
//
//	name[:key=val,...]
//
// where name is a registered profile ID and the options override the
// builtin defaults. Examples:
//
//	ddr4-2400
//	ddr5-4800:policy=closed,channels=2
//	lpddr5-6400:refresh=all-bank
//
// The canonical form (ProfileSpec.String) sorts option keys and keeps the
// raw option values; parsing the canonical form reproduces the spec
// exactly, so experiment labels embedding a spec stay stable.

// ProfileSpec is a parsed profile spec: a registered profile ID plus
// key=val overrides.
type ProfileSpec struct {
	ID      string
	Options map[string]string
}

// ParseProfileSpec parses the profile spec grammar. It only validates the
// syntax; Build resolves the ID and options against the registry.
func ParseProfileSpec(spec string) (ProfileSpec, error) {
	s := ProfileSpec{}
	head := spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		head = spec[:i]
		opts := spec[i+1:]
		if strings.IndexByte(opts, ':') >= 0 {
			return ProfileSpec{}, fmt.Errorf("memsim: malformed profile spec %q (only one ':' allowed)", spec)
		}
		s.Options = map[string]string{}
		for _, kv := range strings.Split(opts, ",") {
			k, v, found := strings.Cut(kv, "=")
			if !found || k == "" {
				return ProfileSpec{}, fmt.Errorf("memsim: malformed option %q in profile spec %q (want key=val)", kv, spec)
			}
			if _, dup := s.Options[k]; dup {
				return ProfileSpec{}, fmt.Errorf("memsim: duplicate option %q in profile spec %q", k, spec)
			}
			s.Options[k] = v
		}
	}
	if head == "" {
		return ProfileSpec{}, fmt.Errorf("memsim: empty profile name in spec %q", spec)
	}
	s.ID = head
	return s, nil
}

// String renders the spec in canonical form: options sorted by key with
// their raw values.
func (s ProfileSpec) String() string {
	var b strings.Builder
	b.WriteString(s.ID)
	if len(s.Options) > 0 {
		keys := make([]string, 0, len(s.Options))
		for k := range s.Options {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sep := byte(':')
		for _, k := range keys {
			b.WriteByte(sep)
			sep = ','
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(s.Options[k])
		}
	}
	return b.String()
}

// Build resolves the spec against the profile registry, applies the
// option overrides and validates the result. The built profile's Spec()
// is this spec's canonical form.
func (s ProfileSpec) Build() (*Profile, error) {
	e, ok := LookupProfile(s.ID)
	if !ok {
		return nil, fmt.Errorf("memsim: unknown profile %q (valid: %s)", s.ID, strings.Join(ProfileIDs(), ", "))
	}
	p := e.New()
	for _, k := range sortedKeys(s.Options) {
		v := s.Options[k]
		switch k {
		case "policy":
			switch v {
			case "open":
				p.Policy = OpenPage
			case "closed":
				p.Policy = ClosedPage
			default:
				return nil, fmt.Errorf("memsim: profile option policy=%q (want open or closed)", v)
			}
		case "channels":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > 16 {
				return nil, fmt.Errorf("memsim: profile option channels=%q (want 1..16)", v)
			}
			p.Channels = n
		case "refresh":
			switch v {
			case "all-bank":
				p.Refresh = RefreshAllBank
			case "same-bank":
				p.Refresh = RefreshSameBank
			default:
				return nil, fmt.Errorf("memsim: profile option refresh=%q (want all-bank or same-bank)", v)
			}
		default:
			return nil, fmt.Errorf("memsim: unknown profile option %q (valid: channels, policy, refresh)", k)
		}
	}
	p.spec = s.String()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NewProfile parses a spec string and builds the profile it describes.
// Errors enumerate the valid profile IDs or option keys.
func NewProfile(spec string) (*Profile, error) {
	s, err := ParseProfileSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// MustProfile is NewProfile, panicking on error; for specs known at
// compile time.
func MustProfile(spec string) *Profile {
	p, err := NewProfile(spec)
	if err != nil {
		panic(err)
	}
	return p
}
