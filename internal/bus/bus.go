// Package bus models the DDR4 data-bus signaling costs that differentiate
// the ECC architectures: Data Bus Inversion (DBI) and line toggling.
//
// DDR4 x16 devices drive a terminated (POD12) bus where transmitting a
// zero burns static current; the DBI-DC scheme inverts any byte lane with
// more than four zeros and asserts a ninth (DBI) line, roughly halving
// worst-case zero counts. XED cannot use DBI: its catch-word signaling
// repurposes exactly this side-band/encoding freedom (per the ISCA 2016
// design), so an XED system drives the bus un-inverted — the power-side
// cost the PAIR paper's comparison context implies. DUO transfers extra
// beats; PAIR changes nothing.
//
// The model is deliberately at the accounting level the study needs:
// given burst payloads (or the uniform-random expectation), it counts
// driven zeros (static power proxy) and line toggles (dynamic power
// proxy) per lane, with and without DBI.
package bus

import "math/bits"

// DBIThreshold is the zero-count above which DBI-DC inverts a byte lane.
const DBIThreshold = 4

// LaneBeat is the unit the bus drives: one byte lane in one beat.
// EncodeDBI returns the wire byte and whether the DBI line is asserted.
func EncodeDBI(data byte) (wire byte, invert bool) {
	zeros := 8 - bits.OnesCount8(data)
	if zeros > DBIThreshold {
		return ^data, true
	}
	return data, false
}

// ZerosDriven counts the zero bits the bus drives for one lane-beat under
// the given DBI mode, including the DBI line itself (driven low = zero
// when asserted, matching DDR4's active-low DBI_n convention where an
// asserted DBI costs one driven zero).
func ZerosDriven(data byte, dbi bool) int {
	if !dbi {
		return 8 - bits.OnesCount8(data)
	}
	wire, invert := EncodeDBI(data)
	z := 8 - bits.OnesCount8(wire)
	if invert {
		z++ // DBI_n driven low
	}
	return z
}

// BurstZeros sums driven zeros over a burst of lane bytes.
func BurstZeros(lane []byte, dbi bool) int {
	total := 0
	for _, b := range lane {
		total += ZerosDriven(b, dbi)
	}
	return total
}

// BurstToggles counts line transitions between consecutive beats on one
// byte lane (dynamic-power proxy), on the wire image (after DBI encoding
// when enabled; the DBI line's own toggles included).
func BurstToggles(lane []byte, dbi bool) int {
	if len(lane) < 2 {
		return 0
	}
	toggles := 0
	prevWire, prevInv := lane[0], false
	if dbi {
		prevWire, prevInv = EncodeDBI(lane[0])
	}
	for _, b := range lane[1:] {
		wire, inv := b, false
		if dbi {
			wire, inv = EncodeDBI(b)
		}
		toggles += bits.OnesCount8(wire ^ prevWire)
		if inv != prevInv {
			toggles++
		}
		prevWire, prevInv = wire, inv
	}
	return toggles
}

// ExpectedZerosPerByte returns the exact expectation of ZerosDriven for a
// uniformly random data byte, with or without DBI — the number the
// energy-proxy table uses for trace-free accounting.
func ExpectedZerosPerByte(dbi bool) float64 {
	total := 0
	for v := 0; v < 256; v++ {
		total += ZerosDriven(byte(v), dbi)
	}
	return float64(total) / 256.0
}

// AccessEnergyProxy estimates the driven-zero count of one 64-byte line
// transfer: lanes x beats x expected zeros, scaled by extraBeats beyond
// BL8 (DUO's extension) and by trafficFactor (XED's doubled write
// traffic). It is a relative proxy, not joules.
func AccessEnergyProxy(lanes, beats int, dbi bool, extraBeats int, trafficFactor float64) float64 {
	perByte := ExpectedZerosPerByte(dbi)
	return float64(lanes) * float64(beats+extraBeats) * perByte * trafficFactor
}
