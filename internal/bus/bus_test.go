package bus

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDBIInvertsHeavyZeroBytes(t *testing.T) {
	if wire, inv := EncodeDBI(0x00); !inv || wire != 0xFF {
		t.Fatalf("all-zero byte: wire=%#x inv=%v", wire, inv)
	}
	if wire, inv := EncodeDBI(0xFF); inv || wire != 0xFF {
		t.Fatalf("all-one byte: wire=%#x inv=%v", wire, inv)
	}
	// Exactly 4 zeros: no inversion (threshold is >4).
	if _, inv := EncodeDBI(0x0F); inv {
		t.Fatal("4-zero byte inverted")
	}
	// 5 zeros: inverted.
	if _, inv := EncodeDBI(0x07); !inv {
		t.Fatal("5-zero byte not inverted")
	}
}

func TestZerosDrivenBounds(t *testing.T) {
	// With DBI the driven zeros per lane-beat are at most 4 (data) + 1
	// (DBI line) = 5; without DBI up to 8.
	f := func(b byte) bool {
		z := ZerosDriven(b, true)
		if z < 0 || z > 5 {
			return false
		}
		return ZerosDriven(b, false) == 8-bits.OnesCount8(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBINeverWorse(t *testing.T) {
	for v := 0; v < 256; v++ {
		if ZerosDriven(byte(v), true) > ZerosDriven(byte(v), false) {
			// DBI adds the DBI-line zero only when it removes >4 zeros.
			t.Fatalf("DBI worse for %#x", v)
		}
	}
}

func TestExpectedZerosPerByte(t *testing.T) {
	noDBI := ExpectedZerosPerByte(false)
	if noDBI != 4.0 {
		t.Fatalf("uniform bytes average %v zeros, want 4", noDBI)
	}
	withDBI := ExpectedZerosPerByte(true)
	if withDBI >= noDBI {
		t.Fatalf("DBI expectation %v not below %v", withDBI, noDBI)
	}
	// Known value: sum over weights w of C(8,w)*min-side accounting.
	if withDBI < 3.0 || withDBI > 3.6 {
		t.Fatalf("DBI expectation %v outside plausible band", withDBI)
	}
}

func TestBurstZerosMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lane := make([]byte, 8)
	for i := range lane {
		lane[i] = byte(rng.Intn(256))
	}
	for _, dbi := range []bool{false, true} {
		want := 0
		for _, b := range lane {
			want += ZerosDriven(b, dbi)
		}
		if got := BurstZeros(lane, dbi); got != want {
			t.Fatalf("dbi=%v: %d != %d", dbi, got, want)
		}
	}
}

func TestBurstToggles(t *testing.T) {
	// Constant lane: zero toggles.
	if BurstToggles([]byte{0xAA, 0xAA, 0xAA}, false) != 0 {
		t.Fatal("constant lane toggled")
	}
	// Alternating all bits: 8 toggles per transition.
	if got := BurstToggles([]byte{0x00, 0xFF, 0x00}, false); got != 16 {
		t.Fatalf("alternating toggles = %d, want 16", got)
	}
	// With DBI, 0x00 and 0xFF both ride the wire as 0xFF; only the DBI
	// line toggles.
	if got := BurstToggles([]byte{0x00, 0xFF, 0x00}, true); got != 2 {
		t.Fatalf("DBI alternating toggles = %d, want 2", got)
	}
	if BurstToggles([]byte{0x12}, true) != 0 {
		t.Fatal("single beat toggled")
	}
}

func TestAccessEnergyProxyShapes(t *testing.T) {
	// PAIR/IECC: 8 lanes (64-bit visible per beat... 8 byte lanes), BL8,
	// DBI on.
	pair := AccessEnergyProxy(8, 8, true, 0, 1.0)
	// XED: DBI off, doubled write traffic.
	xed := AccessEnergyProxy(8, 8, false, 0, 2.0)
	// DUO: DBI on, one extra beat.
	duo := AccessEnergyProxy(8, 8, true, 1, 1.0)
	if !(pair < duo && duo < xed) {
		t.Fatalf("energy ordering broken: pair=%v duo=%v xed=%v", pair, duo, xed)
	}
	// DUO's extension is exactly 9/8 of PAIR's.
	if ratio := duo / pair; ratio < 1.124 || ratio > 1.126 {
		t.Fatalf("DUO/PAIR energy ratio %v, want 1.125", ratio)
	}
}
