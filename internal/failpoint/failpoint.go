// Package failpoint provides named, deterministic fault-injection
// points for testing failure paths that are otherwise unreachable:
// transient I/O errors, worker panics, and stuck operations.
//
// Production code marks a potential failure site with
//
//	if err := failpoint.Hit("campaign/checkpoint/write"); err != nil {
//		return err
//	}
//
// and tests arm the site with an Action (error the first N hits, panic,
// delay) via Arm. A disarmed failpoint is a true no-op: Hit performs a
// single atomic load, allocates nothing, and returns nil — verified by
// an allocation test — so the hooks can stay compiled into hot paths.
//
// Actions trigger deterministically: an Action with Times = n fires on
// exactly the first n hits and is inert afterwards, so a test that arms
// one transient error sees exactly one retry regardless of scheduling.
// The registry is process-global and safe for concurrent use; tests
// should defer Reset() to leave no points armed for the next test.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action describes what an armed failpoint does when hit.
//
// Exactly one of Err, Panic and Exit should be set (Delay may accompany
// any of them, or stand alone to model a slow-but-successful operation).
type Action struct {
	// Err, when non-nil, is returned by Hit on each triggered hit —
	// the site treats it as the failure of the operation it guards.
	Err error

	// Panic, when non-nil, makes Hit panic with this value, modeling a
	// crash inside the guarded operation.
	Panic any

	// Exit, when true, terminates the whole process with ExitCode the
	// instant the action triggers — a deterministic stand-in for
	// SIGKILL at an exact program point. Chaos harnesses arm it (via
	// ArmFromEnv in the binary under test) to kill a coordinator
	// between two specific state transitions.
	Exit     bool
	ExitCode int

	// Delay, when positive, makes Hit sleep before returning (or
	// panicking/exiting), modeling a stuck or slow operation.
	Delay time.Duration

	// Times bounds how many hits trigger the action: n > 0 means the
	// first n triggering hits only, 0 means every hit until disarmed.
	Times int

	// Skip leaves the first Skip hits untriggered, so an action can
	// fire on exactly the Nth hit (Skip: N-1, Times: 1) — e.g. "exit
	// the process at the 7th journal append".
	Skip int
}

// point is one armed site plus its counters.
type point struct {
	action Action
	hits   int // Hit calls that reached this armed point
	fired  int // hits that triggered the action
}

var (
	// armed is the fast-path gate: false means no point is armed
	// anywhere and Hit returns immediately without locking.
	armed atomic.Bool

	mu     sync.Mutex
	points = map[string]*point{}
)

// Arm installs (or replaces) the action at name.
func Arm(name string, a Action) {
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{action: a}
	armed.Store(true)
}

// Disarm removes the point at name, if armed.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	armed.Store(len(points) > 0)
}

// Reset disarms every point. Tests arm points and defer Reset.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(false)
}

// Hits reports how many Hit calls reached the armed point at name
// (including hits past an exhausted Times budget). 0 if not armed.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Fired reports how many hits triggered the action at name.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// Hit evaluates the failpoint at name. Disarmed (the production state)
// it is a zero-allocation no-op returning nil. Armed, it counts the hit
// and — while the Times budget lasts — sleeps Action.Delay, panics with
// Action.Panic, or returns Action.Err.
func Hit(name string) error {
	if !armed.Load() {
		return nil
	}
	return hitSlow(name)
}

// hitSlow is the armed path, kept out of Hit so the disarmed fast path
// stays trivially inlinable.
func hitSlow(name string) error {
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.hits <= p.action.Skip {
		mu.Unlock()
		return nil // still inside the skip window
	}
	if p.action.Times > 0 && p.fired >= p.action.Times {
		mu.Unlock()
		return nil // budget exhausted: inert until disarmed/re-armed
	}
	p.fired++
	a := p.action
	mu.Unlock()

	if a.Delay > 0 {
		time.Sleep(a.Delay)
	}
	if a.Exit {
		fmt.Fprintf(os.Stderr, "failpoint %q: exiting process (code %d)\n", name, a.ExitCode)
		osExit(a.ExitCode)
	}
	if a.Panic != nil {
		panic(fmt.Sprintf("failpoint %q: %v", name, a.Panic))
	}
	return a.Err
}

// osExit is swapped out by tests so Exit actions can be asserted
// without terminating the test binary.
var osExit = os.Exit

// ArmFromEnv arms every failpoint named in the environment variable
// env (conventionally PAIR_FAILPOINTS). An empty or unset variable is
// a no-op. The spec grammar is a semicolon-separated list of
//
//	name=kind[:arg][,key=val...]
//
// with kinds
//
//	error[:message]  — Hit returns an error
//	panic[:message]  — Hit panics
//	exit[:code]      — the process exits (SIGKILL stand-in)
//	delay:duration   — Hit sleeps (time.ParseDuration syntax)
//
// and optional modifiers times=N (trigger budget) and skip=N (inert
// hits before the first trigger), e.g.
//
//	PAIR_FAILPOINTS='fleet/journal/append=exit:3,skip=6,times=1'
//
// kills the process at exactly the 7th journal append. Binaries call
// this once at startup; it exists so chaos harnesses can crash a real
// process at a deterministic program point.
func ArmFromEnv(env string) error {
	return ArmFromSpec(os.Getenv(env))
}

// ArmFromSpec arms failpoints from a spec string (see ArmFromEnv for
// the grammar). An empty spec is a no-op.
func ArmFromSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || rest == "" {
			return fmt.Errorf("failpoint: malformed spec entry %q (want name=kind[:arg][,key=val...])", entry)
		}
		parts := strings.Split(rest, ",")
		a, err := parseKind(strings.TrimSpace(parts[0]))
		if err != nil {
			return fmt.Errorf("failpoint %q: %w", name, err)
		}
		for _, mod := range parts[1:] {
			key, val, ok := strings.Cut(strings.TrimSpace(mod), "=")
			if !ok {
				return fmt.Errorf("failpoint %q: malformed modifier %q (want key=val)", name, mod)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("failpoint %q: modifier %s wants a non-negative integer, got %q", name, key, val)
			}
			switch key {
			case "times":
				a.Times = n
			case "skip":
				a.Skip = n
			default:
				return fmt.Errorf("failpoint %q: unknown modifier %q (want times or skip)", name, key)
			}
		}
		Arm(name, a)
	}
	return nil
}

// parseKind parses the kind[:arg] head of a spec entry.
func parseKind(head string) (Action, error) {
	kind, arg, hasArg := strings.Cut(head, ":")
	switch kind {
	case "error":
		msg := "injected by failpoint spec"
		if hasArg && arg != "" {
			msg = arg
		}
		return Action{Err: errors.New(msg)}, nil
	case "panic":
		msg := "injected by failpoint spec"
		if hasArg && arg != "" {
			msg = arg
		}
		return Action{Panic: msg}, nil
	case "exit":
		code := 3
		if hasArg && arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil {
				return Action{}, fmt.Errorf("exit wants an integer code, got %q", arg)
			}
			code = n
		}
		return Action{Exit: true, ExitCode: code}, nil
	case "delay":
		if !hasArg || arg == "" {
			return Action{}, fmt.Errorf("delay wants a duration argument")
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return Action{}, fmt.Errorf("delay wants a non-negative duration, got %q", arg)
		}
		return Action{Delay: d}, nil
	default:
		return Action{}, fmt.Errorf("unknown action kind %q (want error, panic, exit or delay)", kind)
	}
}
