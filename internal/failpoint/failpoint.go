// Package failpoint provides named, deterministic fault-injection
// points for testing failure paths that are otherwise unreachable:
// transient I/O errors, worker panics, and stuck operations.
//
// Production code marks a potential failure site with
//
//	if err := failpoint.Hit("campaign/checkpoint/write"); err != nil {
//		return err
//	}
//
// and tests arm the site with an Action (error the first N hits, panic,
// delay) via Arm. A disarmed failpoint is a true no-op: Hit performs a
// single atomic load, allocates nothing, and returns nil — verified by
// an allocation test — so the hooks can stay compiled into hot paths.
//
// Actions trigger deterministically: an Action with Times = n fires on
// exactly the first n hits and is inert afterwards, so a test that arms
// one transient error sees exactly one retry regardless of scheduling.
// The registry is process-global and safe for concurrent use; tests
// should defer Reset() to leave no points armed for the next test.
package failpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Action describes what an armed failpoint does when hit.
//
// Exactly one of Err and Panic should be set (Delay may accompany
// either, or stand alone to model a slow-but-successful operation).
type Action struct {
	// Err, when non-nil, is returned by Hit on each triggered hit —
	// the site treats it as the failure of the operation it guards.
	Err error

	// Panic, when non-nil, makes Hit panic with this value, modeling a
	// crash inside the guarded operation.
	Panic any

	// Delay, when positive, makes Hit sleep before returning (or
	// panicking), modeling a stuck or slow operation for watchdogs.
	Delay time.Duration

	// Times bounds how many hits trigger the action: n > 0 means the
	// first n hits only, 0 means every hit until disarmed.
	Times int
}

// point is one armed site plus its counters.
type point struct {
	action Action
	hits   int // Hit calls that reached this armed point
	fired  int // hits that triggered the action
}

var (
	// armed is the fast-path gate: false means no point is armed
	// anywhere and Hit returns immediately without locking.
	armed atomic.Bool

	mu     sync.Mutex
	points = map[string]*point{}
)

// Arm installs (or replaces) the action at name.
func Arm(name string, a Action) {
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{action: a}
	armed.Store(true)
}

// Disarm removes the point at name, if armed.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	armed.Store(len(points) > 0)
}

// Reset disarms every point. Tests arm points and defer Reset.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(false)
}

// Hits reports how many Hit calls reached the armed point at name
// (including hits past an exhausted Times budget). 0 if not armed.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Fired reports how many hits triggered the action at name.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// Hit evaluates the failpoint at name. Disarmed (the production state)
// it is a zero-allocation no-op returning nil. Armed, it counts the hit
// and — while the Times budget lasts — sleeps Action.Delay, panics with
// Action.Panic, or returns Action.Err.
func Hit(name string) error {
	if !armed.Load() {
		return nil
	}
	return hitSlow(name)
}

// hitSlow is the armed path, kept out of Hit so the disarmed fast path
// stays trivially inlinable.
func hitSlow(name string) error {
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.action.Times > 0 && p.fired >= p.action.Times {
		mu.Unlock()
		return nil // budget exhausted: inert until disarmed/re-armed
	}
	p.fired++
	a := p.action
	mu.Unlock()

	if a.Delay > 0 {
		time.Sleep(a.Delay)
	}
	if a.Panic != nil {
		panic(fmt.Sprintf("failpoint %q: %v", name, a.Panic))
	}
	return a.Err
}
