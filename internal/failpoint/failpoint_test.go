package failpoint

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedHitIsZeroAllocNoOp(t *testing.T) {
	Reset()
	if err := Hit("nothing/armed"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Hit("campaign/shard"); err != nil {
			t.Errorf("disarmed Hit returned %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Hit allocates %.1f per call, want 0", allocs)
	}
}

func TestErrorNTimes(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Action{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := Hit("p"); !errors.Is(err, boom) {
			t.Fatalf("hit %d: %v, want boom", i, err)
		}
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit past budget returned %v, want nil", err)
	}
	if Hits("p") != 3 || Fired("p") != 2 {
		t.Fatalf("hits=%d fired=%d, want 3/2", Hits("p"), Fired("p"))
	}
}

func TestErrorEveryHitUntilDisarmed(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Action{Err: boom}) // Times 0: every hit
	for i := 0; i < 5; i++ {
		if err := Hit("p"); !errors.Is(err, boom) {
			t.Fatalf("hit %d: %v", i, err)
		}
	}
	Disarm("p")
	if err := Hit("p"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	if Hits("p") != 0 {
		t.Fatal("counters must reset on disarm")
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	Arm("p", Action{Panic: "injected crash", Times: 1})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("armed panic did not panic")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "injected crash") || !strings.Contains(s, `"p"`) {
				t.Fatalf("panic value %v lacks name/message", r)
			}
		}()
		Hit("p")
	}()
	if err := Hit("p"); err != nil { // budget spent
		t.Fatalf("second hit: %v", err)
	}
}

func TestDelayAction(t *testing.T) {
	defer Reset()
	Arm("p", Action{Delay: 30 * time.Millisecond, Times: 1})
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed hit returned after %v, want >= 30ms", d)
	}
}

func TestRearmReplacesActionAndCounters(t *testing.T) {
	defer Reset()
	Arm("p", Action{Err: errors.New("a"), Times: 1})
	Hit("p")
	Arm("p", Action{Err: errors.New("b"), Times: 1})
	if Fired("p") != 0 {
		t.Fatal("re-arming must reset counters")
	}
	if err := Hit("p"); err == nil || err.Error() != "b" {
		t.Fatalf("re-armed action returned %v", err)
	}
}

func TestConcurrentHitsCountExactly(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Action{Err: boom, Times: 7})
	var wg sync.WaitGroup
	var triggered sync.Map
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- Hit("p")
			triggered.Store(0, true)
		}()
	}
	wg.Wait()
	close(errs)
	n := 0
	for err := range errs {
		if err != nil {
			n++
		}
	}
	if n != 7 {
		t.Fatalf("%d hits triggered, want exactly 7", n)
	}
	if Hits("p") != 100 || Fired("p") != 7 {
		t.Fatalf("hits=%d fired=%d, want 100/7", Hits("p"), Fired("p"))
	}
}
