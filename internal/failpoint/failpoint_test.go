package failpoint

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedHitIsZeroAllocNoOp(t *testing.T) {
	Reset()
	if err := Hit("nothing/armed"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Hit("campaign/shard"); err != nil {
			t.Errorf("disarmed Hit returned %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Hit allocates %.1f per call, want 0", allocs)
	}
}

func TestErrorNTimes(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Action{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := Hit("p"); !errors.Is(err, boom) {
			t.Fatalf("hit %d: %v, want boom", i, err)
		}
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit past budget returned %v, want nil", err)
	}
	if Hits("p") != 3 || Fired("p") != 2 {
		t.Fatalf("hits=%d fired=%d, want 3/2", Hits("p"), Fired("p"))
	}
}

func TestErrorEveryHitUntilDisarmed(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Action{Err: boom}) // Times 0: every hit
	for i := 0; i < 5; i++ {
		if err := Hit("p"); !errors.Is(err, boom) {
			t.Fatalf("hit %d: %v", i, err)
		}
	}
	Disarm("p")
	if err := Hit("p"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	if Hits("p") != 0 {
		t.Fatal("counters must reset on disarm")
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	Arm("p", Action{Panic: "injected crash", Times: 1})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("armed panic did not panic")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "injected crash") || !strings.Contains(s, `"p"`) {
				t.Fatalf("panic value %v lacks name/message", r)
			}
		}()
		Hit("p")
	}()
	if err := Hit("p"); err != nil { // budget spent
		t.Fatalf("second hit: %v", err)
	}
}

func TestDelayAction(t *testing.T) {
	defer Reset()
	Arm("p", Action{Delay: 30 * time.Millisecond, Times: 1})
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed hit returned after %v, want >= 30ms", d)
	}
}

func TestRearmReplacesActionAndCounters(t *testing.T) {
	defer Reset()
	Arm("p", Action{Err: errors.New("a"), Times: 1})
	Hit("p")
	Arm("p", Action{Err: errors.New("b"), Times: 1})
	if Fired("p") != 0 {
		t.Fatal("re-arming must reset counters")
	}
	if err := Hit("p"); err == nil || err.Error() != "b" {
		t.Fatalf("re-armed action returned %v", err)
	}
}

func TestSkipDefersTrigger(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Action{Err: boom, Skip: 2, Times: 1})
	for i := 0; i < 2; i++ {
		if err := Hit("p"); err != nil {
			t.Fatalf("hit %d inside skip window returned %v, want nil", i, err)
		}
	}
	if err := Hit("p"); !errors.Is(err, boom) {
		t.Fatalf("3rd hit returned %v, want boom", err)
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit past budget returned %v, want nil", err)
	}
	if Hits("p") != 4 || Fired("p") != 1 {
		t.Fatalf("hits=%d fired=%d, want 4/1", Hits("p"), Fired("p"))
	}
}

func TestExitAction(t *testing.T) {
	defer Reset()
	exited := -1
	osExit = func(code int) { exited = code; panic("unwound") }
	defer func() { osExit = os.Exit }()
	Arm("p", Action{Exit: true, ExitCode: 7, Skip: 1, Times: 1})
	if err := Hit("p"); err != nil || exited != -1 {
		t.Fatalf("skipped hit: err=%v exited=%d", err, exited)
	}
	func() {
		defer func() { recover() }()
		Hit("p")
	}()
	if exited != 7 {
		t.Fatalf("exit code = %d, want 7", exited)
	}
}

func TestArmFromSpec(t *testing.T) {
	defer Reset()
	spec := "a=error:disk full,times=2; b=delay:15ms; c=exit:9,skip=3,times=1; d=panic"
	if err := ArmFromSpec(spec); err != nil {
		t.Fatalf("ArmFromSpec(%q): %v", spec, err)
	}
	if err := Hit("a"); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("a: %v, want disk full", err)
	}
	start := time.Now()
	if err := Hit("b"); err != nil {
		t.Fatalf("b: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("b returned after %v, want >= 15ms", d)
	}
	for i := 0; i < 3; i++ { // inside c's skip window: no exit
		if err := Hit("c"); err != nil {
			t.Fatalf("c hit %d: %v", i, err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("d did not panic")
			}
		}()
		Hit("d")
	}()

	for _, bad := range []string{
		"noequals", "x=", "x=unknownkind", "x=delay", "x=delay:zzz",
		"x=exit:NaN", "x=error,weird=1", "x=error,times=-1", "x=error,times",
	} {
		if err := ArmFromSpec(bad); err == nil {
			t.Errorf("ArmFromSpec(%q) succeeded, want error", bad)
		}
	}
	if err := ArmFromSpec(""); err != nil {
		t.Errorf("empty spec: %v", err)
	}
}

func TestArmFromEnv(t *testing.T) {
	defer Reset()
	t.Setenv("PAIR_TEST_FAILPOINTS", "env/point=error:from env")
	if err := ArmFromEnv("PAIR_TEST_FAILPOINTS"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("env/point"); err == nil || !strings.Contains(err.Error(), "from env") {
		t.Fatalf("env-armed point returned %v", err)
	}
	t.Setenv("PAIR_TEST_FAILPOINTS", "")
	if err := ArmFromEnv("PAIR_TEST_FAILPOINTS"); err != nil {
		t.Fatalf("unset env: %v", err)
	}
}

func TestConcurrentHitsCountExactly(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Action{Err: boom, Times: 7})
	var wg sync.WaitGroup
	var triggered sync.Map
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- Hit("p")
			triggered.Store(0, true)
		}()
	}
	wg.Wait()
	close(errs)
	n := 0
	for err := range errs {
		if err != nil {
			n++
		}
	}
	if n != 7 {
		t.Fatalf("%d hits triggered, want exactly 7", n)
	}
	if Hits("p") != 100 || Fired("p") != 7 {
		t.Fatalf("hits=%d fired=%d, want 100/7", Hits("p"), Fired("p"))
	}
}
