package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"pair/internal/gf256"
)

// TestExpandableDecodeIntoMatchesBW drives the syndrome fast path and the
// Berlekamp-Welch reference over randomized error/erasure patterns —
// within budget, beyond budget (uncorrectable and miscorrecting), with
// duplicate and oversized erasure lists — and requires identical results.
func TestExpandableDecodeIntoMatchesBW(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := [][2]int{{20, 16}, {18, 16}, {81, 64}, {12, 3}, {10, 9}, {24, 16}}
	for _, shape := range shapes {
		e, err := NewExpandableDefault(shape[0], shape[1])
		if err != nil {
			t.Fatal(err)
		}
		if !e.fastOK {
			t.Fatalf("(%d,%d): default points should enable the fast path", shape[0], shape[1])
		}
		d := e.NewDecoder()
		dst := make([]byte, e.N())
		np := e.N() - e.K
		for trial := 0; trial < 400; trial++ {
			msg := randMsg(rng, e.K)
			rx := e.Encode(msg)
			ncorrupt := rng.Intn(np + 3)
			for _, p := range rng.Perm(e.N())[:ncorrupt] {
				rx[p] ^= byte(1 + rng.Intn(255))
			}
			var erasures []int
			switch rng.Intn(4) {
			case 1: // plausible erasures
				erasures = rng.Perm(e.N())[:rng.Intn(np+1)]
			case 2: // duplicates allowed
				for i := 0; i < rng.Intn(4); i++ {
					erasures = append(erasures, rng.Intn(e.N()))
					erasures = append(erasures, erasures[0])
				}
			case 3: // too many
				erasures = rng.Perm(e.N())[:min(e.N(), np+1+rng.Intn(3))]
			}

			wantWord, wantN, wantErr := e.decodeBW(rx, erasures)
			gotN, gotErr := d.DecodeInto(dst, rx, erasures)
			if (gotErr == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(gotErr, ErrUncorrectable) != !errors.Is(wantErr, ErrUncorrectable)) {
				t.Fatalf("(%d,%d) err mismatch: got %v want %v (corrupt=%d erasures=%v)",
					e.N(), e.K, gotErr, wantErr, ncorrupt, erasures)
			}
			if wantErr != nil {
				continue
			}
			if gotN != wantN || !bytes.Equal(dst, wantWord) {
				t.Fatalf("(%d,%d) result mismatch: nchanged %d vs %d\n got %x\nwant %x\n  rx %x erasures=%v",
					e.N(), e.K, gotN, wantN, dst, wantWord, rx, erasures)
			}
		}
	}
}

// TestExpandableDecodeDelegates checks the public Decode (pooled fast
// path) agrees with the reference on a quick randomized sweep, including
// erasure-only correction at the full n-k budget.
func TestExpandableDecodeDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e, _ := NewExpandableDefault(20, 16)
	for trial := 0; trial < 200; trial++ {
		msg := randMsg(rng, e.K)
		rx := e.Encode(msg)
		perm := rng.Perm(e.N())
		nerase := rng.Intn(5)
		erasures := perm[:nerase]
		for _, p := range erasures {
			rx[p] ^= byte(rng.Intn(256))
		}
		nerr := rng.Intn(3)
		for _, p := range perm[nerase : nerase+nerr] {
			rx[p] ^= byte(1 + rng.Intn(255))
		}
		gotWord, gotN, gotErr := e.Decode(rx, erasures)
		wantWord, wantN, wantErr := e.decodeBW(rx, erasures)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("err mismatch: %v vs %v", gotErr, wantErr)
		}
		if gotErr == nil && (gotN != wantN || !bytes.Equal(gotWord, wantWord)) {
			t.Fatalf("result mismatch: %d vs %d", gotN, wantN)
		}
	}
}

// TestExpandableZeroPointFallback builds a code containing the zero
// evaluation point and verifies Decode still works via Berlekamp-Welch.
func TestExpandableZeroPointFallback(t *testing.T) {
	pts := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	e, err := NewExpandable(4, pts)
	if err != nil {
		t.Fatal(err)
	}
	if e.fastOK {
		t.Fatal("zero point must disable the syndrome fast path")
	}
	msg := []byte{9, 8, 7, 6}
	cw := e.Encode(msg)
	cw[2] ^= 0x41
	cw[6] ^= 0x99
	out, n, err := e.Decode(cw, nil)
	if err != nil || n != 2 {
		t.Fatalf("fallback decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(out[:4], msg) {
		t.Fatalf("fallback decode wrong message: %x", out[:4])
	}
	d := e.NewDecoder()
	if _, err := d.DecodeInto(out, cw, nil); err == nil {
		t.Fatal("DecodeInto on a zero-point code must refuse")
	}
}

// TestExpandableEncodeToMatchesEncode checks the in-place encoder against
// the allocating one, including the aliasing case.
func TestExpandableEncodeToMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e, _ := NewExpandableDefault(20, 16)
	cw := make([]byte, e.N())
	for trial := 0; trial < 100; trial++ {
		msg := randMsg(rng, e.K)
		want := e.Encode(msg)
		e.EncodeTo(msg, cw)
		if !bytes.Equal(cw, want) {
			t.Fatalf("EncodeTo mismatch: %x vs %x", cw, want)
		}
		// Aliased: message already sitting in the codeword buffer.
		for i := range cw {
			cw[i] = 0
		}
		copy(cw[:e.K], msg)
		e.EncodeTo(cw[:e.K], cw)
		if !bytes.Equal(cw, want) {
			t.Fatalf("aliased EncodeTo mismatch: %x vs %x", cw, want)
		}
	}
}

// TestExpandableExpandKeepsFastPath verifies expansion of a fast-path code
// still decodes through the syndrome machinery and fixes more errors.
func TestExpandableExpandKeepsFastPath(t *testing.T) {
	e, _ := NewExpandableDefault(20, 16)
	wide, err := e.Expand(gf256.Exp(20), gf256.Exp(21))
	if err != nil {
		t.Fatal(err)
	}
	if !wide.fastOK {
		t.Fatal("expanded code lost the fast path")
	}
	msg := make([]byte, 16)
	for i := range msg {
		msg[i] = byte(3 * i)
	}
	cw, err := e.ExtendCodeword(e.Encode(msg), wide)
	if err != nil {
		t.Fatal(err)
	}
	cw[0] ^= 1
	cw[5] ^= 2
	cw[11] ^= 3
	out, n, err := wide.Decode(cw, nil)
	if err != nil || n != 3 {
		t.Fatalf("expanded decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(out[:16], msg) {
		t.Fatalf("expanded decode wrong message")
	}
}

// TestExpandableFastPathAllocs pins the zero-allocation property of the
// workspace encode/decode paths.
func TestExpandableFastPathAllocs(t *testing.T) {
	e, _ := NewExpandableDefault(20, 16)
	d := e.NewDecoder()
	msg := make([]byte, 16)
	for i := range msg {
		msg[i] = byte(i*11 + 1)
	}
	cw := make([]byte, 20)
	e.EncodeTo(msg, cw)
	dst := make([]byte, 20)

	clean := append([]byte(nil), cw...)
	twoErr := append([]byte(nil), cw...)
	twoErr[3] ^= 0x55
	twoErr[17] ^= 0xAA
	tooMany := append([]byte(nil), cw...)
	for i := 0; i < 6; i++ {
		tooMany[i] ^= byte(0x21 * (i + 1))
	}
	erasures := []int{2, 9}

	cases := []struct {
		name string
		fn   func()
	}{
		{"EncodeTo", func() { e.EncodeTo(msg, cw) }},
		{"DecodeInto/clean", func() { d.DecodeInto(dst, clean, nil) }},
		{"DecodeInto/two-errors", func() { d.DecodeInto(dst, twoErr, nil) }},
		{"DecodeInto/erasures", func() { d.DecodeInto(dst, twoErr, erasures) }},
		{"DecodeInto/uncorrectable", func() { d.DecodeInto(dst, tooMany, nil) }},
	}
	for _, tc := range cases {
		tc.fn() // warm up
		if n := testing.AllocsPerRun(200, tc.fn); n > 0 {
			t.Errorf("%s allocates %.1f per run, want 0", tc.name, n)
		}
	}
}
