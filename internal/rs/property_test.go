package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pair/internal/gf256"
)

// TestRandomShapesWithinBudget draws random (n,k) shapes and verifies the
// full correction guarantee 2e+s <= n-k on both codecs.
func TestRandomShapesWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(40)
		parity := 1 + rng.Intn(8)
		n := k + parity
		bch := MustNew(n, k)
		ev, err := NewExpandableDefault(n, k)
		if err != nil {
			t.Fatal(err)
		}
		msg := randMsg(rng, k)
		cwB := bch.Encode(msg)
		cwE := ev.Encode(msg)

		// Random within-budget error/erasure pattern.
		maxErr := parity / 2
		nerr := 0
		if maxErr > 0 {
			nerr = rng.Intn(maxErr + 1)
		}
		ners := rng.Intn(parity - 2*nerr + 1)
		perm := rng.Perm(n)
		erasures := perm[:ners]
		for _, p := range perm[:ners+nerr] {
			v := byte(1 + rng.Intn(255))
			cwB[p] ^= v // corrupt in place; golden recomputed below
			cwE[p] ^= v
		}
		// Recompute golden.
		goldenB := bch.Encode(msg)
		goldenE := ev.Encode(msg)

		outB, _, errB := decodeAlloc(bch, cwB, erasures)
		if errB != nil || !bytes.Equal(outB, goldenB) {
			t.Fatalf("BCH (%d,%d) e=%d s=%d failed: %v", n, k, nerr, ners, errB)
		}
		outE, _, errE := ev.Decode(cwE, erasures)
		if errE != nil || !bytes.Equal(outE, goldenE) {
			t.Fatalf("EV (%d,%d) e=%d s=%d failed: %v", n, k, nerr, ners, errE)
		}
	}
}

// TestEncodeLinearityQuick checks Encode(a) ^ Encode(b) == Encode(a^b) for
// both codecs (they are linear codes) via testing/quick.
func TestEncodeLinearityQuick(t *testing.T) {
	bch := MustNew(20, 16)
	ev, _ := NewExpandableDefault(20, 16)
	f := func(a, b [16]byte) bool {
		sum := make([]byte, 16)
		for i := range sum {
			sum[i] = a[i] ^ b[i]
		}
		for _, enc := range []func([]byte) []byte{bch.Encode, ev.Encode} {
			ca, cb, cs := enc(a[:]), enc(b[:]), enc(sum)
			for i := range cs {
				if cs[i] != ca[i]^cb[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScalingQuick: Encode(c*m) == c*Encode(m) over GF(256).
func TestScalingQuick(t *testing.T) {
	ev, _ := NewExpandableDefault(20, 16)
	f := func(m [16]byte, c byte) bool {
		scaled := make([]byte, 16)
		for i := range scaled {
			scaled[i] = gf256.Mul(m[i], c)
		}
		cm, cs := ev.Encode(m[:]), ev.Encode(scaled)
		for i := range cs {
			if cs[i] != gf256.Mul(cm[i], c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	c := MustNew(20, 16)
	if c.NumParity() != 4 || c.T != 2 {
		t.Fatalf("NumParity/T wrong: %d/%d", c.NumParity(), c.T)
	}
	msg := make([]byte, 16)
	msg[0] = 7
	cw := c.Encode(msg)
	if !bytes.Equal(c.Data(cw), msg) {
		t.Fatal("Data() wrong")
	}
	e, _ := NewExpandableDefault(18, 16)
	if !bytes.Equal(e.Data(e.Encode(msg)), msg) {
		t.Fatal("Expandable.Data() wrong")
	}
}
