package rs

import (
	"fmt"

	"pair/internal/gf256"
)

// Decoder is a reusable decode workspace for one Code. All polynomial and
// position buffers are preallocated at construction, so the steady-state
// decode path — clean words, correctable error/erasure patterns, and
// detected-uncorrectable patterns alike — performs zero heap allocations.
//
// A Decoder is NOT safe for concurrent use; give each goroutine its own
// (NewDecoder is cheap).
type Decoder struct {
	c *Code

	syn   []byte // 2t syndromes
	gamma []byte // erasure locator, degree <= np
	xi    []byte // erasure-modified syndromes, mod x^np
	omega []byte // error evaluator, mod x^np
	deriv []byte // formal derivative of psi

	// Berlekamp-Massey scratch. The update lambda += coef * prev * x^m can
	// transiently reach degree 2*np+1 on adversarial (uncorrectable)
	// syndrome sequences before the degree check rejects the result, so
	// these are sized 2*np+2.
	lambda []byte
	prev   []byte
	tmp    []byte

	psi       []byte // full locator lambda*gamma, sized for the worst case
	terms     []byte // incremental Chien term per psi coefficient
	positions []int  // error positions found by the Chien search
}

// NewDecoder returns a fresh decode workspace for the code.
func (c *Code) NewDecoder() *Decoder {
	np := c.N - c.K
	return &Decoder{
		c:         c,
		syn:       make([]byte, np),
		gamma:     make([]byte, np+1),
		xi:        make([]byte, np),
		omega:     make([]byte, np),
		deriv:     make([]byte, np),
		lambda:    make([]byte, 2*np+2),
		prev:      make([]byte, 2*np+2),
		tmp:       make([]byte, 2*np+2),
		psi:       make([]byte, 3*np+3),
		terms:     make([]byte, np+1),
		positions: make([]int, 0, np+1),
	}
}

// Code returns the code this workspace decodes.
func (d *Decoder) Code() *Code { return d.c }

// SyndromesInto fills syn (length NumParity) with the syndromes of word
// (length N) and reports whether they are all zero — i.e. whether word is
// a codeword. It allocates nothing.
func (c *Code) SyndromesInto(syn, word []byte) bool {
	if len(word) != c.N {
		panic(fmt.Sprintf("rs: Syndromes word length %d, want %d", len(word), c.N))
	}
	np := c.N - c.K
	if len(syn) != np {
		panic(fmt.Sprintf("rs: syndrome buffer length %d, want %d", len(syn), np))
	}
	allZero := true
	for j := 0; j < np; j++ {
		// Horner over the word with the j-th root, one table-row lookup
		// per symbol (the row caches alpha^(fcr+j) multiplication).
		row := c.rootRows[j]
		var acc byte
		for _, w := range word {
			acc = row[acc] ^ w
		}
		syn[j] = acc
		if acc != 0 {
			allZero = false
		}
	}
	return allZero
}

// SyndromesInto is the workspace-flavoured convenience: it fills the
// decoder's own syndrome buffer and returns it alongside the all-zero flag.
// The returned slice is owned by the workspace and valid until the next
// Decoder call.
func (d *Decoder) SyndromesInto(word []byte) ([]byte, bool) {
	ok := d.c.SyndromesInto(d.syn, word)
	return d.syn, ok
}

// DecodeInto corrects errors and erasures in received (length N) into dst
// (length N, may alias received) and returns the number of symbol
// positions changed. On error dst's contents are unspecified. erasures
// lists symbol positions known to be unreliable (each in [0,N)); the
// pattern is guaranteed correctable when 2*errors + erasures <= N-K, and
// beyond that the decoder either returns ErrUncorrectable or — for some
// patterns, as with any bounded-distance decoder — miscorrects. The
// steady-state path allocates nothing.
func (d *Decoder) DecodeInto(dst, received []byte, erasures []int) (int, error) {
	c := d.c
	if len(received) != c.N {
		return 0, fmt.Errorf("rs: Decode word length %d, want %d", len(received), c.N)
	}
	if len(dst) != c.N {
		return 0, fmt.Errorf("rs: Decode destination length %d, want %d", len(dst), c.N)
	}
	np := c.N - c.K
	if len(erasures) > np {
		return 0, ErrUncorrectable
	}
	copy(dst, received)

	if c.SyndromesInto(d.syn, dst) {
		// Clean word (erasure flags, if any, are consistent): done.
		return 0, nil
	}

	var psi []byte
	if len(erasures) == 0 {
		// Errors only: Gamma = 1, so Psi is the Berlekamp-Massey locator
		// itself and the erasure stages (Gamma build, modified syndromes,
		// locator product) collapse away.
		psi = d.berlekampMassey(d.syn, np, 0)
	} else {
		// Erasure locator Gamma(x) = prod (1 - X_i x), X_i = alpha^(N-1-pos),
		// built in place by descending-order updates.
		gamma := d.gamma[:len(erasures)+1]
		for i := range gamma {
			gamma[i] = 0
		}
		gamma[0] = 1
		glen := 1
		for _, pos := range erasures {
			if pos < 0 || pos >= c.N {
				return 0, fmt.Errorf("rs: erasure position %d out of range [0,%d)", pos, c.N)
			}
			x := gf256.Exp(c.N - 1 - pos)
			row := gf256.Row(x)
			for j := glen; j >= 1; j-- {
				gamma[j] ^= row[gamma[j-1]]
			}
			glen++
		}

		// Modified syndromes Xi(x) = Gamma(x) * S(x) mod x^np, computed as
		// a truncated product directly into the workspace.
		xi := d.xi[:np]
		mulModInto(xi, gamma[:glen], d.syn)

		// Berlekamp-Massey on the modified syndromes for the error
		// locator, then the full locator Psi = Lambda * Gamma.
		lambda := d.berlekampMassey(xi, np, len(erasures))
		psi = d.psi[:len(lambda)+glen]
		mulInto(psi, lambda, gamma[:glen])
	}
	degPsi := polyDeg(psi)
	if degPsi < 0 || degPsi > np {
		return 0, ErrUncorrectable
	}
	psi = psi[:degPsi+1]

	// Chien search with incremental root-stepping: term i holds
	// psi[i] * xInv(pos)^i and advancing pos multiplies term i by alpha^i,
	// so each position costs degPsi lookups instead of a full PolyEval.
	terms := d.terms[:degPsi+1]
	for i := 0; i <= degPsi; i++ {
		terms[i] = gf256.Mul(psi[i], c.chienStart[i])
	}
	positions := d.positions[:0]
	for pos := 0; pos < c.N; pos++ {
		var sum byte
		for _, t := range terms {
			sum ^= t
		}
		if sum == 0 {
			if len(positions) == degPsi {
				// More roots than the locator degree: detected failure.
				return 0, ErrUncorrectable
			}
			positions = append(positions, pos)
		}
		for i := 1; i <= degPsi; i++ {
			terms[i] = c.chienStep[i][terms[i]]
		}
	}
	if len(positions) != degPsi {
		// Locator degree does not match its root count: detected failure.
		return 0, ErrUncorrectable
	}

	// Forney: Omega(x) = S(x) * Psi(x) mod x^np;
	// e_pos = X^(1-fcr) * Omega(X^-1) / Psi'(X^-1).
	omega := d.omega[:np]
	mulModInto(omega, d.syn, psi)
	deriv := d.deriv[:0]
	for i := 1; i < len(psi); i += 2 {
		for len(deriv) < i-1 {
			deriv = append(deriv, 0)
		}
		deriv = append(deriv, psi[i])
	}

	nchanged := 0
	for _, pos := range positions {
		x := gf256.Exp(c.N - 1 - pos)
		xInv := gf256.Inv(x)
		denom := gf256.EvalAsc(deriv, xInv)
		if denom == 0 {
			return 0, ErrUncorrectable
		}
		num := gf256.EvalAsc(omega, xInv)
		mag := gf256.Mul(gf256.Pow(x, 1-c.fcr), gf256.Div(num, denom))
		if mag != 0 {
			dst[pos] ^= mag
			nchanged++
			// Fold the correction into the syndromes: position pos
			// contributes mag * X^(fcr+j) to syndrome j, so after all
			// corrections the updated syndromes must vanish. This replaces
			// the O(N*np) recomputation with O(errors*np) work.
			row := gf256.Row(x)
			p := gf256.Mul(mag, gf256.Pow(x, c.fcr))
			for j := range d.syn {
				d.syn[j] ^= p
				p = row[p]
			}
		}
	}

	// Final consistency check: the corrected word must be a codeword,
	// i.e. the incrementally updated syndromes are all zero.
	for _, s := range d.syn {
		if s != 0 {
			return 0, ErrUncorrectable
		}
	}
	return nchanged, nil
}

// berlekampMassey runs the workspace Berlekamp-Massey over this decoder's
// scratch buffers.
func (d *Decoder) berlekampMassey(syn []byte, np, nerasures int) []byte {
	out := bmWorkspace(syn, np, nerasures, d.lambda, d.prev, d.tmp)
	return out
}

// bmWorkspace finds the minimal LFSR (error-locator polynomial) of the
// (possibly erasure-modified) syndrome sequence entirely inside the three
// caller-owned scratch buffers, each sized at least 2*np+2. It mirrors the
// reference implementation in rs.go coefficient for coefficient; the
// returned slice aliases one of the scratch buffers and is trimmed to the
// locator's logical length.
func bmWorkspace(syn []byte, np, nerasures int, lambda, prev, tmp []byte) []byte {
	for i := range lambda {
		lambda[i], prev[i], tmp[i] = 0, 0, 0
	}
	lambda[0], prev[0] = 1, 1
	lenL, lenP := 1, 1
	l := 0
	m := 1
	b := byte(1)

	budget := np - nerasures
	for i := 0; i < budget; i++ {
		n := i + nerasures
		var dis byte
		if n < len(syn) {
			dis = syn[n]
		}
		for j := 1; j <= l && j < lenL; j++ {
			if n-j >= 0 && n-j < len(syn) {
				dis ^= gf256.Mul(lambda[j], syn[n-j])
			}
		}
		if dis == 0 {
			m++
			continue
		}
		coef := gf256.Div(dis, b)
		row := gf256.Row(coef)
		if 2*l <= i {
			copy(tmp, lambda[:lenL])
			lenT := lenL
			for j := 0; j < lenP; j++ {
				lambda[j+m] ^= row[prev[j]]
			}
			if lenP+m > lenL {
				lenL = lenP + m
			}
			l = i + 1 - l
			// prev <- old lambda (tmp), recycling the buffers by swap.
			prev, tmp = tmp, prev
			for j := lenT; j < lenP+m; j++ {
				prev[j] = 0 // clear residue beyond the copied prefix
			}
			lenP = lenT
			for j := range tmp {
				tmp[j] = 0
			}
			b = dis
			m = 1
		} else {
			for j := 0; j < lenP; j++ {
				lambda[j+m] ^= row[prev[j]]
			}
			if lenP+m > lenL {
				lenL = lenP + m
			}
			m++
		}
		for lenL > 0 && lambda[lenL-1] == 0 {
			lenL--
		}
	}
	return lambda[:lenL]
}

// mulInto computes the full product a*b into out, which must have length
// len(a)+len(b) (one beyond the maximal degree). out must not alias a or b.
func mulInto(out, a, b []byte) {
	for i := range out {
		out[i] = 0
	}
	for i, av := range a {
		if av == 0 {
			continue
		}
		row := gf256.Row(av)
		for j, bv := range b {
			out[i+j] ^= row[bv]
		}
	}
}

// mulModInto computes a*b mod x^len(out) into out. out must not alias a or b.
func mulModInto(out, a, b []byte) {
	for i := range out {
		out[i] = 0
	}
	for i, av := range a {
		if av == 0 || i >= len(out) {
			continue
		}
		row := gf256.Row(av)
		jmax := len(out) - i
		if jmax > len(b) {
			jmax = len(b)
		}
		for j := 0; j < jmax; j++ {
			out[i+j] ^= row[b[j]]
		}
	}
}

// polyDeg returns the degree of p, or -1 for the zero polynomial.
func polyDeg(p []byte) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}
