package rs

import (
	"fmt"

	"pair/internal/gf256"
)

// ExpandableDecoder is a reusable decode workspace for one Expandable
// code, the evaluation-view counterpart of Decoder. It runs generalized-RS
// syndrome decoding — dual-code syndromes, erasure-modified key equation,
// Berlekamp-Massey, direct root search over the inverse points, and a
// Forney step rescaled by the dual column multipliers — so the steady
// state allocates nothing, where the Berlekamp-Welch reference solves an
// O(n^3) linear system with fresh matrices per call.
//
// An ExpandableDecoder is NOT safe for concurrent use; give each goroutine
// its own (NewDecoder is cheap) or go through Expandable.Decode, which
// draws from an internal pool.
type ExpandableDecoder struct {
	e *Expandable

	syn   []byte // n-k dual syndromes
	gamma []byte // erasure locator, degree <= np
	xi    []byte // erasure-modified syndromes, mod x^np
	omega []byte // error evaluator, mod x^np
	deriv []byte // formal derivative of psi

	// Berlekamp-Massey scratch, sized 2*np+2 (see Decoder).
	lambda []byte
	prev   []byte
	tmp    []byte

	psi       []byte // full locator lambda*gamma, worst case
	erased    []bool // per-position erasure mask (deduplication)
	erasedPos []int  // deduplicated erasure positions
	positions []int  // locator roots found among the points
}

// NewDecoder returns a fresh decode workspace for the code. The code must
// have all-nonzero evaluation points (fast path available); decoding a
// zero-point code goes through Expandable.Decode's fallback instead.
func (e *Expandable) NewDecoder() *ExpandableDecoder {
	n := e.N()
	np := n - e.K
	return &ExpandableDecoder{
		e:         e,
		syn:       make([]byte, np),
		gamma:     make([]byte, np+1),
		xi:        make([]byte, np),
		omega:     make([]byte, np),
		deriv:     make([]byte, np),
		lambda:    make([]byte, 2*np+2),
		prev:      make([]byte, 2*np+2),
		tmp:       make([]byte, 2*np+2),
		psi:       make([]byte, 3*np+3),
		erased:    make([]bool, n),
		erasedPos: make([]int, 0, n),
		positions: make([]int, 0, np+1),
	}
}

// Code returns the code this workspace decodes.
func (d *ExpandableDecoder) Code() *Expandable { return d.e }

// syndromesInto fills syn (length n-k) with the dual-code syndromes
// S_i = sum_j v_j w_j x_j^i of word and reports whether all are zero,
// i.e. whether word is a codeword. Powers of each point are generated
// incrementally with its multiplication row, so the cost is one lookup
// and one XOR per (nonzero symbol, syndrome) pair.
func (e *Expandable) syndromesInto(syn, word []byte) bool {
	for i := range syn {
		syn[i] = 0
	}
	for j, w := range word {
		if w == 0 {
			continue
		}
		p := gf256.Row(e.dualV[j])[w]
		row := e.pointRows[j]
		for i := range syn {
			syn[i] ^= p
			p = row[p]
		}
	}
	allZero := true
	for _, s := range syn {
		if s != 0 {
			allZero = false
			break
		}
	}
	return allZero
}

// DecodeInto corrects errors and erasures in received (length N) into dst
// (length N, may alias received) and returns the number of symbol
// positions changed. The correction guarantee and failure semantics match
// Expandable.Decode (and are differentially tested against the
// Berlekamp-Welch reference); the steady-state path allocates nothing.
// The code must have all-nonzero evaluation points.
func (d *ExpandableDecoder) DecodeInto(dst, received []byte, erasures []int) (int, error) {
	e := d.e
	n := e.N()
	np := n - e.K
	if len(received) != n {
		return 0, fmt.Errorf("rs: Decode word length %d, want %d", len(received), n)
	}
	if len(dst) != n {
		return 0, fmt.Errorf("rs: Decode destination length %d, want %d", len(dst), n)
	}
	if !e.fastOK {
		return 0, fmt.Errorf("rs: code has a zero evaluation point; use Expandable.Decode")
	}

	// Validate and deduplicate the erasure list (the reference decoder's
	// erased-position map keeps duplicates from inflating the budget).
	for i := range d.erased {
		d.erased[i] = false
	}
	erasedPos := d.erasedPos[:0]
	for _, pos := range erasures {
		if pos < 0 || pos >= n {
			return 0, fmt.Errorf("rs: erasure position %d out of range [0,%d)", pos, n)
		}
		if !d.erased[pos] {
			d.erased[pos] = true
			erasedPos = append(erasedPos, pos)
		}
	}
	s := len(erasedPos)
	if n-s < e.K {
		return 0, ErrUncorrectable
	}
	copy(dst, received)

	if e.syndromesInto(d.syn, dst) {
		// Clean word: nothing to correct regardless of erasure flags.
		return 0, nil
	}

	var psi []byte
	if s == 0 {
		// Errors only: Gamma = 1, so Psi is the Berlekamp-Massey locator
		// itself and the erasure stages collapse away.
		psi = bmWorkspace(d.syn, np, 0, d.lambda, d.prev, d.tmp)
	} else {
		// Erasure locator Gamma(x) = prod (1 - x_pos x) over the erased
		// points, built in place by descending-order updates.
		gamma := d.gamma[:s+1]
		for i := range gamma {
			gamma[i] = 0
		}
		gamma[0] = 1
		glen := 1
		for _, pos := range erasedPos {
			row := e.pointRows[pos]
			for j := glen; j >= 1; j-- {
				gamma[j] ^= row[gamma[j-1]]
			}
			glen++
		}

		// Modified syndromes Xi = Gamma * S mod x^np, then Berlekamp-
		// Massey for the error locator and Psi = Lambda * Gamma.
		xi := d.xi[:np]
		mulModInto(xi, gamma[:glen], d.syn)
		lambda := bmWorkspace(xi, np, s, d.lambda, d.prev, d.tmp)
		psi = d.psi[:len(lambda)+glen]
		mulInto(psi, lambda, gamma[:glen])
	}
	degPsi := polyDeg(psi)
	if degPsi < 0 || degPsi > np {
		return 0, ErrUncorrectable
	}
	psi = psi[:degPsi+1]

	// Root search: the candidate roots are exactly the inverse evaluation
	// points, which are arbitrary field elements rather than consecutive
	// powers of alpha, so evaluate Psi directly at each precomputed
	// inverse instead of Chien stepping.
	positions := d.positions[:0]
	for pos := 0; pos < n; pos++ {
		if gf256.EvalAsc(psi, e.xInv[pos]) == 0 {
			if len(positions) == degPsi {
				// More roots than the locator degree: detected failure.
				return 0, ErrUncorrectable
			}
			positions = append(positions, pos)
		}
	}
	if len(positions) != degPsi {
		// Locator degree does not match its root count: detected failure.
		return 0, ErrUncorrectable
	}

	// Forney: Omega = S * Psi mod x^np; the dual syndromes carry the
	// column multipliers, so the raw magnitude x*Omega(1/x)/Psi'(1/x) is
	// v_pos * e_pos and the true symbol correction divides v_pos back out.
	omega := d.omega[:np]
	mulModInto(omega, d.syn, psi)
	deriv := d.deriv[:0]
	for i := 1; i < len(psi); i += 2 {
		for len(deriv) < i-1 {
			deriv = append(deriv, 0)
		}
		deriv = append(deriv, psi[i])
	}

	nchanged := 0
	errs := 0
	emax := (n - s - e.K) / 2
	for _, pos := range positions {
		xInv := e.xInv[pos]
		denom := gf256.EvalAsc(deriv, xInv)
		if denom == 0 {
			return 0, ErrUncorrectable
		}
		num := gf256.EvalAsc(omega, xInv)
		mag := gf256.Div(gf256.Mul(e.Points[pos], gf256.Div(num, denom)), e.dualV[pos])
		if mag != 0 {
			dst[pos] ^= mag
			nchanged++
			if !d.erased[pos] {
				errs++
			}
			// Fold the correction into the syndromes: position pos
			// contributes v_pos * mag * x_pos^i to syndrome i, so after
			// all corrections the updated syndromes must vanish. This
			// replaces the O(n*np) recomputation with O(errors*np) work.
			p := gf256.Row(e.dualV[pos])[mag]
			row := e.pointRows[pos]
			for i := range d.syn {
				d.syn[i] ^= p
				p = row[p]
			}
		}
	}

	// Consistency: the corrected word must be a codeword (incrementally
	// updated syndromes all zero) and the non-erased changes must fit the
	// 2e+s <= n-k budget — together these make the decoder extensionally
	// equal to the bounded-distance Berlekamp-Welch reference (the
	// codeword within the radius is unique when it exists).
	if errs > emax {
		return 0, ErrUncorrectable
	}
	for _, sy := range d.syn {
		if sy != 0 {
			return 0, ErrUncorrectable
		}
	}
	return nchanged, nil
}
