package rs

import (
	"bytes"
	"math/rand"
	"testing"

	"pair/internal/gf256"
)

func randMsg(rng *rand.Rand, k int) []byte {
	m := make([]byte, k)
	for i := range m {
		m[i] = byte(rng.Intn(256))
	}
	return m
}

// corrupt flips nerr random distinct symbols to random different values and
// returns their positions.
func corrupt(rng *rand.Rand, cw []byte, nerr int) []int {
	perm := rng.Perm(len(cw))
	pos := perm[:nerr]
	for _, p := range pos {
		old := cw[p]
		for {
			v := byte(rng.Intn(256))
			if v != old {
				cw[p] = v
				break
			}
		}
	}
	return pos
}

func TestNewRejectsBadShapes(t *testing.T) {
	for _, c := range []struct{ n, k int }{{10, 0}, {10, 10}, {10, 12}, {256, 200}, {5, -1}} {
		if _, err := New(c.n, c.k); err == nil {
			t.Fatalf("New(%d,%d) accepted", c.n, c.k)
		}
	}
	if _, err := New(255, 239); err != nil {
		t.Fatalf("New(255,239) rejected: %v", err)
	}
}

func TestEncodeProducesCodeword(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][2]int{{18, 16}, {20, 16}, {76, 64}, {72, 64}, {255, 223}} {
		c := MustNew(shape[0], shape[1])
		for trial := 0; trial < 20; trial++ {
			msg := randMsg(rng, c.K)
			cw := c.Encode(msg)
			if !bytes.Equal(cw[:c.K], msg) {
				t.Fatalf("(%d,%d): encoding not systematic", c.N, c.K)
			}
			if !c.IsCodeword(cw) {
				t.Fatalf("(%d,%d): encoded word has nonzero syndromes", c.N, c.K)
			}
		}
	}
}

func TestEncodeMatchesPolynomialReference(t *testing.T) {
	// parity must equal (msg * x^(n-k)) mod g in the coefficient convention
	// where codeword[0] is the highest-degree coefficient.
	rng := rand.New(rand.NewSource(2))
	c := MustNew(20, 16)
	for trial := 0; trial < 50; trial++ {
		msg := randMsg(rng, c.K)
		cw := c.Encode(msg)
		// Build msg polynomial (ascending order with msg[0] highest degree).
		mp := make(gf256.Polynomial, c.N)
		for i, m := range msg {
			mp[c.N-1-i] = m
		}
		_, rem := gf256.PolyDivMod(mp, c.gen)
		want := make([]byte, c.N-c.K)
		for i := range want {
			// parity[i] sits at codeword position K+i => degree N-1-(K+i).
			d := c.N - 1 - (c.K + i)
			if d < len(rem) {
				want[i] = rem[d]
			}
		}
		if !bytes.Equal(cw[c.K:], want) {
			t.Fatalf("LFSR parity %v != polynomial remainder %v", cw[c.K:], want)
		}
	}
}

func TestDecodeNoError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := MustNew(20, 16)
	msg := randMsg(rng, c.K)
	cw := c.Encode(msg)
	out, n, err := decodeAlloc(c, cw, nil)
	if err != nil || n != 0 || !bytes.Equal(out, cw) {
		t.Fatalf("clean decode failed: n=%d err=%v", n, err)
	}
}

func TestDecodeCorrectsUpToT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range [][2]int{{18, 16}, {20, 16}, {22, 16}, {76, 64}} {
		c := MustNew(shape[0], shape[1])
		for nerr := 1; nerr <= c.T; nerr++ {
			for trial := 0; trial < 100; trial++ {
				msg := randMsg(rng, c.K)
				cw := c.Encode(msg)
				rx := append([]byte(nil), cw...)
				corrupt(rng, rx, nerr)
				out, n, err := decodeAlloc(c, rx, nil)
				if err != nil {
					t.Fatalf("(%d,%d) nerr=%d: decode error: %v", c.N, c.K, nerr, err)
				}
				if n != nerr {
					t.Fatalf("(%d,%d) nerr=%d: corrected %d symbols", c.N, c.K, nerr, n)
				}
				if !bytes.Equal(out, cw) {
					t.Fatalf("(%d,%d) nerr=%d: wrong correction", c.N, c.K, nerr)
				}
			}
		}
	}
}

func TestDecodeErasuresUpToNMinusK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := MustNew(20, 16)
	for ners := 1; ners <= c.N-c.K; ners++ {
		for trial := 0; trial < 100; trial++ {
			msg := randMsg(rng, c.K)
			cw := c.Encode(msg)
			rx := append([]byte(nil), cw...)
			pos := corrupt(rng, rx, ners)
			out, _, err := decodeAlloc(c, rx, pos)
			if err != nil {
				t.Fatalf("ners=%d: decode error: %v", ners, err)
			}
			if !bytes.Equal(out, cw) {
				t.Fatalf("ners=%d: wrong erasure correction", ners)
			}
		}
	}
}

func TestDecodeMixedErrorsAndErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := MustNew(22, 16) // 6 parity: budgets (e,s) with 2e+s <= 6
	for nerr := 0; nerr <= 3; nerr++ {
		for ners := 0; 2*nerr+ners <= c.N-c.K; ners++ {
			if nerr == 0 && ners == 0 {
				continue
			}
			for trial := 0; trial < 60; trial++ {
				msg := randMsg(rng, c.K)
				cw := c.Encode(msg)
				rx := append([]byte(nil), cw...)
				perm := rng.Perm(c.N)
				erasures := perm[:ners]
				errPos := perm[ners : ners+nerr]
				for _, p := range append(append([]int(nil), erasures...), errPos...) {
					old := rx[p]
					for {
						v := byte(rng.Intn(256))
						if v != old {
							rx[p] = v
							break
						}
					}
				}
				out, _, err := decodeAlloc(c, rx, erasures)
				if err != nil {
					t.Fatalf("e=%d s=%d: decode error: %v", nerr, ners, err)
				}
				if !bytes.Equal(out, cw) {
					t.Fatalf("e=%d s=%d: wrong correction", nerr, ners)
				}
			}
		}
	}
}

func TestDecodeBeyondCapabilityNeverReturnsWrongSilently(t *testing.T) {
	// Beyond t errors a bounded-distance decoder either flags
	// ErrUncorrectable or miscorrects to a *valid* codeword. It must never
	// return a non-codeword claiming success.
	rng := rand.New(rand.NewSource(7))
	c := MustNew(18, 16) // t = 1
	detected, miscorrected := 0, 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		msg := randMsg(rng, c.K)
		cw := c.Encode(msg)
		rx := append([]byte(nil), cw...)
		corrupt(rng, rx, 2+rng.Intn(3)) // 2..4 errors > t
		out, _, err := decodeAlloc(c, rx, nil)
		if err != nil {
			detected++
			continue
		}
		if !c.IsCodeword(out) {
			t.Fatal("decoder returned non-codeword without error")
		}
		if !bytes.Equal(out, cw) {
			miscorrected++
		}
	}
	if detected == 0 {
		t.Fatal("no overload pattern was detected — detector broken")
	}
	// With t=1 and random double errors, some must miscorrect (that is the
	// physical phenomenon PAIR measures); if none did in 2000 trials the
	// model is wrong.
	if miscorrected == 0 {
		t.Fatal("no miscorrection observed in 2000 overload trials — implausible for t=1")
	}
	t.Logf("overload: %d detected, %d miscorrected of %d", detected, miscorrected, trials)
}

func TestDecodeRejectsTooManyErasures(t *testing.T) {
	c := MustNew(18, 16)
	cw := c.Encode(make([]byte, 16))
	if _, _, err := decodeAlloc(c, cw, []int{0, 1, 2}); err != ErrUncorrectable {
		t.Fatalf("3 erasures on 2-parity code: got %v", err)
	}
}

func TestDecodeBadErasurePosition(t *testing.T) {
	c := MustNew(18, 16)
	cw := c.Encode(make([]byte, 16))
	cw[0] ^= 1
	if _, _, err := decodeAlloc(c, cw, []int{-1}); err == nil {
		t.Fatal("negative erasure position accepted")
	}
	if _, _, err := decodeAlloc(c, cw, []int{18}); err == nil {
		t.Fatal("out-of-range erasure position accepted")
	}
}

func TestDecodeWrongLength(t *testing.T) {
	c := MustNew(18, 16)
	if _, _, err := decodeAlloc(c, make([]byte, 17), nil); err == nil {
		t.Fatal("wrong-length word accepted")
	}
}

func TestErasureFlaggedButClean(t *testing.T) {
	// A clean codeword with erasure flags must decode to itself.
	rng := rand.New(rand.NewSource(8))
	c := MustNew(20, 16)
	msg := randMsg(rng, c.K)
	cw := c.Encode(msg)
	out, n, err := decodeAlloc(c, cw, []int{3, 7})
	if err != nil || n != 0 || !bytes.Equal(out, cw) {
		t.Fatalf("clean word with erasure flags: n=%d err=%v", n, err)
	}
}

func TestCodewordLinearity(t *testing.T) {
	// The sum of two codewords is a codeword (linearity).
	rng := rand.New(rand.NewSource(9))
	c := MustNew(20, 16)
	for trial := 0; trial < 50; trial++ {
		a := c.Encode(randMsg(rng, c.K))
		b := c.Encode(randMsg(rng, c.K))
		sum := make([]byte, c.N)
		for i := range sum {
			sum[i] = a[i] ^ b[i]
		}
		if !c.IsCodeword(sum) {
			t.Fatal("sum of codewords is not a codeword")
		}
	}
}

func TestMinimumDistanceSpotCheck(t *testing.T) {
	// MDS: any nonzero codeword has weight >= n-k+1. Check on random
	// messages (weight of c.Encode(msg) with one nonzero symbol pattern).
	rng := rand.New(rand.NewSource(10))
	c := MustNew(18, 16) // d = 3
	for trial := 0; trial < 300; trial++ {
		msg := make([]byte, c.K)
		msg[rng.Intn(c.K)] = byte(1 + rng.Intn(255))
		cw := c.Encode(msg)
		w := 0
		for _, s := range cw {
			if s != 0 {
				w++
			}
		}
		if w < c.N-c.K+1 {
			t.Fatalf("codeword weight %d < d=%d", w, c.N-c.K+1)
		}
	}
}

// decodeAlloc mirrors the retired pooled Code.Decode convenience — decode
// into a fresh codeword with a fresh workspace — for the tests that
// exercised that shape. Hot paths use a Decoder (or a BatchWorkspace).
func decodeAlloc(c *Code, received []byte, erasures []int) ([]byte, int, error) {
	out := make([]byte, c.N)
	nchanged, err := c.NewDecoder().DecodeInto(out, received, erasures)
	if err != nil {
		return nil, 0, err
	}
	return out, nchanged, nil
}
