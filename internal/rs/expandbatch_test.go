package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// checkExpandableBatchAgainstScalar asserts the expandable DecodeBatch is
// extensionally equal to an ExpandableDecoder.DecodeInto loop.
func checkExpandableBatchAgainstScalar(t *testing.T, e *Expandable, ws *ExpandableBatchWorkspace, rxs [][]byte, erasures []int) {
	t.Helper()
	n := e.N()
	s := loadSlab(n, rxs)
	nchanged := make([]int, s.W())
	errs := make([]error, s.W())
	ws.DecodeBatch(s, erasures, nchanged, errs)

	dec := e.NewDecoder()
	got := make([]byte, n)
	want := make([]byte, n)
	for i, rx := range rxs {
		s.CodewordInto(got, i)
		wantN, wantErr := dec.DecodeInto(want, rx, erasures)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("codeword %d: batch err %v, scalar err %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			if errs[i].Error() != wantErr.Error() {
				t.Fatalf("codeword %d: batch err %q, scalar err %q", i, errs[i], wantErr)
			}
			if !bytes.Equal(got, rx) {
				t.Fatalf("codeword %d: slab modified on error", i)
			}
			continue
		}
		if nchanged[i] != wantN {
			t.Fatalf("codeword %d: batch nchanged %d, scalar %d", i, nchanged[i], wantN)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("codeword %d: batch %x, scalar %x", i, got, want)
		}
	}
}

func TestExpandableDecodeBatchMatchesScalar(t *testing.T) {
	codes := []*Expandable{}
	for _, sh := range []struct{ n, k int }{{20, 16}, {18, 16}, {26, 16}} {
		e, err := NewExpandableDefault(sh.n, sh.k)
		if err != nil {
			t.Fatal(err)
		}
		codes = append(codes, e)
	}
	// Non-geometric (but all-nonzero) points: the sweep falls back to the
	// per-codeword scalar syndromes, results must still match.
	rev := DefaultPoints(20)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	eRev, err := NewExpandable(16, rev)
	if err != nil {
		t.Fatal(err)
	}
	codes = append(codes, eRev)

	for _, e := range codes {
		n, k := e.N(), e.K
		ws := e.NewBatchWorkspace()
		rng := rand.New(rand.NewSource(int64(n)))
		rxs := corruptedBatch(rng, e.Encode, n, k, 13)
		checkExpandableBatchAgainstScalar(t, e, ws, rxs, nil)
		checkExpandableBatchAgainstScalar(t, e, ws, rxs, []int{0})
		checkExpandableBatchAgainstScalar(t, e, ws, rxs, []int{3, 3, n - 1}) // duplicates dedup
		over := make([]int, n-k+1)
		for i := range over {
			over[i] = i
		}
		checkExpandableBatchAgainstScalar(t, e, ws, rxs, over)
		checkExpandableBatchAgainstScalar(t, e, ws, rxs, []int{-1})
		checkExpandableBatchAgainstScalar(t, e, ws, rxs, []int{n})
		// Budget exhaustion: more erasures than n-K survivors allow.
		tooMany := make([]int, n-k+2)
		for i := range tooMany {
			tooMany[i] = i
		}
		checkExpandableBatchAgainstScalar(t, e, ws, rxs, tooMany)
	}
}

func TestExpandableEncodeBatchMatchesScalar(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{20, 16}, {18, 16}, {26, 16}} {
		e, err := NewExpandableDefault(sh.n, sh.k)
		if err != nil {
			t.Fatal(err)
		}
		ws := e.NewBatchWorkspace()
		rng := rand.New(rand.NewSource(int64(sh.k)))
		const count = 10
		s := NewSlab(sh.n, padW(count))
		msgs := make([][]byte, count)
		for i := range msgs {
			msgs[i] = make([]byte, sh.k)
			rng.Read(msgs[i])
			s.SetData(i, msgs[i])
		}
		s.ZeroTail(count)
		ws.EncodeBatch(s)
		got := make([]byte, sh.n)
		for i, msg := range msgs {
			s.CodewordInto(got, i)
			if want := e.Encode(msg); !bytes.Equal(got, want) {
				t.Fatalf("(%d,%d) codeword %d: batch %x, scalar %x", sh.n, sh.k, i, got, want)
			}
		}
	}
}

func TestExpandableDecodeBatchZeroAllocSteadyState(t *testing.T) {
	e, err := NewExpandableDefault(20, 16)
	if err != nil {
		t.Fatal(err)
	}
	ws := e.NewBatchWorkspace()
	rng := rand.New(rand.NewSource(17))
	rxs := corruptedBatch(rng, e.Encode, 20, 16, 32)
	s := loadSlab(20, rxs)
	nchanged := make([]int, s.W())
	errs := make([]error, s.W())
	ws.DecodeBatch(s, nil, nchanged, errs) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		ws.DecodeBatch(s, nil, nchanged, errs)
	})
	if allocs != 0 {
		t.Fatalf("expandable DecodeBatch allocates %.1f/op in steady state, want 0", allocs)
	}
}
