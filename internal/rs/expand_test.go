package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestNewExpandableValidation(t *testing.T) {
	if _, err := NewExpandable(0, []byte{1, 2}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewExpandable(3, []byte{1, 2}); err == nil {
		t.Fatal("fewer points than k accepted")
	}
	if _, err := NewExpandable(2, []byte{1, 2, 2}); err == nil {
		t.Fatal("duplicate points accepted")
	}
	if _, err := NewExpandableDefault(16, 18); err == nil {
		t.Fatal("n<=k accepted")
	}
}

func TestExpandableEncodeSystematic(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	e, err := NewExpandableDefault(18, 16)
	if err != nil {
		t.Fatal(err)
	}
	msg := randMsg(rng, 16)
	cw := e.Encode(msg)
	if len(cw) != 18 {
		t.Fatalf("codeword length %d", len(cw))
	}
	if !bytes.Equal(cw[:16], msg) {
		t.Fatal("encoding not systematic")
	}
}

func TestExpandableDecodeUpToT(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, shape := range [][2]int{{18, 16}, {20, 16}, {22, 16}, {24, 16}} {
		e, err := NewExpandableDefault(shape[0], shape[1])
		if err != nil {
			t.Fatal(err)
		}
		for nerr := 0; nerr <= e.T(); nerr++ {
			for trial := 0; trial < 60; trial++ {
				msg := randMsg(rng, e.K)
				cw := e.Encode(msg)
				rx := append([]byte(nil), cw...)
				corrupt(rng, rx, nerr)
				out, n, err := e.Decode(rx, nil)
				if err != nil {
					t.Fatalf("(%d,%d) nerr=%d: %v", e.N(), e.K, nerr, err)
				}
				if n != nerr || !bytes.Equal(out, cw) {
					t.Fatalf("(%d,%d) nerr=%d: wrong correction (n=%d)", e.N(), e.K, nerr, n)
				}
			}
		}
	}
}

func TestExpandableDecodeErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	e, _ := NewExpandableDefault(20, 16)
	// 2e + s <= 4
	for nerr := 0; nerr <= 2; nerr++ {
		for ners := 0; 2*nerr+ners <= 4; ners++ {
			if nerr+ners == 0 {
				continue
			}
			for trial := 0; trial < 40; trial++ {
				msg := randMsg(rng, e.K)
				cw := e.Encode(msg)
				rx := append([]byte(nil), cw...)
				perm := rng.Perm(e.N())
				erasures := perm[:ners]
				for _, p := range perm[:ners+nerr] {
					rx[p] ^= byte(1 + rng.Intn(255))
				}
				out, _, err := e.Decode(rx, erasures)
				if err != nil {
					t.Fatalf("e=%d s=%d: %v", nerr, ners, err)
				}
				if !bytes.Equal(out, cw) {
					t.Fatalf("e=%d s=%d: wrong correction", nerr, ners)
				}
			}
		}
	}
}

func TestExpansionPreservesStoredSymbols(t *testing.T) {
	// The defining property: expanding (18,16) -> (20,16) must not change
	// the first 18 symbols.
	rng := rand.New(rand.NewSource(23))
	base, _ := NewExpandableDefault(18, 16)
	expanded, err := base.Expand(DefaultPoints(20)[18:]...)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		msg := randMsg(rng, 16)
		cwBase := base.Encode(msg)
		cwFull, err := base.ExtendCodeword(cwBase, expanded)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cwFull[:18], cwBase) {
			t.Fatal("expansion modified stored symbols")
		}
		// Direct encoding with the expanded code must agree.
		direct := expanded.Encode(msg)
		if !bytes.Equal(direct, cwFull) {
			t.Fatal("extended codeword differs from direct expanded encoding")
		}
	}
}

func TestExpansionRaisesCorrectionPower(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	base, _ := NewExpandableDefault(18, 16)               // t = 1
	expanded, _ := base.Expand(DefaultPoints(20)[18:]...) // t = 2
	baseFail, expOK := 0, 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		msg := randMsg(rng, 16)
		cwBase := base.Encode(msg)
		cwFull, _ := base.ExtendCodeword(cwBase, expanded)

		// Two errors within the base 18 symbols.
		rxBase := append([]byte(nil), cwBase...)
		pos := corrupt(rng, rxBase, 2)

		if out, _, err := base.Decode(rxBase, nil); err != nil || !bytes.Equal(out, cwBase) {
			baseFail++
		}
		rxFull := append([]byte(nil), cwFull...)
		for _, p := range pos {
			rxFull[p] = rxBase[p]
		}
		if out, _, err := expanded.Decode(rxFull, nil); err == nil && bytes.Equal(out, cwFull) {
			expOK++
		}
	}
	if expOK != trials {
		t.Fatalf("expanded code corrected only %d/%d double errors", expOK, trials)
	}
	if baseFail == 0 {
		t.Fatal("base t=1 code corrected all double errors — implausible")
	}
}

func TestExtendCodewordValidation(t *testing.T) {
	base, _ := NewExpandableDefault(18, 16)
	other, _ := NewExpandableDefault(20, 15)
	if _, err := base.ExtendCodeword(make([]byte, 18), other); err == nil {
		t.Fatal("mismatched K accepted")
	}
	if _, err := base.ExtendCodeword(make([]byte, 17), base); err == nil {
		t.Fatal("wrong codeword length accepted")
	}
	// Target whose prefix points differ.
	pts := DefaultPoints(20)
	pts[0], pts[1] = pts[1], pts[0]
	twisted, _ := NewExpandable(16, pts)
	if _, err := base.ExtendCodeword(make([]byte, 18), twisted); err == nil {
		t.Fatal("non-prefix expansion accepted")
	}
}

func TestExpandableAgreesWithBCHViewOnCorrectionPower(t *testing.T) {
	// Both views of an (n,k) RS code are MDS with the same t; check the
	// evaluation view corrects everything the BCH view does at t=2.
	rng := rand.New(rand.NewSource(25))
	ev, _ := NewExpandableDefault(20, 16)
	bch := MustNew(20, 16)
	for trial := 0; trial < 100; trial++ {
		msg := randMsg(rng, 16)
		cwE := ev.Encode(msg)
		cwB := bch.Encode(msg)
		rxE := append([]byte(nil), cwE...)
		rxB := append([]byte(nil), cwB...)
		// Same two error positions in both (values differ; capability is
		// position-driven for MDS codes).
		perm := rng.Perm(20)
		for _, p := range perm[:2] {
			rxE[p] ^= 0x5A
			rxB[p] ^= 0x5A
		}
		if out, _, err := ev.Decode(rxE, nil); err != nil || !bytes.Equal(out, cwE) {
			t.Fatalf("evaluation view failed on double error: %v", err)
		}
		if out, _, err := decodeAlloc(bch, rxB, nil); err != nil || !bytes.Equal(out, cwB) {
			t.Fatalf("BCH view failed on double error: %v", err)
		}
	}
}

func TestExpandableBeyondCapability(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	e, _ := NewExpandableDefault(18, 16) // t=1
	detected := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		msg := randMsg(rng, 16)
		cw := e.Encode(msg)
		rx := append([]byte(nil), cw...)
		corrupt(rng, rx, 2)
		out, _, err := e.Decode(rx, nil)
		if err != nil {
			detected++
			continue
		}
		// Miscorrection must still land on a codeword of the code.
		reenc := e.Encode(out[:16])
		if !bytes.Equal(reenc, out) {
			t.Fatal("miscorrection produced non-codeword")
		}
	}
	if detected == 0 {
		t.Fatal("no double error detected by t=1 evaluation decoder")
	}
}

func TestExpandableTooManyErasures(t *testing.T) {
	e, _ := NewExpandableDefault(18, 16)
	cw := e.Encode(make([]byte, 16))
	cw[0] ^= 1
	// Erase so many that fewer than k symbols survive.
	erasures := []int{0, 1, 2}
	if _, _, err := e.Decode(cw, erasures); err == nil {
		t.Fatal("decode with < k surviving symbols accepted")
	}
}
