// Batch (slab) codec path: encode and decode many codewords per pass with
// bitsliced GF(2^8) kernels.
//
// A Slab stores W codewords of length N position-major and *bitsliced*:
// each position holds, per group of 64 codewords, the 8 bit-planes of its
// symbols (gf256.Planes — bit b of plane i is bit i of codeword b's
// symbol). In this representation multiplying a whole position by a field
// constant is a fixed XOR network across planes, so the batch syndrome
// pass runs the scalar decoder's Horner recurrence as straight-line XOR
// chains — the multiply-by-alpha^k networks cost 3, 6 and 9 XORs per 64
// codewords — and folds every accumulator into a one-bit-per-codeword
// dirty mask with word-wide ORs. In the Monte-Carlo campaigns virtually
// every codeword is clean, so almost all work is this single sweep; only
// the dirty minority is gathered out and handed to the scalar Decoder,
// whose behaviour (and therefore the batch path's) is already
// differentially pinned against the reference decoder.
//
// The layout is defined logically — bit cw%64 of plane words — so slabs
// are endian-independent and never touch unsafe. Bulk byte access goes
// through SetColumn/ColumnInto, which transpose 64 symbols at a time with
// the multiply-gather trick in gf256.PackPlanes/UnpackPlanes.
package rs

import (
	"fmt"
	"math/bits"

	"pair/internal/gf256"
)

// Slab is a contiguous batch of W codewords of length N, stored
// position-major in bit planes: symbol pos of codewords [64g, 64g+64) is
// the gf256.Planes at words[(pos*G+g)*8 : +8], where G = ceil(W/64) is
// the group count. W must be a positive multiple of 8; round up and
// zero-pad — the zero word is a valid codeword of every linear code, so
// padding decodes clean.
type Slab struct {
	n, w  int
	g     int // 64-codeword plane groups, ceil(w/64)
	words []uint64
}

// NewSlab allocates a zeroed slab of w codewords of length n. w must be a
// positive multiple of 8.
func NewSlab(n, w int) *Slab {
	if n <= 0 {
		panic(fmt.Sprintf("rs: slab codeword length %d", n))
	}
	if w <= 0 || w%8 != 0 {
		panic(fmt.Sprintf("rs: slab width %d, want a positive multiple of 8", w))
	}
	g := (w + 63) / 64
	return &Slab{n: n, w: w, g: g, words: make([]uint64, n*g*8)}
}

// N returns the codeword length in symbols.
func (s *Slab) N() int { return s.n }

// W returns the slab width in codewords.
func (s *Slab) W() int { return s.w }

// Groups returns the number of 64-codeword plane groups, ceil(W/64).
func (s *Slab) Groups() int { return s.g }

// planes returns the bit planes of position pos for group grp.
func (s *Slab) planes(pos, grp int) *gf256.Planes {
	off := (pos*s.g + grp) * 8
	return (*gf256.Planes)(s.words[off : off+8])
}

// Zero clears every codeword.
func (s *Slab) Zero() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ZeroTail clears codeword slots [from, W) of every position — the padding
// region when fewer than W codewords are loaded.
func (s *Slab) ZeroTail(from int) {
	if from < 0 || from > s.w {
		panic(fmt.Sprintf("rs: slab tail start %d out of range [0,%d]", from, s.w))
	}
	grp0, b := from>>6, uint(from&63)
	keep := uint64(1)<<b - 1 // b == 0 keeps nothing: the group clears whole
	for pos := 0; pos < s.n; pos++ {
		if grp0 < s.g {
			p := s.planes(pos, grp0)
			for i := range p {
				p[i] &= keep
			}
		}
		for g := grp0 + 1; g < s.g; g++ {
			*s.planes(pos, g) = gf256.Planes{}
		}
	}
}

// checkCW panics when cw is outside [0, W): out-of-range writes would
// plant dirty bits in the padding region the sweep relies on being clean.
func (s *Slab) checkCW(cw int) {
	if cw < 0 || cw >= s.w {
		panic(fmt.Sprintf("rs: slab codeword index %d out of range [0,%d)", cw, s.w))
	}
}

// Set writes symbol pos of codeword cw.
func (s *Slab) Set(cw, pos int, v byte) {
	s.checkCW(cw)
	grp, b := cw>>6, uint(cw&63)
	base := (pos*s.g + grp) * 8
	mask := uint64(1) << b
	for i := 0; i < 8; i++ {
		s.words[base+i] = s.words[base+i]&^mask | uint64(v>>i&1)<<b
	}
}

// At reads symbol pos of codeword cw.
func (s *Slab) At(cw, pos int) byte {
	s.checkCW(cw)
	grp, b := cw>>6, uint(cw&63)
	base := (pos*s.g + grp) * 8
	var v byte
	for i := 0; i < 8; i++ {
		v |= byte(s.words[base+i]>>b&1) << i
	}
	return v
}

// SetCodeword stores word (length N) as codeword cw.
func (s *Slab) SetCodeword(cw int, word []byte) {
	if len(word) != s.n {
		panic(fmt.Sprintf("rs: slab codeword length %d, want %d", len(word), s.n))
	}
	s.checkCW(cw)
	grp, b := cw>>6, uint(cw&63)
	mask := uint64(1) << b
	for pos, v := range word {
		base := (pos*s.g + grp) * 8
		for i := 0; i < 8; i++ {
			s.words[base+i] = s.words[base+i]&^mask | uint64(v>>i&1)<<b
		}
	}
}

// SetData stores data (length <= N) into positions [0, len(data)) of
// codeword cw — the message region ahead of an EncodeBatch.
func (s *Slab) SetData(cw int, data []byte) {
	if len(data) > s.n {
		panic(fmt.Sprintf("rs: slab data length %d exceeds codeword length %d", len(data), s.n))
	}
	s.checkCW(cw)
	grp, b := cw>>6, uint(cw&63)
	mask := uint64(1) << b
	for pos, v := range data {
		base := (pos*s.g + grp) * 8
		for i := 0; i < 8; i++ {
			s.words[base+i] = s.words[base+i]&^mask | uint64(v>>i&1)<<b
		}
	}
}

// CodewordInto extracts codeword cw into dst (length N).
func (s *Slab) CodewordInto(dst []byte, cw int) {
	if len(dst) != s.n {
		panic(fmt.Sprintf("rs: slab codeword length %d, want %d", len(dst), s.n))
	}
	s.checkCW(cw)
	grp, b := cw>>6, uint(cw&63)
	for pos := range dst {
		base := (pos*s.g + grp) * 8
		var v byte
		for i := 0; i < 8; i++ {
			v |= byte(s.words[base+i]>>b&1) << i
		}
		dst[pos] = v
	}
}

// SetColumn stores col[j] as symbol pos of codeword grp*64+j for all 64
// j — the bulk transposed write for batch gathers. Entries beyond W must
// be zero so the padding region stays clean.
func (s *Slab) SetColumn(pos, grp int, col *[64]byte) {
	gf256.PackPlanes(s.planes(pos, grp), col)
}

// ColumnInto extracts symbol pos of codewords [grp*64, grp*64+64) into
// col — the bulk transposed read.
func (s *Slab) ColumnInto(col *[64]byte, pos, grp int) {
	gf256.UnpackPlanes(col, s.planes(pos, grp))
}

// planesDirty reports whether any of the 64 elements is nonzero.
func planesDirty(p *gf256.Planes) bool {
	return p[0]|p[1]|p[2]|p[3]|p[4]|p[5]|p[6]|p[7] != 0
}

// BatchWorkspace is a reusable workspace for EncodeBatch/DecodeBatch on
// one Code: the scalar fallback Decoder, a gather buffer and the dirty
// mask. After the first call on a given slab width the batch path
// allocates nothing. Like Decoder, it is NOT safe for concurrent use.
type BatchWorkspace struct {
	c     *Code
	dec   *Decoder
	word  []byte   // N-symbol gather/scatter buffer
	dirty []uint64 // per-group dirty mask, one bit per codeword
}

// NewBatchWorkspace returns a fresh batch workspace for the code.
func (c *Code) NewBatchWorkspace() *BatchWorkspace {
	return &BatchWorkspace{c: c, dec: c.NewDecoder(), word: make([]byte, c.N)}
}

// Code returns the code this workspace serves.
func (ws *BatchWorkspace) Code() *Code { return ws.c }

// dirtyMask grows (if needed) and returns the dirty-mask buffer for g
// plane groups.
func (ws *BatchWorkspace) dirtyMask(g int) []uint64 {
	if cap(ws.dirty) < g {
		ws.dirty = make([]uint64, g)
	}
	return ws.dirty[:g]
}

// EncodeBatch overwrites the parity positions [K,N) of every codeword in s
// from its data positions [0,K). It is the batch counterpart of EncodeTo:
// parity is a linear map of the data, applied per data symbol as
// bitsliced constant multiplies into the parity planes.
func (ws *BatchWorkspace) EncodeBatch(s *Slab) {
	c := ws.c
	if s.n != c.N {
		panic(fmt.Sprintf("rs: slab codeword length %d, want %d", s.n, c.N))
	}
	c.ensureBatchParity()
	encodeSlab(s, c.K, c.batchParity)
}

// encodeSlab applies a systematic parity map to every group of a slab:
// parity[j][i] multiplies data symbol i into parity symbol k+j.
func encodeSlab(s *Slab, k int, parity [][]byte) {
	np := s.n - k
	for grp := 0; grp < s.g; grp++ {
		for j := 0; j < np; j++ {
			*s.planes(k+j, grp) = gf256.Planes{}
		}
		for i := 0; i < k; i++ {
			src := s.planes(i, grp)
			if !planesDirty(src) {
				continue
			}
			for j := 0; j < np; j++ {
				gf256.MulXorPlanes(s.planes(k+j, grp), src, parity[j][i])
			}
		}
	}
}

// ensureBatchParity lazily builds the (N-K) x K parity map:
// batchParity[j][i] multiplies data symbol i into parity symbol j. The
// columns are the parity responses of the unit messages (systematic
// linear code), obtained by running the scalar encoder once per message
// position.
func (c *Code) ensureBatchParity() {
	c.batchOnce.Do(func() {
		np := c.N - c.K
		msg := make([]byte, c.K)
		cw := make([]byte, c.N)
		c.batchParity = make([][]byte, np)
		for j := range c.batchParity {
			c.batchParity[j] = make([]byte, c.K)
		}
		for i := 0; i < c.K; i++ {
			msg[i] = 1
			c.EncodeTo(msg, cw)
			msg[i] = 0
			for j := 0; j < np; j++ {
				c.batchParity[j][i] = cw[c.K+j]
			}
		}
	})
}

// DecodeBatch corrects every codeword of s in place. erasures (symbol
// positions flagged unreliable, applied uniformly to every codeword in
// the slab), nchanged[i] and errs[i] mirror Decoder.DecodeInto for
// codeword i: the number of symbols changed, and nil or the decode error.
// nchanged and errs must have length >= s.W(). The result — slab contents,
// counts and errors — is defined to be identical to a per-codeword
// DecodeInto loop; on a codeword's error its slab contents are the
// received word, unchanged.
//
// The return value is the number of dirty codewords that required the
// scalar fallback; 0 means the whole slab was clean and the call cost one
// fused syndrome sweep.
func (ws *BatchWorkspace) DecodeBatch(s *Slab, erasures []int, nchanged []int, errs []error) int {
	c := ws.c
	if s.n != c.N {
		panic(fmt.Sprintf("rs: slab codeword length %d, want %d", s.n, c.N))
	}
	if len(nchanged) < s.w || len(errs) < s.w {
		panic(fmt.Sprintf("rs: result buffers length %d/%d, want >= %d", len(nchanged), len(errs), s.w))
	}
	for i := 0; i < s.w; i++ {
		nchanged[i], errs[i] = 0, nil
	}
	np := c.N - c.K
	if len(erasures) > np {
		// The scalar decoder rejects an over-budget erasure list before
		// looking at the word; so does the batch path, for every codeword.
		for i := 0; i < s.w; i++ {
			errs[i] = ErrUncorrectable
		}
		return s.w
	}

	dirty := ws.dirtyMask(s.g)
	if !c.syndromeSweep(s, dirty) {
		// All-zero syndromes across the slab: every codeword is clean
		// (erasure flags, if any, are consistent) — the fast exit.
		return 0
	}

	ndirty := 0
	for grp, dw := range dirty {
		for dw != 0 {
			cw := grp<<6 + bits.TrailingZeros64(dw)
			dw &= dw - 1
			s.CodewordInto(ws.word, cw)
			n, err := ws.dec.DecodeInto(ws.word, ws.word, erasures)
			if err != nil {
				errs[cw] = err
			} else if n > 0 {
				nchanged[cw] = n
				s.SetCodeword(cw, ws.word)
			}
			ndirty++
		}
	}
	return ndirty
}

// syndromeSweep computes, for every codeword of s, the OR of all its
// syndromes, writing the fold into dirty (one bit per codeword) and
// reporting whether any codeword is dirty. It is the batch counterpart of
// SyndromesInto's Horner recurrence acc_j = acc_j * root_j + symbol,
// bitsliced: the first four roots of an fcr=0 code (every PAIR and DUO
// operating point has 2-4) run as hardwired multiply-by-alpha^k XOR
// networks; further roots use the generic constant-multiply kernel.
func (c *Code) syndromeSweep(s *Slab, dirty []uint64) bool {
	np := c.N - c.K
	stride := s.g * 8
	var any uint64
	for grp := 0; grp < s.g; grp++ {
		off := grp * 8
		var d uint64
		j := 0
		if c.fcr == 0 {
			d = foldChain0(s.words, off, stride, s.n)
			j = 1
			if np > 1 {
				d |= foldChainX(s.words, off, stride, s.n)
				j = 2
			}
			if np > 2 {
				d |= foldChainX2(s.words, off, stride, s.n)
				j = 3
			}
			if np > 3 {
				d |= foldChainX3(s.words, off, stride, s.n)
				j = 4
			}
		}
		for ; j < np; j++ {
			d |= foldChainGen(s.words, off, stride, s.n, gf256.Exp(c.fcr+j))
		}
		dirty[grp] = d
		any |= d
	}
	return any != 0
}

// The foldChain kernels below run one syndrome's Horner recurrence over a
// strided sequence of n plane blocks (8 words each, starting at off,
// advancing by stride — negative strides walk positions backwards) and
// return the OR of the accumulator planes: bit b set means codeword b's
// syndrome is nonzero. The multiply-by-alpha^k steps are the bit-plane
// XOR networks of x*alpha^k mod 0x11d, applied to register accumulators.

// foldChain0 folds the alpha^0 syndrome: a plain XOR over all positions.
func foldChain0(words []uint64, off, stride, n int) uint64 {
	var b0, b1, b2, b3, b4, b5, b6, b7 uint64
	for pos := 0; pos < n; pos++ {
		p := words[off : off+8 : off+8]
		b0 ^= p[0]
		b1 ^= p[1]
		b2 ^= p[2]
		b3 ^= p[3]
		b4 ^= p[4]
		b5 ^= p[5]
		b6 ^= p[6]
		b7 ^= p[7]
		off += stride
	}
	return b0 | b1 | b2 | b3 | b4 | b5 | b6 | b7
}

// foldChainX folds a syndrome with root alpha: acc = alpha*acc ^ v.
func foldChainX(words []uint64, off, stride, n int) uint64 {
	var b0, b1, b2, b3, b4, b5, b6, b7 uint64
	for pos := 0; pos < n; pos++ {
		p := words[off : off+8 : off+8]
		t7 := b7
		b7 = b6 ^ p[7]
		b6 = b5 ^ p[6]
		b5 = b4 ^ p[5]
		b4 = b3 ^ t7 ^ p[4]
		b3 = b2 ^ t7 ^ p[3]
		b2 = b1 ^ t7 ^ p[2]
		b1 = b0 ^ p[1]
		b0 = t7 ^ p[0]
		off += stride
	}
	return b0 | b1 | b2 | b3 | b4 | b5 | b6 | b7
}

// foldChainX2 folds a syndrome with root alpha^2.
func foldChainX2(words []uint64, off, stride, n int) uint64 {
	var b0, b1, b2, b3, b4, b5, b6, b7 uint64
	for pos := 0; pos < n; pos++ {
		p := words[off : off+8 : off+8]
		t6, t7 := b6, b7
		b7 = b5 ^ p[7]
		b6 = b4 ^ p[6]
		b5 = b3 ^ t7 ^ p[5]
		b4 = b2 ^ t6 ^ t7 ^ p[4]
		b3 = b1 ^ t6 ^ t7 ^ p[3]
		b2 = b0 ^ t6 ^ p[2]
		b1 = t7 ^ p[1]
		b0 = t6 ^ p[0]
		off += stride
	}
	return b0 | b1 | b2 | b3 | b4 | b5 | b6 | b7
}

// foldChainX3 folds a syndrome with root alpha^3.
func foldChainX3(words []uint64, off, stride, n int) uint64 {
	var b0, b1, b2, b3, b4, b5, b6, b7 uint64
	for pos := 0; pos < n; pos++ {
		p := words[off : off+8 : off+8]
		t5, t6, t7 := b5, b6, b7
		b7 = b4 ^ p[7]
		b6 = b3 ^ t7 ^ p[6]
		b5 = b2 ^ t6 ^ t7 ^ p[5]
		b4 = b1 ^ t5 ^ t6 ^ t7 ^ p[4]
		b3 = b0 ^ t5 ^ t6 ^ p[3]
		b2 = t5 ^ t7 ^ p[2]
		b1 = t6 ^ p[1]
		b0 = t5 ^ p[0]
		off += stride
	}
	return b0 | b1 | b2 | b3 | b4 | b5 | b6 | b7
}

// foldChainGen folds a syndrome with an arbitrary root via the generic
// bitsliced constant multiply.
func foldChainGen(words []uint64, off, stride, n int, root byte) uint64 {
	var acc, tmp gf256.Planes
	for pos := 0; pos < n; pos++ {
		p := words[off : off+8 : off+8]
		tmp = gf256.Planes{}
		gf256.MulXorPlanes(&tmp, &acc, root)
		acc[0] = tmp[0] ^ p[0]
		acc[1] = tmp[1] ^ p[1]
		acc[2] = tmp[2] ^ p[2]
		acc[3] = tmp[3] ^ p[3]
		acc[4] = tmp[4] ^ p[4]
		acc[5] = tmp[5] ^ p[5]
		acc[6] = tmp[6] ^ p[6]
		acc[7] = tmp[7] ^ p[7]
		off += stride
	}
	return acc[0] | acc[1] | acc[2] | acc[3] | acc[4] | acc[5] | acc[6] | acc[7]
}
