package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestDecodeIntoMatchesReference drives the workspace decoder and the
// original allocating reference over randomized error/erasure patterns —
// within budget, beyond budget (uncorrectable and miscorrecting), and with
// duplicate/garbage erasure lists — and requires bit-identical results.
func TestDecodeIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][2]int{{20, 16}, {18, 16}, {81, 64}, {12, 3}, {255, 223}, {10, 9}}
	for _, shape := range shapes {
		c := MustNew(shape[0], shape[1])
		d := c.NewDecoder()
		dst := make([]byte, c.N)
		for trial := 0; trial < 400; trial++ {
			msg := randMsg(rng, c.K)
			rx := c.Encode(msg)
			// Corrupt 0..np+2 random symbols (beyond budget included).
			ncorrupt := rng.Intn(c.NumParity() + 3)
			for _, p := range rng.Perm(c.N)[:ncorrupt] {
				rx[p] ^= byte(1 + rng.Intn(255))
			}
			var erasures []int
			switch rng.Intn(4) {
			case 1: // plausible erasures
				ners := rng.Intn(c.NumParity() + 1)
				erasures = rng.Perm(c.N)[:ners]
			case 2: // duplicates allowed
				for i := 0; i < rng.Intn(4); i++ {
					erasures = append(erasures, rng.Intn(c.N))
					erasures = append(erasures, erasures[0])
				}
			case 3: // too many
				erasures = rng.Perm(c.N)[:min(c.N, c.NumParity()+1+rng.Intn(3))]
			}

			wantWord, wantN, wantErr := c.decodeReference(rx, erasures)
			gotN, gotErr := d.DecodeInto(dst, rx, erasures)
			if !errors.Is(gotErr, wantErr) && (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("(%d,%d) err mismatch: got %v want %v (corrupt=%d erasures=%v)",
					c.N, c.K, gotErr, wantErr, ncorrupt, erasures)
			}
			if wantErr != nil {
				continue
			}
			if gotN != wantN || !bytes.Equal(dst, wantWord) {
				t.Fatalf("(%d,%d) result mismatch: nchanged %d vs %d\n got %x\nwant %x",
					c.N, c.K, gotN, wantN, dst, wantWord)
			}
		}
	}
}

// TestDecodeIntoAliasing verifies DecodeInto may correct in place.
func TestDecodeIntoAliasing(t *testing.T) {
	c := MustNew(20, 16)
	d := c.NewDecoder()
	rng := rand.New(rand.NewSource(7))
	msg := randMsg(rng, 16)
	golden := c.Encode(msg)
	rx := append([]byte(nil), golden...)
	rx[2] ^= 0x10
	rx[19] ^= 0x7f
	n, err := d.DecodeInto(rx, rx, nil)
	if err != nil || n != 2 || !bytes.Equal(rx, golden) {
		t.Fatalf("in-place decode failed: n=%d err=%v", n, err)
	}
}

// TestDecodeIntoErrorOrdering pins the validation order the reference
// implementation established: clean words win over bad erasure lists, and
// oversized erasure lists are rejected before position validation.
func TestDecodeIntoErrorOrdering(t *testing.T) {
	c := MustNew(20, 16)
	d := c.NewDecoder()
	dst := make([]byte, 20)
	cw := c.Encode(make([]byte, 16))
	// Clean word + out-of-range erasure: accepted (syndromes checked first).
	if _, err := d.DecodeInto(dst, cw, []int{99}); err != nil {
		t.Fatalf("clean word with junk erasure rejected: %v", err)
	}
	// Dirty word + out-of-range erasure: position error.
	rx := append([]byte(nil), cw...)
	rx[0] ^= 1
	if _, err := d.DecodeInto(dst, rx, []int{99}); err == nil || errors.Is(err, ErrUncorrectable) {
		t.Fatalf("out-of-range erasure not reported: %v", err)
	}
	// Too many erasures rejected up front.
	if _, err := d.DecodeInto(dst, rx, make([]int, 5)); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("oversized erasure list: %v", err)
	}
}

// TestSyndromesIntoMatchesSyndromes cross-checks the table-row syndrome
// kernel against the allocating API.
func TestSyndromesIntoMatchesSyndromes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := MustNew(20, 16)
	syn := make([]byte, c.NumParity())
	for trial := 0; trial < 200; trial++ {
		word := randMsg(rng, c.N)
		allZero := c.SyndromesInto(syn, word)
		want := c.Syndromes(word)
		if !bytes.Equal(syn, want) {
			t.Fatalf("syndromes differ: %x vs %x", syn, want)
		}
		wantZero := true
		for _, s := range want {
			if s != 0 {
				wantZero = false
			}
		}
		if allZero != wantZero {
			t.Fatalf("allZero flag %v, want %v", allZero, wantZero)
		}
	}
}

// TestCodecFastPathAllocs pins the allocation behaviour the Monte-Carlo
// engines rely on: encode and workspace decode (clean, errors, erasures,
// detected-uncorrectable) must not allocate in steady state.
func TestCodecFastPathAllocs(t *testing.T) {
	c := MustNew(20, 16)
	d := c.NewDecoder()
	msg := make([]byte, 16)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	cw := make([]byte, 20)
	c.EncodeTo(msg, cw)
	dst := make([]byte, 20)

	clean := append([]byte(nil), cw...)
	twoErr := append([]byte(nil), cw...)
	twoErr[3] ^= 0x55
	twoErr[17] ^= 0xAA
	tooMany := append([]byte(nil), cw...)
	for i := 0; i < 6; i++ {
		tooMany[i] ^= byte(0x11 * (i + 1))
	}
	erasures := []int{2, 9}

	cases := []struct {
		name string
		fn   func()
	}{
		{"EncodeTo", func() { c.EncodeTo(msg, cw) }},
		{"DecodeInto/clean", func() { d.DecodeInto(dst, clean, nil) }},
		{"DecodeInto/two-errors", func() { d.DecodeInto(dst, twoErr, nil) }},
		{"DecodeInto/erasures", func() { d.DecodeInto(dst, twoErr[:20], erasures) }},
		{"DecodeInto/uncorrectable", func() { d.DecodeInto(dst, tooMany, nil) }},
		{"SyndromesInto", func() { c.SyndromesInto(dst[:4], clean) }},
	}
	for _, tc := range cases {
		tc.fn() // warm up
		if n := testing.AllocsPerRun(200, tc.fn); n > 0 {
			t.Errorf("%s allocates %.1f per run, want 0", tc.name, n)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
