// Package rs implements Reed-Solomon codes over GF(2^8) in the two views
// the PAIR architecture needs:
//
//   - Code: the classic BCH view — a systematic encoder driven by a
//     generator polynomial with consecutive roots, and an
//     errors-and-erasures decoder (Berlekamp-Massey + Chien search +
//     Forney algorithm). This is the hot-path codec used by the in-DRAM
//     PAIR decoder and by the DUO rank-level decoder.
//
//   - Expandable: the evaluation (generalized RS) view — a codeword is
//     the evaluation of the message polynomial at n distinct points, so
//     appending evaluations at fresh points *expands* the code from
//     (n,k) to (n+e,k) without modifying any already-stored symbol.
//     This is the "expandability of Reed-Solomon code" the paper's title
//     refers to; see expand.go.
//
// A Code with n-k = 2t parity symbols corrects any combination of nu
// symbol errors and s symbol erasures with 2*nu + s <= 2t. Decoding
// failures are reported via ErrUncorrectable; patterns beyond the
// guarantee may instead *miscorrect* (decode to a different codeword),
// which is exactly the silent-data-corruption behaviour the reliability
// experiments must observe, so it is deliberately not hidden.
package rs

import (
	"errors"
	"fmt"
	"sync"

	"pair/internal/gf256"
)

// ErrUncorrectable is returned when the decoder detects that the received
// word is beyond its correction capability.
var ErrUncorrectable = errors.New("rs: uncorrectable error pattern")

// Code is a systematic Reed-Solomon code over GF(2^8) in the BCH view.
// Codewords are laid out data-first: positions [0,K) hold the message and
// positions [K,N) hold the parity symbols.
type Code struct {
	N   int // codeword length in symbols (<= 255)
	K   int // message length in symbols
	T   int // guaranteed error-correction capability, floor((N-K)/2)
	fcr int // exponent of the first consecutive generator root
	gen gf256.Polynomial

	// Hot-path tables, built once at construction.
	genRev     []byte       // gen[np-1-j]: feedback taps in parity order
	rootRows   []*[256]byte // multiplication row of each syndrome root
	chienStart []byte       // xInv(pos=0)^i for the incremental Chien search
	chienStep  []*[256]byte // multiplication row of alpha^i (Chien stepping)

	// Batch (slab) path: the lazily-built (N-K) x K parity map for
	// EncodeBatch (see batch.go).
	batchOnce   sync.Once
	batchParity [][]byte
}

// New constructs an (n,k) Reed-Solomon code. n must satisfy
// k < n <= 255.
func New(n, k int) (*Code, error) {
	if k <= 0 || n <= k || n > 255 {
		return nil, fmt.Errorf("rs: invalid parameters (n=%d, k=%d): need 0 < k < n <= 255", n, k)
	}
	nparity := n - k
	roots := make([]byte, nparity)
	for j := 0; j < nparity; j++ {
		roots[j] = gf256.Exp(j) // fcr = 0
	}
	c := &Code{
		N:   n,
		K:   k,
		T:   nparity / 2,
		fcr: 0,
		gen: gf256.PolyFromRoots(roots),
	}
	c.genRev = make([]byte, nparity)
	c.rootRows = make([]*[256]byte, nparity)
	for j := 0; j < nparity; j++ {
		c.genRev[j] = c.gen[nparity-1-j]
		c.rootRows[j] = gf256.Row(gf256.Exp(c.fcr + j))
	}
	// Chien search tables: position pos has locator X = alpha^(N-1-pos),
	// so the search evaluates the locator at X^-1 = alpha^(pos-(N-1)).
	// Advancing pos multiplies the argument by alpha, i.e. term i of the
	// Horner-expanded locator by alpha^i.
	c.chienStart = make([]byte, nparity+1)
	c.chienStep = make([]*[256]byte, nparity+1)
	startLog := 255 - (n - 1) // log of xInv at pos=0, in [1,255]
	for i := 0; i <= nparity; i++ {
		c.chienStart[i] = gf256.Exp(startLog * i)
		c.chienStep[i] = gf256.Row(gf256.Exp(i))
	}
	return c, nil
}

// MustNew is New, panicking on error; for statically-known-valid shapes.
func MustNew(n, k int) *Code {
	c, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return c
}

// NumParity returns the number of parity symbols, n-k.
func (c *Code) NumParity() int { return c.N - c.K }

// Encode returns the n-symbol systematic codeword for the k-symbol message.
func (c *Code) Encode(data []byte) []byte {
	cw := make([]byte, c.N)
	c.EncodeTo(data, cw)
	return cw
}

// EncodeTo writes the systematic codeword for data into cw, which must have
// length N. data must have length K. data and cw may overlap at cw[:K].
func (c *Code) EncodeTo(data, cw []byte) {
	if len(data) != c.K {
		panic(fmt.Sprintf("rs: Encode message length %d, want %d", len(data), c.K))
	}
	if len(cw) != c.N {
		panic(fmt.Sprintf("rs: Encode codeword length %d, want %d", len(cw), c.N))
	}
	copy(cw, data)
	parity := cw[c.K:]
	for i := range parity {
		parity[i] = 0
	}
	// LFSR division: parity = (data * x^(n-k)) mod gen.
	// gen is monic of degree n-k; gen[n-k] == 1. The feedback taps are
	// applied through a multiplication table row, one branch-free lookup
	// per tap.
	np := c.N - c.K
	for _, d := range data {
		feedback := d ^ parity[0]
		copy(parity, parity[1:])
		parity[np-1] = 0
		if feedback != 0 {
			row := gf256.Row(feedback)
			for j, g := range c.genRev {
				parity[j] ^= row[g]
			}
		}
	}
}

// Syndromes returns the 2t syndromes of word (length N). All-zero syndromes
// mean the word is a codeword. For the allocation-free variant see
// SyndromesInto.
func (c *Code) Syndromes(word []byte) []byte {
	syn := make([]byte, c.N-c.K)
	c.SyndromesInto(syn, word)
	return syn
}

// IsCodeword reports whether word is a valid codeword.
func (c *Code) IsCodeword(word []byte) bool {
	if len(word) != c.N {
		panic(fmt.Sprintf("rs: Syndromes word length %d, want %d", len(word), c.N))
	}
	for j := 0; j < c.N-c.K; j++ {
		if gf256.EvalDesc(word, gf256.Exp(c.fcr+j)) != 0 {
			return false
		}
	}
	return true
}

// decodeReference is the original allocating decode path, kept verbatim as
// the differential-testing oracle for Decoder.DecodeInto (same algorithm,
// fresh allocations instead of workspace buffers).
func (c *Code) decodeReference(received []byte, erasures []int) ([]byte, int, error) {
	if len(received) != c.N {
		return nil, 0, fmt.Errorf("rs: Decode word length %d, want %d", len(received), c.N)
	}
	np := c.N - c.K
	if len(erasures) > np {
		return nil, 0, ErrUncorrectable
	}
	word := make([]byte, c.N)
	copy(word, received)

	syn := c.Syndromes(word)
	allZero := true
	for _, s := range syn {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero && len(erasures) == 0 {
		return word, 0, nil
	}
	if allZero {
		// Erasure positions were flagged but the word is consistent;
		// nothing to change.
		return word, 0, nil
	}

	// Erasure locator Gamma(x) = prod (1 - X_i x), X_i = alpha^(N-1-pos).
	gamma := gf256.Polynomial{1}
	for _, pos := range erasures {
		if pos < 0 || pos >= c.N {
			return nil, 0, fmt.Errorf("rs: erasure position %d out of range [0,%d)", pos, c.N)
		}
		x := gf256.Exp(c.N - 1 - pos)
		gamma = gf256.PolyMul(gamma, gf256.Polynomial{1, x})
	}

	// Modified syndromes Xi(x) = Gamma(x) * S(x) mod x^2t.
	synPoly := gf256.Polynomial(syn)
	xi := gf256.PolyMul(gamma, synPoly)
	if len(xi) > np {
		xi = xi[:np]
	}

	// Berlekamp-Massey on the modified syndromes for the error locator.
	lambda := berlekampMassey(xi, np, len(erasures))

	// Full locator Psi = Lambda * Gamma.
	psi := gf256.PolyMul(lambda, gamma)
	degPsi := gf256.PolyDegree(psi)
	if degPsi < 0 || degPsi > np {
		return nil, 0, ErrUncorrectable
	}

	// Chien search: find positions whose locator X satisfies Psi(X^-1)=0.
	positions := make([]int, 0, degPsi)
	for pos := 0; pos < c.N; pos++ {
		xInv := gf256.Exp(255 - (c.N - 1 - pos)) // (alpha^(N-1-pos))^-1
		if gf256.PolyEval(psi, xInv) == 0 {
			positions = append(positions, pos)
		}
	}
	if len(positions) != degPsi {
		// Locator degree does not match its root count: detected failure.
		return nil, 0, ErrUncorrectable
	}

	// Forney: Omega(x) = S(x) * Psi(x) mod x^2t;
	// e_pos = X^(1-fcr) * Omega(X^-1) / Psi'(X^-1).
	omega := gf256.PolyMul(synPoly, psi)
	if len(omega) > np {
		omega = omega[:np]
	}
	psiDeriv := gf256.PolyDeriv(psi)

	nchanged := 0
	for _, pos := range positions {
		x := gf256.Exp(c.N - 1 - pos)
		xInv := gf256.Inv(x)
		denom := gf256.PolyEval(psiDeriv, xInv)
		if denom == 0 {
			return nil, 0, ErrUncorrectable
		}
		num := gf256.PolyEval(omega, xInv)
		mag := gf256.Mul(gf256.Pow(x, 1-c.fcr), gf256.Div(num, denom))
		if mag != 0 {
			word[pos] ^= mag
			nchanged++
		}
	}

	// Final consistency check: the corrected word must be a codeword.
	if !c.IsCodeword(word) {
		return nil, 0, ErrUncorrectable
	}
	return word, nchanged, nil
}

// Data extracts the message symbols from a systematic codeword.
func (c *Code) Data(cw []byte) []byte {
	return cw[:c.K]
}

// berlekampMassey finds the minimal LFSR (error-locator polynomial) for the
// given (possibly erasure-modified) syndrome sequence. np is the total
// number of parity symbols; nerasures the count already consumed by the
// erasure locator, which halves the budget left for unknown errors.
func berlekampMassey(syn gf256.Polynomial, np, nerasures int) gf256.Polynomial {
	lambda := gf256.Polynomial{1}
	prev := gf256.Polynomial{1}
	l := 0
	m := 1
	b := byte(1)

	budget := np - nerasures
	for i := 0; i < budget; i++ {
		n := i + nerasures
		// Discrepancy d = syn[n] + sum_{j=1..l} lambda[j]*syn[n-j].
		var d byte
		if n < len(syn) {
			d = syn[n]
		}
		for j := 1; j <= l && j < len(lambda); j++ {
			if n-j >= 0 && n-j < len(syn) {
				d ^= gf256.Mul(lambda[j], syn[n-j])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= i {
			tmp := make(gf256.Polynomial, len(lambda))
			copy(tmp, lambda)
			coef := gf256.Div(d, b)
			shifted := gf256.PolyMulX(gf256.PolyScale(prev, coef), m)
			lambda = gf256.PolyAdd(lambda, shifted)
			l = i + 1 - l
			prev = tmp
			b = d
			m = 1
		} else {
			coef := gf256.Div(d, b)
			shifted := gf256.PolyMulX(gf256.PolyScale(prev, coef), m)
			lambda = gf256.PolyAdd(lambda, shifted)
			m++
		}
	}
	return lambda
}
