// Batch (slab) path for the expandable (GRS evaluation) view — the PAIR
// codes. The dual syndromes S_i = sum_j v_j r_j x_j^i become, on the
// canonical geometric points x_j = alpha^j, a Horner recurrence over
// descending positions with the SAME multiply-by-alpha^i step kernels the
// BCH slab sweep uses: S_i = sum_j (v_j r_j) (alpha^i)^j. The batch sweep
// therefore scales each position's planes by its dual multiplier once
// (one bitsliced constant multiply into a scratch block) and then folds
// the scratch into all n-k accumulators with the straight-line XOR
// chains. Non-geometric point sets keep correctness through a
// per-codeword sweep with the scalar syndrome tables; only the canonical
// points get the bitsliced kernels, and every PAIR operating point uses
// the canonical points.
package rs

import (
	"fmt"
	"math/bits"

	"pair/internal/gf256"
)

// ExpandableBatchWorkspace is the Expandable counterpart of
// BatchWorkspace: scalar fallback decoder, gather buffer, dirty mask,
// the erasure-validation scratch and the scaled-plane block the geometric
// sweep stages into. NOT safe for concurrent use.
type ExpandableBatchWorkspace struct {
	e     *Expandable
	dec   *ExpandableDecoder
	word  []byte
	dirty []uint64
	syn   []byte   // scalar syndrome scratch for the non-geometric sweep
	tl    []uint64 // n plane blocks: position lanes scaled by dualV

	erased    []bool // erasure deduplication, mirroring ExpandableDecoder
	erasedPos []int
}

// NewBatchWorkspace returns a fresh batch workspace for the code. The code
// must have all-nonzero evaluation points (the same restriction as
// NewDecoder).
func (e *Expandable) NewBatchWorkspace() *ExpandableBatchWorkspace {
	n := e.N()
	return &ExpandableBatchWorkspace{
		e:         e,
		dec:       e.NewDecoder(),
		word:      make([]byte, n),
		syn:       make([]byte, n-e.K),
		tl:        make([]uint64, n*8),
		erased:    make([]bool, n),
		erasedPos: make([]int, 0, n),
	}
}

// Code returns the code this workspace serves.
func (ws *ExpandableBatchWorkspace) Code() *Expandable { return ws.e }

// EncodeBatch overwrites the parity positions [K,N) of every codeword in s
// from its data positions [0,K), applying the cached parity-generator
// matrix as bitsliced constant multiplies.
func (ws *ExpandableBatchWorkspace) EncodeBatch(s *Slab) {
	e := ws.e
	if s.n != e.N() {
		panic(fmt.Sprintf("rs: slab codeword length %d, want %d", s.n, e.N()))
	}
	encodeSlab(s, e.K, e.parityGen)
}

// ensureBatchSyndromes lazily detects whether the points are the canonical
// alpha^0, alpha^1, ... sequence, which is what lets the sweep run the
// geometric Horner recurrence.
func (e *Expandable) ensureBatchSyndromes() {
	e.batchSynOnce.Do(func() {
		for j, p := range e.Points {
			if p != gf256.Exp(j) {
				return // non-geometric points: no bitsliced sweep
			}
		}
		e.geometric = true
	})
}

// dirtyMask grows (if needed) and returns the dirty-mask buffer.
func (ws *ExpandableBatchWorkspace) dirtyMask(g int) []uint64 {
	if cap(ws.dirty) < g {
		ws.dirty = make([]uint64, g)
	}
	return ws.dirty[:g]
}

// DecodeBatch corrects every codeword of s in place, with per-codeword
// results defined to be identical to an ExpandableDecoder.DecodeInto loop:
// erasures apply uniformly to every codeword, nchanged[i]/errs[i] report
// codeword i, and on error a codeword's slab contents stay the received
// word. Returns the number of dirty codewords handed to the scalar
// fallback (0 = whole slab clean in one sweep).
func (ws *ExpandableBatchWorkspace) DecodeBatch(s *Slab, erasures []int, nchanged []int, errs []error) int {
	e := ws.e
	n := e.N()
	if s.n != n {
		panic(fmt.Sprintf("rs: slab codeword length %d, want %d", s.n, n))
	}
	if len(nchanged) < s.w || len(errs) < s.w {
		panic(fmt.Sprintf("rs: result buffers length %d/%d, want >= %d", len(nchanged), len(errs), s.w))
	}
	for i := 0; i < s.w; i++ {
		nchanged[i], errs[i] = 0, nil
	}
	if !e.fastOK {
		err := fmt.Errorf("rs: code has a zero evaluation point; use Expandable.Decode")
		for i := 0; i < s.w; i++ {
			errs[i] = err
		}
		return s.w
	}

	// Replicate the scalar decoder's pre-syndrome erasure handling — it
	// validates and deduplicates, then budget-checks, before the clean
	// fast path — so the batch path fails the same way it does.
	for i := range ws.erased {
		ws.erased[i] = false
	}
	erasedPos := ws.erasedPos[:0]
	for _, pos := range erasures {
		if pos < 0 || pos >= n {
			err := fmt.Errorf("rs: erasure position %d out of range [0,%d)", pos, n)
			for i := 0; i < s.w; i++ {
				errs[i] = err
			}
			return s.w
		}
		if !ws.erased[pos] {
			ws.erased[pos] = true
			erasedPos = append(erasedPos, pos)
		}
	}
	ws.erasedPos = erasedPos // keep any growth for reuse
	if n-len(erasedPos) < e.K {
		for i := 0; i < s.w; i++ {
			errs[i] = ErrUncorrectable
		}
		return s.w
	}

	dirty := ws.dirtyMask(s.g)
	if !ws.syndromeSweep(s, dirty) {
		return 0
	}

	ndirty := 0
	for grp, dw := range dirty {
		for dw != 0 {
			cw := grp<<6 + bits.TrailingZeros64(dw)
			dw &= dw - 1
			s.CodewordInto(ws.word, cw)
			nc, err := ws.dec.DecodeInto(ws.word, ws.word, erasures)
			if err != nil {
				errs[cw] = err
			} else if nc > 0 {
				nchanged[cw] = nc
				s.SetCodeword(cw, ws.word)
			}
			ndirty++
		}
	}
	return ndirty
}

// syndromeSweep folds the dual syndromes of every codeword into dirty and
// reports whether any codeword is dirty. On the canonical geometric points
// it is the fused bitsliced sweep; otherwise each codeword is swept with
// the scalar syndrome tables (correct everywhere, word-parallel nowhere).
func (ws *ExpandableBatchWorkspace) syndromeSweep(s *Slab, dirty []uint64) bool {
	e := ws.e
	e.ensureBatchSyndromes()
	if e.geometric {
		return ws.geometricSweep(s, dirty)
	}
	for grp := range dirty {
		dirty[grp] = 0
	}
	var any uint64
	for cw := 0; cw < s.w; cw++ {
		s.CodewordInto(ws.word, cw)
		if !e.syndromesInto(ws.syn, ws.word) {
			d := uint64(1) << (cw & 63)
			dirty[cw>>6] |= d
			any |= d
		}
	}
	return any != 0
}

// geometricSweep runs the bitsliced sweep on canonical points: per
// position j (descending, matching the Horner order of the dual
// syndromes) the position's planes are scaled by v_j into the staging
// block once, then every syndrome accumulator folds the staged block with
// its alpha-power chain.
func (ws *ExpandableBatchWorkspace) geometricSweep(s *Slab, dirty []uint64) bool {
	e := ws.e
	n, np := e.N(), e.N()-e.K
	var any uint64
	for grp := 0; grp < s.g; grp++ {
		// Stage: tl[pos] = dualV[pos] * planes(pos). The chains then walk
		// tl from the last position down (off = (n-1)*8, stride -8).
		for pos := 0; pos < n; pos++ {
			dst := (*gf256.Planes)(ws.tl[pos*8 : pos*8+8])
			*dst = gf256.Planes{}
			gf256.MulXorPlanes(dst, s.planes(pos, grp), e.dualV[pos])
		}
		d := foldChain0(ws.tl, (n-1)*8, -8, n)
		j := 1
		if np > 1 {
			d |= foldChainX(ws.tl, (n-1)*8, -8, n)
			j = 2
		}
		if np > 2 {
			d |= foldChainX2(ws.tl, (n-1)*8, -8, n)
			j = 3
		}
		if np > 3 {
			d |= foldChainX3(ws.tl, (n-1)*8, -8, n)
			j = 4
		}
		for ; j < np; j++ {
			d |= foldChainGen(ws.tl, (n-1)*8, -8, n, gf256.Exp(j))
		}
		dirty[grp] = d
		any |= d
	}
	return any != 0
}
