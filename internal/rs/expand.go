package rs

import (
	"fmt"
	"sync"

	"pair/internal/gf256"
)

// Expandable is a generalized Reed-Solomon code in the evaluation view:
// the k message symbols define (by interpolation) a polynomial f of degree
// < k, and the codeword is (f(p_0), ..., f(p_{n-1})) for n distinct
// evaluation points. The encoding is systematic: the message symbols are
// the evaluations at the first k points.
//
// The crucial property — the one the PAIR paper's title names — is
// expandability: appending evaluations at fresh points turns an (n,k)
// codeword into an (n+e,k) codeword whose first n symbols are bit-for-bit
// the original codeword. A DRAM vendor can therefore store a base code in
// the in-DRAM redundancy region and later raise the correction capability
// (for weak dies, or at a rank-level decoder) by storing only the extra
// symbols, never rewriting the already-programmed array.
type Expandable struct {
	K      int
	Points []byte // n distinct evaluation points
	// parityGen caches the (n-k) x k matrix mapping data symbols to
	// parity symbols (parity_j = sum_i parityGen[j][i] * data_i); it
	// makes systematic encoding a matrix-vector product and gives the
	// decoder a cheap clean-word fast path.
	parityGen [][]byte

	// Syndrome-decoder tables, valid when fastOK. The dual of the GRS
	// code on points x_j (all column multipliers 1) is the GRS code with
	// column multipliers v_j = 1/prod_{m!=j}(x_j - x_m), which gives the
	// parity checks S_i = sum_j v_j r_j x_j^i = 0 for i < n-k. Those
	// syndromes feed the same Berlekamp-Massey/Forney machinery the BCH
	// view uses, replacing the O(n^3) Berlekamp-Welch solve on the hot
	// path. A zero evaluation point cannot appear in the locator product
	// (1 - x_j z), so fastOK requires every point to be nonzero; the
	// canonical DefaultPoints always qualify.
	fastOK    bool
	dualV     []byte       // v_j, the dual column multipliers
	xInv      []byte       // 1/x_j, the candidate locator roots
	pointRows []*[256]byte // multiplication row of x_j
	pool      sync.Pool    // *ExpandableDecoder, backing Decode

	// Batch (slab) path, see expandbatch.go: the fused bitsliced sweep
	// needs the canonical geometric points, detected once.
	batchSynOnce sync.Once
	geometric    bool // points are alpha^0, alpha^1, ...
}

// NewExpandable builds an expandable code with the given message length and
// evaluation points. Points must be distinct and there must be at least k
// of them.
func NewExpandable(k int, points []byte) (*Expandable, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rs: invalid k=%d", k)
	}
	if len(points) < k {
		return nil, fmt.Errorf("rs: %d evaluation points < k=%d", len(points), k)
	}
	if len(points) > 256 {
		return nil, fmt.Errorf("rs: %d evaluation points exceed field size", len(points))
	}
	seen := make(map[byte]bool, len(points))
	for _, p := range points {
		if seen[p] {
			return nil, fmt.Errorf("rs: duplicate evaluation point %#x", p)
		}
		seen[p] = true
	}
	e := &Expandable{K: k, Points: append([]byte(nil), points...)}
	e.buildParityGen()
	e.buildSyndromeTables()
	e.pool.New = func() any { return e.NewDecoder() }
	return e, nil
}

// buildSyndromeTables precomputes the dual column multipliers, inverse
// points, and multiplication rows the syndrome decoder needs. It leaves
// fastOK false when any evaluation point is zero, in which case decoding
// falls back to Berlekamp-Welch.
func (e *Expandable) buildSyndromeTables() {
	n := e.N()
	for _, p := range e.Points {
		if p == 0 {
			return
		}
	}
	e.dualV = make([]byte, n)
	e.xInv = make([]byte, n)
	e.pointRows = make([]*[256]byte, n)
	for j, xj := range e.Points {
		prod := byte(1)
		for m, xm := range e.Points {
			if m != j {
				prod = gf256.Mul(prod, xj^xm)
			}
		}
		e.dualV[j] = gf256.Inv(prod)
		e.xInv[j] = gf256.Inv(xj)
		e.pointRows[j] = gf256.Row(xj)
	}
	e.fastOK = true
}

// buildParityGen derives the parity rows by encoding the k unit messages
// through Lagrange interpolation once at construction time.
func (e *Expandable) buildParityGen() {
	n := e.N()
	e.parityGen = make([][]byte, n-e.K)
	for j := range e.parityGen {
		e.parityGen[j] = make([]byte, e.K)
	}
	msg := make([]byte, e.K)
	for i := 0; i < e.K; i++ {
		msg[i] = 1
		f := gf256.LagrangeInterpolate(e.Points[:e.K], msg)
		for j := 0; j < n-e.K; j++ {
			e.parityGen[j][i] = gf256.PolyEval(f, e.Points[e.K+j])
		}
		msg[i] = 0
	}
}

// DefaultPoints returns the canonical point sequence alpha^0, alpha^1, ...
// (n distinct nonzero points, n <= 255).
func DefaultPoints(n int) []byte {
	if n > 255 {
		panic("rs: more than 255 default points requested")
	}
	pts := make([]byte, n)
	for i := range pts {
		pts[i] = gf256.Exp(i)
	}
	return pts
}

// NewExpandableDefault builds an (n,k) expandable code on the canonical
// points.
func NewExpandableDefault(n, k int) (*Expandable, error) {
	if n <= k {
		return nil, fmt.Errorf("rs: invalid parameters (n=%d, k=%d)", n, k)
	}
	return NewExpandable(k, DefaultPoints(n))
}

// N returns the codeword length.
func (e *Expandable) N() int { return len(e.Points) }

// T returns the guaranteed error-correction capability floor((n-k)/2).
func (e *Expandable) T() int { return (e.N() - e.K) / 2 }

// messagePoly interpolates the degree-<k polynomial through the message at
// the first k points.
func (e *Expandable) messagePoly(data []byte) gf256.Polynomial {
	if len(data) != e.K {
		panic(fmt.Sprintf("rs: message length %d, want %d", len(data), e.K))
	}
	return gf256.LagrangeInterpolate(e.Points[:e.K], data)
}

// Encode returns the n-symbol systematic codeword for the k-symbol
// message, using the cached parity-generator matrix (linearity of the
// code makes parity a matrix-vector product).
func (e *Expandable) Encode(data []byte) []byte {
	if len(data) != e.K {
		panic(fmt.Sprintf("rs: message length %d, want %d", len(data), e.K))
	}
	cw := make([]byte, e.N())
	e.EncodeTo(data, cw)
	return cw
}

// EncodeTo writes the systematic codeword for data into cw (length N)
// without allocating. cw[:K] may alias data.
func (e *Expandable) EncodeTo(data, cw []byte) {
	if len(data) != e.K {
		panic(fmt.Sprintf("rs: message length %d, want %d", len(data), e.K))
	}
	if len(cw) != e.N() {
		panic(fmt.Sprintf("rs: codeword buffer length %d, want %d", len(cw), e.N()))
	}
	copy(cw, data)
	for j, row := range e.parityGen {
		cw[e.K+j] = gf256.DotProduct(row, cw[:e.K])
	}
}

// Expand returns a new code with the extra evaluation points appended.
// Codewords of e are prefixes of codewords of the expanded code.
func (e *Expandable) Expand(extra ...byte) (*Expandable, error) {
	return NewExpandable(e.K, append(append([]byte(nil), e.Points...), extra...))
}

// ExtendCodeword computes the expansion symbols that turn cw (a codeword of
// e) into a codeword of the expanded code `to`, and returns the full
// extended codeword. The first e.N() symbols are returned unchanged — this
// is the defining property of expansion. `to` must have been produced by
// e.Expand (same K, point list extending e's).
func (e *Expandable) ExtendCodeword(cw []byte, to *Expandable) ([]byte, error) {
	if len(cw) != e.N() {
		return nil, fmt.Errorf("rs: codeword length %d, want %d", len(cw), e.N())
	}
	if to.K != e.K || to.N() < e.N() {
		return nil, fmt.Errorf("rs: target code is not an expansion of the source")
	}
	for i, p := range e.Points {
		if to.Points[i] != p {
			return nil, fmt.Errorf("rs: target point %d differs from source", i)
		}
	}
	f := e.messagePoly(cw[:e.K])
	out := make([]byte, to.N())
	copy(out, cw)
	for i := e.N(); i < to.N(); i++ {
		out[i] = gf256.PolyEval(f, to.Points[i])
	}
	return out, nil
}

// Decode corrects errors and erasures in received and returns the
// corrected codeword and the number of symbol positions changed. The
// guarantee is 2*errors + erasures <= n-k; beyond it the decoder returns
// ErrUncorrectable or (rarely) miscorrects, like any bounded-distance
// decoder.
//
// On codes with all-nonzero points it runs the syndrome fast path through
// a pooled workspace (one allocation, for the returned word); otherwise it
// falls back to the Berlekamp-Welch reference. Callers that also own the
// output buffer should use an ExpandableDecoder directly.
func (e *Expandable) Decode(received []byte, erasures []int) ([]byte, int, error) {
	if !e.fastOK {
		return e.decodeBW(received, erasures)
	}
	out := make([]byte, e.N())
	d := e.pool.Get().(*ExpandableDecoder)
	nchanged, err := d.DecodeInto(out, received, erasures)
	e.pool.Put(d)
	if err != nil {
		return nil, 0, err
	}
	return out, nchanged, nil
}

// decodeBW is the Berlekamp-Welch reference decoder: a direct linear
// solve for the error locator and corrected message polynomial. It is
// retained verbatim both as the fallback for codes with a zero evaluation
// point and as the oracle the syndrome fast path is differentially tested
// against.
func (e *Expandable) decodeBW(received []byte, erasures []int) ([]byte, int, error) {
	n := e.N()
	if len(received) != n {
		return nil, 0, fmt.Errorf("rs: Decode word length %d, want %d", len(received), n)
	}
	erased := make(map[int]bool, len(erasures))
	for _, pos := range erasures {
		if pos < 0 || pos >= n {
			return nil, 0, fmt.Errorf("rs: erasure position %d out of range [0,%d)", pos, n)
		}
		erased[pos] = true
	}
	// Puncture the erased coordinates: decode the (n-s, k) code on the
	// surviving points, which corrects floor((n-s-k)/2) errors — the
	// classical 2e+s <= n-k budget.
	xs := make([]byte, 0, n-len(erased))
	ys := make([]byte, 0, n-len(erased))
	for i := 0; i < n; i++ {
		if !erased[i] {
			xs = append(xs, e.Points[i])
			ys = append(ys, received[i])
		}
	}
	if len(xs) < e.K {
		return nil, 0, ErrUncorrectable
	}
	// Fast path: a clean word (no erasures flagged, parity consistent)
	// needs no solver. This is the overwhelmingly common case in the
	// low-error-rate Monte-Carlo campaigns.
	if len(erasures) == 0 {
		clean := true
		for j, row := range e.parityGen {
			if gf256.DotProduct(row, received[:e.K]) != received[e.K+j] {
				clean = false
				break
			}
		}
		if clean {
			out := make([]byte, n)
			copy(out, received)
			return out, 0, nil
		}
	}
	emax := (len(xs) - e.K) / 2

	f, ok := berlekampWelch(xs, ys, e.K, emax)
	if !ok {
		return nil, 0, ErrUncorrectable
	}

	// Rebuild the full codeword from f and count changes on non-erased
	// positions; changes beyond emax mean the solver produced a word
	// outside the decoding radius.
	out := make([]byte, n)
	nchanged := 0
	for i := 0; i < n; i++ {
		v := gf256.PolyEval(f, e.Points[i])
		out[i] = v
		if v != received[i] {
			nchanged++
			if !erased[i] && nchanged > emax+len(erased) {
				return nil, 0, ErrUncorrectable
			}
		}
	}
	// Count errors outside erasures precisely.
	errs := 0
	for i := 0; i < n; i++ {
		if !erased[i] && out[i] != received[i] {
			errs++
		}
	}
	if errs > emax {
		return nil, 0, ErrUncorrectable
	}
	return out, nchanged, nil
}

// Data extracts the message symbols from a systematic codeword.
func (e *Expandable) Data(cw []byte) []byte { return cw[:e.K] }

// berlekampWelch finds the polynomial f of degree < k such that
// f(xs[i]) == ys[i] for all but at most emax positions, if one exists.
//
// It solves for E(x) (monic, degree emax) and Q(x) (degree < k+emax) with
// Q(x_i) = y_i * E(x_i) for all i, then f = Q / E. If at most emax of the
// ys disagree with some degree-<k polynomial, a solution exists and the
// quotient is that polynomial.
func berlekampWelch(xs, ys []byte, k, emax int) (gf256.Polynomial, bool) {
	n := len(xs)
	if emax == 0 {
		// No error budget: interpolate through k points and verify the rest.
		f := gf256.LagrangeInterpolate(xs[:k], ys[:k])
		for i := k; i < n; i++ {
			if gf256.PolyEval(f, xs[i]) != ys[i] {
				return nil, false
			}
		}
		return f, true
	}

	ncols := k + 2*emax // unknowns: q_0..q_{k+emax-1}, e_0..e_{emax-1}
	rows := make([][]byte, n)
	rhs := make([]byte, n)
	for i := 0; i < n; i++ {
		row := make([]byte, ncols)
		// Q coefficients.
		p := byte(1)
		for j := 0; j < k+emax; j++ {
			row[j] = p
			p = gf256.Mul(p, xs[i])
		}
		// E coefficients (excluding the monic leading term).
		p = ys[i]
		for j := 0; j < emax; j++ {
			row[k+emax+j] = p
			p = gf256.Mul(p, xs[i])
		}
		// Move the monic term y_i * x_i^emax to the RHS.
		rows[i] = row
		rhs[i] = gf256.Mul(ys[i], gf256.Pow(xs[i], emax))
	}
	sol, ok := solveAny(rows, rhs)
	if !ok {
		return nil, false
	}
	q := gf256.PolyTrim(gf256.Polynomial(sol[:k+emax]))
	eloc := make(gf256.Polynomial, emax+1)
	copy(eloc, sol[k+emax:])
	eloc[emax] = 1 // monic

	f, rem := gf256.PolyDivMod(q, eloc)
	if gf256.PolyDegree(rem) >= 0 {
		return nil, false
	}
	if gf256.PolyDegree(f) >= k {
		return nil, false
	}
	return f, true
}

// solveAny solves the (possibly overdetermined) linear system rows*x = rhs
// by Gauss-Jordan elimination, assigning zero to free variables. It returns
// ok=false if the system is inconsistent.
func solveAny(rows [][]byte, rhs []byte) ([]byte, bool) {
	n := len(rows)
	if n == 0 {
		return nil, false
	}
	ncols := len(rows[0])
	// Work on copies.
	a := make([][]byte, n)
	for i := range rows {
		a[i] = append([]byte(nil), rows[i]...)
	}
	b := append([]byte(nil), rhs...)

	pivotCol := make([]int, 0, ncols)
	r := 0
	for c := 0; c < ncols && r < n; c++ {
		pivot := -1
		for i := r; i < n; i++ {
			if a[i][c] != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[r], a[pivot] = a[pivot], a[r]
		b[r], b[pivot] = b[pivot], b[r]
		inv := gf256.Inv(a[r][c])
		for j := c; j < ncols; j++ {
			a[r][j] = gf256.Mul(a[r][j], inv)
		}
		b[r] = gf256.Mul(b[r], inv)
		for i := 0; i < n; i++ {
			if i == r || a[i][c] == 0 {
				continue
			}
			factor := a[i][c]
			for j := c; j < ncols; j++ {
				a[i][j] ^= gf256.Mul(factor, a[r][j])
			}
			b[i] ^= gf256.Mul(factor, b[r])
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	// Consistency: remaining rows must have zero RHS.
	for i := r; i < n; i++ {
		if b[i] != 0 {
			return nil, false
		}
	}
	x := make([]byte, ncols)
	for i, c := range pivotCol {
		x[c] = b[i]
	}
	return x, true
}
