package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// padW rounds a codeword count up to the slab-width multiple.
func padW(n int) int { return (n + 7) &^ 7 }

// loadSlab builds a slab holding the received words (zero-padded tail).
func loadSlab(n int, rxs [][]byte) *Slab {
	s := NewSlab(n, padW(len(rxs)))
	for i, rx := range rxs {
		s.SetCodeword(i, rx)
	}
	s.ZeroTail(len(rxs))
	return s
}

// checkBatchAgainstScalar asserts DecodeBatch is extensionally equal to a
// per-codeword DecodeInto loop on the same received words and erasures.
func checkBatchAgainstScalar(t *testing.T, c *Code, ws *BatchWorkspace, rxs [][]byte, erasures []int) {
	t.Helper()
	s := loadSlab(c.N, rxs)
	nchanged := make([]int, s.W())
	errs := make([]error, s.W())
	ws.DecodeBatch(s, erasures, nchanged, errs)

	dec := c.NewDecoder()
	got := make([]byte, c.N)
	want := make([]byte, c.N)
	for i, rx := range rxs {
		s.CodewordInto(got, i)
		wantN, wantErr := dec.DecodeInto(want, rx, erasures)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("codeword %d: batch err %v, scalar err %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			if errs[i].Error() != wantErr.Error() {
				t.Fatalf("codeword %d: batch err %q, scalar err %q", i, errs[i], wantErr)
			}
			if !bytes.Equal(got, rx) {
				t.Fatalf("codeword %d: slab modified on error", i)
			}
			continue
		}
		if nchanged[i] != wantN {
			t.Fatalf("codeword %d: batch nchanged %d, scalar %d", i, nchanged[i], wantN)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("codeword %d: batch %x, scalar %x", i, got, want)
		}
	}
	// Padding codewords are zero words: they must behave exactly like a
	// scalar decode of the zero word (clean for any valid erasure list,
	// failing the same way for invalid ones) and must stay zero.
	zero := make([]byte, c.N)
	wantN, wantErr := dec.DecodeInto(want, zero, erasures)
	for i := len(rxs); i < s.W(); i++ {
		if (errs[i] == nil) != (wantErr == nil) || nchanged[i] != wantN {
			t.Fatalf("padding codeword %d: n=%d err=%v, scalar n=%d err=%v",
				i, nchanged[i], errs[i], wantN, wantErr)
		}
		s.CodewordInto(got, i)
		for _, v := range got {
			if v != 0 {
				t.Fatalf("padding codeword %d not zero: %x", i, got)
			}
		}
	}
}

// corruptedBatch builds a mixed bag of received words for the code: clean,
// 1-error, t-error, beyond-bound and burst patterns, deterministic per seed.
func corruptedBatch(rng *rand.Rand, encode func([]byte) []byte, n, k, count int) [][]byte {
	rxs := make([][]byte, count)
	for i := range rxs {
		msg := make([]byte, k)
		rng.Read(msg)
		rx := encode(msg)
		nerr := rng.Intn(n - k + 2) // 0 .. np+1: clean through beyond-bound
		for e := 0; e < nerr; e++ {
			rx[rng.Intn(n)] ^= byte(1 + rng.Intn(255))
		}
		rxs[i] = rx
	}
	return rxs
}

func TestDecodeBatchMatchesScalar(t *testing.T) {
	shapes := []struct{ n, k int }{{20, 16}, {18, 16}, {81, 64}, {15, 11}}
	for _, sh := range shapes {
		c := MustNew(sh.n, sh.k)
		ws := c.NewBatchWorkspace()
		rng := rand.New(rand.NewSource(int64(sh.n)))
		// Width 9 forces tail padding; width 16 exercises multiple lanes.
		for _, count := range []int{9, 16} {
			rxs := corruptedBatch(rng, c.Encode, sh.n, sh.k, count)
			checkBatchAgainstScalar(t, c, ws, rxs, nil)
			checkBatchAgainstScalar(t, c, ws, rxs, []int{0})
			checkBatchAgainstScalar(t, c, ws, rxs, []int{3, sh.n - 1})
			// Over-budget and out-of-range erasure lists must fail the
			// whole slab the way the scalar decoder fails each word.
			over := make([]int, sh.n-sh.k+1)
			for i := range over {
				over[i] = i
			}
			checkBatchAgainstScalar(t, c, ws, rxs, over)
			checkBatchAgainstScalar(t, c, ws, rxs, []int{-1})
			checkBatchAgainstScalar(t, c, ws, rxs, []int{sh.n})
		}
	}
}

func TestDecodeBatchCleanSlab(t *testing.T) {
	c := MustNew(20, 16)
	ws := c.NewBatchWorkspace()
	rng := rand.New(rand.NewSource(5))
	rxs := make([][]byte, 64)
	for i := range rxs {
		msg := make([]byte, 16)
		rng.Read(msg)
		rxs[i] = c.Encode(msg)
	}
	s := loadSlab(c.N, rxs)
	nchanged := make([]int, s.W())
	errs := make([]error, s.W())
	if ndirty := ws.DecodeBatch(s, nil, nchanged, errs); ndirty != 0 {
		t.Fatalf("clean slab reported %d dirty codewords", ndirty)
	}
	got := make([]byte, c.N)
	for i, rx := range rxs {
		s.CodewordInto(got, i)
		if !bytes.Equal(got, rx) {
			t.Fatalf("clean codeword %d modified", i)
		}
	}
}

func TestDecodeBatchZeroAllocSteadyState(t *testing.T) {
	c := MustNew(20, 16)
	ws := c.NewBatchWorkspace()
	rng := rand.New(rand.NewSource(9))
	rxs := corruptedBatch(rng, c.Encode, 20, 16, 32)
	s := loadSlab(c.N, rxs)
	nchanged := make([]int, s.W())
	errs := make([]error, s.W())
	ws.DecodeBatch(s, nil, nchanged, errs) // warm up (dirty mask growth)
	allocs := testing.AllocsPerRun(100, func() {
		ws.DecodeBatch(s, nil, nchanged, errs)
	})
	if allocs != 0 {
		t.Fatalf("DecodeBatch allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestEncodeBatchMatchesScalar(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{20, 16}, {18, 16}, {81, 64}} {
		c := MustNew(sh.n, sh.k)
		ws := c.NewBatchWorkspace()
		rng := rand.New(rand.NewSource(int64(sh.k)))
		const count = 11
		s := NewSlab(sh.n, padW(count))
		msgs := make([][]byte, count)
		for i := range msgs {
			msgs[i] = make([]byte, sh.k)
			rng.Read(msgs[i])
			s.SetData(i, msgs[i])
		}
		s.ZeroTail(count)
		ws.EncodeBatch(s)
		got := make([]byte, sh.n)
		for i, msg := range msgs {
			s.CodewordInto(got, i)
			if want := c.Encode(msg); !bytes.Equal(got, want) {
				t.Fatalf("(%d,%d) codeword %d: batch %x, scalar %x", sh.n, sh.k, i, got, want)
			}
		}
	}
}

func TestEncodeBatchZeroAllocSteadyState(t *testing.T) {
	c := MustNew(20, 16)
	ws := c.NewBatchWorkspace()
	s := NewSlab(c.N, 64)
	rng := rand.New(rand.NewSource(3))
	msg := make([]byte, 16)
	for i := 0; i < 64; i++ {
		rng.Read(msg)
		s.SetData(i, msg)
	}
	ws.EncodeBatch(s) // warm up (parity tables)
	allocs := testing.AllocsPerRun(100, func() {
		ws.EncodeBatch(s)
	})
	if allocs != 0 {
		t.Fatalf("EncodeBatch allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestSlabAccessors(t *testing.T) {
	s := NewSlab(5, 16)
	word := []byte{1, 2, 3, 4, 5}
	s.SetCodeword(9, word)
	for pos, v := range word {
		if got := s.At(9, pos); got != v {
			t.Fatalf("At(9,%d) = %d, want %d", pos, got, v)
		}
	}
	s.Set(9, 2, 0xAA)
	got := make([]byte, 5)
	s.CodewordInto(got, 9)
	if want := []byte{1, 2, 0xAA, 4, 5}; !bytes.Equal(got, want) {
		t.Fatalf("CodewordInto = %v, want %v", got, want)
	}
	// Neighbours must be untouched.
	for _, cw := range []int{8, 10} {
		s.CodewordInto(got, cw)
		for pos, v := range got {
			if v != 0 {
				t.Fatalf("codeword %d position %d contaminated: %d", cw, pos, v)
			}
		}
	}
	// ZeroTail clears exactly the tail.
	s.SetCodeword(3, word)
	s.SetCodeword(11, word)
	s.ZeroTail(9)
	s.CodewordInto(got, 3)
	if !bytes.Equal(got, word) {
		t.Fatalf("ZeroTail(9) clobbered codeword 3: %v", got)
	}
	for _, cw := range []int{9, 11, 15} {
		s.CodewordInto(got, cw)
		for _, v := range got {
			if v != 0 {
				t.Fatalf("ZeroTail(9) left codeword %d dirty: %v", cw, got)
			}
		}
	}
}

func FuzzDecodeBatch(f *testing.F) {
	c := MustNew(20, 16)
	f.Add([]byte{0}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 40), uint8(20))
	f.Fuzz(func(t *testing.T, corrupt []byte, epos uint8) {
		const count = 8
		rng := rand.New(rand.NewSource(42))
		rxs := make([][]byte, count)
		for i := range rxs {
			msg := make([]byte, 16)
			rng.Read(msg)
			rxs[i] = c.Encode(msg)
		}
		// Apply the fuzzed corruption as (codeword, position, xor) triples.
		for i := 0; i+2 < len(corrupt); i += 3 {
			rxs[int(corrupt[i])%count][int(corrupt[i+1])%c.N] ^= corrupt[i+2]
		}
		var erasures []int
		if epos > 0 {
			erasures = []int{int(epos) % c.N}
		}
		ws := c.NewBatchWorkspace()
		checkBatchAgainstScalar(t, c, ws, rxs, erasures)
	})
}
