package rs

import (
	"bytes"
	"testing"
)

// FuzzDecodeBCH feeds arbitrary 20-byte words to the BCH-view decoder:
// it must never panic, and anything it accepts must be a valid codeword.
func FuzzDecodeBCH(f *testing.F) {
	c := MustNew(20, 16)
	f.Add(make([]byte, 20), 0)
	f.Add(bytes.Repeat([]byte{0xFF}, 20), 3)
	cw := c.Encode([]byte("sixteen byte msg"))
	f.Add(cw, 1)
	f.Fuzz(func(t *testing.T, word []byte, erasure int) {
		if len(word) != 20 {
			t.Skip()
		}
		var erasures []int
		if erasure >= 0 && erasure < 20 {
			erasures = []int{erasure}
		}
		out, _, err := decodeAlloc(c, word, erasures)
		if err != nil {
			return
		}
		if !c.IsCodeword(out) {
			t.Fatalf("decoder accepted non-codeword for input %x", word)
		}
		// Bounded-distance property: the accepted codeword differs from
		// the input in at most n-k symbols (errors+erasure corrections).
		diff := 0
		for i := range out {
			if out[i] != word[i] {
				diff++
			}
		}
		if diff > c.N-c.K {
			t.Fatalf("decoder changed %d symbols (> %d) for input %x", diff, c.N-c.K, word)
		}
	})
}

// FuzzDecodeExpandable does the same for the evaluation-view decoder.
func FuzzDecodeExpandable(f *testing.F) {
	e, _ := NewExpandableDefault(20, 16)
	f.Add(make([]byte, 20))
	f.Add(bytes.Repeat([]byte{0xA5}, 20))
	f.Add(e.Encode([]byte("sixteen byte msg")))
	f.Fuzz(func(t *testing.T, word []byte) {
		if len(word) != 20 {
			t.Skip()
		}
		out, _, err := e.Decode(word, nil)
		if err != nil {
			return
		}
		// Accepted output must be self-consistent: re-encoding its data
		// symbols reproduces it.
		if !bytes.Equal(e.Encode(out[:16]), out) {
			t.Fatalf("evaluation decoder accepted non-codeword for input %x", word)
		}
	})
}

// FuzzDecodeIntoDifferential feeds arbitrary words and erasure lists to
// both workspace decoders and requires bit-identical behaviour with their
// allocating references — the BCH reference implementation and the
// Berlekamp-Welch solver respectively.
func FuzzDecodeIntoDifferential(f *testing.F) {
	c := MustNew(20, 16)
	e, _ := NewExpandableDefault(20, 16)
	cd := c.NewDecoder()
	ed := e.NewDecoder()
	dst := make([]byte, 20)
	f.Add(make([]byte, 20), []byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 20), []byte{0, 0, 19})
	f.Add(c.Encode([]byte("sixteen byte msg")), []byte{5, 200})
	f.Fuzz(func(t *testing.T, word []byte, rawErasures []byte) {
		if len(word) != 20 || len(rawErasures) > 8 {
			t.Skip()
		}
		erasures := make([]int, len(rawErasures))
		for i, b := range rawErasures {
			// Mostly-valid positions with occasional out-of-range values,
			// so the validation paths stay covered too.
			erasures[i] = int(b) - 2
		}

		wantWord, wantN, wantErr := c.decodeReference(word, erasures)
		gotN, gotErr := cd.DecodeInto(dst, word, erasures)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("bch err mismatch: got %v want %v", gotErr, wantErr)
		}
		if wantErr == nil && (gotN != wantN || !bytes.Equal(dst, wantWord)) {
			t.Fatalf("bch result mismatch for %x erasures %v", word, erasures)
		}

		wantWord, wantN, wantErr = e.decodeBW(word, erasures)
		gotN, gotErr = ed.DecodeInto(dst, word, erasures)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("grs err mismatch: got %v want %v", gotErr, wantErr)
		}
		if wantErr == nil && (gotN != wantN || !bytes.Equal(dst, wantWord)) {
			t.Fatalf("grs result mismatch for %x erasures %v", word, erasures)
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks that every message round-trips through
// both codecs under up-to-t corruption at fuzzer-chosen positions.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	bch := MustNew(20, 16)
	ev, _ := NewExpandableDefault(20, 16)
	f.Add([]byte("0123456789abcdef"), uint8(3), uint8(17), byte(0x55), byte(0xAA))
	f.Fuzz(func(t *testing.T, msg []byte, p1, p2 uint8, v1, v2 byte) {
		if len(msg) != 16 {
			t.Skip()
		}
		pos1, pos2 := int(p1)%20, int(p2)%20
		for _, c := range []struct {
			enc func([]byte) []byte
			dec func([]byte) ([]byte, int, error)
		}{
			{bch.Encode, func(w []byte) ([]byte, int, error) { return decodeAlloc(bch, w, nil) }},
			{ev.Encode, func(w []byte) ([]byte, int, error) { return ev.Decode(w, nil) }},
		} {
			cw := c.enc(msg)
			rx := append([]byte(nil), cw...)
			rx[pos1] ^= v1
			rx[pos2] ^= v2
			// At most two corrupted symbols: always within t=2.
			out, _, err := c.dec(rx)
			if err != nil {
				t.Fatalf("within-budget pattern rejected (pos %d,%d vals %x,%x)", pos1, pos2, v1, v2)
			}
			if !bytes.Equal(out, cw) {
				t.Fatalf("within-budget pattern miscorrected")
			}
		}
	})
}
