package ecc

import (
	"math/rand"
	"testing"

	"pair/internal/dram"
	"pair/internal/faults"
)

func TestFlipStoredIndexesEveryBit(t *testing.T) {
	// Flipping every index exactly once must flip every stored bit
	// exactly once: re-flipping all of them restores the image.
	s := NewIECC(dram.DDR4x16())
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i)
	}
	st := s.Encode(line)
	ref := st.Clone()
	total := st.TotalBits()
	for idx := 0; idx < total; idx++ {
		FlipStored(st, idx)
	}
	// Everything flipped once: no chip image may equal the original.
	for i := range st.Chips {
		if st.Chips[i].Data.Equal(ref.Chips[i].Data) {
			t.Fatal("data region untouched by full flip sweep")
		}
	}
	for idx := 0; idx < total; idx++ {
		FlipStored(st, idx)
	}
	for i := range st.Chips {
		if !st.Chips[i].Data.Equal(ref.Chips[i].Data) || !st.Chips[i].OnDie.Equal(ref.Chips[i].OnDie) {
			t.Fatal("double flip sweep did not restore the image")
		}
	}
}

func TestFlipStoredOutOfRangePanics(t *testing.T) {
	s := NewIECC(dram.DDR4x16())
	st := s.Encode(make([]byte, 64))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	FlipStored(st, st.TotalBits())
}

func TestFlipStoredCoversXferRegion(t *testing.T) {
	// DUO stores transferred redundancy; high indices must reach it.
	s := NewDUO(dram.DDR4x16())
	st := s.Encode(make([]byte, 64))
	ref := st.Clone()
	// Chip 0's image: 128 data + 16 xfer bits; flip index 128 (first
	// xfer bit).
	FlipStored(st, 128)
	if !st.Chips[0].Data.Equal(ref.Chips[0].Data) {
		t.Fatal("index 128 hit the data region")
	}
	if st.Chips[0].Xfer.Equal(ref.Chips[0].Xfer) {
		t.Fatal("index 128 did not hit the xfer region")
	}
}

func TestFlipRandomStoredBitsExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewIECC(dram.DDR4x16())
	for _, k := range []int{1, 2, 5, 16, 100} {
		st := s.Encode(make([]byte, 64))
		FlipRandomStoredBits(rng, st, k)
		flips := 0
		for _, ci := range st.Chips {
			flips += ci.Data.PopCount() + ci.OnDie.PopCount()
		}
		// Encoding the zero line gives an all-zero image (linear codes),
		// so popcount == distinct flips.
		if flips != k {
			t.Fatalf("k=%d: %d bits flipped", k, flips)
		}
	}
	// Saturation beyond the image size.
	st := s.Encode(make([]byte, 64))
	FlipRandomStoredBits(rng, st, 10000)
	flips := 0
	for _, ci := range st.Chips {
		flips += ci.Data.PopCount() + ci.OnDie.PopCount()
	}
	if flips != st.TotalBits() {
		t.Fatalf("saturated flip count %d != %d", flips, st.TotalBits())
	}
}

func TestFlipRandomStoredBitsUniformish(t *testing.T) {
	// Single flips must land in the on-die region roughly in proportion
	// to its share of the stored bits (16/544 for IECC... 8/136).
	rng := rand.New(rand.NewSource(2))
	s := NewIECC(dram.DDR4x16())
	onDie := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		st := s.Encode(make([]byte, 64))
		FlipRandomStoredBits(rng, st, 1)
		for _, ci := range st.Chips {
			if ci.OnDie.PopCount() > 0 {
				onDie++
			}
		}
	}
	share := float64(onDie) / trials
	want := 32.0 / 544.0
	if share < want*0.8 || share > want*1.2 {
		t.Fatalf("on-die share %v, want ~%v", share, want)
	}
}

func TestInjectAccessFaultAllKindsAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kinds := []faults.Kind{
		faults.InherentCell, faults.TransientBit, faults.PermanentCell,
		faults.PermanentColumn, faults.PermanentPin, faults.PermanentWord,
		faults.PermanentRow, faults.PermanentBank,
	}
	for _, s := range schemesUnderTest() {
		for _, k := range kinds {
			st := s.Encode(make([]byte, s.Org().LineBytes()))
			InjectAccessFault(rng, st, k, -1)
			flips := 0
			for _, ci := range st.Chips {
				flips += ci.Data.PopCount()
				if ci.OnDie != nil {
					flips += ci.OnDie.PopCount()
				}
				if ci.Xfer != nil {
					flips += ci.Xfer.PopCount()
				}
			}
			if flips == 0 {
				t.Fatalf("%s/%v: injection flipped nothing", s.Name(), k)
			}
		}
	}
}

func TestApplyDeviceFaultDeterministicLane(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewIECC(dram.DDR4x16())
	f := faults.Fault{Kind: faults.PermanentCell, Chip: 1, Lane: 37}
	st := s.Encode(make([]byte, 64))
	ApplyDeviceFault(rng, st, f)
	if st.Chips[1].Data.PopCount() != 1 {
		t.Fatal("cell fault flipped more than one bit")
	}
	ApplyDeviceFault(rng, st, f)
	if st.Chips[1].Data.PopCount() != 0 {
		t.Fatal("cell fault lane not deterministic")
	}
}

func TestApplyDeviceFaultBadChipPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewIECC(dram.DDR4x16())
	st := s.Encode(make([]byte, 64))
	defer func() {
		if recover() == nil {
			t.Fatal("bad chip index did not panic")
		}
	}()
	ApplyDeviceFault(rng, st, faults.Fault{Kind: faults.PermanentCell, Chip: 99})
}
