package ecc

import (
	"fmt"
	"math/rand"

	"pair/internal/dram"
	"pair/internal/faults"
)

// InjectInherent flips every stored bit of the image — data, on-die
// redundancy and transferred redundancy alike, since all are DRAM cells —
// independently with probability ber. Returns the number of bits flipped.
func InjectInherent(rng *rand.Rand, st *Stored, ber float64) int {
	if ber <= 0 {
		return 0
	}
	n := 0
	for _, ci := range st.Chips {
		if ci.Data != nil {
			n += faults.InjectInherent(rng, ci.Data, ber)
		}
		if ci.OnDie != nil {
			for i := 0; i < ci.OnDie.Len(); i++ {
				if rng.Float64() < ber {
					ci.OnDie.Flip(i)
					n++
				}
			}
		}
		if ci.Xfer != nil {
			n += faults.InjectInherent(rng, ci.Xfer, ber)
		}
	}
	return n
}

// InjectAccessFault applies the per-access pattern of the given fault kind
// to chip `chip` of the image (pass a negative chip to pick one at
// random). It models what one fault does to one access: array faults
// (cell/word/column/row/bank) corrupt stored bits including the chip's
// on-die redundancy region where appropriate; pin faults corrupt only what
// crosses the pin.
func InjectAccessFault(rng *rand.Rand, st *Stored, kind faults.Kind, chip int) {
	if chip < 0 {
		chip = rng.Intn(len(st.Chips))
	}
	ci := st.Chips[chip]
	switch kind {
	case faults.InherentCell, faults.TransientBit, faults.PermanentCell:
		flipStoredBit(rng, ci)
	case faults.PermanentColumn:
		// Bitline fault: one fixed lane of the access.
		faults.InjectLane(rng, ci.Data)
	case faults.PermanentPin:
		injectPinFault(rng, ci, rng.Intn(ci.Data.Pins))
	case faults.PermanentLocalWordline:
		faults.InjectLocalWordline(rng, ci.Data)
	case faults.PermanentWord, faults.PermanentRow, faults.PermanentBank:
		corruptArray(rng, ci)
	default:
		panic(fmt.Sprintf("ecc: cannot inject access fault of kind %v", kind))
	}
}

// ApplyDeviceFault applies the per-access pattern of a device-level fault
// to the chip image it belongs to. The access is assumed to lie inside the
// fault's footprint. Structural faults (cell, column lane, pin) hit
// deterministic positions derived from the fault's Lane; array faults
// randomize the chip's stored bits.
func ApplyDeviceFault(rng *rand.Rand, st *Stored, f faults.Fault) {
	if f.Chip < 0 || f.Chip >= len(st.Chips) {
		panic(fmt.Sprintf("ecc: device fault chip %d outside image with %d chips", f.Chip, len(st.Chips)))
	}
	ci := st.Chips[f.Chip]
	switch f.Kind {
	case faults.InherentCell, faults.TransientBit, faults.PermanentCell, faults.PermanentColumn:
		d := ci.Data
		d.Flip(f.Lane%d.Pins, (f.Lane/d.Pins)%d.Beats)
	case faults.PermanentPin:
		injectPinFault(rng, ci, f.Lane%ci.Data.Pins)
	case faults.PermanentLocalWordline:
		faults.ApplyLocalWordline(rng, ci.Data, f.Lane)
	case faults.PermanentWord, faults.PermanentRow, faults.PermanentBank:
		corruptArray(rng, ci)
	default:
		panic(fmt.Sprintf("ecc: cannot apply device fault of kind %v", f.Kind))
	}
}

// FlipStored flips the stored bit with global index idx, where indices run
// over chips in order and, within a chip, over Data, OnDie, Xfer. It is
// the primitive the semi-analytic BER sweep uses to place exactly k
// distinct weak cells.
func FlipStored(st *Stored, idx int) {
	for _, ci := range st.Chips {
		n := ci.TotalBits()
		if idx < n {
			flipChipBit(ci, idx)
			return
		}
		idx -= n
	}
	panic(fmt.Sprintf("ecc: stored bit index %d out of range", idx))
}

// FlipRandomStoredBits flips exactly k distinct uniformly random stored
// bits across the whole image.
func FlipRandomStoredBits(rng *rand.Rand, st *Stored, k int) {
	total := st.TotalBits()
	if k > total {
		k = total
	}
	// Floyd's sampling of k distinct indices.
	chosen := make(map[int]bool, k)
	for j := total - k; j < total; j++ {
		v := rng.Intn(j + 1)
		if chosen[v] {
			v = j
		}
		chosen[v] = true
	}
	for idx := range chosen {
		FlipStored(st, idx)
	}
}

func flipChipBit(ci *ChipImage, idx int) {
	if ci.Data != nil {
		n := ci.Data.Pins * ci.Data.Beats
		if idx < n {
			ci.Data.Flip(idx%ci.Data.Pins, idx/ci.Data.Pins)
			return
		}
		idx -= n
	}
	if ci.OnDie != nil {
		if idx < ci.OnDie.Len() {
			ci.OnDie.Flip(idx)
			return
		}
		idx -= ci.OnDie.Len()
	}
	ci.Xfer.Flip(idx%ci.Xfer.Pins, idx/ci.Xfer.Pins)
}

// flipStoredBit flips one uniformly random stored bit of the chip image —
// data or redundancy, weighted by region size, because weak cells do not
// care which logical region they sit in.
func flipStoredBit(rng *rand.Rand, ci *ChipImage) {
	idx := rng.Intn(ci.TotalBits())
	if ci.Data != nil {
		n := ci.Data.Pins * ci.Data.Beats
		if idx < n {
			ci.Data.Flip(idx%ci.Data.Pins, idx/ci.Data.Pins)
			return
		}
		idx -= n
	}
	if ci.OnDie != nil {
		if idx < ci.OnDie.Len() {
			ci.OnDie.Flip(idx)
			return
		}
		idx -= ci.OnDie.Len()
	}
	ci.Xfer.Flip(idx%ci.Xfer.Pins, idx/ci.Xfer.Pins)
}

// injectPinFault corrupts the given pin's lane in everything that crosses
// the pins: the data burst and any transferred redundancy beats. The
// on-die region is untouched — it never leaves the die.
func injectPinFault(rng *rand.Rand, ci *ChipImage, pin int) {
	n := 0
	for n == 0 {
		for beat := 0; beat < ci.Data.Beats; beat++ {
			if rng.Intn(2) == 1 {
				ci.Data.Flip(pin, beat)
				n++
			}
		}
		if ci.Xfer != nil && pin < ci.Xfer.Pins {
			for beat := 0; beat < ci.Xfer.Beats; beat++ {
				if rng.Intn(2) == 1 {
					ci.Xfer.Flip(pin, beat)
					n++
				}
			}
		}
	}
}

// corruptArray randomizes the whole chip image (each bit flips with
// probability 1/2, at least one flip) — the per-access signature of word,
// row and bank faults, which garble everything the affected array region
// holds, redundancy included.
func corruptArray(rng *rand.Rand, ci *ChipImage) {
	n := 0
	for n == 0 {
		n += randomize(rng, ci.Data)
		if ci.OnDie != nil {
			for i := 0; i < ci.OnDie.Len(); i++ {
				if rng.Intn(2) == 1 {
					ci.OnDie.Flip(i)
					n++
				}
			}
		}
		if ci.Xfer != nil {
			n += randomize(rng, ci.Xfer)
		}
	}
}

func randomize(rng *rand.Rand, b *dram.Burst) int {
	n := 0
	for pin := 0; pin < b.Pins; pin++ {
		for beat := 0; beat < b.Beats; beat++ {
			if rng.Intn(2) == 1 {
				b.Flip(pin, beat)
				n++
			}
		}
	}
	return n
}
