package ecc

import (
	"math/rand"

	"pair/internal/faults"
)

// ScenarioInjector adapts a registered fault scenario to the injector
// signature the reliability campaigns use, exposing each chip's three
// storage regions (data, on-die redundancy, transferred redundancy) to
// the scenario so interface faults and array faults reach exactly what
// their physics allows. The returned closure holds no mutable state, so
// one injector is safe for concurrent use across campaign shard workers
// — the same contract as every other campaign injector.
func ScenarioInjector(sc faults.Scenario) func(*rand.Rand, *Stored) {
	return func(rng *rand.Rand, st *Stored) {
		access := make([]faults.ChipAccess, len(st.Chips))
		for i, ci := range st.Chips {
			access[i] = faults.ChipAccess{Data: ci.Data, OnDie: ci.OnDie, Xfer: ci.Xfer}
		}
		sc.Inject(rng, access)
	}
}
