package ecc

import (
	"pair/internal/dram"
	"pair/internal/rs"
)

// DUO models the "Dual Use of On-chip redundancy" idea (Gong et al.,
// HPCA 2018) adapted to the commodity x16 context of the PAIR study
// (reconstruction note: original DUO targets x4 ECC DIMMs; the PAIR
// comparison gives the DUO *technique* — forward the on-die redundancy to
// the controller over extension beats and decode a longer Reed-Solomon
// code there — the same storage budget as PAIR, so the contrast isolates
// symbol alignment, which is the paper's point).
//
// Mechanics per chip access:
//
//   - The 128 data bits form 16 byte symbols in *beat-aligned* order:
//     symbol (beat, group) is the byte on pins [8g, 8g+8) during beat b.
//     That is how data arrives at the controller, so it is the natural —
//     and in the paper's analysis, the fatally naive — symbolization.
//   - Two parity symbols (the chip's 16 redundancy bits) are transferred
//     on a ninth burst beat (BL8 -> BL9, DUO's burst-extension trick)
//     and the controller decodes RS(18,16), t=1, per chip access.
//
// Consequence: a DQ-pin fault touches one bit of its byte group in every
// beat — up to nine symbols — and overwhelms the decoder, while PAIR's
// pin-aligned symbols confine the same physical event to one symbol.
type DUO struct {
	org  dram.Organization
	code *rs.Code
}

// NewDUO returns the DUO scheme on the given organization (pins must be a
// multiple of 8 so beat-aligned byte symbols exist).
func NewDUO(org dram.Organization) *DUO {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	if org.Pins%8 != 0 {
		panic("ecc: DUO requires a multiple of 8 pins for byte symbols")
	}
	k := org.AccessBits() / 8
	return &DUO{org: org, code: rs.MustNew(k+2, k)}
}

// Name implements Scheme.
func (s *DUO) Name() string { return "duo" }

// Org implements Scheme.
func (s *DUO) Org() dram.Organization { return s.org }

// groups returns the number of byte groups per beat.
func (s *DUO) groups() int { return s.org.Pins / 8 }

// chipSymbols extracts the beat-aligned data symbols of a chip access.
func (s *DUO) chipSymbols(b *dram.Burst) []byte {
	syms := make([]byte, s.code.K)
	g := s.groups()
	for beat := 0; beat < s.org.BurstLen; beat++ {
		for grp := 0; grp < g; grp++ {
			syms[beat*g+grp] = b.BeatByte(beat, grp)
		}
	}
	return syms
}

// Encode implements Scheme.
func (s *DUO) Encode(line []byte) *Stored {
	bursts := dram.SplitLine(s.org, line)
	st := &Stored{Org: s.org, Chips: make([]*ChipImage, len(bursts))}
	for i, b := range bursts {
		cw := s.code.Encode(s.chipSymbols(b))
		// The two parity symbols travel on the extension beat.
		xfer := dram.NewBurst(s.org.Pins, 1)
		for p := 0; p < 2; p++ {
			xfer.SetBeatByte(0, p, cw[s.code.K+p])
		}
		st.Chips[i] = &ChipImage{Data: b, Xfer: xfer}
	}
	return st
}

// Decode implements Scheme: the controller decodes RS(18,16) per chip.
func (s *DUO) Decode(st *Stored) ([]byte, Claim) {
	claim := ClaimClean
	bursts := make([]*dram.Burst, len(st.Chips))
	g := s.groups()
	for i, ci := range st.Chips {
		word := make([]byte, s.code.N)
		copy(word, s.chipSymbols(ci.Data))
		for p := 0; p < 2; p++ {
			word[s.code.K+p] = ci.Xfer.BeatByte(0, p)
		}
		corrected, nerr, err := s.code.Decode(word, nil)
		b := dram.NewBurst(s.org.Pins, s.org.BurstLen)
		if err != nil {
			claim = ClaimDetected
			b = ci.Data.Clone() // pass the raw data along with the flag
		} else {
			if nerr > 0 && claim != ClaimDetected {
				claim = ClaimCorrected
			}
			for beat := 0; beat < s.org.BurstLen; beat++ {
				for grp := 0; grp < g; grp++ {
					b.SetBeatByte(beat, grp, corrected[beat*g+grp])
				}
			}
		}
		bursts[i] = b
	}
	return dram.JoinLine(s.org, bursts), claim
}

// StorageOverhead implements Scheme: 16 redundancy bits per 128 data bits.
func (s *DUO) StorageOverhead() float64 {
	return float64(2*8) / float64(s.org.AccessBits())
}

// Cost implements Scheme: every access (read and write) carries one
// extension beat; the controller-side long-codeword decode adds latency.
func (s *DUO) Cost() AccessCost {
	return AccessCost{
		ExtraReadBeats:           1,
		ExtraWriteBeats:          1,
		DecodeLatencyNS:          4.0,
		ExtraReadsPerMaskedWrite: 1.0,
	}
}
