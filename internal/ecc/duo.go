package ecc

import (
	"sync"

	"pair/internal/dram"
	"pair/internal/rs"
)

// DUO models the "Dual Use of On-chip redundancy" idea (Gong et al.,
// HPCA 2018) adapted to the commodity x16 context of the PAIR study
// (reconstruction note: original DUO targets x4 ECC DIMMs; the PAIR
// comparison gives the DUO *technique* — forward the on-die redundancy to
// the controller over extension beats and decode a longer Reed-Solomon
// code there — the same storage budget as PAIR, so the contrast isolates
// symbol alignment, which is the paper's point).
//
// Mechanics per chip access:
//
//   - The 128 data bits form 16 byte symbols in *beat-aligned* order:
//     symbol (beat, group) is the byte on pins [8g, 8g+8) during beat b.
//     That is how data arrives at the controller, so it is the natural —
//     and in the paper's analysis, the fatally naive — symbolization.
//   - Two parity symbols (the chip's 16 redundancy bits) are transferred
//     on a ninth burst beat (BL8 -> BL9, DUO's burst-extension trick)
//     and the controller decodes RS(18,16), t=1, per chip access.
//
// Consequence: a DQ-pin fault touches one bit of its byte group in every
// beat — up to nine symbols — and overwhelms the decoder, while PAIR's
// pin-aligned symbols confine the same physical event to one symbol.
type DUO struct {
	org   dram.Organization
	code  *rs.Code
	scr   sync.Pool // *duoScratch per-decode workspace
	batch sync.Pool // *duoBatch per-goroutine slab workspace
}

// duoScratch is the per-goroutine decode workspace: a reusable RS decoder
// plus a codeword buffer.
type duoScratch struct {
	dec  *rs.Decoder
	word []byte
}

// duoBatch is the per-goroutine slab workspace for DecodeBatchInto: the
// batch decoder, a slab sized to the last batch width, per-codeword
// result buffers and the column staging block for the transposed gather.
type duoBatch struct {
	ws       *rs.BatchWorkspace
	slab     *rs.Slab
	nchanged []int
	errs     []error
	word     []byte
	cols     [][64]byte // one staging column per codeword position
}

// ensure sizes the slab and result buffers for w codewords (a multiple
// of 8). The slab is rebuilt only when the width changes.
func (bb *duoBatch) ensure(n, w int) {
	if bb.slab == nil || bb.slab.W() != w {
		bb.slab = rs.NewSlab(n, w)
	}
	if cap(bb.nchanged) < w {
		bb.nchanged = make([]int, w)
		bb.errs = make([]error, w)
	}
	bb.nchanged = bb.nchanged[:w]
	bb.errs = bb.errs[:w]
}

// NewDUO returns the DUO scheme on the given organization (pins must be a
// multiple of 8 so beat-aligned byte symbols exist).
func NewDUO(org dram.Organization) *DUO {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	if org.Pins%8 != 0 {
		panic("ecc: DUO requires a multiple of 8 pins for byte symbols")
	}
	k := org.AccessBits() / 8
	s := &DUO{org: org, code: rs.MustNew(k+2, k)}
	s.scr.New = func() any {
		return &duoScratch{dec: s.code.NewDecoder(), word: make([]byte, s.code.N)}
	}
	s.batch.New = func() any {
		return &duoBatch{
			ws:   s.code.NewBatchWorkspace(),
			word: make([]byte, s.code.N),
			cols: make([][64]byte, s.code.N),
		}
	}
	return s
}

// Name implements Scheme.
func (s *DUO) Name() string { return "duo" }

// Org implements Scheme.
func (s *DUO) Org() dram.Organization { return s.org }

// groups returns the number of byte groups per beat.
func (s *DUO) groups() int { return s.org.Pins / 8 }

// chipSymbolsInto extracts the beat-aligned data symbols of a chip access
// into syms (length K). Symbol (beat, group) occupies bits
// [8*(beat*groups+group), +8) of the burst's bit vector — Pins is a
// multiple of 8 — so extraction is a sequential byte read.
func (s *DUO) chipSymbolsInto(syms []byte, b *dram.Burst) {
	bits := b.Bits()
	for j := range syms {
		syms[j] = byte(bits.GetBits(8*j, 8))
	}
}

// NewStored implements BufferedScheme: one data burst plus the extension
// beat (Xfer) carrying the two parity symbols per chip.
func (s *DUO) NewStored() *Stored {
	st := &Stored{Org: s.org, Chips: make([]*ChipImage, s.org.ChipsPerRank)}
	for i := range st.Chips {
		st.Chips[i] = &ChipImage{
			Data: dram.NewBurst(s.org.Pins, s.org.BurstLen),
			Xfer: dram.NewBurst(s.org.Pins, 1),
		}
	}
	return st
}

// Encode implements Scheme.
func (s *DUO) Encode(line []byte) *Stored {
	st := s.NewStored()
	s.EncodeInto(st, line)
	return st
}

// EncodeInto implements BufferedScheme.
func (s *DUO) EncodeInto(st *Stored, line []byte) {
	scr := s.scr.Get().(*duoScratch)
	word := scr.word
	for i, ci := range st.Chips {
		dram.SplitChipInto(s.org, line, i, ci.Data)
		s.chipSymbolsInto(word[:s.code.K], ci.Data)
		s.code.EncodeTo(word[:s.code.K], word)
		// The two parity symbols travel on the extension beat.
		xb := ci.Xfer.Bits()
		xb.Clear()
		for p := 0; p < 2; p++ {
			xb.OrBits(8*p, uint64(word[s.code.K+p]), 8)
		}
	}
	s.scr.Put(scr)
}

// Decode implements Scheme: the controller decodes RS(18,16) per chip.
func (s *DUO) Decode(st *Stored) ([]byte, Claim) {
	line := make([]byte, s.org.LineBytes())
	return line, s.DecodeInto(line, st)
}

// DecodeInto implements BufferedScheme. Corrected symbol j = (beat, group)
// of chip c lands at line byte beat*(busWidth/8) + c*(Pins/8) + group, so
// chips write their line bytes directly and together cover every byte of
// dst.
func (s *DUO) DecodeInto(dst []byte, st *Stored) Claim {
	claim := ClaimClean
	g := s.groups()
	lineStride := s.org.ChipsPerRank * s.org.Pins / 8
	scr := s.scr.Get().(*duoScratch)
	word := scr.word
	for i, ci := range st.Chips {
		bits := ci.Data.Bits()
		s.chipSymbolsInto(word[:s.code.K], ci.Data)
		for p := 0; p < 2; p++ {
			word[s.code.K+p] = byte(ci.Xfer.Bits().GetBits(8*p, 8))
		}
		nerr, err := scr.dec.DecodeInto(word, word, nil)
		base := i * (s.org.Pins / 8)
		if err != nil {
			claim = ClaimDetected
			// Pass the raw data along with the flag (word is unspecified
			// after a decode failure, so re-read the stored burst).
			for j := 0; j < s.code.K; j++ {
				dst[(j/g)*lineStride+base+j%g] = byte(bits.GetBits(8*j, 8))
			}
		} else {
			if nerr > 0 && claim != ClaimDetected {
				claim = ClaimCorrected
			}
			for j := 0; j < s.code.K; j++ {
				dst[(j/g)*lineStride+base+j%g] = word[j]
			}
		}
	}
	s.scr.Put(scr)
	return claim
}

// EncodeBatchInto implements BatchScheme. Encoding is dominated by the
// per-image burst split, so the batch call is the defining loop.
func (s *DUO) EncodeBatchInto(sts []*Stored, lines [][]byte) { loopEncodeBatch(s, sts, lines) }

// DecodeBatchInto implements BatchScheme on the slab path: per chip, the
// codewords of every image are transposed into one slab and certified by
// a single bitsliced syndrome sweep; only dirty codewords reach the
// scalar decoder. Results are identical to a DecodeInto loop.
func (s *DUO) DecodeBatchInto(dst [][]byte, sts []*Stored, claims []Claim) {
	CheckDecodeBatchArgs(dst, sts, claims)
	nimg := len(sts)
	if nimg == 0 {
		return
	}
	bb := s.batch.Get().(*duoBatch)
	defer s.batch.Put(bb)
	n, k := s.code.N, s.code.K
	bb.ensure(n, PadBatchWidth(nimg))
	g := s.groups()
	lineStride := s.org.ChipsPerRank * s.org.Pins / 8
	for i := 0; i < nimg; i++ {
		claims[i] = ClaimClean
		for j := range dst[i] {
			dst[i][j] = 0
		}
	}
	for chip := 0; chip < s.org.ChipsPerRank; chip++ {
		// Gather: assemble each image's codeword for this chip, staging
		// 64 images per group and writing whole transposed columns.
		for grp := 0; grp < bb.slab.Groups(); grp++ {
			lo := grp * 64
			hi := lo + 64
			if hi > nimg {
				hi = nimg
			}
			for j := 0; j < n; j++ {
				bb.cols[j] = [64]byte{}
			}
			for i := lo; i < hi; i++ {
				ci := sts[i].Chips[chip]
				s.chipSymbolsInto(bb.word[:k], ci.Data)
				for p := 0; p < 2; p++ {
					bb.word[k+p] = byte(ci.Xfer.Bits().GetBits(8*p, 8))
				}
				for j := 0; j < n; j++ {
					bb.cols[j][i-lo] = bb.word[j]
				}
			}
			for j := 0; j < n; j++ {
				bb.slab.SetColumn(j, grp, &bb.cols[j])
			}
		}
		bb.ws.DecodeBatch(bb.slab, nil, bb.nchanged, bb.errs)
		// Write back: clean and errored codewords pass the raw burst
		// through (identical bytes to the scalar paths); corrected ones
		// read their repaired data symbols out of the slab.
		base := chip * (s.org.Pins / 8)
		for i := 0; i < nimg; i++ {
			ci := sts[i].Chips[chip]
			switch {
			case bb.errs[i] != nil:
				claims[i] = ClaimDetected
				dram.OrChipInto(s.org, dst[i], chip, ci.Data)
			case bb.nchanged[i] == 0:
				dram.OrChipInto(s.org, dst[i], chip, ci.Data)
			default:
				if claims[i] != ClaimDetected {
					claims[i] = ClaimCorrected
				}
				for j := 0; j < k; j++ {
					dst[i][(j/g)*lineStride+base+j%g] = bb.slab.At(i, j)
				}
			}
		}
	}
}

// StorageOverhead implements Scheme: 16 redundancy bits per 128 data bits.
func (s *DUO) StorageOverhead() float64 {
	return float64(2*8) / float64(s.org.AccessBits())
}

// Cost implements Scheme: every access (read and write) carries one
// extension beat; the controller-side long-codeword decode adds latency.
func (s *DUO) Cost() AccessCost {
	return AccessCost{
		ExtraReadBeats:           1,
		ExtraWriteBeats:          1,
		DecodeLatencyNS:          4.0,
		ExtraReadsPerMaskedWrite: 1.0,
	}
}
