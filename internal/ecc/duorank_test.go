package ecc

import (
	"bytes"
	"math/rand"
	"testing"

	"pair/internal/dram"
	"pair/internal/faults"
)

func newDUORank() *DUORank { return NewDUORank(dram.DDR4x8ECC()) }

func TestDUORankRequiresECCDIMM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("x16 organization accepted")
		}
	}()
	NewDUORank(dram.DDR4x16())
}

func TestDUORankCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := newDUORank()
	for trial := 0; trial < 30; trial++ {
		line := randLine(rng, 64)
		decoded, claim := s.Decode(s.Encode(line))
		if claim != ClaimClean || !bytes.Equal(decoded, line) {
			t.Fatalf("clean round trip failed: %v", claim)
		}
	}
}

func TestDUORankCorrectsUpTo8Symbols(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := newDUORank()
	for nerr := 1; nerr <= 8; nerr++ {
		for trial := 0; trial < 25; trial++ {
			line := randLine(rng, 64)
			st := s.Encode(line)
			// Corrupt nerr distinct random beat-symbols across data chips.
			type pos struct{ c, beat int }
			seen := map[pos]bool{}
			for len(seen) < nerr {
				p := pos{rng.Intn(8), rng.Intn(8)}
				if !seen[p] {
					seen[p] = true
					old := st.Chips[p.c].Data.BeatByte(p.beat, 0)
					st.Chips[p.c].Data.SetBeatByte(p.beat, 0, old^byte(1+rng.Intn(255)))
				}
			}
			decoded, claim := s.Decode(st)
			if out := Classify(line, decoded, claim); out != OutcomeCE {
				t.Fatalf("nerr=%d: outcome %v", nerr, out)
			}
		}
	}
}

func TestDUORankSurvivesWholeChipViaErasureRetry(t *testing.T) {
	// A dead chip is 9 bad symbols — beyond t=8 directly, recovered by
	// the chip-erasure hypothesis pass. This is DUO's chipkill story.
	rng := rand.New(rand.NewSource(3))
	s := newDUORank()
	ce := 0
	const trials = 150
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		chip := rng.Intn(9)
		InjectAccessFault(rng, st, faults.PermanentBank, chip)
		decoded, claim := s.Decode(st)
		if out := Classify(line, decoded, claim); out == OutcomeCE {
			ce++
		}
	}
	if float64(ce)/trials < 0.95 {
		t.Fatalf("chipkill recovery only %d/%d", ce, trials)
	}
}

func TestDUORankPinFaultStillBeatAlignedWeakness(t *testing.T) {
	// A pin fault is up to 9 symbols in ONE chip — recoverable by the
	// erasure retry, so duo-rank handles it (unlike commodity duo)...
	rng := rand.New(rand.NewSource(4))
	s := newDUORank()
	ce := 0
	const trials = 150
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		InjectAccessFault(rng, st, faults.PermanentPin, rng.Intn(8))
		decoded, claim := s.Decode(st)
		if Classify(line, decoded, claim) == OutcomeCE {
			ce++
		}
	}
	if float64(ce)/trials < 0.95 {
		t.Fatalf("pin fault recovery only %d/%d", ce, trials)
	}
	// ...but a pin fault PLUS one unrelated symbol error in another chip
	// exceeds the erasure budget less often than PAIR's per-chip
	// isolation: inject both and require a nonzero failure rate, the
	// coupling PAIR avoids entirely.
	fails := 0
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		InjectAccessFault(rng, st, faults.PermanentPin, 0)
		// Five extra cell errors in other chips exceed the post-erasure
		// budget floor((17-9)/2) = 4.
		for i := 0; i < 5; i++ {
			InjectAccessFault(rng, st, faults.PermanentCell, 1+rng.Intn(7))
		}
		decoded, claim := s.Decode(st)
		if Classify(line, decoded, claim).IsFailure() {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("pin+5-cell never failed — erasure budget not modeled")
	}
}

func TestDUORankTwoDeadChipsDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := newDUORank()
	for trial := 0; trial < 60; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		InjectAccessFault(rng, st, faults.PermanentBank, 0)
		InjectAccessFault(rng, st, faults.PermanentBank, 3)
		decoded, claim := s.Decode(st)
		if out := Classify(line, decoded, claim); out == OutcomeSDC {
			t.Fatal("two dead chips silently miscorrected")
		}
	}
}

func TestDUORankOverheadAndCost(t *testing.T) {
	s := newDUORank()
	// redundancy: 64 (ECC chip beats) + 9*8 (forwarded) = 136 bits per
	// 512 data bits = 26.5625%.
	if got := s.StorageOverhead(); got < 0.26 || got > 0.27 {
		t.Fatalf("overhead %v", got)
	}
	c := s.Cost()
	if c.ExtraReadBeats != 1 || c.ExtraWriteBeats != 1 {
		t.Fatal("burst extension missing")
	}
}

func TestDUORankSingleCellAlwaysCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := newDUORank()
	for trial := 0; trial < 150; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		InjectAccessFault(rng, st, faults.PermanentCell, -1)
		decoded, claim := s.Decode(st)
		if out := Classify(line, decoded, claim); out != OutcomeCE {
			t.Fatalf("single cell -> %v", out)
		}
	}
}
