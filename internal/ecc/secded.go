package ecc

import (
	"pair/internal/bitvec"
	"pair/internal/dram"
	"pair/internal/hamming"
)

// SECDED is the classic rank-level ECC-DIMM baseline: a Hsiao (72,64)
// code per burst beat across a nine-chip x8 rank. It needs the extra
// (ninth) chip, so it runs on the DDR4x8ECC organization rather than the
// commodity x16 one; reliability is still accounted per 64-byte line, so
// the comparison to the in-DRAM schemes remains meaningful.
type SECDED struct {
	org  dram.Organization
	code *hamming.Code
}

// NewSECDED returns the rank-level SEC-DED scheme; the organization must
// provide exactly one ECC chip and 8-bit-per-beat check capacity.
func NewSECDED(org dram.Organization) *SECDED {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	if org.ECCChips != 1 {
		panic("ecc: SECDED requires exactly one ECC chip")
	}
	code := hamming.MustSECDED(org.ChipsPerRank * org.Pins)
	if code.M != org.Pins {
		panic("ecc: SECDED check bits do not fit the ECC chip's beat width")
	}
	return &SECDED{org: org, code: code}
}

// Name implements Scheme.
func (s *SECDED) Name() string { return "secded" }

// Org implements Scheme.
func (s *SECDED) Org() dram.Organization { return s.org }

// Encode implements Scheme. Chips[0..ChipsPerRank) carry data; the last
// image is the ECC chip, whose beat b holds the check byte of beat b's
// codeword.
func (s *SECDED) Encode(line []byte) *Stored {
	bursts := dram.SplitLine(s.org, line)
	st := &Stored{Org: s.org, Chips: make([]*ChipImage, len(bursts)+1)}
	for i, b := range bursts {
		st.Chips[i] = &ChipImage{Data: b}
	}
	eccBurst := dram.NewBurst(s.org.Pins, s.org.BurstLen)
	for beat := 0; beat < s.org.BurstLen; beat++ {
		data := bitvec.New(s.code.K)
		for c := 0; c < s.org.ChipsPerRank; c++ {
			for p := 0; p < s.org.Pins; p++ {
				data.Set(c*s.org.Pins+p, bursts[c].Get(p, beat))
			}
		}
		cw := s.code.Encode(data)
		for j := 0; j < s.code.M; j++ {
			eccBurst.Set(j, beat, cw.Get(s.code.K+j))
		}
	}
	st.Chips[len(bursts)] = &ChipImage{Data: eccBurst}
	return st
}

// Decode implements Scheme: one (72,64) decode per beat.
func (s *SECDED) Decode(st *Stored) ([]byte, Claim) {
	nData := s.org.ChipsPerRank
	eccBurst := st.Chips[nData].Data
	claim := ClaimClean
	out := make([]*dram.Burst, nData)
	for c := range out {
		out[c] = dram.NewBurst(s.org.Pins, s.org.BurstLen)
	}
	// One reusable word for all beats: every position is overwritten per
	// beat and the correction happens in place (hamming.DecodeInto), so
	// the per-beat loop allocates nothing.
	word := bitvec.New(s.code.N)
	for beat := 0; beat < s.org.BurstLen; beat++ {
		for c := 0; c < nData; c++ {
			for p := 0; p < s.org.Pins; p++ {
				word.Set(c*s.org.Pins+p, st.Chips[c].Data.Get(p, beat))
			}
		}
		for j := 0; j < s.code.M; j++ {
			word.Set(s.code.K+j, eccBurst.Get(j, beat))
		}
		switch s.code.DecodeInto(word, word) {
		case hamming.Detected:
			claim = ClaimDetected
		case hamming.Corrected:
			if claim != ClaimDetected {
				claim = ClaimCorrected
			}
		}
		for c := 0; c < nData; c++ {
			for p := 0; p < s.org.Pins; p++ {
				out[c].Set(p, beat, word.Get(c*s.org.Pins+p))
			}
		}
	}
	return dram.JoinLine(s.org, out), claim
}

// StorageOverhead implements Scheme: the ninth chip, 12.5%.
func (s *SECDED) StorageOverhead() float64 {
	return float64(s.org.ECCChips) / float64(s.org.ChipsPerRank)
}

// Cost implements Scheme: the ECC chip rides along in the same burst (a
// 72-bit bus), so only the decode latency shows up.
func (s *SECDED) Cost() AccessCost {
	return AccessCost{DecodeLatencyNS: 1.5}
}
