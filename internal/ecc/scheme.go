// Package ecc defines the common framework the five evaluated ECC schemes
// implement — No-ECC, conventional In-DRAM ECC (IECC), rank-level SECDED,
// XED, DUO and (in internal/core) PAIR — plus the fault-injection bridge
// that corrupts a scheme's physical storage image and the outcome
// classification the reliability experiments use.
//
// All commodity-context schemes run on the same DDR4 x16 organization so
// the comparison is apples-to-apples: one rank access moves a 64-byte
// cache line over 4 chips x 16 pins x 8 beats. The rank-level SECDED
// baseline uses its natural 9-chip x8 ECC-DIMM organization. Reliability
// is always accounted per 64-byte line.
package ecc

import (
	"bytes"
	"fmt"

	"pair/internal/bitvec"
	"pair/internal/dram"
)

// Claim is what a scheme's decoder believes happened. It cannot see the
// golden data, so a "clean"/"corrected" claim may still be wrong — the
// evaluator cross-checks against the golden line to expose miscorrections.
type Claim int

const (
	// ClaimClean: no error observed.
	ClaimClean Claim = iota
	// ClaimCorrected: errors observed and (believed) repaired.
	ClaimCorrected
	// ClaimDetected: an uncorrectable pattern was flagged (DUE).
	ClaimDetected
)

func (c Claim) String() string {
	switch c {
	case ClaimClean:
		return "clean"
	case ClaimCorrected:
		return "corrected"
	case ClaimDetected:
		return "detected"
	default:
		return fmt.Sprintf("Claim(%d)", int(c))
	}
}

// Outcome is the ground-truth classification of one protected access.
type Outcome int

const (
	// OutcomeOK: data returned intact without any correction activity.
	OutcomeOK Outcome = iota
	// OutcomeCE: corrected error — data intact after repair.
	OutcomeCE
	// OutcomeDUE: detected uncorrectable error — no silent damage, but
	// the access failed (machine-check in a real system).
	OutcomeDUE
	// OutcomeSDC: silent data corruption — wrong data returned without a
	// flag, either undetected or miscorrected. The worst case.
	OutcomeSDC
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeCE:
		return "ce"
	case OutcomeDUE:
		return "due"
	case OutcomeSDC:
		return "sdc"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// IsFailure reports whether the outcome counts as a reliability failure
// (DUE or SDC).
func (o Outcome) IsFailure() bool { return o == OutcomeDUE || o == OutcomeSDC }

// Classify turns a decode result into the ground-truth outcome.
func Classify(golden, decoded []byte, claim Claim) Outcome {
	match := bytes.Equal(golden, decoded)
	switch claim {
	case ClaimDetected:
		return OutcomeDUE
	case ClaimClean:
		if match {
			return OutcomeOK
		}
		return OutcomeSDC
	case ClaimCorrected:
		if match {
			return OutcomeCE
		}
		return OutcomeSDC
	default:
		panic(fmt.Sprintf("ecc: unknown claim %v", claim))
	}
}

// ChipImage is the physical storage image one chip contributes to a
// protected rank access. Fault injection distinguishes three regions
// because real faults do:
//
//   - Data: the bits that cross the DQ pins during the burst. Pin faults
//     corrupt exactly these, one pin lane at a time.
//   - OnDie: redundancy that lives in the array and is consumed inside
//     the die (IECC check bits, XED's detector parity, PAIR's parity
//     symbols). Cell and array faults reach it; pin faults never do.
//   - Xfer: redundancy that crosses the pins on extension beats (DUO's
//     forwarded redundancy). Pin faults corrupt its lane too.
//
// Unused regions are nil.
type ChipImage struct {
	Data  *dram.Burst
	OnDie *bitvec.Vec
	Xfer  *dram.Burst
}

// Clone deep-copies the image.
func (ci *ChipImage) Clone() *ChipImage {
	out := &ChipImage{}
	if ci.Data != nil {
		out.Data = ci.Data.Clone()
	}
	if ci.OnDie != nil {
		out.OnDie = ci.OnDie.Clone()
	}
	if ci.Xfer != nil {
		out.Xfer = ci.Xfer.Clone()
	}
	return out
}

// TotalBits returns the number of stored bits in the image.
func (ci *ChipImage) TotalBits() int {
	n := 0
	if ci.Data != nil {
		n += ci.Data.Pins * ci.Data.Beats
	}
	if ci.OnDie != nil {
		n += ci.OnDie.Len()
	}
	if ci.Xfer != nil {
		n += ci.Xfer.Pins * ci.Xfer.Beats
	}
	return n
}

// Stored is the complete physical image of one protected line: one
// ChipImage per chip the scheme stores bits on (data chips first; schemes
// with extra parity storage, like XED's inline parity line, append the
// extra images after the data chips and document the layout).
type Stored struct {
	Org   dram.Organization
	Chips []*ChipImage
}

// Clone deep-copies the stored image (the unit of fault injection: inject
// into a clone, decode, compare with the original).
func (s *Stored) Clone() *Stored {
	out := &Stored{Org: s.Org, Chips: make([]*ChipImage, len(s.Chips))}
	for i, ci := range s.Chips {
		out.Chips[i] = ci.Clone()
	}
	return out
}

// TotalBits sums stored bits over all chips.
func (s *Stored) TotalBits() int {
	n := 0
	for _, ci := range s.Chips {
		n += ci.TotalBits()
	}
	return n
}

// AccessCost captures the performance-relevant mechanics of a scheme; the
// timing simulator applies these mechanically. Rates are per triggering
// access (1.0 = always).
type AccessCost struct {
	// ExtraReadBeats / ExtraWriteBeats extend the burst (DUO's forwarded
	// redundancy beat).
	ExtraReadBeats  int
	ExtraWriteBeats int
	// DecodeLatencyNS is added to every read's completion (ECC decode).
	DecodeLatencyNS float64
	// ExtraWritesPerWrite issues additional write accesses per line write
	// (XED's inline parity-line update).
	ExtraWritesPerWrite float64
	// ExtraReadsPerWrite issues additional read accesses per full-line
	// write (none of the schemes need this; masked writes are separate).
	ExtraReadsPerWrite float64
	// ExtraReadsPerMaskedWrite issues additional reads per masked
	// (sub-line) write — the read-modify-write penalty.
	ExtraReadsPerMaskedWrite float64
	// DetectionRereadRate issues an additional read per read at this
	// rate (XED's catch-word reconstruction path; effectively 0 in
	// healthy devices but the knob exists for degraded-mode studies).
	DetectionRereadRate float64
}

// BufferedScheme is the allocation-free fast path a Scheme may offer for
// Monte-Carlo campaigns: the caller owns the Stored image and the decoded
// line buffer and reuses both across trials.
//
// Ownership rules: EncodeInto must overwrite every stored bit of st (the
// image may carry fault-injection corruption from a previous trial), and
// DecodeInto must overwrite every byte of dst. Neither may retain
// references to the caller's buffers. Implementations keep any per-decode
// scratch in an internal sync.Pool, so a single scheme value stays safe
// for concurrent use.
type BufferedScheme interface {
	Scheme
	// NewStored allocates a Stored image shaped for this scheme, ready
	// for EncodeInto.
	NewStored() *Stored
	// EncodeInto (re)builds the physical storage image of line
	// (Org().LineBytes() bytes) into st.
	EncodeInto(st *Stored, line []byte)
	// DecodeInto recovers the line into dst (Org().LineBytes() bytes)
	// from a possibly corrupted image and reports the decoder's claim.
	DecodeInto(dst []byte, st *Stored) Claim
}

// Scheme is one ECC architecture under evaluation.
type Scheme interface {
	// Name is a short stable identifier ("pair", "xed", ...).
	Name() string
	// Org returns the DRAM organization the scheme runs on.
	Org() dram.Organization
	// Encode builds the physical storage image for a cache line of
	// Org().LineBytes() bytes.
	Encode(line []byte) *Stored
	// Decode recovers the line from a (possibly corrupted) image and
	// reports the decoder's claim.
	Decode(st *Stored) ([]byte, Claim)
	// StorageOverhead returns redundancy bits / data bits for the whole
	// scheme (on-die plus any capacity consumed for parity storage).
	StorageOverhead() float64
	// Cost returns the performance model parameters.
	Cost() AccessCost
}
