package ecc

import (
	"math/rand"
	"testing"

	"pair/internal/dram"
	"pair/internal/faults"
)

// regionPops sums the per-region population counts of a stored image.
func regionPops(st *Stored) (data, onDie, xfer int) {
	for _, ci := range st.Chips {
		if ci.Data != nil {
			data += ci.Data.PopCount()
		}
		if ci.OnDie != nil {
			onDie += ci.OnDie.PopCount()
		}
		if ci.Xfer != nil {
			xfer += ci.Xfer.PopCount()
		}
	}
	return
}

// diffPops returns the per-region corruption a scenario injected into an
// encoded image, by XOR-comparing against a clean encode of the same
// line.
func diffPops(t *testing.T, scheme BufferedScheme, sc faults.Scenario, seed int64) (data, onDie, xfer int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	line := make([]byte, scheme.Org().LineBytes())
	rng.Read(line)
	clean := scheme.Encode(line)
	dirty := clean.Clone()
	ScenarioInjector(sc)(rng, dirty)
	for c := range dirty.Chips {
		d, cl := dirty.Chips[c], clean.Chips[c]
		if d.Data != nil {
			d.Data.Xor(cl.Data)
		}
		if d.OnDie != nil {
			d.OnDie.Xor(cl.OnDie)
		}
		if d.Xfer != nil {
			d.Xfer.Xor(cl.Xfer)
		}
	}
	return regionPops(dirty)
}

// TestScenarioInjectorRegionReach verifies the bridge exposes the right
// physical regions: a pin fault corrupts DUO's transferred redundancy
// but never IECC's on-die check bits, while inherent noise reaches every
// region including the on-die bits.
func TestScenarioInjectorRegionReach(t *testing.T) {
	org := dram.DDR4x16()
	pin := faults.MustScenario("pin")

	duo := NewDUO(org)
	sawXfer := false
	for seed := int64(0); seed < 50; seed++ {
		data, onDie, xfer := diffPops(t, duo, pin, seed)
		if onDie != 0 {
			t.Fatalf("pin scenario reached DUO's on-die region (seed %d)", seed)
		}
		if data+xfer == 0 {
			t.Fatalf("pin scenario flipped nothing (seed %d)", seed)
		}
		if xfer > 0 {
			sawXfer = true
		}
	}
	if !sawXfer {
		t.Fatal("pin scenario never corrupted DUO's transferred redundancy in 50 trials")
	}

	iecc := NewIECC(org)
	for seed := int64(0); seed < 50; seed++ {
		if _, onDie, _ := diffPops(t, iecc, pin, seed); onDie != 0 {
			t.Fatalf("pin scenario reached IECC's on-die check bits (seed %d)", seed)
		}
	}

	sawOnDie := false
	inherent := faults.MustScenario("inherent:ber=0.05")
	for seed := int64(0); seed < 20; seed++ {
		if _, onDie, _ := diffPops(t, iecc, inherent, seed); onDie > 0 {
			sawOnDie = true
			break
		}
	}
	if !sawOnDie {
		t.Fatal("inherent scenario never reached the on-die region")
	}
}

// TestScenarioInjectorChipkillSpansAllImages: the chipkill scenario must
// be able to land on every chip image the scheme stores — including
// XED's appended parity image, which exists beyond the rank's data
// chips.
func TestScenarioInjectorChipkillSpansAllImages(t *testing.T) {
	org := dram.DDR4x16()
	xed := NewXED(org)
	nChips := len(xed.Encode(make([]byte, org.LineBytes())).Chips)
	if nChips <= org.ChipsPerRank {
		t.Fatalf("XED stores %d chip images; expected an appended parity image", nChips)
	}
	kill := faults.MustScenario("chipkill")
	hit := make([]bool, nChips)
	rng := rand.New(rand.NewSource(9))
	line := make([]byte, org.LineBytes())
	for trial := 0; trial < 200; trial++ {
		rng.Read(line)
		clean := xed.Encode(line)
		dirty := clean.Clone()
		ScenarioInjector(kill)(rng, dirty)
		for c := range dirty.Chips {
			d, cl := dirty.Chips[c], clean.Chips[c]
			if (d.Data != nil && !d.Data.Equal(cl.Data)) ||
				(d.OnDie != nil && !d.OnDie.Equal(cl.OnDie)) ||
				(d.Xfer != nil && !d.Xfer.Equal(cl.Xfer)) {
				hit[c] = true
			}
		}
	}
	for c, ok := range hit {
		if !ok {
			t.Fatalf("chipkill never landed on chip image %d of %d in 200 trials", c, nChips)
		}
	}
}
