package ecc

import (
	"bytes"
	"math/rand"
	"testing"

	"pair/internal/dram"
	"pair/internal/faults"
)

// bufferedSchemesUnderTest returns every BufferedScheme in this package.
func bufferedSchemesUnderTest() []BufferedScheme {
	return []BufferedScheme{
		NewNone(dram.DDR4x16()),
		NewIECC(dram.DDR4x16()),
		NewXED(dram.DDR4x16()),
		NewDUO(dram.DDR4x16()),
	}
}

func chipImagesEqual(a, b *ChipImage) bool {
	if (a.Data == nil) != (b.Data == nil) ||
		(a.OnDie == nil) != (b.OnDie == nil) ||
		(a.Xfer == nil) != (b.Xfer == nil) {
		return false
	}
	if a.Data != nil && !a.Data.Equal(b.Data) {
		return false
	}
	if a.OnDie != nil && !a.OnDie.Equal(b.OnDie) {
		return false
	}
	if a.Xfer != nil && !a.Xfer.Equal(b.Xfer) {
		return false
	}
	return true
}

func storedEqual(a, b *Stored) bool {
	if len(a.Chips) != len(b.Chips) {
		return false
	}
	for i := range a.Chips {
		if !chipImagesEqual(a.Chips[i], b.Chips[i]) {
			return false
		}
	}
	return true
}

// corruptBoth applies the identical corruption to both images by replaying
// the same RNG stream.
func corruptBoth(seed int64, mode int, a, b *Stored) {
	apply := func(rng *rand.Rand, st *Stored) {
		switch mode % 4 {
		case 0:
			FlipRandomStoredBits(rng, st, rng.Intn(7))
		case 1:
			InjectAccessFault(rng, st, faults.PermanentPin, -1)
		case 2:
			chip := rng.Intn(len(st.Chips))
			InjectAccessFault(rng, st, faults.PermanentCell, chip)
			InjectAccessFault(rng, st, faults.PermanentCell, chip)
		case 3:
			// Heavy corruption: exercises the detected/uncorrectable paths.
			FlipRandomStoredBits(rng, st, 20+rng.Intn(20))
		}
	}
	apply(rand.New(rand.NewSource(seed)), a)
	apply(rand.New(rand.NewSource(seed)), b)
}

// TestBufferedSchemeDifferential checks EncodeInto ≡ Encode and
// DecodeInto ≡ Decode across randomized fault patterns, with the buffered
// image and line buffer reused (dirty) across trials — the ownership
// contract of BufferedScheme.
func TestBufferedSchemeDifferential(t *testing.T) {
	for _, s := range bufferedSchemesUnderTest() {
		t.Run(s.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			st := s.NewStored()
			dst := make([]byte, s.Org().LineBytes())
			for trial := 0; trial < 300; trial++ {
				line := randLine(rng, s.Org().LineBytes())
				ref := s.Encode(line)
				s.EncodeInto(st, line)
				if !storedEqual(ref, st) {
					t.Fatalf("trial %d: EncodeInto image differs from Encode", trial)
				}
				corruptBoth(rng.Int63(), trial, ref, st)
				if !storedEqual(ref, st) {
					t.Fatalf("trial %d: corruption replay diverged", trial)
				}
				refLine, refClaim := s.Decode(ref)
				claim := s.DecodeInto(dst, st)
				if claim != refClaim {
					t.Fatalf("trial %d: claim %v, want %v", trial, claim, refClaim)
				}
				if !bytes.Equal(dst, refLine) {
					t.Fatalf("trial %d: DecodeInto line differs from Decode", trial)
				}
			}
		})
	}
}

