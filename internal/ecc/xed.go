package ecc

import (
	"pair/internal/bitvec"
	"pair/internal/dram"
	"pair/internal/hamming"
)

// XED models the "eXposed on-die Error Detection" architecture (Nair et
// al., ISCA 2016) adapted to the commodity x16 context the PAIR study
// uses (reconstruction note: the original XED assumes a 9-chip ECC DIMM;
// a commodity rank has no ninth chip, so the rank-XOR parity is stored
// inline in DRAM — one parity access per line — which is also what gives
// XED its write-bandwidth penalty here).
//
// Mechanics:
//
//   - Each chip keeps its on-die (136,128) code but uses it purely as an
//     error *detector* (nonzero syndrome => the chip signals a
//     catch-word instead of data). Detection misses only when the error
//     pattern is itself a codeword (probability ~2^-8 for garbage
//     patterns; never for 1- or 2-bit errors since d=3).
//   - A parity image (XOR of the four chips' data bursts) is stored in a
//     reserved region, protected by its own on-die detector.
//   - On a read: no chip flags => data is returned as-is (an undetected
//     corruption becomes SDC — XED's reliability hazard). Exactly one
//     chip flags => its burst is reconstructed from the other three
//     chips plus the parity image. Two or more flags, or a flagged
//     parity image when needed => DUE.
type XED struct {
	org  dram.Organization
	code *hamming.Code
}

// NewXED returns the XED scheme on the given organization.
func NewXED(org dram.Organization) *XED {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	return &XED{org: org, code: hamming.MustSEC(org.AccessBits())}
}

// Name implements Scheme.
func (s *XED) Name() string { return "xed" }

// Org implements Scheme.
func (s *XED) Org() dram.Organization { return s.org }

// Encode implements Scheme. Chips[0..ChipsPerRank) are the data chips;
// Chips[ChipsPerRank] is the inline parity image.
func (s *XED) Encode(line []byte) *Stored {
	bursts := dram.SplitLine(s.org, line)
	st := &Stored{Org: s.org, Chips: make([]*ChipImage, len(bursts)+1)}
	parity := dram.NewBurst(s.org.Pins, s.org.BurstLen)
	for i, b := range bursts {
		st.Chips[i] = &ChipImage{Data: b, OnDie: s.detectorBits(b)}
		parity.Xor(b)
	}
	st.Chips[len(bursts)] = &ChipImage{Data: parity, OnDie: s.detectorBits(parity)}
	return st
}

// detectorBits computes the on-die check bits for a burst.
func (s *XED) detectorBits(b *dram.Burst) *bitvec.Vec {
	cw := s.code.Encode(b.Bits())
	onDie := bitvec.New(s.code.M)
	for j := 0; j < s.code.M; j++ {
		onDie.Set(j, cw.Get(s.code.K+j))
	}
	return onDie
}

// flagged reports whether the chip's detector fires (nonzero syndrome).
func (s *XED) flagged(ci *ChipImage) bool {
	word := bitvec.New(s.code.N)
	for j := 0; j < s.code.K; j++ {
		word.Set(j, ci.Data.Bits().Get(j))
	}
	for j := 0; j < s.code.M; j++ {
		word.Set(s.code.K+j, ci.OnDie.Get(j))
	}
	return s.code.Syndrome(word) != 0
}

// Decode implements Scheme.
func (s *XED) Decode(st *Stored) ([]byte, Claim) {
	nData := s.org.ChipsPerRank
	flaggedChip := -1
	nFlagged := 0
	for i := 0; i < nData; i++ {
		if s.flagged(st.Chips[i]) {
			flaggedChip = i
			nFlagged++
		}
	}
	bursts := make([]*dram.Burst, nData)
	for i := 0; i < nData; i++ {
		bursts[i] = st.Chips[i].Data
	}
	switch {
	case nFlagged == 0:
		// Nothing signalled: data passes through. The rank parity is NOT
		// verified on ordinary reads (faithful to XED's design), so an
		// aliased pattern sails through as SDC.
		return dram.JoinLine(s.org, bursts), ClaimClean
	case nFlagged == 1:
		parityImg := st.Chips[nData]
		if s.flagged(parityImg) {
			// Reconstruction source is itself suspect.
			return dram.JoinLine(s.org, bursts), ClaimDetected
		}
		rec := parityImg.Data.Clone()
		for i := 0; i < nData; i++ {
			if i != flaggedChip {
				rec.Xor(st.Chips[i].Data)
			}
		}
		repaired := make([]*dram.Burst, nData)
		copy(repaired, bursts)
		repaired[flaggedChip] = rec
		return dram.JoinLine(s.org, repaired), ClaimCorrected
	default:
		return dram.JoinLine(s.org, bursts), ClaimDetected
	}
}

// StorageOverhead implements Scheme: 6.25% on-die detector bits on every
// stored access (data and parity) plus the inline parity region, one
// parity access per ChipsPerRank data accesses.
func (s *XED) StorageOverhead() float64 {
	onDie := s.code.StorageOverhead()
	inline := 1.0 / float64(s.org.ChipsPerRank) * (1.0 + onDie)
	return onDie + inline
}

// Cost implements Scheme. Every line write must also write the inline
// parity image (computable from the new data, so no read is needed for
// full-line writes); masked writes additionally read the old line. The
// catch-word reconstruction path re-reads the parity image, which only
// matters in degraded mode and defaults to 0.
func (s *XED) Cost() AccessCost {
	return AccessCost{
		DecodeLatencyNS:          1.0,
		ExtraWritesPerWrite:      1.0,
		ExtraReadsPerMaskedWrite: 1.0,
	}
}
