package ecc

import (
	"sync"

	"pair/internal/bitvec"
	"pair/internal/dram"
	"pair/internal/hamming"
)

// XED models the "eXposed on-die Error Detection" architecture (Nair et
// al., ISCA 2016) adapted to the commodity x16 context the PAIR study
// uses (reconstruction note: the original XED assumes a 9-chip ECC DIMM;
// a commodity rank has no ninth chip, so the rank-XOR parity is stored
// inline in DRAM — one parity access per line — which is also what gives
// XED its write-bandwidth penalty here).
//
// Mechanics:
//
//   - Each chip keeps its on-die (136,128) code but uses it purely as an
//     error *detector* (nonzero syndrome => the chip signals a
//     catch-word instead of data). Detection misses only when the error
//     pattern is itself a codeword (probability ~2^-8 for garbage
//     patterns; never for 1- or 2-bit errors since d=3).
//   - A parity image (XOR of the four chips' data bursts) is stored in a
//     reserved region, protected by its own on-die detector.
//   - On a read: no chip flags => data is returned as-is (an undetected
//     corruption becomes SDC — XED's reliability hazard). Exactly one
//     chip flags => its burst is reconstructed from the other three
//     chips plus the parity image. Two or more flags, or a flagged
//     parity image when needed => DUE.
type XED struct {
	org  dram.Organization
	code *hamming.Code
	rec  sync.Pool // *dram.Burst reconstruction scratch
}

// NewXED returns the XED scheme on the given organization.
func NewXED(org dram.Organization) *XED {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	s := &XED{org: org, code: hamming.MustSEC(org.AccessBits())}
	s.rec.New = func() any { return dram.NewBurst(org.Pins, org.BurstLen) }
	return s
}

// Name implements Scheme.
func (s *XED) Name() string { return "xed" }

// Org implements Scheme.
func (s *XED) Org() dram.Organization { return s.org }

// NewStored implements BufferedScheme: data chips plus the inline parity
// image.
func (s *XED) NewStored() *Stored {
	st := &Stored{Org: s.org, Chips: make([]*ChipImage, s.org.ChipsPerRank+1)}
	for i := range st.Chips {
		st.Chips[i] = &ChipImage{
			Data:  dram.NewBurst(s.org.Pins, s.org.BurstLen),
			OnDie: bitvec.New(s.code.M),
		}
	}
	return st
}

// Encode implements Scheme. Chips[0..ChipsPerRank) are the data chips;
// Chips[ChipsPerRank] is the inline parity image.
func (s *XED) Encode(line []byte) *Stored {
	st := s.NewStored()
	s.EncodeInto(st, line)
	return st
}

// EncodeInto implements BufferedScheme.
func (s *XED) EncodeInto(st *Stored, line []byte) {
	nData := s.org.ChipsPerRank
	parity := st.Chips[nData]
	for i := 0; i < nData; i++ {
		ci := st.Chips[i]
		dram.SplitChipInto(s.org, line, i, ci.Data)
		s.setDetectorBits(ci)
		if i == 0 {
			parity.Data.CopyFrom(ci.Data)
		} else {
			parity.Data.Xor(ci.Data)
		}
	}
	s.setDetectorBits(parity)
}

// setDetectorBits writes the on-die check bits of the image's burst.
func (s *XED) setDetectorBits(ci *ChipImage) {
	ck := s.code.CheckBits(ci.Data.Bits())
	ci.OnDie.Clear()
	ci.OnDie.OrBits(0, uint64(ck), s.code.M)
}

// flagged reports whether the chip's detector fires (nonzero syndrome):
// the data's recomputed check bits disagree with the stored ones.
func (s *XED) flagged(ci *ChipImage) bool {
	return s.code.CheckBits(ci.Data.Bits()) != uint16(ci.OnDie.GetBits(0, s.code.M))
}

// Decode implements Scheme.
func (s *XED) Decode(st *Stored) ([]byte, Claim) {
	line := make([]byte, s.org.LineBytes())
	return line, s.DecodeInto(line, st)
}

// DecodeInto implements BufferedScheme.
func (s *XED) DecodeInto(dst []byte, st *Stored) Claim {
	nData := s.org.ChipsPerRank
	flaggedChip := -1
	nFlagged := 0
	for i := 0; i < nData; i++ {
		if s.flagged(st.Chips[i]) {
			flaggedChip = i
			nFlagged++
		}
	}
	for i := range dst {
		dst[i] = 0
	}
	switch {
	case nFlagged == 0:
		// Nothing signalled: data passes through. The rank parity is NOT
		// verified on ordinary reads (faithful to XED's design), so an
		// aliased pattern sails through as SDC.
		for i := 0; i < nData; i++ {
			dram.OrChipInto(s.org, dst, i, st.Chips[i].Data)
		}
		return ClaimClean
	case nFlagged == 1:
		parityImg := st.Chips[nData]
		if s.flagged(parityImg) {
			// Reconstruction source is itself suspect.
			for i := 0; i < nData; i++ {
				dram.OrChipInto(s.org, dst, i, st.Chips[i].Data)
			}
			return ClaimDetected
		}
		rec := s.rec.Get().(*dram.Burst)
		rec.CopyFrom(parityImg.Data)
		for i := 0; i < nData; i++ {
			if i != flaggedChip {
				rec.Xor(st.Chips[i].Data)
				dram.OrChipInto(s.org, dst, i, st.Chips[i].Data)
			}
		}
		dram.OrChipInto(s.org, dst, flaggedChip, rec)
		s.rec.Put(rec)
		return ClaimCorrected
	default:
		for i := 0; i < nData; i++ {
			dram.OrChipInto(s.org, dst, i, st.Chips[i].Data)
		}
		return ClaimDetected
	}
}

// StorageOverhead implements Scheme: 6.25% on-die detector bits on every
// stored access (data and parity) plus the inline parity region, one
// parity access per ChipsPerRank data accesses.
func (s *XED) StorageOverhead() float64 {
	onDie := s.code.StorageOverhead()
	inline := 1.0 / float64(s.org.ChipsPerRank) * (1.0 + onDie)
	return onDie + inline
}

// Cost implements Scheme. Every line write must also write the inline
// parity image (computable from the new data, so no read is needed for
// full-line writes); masked writes additionally read the old line. The
// catch-word reconstruction path re-reads the parity image, which only
// matters in degraded mode and defaults to 0.
func (s *XED) Cost() AccessCost {
	return AccessCost{
		DecodeLatencyNS:          1.0,
		ExtraWritesPerWrite:      1.0,
		ExtraReadsPerMaskedWrite: 1.0,
	}
}

// EncodeBatchInto implements BatchScheme: XED's per-chip parity is plain
// XOR with no shared codec state worth batching, so the batch calls are
// the defining loop.
func (s *XED) EncodeBatchInto(sts []*Stored, lines [][]byte) { loopEncodeBatch(s, sts, lines) }

// DecodeBatchInto implements BatchScheme.
func (s *XED) DecodeBatchInto(dst [][]byte, sts []*Stored, claims []Claim) {
	loopDecodeBatch(s, dst, sts, claims)
}
