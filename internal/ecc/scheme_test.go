package ecc

import (
	"bytes"
	"math/rand"
	"testing"

	"pair/internal/dram"
	"pair/internal/faults"
)

// schemesUnderTest returns every baseline scheme in this package.
func schemesUnderTest() []Scheme {
	return []Scheme{
		NewNone(dram.DDR4x16()),
		NewIECC(dram.DDR4x16()),
		NewXED(dram.DDR4x16()),
		NewDUO(dram.DDR4x16()),
		NewSECDED(dram.DDR4x8ECC()),
	}
}

func randLine(rng *rand.Rand, n int) []byte {
	line := make([]byte, n)
	rng.Read(line)
	return line
}

func TestClaimAndOutcomeStrings(t *testing.T) {
	for _, c := range []Claim{ClaimClean, ClaimCorrected, ClaimDetected, Claim(9)} {
		if c.String() == "" {
			t.Fatal("empty claim string")
		}
	}
	for _, o := range []Outcome{OutcomeOK, OutcomeCE, OutcomeDUE, OutcomeSDC, Outcome(9)} {
		if o.String() == "" {
			t.Fatal("empty outcome string")
		}
	}
}

func TestClassify(t *testing.T) {
	g := []byte{1, 2, 3}
	same := []byte{1, 2, 3}
	diff := []byte{1, 2, 4}
	cases := []struct {
		decoded []byte
		claim   Claim
		want    Outcome
	}{
		{same, ClaimClean, OutcomeOK},
		{same, ClaimCorrected, OutcomeCE},
		{diff, ClaimClean, OutcomeSDC},
		{diff, ClaimCorrected, OutcomeSDC},
		{same, ClaimDetected, OutcomeDUE},
		{diff, ClaimDetected, OutcomeDUE},
	}
	for i, c := range cases {
		if got := Classify(g, c.decoded, c.claim); got != c.want {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
	}
	if !OutcomeDUE.IsFailure() || !OutcomeSDC.IsFailure() || OutcomeOK.IsFailure() || OutcomeCE.IsFailure() {
		t.Fatal("IsFailure misclassifies")
	}
}

func TestAllSchemesCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range schemesUnderTest() {
		for trial := 0; trial < 20; trial++ {
			line := randLine(rng, s.Org().LineBytes())
			decoded, claim := s.Decode(s.Encode(line))
			if claim != ClaimClean {
				t.Fatalf("%s: clean image claimed %v", s.Name(), claim)
			}
			if !bytes.Equal(decoded, line) {
				t.Fatalf("%s: clean round trip corrupted data", s.Name())
			}
		}
	}
}

func TestAllSchemesStoredCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range schemesUnderTest() {
		line := randLine(rng, s.Org().LineBytes())
		st := s.Encode(line)
		cl := st.Clone()
		InjectAccessFault(rng, cl, faults.PermanentWord, 0)
		decoded, claim := s.Decode(st)
		if claim != ClaimClean || !bytes.Equal(decoded, line) {
			t.Fatalf("%s: corrupting a clone affected the original", s.Name())
		}
	}
}

func TestSingleCellCorrectedByAllCorrectingSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range schemesUnderTest() {
		if s.Name() == "none" {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			line := randLine(rng, s.Org().LineBytes())
			st := s.Encode(line)
			InjectAccessFault(rng, st, faults.PermanentCell, -1)
			decoded, claim := s.Decode(st)
			out := Classify(line, decoded, claim)
			if out != OutcomeCE && out != OutcomeOK {
				t.Fatalf("%s: single cell -> %v (claim %v)", s.Name(), out, claim)
			}
		}
	}
}

func TestNoneSchemePassesErrorsThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewNone(dram.DDR4x16())
	line := randLine(rng, 64)
	st := s.Encode(line)
	InjectAccessFault(rng, st, faults.PermanentCell, -1)
	decoded, claim := s.Decode(st)
	if Classify(line, decoded, claim) != OutcomeSDC {
		t.Fatal("none scheme must pass corruption as SDC")
	}
	if s.StorageOverhead() != 0 {
		t.Fatal("none scheme has overhead")
	}
}

func TestIECCDoubleCellHazard(t *testing.T) {
	// Two cells in the same chip access: SEC must never return OK-claimed
	// wrong data without activity, but it does miscorrect — the hazard the
	// paper targets. Verify both SDC and DUE occur across trials.
	rng := rand.New(rand.NewSource(5))
	s := NewIECC(dram.DDR4x16())
	counts := map[Outcome]int{}
	for trial := 0; trial < 1500; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		// Two distinct bit flips in chip 0's stored image.
		InjectAccessFault(rng, st, faults.PermanentCell, 0)
		InjectAccessFault(rng, st, faults.PermanentCell, 0)
		decoded, claim := s.Decode(st)
		counts[Classify(line, decoded, claim)]++
	}
	if counts[OutcomeSDC] == 0 {
		t.Fatal("IECC never miscorrected double cells — hazard not modeled")
	}
	if counts[OutcomeDUE] == 0 {
		t.Fatal("IECC never detected double cells")
	}
	t.Logf("IECC double-cell outcomes: %v", counts)
}

func TestXEDSingleChipGarbageMostlyCorrected(t *testing.T) {
	// One chip returning garbage: on-die detector flags it (syndrome != 0
	// with prob ~255/256) and XED reconstructs from parity.
	rng := rand.New(rand.NewSource(6))
	s := NewXED(dram.DDR4x16())
	ok := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		InjectAccessFault(rng, st, faults.PermanentWord, 1)
		decoded, claim := s.Decode(st)
		if out := Classify(line, decoded, claim); out == OutcomeCE {
			ok++
		}
	}
	if float64(ok)/trials < 0.95 {
		t.Fatalf("XED reconstructed only %d/%d single-chip garbage accesses", ok, trials)
	}
}

func TestXEDTwoChipErrorsDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewXED(dram.DDR4x16())
	due := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		InjectAccessFault(rng, st, faults.PermanentCell, 0)
		InjectAccessFault(rng, st, faults.PermanentCell, 1)
		_, claim := s.Decode(st)
		if claim == ClaimDetected {
			due++
		}
	}
	// Cell faults may land in the on-die region and still be detected;
	// two flagged chips must be the overwhelmingly common outcome.
	if float64(due)/trials < 0.95 {
		t.Fatalf("XED detected only %d/%d two-chip errors", due, trials)
	}
}

func TestXEDAliasedPatternIsSDC(t *testing.T) {
	// Corrupt chip 0 with a pattern that IS a codeword of the detector:
	// XOR a valid nonzero codeword into (data||ondie). Detection must
	// miss and the read returns wrong data claimed clean.
	rng := rand.New(rand.NewSource(8))
	s := NewXED(dram.DDR4x16())
	line := randLine(rng, 64)
	st := s.Encode(line)

	// Build an aliasing pattern from the detector's own code: encode a
	// random nonzero data pattern.
	alias := dram.NewBurst(16, 8)
	alias.Set(3, 2, true)
	alias.Set(5, 6, true)
	cw := s.code.Encode(alias.Bits())
	ci := st.Chips[0]
	ci.Data.Xor(alias)
	for j := 0; j < s.code.M; j++ {
		if cw.Get(s.code.K + j) {
			ci.OnDie.Flip(j)
		}
	}
	decoded, claim := s.Decode(st)
	if Classify(line, decoded, claim) != OutcomeSDC {
		t.Fatalf("aliased pattern gave %v/%v, want SDC", claim, Classify(line, decoded, claim))
	}
}

func TestDUOPinFaultOverwhelmed(t *testing.T) {
	// A pin fault smears across up to 8 beat-aligned symbols: DUO's t=1
	// decoder must fail (DUE or SDC) on virtually all pin faults with >1
	// flipped beat. This is the structural contrast with PAIR.
	rng := rand.New(rand.NewSource(9))
	s := NewDUO(dram.DDR4x16())
	failed, corrected := 0, 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		InjectAccessFault(rng, st, faults.PermanentPin, 0)
		decoded, claim := s.Decode(st)
		switch Classify(line, decoded, claim) {
		case OutcomeCE:
			corrected++ // single-beat flip: one symbol, correctable
		case OutcomeDUE, OutcomeSDC:
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("DUO corrected every pin fault — beat alignment not modeled")
	}
	// P(pin fault flips exactly 1 of 8 beats) = 8/(2^8-1) ~ 3.1%; allow
	// generous slack but the failure rate must dominate.
	if float64(failed)/trials < 0.80 {
		t.Fatalf("DUO failed only %d/%d pin faults", failed, trials)
	}
	t.Logf("DUO pin faults: %d failed, %d corrected (single-beat)", failed, corrected)
}

func TestDUOSingleSymbolErrorsCorrected(t *testing.T) {
	// Errors confined to one beat-aligned byte are DUO's good case.
	rng := rand.New(rand.NewSource(10))
	s := NewDUO(dram.DDR4x16())
	for trial := 0; trial < 300; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		// Flip 1..8 bits of one byte group in one beat of chip 2.
		ci := st.Chips[2]
		beat := rng.Intn(8)
		grp := rng.Intn(2)
		nb := 1 + rng.Intn(8)
		for _, b := range rng.Perm(8)[:nb] {
			ci.Data.Flip(grp*8+b, beat)
		}
		decoded, claim := s.Decode(st)
		if out := Classify(line, decoded, claim); out != OutcomeCE {
			t.Fatalf("DUO single-symbol error -> %v", out)
		}
	}
}

func TestSECDEDBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSECDED(dram.DDR4x8ECC())
	// Single bit per beat codeword: corrected.
	for trial := 0; trial < 100; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		st.Chips[rng.Intn(8)].Data.Flip(rng.Intn(8), rng.Intn(8))
		decoded, claim := s.Decode(st)
		if out := Classify(line, decoded, claim); out != OutcomeCE {
			t.Fatalf("SECDED single bit -> %v", out)
		}
	}
	// Two bits in the same beat across chips: detected.
	for trial := 0; trial < 100; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		beat := rng.Intn(8)
		st.Chips[0].Data.Flip(rng.Intn(8), beat)
		st.Chips[1].Data.Flip(rng.Intn(8), beat)
		_, claim := s.Decode(st)
		if claim != ClaimDetected {
			t.Fatalf("SECDED double bit in one beat -> %v", claim)
		}
	}
}

func TestStorageOverheads(t *testing.T) {
	x16 := dram.DDR4x16()
	if got := NewIECC(x16).StorageOverhead(); got != 8.0/128.0 {
		t.Fatalf("IECC overhead %v", got)
	}
	if got := NewDUO(x16).StorageOverhead(); got != 16.0/128.0 {
		t.Fatalf("DUO overhead %v", got)
	}
	xed := NewXED(x16).StorageOverhead()
	if xed <= 0.25 || xed > 0.35 {
		t.Fatalf("XED overhead %v out of expected band (inline parity + detector)", xed)
	}
	if got := NewSECDED(dram.DDR4x8ECC()).StorageOverhead(); got != 0.125 {
		t.Fatalf("SECDED overhead %v", got)
	}
}

func TestCostShapes(t *testing.T) {
	x16 := dram.DDR4x16()
	if c := NewDUO(x16).Cost(); c.ExtraReadBeats != 1 || c.ExtraWriteBeats != 1 {
		t.Fatal("DUO must extend bursts")
	}
	if c := NewXED(x16).Cost(); c.ExtraWritesPerWrite != 1.0 {
		t.Fatal("XED must write the inline parity image")
	}
	if c := NewNone(x16).Cost(); c != (AccessCost{}) {
		t.Fatal("none scheme must be free")
	}
}

func TestInjectInherentCountsAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := NewIECC(dram.DDR4x16())
	st := s.Encode(make([]byte, 64))
	if InjectInherent(rng, st, 0) != 0 {
		t.Fatal("BER 0 flipped bits")
	}
	n := InjectInherent(rng, st, 1.0)
	if n != st.TotalBits() {
		t.Fatalf("BER 1 flipped %d of %d bits", n, st.TotalBits())
	}
}

func TestStoredTotalBits(t *testing.T) {
	// IECC on x16: 4 chips x (128 data + 8 on-die) = 544.
	s := NewIECC(dram.DDR4x16())
	if got := s.Encode(make([]byte, 64)).TotalBits(); got != 544 {
		t.Fatalf("IECC stored bits %d, want 544", got)
	}
	// DUO: 4 x (128 + 16 transferred) = 576.
	d := NewDUO(dram.DDR4x16())
	if got := d.Encode(make([]byte, 64)).TotalBits(); got != 576 {
		t.Fatalf("DUO stored bits %d, want 576", got)
	}
}
