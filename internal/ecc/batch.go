package ecc

import "fmt"

// BatchScheme is the slab fast path a BufferedScheme may offer for
// Monte-Carlo campaigns: encode or decode a batch of images in one call,
// letting codec-heavy schemes amortize their work into word-parallel
// passes (see internal/rs's slab codec). The results are defined to be
// identical, image by image, to a loop over EncodeInto/DecodeInto —
// schemes whose structure has nothing to batch simply implement the
// methods as that loop.
//
// Ownership rules match BufferedScheme: the caller owns every buffer,
// images and lines are overwritten entirely, and no references are
// retained. Implementations keep their batch scratch in an internal
// sync.Pool, so a single scheme value stays safe for concurrent use.
type BatchScheme interface {
	BufferedScheme
	// EncodeBatchInto rebuilds sts[i] from lines[i] for every i.
	// len(sts) must equal len(lines).
	EncodeBatchInto(sts []*Stored, lines [][]byte)
	// DecodeBatchInto recovers dst[i] (Org().LineBytes() bytes) from
	// sts[i] and reports the decoder's claim in claims[i], for every i.
	// dst, sts and claims must have equal lengths.
	DecodeBatchInto(dst [][]byte, sts []*Stored, claims []Claim)
}

// CheckEncodeBatchArgs validates the length invariants of EncodeBatchInto.
func CheckEncodeBatchArgs(sts []*Stored, lines [][]byte) {
	if len(sts) != len(lines) {
		panic(fmt.Sprintf("ecc: EncodeBatchInto length mismatch: %d images, %d lines", len(sts), len(lines)))
	}
}

// CheckDecodeBatchArgs validates the length invariants of DecodeBatchInto.
func CheckDecodeBatchArgs(dst [][]byte, sts []*Stored, claims []Claim) {
	if len(dst) != len(sts) || len(claims) != len(sts) {
		panic(fmt.Sprintf("ecc: DecodeBatchInto length mismatch: %d lines, %d images, %d claims", len(dst), len(sts), len(claims)))
	}
}

// loopEncodeBatch implements EncodeBatchInto as the defining per-image
// loop, for schemes with no cross-image work to batch.
func loopEncodeBatch(s BufferedScheme, sts []*Stored, lines [][]byte) {
	CheckEncodeBatchArgs(sts, lines)
	for i, st := range sts {
		s.EncodeInto(st, lines[i])
	}
}

// loopDecodeBatch implements DecodeBatchInto as the defining per-image
// loop, for schemes with no cross-image work to batch.
func loopDecodeBatch(s BufferedScheme, dst [][]byte, sts []*Stored, claims []Claim) {
	CheckDecodeBatchArgs(dst, sts, claims)
	for i, st := range sts {
		claims[i] = s.DecodeInto(dst[i], st)
	}
}

// PadBatchWidth rounds an image count up to a valid slab width (the slab
// layout wants a multiple of 8; padding codewords are zero and decode
// clean).
func PadBatchWidth(n int) int { return (n + 7) &^ 7 }
