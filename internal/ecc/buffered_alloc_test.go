// The scheme scratch pools are sync.Pools, and the race detector randomly
// drops Pool.Put items, so the zero-allocation guarantee only holds in
// normal builds.
//go:build !race

package ecc

import (
	"math/rand"
	"testing"
)

// TestBufferedSchemeAllocs pins the encode+decode steady state at zero
// allocations per trial for every buffered scheme.
func TestBufferedSchemeAllocs(t *testing.T) {
	for _, s := range bufferedSchemesUnderTest() {
		t.Run(s.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			line := randLine(rng, s.Org().LineBytes())
			st := s.NewStored()
			dst := make([]byte, len(line))
			s.EncodeInto(st, line) // warm the scratch pools
			s.DecodeInto(dst, st)
			if n := testing.AllocsPerRun(200, func() {
				s.EncodeInto(st, line)
				s.DecodeInto(dst, st)
			}); n != 0 {
				t.Fatalf("EncodeInto+DecodeInto allocated %.1f/op, want 0", n)
			}
		})
	}
}
