package ecc

import (
	"pair/internal/bitvec"
	"pair/internal/dram"
	"pair/internal/hamming"
)

// IECC is conventional In-DRAM ECC: each chip protects its 128-bit access
// with a (136,128) single-error-correcting Hamming code whose 8 check bits
// live in the on-die redundancy region and never cross the pins.
//
// This is the scheme the paper's abstract criticizes: a SEC code
// miscorrects most multi-bit patterns (silent data corruption) and offers
// no structure against pin or burst faults.
type IECC struct {
	org  dram.Organization
	code *hamming.Code
}

// NewIECC returns conventional on-die ECC on the given organization.
func NewIECC(org dram.Organization) *IECC {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	return &IECC{org: org, code: hamming.MustSEC(org.AccessBits())}
}

// Name implements Scheme.
func (s *IECC) Name() string { return "iecc" }

// Org implements Scheme.
func (s *IECC) Org() dram.Organization { return s.org }

// NewStored implements BufferedScheme.
func (s *IECC) NewStored() *Stored {
	st := &Stored{Org: s.org, Chips: make([]*ChipImage, s.org.ChipsPerRank)}
	for i := range st.Chips {
		st.Chips[i] = &ChipImage{
			Data:  dram.NewBurst(s.org.Pins, s.org.BurstLen),
			OnDie: bitvec.New(s.code.M),
		}
	}
	return st
}

// Encode implements Scheme.
func (s *IECC) Encode(line []byte) *Stored {
	st := s.NewStored()
	s.EncodeInto(st, line)
	return st
}

// EncodeInto implements BufferedScheme. The codeword is systematic and the
// burst's bit vector is exactly the data half, so the on-die region is
// just the check bits of the burst.
func (s *IECC) EncodeInto(st *Stored, line []byte) {
	for i, ci := range st.Chips {
		dram.SplitChipInto(s.org, line, i, ci.Data)
		ck := s.code.CheckBits(ci.Data.Bits())
		ci.OnDie.Clear()
		ci.OnDie.OrBits(0, uint64(ck), s.code.M)
	}
}

// Decode implements Scheme. Each chip decodes independently inside the
// die; the controller sees only the (possibly miscorrected) data.
func (s *IECC) Decode(st *Stored) ([]byte, Claim) {
	line := make([]byte, s.org.LineBytes())
	return line, s.DecodeInto(line, st)
}

// DecodeInto implements BufferedScheme. The syndrome of the (data,
// on-die check) pair is CheckBits(data) XOR storedCheck, so no N-bit word
// is assembled; a data-bit correction lands directly in the line buffer.
func (s *IECC) DecodeInto(dst []byte, st *Stored) Claim {
	for i := range dst {
		dst[i] = 0
	}
	claim := ClaimClean
	busWidth := s.org.ChipsPerRank * s.org.Pins
	for i, ci := range st.Chips {
		dram.OrChipInto(s.org, dst, i, ci.Data)
		syn := s.code.CheckBits(ci.Data.Bits()) ^ uint16(ci.OnDie.GetBits(0, s.code.M))
		pos, outcome := s.code.DecodeSyndrome(syn)
		switch outcome {
		case hamming.Detected:
			claim = ClaimDetected
		case hamming.Corrected:
			if claim != ClaimDetected {
				claim = ClaimCorrected
			}
			if pos < s.code.K {
				// Data-bit flip: burst bit pos is (pin pos%Pins, beat
				// pos/Pins), i.e. line bit beat*busWidth + chip*Pins + pin.
				bit := (pos/s.org.Pins)*busWidth + i*s.org.Pins + pos%s.org.Pins
				dst[bit/8] ^= 1 << (bit % 8)
			}
		}
	}
	return claim
}

// StorageOverhead implements Scheme: 8/128 = 6.25%.
func (s *IECC) StorageOverhead() float64 { return s.code.StorageOverhead() }

// Cost implements Scheme. The in-die decoder adds a fixed latency to
// reads; masked writes trigger an internal read-modify-write that is
// invisible on the bus but stretches the write recovery inside the die —
// modelled as an additional read issued at a low rate (the die's internal
// column cycle), matching vendor-reported IECC write penalties.
func (s *IECC) Cost() AccessCost {
	return AccessCost{
		DecodeLatencyNS:          2.0,
		ExtraReadsPerMaskedWrite: 1.0,
	}
}

// EncodeBatchInto implements BatchScheme: the per-access Hamming words
// are too short for the slab codec to pay off, so the batch calls are
// the defining loop.
func (s *IECC) EncodeBatchInto(sts []*Stored, lines [][]byte) { loopEncodeBatch(s, sts, lines) }

// DecodeBatchInto implements BatchScheme.
func (s *IECC) DecodeBatchInto(dst [][]byte, sts []*Stored, claims []Claim) {
	loopDecodeBatch(s, dst, sts, claims)
}
