package ecc

import (
	"pair/internal/bitvec"
	"pair/internal/dram"
	"pair/internal/hamming"
)

// IECC is conventional In-DRAM ECC: each chip protects its 128-bit access
// with a (136,128) single-error-correcting Hamming code whose 8 check bits
// live in the on-die redundancy region and never cross the pins.
//
// This is the scheme the paper's abstract criticizes: a SEC code
// miscorrects most multi-bit patterns (silent data corruption) and offers
// no structure against pin or burst faults.
type IECC struct {
	org  dram.Organization
	code *hamming.Code
}

// NewIECC returns conventional on-die ECC on the given organization.
func NewIECC(org dram.Organization) *IECC {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	return &IECC{org: org, code: hamming.MustSEC(org.AccessBits())}
}

// Name implements Scheme.
func (s *IECC) Name() string { return "iecc" }

// Org implements Scheme.
func (s *IECC) Org() dram.Organization { return s.org }

// Encode implements Scheme.
func (s *IECC) Encode(line []byte) *Stored {
	bursts := dram.SplitLine(s.org, line)
	st := &Stored{Org: s.org, Chips: make([]*ChipImage, len(bursts))}
	for i, b := range bursts {
		cw := s.code.Encode(b.Bits())
		onDie := bitvec.New(s.code.M)
		for j := 0; j < s.code.M; j++ {
			onDie.Set(j, cw.Get(s.code.K+j))
		}
		st.Chips[i] = &ChipImage{Data: b, OnDie: onDie}
	}
	return st
}

// Decode implements Scheme. Each chip decodes independently inside the
// die; the controller sees only the (possibly miscorrected) data.
func (s *IECC) Decode(st *Stored) ([]byte, Claim) {
	claim := ClaimClean
	bursts := make([]*dram.Burst, len(st.Chips))
	for i, ci := range st.Chips {
		word := bitvec.New(s.code.N)
		for j := 0; j < s.code.K; j++ {
			word.Set(j, ci.Data.Bits().Get(j))
		}
		for j := 0; j < s.code.M; j++ {
			word.Set(s.code.K+j, ci.OnDie.Get(j))
		}
		corrected, outcome := s.code.Decode(word)
		switch outcome {
		case hamming.Detected:
			claim = ClaimDetected
		case hamming.Corrected:
			if claim != ClaimDetected {
				claim = ClaimCorrected
			}
		}
		b := dram.NewBurst(s.org.Pins, s.org.BurstLen)
		for j := 0; j < s.code.K; j++ {
			if corrected.Get(j) {
				b.Set(j%s.org.Pins, j/s.org.Pins, true)
			}
		}
		bursts[i] = b
	}
	return dram.JoinLine(s.org, bursts), claim
}

// StorageOverhead implements Scheme: 8/128 = 6.25%.
func (s *IECC) StorageOverhead() float64 { return s.code.StorageOverhead() }

// Cost implements Scheme. The in-die decoder adds a fixed latency to
// reads; masked writes trigger an internal read-modify-write that is
// invisible on the bus but stretches the write recovery inside the die —
// modelled as an additional read issued at a low rate (the die's internal
// column cycle), matching vendor-reported IECC write penalties.
func (s *IECC) Cost() AccessCost {
	return AccessCost{
		DecodeLatencyNS:          2.0,
		ExtraReadsPerMaskedWrite: 1.0,
	}
}
