package ecc

import (
	"bytes"
	"sync"

	"pair/internal/dram"
	"pair/internal/rs"
)

// DUORank models DUO in its *original* habitat (Gong et al., HPCA 2018):
// a nine-chip x8 ECC DIMM where every chip's 8 on-die redundancy bits per
// 64-bit access are forwarded to the controller on a burst-extension
// beat, and the controller assembles one long rank-level Reed-Solomon
// codeword per access:
//
//	64 data symbols   (8 data chips x 8 beat-aligned byte symbols)
//	 8 parity symbols (the ECC chip's data beats)
//	 9 parity symbols (each chip's forwarded on-die redundancy)
//	=> RS(81,64), t = 8
//
// That is strong enough to stomach a whole-chip failure — but only via
// *erasure* decoding: a dead chip contributes nine bad symbols, one more
// than t. The decoder therefore retries chip-erasure hypotheses after a
// failed direct decode (DUO's degraded-mode story); hypotheses that
// decode successfully but disagree with each other are reported as DUE
// rather than guessed between.
//
// Included alongside the commodity `duo` adaptation so the study shows
// both ends: the rank-level original (strong against chip-grain faults,
// still beat-aligned) and the in-DRAM-budget adaptation the abstract's
// comparison implies.
type DUORank struct {
	org      dram.Organization
	code     *rs.Code
	erasures [][]int   // per-chip erasure hypothesis, built once
	scratch  sync.Pool // *duoRankScratch
}

// duoRankScratch is the per-goroutine decode workspace: a scalar RS
// decoder plus the assembled and corrected codeword buffers, so the retry
// loop reuses one decode state across all chip hypotheses.
type duoRankScratch struct {
	dec       *rs.Decoder
	word      []byte
	corrected []byte
}

// NewDUORank returns the rank-level DUO scheme; the organization must be
// the nine-chip x8 ECC DIMM.
func NewDUORank(org dram.Organization) *DUORank {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	if org.Pins != 8 || org.ECCChips != 1 {
		panic("ecc: DUORank requires a 9-chip x8 ECC DIMM organization")
	}
	n := org.TotalChips()*org.BurstLen + org.TotalChips() // 72 beat symbols + 9 forwarded
	k := org.ChipsPerRank * org.BurstLen                  // 64 data symbols
	s := &DUORank{org: org, code: rs.MustNew(n, k)}
	s.erasures = make([][]int, org.TotalChips())
	for c := range s.erasures {
		s.erasures[c] = s.chipErasures(c)
	}
	s.scratch.New = func() any {
		return &duoRankScratch{
			dec:       s.code.NewDecoder(),
			word:      make([]byte, s.code.N),
			corrected: make([]byte, s.code.N),
		}
	}
	return s
}

// Name implements Scheme.
func (s *DUORank) Name() string { return "duo-rank" }

// Org implements Scheme.
func (s *DUORank) Org() dram.Organization { return s.org }

// symbolsPerChip returns data-beat symbols per chip (the burst length).
func (s *DUORank) symbolsPerChip() int { return s.org.BurstLen }

// Encode implements Scheme. Chips[0..7] are data chips; Chips[8] is the
// ECC chip. Each chip's Xfer burst (8 pins x 1 beat) carries one parity
// symbol; the ECC chip's data beats carry eight more.
func (s *DUORank) Encode(line []byte) *Stored {
	bursts := dram.SplitLine(s.org, line)
	nChips := s.org.TotalChips()
	msg := make([]byte, s.code.K)
	for c, b := range bursts {
		for beat := 0; beat < s.org.BurstLen; beat++ {
			msg[c*s.org.BurstLen+beat] = b.BeatByte(beat, 0)
		}
	}
	cw := s.code.Encode(msg)
	parity := cw[s.code.K:] // 17 symbols

	st := &Stored{Org: s.org, Chips: make([]*ChipImage, nChips)}
	for c, b := range bursts {
		xfer := dram.NewBurst(s.org.Pins, 1)
		xfer.SetBeatByte(0, 0, parity[8+c])
		st.Chips[c] = &ChipImage{Data: b, Xfer: xfer}
	}
	eccData := dram.NewBurst(s.org.Pins, s.org.BurstLen)
	for beat := 0; beat < s.org.BurstLen; beat++ {
		eccData.SetBeatByte(beat, 0, parity[beat])
	}
	eccXfer := dram.NewBurst(s.org.Pins, 1)
	eccXfer.SetBeatByte(0, 0, parity[16])
	st.Chips[nChips-1] = &ChipImage{Data: eccData, Xfer: eccXfer}
	return st
}

// assembleInto builds the 81-symbol received word from a stored image.
func (s *DUORank) assembleInto(word []byte, st *Stored) {
	nChips := s.org.TotalChips()
	for c := 0; c < s.org.ChipsPerRank; c++ {
		for beat := 0; beat < s.org.BurstLen; beat++ {
			word[c*s.org.BurstLen+beat] = st.Chips[c].Data.BeatByte(beat, 0)
		}
	}
	ecc := st.Chips[nChips-1]
	for beat := 0; beat < s.org.BurstLen; beat++ {
		word[s.code.K+beat] = ecc.Data.BeatByte(beat, 0)
	}
	for c := 0; c < nChips; c++ {
		word[s.code.K+8+c] = st.Chips[c].Xfer.BeatByte(0, 0)
	}
}

// chipErasures returns the symbol positions chip c occupies in the
// codeword (its data/parity beats plus its forwarded symbol).
func (s *DUORank) chipErasures(c int) []int {
	out := make([]int, 0, s.org.BurstLen+1)
	if c < s.org.ChipsPerRank {
		for beat := 0; beat < s.org.BurstLen; beat++ {
			out = append(out, c*s.org.BurstLen+beat)
		}
	} else {
		for beat := 0; beat < s.org.BurstLen; beat++ {
			out = append(out, s.code.K+beat)
		}
	}
	return append(out, s.code.K+8+c)
}

// Decode implements Scheme: direct decode first; on failure, retry under
// each single-chip erasure hypothesis and accept only a unanimous answer.
func (s *DUORank) Decode(st *Stored) ([]byte, Claim) {
	scr := s.scratch.Get().(*duoRankScratch)
	defer s.scratch.Put(scr)
	word := scr.word
	s.assembleInto(word, st)
	if nerr, err := scr.dec.DecodeInto(scr.corrected, word, nil); err == nil {
		claim := ClaimClean
		if nerr > 0 {
			claim = ClaimCorrected
		}
		return s.extract(scr.corrected), claim
	}
	// Chip-erasure hypotheses (degraded mode).
	var agreed []byte
	for c := 0; c < s.org.TotalChips(); c++ {
		if _, err := scr.dec.DecodeInto(scr.corrected, word, s.erasures[c]); err != nil {
			continue
		}
		data := s.extract(scr.corrected)
		if agreed == nil {
			agreed = data
		} else if !bytes.Equal(agreed, data) {
			return s.extract(word), ClaimDetected
		}
	}
	if agreed != nil {
		return agreed, ClaimCorrected
	}
	return s.extract(word), ClaimDetected
}

// extract rebuilds the cache line from the data symbols of a codeword.
func (s *DUORank) extract(cw []byte) []byte {
	bursts := make([]*dram.Burst, s.org.ChipsPerRank)
	for c := range bursts {
		b := dram.NewBurst(s.org.Pins, s.org.BurstLen)
		for beat := 0; beat < s.org.BurstLen; beat++ {
			b.SetBeatByte(beat, 0, cw[c*s.org.BurstLen+beat])
		}
		bursts[c] = b
	}
	return dram.JoinLine(s.org, bursts)
}

// StorageOverhead implements Scheme: the ninth chip plus every chip's
// on-die redundancy region, per data bit.
func (s *DUORank) StorageOverhead() float64 {
	perChipOnDie := float64(s.org.Pins) // 8 bits per 64-bit access
	dataBits := float64(s.org.ChipsPerRank) * float64(s.org.AccessBits())
	redundancy := float64(s.org.AccessBits()) + // ECC chip data beats
		perChipOnDie*float64(s.org.TotalChips()) // forwarded symbols
	return redundancy / dataBits
}

// Cost implements Scheme: burst extension on the 72-bit bus plus a long
// rank-level decode.
func (s *DUORank) Cost() AccessCost {
	return AccessCost{
		ExtraReadBeats:           1,
		ExtraWriteBeats:          1,
		DecodeLatencyNS:          6.0,
		ExtraReadsPerMaskedWrite: 1.0,
	}
}
