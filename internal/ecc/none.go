package ecc

import "pair/internal/dram"

// None is the unprotected baseline: data is stored as-is and every read is
// believed clean. It anchors both the reliability floor and the
// performance ceiling (normalization target of the paper's Figure 4).
type None struct {
	org dram.Organization
}

// NewNone returns the unprotected scheme on the given organization.
func NewNone(org dram.Organization) *None {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	return &None{org: org}
}

// Name implements Scheme.
func (n *None) Name() string { return "none" }

// Org implements Scheme.
func (n *None) Org() dram.Organization { return n.org }

// Encode implements Scheme.
func (n *None) Encode(line []byte) *Stored {
	bursts := dram.SplitLine(n.org, line)
	st := &Stored{Org: n.org, Chips: make([]*ChipImage, len(bursts))}
	for i, b := range bursts {
		st.Chips[i] = &ChipImage{Data: b}
	}
	return st
}

// Decode implements Scheme.
func (n *None) Decode(st *Stored) ([]byte, Claim) {
	bursts := make([]*dram.Burst, len(st.Chips))
	for i, ci := range st.Chips {
		bursts[i] = ci.Data
	}
	return dram.JoinLine(n.org, bursts), ClaimClean
}

// StorageOverhead implements Scheme.
func (n *None) StorageOverhead() float64 { return 0 }

// Cost implements Scheme.
func (n *None) Cost() AccessCost { return AccessCost{} }
