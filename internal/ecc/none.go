package ecc

import "pair/internal/dram"

// None is the unprotected baseline: data is stored as-is and every read is
// believed clean. It anchors both the reliability floor and the
// performance ceiling (normalization target of the paper's Figure 4).
type None struct {
	org dram.Organization
}

// NewNone returns the unprotected scheme on the given organization.
func NewNone(org dram.Organization) *None {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	return &None{org: org}
}

// Name implements Scheme.
func (n *None) Name() string { return "none" }

// Org implements Scheme.
func (n *None) Org() dram.Organization { return n.org }

// NewStored implements BufferedScheme.
func (n *None) NewStored() *Stored {
	st := &Stored{Org: n.org, Chips: make([]*ChipImage, n.org.ChipsPerRank)}
	for i := range st.Chips {
		st.Chips[i] = &ChipImage{Data: dram.NewBurst(n.org.Pins, n.org.BurstLen)}
	}
	return st
}

// Encode implements Scheme.
func (n *None) Encode(line []byte) *Stored {
	st := n.NewStored()
	n.EncodeInto(st, line)
	return st
}

// EncodeInto implements BufferedScheme.
func (n *None) EncodeInto(st *Stored, line []byte) {
	for i, ci := range st.Chips {
		dram.SplitChipInto(n.org, line, i, ci.Data)
	}
}

// Decode implements Scheme.
func (n *None) Decode(st *Stored) ([]byte, Claim) {
	line := make([]byte, n.org.LineBytes())
	return line, n.DecodeInto(line, st)
}

// DecodeInto implements BufferedScheme.
func (n *None) DecodeInto(dst []byte, st *Stored) Claim {
	for i := range dst {
		dst[i] = 0
	}
	for i, ci := range st.Chips {
		dram.OrChipInto(n.org, dst, i, ci.Data)
	}
	return ClaimClean
}

// StorageOverhead implements Scheme.
func (n *None) StorageOverhead() float64 { return 0 }

// Cost implements Scheme.
func (n *None) Cost() AccessCost { return AccessCost{} }

// EncodeBatchInto implements BatchScheme: pass-through storage has no
// codec work to batch, so the batch calls are the defining loop.
func (n *None) EncodeBatchInto(sts []*Stored, lines [][]byte) { loopEncodeBatch(n, sts, lines) }

// DecodeBatchInto implements BatchScheme.
func (n *None) DecodeBatchInto(dst [][]byte, sts []*Stored, claims []Claim) {
	loopDecodeBatch(n, dst, sts, claims)
}
