package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pair/internal/failpoint"
)

// fastClientOptions keeps retry sleeps out of the test wall clock.
func fastClientOptions() ClientOptions {
	return ClientOptions{
		Retries:   4,
		RetryBase: time.Millisecond,
		RetryMax:  4 * time.Millisecond,
	}
}

// startCoordServer boots a journal-less coordinator behind a
// request-counting httptest server.
func startCoordServer(t *testing.T, opts CoordinatorOptions) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		coord.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &requests
}

func singleShardSpec() JobSpec {
	return JobSpec{
		Namespace: testNamespace,
		Schemes:   []string{"none"},
		Scenarios: []string{"cell"},
		Trials:    testShardSize,
		ShardSize: testShardSize,
		Seed:      testSeed,
	}
}

// TestClientRetriesTransientServerFaults: 500s from the coordinator are
// absorbed by the retry budget; the caller sees only the eventual
// success.
func TestClientRetriesTransientServerFaults(t *testing.T) {
	defer failpoint.Reset()
	srv, requests := startCoordServer(t, CoordinatorOptions{})
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx := context.Background()

	id, err := client.Submit(ctx, singleShardSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	failpoint.Arm(FailpointCoordRequest, failpoint.Action{Err: errors.New("transient"), Times: 2})
	requests.Store(0)
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status with 2 injected 500s: %v", err)
	}
	if st.ID != id {
		t.Fatalf("status returned job %q, want %q", st.ID, id)
	}
	if n := requests.Load(); n != 3 {
		t.Errorf("status took %d requests, want 3 (two 500s + success)", n)
	}
}

// TestClientRetriesDroppedRequests: a connection aborted before any
// response bytes — a dropped request on the wire — is a transport error
// and is retried.
func TestClientRetriesDroppedRequests(t *testing.T) {
	defer failpoint.Reset()
	srv, _ := startCoordServer(t, CoordinatorOptions{})
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx := context.Background()

	id, err := client.Submit(ctx, singleShardSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	failpoint.Arm(FailpointCoordDrop, failpoint.Action{Err: errors.New("dropped"), Times: 2})
	if _, err := client.Status(ctx, id); err != nil {
		t.Fatalf("status with 2 dropped requests: %v", err)
	}
	if fired := failpoint.Fired(FailpointCoordDrop); fired != 2 {
		t.Errorf("drop failpoint fired %d times, want 2", fired)
	}
}

// TestClientRetriesTransportFaults: client-side network failures (the
// request never leaves) retry the same way.
func TestClientRetriesTransportFaults(t *testing.T) {
	defer failpoint.Reset()
	srv, _ := startCoordServer(t, CoordinatorOptions{})
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx := context.Background()

	id, err := client.Submit(ctx, singleShardSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	failpoint.Arm(FailpointClientRequest, failpoint.Action{Err: errors.New("cable pulled"), Times: 2})
	if _, err := client.Status(ctx, id); err != nil {
		t.Fatalf("status with 2 client-side faults: %v", err)
	}
}

// TestClientPermanentErrorsNotRetried: a 4xx is an answer, not a fault —
// exactly one request goes out.
func TestClientPermanentErrorsNotRetried(t *testing.T) {
	srv, requests := startCoordServer(t, CoordinatorOptions{})
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx := context.Background()

	requests.Store(0)
	if _, err := client.Status(ctx, "j999"); err == nil {
		t.Fatal("status of unknown job succeeded, want 404 error")
	}
	if n := requests.Load(); n != 1 {
		t.Errorf("404 took %d requests, want 1 (permanent errors are not retried)", n)
	}
}

// TestClientSubmitNotRetried: Submit is not idempotent, so even a
// retryable fault ends it after one attempt.
func TestClientSubmitNotRetried(t *testing.T) {
	defer failpoint.Reset()
	srv, requests := startCoordServer(t, CoordinatorOptions{})
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx := context.Background()

	failpoint.Arm(FailpointCoordRequest, failpoint.Action{Err: errors.New("transient"), Times: 1})
	requests.Store(0)
	if _, err := client.Submit(ctx, singleShardSpec()); err == nil {
		t.Fatal("submit through an injected 500 succeeded, want error")
	}
	if n := requests.Load(); n != 1 {
		t.Errorf("submit took %d requests, want 1 (submissions must not be retried)", n)
	}
}

// TestClientRequestTimeout: a stalled coordinator cannot hang the
// client — the per-request timeout fires and surfaces as an error.
func TestClientRequestTimeout(t *testing.T) {
	defer failpoint.Reset()
	srv, _ := startCoordServer(t, CoordinatorOptions{})
	client := NewClientWith(srv.URL, ClientOptions{
		Timeout: 50 * time.Millisecond,
		Retries: -1, // single attempt: this test is about the timeout
	})
	ctx := context.Background()

	failpoint.Arm(FailpointCoordRequest, failpoint.Action{Delay: 500 * time.Millisecond, Times: 1})
	start := time.Now()
	_, err := client.Status(ctx, "j1")
	if err == nil {
		t.Fatal("status against a stalled coordinator succeeded, want timeout error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout error = %v, want context.DeadlineExceeded in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Errorf("timed out after %v, want well under the 500ms stall", elapsed)
	}
}

// TestClientRetryBudgetExhausted: when every attempt answers 500, the
// final error carries the server's answer and the budget is respected.
func TestClientRetryBudgetExhausted(t *testing.T) {
	defer failpoint.Reset()
	srv, requests := startCoordServer(t, CoordinatorOptions{})
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx := context.Background()

	failpoint.Arm(FailpointCoordRequest, failpoint.Action{Err: errors.New("down hard")})
	requests.Store(0)
	_, err := client.Status(ctx, "j1")
	if err == nil || !strings.Contains(err.Error(), "down hard") {
		t.Fatalf("status = %v, want the injected 500 surfaced", err)
	}
	if n := requests.Load(); n != 4 {
		t.Errorf("exhausting the budget took %d requests, want 4", n)
	}
}

// TestWatchReconnectsAndDedups: an SSE connection severed mid-job is
// transparently reconnected; replayed events are deduplicated by id,
// the terminal "done" always arrives, and event ids are strictly
// increasing across the reconnect.
func TestWatchReconnectsAndDedups(t *testing.T) {
	srv, _ := startCoordServer(t, CoordinatorOptions{LeaseTTL: time.Minute})
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	id, err := client.Submit(ctx, singleShardSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var mu sync.Mutex
	var events []Event
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- client.Watch(ctx, id, func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		})
	}()

	// Let the watcher attach, then cut every client connection — the
	// SSE stream dies mid-job and Watch must reconnect on its own.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) > 0
	}, "initial snapshot")
	srv.CloseClientConnections()

	// Finish the job through the lease API; the reconnected watcher
	// must still observe the terminal event.
	lease, err := client.Lease(ctx, "w")
	if err != nil || lease == nil {
		t.Fatalf("lease: %v (lease=%v)", err, lease)
	}
	if _, err := client.Complete(ctx, lease.ID, CompleteRequest{Worker: "w", Fragment: []byte(`[30,0,0,0]`)}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if err := <-watchDone; err != nil {
		t.Fatalf("watch: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	var lastID uint64
	doneCount := 0
	for i, ev := range events {
		if ev.Name == "done" {
			doneCount++
			continue
		}
		if ev.ID <= lastID {
			t.Errorf("event %d (%s) id %d not above predecessor %d: replay leaked through dedup", i, ev.Name, ev.ID, lastID)
		}
		lastID = ev.ID
	}
	if doneCount != 1 {
		t.Errorf("watcher saw %d done events, want exactly 1", doneCount)
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
