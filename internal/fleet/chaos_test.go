package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"pair/internal/campaign"
	"pair/internal/failpoint"
)

// chaosCoord is a coordinator behind a real TCP listener whose address
// survives kill/restart cycles: the first start binds an ephemeral
// port, every restart re-binds the same one, so workers configured with
// the original URL reconnect to the new incarnation on their own — the
// in-process shape of "the coordinator host came back".
type chaosCoord struct {
	t      *testing.T
	opts   CoordinatorOptions
	addr   string
	coord  *Coordinator
	srv    *http.Server
	served chan struct{}
}

func startChaosCoord(t *testing.T, opts CoordinatorOptions) *chaosCoord {
	t.Helper()
	cc := &chaosCoord{t: t, opts: opts, addr: "127.0.0.1:0"}
	cc.start()
	t.Cleanup(func() {
		cc.srv.Close()
		cc.coord.Close()
	})
	return cc
}

// start boots a fresh incarnation on the remembered address. The
// re-bind is retried briefly: the previous listener's close is
// asynchronous from the kernel's point of view.
func (cc *chaosCoord) start() {
	cc.t.Helper()
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", cc.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		cc.t.Fatalf("re-binding %s: %v", cc.addr, err)
	}
	cc.addr = ln.Addr().String()
	coord, err := NewCoordinator(cc.opts)
	if err != nil {
		ln.Close()
		cc.t.Fatalf("NewCoordinator: %v", err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ln)
	}()
	cc.coord, cc.srv, cc.served = coord, srv, served
}

// kill models SIGKILL: listener and live connections die, the journal
// stops accepting appends from in-flight handlers (the dead
// incarnation must not write into its successor's WAL), nothing is
// flushed gracefully.
func (cc *chaosCoord) kill() {
	cc.srv.Close()
	cc.coord.Abandon()
	<-cc.served
}

func (cc *chaosCoord) url() string { return "http://" + cc.addr }

// TestChaosCoordinatorKillRestart is the acceptance test of the crash
// story end to end: a fleet of real workers over real TCP, the
// coordinator SIGKILLed and restarted twice mid-campaign, and the final
// result — aggregates and checkpoint bytes — identical to a
// single-process run. The workers are never restarted: surviving two
// coordinator deaths is their part of the contract.
func TestChaosCoordinatorKillRestart(t *testing.T) {
	goldenDir := t.TempDir()
	golden := runLocalGolden(t, goldenDir)
	goldenFiles := readDir(t, goldenDir)

	// Slow every shard down so both kills land mid-run, never before the
	// first shard or after the last.
	failpoint.Arm(campaign.FailpointShard, failpoint.Action{Delay: 40 * time.Millisecond})
	defer failpoint.Reset()

	dir := t.TempDir()
	cc := startChaosCoord(t, CoordinatorOptions{
		CheckpointDir: filepath.Join(dir, "ckpt"),
		JournalDir:    filepath.Join(dir, "journal"),
		LeaseTTL:      500 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := NewWorker(cc.url(), WorkerOptions{ID: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(wctx)
		}()
	}
	defer func() {
		wcancel()
		wg.Wait()
	}()

	client := NewClientWith(cc.url(), fastClientOptions())
	id, err := client.Submit(ctx, testJobSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	shardsDone := func() int {
		st, err := client.Status(ctx, id)
		if err != nil {
			return -1 // coordinator down or restarting; keep polling
		}
		return st.ShardsDone
	}

	waitFor(t, func() bool { return shardsDone() >= 3 }, "first shards before kill 1")
	cc.kill()
	cc.start()

	waitFor(t, func() bool { return shardsDone() >= 8 }, "more shards before kill 2")
	cc.kill()
	cc.start()

	waitFor(t, func() bool {
		st, err := client.Status(ctx, id)
		return err == nil && st.State != "running"
	}, "job completion after two coordinator kills")

	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatalf("final status: %v", err)
	}
	if st.State != "done" || st.ShardsDone != 16 || st.ShardsFailed != 0 {
		t.Fatalf("final status = %s done=%d failed=%d (%s), want done 16/0",
			st.State, st.ShardsDone, st.ShardsFailed, st.Error)
	}

	res, err := client.Result(ctx, id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if len(res.Campaigns) != len(golden) {
		t.Fatalf("result has %d campaigns, want %d", len(res.Campaigns), len(golden))
	}
	for _, cr := range res.Campaigns {
		if want := golden[cr.Label]; cr.Counts != want {
			t.Errorf("campaign %q counts = %v, want %v (crash recovery changed results)", cr.Label, cr.Counts, want)
		}
		if len(cr.FailedShards) != 0 {
			t.Errorf("campaign %q lost shards %v across the restarts", cr.Label, cr.FailedShards)
		}
	}

	// The checkpoint directory is byte-identical to the local run's:
	// kills, re-issues and duplicate completions left no trace.
	fleetFiles := readDir(t, filepath.Join(dir, "ckpt"))
	if len(fleetFiles) != len(goldenFiles) {
		t.Fatalf("fleet wrote %d checkpoint files, golden wrote %d", len(fleetFiles), len(goldenFiles))
	}
	for name, want := range goldenFiles {
		if got, ok := fleetFiles[name]; !ok {
			t.Errorf("fleet checkpoint missing %s", name)
		} else if !bytes.Equal(got, want) {
			t.Errorf("checkpoint %s differs from the single-process run", name)
		}
	}
}

// TestChaosJournalFault503Retried: a journal append failure on a strict
// path answers 503 and the client retry layer absorbs it — the lease
// and the completion both land on the second attempt, with no duplicate
// merge.
func TestChaosJournalFault503Retried(t *testing.T) {
	defer failpoint.Reset()
	srv, requests := startCoordServer(t, CoordinatorOptions{
		JournalDir: t.TempDir(),
		LeaseTTL:   time.Minute,
	})
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	id, err := client.Submit(ctx, singleShardSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	failpoint.Arm(FailpointJournalAppend, failpoint.Action{Err: errors.New("disk hiccup"), Times: 1})
	requests.Store(0)
	lease, err := client.Lease(ctx, "w")
	if err != nil || lease == nil {
		t.Fatalf("lease through a journal fault = %v (lease=%v), want granted on retry", err, lease)
	}
	if n := requests.Load(); n != 2 {
		t.Errorf("lease took %d requests, want 2 (one 503 + success)", n)
	}
	if fired := failpoint.Fired(FailpointJournalAppend); fired != 1 {
		t.Errorf("journal failpoint fired %d times, want 1", fired)
	}

	failpoint.Arm(FailpointJournalAppend, failpoint.Action{Err: errors.New("disk hiccup"), Times: 1})
	cres, err := client.Complete(ctx, lease.ID, CompleteRequest{Worker: "w", Fragment: []byte(`[30,0,0,0]`)})
	if err != nil || cres.Duplicate {
		t.Fatalf("complete through a journal fault = %+v, %v; want merged on retry", cres, err)
	}
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != "done" || st.ShardsDone != 1 {
		t.Errorf("status = %s done=%d, want done 1 (retry must not double-merge)", st.State, st.ShardsDone)
	}

	// Submit is not retried: a journal fault there is a hard error and
	// the job is not registered.
	failpoint.Arm(FailpointJournalAppend, failpoint.Action{Err: errors.New("disk hiccup"), Times: 1})
	if _, err := client.Submit(ctx, singleShardSpec()); err == nil {
		t.Error("submit through a journal fault succeeded, want error (submissions must not be retried)")
	}
}

// TestChaosGracefulShutdownReleasesWatchers: Close() must let an HTTP
// server drain — open SSE streams are released instead of holding the
// graceful shutdown forever — and a Watch cut off this way ends cleanly
// when its context is cancelled.
func TestChaosGracefulShutdownReleasesWatchers(t *testing.T) {
	defer failpoint.Reset()
	base := runtime.NumGoroutine()
	failpoint.Arm(campaign.FailpointShard, failpoint.Action{Delay: 200 * time.Millisecond})

	coord, err := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(coord.Handler())
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	w := NewWorker(srv.URL, WorkerOptions{ID: "w0", Poll: 5 * time.Millisecond})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Run(wctx)
	}()

	id, err := client.Submit(ctx, testJobSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	watchCtx, watchCancel := context.WithCancel(ctx)
	defer watchCancel()
	var mu sync.Mutex
	events := 0
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- client.Watch(watchCtx, id, func(Event) {
			mu.Lock()
			events++
			mu.Unlock()
		})
	}()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return events > 0
	}, "watcher attached")

	// The graceful path: Close releases the SSE stream, so the server's
	// own drain (httptest's Close waits for outstanding requests)
	// finishes promptly instead of hanging on the watcher.
	start := time.Now()
	coord.Close()
	srv.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("graceful shutdown took %v; open SSE streams are holding the drain", elapsed)
	}

	// The watcher's reconnect loop spins against the dead address until
	// its context ends, then returns.
	watchCancel()
	if err := <-watchDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("watch after shutdown = %v, want nil or context.Canceled", err)
	}
	wcancel()
	wg.Wait()

	// Everything joined: no goroutines left behind (the renew loops and
	// SSE handlers are the usual leak suspects).
	waitFor(t, func() bool { return runtime.NumGoroutine() <= base+5 }, "goroutines settle after shutdown")
}

// TestChaosCancelWithInFlightLeases: cancelling a job under live
// workers stops the world cleanly — lease holders are refused on renew
// (410/ErrLeaseGone), in-flight completions are acknowledged as
// cancelled and never merged, the done count freezes, and the workers
// go back to idle polling without leaking their renew goroutines.
func TestChaosCancelWithInFlightLeases(t *testing.T) {
	defer failpoint.Reset()
	failpoint.Arm(campaign.FailpointShard, failpoint.Action{Delay: 100 * time.Millisecond})

	coord, err := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	client := NewClientWith(srv.URL, fastClientOptions())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := NewWorker(srv.URL, WorkerOptions{ID: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(wctx)
		}()
	}
	defer func() {
		wcancel()
		wg.Wait()
	}()

	id, err := client.Submit(ctx, testJobSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, func() bool {
		st, err := client.Status(ctx, id)
		return err == nil && st.ShardsDone >= 1
	}, "workers mid-job")

	// A straggler holding its own lease across the cancel.
	straggler, err := client.Lease(ctx, "straggler")
	if err != nil || straggler == nil {
		t.Fatalf("straggler lease: %v (lease=%v)", err, straggler)
	}
	if err := client.Cancel(ctx, id); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	if err := client.Renew(ctx, straggler.ID); !errors.Is(err, ErrLeaseGone) {
		t.Errorf("renew after cancel = %v, want ErrLeaseGone", err)
	}
	cres, err := client.Complete(ctx, straggler.ID, CompleteRequest{Worker: "straggler", Fragment: []byte(`[30,0,0,0]`)})
	if err != nil || !cres.Cancelled {
		t.Errorf("complete after cancel = %+v, %v; want acknowledged as cancelled", cres, err)
	}

	// The done count freezes: worker shards finishing after the cancel
	// (the 100ms delay guarantees some are still in flight) are
	// answered Cancelled and never merged.
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != "cancelled" {
		t.Fatalf("state = %q, want cancelled", st.State)
	}
	frozen := st.ShardsDone
	time.Sleep(250 * time.Millisecond) // in-flight shards land in this window
	st, err = client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.ShardsDone != frozen {
		t.Errorf("ShardsDone moved %d -> %d after cancel", frozen, st.ShardsDone)
	}

	// No work left: the workers are idle-polling, not stuck.
	if l, err := client.Lease(ctx, "probe"); err != nil || l != nil {
		t.Errorf("lease on a cancelled job = %+v, %v; want none", l, err)
	}
}
