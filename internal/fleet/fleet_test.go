package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pair/internal/campaign"
	"pair/internal/failpoint"
	"pair/internal/faults"
	"pair/internal/reliability"
	"pair/internal/schemes"
)

// The test matrix: 2 schemes x 2 scenarios = 4 campaigns, 4 shards each
// (16 shards total), namespaced like pairsim's f13 experiment.
const (
	testNamespace = "f13"
	testTrials    = 120
	testShardSize = 30
	testSeed      = 42
)

var (
	testSchemeSpecs   = []string{"none", "secded"}
	testScenarioSpecs = []string{"cell", "pin"}
)

func testJobSpec() JobSpec {
	return JobSpec{
		Namespace: testNamespace,
		Schemes:   testSchemeSpecs,
		Scenarios: testScenarioSpecs,
		Trials:    testTrials,
		ShardSize: testShardSize,
		Seed:      testSeed,
	}
}

// runLocalGolden runs the identical campaign matrix through the local
// campaign engine — the single-process truth the fleet must reproduce
// byte for byte. Returns aggregate counts keyed by full campaign label.
func runLocalGolden(t *testing.T, dir string) map[string][4]int64 {
	t.Helper()
	schemeObjs, err := schemes.Build(testSchemeSpecs)
	if err != nil {
		t.Fatalf("building schemes: %v", err)
	}
	scenarioObjs, err := faults.BuildScenarios(testScenarioSpecs)
	if err != nil {
		t.Fatalf("building scenarios: %v", err)
	}
	counts := map[string][4]int64{}
	for _, sc := range scenarioObjs {
		for _, s := range schemeObjs {
			spec := reliability.ScenarioCampaignSpec(s, sc, testTrials, testSeed)
			spec.ShardSize = testShardSize
			agg, err := campaign.Run(context.Background(), spec,
				campaign.Options{Namespace: testNamespace, CheckpointDir: dir},
				reliability.ScenarioShardFn(s, sc), reliability.MergeCounts)
			if err != nil {
				t.Fatalf("local campaign %q: %v", spec.Label, err)
			}
			counts[campaign.JoinLabel(testNamespace, spec.Label)] = agg
		}
	}
	return counts
}

// startFleet boots a coordinator over httptest and n in-process workers
// polling it, returning a client and the coordinator's base URL.
func startFleet(t *testing.T, opts CoordinatorOptions, n int) *Client {
	t.Helper()
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := NewWorker(srv.URL, WorkerOptions{
			ID:      fmt.Sprintf("w%d", i),
			Poll:    5 * time.Millisecond,
			Retries: 0,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return NewClient(srv.URL, nil)
}

// readDir returns the file contents of a checkpoint directory, keyed by
// file name.
func readDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading %s: %v", e.Name(), err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestFleetByteIdentity is the cross-node acceptance test: the same
// campaign matrix on 1 coordinator + {1,2,4} workers, with adversarial
// lease expiry (failpoint-injected worker death mid-shard), must
// produce a merged checkpoint directory and aggregates byte-identical
// to a single-process run.
func TestFleetByteIdentity(t *testing.T) {
	goldenDir := t.TempDir()
	golden := runLocalGolden(t, goldenDir)
	goldenFiles := readDir(t, goldenDir)
	if len(goldenFiles) != 4 {
		t.Fatalf("golden run wrote %d checkpoint files, want 4", len(goldenFiles))
	}

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Worker death mid-shard: the first 3 granted leases are
			// abandoned without completion or renewal; the coordinator must
			// notice the missed deadlines and re-issue those shards.
			const deaths = 3
			failpoint.Arm(FailpointWorkerLease, failpoint.Action{
				Err:   errors.New("simulated worker death"),
				Times: deaths,
			})
			defer failpoint.Reset()

			fleetDir := t.TempDir()
			client := startFleet(t, CoordinatorOptions{
				CheckpointDir: fleetDir,
				LeaseTTL:      150 * time.Millisecond,
			}, workers)

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			id, err := client.Submit(ctx, testJobSpec())
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			var progress bytes.Buffer
			res, err := client.Wait(ctx, id, &progress)
			if err != nil {
				t.Fatalf("wait: %v", err)
			}
			if res.State != "done" {
				t.Fatalf("job state = %q (%s), want done", res.State, res.Error)
			}
			if len(res.Campaigns) != len(golden) {
				t.Fatalf("result has %d campaigns, want %d", len(res.Campaigns), len(golden))
			}
			for _, cr := range res.Campaigns {
				want, ok := golden[cr.Label]
				if !ok {
					t.Fatalf("unexpected campaign %q in result", cr.Label)
				}
				if cr.Counts != want {
					t.Errorf("campaign %q counts = %v, want %v", cr.Label, cr.Counts, want)
				}
				if len(cr.FailedShards) != 0 {
					t.Errorf("campaign %q lost shards %v", cr.Label, cr.FailedShards)
				}
			}

			// The adversarial deaths must actually have happened and been
			// healed by lease re-issue.
			st, err := client.Status(ctx, id)
			if err != nil {
				t.Fatalf("status: %v", err)
			}
			if st.Reissued != deaths {
				t.Errorf("reissued = %d, want %d (every abandoned lease re-issued exactly once)", st.Reissued, deaths)
			}
			if !strings.Contains(progress.String(), "progress: ") {
				t.Errorf("Wait wrote no progress lines")
			}

			// Byte identity: the merged checkpoint directory is
			// indistinguishable from the single-process run's.
			fleetFiles := readDir(t, fleetDir)
			if len(fleetFiles) != len(goldenFiles) {
				t.Fatalf("fleet wrote %d files, golden wrote %d", len(fleetFiles), len(goldenFiles))
			}
			for name, want := range goldenFiles {
				got, ok := fleetFiles[name]
				if !ok {
					t.Errorf("fleet checkpoint missing %s", name)
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("checkpoint %s differs between fleet and local run", name)
				}
			}
		})
	}
}

// TestFleetResume: a coordinator restarted over a completed run's
// checkpoint directory resumes every shard from disk — the job is
// terminal on arrival, no worker is needed, and the result still
// matches the single-process aggregates.
func TestFleetResume(t *testing.T) {
	goldenDir := t.TempDir()
	golden := runLocalGolden(t, goldenDir)

	// No workers at all: everything must come from the checkpoints.
	client := startFleet(t, CoordinatorOptions{
		CheckpointDir: goldenDir,
		Resume:        true,
	}, 0)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	id, err := client.Submit(ctx, testJobSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != "done" {
		t.Fatalf("resumed job state = %q, want done on arrival", st.State)
	}
	if !strings.Contains(st.Progress, "resumed") {
		t.Errorf("progress line %q does not mention resumed shards", st.Progress)
	}
	res, err := client.Result(ctx, id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	for _, cr := range res.Campaigns {
		if want := golden[cr.Label]; cr.Counts != want {
			t.Errorf("campaign %q counts = %v, want %v", cr.Label, cr.Counts, want)
		}
	}
}

// TestFleetPermanentFailure: a shard that keeps failing on workers
// exhausts the coordinator's re-issue budget, is marked failed, and the
// job lands in state "failed" with the shard recorded in the result and
// the defect report.
func TestFleetPermanentFailure(t *testing.T) {
	failpoint.Arm(campaign.FailpointShard, failpoint.Action{
		Err: errors.New("defective kernel"),
	})
	defer failpoint.Reset()

	client := startFleet(t, CoordinatorOptions{
		LeaseTTL:     time.Minute,
		ShardRetries: 2,
	}, 1)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	id, err := client.Submit(ctx, JobSpec{
		Namespace: testNamespace,
		Schemes:   []string{"none"},
		Scenarios: []string{"cell"},
		Trials:    testShardSize, // single shard
		ShardSize: testShardSize,
		Seed:      testSeed,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := client.Wait(ctx, id, nil)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if res.State != "failed" {
		t.Fatalf("job state = %q, want failed", res.State)
	}
	if len(res.Campaigns) != 1 || len(res.Campaigns[0].FailedShards) != 1 {
		t.Fatalf("result = %+v, want exactly one failed shard", res.Campaigns)
	}
	if !strings.Contains(res.ReportSummary, "shard failure") {
		t.Errorf("report summary %q does not record the shard failure", res.ReportSummary)
	}
}

// TestFleetRenewalKeepsSlowShard: a shard running far past the lease
// TTL survives because the worker renews; the lease is never re-issued
// and the job completes cleanly.
func TestFleetRenewalKeepsSlowShard(t *testing.T) {
	failpoint.Arm(campaign.FailpointShard, failpoint.Action{
		Delay: 500 * time.Millisecond,
		Times: 1,
	})
	defer failpoint.Reset()

	client := startFleet(t, CoordinatorOptions{
		LeaseTTL: 150 * time.Millisecond,
	}, 1)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	id, err := client.Submit(ctx, JobSpec{
		Namespace: testNamespace,
		Schemes:   []string{"none"},
		Scenarios: []string{"cell"},
		Trials:    testShardSize,
		ShardSize: testShardSize,
		Seed:      testSeed,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := client.Wait(ctx, id, nil)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if res.State != "done" {
		t.Fatalf("job state = %q (%s), want done", res.State, res.Error)
	}
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Reissued != 0 {
		t.Errorf("reissued = %d, want 0 (renewal must keep the slow shard's lease alive)", st.Reissued)
	}
}

// TestFleetCancelAndValidation covers the control-plane edges: bad
// specs are rejected at submission, unknown jobs 404, cancellation is
// terminal, and completions for cancelled jobs are acknowledged as
// such.
func TestFleetCancelAndValidation(t *testing.T) {
	client := startFleet(t, CoordinatorOptions{LeaseTTL: time.Minute}, 0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for _, bad := range []JobSpec{
		{Schemes: []string{"none"}, Scenarios: []string{"cell"}, Trials: 0},
		{Schemes: nil, Scenarios: []string{"cell"}, Trials: 10},
		{Schemes: []string{"no-such-scheme"}, Scenarios: []string{"cell"}, Trials: 10},
		{Schemes: []string{"none"}, Scenarios: []string{"no-such-scenario"}, Trials: 10},
		{Schemes: []string{"none", "none"}, Scenarios: []string{"cell"}, Trials: 10},
	} {
		if _, err := client.Submit(ctx, bad); err == nil {
			t.Errorf("submit(%+v) succeeded, want error", bad)
		}
	}

	if _, err := client.Status(ctx, "j999"); err == nil {
		t.Errorf("status of unknown job succeeded, want 404 error")
	}

	id, err := client.Submit(ctx, testJobSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := client.Result(ctx, id); err == nil {
		t.Errorf("result of a running job succeeded, want 409 error")
	}
	if err := client.Cancel(ctx, id); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.State != "cancelled" {
		t.Fatalf("state = %q, want cancelled", st.State)
	}
	res, err := client.Result(ctx, id)
	if err != nil {
		t.Fatalf("result after cancel: %v", err)
	}
	if res.State != "cancelled" {
		t.Errorf("result state = %q, want cancelled", res.State)
	}

	// A straggler completing a lease of the cancelled job is told so.
	// Grab a lease first by re-submitting and cancelling mid-flight is
	// racy; instead exercise the lease path directly on the running job
	// below.
	id2, err := client.Submit(ctx, testJobSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lease, err := client.Lease(ctx, "straggler")
	if err != nil || lease == nil {
		t.Fatalf("lease: %v (lease=%v)", err, lease)
	}
	if lease.Job != id2 {
		t.Fatalf("lease.Job = %q, want %q", lease.Job, id2)
	}
	if err := client.Renew(ctx, lease.ID); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := client.Cancel(ctx, id2); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if err := client.Renew(ctx, lease.ID); !errors.Is(err, ErrLeaseGone) {
		t.Errorf("renew after cancel = %v, want ErrLeaseGone", err)
	}
	cres, err := client.Complete(ctx, lease.ID, CompleteRequest{Worker: "straggler", Fragment: []byte(`[30,0,0,0]`)})
	if err != nil {
		t.Fatalf("complete after cancel: %v", err)
	}
	if !cres.Cancelled {
		t.Errorf("completion after cancel not flagged cancelled: %+v", cres)
	}
}

// TestFleetLeaseProtocol drives the lease endpoints directly: expiry
// reclaims, duplicate completions dedup by shard index, and stale
// renewals are refused.
func TestFleetLeaseProtocol(t *testing.T) {
	client := startFleet(t, CoordinatorOptions{LeaseTTL: 100 * time.Millisecond}, 0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	id, err := client.Submit(ctx, JobSpec{
		Namespace: testNamespace,
		Schemes:   []string{"none"},
		Scenarios: []string{"cell"},
		Trials:    2 * testShardSize, // two shards
		ShardSize: testShardSize,
		Seed:      testSeed,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Grant shard 0, let it expire, and watch it come back.
	l0, err := client.Lease(ctx, "flaky")
	if err != nil || l0 == nil || l0.Shard != 0 {
		t.Fatalf("first lease = %+v, %v; want shard 0", l0, err)
	}
	time.Sleep(150 * time.Millisecond)
	l0b, err := client.Lease(ctx, "healer")
	if err != nil || l0b == nil || l0b.Shard != 0 {
		t.Fatalf("post-expiry lease = %+v, %v; want shard 0 re-issued", l0b, err)
	}
	if l0b.ID == l0.ID {
		t.Fatalf("re-issued lease kept ID %s, want a fresh generation", l0.ID)
	}
	// The original holder's renewal must now be refused...
	if err := client.Renew(ctx, l0.ID); !errors.Is(err, ErrLeaseGone) {
		t.Errorf("stale renew = %v, want ErrLeaseGone", err)
	}
	// ...but its completion still lands (first fragment wins) and the
	// new holder's is deduplicated by shard index.
	frag := []byte(`[60,0,0,0]`)
	c1, err := client.Complete(ctx, l0.ID, CompleteRequest{Worker: "flaky", Fragment: frag})
	if err != nil || c1.Duplicate {
		t.Fatalf("original completion = %+v, %v; want accepted", c1, err)
	}
	c2, err := client.Complete(ctx, l0b.ID, CompleteRequest{Worker: "healer", Fragment: frag})
	if err != nil || !c2.Duplicate {
		t.Fatalf("racing completion = %+v, %v; want duplicate", c2, err)
	}

	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.ShardsDone != 1 || st.Reissued != 1 {
		t.Errorf("status = done %d, reissued %d; want 1 and 1", st.ShardsDone, st.Reissued)
	}

	// An invalid fragment is rejected and leaves the slot leased.
	l1, err := client.Lease(ctx, "worker")
	if err != nil || l1 == nil || l1.Shard != 1 {
		t.Fatalf("second lease = %+v, %v; want shard 1", l1, err)
	}
	if _, err := client.Complete(ctx, l1.ID, CompleteRequest{Worker: "worker", Fragment: []byte(`{truncated`)}); err == nil {
		t.Errorf("invalid fragment accepted, want error")
	}
}
