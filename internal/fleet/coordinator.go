package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pair/internal/campaign"
	"pair/internal/failpoint"
	"pair/internal/faults"
	"pair/internal/reliability"
	"pair/internal/schemes"
)

// errJournalUnavailable marks a state transition refused because its
// journal record could not be made durable; handlers answer 503 so the
// client retry layer tries again instead of treating it as permanent.
var errJournalUnavailable = errors.New("fleet: journal unavailable")

// DefaultLeaseTTL is the lease deadline granted when CoordinatorOptions
// leaves LeaseTTL zero. Workers renew at a third of the TTL, so the
// default tolerates two missed renewals before a lease is re-issued.
const DefaultLeaseTTL = 30 * time.Second

// DefaultShardRetries is the per-shard re-issue budget used when
// CoordinatorOptions leaves ShardRetries zero: how many permanent
// worker-side failures a shard absorbs before the coordinator marks it
// failed for good.
const DefaultShardRetries = 3

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// CheckpointDir, when non-empty, mirrors every merged fragment into
	// the standard campaign checkpoint files under this directory —
	// byte-identical to a local run's, so `pairsim -resume` picks a
	// fleet run up. Empty merges in memory only.
	CheckpointDir string
	// JournalDir, when non-empty, makes the coordinator crash-safe: an
	// append-only WAL under this directory records every job and lease
	// state transition (fsynced before the transition is acknowledged),
	// and NewCoordinator replays it — together with the CheckpointDir
	// fragments — to rebuild the exact job/lease/generation state of
	// the previous incarnation. Submitted jobs, granted leases and
	// merged shards survive a coordinator kill; workers holding
	// pre-crash leases keep renewing and completing against the
	// restarted coordinator as if nothing happened. Pair it with
	// CheckpointDir: the journal is the control state, the checkpoint
	// holds the results (a journaled completion whose fragment never
	// reached the checkpoint is re-issued on replay, which is safe
	// because recomputation is byte-identical).
	JournalDir string
	// Resume loads existing checkpoints at job submission and re-issues
	// only the missing shards. Salvage additionally recovers what it can
	// from corrupted checkpoints (campaign.Options semantics).
	Resume  bool
	Salvage bool
	// LeaseTTL is the deadline granted to each lease; 0 means
	// DefaultLeaseTTL. A lease neither completed nor renewed by its
	// deadline is re-issued to the next polling worker.
	LeaseTTL time.Duration
	// ShardRetries is the per-shard budget of permanent worker-reported
	// failures before the shard is marked failed; 0 means
	// DefaultShardRetries.
	ShardRetries int
	// Warnf, when non-nil, receives coordinator warnings (lease expiry,
	// worker-reported failures, checkpoint degradation) as they happen.
	Warnf func(format string, args ...any)

	// now overrides the clock in tests.
	now func() time.Time
}

// Slot states of one shard within a job.
const (
	slotPending = iota // waiting for a worker
	slotLeased         // granted, deadline pending
	slotDone           // fragment merged
	slotFailed         // re-issue budget exhausted
)

// slot tracks the lease lifecycle of one shard.
type slot struct {
	state    int
	gen      int // lease generation; each grant (and re-issue) bumps it
	worker   string
	deadline time.Time
	failures int // permanent failures workers reported for this shard
}

// jobCampaign is one (scheme, scenario) campaign of a job.
type jobCampaign struct {
	schemeSpec   string
	scenarioSpec string
	merge        *campaign.Merge
	slots        []slot
	done         int // slots in state slotDone
	failed       int // slots in state slotFailed
}

// job is the coordinator-side state of one submitted job.
type job struct {
	id        string
	spec      JobSpec
	state     string // running | done | failed | cancelled
	errMsg    string
	campaigns []*jobCampaign
	progress  *campaign.Progress
	report    *campaign.Report
	reissued  int
	eventSeq  uint32 // per-job SSE sequence, scoped under the epoch
	subs      map[chan Event]struct{}
}

// Coordinator is the fleet's control plane: it expands submitted jobs
// into campaigns, brokers shard leases to polling workers, merges the
// returned fragments through campaign.Merge, and serves status, results
// and SSE progress over HTTP. Lease expiry is reclaimed lazily — an
// expired lease returns to the pending pool the next time any worker
// asks for work — which keeps the coordinator free of background
// goroutines and timers.
type Coordinator struct {
	opts    CoordinatorOptions
	handler http.Handler
	journal *journal // nil without JournalDir
	epoch   int      // journal incarnation; scopes SSE event ids
	done    chan struct{}
	closing sync.Once

	mu    sync.Mutex
	seq   int
	jobs  map[string]*job
	order []*job // submission order: lease scanning and listing
}

// NewCoordinator builds a coordinator with its routes registered. With
// JournalDir set it first replays the journal of the previous
// incarnation (plus the CheckpointDir fragments) so jobs, leases and
// generation counters pick up exactly where the killed coordinator
// left off; a journal it cannot fully understand is an error, never a
// partial replay.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.ShardRetries <= 0 {
		opts.ShardRetries = DefaultShardRetries
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	c := &Coordinator{opts: opts, jobs: map[string]*job{}, epoch: 1, done: make(chan struct{})}
	if opts.JournalDir != "" {
		jl, recs, err := openJournal(opts.JournalDir)
		if err != nil {
			return nil, err
		}
		if err := c.replay(recs); err != nil {
			jl.close()
			return nil, err
		}
		c.journal = jl
		if err := jl.append(journalRecord{T: recEpoch, Epoch: c.epoch}); err != nil {
			jl.close()
			return nil, err
		}
		if n := len(c.order); n > 0 {
			c.warnf("fleet: journal replayed %d job(s) (epoch %d)", n, c.epoch)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /api/jobs", c.handleSubmit)
	mux.HandleFunc("GET /api/jobs", c.handleList)
	mux.HandleFunc("GET /api/jobs/{id}", c.handleStatus)
	mux.HandleFunc("POST /api/jobs/{id}/cancel", c.handleCancel)
	mux.HandleFunc("GET /api/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /api/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("POST /api/lease", c.handleLease)
	mux.HandleFunc("POST /api/lease/{id}/renew", c.handleRenew)
	mux.HandleFunc("POST /api/lease/{id}/complete", c.handleComplete)
	c.handler = faultInjectingHandler(mux)
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.handler }

// Close shuts the coordinator down gracefully: streaming subscribers
// are released (their handlers return, so an http.Server.Shutdown does
// not hang on open SSE connections) and the journal is flushed and
// closed. Safe to call more than once; the coordinator must not serve
// requests afterwards.
func (c *Coordinator) Close() {
	c.closing.Do(func() { close(c.done) })
	c.journal.close()
}

// Abandon simulates the coordinator dying without any shutdown: the
// journal stops accepting appends mid-flight (nothing is flushed or
// finalized) and streaming subscribers are cut. Chaos tests call this
// after killing the listener so a dead incarnation's in-flight
// handlers cannot write into the journal its successor has reopened —
// the in-process equivalent of the OS reclaiming a killed process's
// file descriptors.
func (c *Coordinator) Abandon() {
	c.closing.Do(func() { close(c.done) })
	c.journal.abandon()
}

// faultInjectingHandler evaluates the coordinator-side request
// failpoints: FailpointCoordRequest turns into a 500 (or a stall, for
// delay actions), FailpointCoordDrop aborts the connection without a
// response. Disarmed — the production state — both are single atomic
// loads.
func faultInjectingHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := failpoint.Hit(FailpointCoordRequest); err != nil {
			httpError(w, http.StatusInternalServerError, "injected coordinator fault: %v", err)
			return
		}
		if err := failpoint.Hit(FailpointCoordDrop); err != nil {
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}

func (c *Coordinator) warnf(format string, args ...any) {
	if c.opts.Warnf != nil {
		c.opts.Warnf(format, args...)
	}
}

// handleSubmit expands a JobSpec into campaigns and registers the job.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	j, err := c.addJob(spec)
	if errors.Is(err, errJournalUnavailable) {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.mu.Lock()
	st := c.statusLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusCreated, st)
}

// addJob validates, expands and registers a job spec: buildJob, then
// checkpoint reconciliation, then the durable submission record. A job
// whose record cannot be journaled is not registered at all — the
// caller sees 503 and may retry — so the journal never lags the
// in-memory job table.
func (c *Coordinator) addJob(spec JobSpec) (*job, error) {
	j, err := c.buildJob(spec, c.opts.Resume, c.opts.Salvage)
	if err != nil {
		return nil, err
	}
	c.reconcile(j) // checkpoint-resumed shards are done on arrival

	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	j.id = "j" + strconv.Itoa(c.seq)
	if err := c.journal.append(journalRecord{T: recJob, Job: j.id, Spec: &spec}); err != nil {
		c.warnf("fleet: journaling job submission: %v", err)
		return nil, fmt.Errorf("%w: %v", errJournalUnavailable, err)
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j)
	c.finalizeLocked(j) // a fully resumed job is done on arrival
	return j, nil
}

// buildJob expands a job spec into campaigns with all-pending slots.
// Campaigns are ordered scenario-outer, scheme-inner — the same order
// pairsim's f13 runs them locally — so a fleet with one worker executes
// the identical schedule. Shard states are settled afterwards by
// reconcile (both the submit path and journal replay go through it).
func (c *Coordinator) buildJob(spec JobSpec, resume, salvage bool) (*job, error) {
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("fleet: job needs a positive trial count, got %d", spec.Trials)
	}
	if len(spec.Schemes) == 0 || len(spec.Scenarios) == 0 {
		return nil, fmt.Errorf("fleet: job needs at least one scheme and one scenario spec")
	}
	schemeObjs, err := schemes.Build(spec.Schemes)
	if err != nil {
		return nil, err
	}
	scenarioObjs, err := faults.BuildScenarios(spec.Scenarios)
	if err != nil {
		return nil, err
	}

	j := &job{
		spec:     spec,
		state:    "running",
		progress: campaign.NewProgress(),
		report:   &campaign.Report{},
		subs:     map[chan Event]struct{}{},
	}
	opts := campaign.Options{
		Namespace: spec.Namespace,
		Resume:    resume,
		Salvage:   salvage,
		Report:    j.report,
		Warnf:     c.opts.Warnf,
	}
	seen := map[string]bool{}
	for si, sc := range scenarioObjs {
		for hi, scheme := range schemeObjs {
			cs := reliability.ScenarioCampaignSpec(scheme, sc, spec.Trials, spec.Seed)
			cs.ShardSize = spec.ShardSize
			m, err := campaign.OpenMerge(c.opts.CheckpointDir, cs, opts)
			if err != nil {
				return nil, fmt.Errorf("fleet: opening campaign %q: %w", cs.Label, err)
			}
			if seen[m.Label()] {
				return nil, fmt.Errorf("fleet: duplicate campaign %q (scheme %q x scenario %q)",
					m.Label(), spec.Schemes[hi], spec.Scenarios[si])
			}
			seen[m.Label()] = true
			jc := &jobCampaign{
				schemeSpec:   spec.Schemes[hi],
				scenarioSpec: spec.Scenarios[si],
				merge:        m,
				slots:        make([]slot, m.NumShards()),
			}
			j.progress.AddCampaign(m.NumShards(), spec.Trials)
			j.campaigns = append(j.campaigns, jc)
		}
	}
	return j, nil
}

// handleLease grants the first available shard to a polling worker,
// reclaiming any expired leases it walks past on the way.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding lease request: %v", err)
		return
	}
	if req.Worker == "" {
		req.Worker = "anonymous"
	}
	now := c.opts.now()

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, j := range c.order {
		if j.state != "running" {
			continue
		}
		for ci, jc := range j.campaigns {
			for si := range jc.slots {
				s := &jc.slots[si]
				if s.state == slotLeased && now.After(s.deadline) {
					// Lazy expiry: the worker died or stalled mid-shard. The
					// shard's result depends only on (label, seed, index), so
					// re-issuing is always safe.
					s.state = slotPending
					j.reissued++
					j.progress.ShardRetried()
					j.report.AddShardRetry()
					// Best-effort: a lost expiry record replays the slot as
					// leased, and the restarted coordinator simply expires it
					// again on the next lease scan.
					if err := c.journal.append(journalRecord{
						T: recExpire, Job: j.id, Campaign: ci, Shard: si, Gen: s.gen,
					}); err != nil {
						c.warnf("fleet: journaling lease expiry: %v", err)
					}
					j.report.Warningf(c.opts.Warnf,
						"fleet: lease %s expired (worker %q); re-issuing %s shard %d",
						leaseID(j.id, ci, si, s.gen), s.worker, jc.merge.Label(), si)
					c.broadcastLocked(j, "warning", map[string]string{
						"text": fmt.Sprintf("lease expired: %s shard %d (worker %q)", jc.merge.Label(), si, s.worker),
					})
				}
				if s.state != slotPending {
					continue
				}
				s.gen++
				s.state = slotLeased
				s.worker = req.Worker
				s.deadline = now.Add(c.opts.LeaseTTL)
				// Strict: a grant the journal does not know about would let a
				// restarted coordinator re-issue the shard under the same
				// generation, so an unjournaled grant is not granted at all.
				// The generation bump is kept — the next grant of this shard
				// must not collide with the lease this worker thinks it holds.
				if err := c.journal.append(journalRecord{
					T: recGrant, Job: j.id, Campaign: ci, Shard: si, Gen: s.gen,
					Worker: req.Worker, Deadline: s.deadline,
				}); err != nil {
					s.state = slotPending
					c.warnf("fleet: journaling lease grant: %v", err)
					httpError(w, http.StatusServiceUnavailable, "%v: %v", errJournalUnavailable, err)
					return
				}
				writeJSON(w, http.StatusOK, Lease{
					ID:        leaseID(j.id, ci, si, s.gen),
					Job:       j.id,
					Label:     jc.merge.Label(),
					Scheme:    jc.schemeSpec,
					Scenario:  jc.scenarioSpec,
					Shard:     si,
					Trials:    jc.merge.Spec().Trials,
					ShardSize: jc.merge.Spec().ShardSize,
					Seed:      jc.merge.Spec().Seed,
					Deadline:  s.deadline,
					TTL:       c.opts.LeaseTTL,
				})
				return
			}
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRenew extends a live lease's deadline.
func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	j, jc, ci, si, gen, ok := c.resolveLease(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &jc.slots[si]
	if j.state != "running" || s.state != slotLeased || s.gen != gen {
		httpError(w, http.StatusGone, "lease %s is no longer held", r.PathValue("id"))
		return
	}
	s.deadline = c.opts.now().Add(c.opts.LeaseTTL)
	// Best-effort: a lost renewal replays the older deadline, which at
	// worst expires the lease early — and re-issue is always safe.
	if err := c.journal.append(journalRecord{
		T: recRenew, Job: j.id, Campaign: ci, Shard: si, Gen: gen, Deadline: s.deadline,
	}); err != nil {
		c.warnf("fleet: journaling lease renewal: %v", err)
	}
	writeJSON(w, http.StatusOK, map[string]any{"deadline": s.deadline})
}

// handleComplete merges a finished shard (or records a permanent
// worker-side failure). Duplicate completions — the normal outcome of a
// re-issued lease whose original holder also finished — are dropped by
// shard index.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	j, jc, ci, si, gen, ok := c.resolveLease(w, r)
	if !ok {
		return
	}
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding completion: %v", err)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if j.state == "cancelled" {
		writeJSON(w, http.StatusOK, CompleteResponse{Cancelled: true})
		return
	}
	s := &jc.slots[si]
	if s.state == slotDone {
		writeJSON(w, http.StatusOK, CompleteResponse{Duplicate: true})
		return
	}
	sh := jc.merge.Spec().Shard(si)

	if req.Error != "" {
		s.failures++
		permanent := s.failures >= c.opts.ShardRetries
		// Best-effort: a lost failure record replays a lower failure
		// count, costing at worst one extra retry of a deterministic
		// shard.
		if err := c.journal.append(journalRecord{
			T: recFail, Job: j.id, Campaign: ci, Shard: si, Gen: gen,
			Worker: req.Worker, Failures: s.failures, Permanent: permanent, Error: req.Error,
		}); err != nil {
			c.warnf("fleet: journaling shard failure: %v", err)
		}
		if permanent {
			s.state = slotFailed
			jc.failed++
			j.progress.ShardFailed(sh.Trials)
			j.report.AddShardError(&campaign.ShardError{
				Label:    jc.merge.Label(),
				Shard:    si,
				Seed:     sh.Seed,
				Trials:   sh.Trials,
				Attempts: s.failures,
				Err:      fmt.Errorf("worker %q: %s", req.Worker, req.Error),
			})
			c.broadcastLocked(j, "warning", map[string]string{
				"text": fmt.Sprintf("shard failed permanently: %s shard %d: %s", jc.merge.Label(), si, req.Error),
			})
			c.finalizeLocked(j)
		} else {
			s.state = slotPending
			j.progress.ShardRetried()
			j.report.AddShardRetry()
			j.report.Warningf(c.opts.Warnf,
				"fleet: worker %q failed %s shard %d (attempt %d/%d): %s",
				req.Worker, jc.merge.Label(), si, s.failures, c.opts.ShardRetries, req.Error)
		}
		writeJSON(w, http.StatusOK, CompleteResponse{})
		return
	}

	// Validate before journaling so a malformed fragment cannot leave a
	// "complete" record with nothing behind it; then journal strictly —
	// the record must be durable before the fragment is merged, because
	// the reverse order could acknowledge a merge the journal never saw.
	// (The remaining crash window, record durable but fragment lost, is
	// the one reconcile demotes back to pending on replay.)
	if len(req.Fragment) == 0 || !json.Valid(req.Fragment) {
		httpError(w, http.StatusBadRequest, "completion carries neither a valid fragment nor an error")
		return
	}
	if err := c.journal.append(journalRecord{
		T: recComplete, Job: j.id, Campaign: ci, Shard: si, Gen: gen, Worker: req.Worker,
	}); err != nil {
		c.warnf("fleet: journaling completion: %v", err)
		httpError(w, http.StatusServiceUnavailable, "%v: %v", errJournalUnavailable, err)
		return
	}
	fresh, err := jc.merge.Record(si, req.Fragment)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.state = slotDone
	jc.done++
	if fresh {
		j.progress.ShardDone(sh.Trials)
	}
	c.broadcastLocked(j, "shard", map[string]any{
		"job": j.id, "label": jc.merge.Label(), "shard": si,
		"worker": req.Worker, "duplicate": !fresh,
	})
	c.broadcastLocked(j, "progress", c.statusLocked(j))
	c.finalizeLocked(j)
	writeJSON(w, http.StatusOK, CompleteResponse{Duplicate: !fresh})
}

// finalizeLocked moves a job to its terminal state once every slot is
// done or failed, and tells the SSE subscribers.
func (c *Coordinator) finalizeLocked(j *job) {
	if j.state != "running" {
		return
	}
	done, failed, total := 0, 0, 0
	for _, jc := range j.campaigns {
		done += jc.done
		failed += jc.failed
		total += len(jc.slots)
	}
	if done+failed < total {
		return
	}
	if failed > 0 {
		j.state = "failed"
		j.errMsg = fmt.Sprintf("%d of %d shard(s) failed permanently", failed, total)
	} else {
		j.state = "done"
	}
	// Best-effort: the terminal state is fully derivable from the slot
	// states, so replay re-finalizes a job whose final record was lost.
	if err := c.journal.append(journalRecord{T: recFinal, Job: j.id, State: j.state, Error: j.errMsg}); err != nil {
		c.warnf("fleet: journaling job finalization: %v", err)
	}
	c.broadcastLocked(j, "done", c.statusLocked(j))
}

// handleList returns every job's status, newest last.
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]JobStatus, 0, len(c.order))
	for _, j := range c.order {
		out = append(out, c.statusLocked(j))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	st := c.statusLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	if j.state == "running" {
		// Strict: an unjournaled cancel would resurrect the job — and
		// hand its shards back to workers — on the next restart.
		if err := c.journal.append(journalRecord{T: recCancel, Job: j.id, State: "cancelled"}); err != nil {
			c.mu.Unlock()
			c.warnf("fleet: journaling cancel: %v", err)
			httpError(w, http.StatusServiceUnavailable, "%v: %v", errJournalUnavailable, err)
			return
		}
		j.state = "cancelled"
		c.broadcastLocked(j, "done", c.statusLocked(j))
	}
	st := c.statusLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleResult folds the merged fragments into per-campaign outcome
// counts. Folding happens in ascending shard order (Merge.Fold), the
// order a local campaign.Run merges in, so the aggregate is
// byte-identical to a single-process run's.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	if j.state == "running" {
		c.mu.Unlock()
		httpError(w, http.StatusConflict, "job %s is still running", j.id)
		return
	}
	res := JobResult{
		ID:            j.id,
		State:         j.state,
		Error:         j.errMsg,
		ReportSummary: j.report.Summary(),
	}
	campaigns := append([]*jobCampaign(nil), j.campaigns...)
	c.mu.Unlock()

	for _, jc := range campaigns {
		cr := CampaignResult{
			Label:    jc.merge.Label(),
			Scheme:   jc.schemeSpec,
			Scenario: jc.scenarioSpec,
			Trials:   jc.merge.Spec().Trials,
		}
		err := jc.merge.Fold(func(i int, frag json.RawMessage) error {
			var s [4]int64
			if err := json.Unmarshal(frag, &s); err != nil {
				return err
			}
			reliability.MergeCounts(&cr.Counts, s)
			return nil
		})
		if err != nil {
			httpError(w, http.StatusInternalServerError, "folding %q: %v", cr.Label, err)
			return
		}
		c.mu.Lock()
		for i := range jc.slots {
			if jc.slots[i].state == slotFailed {
				cr.FailedShards = append(cr.FailedShards, i)
			}
		}
		c.mu.Unlock()
		res.Campaigns = append(res.Campaigns, cr)
	}
	writeJSON(w, http.StatusOK, res)
}

// handleEvents streams job progress as SSE: "progress" and "shard" on
// every completion, "warning" on lease expiry and shard failures, and a
// final "done" carrying the terminal status, after which the stream
// closes. A slow consumer's queue overflow drops events rather than
// blocking the coordinator.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch := make(chan Event, 64)

	c.mu.Lock()
	st := c.statusLocked(j)
	terminal := j.state != "running"
	snapID := c.eventID(j)
	if !terminal {
		j.subs[ch] = struct{}{}
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(j.subs, ch)
		c.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// The opening snapshot carries the job's latest event id: a watcher
	// reconnecting after a drop learns immediately how far the stream
	// has advanced, and Client.Watch dedups the snapshot itself if it
	// already delivered that state.
	first := "progress"
	if terminal {
		first = "done"
	}
	if !writeSSE(w, fl, Event{Name: first, Data: mustJSON(st), ID: snapID}) || terminal {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-c.done:
			// Coordinator shutting down: release the stream so the HTTP
			// server's graceful shutdown is not held open by watchers.
			return
		case ev := <-ch:
			if !writeSSE(w, fl, ev) || ev.Name == "done" {
				return
			}
		}
	}
}

// broadcastLocked queues an event to every subscriber, dropping it for
// subscribers whose queues are full. Every event gets the next id in
// the job's (epoch, seq) sequence — ids keep advancing even with no
// subscriber attached, so a watcher that reconnects after a gap can
// tell replayed events from new ones.
func (c *Coordinator) broadcastLocked(j *job, name string, data any) {
	j.eventSeq++
	if len(j.subs) == 0 {
		return
	}
	ev := Event{Name: name, Data: mustJSON(data), ID: c.eventID(j)}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// eventID is the SSE id of the job's latest event: the journal epoch in
// the high 32 bits, the per-job sequence in the low. Epochs bump every
// coordinator incarnation, so ids are strictly increasing across
// restarts even though the sequence itself restarts at zero.
func (c *Coordinator) eventID(j *job) uint64 {
	return uint64(c.epoch)<<32 | uint64(j.eventSeq)
}

// statusLocked builds the wire status of a job.
func (c *Coordinator) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:            j.id,
		State:         j.state,
		Error:         j.errMsg,
		Spec:          j.spec,
		Reissued:      j.reissued,
		Progress:      j.progress.Snapshot().String(),
		ReportSummary: j.report.Summary(),
	}
	for _, jc := range j.campaigns {
		st.ShardsDone += jc.done
		st.ShardsFailed += jc.failed
		st.ShardsTotal += len(jc.slots)
		st.Campaigns = append(st.Campaigns, CampaignStatus{
			Label:    jc.merge.Label(),
			Scheme:   jc.schemeSpec,
			Scenario: jc.scenarioSpec,
			Done:     jc.done,
			Failed:   jc.failed,
			Total:    len(jc.slots),
		})
	}
	return st
}

// lookupJob resolves the {id} path value, writing a 404 on a miss.
func (c *Coordinator) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j, ok
}

// leaseID encodes (job, campaign index, shard, generation); the
// generation distinguishes re-issues of the same shard.
func leaseID(job string, campaignIdx, shard, gen int) string {
	return fmt.Sprintf("%s.%d.%d.%d", job, campaignIdx, shard, gen)
}

// resolveLease parses a lease ID back to its job, campaign index, shard
// and generation, writing a 404 for IDs that never existed.
func (c *Coordinator) resolveLease(w http.ResponseWriter, r *http.Request) (*job, *jobCampaign, int, int, int, bool) {
	id := r.PathValue("id")
	parts := strings.Split(id, ".")
	if len(parts) != 4 {
		httpError(w, http.StatusNotFound, "malformed lease id %q", id)
		return nil, nil, 0, 0, 0, false
	}
	ci, err1 := strconv.Atoi(parts[1])
	si, err2 := strconv.Atoi(parts[2])
	gen, err3 := strconv.Atoi(parts[3])
	c.mu.Lock()
	j, ok := c.jobs[parts[0]]
	c.mu.Unlock()
	if err1 != nil || err2 != nil || err3 != nil || !ok ||
		ci < 0 || ci >= len(j.campaigns) || si < 0 || si >= len(j.campaigns[ci].slots) {
		httpError(w, http.StatusNotFound, "no lease %q", id)
		return nil, nil, 0, 0, 0, false
	}
	return j, j.campaigns[ci], ci, si, gen, true
}

// writeSSE emits one event in SSE framing; false when the client went
// away.
func writeSSE(w http.ResponseWriter, fl http.Flusher, ev Event) bool {
	if ev.ID > 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", ev.ID); err != nil {
			return false
		}
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data); err != nil {
		return false
	}
	fl.Flush()
	return true
}

func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		return json.RawMessage(fmt.Sprintf("{\"error\":%q}", err.Error()))
	}
	return b
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
