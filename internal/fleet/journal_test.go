package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pair/internal/campaign"
)

// incarnation is one coordinator lifetime in a crash-recovery test:
// the same journal and checkpoint directories are handed to each
// successive incarnation, and kill() models the previous one dying
// without ceremony.
type incarnation struct {
	coord  *Coordinator
	srv    *httptest.Server
	client *Client
}

func bootIncarnation(t *testing.T, opts CoordinatorOptions) *incarnation {
	t.Helper()
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(coord.Handler())
	return &incarnation{coord: coord, srv: srv, client: NewClientWith(srv.URL, fastClientOptions())}
}

// kill severs every connection and abandons the journal mid-flight —
// the in-process stand-in for SIGKILL (the OS reclaiming the dead
// process's sockets and file descriptors).
func (in *incarnation) kill() {
	in.srv.Close()
	in.coord.Abandon()
}

// shutdown is the graceful path.
func (in *incarnation) shutdown() {
	in.coord.Close()
	in.srv.Close()
}

// TestJournalReplayRebuildsState is the crash-recovery core: jobs,
// merged shards, lease generations and failure counts all survive a
// coordinator kill, a pre-crash lease keeps working against the
// restarted coordinator, and a duplicate completion across the restart
// is deduplicated, never double-counted.
func TestJournalReplayRebuildsState(t *testing.T) {
	dir := t.TempDir()
	opts := CoordinatorOptions{
		CheckpointDir: filepath.Join(dir, "ckpt"),
		JournalDir:    filepath.Join(dir, "journal"),
		LeaseTTL:      time.Minute,
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	inc1 := bootIncarnation(t, opts)
	id, err := inc1.client.Submit(ctx, testJobSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Drive three leases into three different fates before the crash:
	// one completed, one failed once (transiently), one still held.
	l1, _ := inc1.client.Lease(ctx, "done-worker")
	l2, _ := inc1.client.Lease(ctx, "flaky-worker")
	l3, _ := inc1.client.Lease(ctx, "held-worker")
	if l1 == nil || l2 == nil || l3 == nil {
		t.Fatal("could not obtain three leases")
	}
	frag := func(l *Lease) json.RawMessage {
		return json.RawMessage(fmt.Sprintf("[%d,0,0,0]", testShardSize))
	}
	if _, err := inc1.client.Complete(ctx, l1.ID, CompleteRequest{Worker: "done-worker", Fragment: frag(l1)}); err != nil {
		t.Fatalf("complete before crash: %v", err)
	}
	if _, err := inc1.client.Complete(ctx, l2.ID, CompleteRequest{Worker: "flaky-worker", Error: "transient shard error"}); err != nil {
		t.Fatalf("failure report before crash: %v", err)
	}
	inc1.kill()

	inc2 := bootIncarnation(t, opts)
	defer inc2.shutdown()
	st, err := inc2.client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if st.State != "running" || st.ShardsDone != 1 || st.ShardsFailed != 0 || st.ShardsTotal != 16 {
		t.Fatalf("replayed status = %s done=%d failed=%d total=%d, want running 1/0/16",
			st.State, st.ShardsDone, st.ShardsFailed, st.ShardsTotal)
	}

	// The held lease survived the restart: its generation was replayed,
	// so renewing and completing it just works.
	if err := inc2.client.Renew(ctx, l3.ID); err != nil {
		t.Fatalf("renewing a pre-crash lease after restart: %v", err)
	}
	cres, err := inc2.client.Complete(ctx, l3.ID, CompleteRequest{Worker: "held-worker", Fragment: frag(l3)})
	if err != nil || cres.Duplicate {
		t.Fatalf("completing a pre-crash lease after restart = %+v, %v; want accepted", cres, err)
	}

	// A straggler re-delivering the pre-crash completion is deduplicated
	// — shards never double-complete across a restart.
	dup, err := inc2.client.Complete(ctx, l1.ID, CompleteRequest{Worker: "done-worker", Fragment: frag(l1)})
	if err != nil || !dup.Duplicate {
		t.Fatalf("re-delivered completion = %+v, %v; want duplicate", dup, err)
	}
	st, err = inc2.client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.ShardsDone != 2 {
		t.Fatalf("after dedup ShardsDone = %d, want 2", st.ShardsDone)
	}

	// The transient failure count survived too: two more permanent
	// failures (budget 3) retire the shard.
	for i := 0; i < 2; i++ {
		l, err := inc2.client.Lease(ctx, "flaky-worker")
		if err != nil || l == nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if _, err := inc2.client.Complete(ctx, l.ID, CompleteRequest{Worker: "flaky-worker", Error: "still broken"}); err != nil {
			t.Fatalf("failure report %d: %v", i, err)
		}
	}
	st, _ = inc2.client.Status(ctx, id)
	if st.ShardsFailed != 1 {
		t.Fatalf("ShardsFailed = %d, want 1 (pre-crash failure counted toward the budget)", st.ShardsFailed)
	}
}

// TestJournalCompleteWithoutFragmentReissued covers the crash window
// between the journaled completion and the fragment reaching disk: on
// replay the shard reverts to pending (recomputation is byte-identical)
// and the job is NOT resurrected as done.
func TestJournalCompleteWithoutFragmentReissued(t *testing.T) {
	dir := t.TempDir()
	var warnMu sync.Mutex
	var warns []string
	opts := CoordinatorOptions{
		// No CheckpointDir: fragments live only in memory, so a kill
		// loses them all — the deterministic stand-in for the
		// journal-ahead-of-checkpoint crash window.
		JournalDir: filepath.Join(dir, "journal"),
		LeaseTTL:   time.Minute,
		Warnf: func(format string, args ...any) {
			warnMu.Lock()
			warns = append(warns, fmt.Sprintf(format, args...))
			warnMu.Unlock()
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	inc1 := bootIncarnation(t, opts)
	id, err := inc1.client.Submit(ctx, singleShardSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	l, _ := inc1.client.Lease(ctx, "w")
	if l == nil {
		t.Fatal("no lease")
	}
	if _, err := inc1.client.Complete(ctx, l.ID, CompleteRequest{Worker: "w", Fragment: []byte(`[30,0,0,0]`)}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if st, _ := inc1.client.Status(ctx, id); st.State != "done" {
		t.Fatalf("pre-crash state = %q, want done", st.State)
	}
	inc1.kill()

	inc2 := bootIncarnation(t, opts)
	defer inc2.shutdown()
	st, err := inc2.client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if st.State != "running" || st.ShardsDone != 0 {
		t.Fatalf("replayed status = %s done=%d, want running 0 (fragment was lost with the process)", st.State, st.ShardsDone)
	}
	warnMu.Lock()
	warned := strings.Contains(strings.Join(warns, "\n"), "no fragment is on disk")
	warnMu.Unlock()
	if !warned {
		t.Errorf("reconcile did not warn about the journal/checkpoint divergence; warnings: %v", warns)
	}

	// The shard is leasable again and the job can still finish.
	l2, err := inc2.client.Lease(ctx, "w2")
	if err != nil || l2 == nil || l2.Shard != l.Shard {
		t.Fatalf("post-replay lease = %+v, %v; want the reverted shard", l2, err)
	}
	if l2.ID == l.ID {
		t.Errorf("re-issued lease kept the pre-crash ID %s; generations must advance", l.ID)
	}
	if _, err := inc2.client.Complete(ctx, l2.ID, CompleteRequest{Worker: "w2", Fragment: []byte(`[30,0,0,0]`)}); err != nil {
		t.Fatalf("complete after replay: %v", err)
	}
	if st, _ := inc2.client.Status(ctx, id); st.State != "done" {
		t.Errorf("final state = %q, want done", st.State)
	}
}

// TestJournalExpiryAcrossRestart: a lease granted before the crash and
// unrenewed after it expires on the restarted coordinator, is re-issued
// under a fresh generation, and the stale holder is refused.
func TestJournalExpiryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	opts := CoordinatorOptions{
		CheckpointDir: filepath.Join(dir, "ckpt"),
		JournalDir:    filepath.Join(dir, "journal"),
		LeaseTTL:      50 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	inc1 := bootIncarnation(t, opts)
	if _, err := inc1.client.Submit(ctx, singleShardSpec()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	l, _ := inc1.client.Lease(ctx, "doomed")
	if l == nil {
		t.Fatal("no lease")
	}
	inc1.kill()

	inc2 := bootIncarnation(t, opts)
	defer inc2.shutdown()
	time.Sleep(80 * time.Millisecond) // let the replayed deadline lapse

	l2, err := inc2.client.Lease(ctx, "heir")
	if err != nil || l2 == nil || l2.Shard != l.Shard {
		t.Fatalf("post-expiry lease = %+v, %v; want the shard re-issued", l2, err)
	}
	if l2.ID == l.ID {
		t.Fatalf("re-issue kept lease ID %s; the replayed generation must advance", l.ID)
	}
	if err := inc2.client.Renew(ctx, l.ID); !errors.Is(err, ErrLeaseGone) {
		t.Errorf("stale renew after restart = %v, want ErrLeaseGone", err)
	}
}

// TestJournalCancelSurvivesRestart: cancellation is journaled strictly
// and stands after replay (it is an operator action, not derivable from
// checkpoints).
func TestJournalCancelSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := CoordinatorOptions{
		JournalDir: filepath.Join(dir, "journal"),
		LeaseTTL:   time.Minute,
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	inc1 := bootIncarnation(t, opts)
	id, err := inc1.client.Submit(ctx, testJobSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := inc1.client.Cancel(ctx, id); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	inc1.kill()

	inc2 := bootIncarnation(t, opts)
	defer inc2.shutdown()
	st, err := inc2.client.Status(ctx, id)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if st.State != "cancelled" {
		t.Fatalf("replayed state = %q, want cancelled", st.State)
	}
	if l, err := inc2.client.Lease(ctx, "w"); err != nil || l != nil {
		t.Errorf("lease on a cancelled job = %+v, %v; want none", l, err)
	}
}

// TestJournalRejectsDamage: replay-or-reject. A journal the coordinator
// cannot fully understand fails NewCoordinator rather than rebuilding a
// partial or speculative state.
func TestJournalRejectsDamage(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"mid-log corruption", "GARBAGE\n" + `{"t":"epoch","epoch":1}` + "\n"},
		{"untyped record", `{"epoch":1}` + "\n"},
		{"unknown type", `{"t":"quorum"}` + "\n"},
		{"lease for unknown job", `{"t":"grant","job":"j9","campaign":0,"shard":0,"gen":1}` + "\n"},
		{"cancel for unknown job", `{"t":"cancel","job":"j9"}` + "\n"},
		{"job without spec", `{"t":"job","job":"j1"}` + "\n"},
		{"invalid terminal state", `{"t":"final","job":"j1","state":"perhaps"}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, JournalFile), []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			c, err := NewCoordinator(CoordinatorOptions{JournalDir: dir})
			if err == nil {
				c.Close()
				t.Fatalf("NewCoordinator accepted a journal with %s", tc.name)
			}
		})
	}
}

// TestJournalShardOutOfRange: a lease record pointing outside the job's
// rebuilt shard table is rejected, not clamped.
func TestJournalShardOutOfRange(t *testing.T) {
	spec := singleShardSpec()
	specJSON, _ := json.Marshal(&spec)
	dir := t.TempDir()
	content := fmt.Sprintf("{\"t\":\"job\",\"job\":\"j1\",\"spec\":%s}\n{\"t\":\"grant\",\"job\":\"j1\",\"campaign\":0,\"shard\":7,\"gen\":1}\n", specJSON)
	if err := os.WriteFile(filepath.Join(dir, JournalFile), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(CoordinatorOptions{JournalDir: dir})
	if err == nil {
		c.Close()
		t.Fatal("NewCoordinator accepted a grant for a shard that does not exist")
	}
}

// FuzzJournalReplay holds the replay-or-reject contract over arbitrary
// journal bytes: NewCoordinator either rejects the journal or rebuilds
// a coherent state — never a panic — and a second replay of the same
// journal rebuilds the identical state (replay is deterministic).
func FuzzJournalReplay(f *testing.F) {
	spec := singleShardSpec()
	specJSON, _ := json.Marshal(&spec)
	jobRec := fmt.Sprintf("{\"t\":\"job\",\"job\":\"j1\",\"spec\":%s}\n", specJSON)
	f.Add([]byte(`{"t":"epoch","epoch":1}` + "\n"))
	f.Add([]byte(jobRec))
	f.Add([]byte(jobRec + `{"t":"grant","job":"j1","campaign":0,"shard":0,"gen":1,"worker":"w"}` + "\n"))
	f.Add([]byte(jobRec + `{"t":"grant","job":"j1","campaign":0,"shard":0,"gen":1}` + "\n" + `{"t":"complete","job":"j1","campaign":0,"shard":0,"gen":1}` + "\n"))
	f.Add([]byte(jobRec + `{"t":"cancel","job":"j1"}` + "\n" + `{"t":"final","job":"j1","state":"cancelled"}` + "\n"))
	f.Add([]byte("{\"t\":\"job\",\"job\":\"j1\"}\n"))
	f.Add([]byte("torn {\"t\":"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Bound the work a hostile spec can demand before handing the
		// bytes to the real replay path: campaign expansion is O(shards
		// x schemes x scenarios) and the fuzzer should explore the state
		// machine, not allocation limits.
		if recs, _, err := campaign.ParseWAL(raw); err == nil {
			for _, r := range recs {
				var rec journalRecord
				if json.Unmarshal(r, &rec) == nil && rec.Spec != nil {
					if rec.Spec.Trials > 10_000 || len(rec.Spec.Schemes)*len(rec.Spec.Scenarios) > 16 {
						t.Skip("spec too large for fuzzing")
					}
				}
			}
		}
		snapshot := func() ([]JobStatus, error) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, JournalFile), raw, 0o644); err != nil {
				t.Fatal(err)
			}
			c, err := NewCoordinator(CoordinatorOptions{JournalDir: dir})
			if err != nil {
				return nil, err
			}
			defer c.Close()
			c.mu.Lock()
			defer c.mu.Unlock()
			out := make([]JobStatus, 0, len(c.order))
			for _, j := range c.order {
				st := c.statusLocked(j)
				st.Progress = "" // wall-clock dependent; not part of the contract
				st.ReportSummary = ""
				out = append(out, st)
			}
			return out, nil
		}
		st1, err1 := snapshot()
		st2, err2 := snapshot()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("replay determinism broken: first err=%v, second err=%v", err1, err2)
		}
		if err1 != nil {
			return // rejected both times: fine
		}
		b1, _ := json.Marshal(st1)
		b2, _ := json.Marshal(st2)
		if string(b1) != string(b2) {
			t.Fatalf("replaying the same journal twice diverged:\n%s\nvs\n%s", b1, b2)
		}
	})
}
