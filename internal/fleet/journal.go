package fleet

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"pair/internal/campaign"
	"pair/internal/failpoint"
)

// JournalFile is the WAL file name inside a coordinator's -journal
// directory.
const JournalFile = "coordinator.wal"

// Journal record types. Each HTTP-visible state transition of the
// coordinator appends exactly one record; replay folds them back, in
// order, onto jobs rebuilt from the journaled specs.
const (
	recEpoch    = "epoch"    // one per coordinator incarnation
	recJob      = "job"      // job submission (carries the full spec)
	recGrant    = "grant"    // lease granted (or re-issued: gen bumps)
	recRenew    = "renew"    // lease deadline extended
	recExpire   = "expire"   // lease reclaimed after a missed deadline
	recComplete = "complete" // fresh fragment merged (the fragment itself lives in CheckpointDir)
	recFail     = "fail"     // worker-reported shard failure (Permanent: budget exhausted)
	recCancel   = "cancel"   // job cancelled
	recFinal    = "final"    // job reached a terminal state
)

// journalRecord is the on-disk journal record. One struct covers every
// type; irrelevant fields stay at their zero values and are omitted.
type journalRecord struct {
	T string `json:"t"`

	// recEpoch
	Epoch int `json:"epoch,omitempty"`

	// recJob, and the job every lease-scoped record belongs to.
	Job  string   `json:"job,omitempty"`
	Spec *JobSpec `json:"spec,omitempty"`

	// Lease-scoped records (grant/renew/expire/complete/fail).
	Campaign int       `json:"campaign,omitempty"` // campaign index within the job
	Shard    int       `json:"shard,omitempty"`
	Gen      int       `json:"gen,omitempty"`
	Worker   string    `json:"worker,omitempty"`
	Deadline time.Time `json:"deadline,omitempty"`

	// recFail
	Failures  int  `json:"failures,omitempty"`
	Permanent bool `json:"permanent,omitempty"`

	// recFinal / recCancel
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// journal wraps the campaign WAL with the fleet failpoint and a nil-
// receiver no-op so coordinator code can journal unconditionally.
type journal struct {
	wal *campaign.WAL
}

// append journals one record durably (write + fsync before returning).
// A nil journal (coordinator without -journal) accepts everything.
func (jl *journal) append(rec journalRecord) error {
	if jl == nil {
		return nil
	}
	if err := failpoint.Hit(FailpointJournalAppend); err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	return jl.wal.Append(rec)
}

func (jl *journal) close() {
	if jl != nil {
		jl.wal.Close()
	}
}

func (jl *journal) abandon() {
	if jl != nil {
		jl.wal.Abandon()
	}
}

// openJournal opens (or creates) the journal under dir and returns the
// parsed records of previous incarnations. A torn tail — a record cut
// short by a crash mid-append — is dropped and truncated by the WAL
// layer; mid-log corruption rejects the whole journal.
func openJournal(dir string) (*journal, []journalRecord, error) {
	wal, raw, err := campaign.OpenWAL(filepath.Join(dir, JournalFile))
	if err != nil {
		return nil, nil, err
	}
	recs, err := decodeJournal(raw)
	if err != nil {
		wal.Close()
		return nil, nil, err
	}
	return &journal{wal: wal}, recs, nil
}

// decodeJournal turns raw WAL records into typed journal records,
// rejecting anything that does not decode — replay-or-reject, so a
// coordinator never rebuilds state from a record it half-understood.
func decodeJournal(raw []json.RawMessage) ([]journalRecord, error) {
	recs := make([]journalRecord, 0, len(raw))
	for i, r := range raw {
		var rec journalRecord
		if err := json.Unmarshal(r, &rec); err != nil {
			return nil, fmt.Errorf("fleet: journal record %d: %w", i, err)
		}
		if rec.T == "" {
			return nil, fmt.Errorf("fleet: journal record %d has no type: %s", i, r)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// replay folds journal records onto the coordinator. Jobs are rebuilt
// from their journaled specs with checkpoint resume forced on — the
// CheckpointDir fragments are the durable results, the journal is the
// durable control state — then lease/completion records replay the
// slot lifecycle, and reconcile arbitrates where the two disagree.
// Called from NewCoordinator before the coordinator serves anything,
// so no locking.
func (c *Coordinator) replay(recs []journalRecord) error {
	maxEpoch := 0
	for i, rec := range recs {
		switch rec.T {
		case recEpoch:
			if rec.Epoch > maxEpoch {
				maxEpoch = rec.Epoch
			}
		case recJob:
			if rec.Spec == nil || rec.Job == "" {
				return fmt.Errorf("fleet: journal record %d: job record lacks id or spec", i)
			}
			if _, dup := c.jobs[rec.Job]; dup {
				return fmt.Errorf("fleet: journal record %d: duplicate job %s", i, rec.Job)
			}
			j, err := c.buildJob(*rec.Spec, true, c.opts.Salvage)
			if err != nil {
				return fmt.Errorf("fleet: replaying job %s: %w", rec.Job, err)
			}
			j.id = rec.Job
			c.jobs[j.id] = j
			c.order = append(c.order, j)
			if n := jobSeq(j.id); n > c.seq {
				c.seq = n
			}
		case recGrant, recRenew, recExpire, recComplete, recFail:
			j, s, err := c.replaySlot(rec)
			if err != nil {
				return fmt.Errorf("fleet: journal record %d: %w", i, err)
			}
			switch rec.T {
			case recGrant:
				if rec.Gen > s.gen {
					s.gen = rec.Gen
				}
				if s.state == slotPending {
					s.state = slotLeased
				}
				s.worker = rec.Worker
				s.deadline = rec.Deadline
			case recRenew:
				if s.state == slotLeased && s.gen == rec.Gen {
					s.deadline = rec.Deadline
				}
			case recExpire:
				if s.state == slotLeased && s.gen == rec.Gen {
					s.state = slotPending
					j.reissued++
				}
			case recComplete:
				// Tentative: reconcile demotes this back to pending if
				// the fragment never made it to the checkpoint.
				if s.state != slotFailed {
					s.state = slotDone
				}
			case recFail:
				if rec.Failures > s.failures {
					s.failures = rec.Failures
				}
				if rec.Permanent {
					s.state = slotFailed
				} else if s.state == slotLeased {
					s.state = slotPending
				}
			}
		case recCancel:
			j, ok := c.jobs[rec.Job]
			if !ok {
				return fmt.Errorf("fleet: journal record %d: cancel for unknown job %s", i, rec.Job)
			}
			j.state = "cancelled"
		case recFinal:
			j, ok := c.jobs[rec.Job]
			if !ok {
				return fmt.Errorf("fleet: journal record %d: final for unknown job %s", i, rec.Job)
			}
			if rec.State != "done" && rec.State != "failed" && rec.State != "cancelled" {
				return fmt.Errorf("fleet: journal record %d: invalid terminal state %q", i, rec.State)
			}
			j.state = rec.State
			j.errMsg = rec.Error
		default:
			return fmt.Errorf("fleet: journal record %d: unknown type %q", i, rec.T)
		}
	}
	c.epoch = maxEpoch + 1
	for _, j := range c.order {
		c.reconcile(j)
		// done/failed are derived states: re-derive them from the
		// reconciled slots instead of trusting the journaled final
		// record — a completion whose fragment was lost may have
		// un-finished the job. Cancellation is an operator action, not
		// derivable, so it stands as journaled.
		if j.state == "done" || j.state == "failed" {
			j.state = "running"
			j.errMsg = ""
		}
		c.finalizeLocked(j)
	}
	return nil
}

// replaySlot resolves a lease-scoped record to its job and slot.
func (c *Coordinator) replaySlot(rec journalRecord) (*job, *slot, error) {
	j, ok := c.jobs[rec.Job]
	if !ok {
		return nil, nil, fmt.Errorf("%s for unknown job %s", rec.T, rec.Job)
	}
	if rec.Campaign < 0 || rec.Campaign >= len(j.campaigns) {
		return nil, nil, fmt.Errorf("%s for job %s campaign %d out of range", rec.T, rec.Job, rec.Campaign)
	}
	jc := j.campaigns[rec.Campaign]
	if rec.Shard < 0 || rec.Shard >= len(jc.slots) {
		return nil, nil, fmt.Errorf("%s for job %s shard %d out of range", rec.T, rec.Job, rec.Shard)
	}
	return j, &jc.slots[rec.Shard], nil
}

// reconcile arbitrates between the journal's view of a job and the
// checkpoint fragments on disk, then rebuilds the derived counters.
// The rules make every crash window recoverable:
//
//   - A fragment on disk marks its shard done no matter what the
//     journal says: results are the ground truth, and a re-derived
//     shard would be byte-identical anyway.
//   - A journal that says "complete" with no fragment on disk (crash
//     between the journal append and the checkpoint write, or a
//     coordinator journaling without a CheckpointDir) demotes the
//     shard back to pending — the generation counter survives, so a
//     straggler holding the pre-crash lease can still renew, and its
//     eventual completion simply lands first.
func (c *Coordinator) reconcile(j *job) {
	for _, jc := range j.campaigns {
		jc.done, jc.failed = 0, 0
		for i := range jc.slots {
			s := &jc.slots[i]
			switch {
			case jc.merge.Done(i):
				if s.state != slotDone {
					j.progress.ShardResumed(jc.merge.Spec().Shard(i).Trials)
				}
				s.state = slotDone
			case s.state == slotDone:
				c.warnf("fleet: journal says %s shard %d completed but no fragment is on disk; re-issuing (recomputation is byte-identical)",
					jc.merge.Label(), i)
				s.state = slotPending
			case s.state == slotFailed:
				j.progress.ShardFailed(jc.merge.Spec().Shard(i).Trials)
			}
			switch jc.slots[i].state {
			case slotDone:
				jc.done++
			case slotFailed:
				jc.failed++
			}
		}
	}
}

// jobSeq extracts the numeric suffix of a job id ("j17" -> 17), 0 for
// anything unparsable.
func jobSeq(id string) int {
	n := 0
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	for _, r := range id[1:] {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int(r-'0')
	}
	return n
}
