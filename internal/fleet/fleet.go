// Package fleet turns the campaign engine into a distributed service:
// an HTTP/JSON coordinator that accepts campaign specs, splits them
// into shard leases, hands the leases to worker processes, and merges
// the returned shard fragments into the standard campaign checkpoint
// format.
//
// # Why work-stealing is safe
//
// Every shard's RNG stream is derived by FNV-1a over (campaign label,
// campaign seed, shard index) — never from a worker identity, a node
// name, or scheduling order (campaign.ShardSeed). A shard therefore
// computes the same bytes no matter which worker runs it, how many
// times a lease expires and is re-issued, or whether two workers race
// to finish the same shard. The coordinator exploits this freely: an
// expired lease is simply re-issued, and a duplicate completion is
// dropped by shard index with no correctness concern — first-wins and
// last-wins are byte-identical.
//
// # Wire format
//
// A job is declarative: scheme specs in the internal/schemes grammar
// (name[@org][:key=val,...]) crossed with fault-scenario specs in the
// internal/faults grammar (name[:key=val,...] | compose(...)). Each
// (scheme, scenario) pair expands to one campaign — identical in label,
// seed derivation and shard kernel to the campaign pairsim's f13
// experiment runs locally (reliability.ScenarioCampaignSpec /
// ScenarioShardFn) — so a fleet's merged checkpoint directory and its
// folded aggregates are byte-identical to a single-process run, and
// `pairsim -resume` picks up a fleet run transparently.
package fleet

import (
	"encoding/json"
	"time"
)

// Failpoint names the fleet evaluates, exported so chaos tests (and
// operators reproducing a defect, via failpoint.ArmFromEnv) can arm
// them by name. Disarmed they are zero-cost no-ops.
const (
	// FailpointWorkerLease is hit by a worker immediately after it is
	// granted a lease, before any renewal or computation. An error
	// action makes the worker abandon the lease silently — from the
	// coordinator's view the worker died mid-shard, exercising lease
	// expiry and re-issue; a panic action models the same crash
	// non-gracefully.
	FailpointWorkerLease = "fleet/worker/lease"

	// FailpointJournalAppend guards every coordinator journal append.
	// An error action loses the record (the append fails before any
	// bytes reach the WAL); an exit action kills the process at the
	// append boundary, the chaos suite's stand-in for SIGKILL
	// before/after a journaled state transition (combine with Skip to
	// pick the exact record).
	FailpointJournalAppend = "fleet/journal/append"

	// FailpointCoordRequest is hit at the top of every coordinator
	// HTTP handler: an error action answers 500 (a transient server
	// fault the client retry layer must absorb), a delay action models
	// a slow coordinator for client-timeout tests.
	FailpointCoordRequest = "fleet/coord/request"

	// FailpointCoordDrop is hit right after FailpointCoordRequest: an
	// error action aborts the connection without writing any response,
	// modeling a request dropped on the wire.
	FailpointCoordDrop = "fleet/coord/drop"

	// FailpointClientRequest is hit before every client HTTP round
	// trip: an error action stands in for a network failure (the
	// request never reaches the coordinator), a delay action models a
	// congested path.
	FailpointClientRequest = "fleet/client/request"
)

// JobSpec is the submission wire format: the campaign matrix to run.
// Scheme and scenario specs are shipped as strings and rebuilt against
// the registries on the coordinator (validation) and on every worker
// (execution), so the spec grammars are the only contract between
// nodes.
type JobSpec struct {
	// Namespace prefixes every campaign label (pairsim submits its
	// experiment id, e.g. "f13", so fleet checkpoints land exactly where
	// a local `pairsim -exp f13 -checkpoint` run would put them).
	Namespace string `json:"namespace,omitempty"`
	// Schemes are scheme specs in the internal/schemes grammar.
	Schemes []string `json:"schemes"`
	// Scenarios are fault-scenario specs in the internal/faults grammar.
	Scenarios []string `json:"scenarios"`
	// Trials is the Monte-Carlo trial count per campaign.
	Trials int `json:"trials"`
	// ShardSize is trials per shard; 0 means campaign.DefaultShardSize.
	ShardSize int `json:"shard_size,omitempty"`
	// Seed is the campaign seed every shard stream derives from.
	Seed int64 `json:"seed"`
}

// Lease is one unit of granted work: a single shard of one campaign,
// with everything a worker needs to recompute it deterministically and
// a deadline by which the worker must complete or renew.
type Lease struct {
	// ID names this grant; completions and renewals quote it. Re-issues
	// of the same shard get fresh IDs.
	ID string `json:"id"`
	// Job is the job the shard belongs to.
	Job string `json:"job"`
	// Label is the full (namespaced) campaign label — the seed salt.
	Label string `json:"label"`
	// Scheme and Scenario rebuild the shard kernel on the worker.
	Scheme   string `json:"scheme"`
	Scenario string `json:"scenario"`
	// Shard is the shard index within the campaign.
	Shard int `json:"shard"`
	// Trials, ShardSize and Seed reconstruct the campaign.Spec (Trials
	// is the campaign total; the shard's own count follows from the
	// spec's shard math).
	Trials    int   `json:"trials"`
	ShardSize int   `json:"shard_size"`
	Seed      int64 `json:"seed"`
	// Deadline is when the lease expires unless renewed; TTL is the
	// renewal interval the coordinator grants (workers renew at TTL/3).
	Deadline time.Time     `json:"deadline"`
	TTL      time.Duration `json:"ttl"`
}

// CompleteRequest reports the outcome of a leased shard: exactly one of
// Fragment (the shard result as raw JSON, byte-identical to what a
// local campaign would checkpoint) or Error (a permanent shard failure
// after the worker's own retry budget).
type CompleteRequest struct {
	Worker   string          `json:"worker"`
	Fragment json.RawMessage `json:"fragment,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	// Duplicate marks a completion for a shard that was already merged
	// (a re-issued lease whose original worker also finished); the
	// fragment was discarded.
	Duplicate bool `json:"duplicate,omitempty"`
	// Cancelled marks a completion for a cancelled job.
	Cancelled bool `json:"cancelled,omitempty"`
}

// CampaignStatus is the live state of one campaign of a job.
type CampaignStatus struct {
	Label    string `json:"label"`
	Scheme   string `json:"scheme"`
	Scenario string `json:"scenario"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Total    int    `json:"total"`
}

// JobStatus is the status wire format.
type JobStatus struct {
	ID            string           `json:"id"`
	State         string           `json:"state"` // running | done | failed | cancelled
	Error         string           `json:"error,omitempty"`
	Spec          JobSpec          `json:"spec"`
	ShardsDone    int              `json:"shards_done"`
	ShardsFailed  int              `json:"shards_failed"`
	ShardsTotal   int              `json:"shards_total"`
	Reissued      int              `json:"reissued"` // expired leases re-issued
	Progress      string           `json:"progress"` // one-line snapshot, campaign.Snapshot format
	Campaigns     []CampaignStatus `json:"campaigns"`
	ReportSummary string           `json:"report_summary,omitempty"`
}

// CampaignResult is one campaign's merged outcome.
type CampaignResult struct {
	Label    string `json:"label"`
	Scheme   string `json:"scheme"`
	Scenario string `json:"scenario"`
	Trials   int    `json:"trials"`
	// Counts are the outcome tallies folded from the shard fragments in
	// ascending shard order (OK/CE/DUE/SDC, indexed by ecc.Outcome*).
	Counts [4]int64 `json:"counts"`
	// FailedShards lists shards lost to permanent failures (empty on a
	// clean run; Counts is then partial).
	FailedShards []int `json:"failed_shards,omitempty"`
}

// JobResult is the final result wire format.
type JobResult struct {
	ID            string           `json:"id"`
	State         string           `json:"state"`
	Error         string           `json:"error,omitempty"`
	Campaigns     []CampaignResult `json:"campaigns"`
	ReportSummary string           `json:"report_summary,omitempty"`
}

// Event is one SSE payload. Name is the SSE event field ("progress",
// "shard", "warning", "done"); Data is the JSON data field. ID, when
// nonzero, is the SSE id field: a per-job sequence scoped under the
// coordinator's journal epoch (epoch<<32 | seq), strictly increasing
// across coordinator restarts, so a reconnecting watcher can drop
// events it has already delivered (Client.Watch does exactly that;
// "done" events are always delivered regardless).
type Event struct {
	Name string
	Data json.RawMessage
	ID   uint64
}
