package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pair/internal/campaign"
	"pair/internal/failpoint"
)

// ErrLeaseGone marks a renewal or completion whose lease the
// coordinator no longer recognizes as held — it expired and was
// re-issued, the job was cancelled, or the shard already finished.
var ErrLeaseGone = errors.New("fleet: lease gone")

// Client-side fault-tolerance defaults. Every coordinator endpoint is a
// quick state transition, so a request that has not answered within
// DefaultRequestTimeout is treated as lost and retried — except the SSE
// stream, which is long-lived by design and only bounded by the dial
// and response-header timeouts.
const (
	// DefaultDialTimeout bounds establishing a TCP connection.
	DefaultDialTimeout = 5 * time.Second
	// DefaultRequestTimeout bounds one whole request/response exchange
	// (not the SSE stream).
	DefaultRequestTimeout = 10 * time.Second
	// DefaultClientRetries is the attempt budget for retryable requests:
	// one initial try plus three retries.
	DefaultClientRetries = 4
	// DefaultRetryBase and DefaultRetryMax bound the jittered
	// exponential backoff between retries. Network-scale values — an
	// order above the checkpoint I/O backoff — because the usual cause
	// is a coordinator restarting or a congested path, not a busy disk.
	DefaultRetryBase = 100 * time.Millisecond
	DefaultRetryMax  = 2 * time.Second
)

// ClientOptions tunes the client's transient-fault layer. The zero
// value gives sane production behavior (timeouts on by default — a dead
// coordinator must never hang a caller forever).
type ClientOptions struct {
	// HTTP overrides the transport. nil builds a client with
	// DefaultDialTimeout / DefaultRequestTimeout wired into the
	// transport — unlike http.DefaultClient, which never times out.
	HTTP *http.Client
	// Timeout caps one request/response exchange, applied per request
	// via context so the long-lived Watch stream is exempt. 0 means
	// DefaultRequestTimeout; negative disables the cap.
	Timeout time.Duration
	// Retries is the attempt budget for retryable requests (transport
	// errors, 5xx, 429). 0 means DefaultClientRetries; negative means a
	// single attempt. Submit is never retried: it is not idempotent, and
	// a retry racing a slow first attempt could register the job twice.
	Retries int
	// RetryBase and RetryMax bound the backoff between attempts
	// (exponential with full jitter, campaign.Backoff's schedule).
	// 0 means the defaults above.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Warnf, when non-nil, receives a line per retried request and per
	// Watch reconnect.
	Warnf func(format string, args ...any)
}

// Client talks to a coordinator, absorbing transient faults: requests
// time out instead of hanging, retryable failures (transport errors,
// 5xx, 429) are retried with jittered exponential backoff, and the SSE
// watch reconnects after drops, deduplicating replayed events.
type Client struct {
	base string
	hc   *http.Client
	opts ClientOptions
}

// NewClient returns a client for the coordinator at base (e.g.
// "http://127.0.0.1:8080") with default fault tolerance. hc may be nil.
func NewClient(base string, hc *http.Client) *Client {
	return NewClientWith(base, ClientOptions{HTTP: hc})
}

// NewClientWith returns a client with explicit fault-layer tuning.
func NewClientWith(base string, opts ClientOptions) *Client {
	if opts.Timeout == 0 {
		opts.Timeout = DefaultRequestTimeout
	}
	if opts.Retries == 0 {
		opts.Retries = DefaultClientRetries
	}
	if opts.Retries < 1 {
		opts.Retries = 1
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = DefaultRetryBase
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = DefaultRetryMax
	}
	hc := opts.HTTP
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: DefaultDialTimeout}).DialContext,
			ResponseHeaderTimeout: DefaultRequestTimeout,
			MaxIdleConnsPerHost:   4,
		}}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc, opts: opts}
}

// Submit registers a job and returns its ID. Submit is the one call the
// client never retries: registration is not idempotent, and the caller
// cannot tell a lost request from a lost response.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (string, error) {
	body, status, err := c.roundTrip(ctx, http.MethodPost, "/api/jobs", spec)
	if err != nil {
		return "", err
	}
	if status != http.StatusCreated {
		return "", apiError(status, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return "", fmt.Errorf("fleet: decoding submit response: %w", err)
	}
	return st.ID, nil
}

// Status fetches a job's live status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	st := &JobStatus{}
	if err := c.do(ctx, http.MethodGet, "/api/jobs/"+id, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Cancel cancels a running job (terminal states are left untouched).
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/api/jobs/"+id+"/cancel", struct{}{}, nil)
}

// Result fetches the merged result of a finished job; the coordinator
// answers 409 while the job still runs.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	res := &JobResult{}
	if err := c.do(ctx, http.MethodGet, "/api/jobs/"+id+"/result", nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Lease asks for one shard of work; nil without error when the
// coordinator has nothing to hand out right now. Retrying a lost lease
// response is safe: the orphaned grant simply expires and is re-issued,
// and recomputation is byte-identical.
func (c *Client) Lease(ctx context.Context, worker string) (*Lease, error) {
	req := map[string]string{"worker": worker}
	body, status, err := c.retryRoundTrip(ctx, http.MethodPost, "/api/lease", req)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	if status != http.StatusOK {
		return nil, apiError(status, body)
	}
	l := &Lease{}
	if err := json.Unmarshal(body, l); err != nil {
		return nil, fmt.Errorf("fleet: decoding lease: %w", err)
	}
	return l, nil
}

// Renew extends a lease's deadline; ErrLeaseGone when the coordinator
// re-issued or retired it.
func (c *Client) Renew(ctx context.Context, leaseID string) error {
	body, status, err := c.retryRoundTrip(ctx, http.MethodPost, "/api/lease/"+leaseID+"/renew", struct{}{})
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		return nil
	case http.StatusGone:
		return ErrLeaseGone
	default:
		return apiError(status, body)
	}
}

// Complete reports a leased shard's outcome. Retrying a lost response
// is safe: the coordinator dedups completions by shard index.
func (c *Client) Complete(ctx context.Context, leaseID string, req CompleteRequest) (*CompleteResponse, error) {
	res := &CompleteResponse{}
	if err := c.do(ctx, http.MethodPost, "/api/lease/"+leaseID+"/complete", req, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Watch follows a job's SSE stream, invoking onEvent for each event,
// until the stream delivers the terminal "done" event or ctx is
// cancelled. A dropped connection — including a coordinator restart —
// is reconnected with jittered backoff for as long as ctx lives, and
// events the previous connection already delivered are deduplicated by
// their SSE ids (strictly increasing across coordinator restarts;
// "done" is always delivered). Only a permanent coordinator answer
// (4xx, e.g. a restarted coordinator without a journal that no longer
// knows the job) makes Watch return an error.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(Event)) error {
	var lastID uint64
	delay := c.opts.RetryBase
	var jitter *rand.Rand
	for {
		err := c.watchOnce(ctx, id, &lastID, onEvent)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		c.warnf("fleet: event stream for job %s dropped (%v); reconnecting", id, err)
		if jitter == nil {
			jitter = rand.New(rand.NewSource(campaign.ShardSeed(int64(c.opts.Retries), "watch/"+id, 0)))
		}
		if !sleepCtx(ctx, jitterDelay(jitter, delay)) {
			return ctx.Err()
		}
		delay = nextDelay(delay, c.opts.RetryMax)
	}
}

// permanentError wraps a coordinator answer that retrying cannot
// change.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// watchOnce follows one SSE connection. *lastID carries the dedup
// watermark across reconnects: events at or below it were already
// delivered by a previous connection and are suppressed, except "done",
// which must always reach the caller (a terminal snapshot re-sent after
// a reconnect may reuse the job's final event id).
func (c *Client) watchOnce(ctx context.Context, id string, lastID *uint64, onEvent func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/jobs/"+id+"/events", nil)
	if err != nil {
		return &permanentError{err}
	}
	req.Header.Set("Accept", "text/event-stream")
	if err := failpoint.Hit(FailpointClientRequest); err != nil {
		return fmt.Errorf("fleet: injected client fault: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := apiError(resp.StatusCode, body)
		if retryableStatus(resp.StatusCode) {
			return err
		}
		return &permanentError{err}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	ev := Event{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.Name != "" || len(ev.Data) > 0 {
				replay := ev.ID > 0 && ev.ID <= *lastID
				if ev.ID > *lastID {
					*lastID = ev.ID
				}
				if onEvent != nil && (!replay || ev.Name == "done") {
					onEvent(ev)
				}
				if ev.Name == "done" {
					return nil
				}
			}
			ev = Event{}
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64); err == nil {
				ev.ID = n
			}
		case strings.HasPrefix(line, "event: "):
			ev.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = append(ev.Data, []byte(strings.TrimPrefix(line, "data: "))...)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("fleet: event stream for job %s ended before the job finished", id)
}

// Wait blocks until the job reaches a terminal state and returns its
// result. Progress lines (the campaign.Snapshot one-liner prefixed with
// "progress: ", exactly like a local run's reporter) are written to
// progress when non-nil. SSE is the primary transport (reconnecting
// across drops and coordinator restarts); if the stream fails
// permanently, Wait falls back to polling Status once a second.
func (c *Client) Wait(ctx context.Context, id string, progress io.Writer) (*JobResult, error) {
	emit := func(line string) {
		if progress != nil {
			fmt.Fprintf(progress, "progress: %s\n", line)
		}
	}
	err := c.Watch(ctx, id, func(ev Event) {
		if ev.Name == "progress" || ev.Name == "done" {
			var st JobStatus
			if json.Unmarshal(ev.Data, &st) == nil && st.Progress != "" {
				emit(st.Progress)
			}
		}
	})
	if err != nil && ctx.Err() == nil {
		// Stream failed permanently: poll until terminal.
		for {
			st, serr := c.Status(ctx, id)
			if serr != nil {
				return nil, serr
			}
			emit(st.Progress)
			if st.State != "running" {
				break
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Second):
			}
		}
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return c.Result(ctx, id)
}

// do round-trips a JSON request with retries and decodes a 2xx response
// into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	body, status, err := c.retryRoundTrip(ctx, method, path, in)
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		return apiError(status, body)
	}
	if out == nil || len(body) == 0 {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("fleet: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// retryableStatus classifies coordinator answers: 5xx and 429 are
// transient (a restarting coordinator, a journal hiccup answered 503, a
// throttle); every other status is an answer, not a fault.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// retryRoundTrip retries transport errors and retryable statuses with
// jittered exponential backoff (campaign.Backoff's schedule: full
// jitter over a doubling floor, seeded from the request path so tests
// are reproducible). On budget exhaustion the last HTTP answer is
// returned for the caller to classify; a final transport error is
// returned as such.
func (c *Client) retryRoundTrip(ctx context.Context, method, path string, in any) ([]byte, int, error) {
	delay := c.opts.RetryBase
	var jitter *rand.Rand
	for attempt := 1; ; attempt++ {
		body, status, err := c.roundTrip(ctx, method, path, in)
		if err == nil && !retryableStatus(status) {
			return body, status, nil
		}
		last := attempt >= c.opts.Retries || ctx.Err() != nil
		if last {
			if err != nil {
				return nil, 0, err
			}
			return body, status, nil
		}
		if err != nil {
			c.warnf("fleet: %s %s failed (attempt %d/%d): %v", method, path, attempt, c.opts.Retries, err)
		} else {
			c.warnf("fleet: %s %s answered %d (attempt %d/%d); retrying", method, path, status, attempt, c.opts.Retries)
		}
		if jitter == nil {
			jitter = rand.New(rand.NewSource(campaign.ShardSeed(int64(c.opts.Retries), method+" "+path, 0)))
		}
		if !sleepCtx(ctx, jitterDelay(jitter, delay)) {
			if err == nil {
				err = ctx.Err()
			}
			return nil, 0, err
		}
		delay = nextDelay(delay, c.opts.RetryMax)
	}
}

// jitterDelay draws from [delay/2, delay): full jitter over the
// exponential floor, so synchronized clients decorrelate.
func jitterDelay(jitter *rand.Rand, delay time.Duration) time.Duration {
	return delay/2 + time.Duration(jitter.Int63n(int64(delay/2)+1))
}

func nextDelay(delay, max time.Duration) time.Duration {
	if delay < max {
		delay *= 2
		if delay > max {
			delay = max
		}
	}
	return delay
}

// roundTrip performs one request/response exchange, bounded by the
// client's per-request timeout (the Watch stream bypasses this path).
func (c *Client) roundTrip(ctx context.Context, method, path string, in any) ([]byte, int, error) {
	if c.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Timeout)
		defer cancel()
	}
	var rd io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if err := failpoint.Hit(FailpointClientRequest); err != nil {
		return nil, 0, fmt.Errorf("fleet: injected client fault: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

func (c *Client) warnf(format string, args ...any) {
	if c.opts.Warnf != nil {
		c.opts.Warnf(format, args...)
	}
}

// apiError surfaces the coordinator's {"error": ...} body.
func apiError(status int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("fleet: %s (HTTP %d)", e.Error, status)
	}
	return fmt.Errorf("fleet: HTTP %d: %s", status, strings.TrimSpace(string(body)))
}
