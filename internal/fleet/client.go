package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrLeaseGone marks a renewal or completion whose lease the
// coordinator no longer recognizes as held — it expired and was
// re-issued, the job was cancelled, or the shard already finished.
var ErrLeaseGone = errors.New("fleet: lease gone")

// Client talks to a coordinator. The zero HTTP client is replaced by
// http.DefaultClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the coordinator at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Submit registers a job and returns its ID.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (string, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/api/jobs", spec, &st); err != nil {
		return "", err
	}
	return st.ID, nil
}

// Status fetches a job's live status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	st := &JobStatus{}
	if err := c.do(ctx, http.MethodGet, "/api/jobs/"+id, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Cancel cancels a running job (terminal states are left untouched).
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/api/jobs/"+id+"/cancel", struct{}{}, nil)
}

// Result fetches the merged result of a finished job; the coordinator
// answers 409 while the job still runs.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	res := &JobResult{}
	if err := c.do(ctx, http.MethodGet, "/api/jobs/"+id+"/result", nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Lease asks for one shard of work; nil without error when the
// coordinator has nothing to hand out right now.
func (c *Client) Lease(ctx context.Context, worker string) (*Lease, error) {
	req := map[string]string{"worker": worker}
	body, status, err := c.roundTrip(ctx, http.MethodPost, "/api/lease", req)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	if status != http.StatusOK {
		return nil, apiError(status, body)
	}
	l := &Lease{}
	if err := json.Unmarshal(body, l); err != nil {
		return nil, fmt.Errorf("fleet: decoding lease: %w", err)
	}
	return l, nil
}

// Renew extends a lease's deadline; ErrLeaseGone when the coordinator
// re-issued or retired it.
func (c *Client) Renew(ctx context.Context, leaseID string) error {
	body, status, err := c.roundTrip(ctx, http.MethodPost, "/api/lease/"+leaseID+"/renew", struct{}{})
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		return nil
	case http.StatusGone:
		return ErrLeaseGone
	default:
		return apiError(status, body)
	}
}

// Complete reports a leased shard's outcome.
func (c *Client) Complete(ctx context.Context, leaseID string, req CompleteRequest) (*CompleteResponse, error) {
	res := &CompleteResponse{}
	if err := c.do(ctx, http.MethodPost, "/api/lease/"+leaseID+"/complete", req, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Watch follows a job's SSE stream, invoking onEvent for each event,
// until the stream delivers the terminal "done" event, the context is
// cancelled, or the connection drops (returned as an error; the caller
// may reconnect or fall back to polling).
func (c *Client) Watch(ctx context.Context, id string, onEvent func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return apiError(resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	ev := Event{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.Name != "" || len(ev.Data) > 0 {
				if onEvent != nil {
					onEvent(ev)
				}
				if ev.Name == "done" {
					return nil
				}
			}
			ev = Event{}
		case strings.HasPrefix(line, "event: "):
			ev.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = append(ev.Data, []byte(strings.TrimPrefix(line, "data: "))...)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("fleet: event stream for job %s ended before the job finished", id)
}

// Wait blocks until the job reaches a terminal state and returns its
// result. Progress lines (the campaign.Snapshot one-liner prefixed with
// "progress: ", exactly like a local run's reporter) are written to
// progress when non-nil. SSE is the primary transport; if the stream
// drops, Wait falls back to polling Status once a second.
func (c *Client) Wait(ctx context.Context, id string, progress io.Writer) (*JobResult, error) {
	emit := func(line string) {
		if progress != nil {
			fmt.Fprintf(progress, "progress: %s\n", line)
		}
	}
	err := c.Watch(ctx, id, func(ev Event) {
		if ev.Name == "progress" || ev.Name == "done" {
			var st JobStatus
			if json.Unmarshal(ev.Data, &st) == nil && st.Progress != "" {
				emit(st.Progress)
			}
		}
	})
	if err != nil && ctx.Err() == nil {
		// Stream dropped mid-job: poll until terminal.
		for {
			st, serr := c.Status(ctx, id)
			if serr != nil {
				return nil, serr
			}
			emit(st.Progress)
			if st.State != "running" {
				break
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Second):
			}
		}
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return c.Result(ctx, id)
}

// do round-trips a JSON request and decodes a 2xx response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	body, status, err := c.roundTrip(ctx, method, path, in)
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		return apiError(status, body)
	}
	if out == nil || len(body) == 0 {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("fleet: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

func (c *Client) roundTrip(ctx context.Context, method, path string, in any) ([]byte, int, error) {
	var rd io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

// apiError surfaces the coordinator's {"error": ...} body.
func apiError(status int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("fleet: %s (HTTP %d)", e.Error, status)
	}
	return fmt.Errorf("fleet: HTTP %d: %s", status, strings.TrimSpace(string(body)))
}
