package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"pair/internal/campaign"
	"pair/internal/failpoint"
	"pair/internal/faults"
	"pair/internal/reliability"
	"pair/internal/schemes"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// ID names the worker in leases and coordinator logs; "" gets a
	// generic name. The ID never influences results — shard seeds derive
	// from the campaign label and index alone.
	ID string
	// Poll is the idle wait between empty lease polls; 0 means 200ms.
	Poll time.Duration
	// Retries and ShardTimeout are the local campaign engine's per-shard
	// retry budget and watchdog (campaign.Options semantics). A shard
	// that exhausts this local budget is reported to the coordinator as
	// a permanent failure, which counts against the coordinator's own
	// re-issue budget.
	Retries      int
	ShardTimeout time.Duration
	// HTTP overrides the transport; nil gets the client default (dial
	// and request timeouts on, so a dead coordinator never hangs the
	// worker — see ClientOptions).
	HTTP *http.Client
	// RequestTimeout and HTTPRetries tune the client's transient-fault
	// layer (ClientOptions Timeout/Retries semantics; zero values mean
	// the defaults).
	RequestTimeout time.Duration
	HTTPRetries    int
	// Warnf, when non-nil, receives worker-side warnings.
	Warnf func(format string, args ...any)
}

// Worker polls a coordinator for shard leases and executes them through
// the campaign engine (campaign.ExecShard), with the same panic
// isolation, retry budget and watchdog a local run has. Each lease is
// renewed at a third of its TTL while the shard computes; a worker that
// dies simply stops renewing, and the coordinator re-issues the lease
// after the deadline.
type Worker struct {
	client *Client
	opts   WorkerOptions
}

// NewWorker returns a worker for the coordinator at base.
func NewWorker(base string, opts WorkerOptions) *Worker {
	if opts.ID == "" {
		opts.ID = "worker"
	}
	if opts.Poll <= 0 {
		opts.Poll = 200 * time.Millisecond
	}
	client := NewClientWith(base, ClientOptions{
		HTTP:    opts.HTTP,
		Timeout: opts.RequestTimeout,
		Retries: opts.HTTPRetries,
		Warnf:   opts.Warnf,
	})
	return &Worker{client: client, opts: opts}
}

// parkedAfter is the consecutive-failure threshold at which a worker
// declares the coordinator unreachable and parks: it stops treating
// each poll failure as news and just keeps probing at the capped
// backoff until the coordinator answers again. A parked worker never
// exits — a coordinator restart (even two of them) looks like a pause,
// not a death.
const parkedAfter = 3

// Run polls for leases and executes them until ctx is cancelled, which
// is the normal shutdown path (Run then returns nil). Transient
// coordinator errors back the poll off rather than killing the worker;
// sustained unreachability parks the worker (see parkedAfter).
func (w *Worker) Run(ctx context.Context) error {
	backoff := w.opts.Poll
	failures := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease, err := w.client.Lease(ctx, w.opts.ID)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			failures++
			switch {
			case failures < parkedAfter:
				w.warnf("fleet worker %s: lease poll: %v", w.opts.ID, err)
			case failures == parkedAfter:
				w.warnf("fleet worker %s: coordinator unreachable after %d polls (%v); parking until it answers",
					w.opts.ID, failures, err)
			}
			if !sleepCtx(ctx, backoff) {
				return nil
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
			continue
		}
		if failures >= parkedAfter {
			w.warnf("fleet worker %s: coordinator reachable again after %d failed polls", w.opts.ID, failures)
		}
		failures = 0
		backoff = w.opts.Poll
		if lease == nil {
			if !sleepCtx(ctx, w.opts.Poll) {
				return nil
			}
			continue
		}
		w.runLease(ctx, *lease)
	}
}

// runLease executes one leased shard and reports its outcome. All
// failure modes funnel into a completion with Error — except the
// simulated-death failpoint, which abandons the lease silently so the
// coordinator only learns of it through the missed deadline.
func (w *Worker) runLease(ctx context.Context, l Lease) {
	if err := failpoint.Hit(FailpointWorkerLease); err != nil {
		w.warnf("fleet worker %s: abandoning lease %s (failpoint %s: %v)", w.opts.ID, l.ID, FailpointWorkerLease, err)
		return
	}
	stopRenew := w.startRenew(ctx, l)
	defer stopRenew()

	frag, err := w.execute(l)
	req := CompleteRequest{Worker: w.opts.ID}
	if err != nil {
		req.Error = err.Error()
		w.warnf("fleet worker %s: shard %d of %q failed: %v", w.opts.ID, l.Shard, l.Label, err)
	} else {
		req.Fragment = frag
	}
	w.complete(ctx, l, req)
}

// execute rebuilds the shard kernel from the lease's spec strings and
// runs the shard. The campaign.Spec reconstructed here seeds the shard
// identically to a local run — the label travels in the lease verbatim.
func (w *Worker) execute(l Lease) (json.RawMessage, error) {
	scheme, err := schemes.New(l.Scheme)
	if err != nil {
		return nil, err
	}
	scenario, err := faults.NewScenario(l.Scenario)
	if err != nil {
		return nil, err
	}
	spec := campaign.Spec{Label: l.Label, Trials: l.Trials, ShardSize: l.ShardSize, Seed: l.Seed}
	opts := campaign.Options{
		Retries:      w.opts.Retries,
		ShardTimeout: w.opts.ShardTimeout,
		Warnf:        w.opts.Warnf,
	}
	res, err := campaign.ExecShard(spec, l.Shard, opts, reliability.ScenarioShardFn(scheme, scenario))
	if err != nil {
		return nil, err
	}
	frag, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("marshalling shard %d result: %w", l.Shard, err)
	}
	return frag, nil
}

// startRenew renews the lease at a third of its TTL until stopped. A
// renewal answered with ErrLeaseGone stops the loop — the shard result
// will then be deduplicated (or rejected as cancelled) on completion.
func (w *Worker) startRenew(ctx context.Context, l Lease) (stop func()) {
	interval := l.TTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if err := w.client.Renew(ctx, l.ID); err != nil {
					if err != ErrLeaseGone && ctx.Err() == nil {
						w.warnf("fleet worker %s: renewing lease %s: %v", w.opts.ID, l.ID, err)
						continue
					}
					return
				}
			}
		}
	}()
	return func() { close(done); <-finished }
}

// complete delivers the shard outcome, retrying transient transport
// errors; the coordinator dedups if a retry crosses a re-issued lease's
// completion.
func (w *Worker) complete(ctx context.Context, l Lease, req CompleteRequest) {
	for attempt := 0; attempt < 3; attempt++ {
		res, err := w.client.Complete(ctx, l.ID, req)
		if err == nil {
			if res.Duplicate {
				w.warnf("fleet worker %s: shard %d of %q already merged (lease was re-issued)", w.opts.ID, l.Shard, l.Label)
			}
			return
		}
		if ctx.Err() != nil {
			return
		}
		w.warnf("fleet worker %s: completing lease %s (attempt %d): %v", w.opts.ID, l.ID, attempt+1, err)
		if !sleepCtx(ctx, time.Duration(attempt+1)*100*time.Millisecond) {
			return
		}
	}
}

func (w *Worker) warnf(format string, args ...any) {
	if w.opts.Warnf != nil {
		w.opts.Warnf(format, args...)
	}
}

// sleepCtx sleeps d or until ctx is done; false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
