package campaign

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress accumulates shard/trial completion counters across every
// campaign that shares it. It is safe for concurrent use; campaigns feed
// it from their workers and reporters sample it with Snapshot. The
// counters are deliberately plain monotonic totals so they can double as
// an export surface for later metrics plumbing.
type Progress struct {
	start time.Time

	totalShards   atomic.Int64
	totalTrials   atomic.Int64
	doneShards    atomic.Int64
	doneTrials    atomic.Int64
	resumedShards atomic.Int64
	resumedTrials atomic.Int64
	retriedShards atomic.Int64
	failedShards  atomic.Int64
	failedTrials  atomic.Int64
}

// NewProgress returns a Progress anchored at the current time.
func NewProgress() *Progress {
	return &Progress{start: time.Now()}
}

// addCampaign registers a campaign's shard/trial totals.
func (p *Progress) addCampaign(shards, trials int) {
	if p == nil {
		return
	}
	p.totalShards.Add(int64(shards))
	p.totalTrials.Add(int64(trials))
}

// shardDone records one freshly computed shard.
func (p *Progress) shardDone(trials int) {
	if p == nil {
		return
	}
	p.doneShards.Add(1)
	p.doneTrials.Add(int64(trials))
}

// shardResumed records one shard skipped because its result was loaded
// from a checkpoint.
func (p *Progress) shardResumed(trials int) {
	if p == nil {
		return
	}
	p.resumedShards.Add(1)
	p.resumedTrials.Add(int64(trials))
}

// shardRetried records one re-attempt of a failed shard.
func (p *Progress) shardRetried() {
	if p == nil {
		return
	}
	p.retriedShards.Add(1)
}

// shardFailed records one shard whose retry budget was exhausted. Its
// trials are accounted separately so the remaining-work estimate (and
// therefore the ETA) converges even when shards are lost for good.
func (p *Progress) shardFailed(trials int) {
	if p == nil {
		return
	}
	p.failedShards.Add(1)
	p.failedTrials.Add(int64(trials))
}

// AddCampaign registers a campaign's shard/trial totals. Exported for
// remote executors (fleet coordinators) that account work completed by
// other processes; local runs feed these counters through Run.
func (p *Progress) AddCampaign(shards, trials int) { p.addCampaign(shards, trials) }

// ShardDone records one freshly computed shard (exported for remote
// executors).
func (p *Progress) ShardDone(trials int) { p.shardDone(trials) }

// ShardResumed records one shard loaded from a checkpoint (exported for
// remote executors).
func (p *Progress) ShardResumed(trials int) { p.shardResumed(trials) }

// ShardRetried records one re-attempt of a failed shard (exported for
// remote executors; a re-issued lease is a retry).
func (p *Progress) ShardRetried() { p.shardRetried() }

// ShardFailed records one shard whose retry budget was exhausted
// (exported for remote executors).
func (p *Progress) ShardFailed(trials int) { p.shardFailed(trials) }

// Snapshot is a point-in-time view of campaign progress.
type Snapshot struct {
	ShardsDone    int64 // freshly computed this run
	ShardsResumed int64 // loaded from checkpoints
	ShardsRetried int64 // shard attempts re-run after a failure
	ShardsFailed  int64 // shards whose retry budget was exhausted
	ShardsTotal   int64
	TrialsDone    int64
	TrialsResumed int64
	TrialsFailed  int64 // trials lost to failed shards (no longer remaining work)
	TrialsTotal   int64
	Elapsed       time.Duration
	TrialsPerSec  float64       // fresh trials per wall second
	ETA           time.Duration // remaining trials at the current rate; 0 if unknown
}

// Snapshot samples the counters.
func (p *Progress) Snapshot() Snapshot {
	s := Snapshot{
		ShardsDone:    p.doneShards.Load(),
		ShardsResumed: p.resumedShards.Load(),
		ShardsRetried: p.retriedShards.Load(),
		ShardsFailed:  p.failedShards.Load(),
		ShardsTotal:   p.totalShards.Load(),
		TrialsDone:    p.doneTrials.Load(),
		TrialsResumed: p.resumedTrials.Load(),
		TrialsFailed:  p.failedTrials.Load(),
		TrialsTotal:   p.totalTrials.Load(),
		Elapsed:       time.Since(p.start),
	}
	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.TrialsPerSec = float64(s.TrialsDone) / sec
	}
	// A failed shard's trials will never complete: they leave the
	// remaining-work pool, else the ETA never converges on a run with
	// exhausted retry budgets. Clamp at zero — counters race only in the
	// direction of transient over-counting.
	if remaining := s.TrialsTotal - s.TrialsDone - s.TrialsResumed - s.TrialsFailed; remaining > 0 && s.TrialsPerSec > 0 {
		s.ETA = time.Duration(float64(remaining) / s.TrialsPerSec * float64(time.Second)).Round(time.Second)
	}
	return s
}

// String renders the snapshot as a one-line status. Failed shards count
// as accounted-for in the shards column (the FAILED annotation carries
// the caveat), so the line converges on runs that lose shards for good.
func (s Snapshot) String() string {
	out := fmt.Sprintf("shards %d/%d  trials %d/%d", s.ShardsDone+s.ShardsResumed+s.ShardsFailed, s.ShardsTotal, s.TrialsDone+s.TrialsResumed, s.TrialsTotal)
	if s.ShardsResumed > 0 {
		out += fmt.Sprintf(" (%d shards resumed)", s.ShardsResumed)
	}
	if s.ShardsRetried > 0 {
		out += fmt.Sprintf(" (%d retried)", s.ShardsRetried)
	}
	if s.ShardsFailed > 0 {
		out += fmt.Sprintf(" (%d FAILED)", s.ShardsFailed)
	}
	if s.TrialsPerSec > 0 {
		out += fmt.Sprintf("  %.0f trials/s", s.TrialsPerSec)
	}
	if s.ETA > 0 {
		out += fmt.Sprintf("  ETA %s", s.ETA)
	}
	return out
}

// Report starts a goroutine that writes a snapshot line to w every
// interval until ctx is done or the returned stop function is called.
// Either way the reporter emits one final snapshot before exiting, so
// short and cancelled runs alike still produce at least one line. Every
// write — ticks and the final line — happens on the reporter goroutine,
// so output never interleaves; stop is idempotent and returns only once
// the final line has been written.
func (p *Progress) Report(ctx context.Context, w io.Writer, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				fmt.Fprintf(w, "progress: %s\n", p.Snapshot())
				return
			case <-done:
				fmt.Fprintf(w, "progress: %s\n", p.Snapshot())
				return
			case <-t.C:
				fmt.Fprintf(w, "progress: %s\n", p.Snapshot())
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
