package campaign

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncWriter collects reporter output under a lock (the reporter
// goroutine and the test read/write concurrently).
type syncWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *syncWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(b)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestProgressReporterTicks(t *testing.T) {
	p := NewProgress()
	p.addCampaign(4, 400)
	p.shardDone(100)
	w := &syncWriter{}
	stop := p.Report(context.Background(), w, 2*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(w.String(), "shards 1/4") {
		if time.Now().After(deadline) {
			t.Fatalf("reporter never ticked; output %q", w.String())
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	if n := strings.Count(w.String(), "progress:"); n < 2 {
		t.Fatalf("want >= 2 progress lines (ticks + final), got %d: %q", n, w.String())
	}
}

func TestProgressReporterStopsOnContextCancel(t *testing.T) {
	p := NewProgress()
	w := &syncWriter{}
	ctx, cancel := context.WithCancel(context.Background())
	stop := p.Report(ctx, w, time.Millisecond)
	cancel()
	time.Sleep(10 * time.Millisecond)
	before := w.String()
	time.Sleep(20 * time.Millisecond)
	if after := w.String(); after != before {
		t.Fatalf("reporter kept ticking after cancel: %q -> %q", before, after)
	}
	stop() // still emits the final line, idempotently
	if !strings.Contains(w.String(), "progress:") {
		t.Fatalf("no final line after stop: %q", w.String())
	}
}

func TestSnapshotRateAndETA(t *testing.T) {
	p := NewProgress()
	p.start = time.Now().Add(-2 * time.Second) // fake 2s of elapsed work
	p.addCampaign(10, 1000)
	p.shardDone(100)
	p.shardDone(100)
	s := p.Snapshot()
	if s.TrialsPerSec <= 0 {
		t.Fatalf("TrialsPerSec = %v, want > 0", s.TrialsPerSec)
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA = %v, want > 0 with %d trials remaining", s.ETA, s.TrialsTotal-s.TrialsDone)
	}
	line := s.String()
	if !strings.Contains(line, "trials/s") || !strings.Contains(line, "ETA") {
		t.Fatalf("snapshot line %q lacks rate/ETA", line)
	}
}

func TestNilProgressIsSafe(t *testing.T) {
	var p *Progress
	p.addCampaign(1, 1)
	p.shardDone(1)
	p.shardResumed(1)
	p.shardRetried()
	p.shardFailed(1)
}

// A shard whose retry budget was exhausted will never contribute its
// trials, so the remaining-work estimate must drop them: the ETA has to
// reach zero and the shards line has to converge on d == t. (Regression:
// failed trials used to stay in "remaining" forever, so the ETA and the
// "shards d/t" counter never converged on runs that lost shards.)
func TestSnapshotConvergesWithFailedShards(t *testing.T) {
	p := NewProgress()
	p.start = time.Now().Add(-2 * time.Second)
	p.addCampaign(4, 400)
	p.shardDone(100)
	p.shardDone(100)
	p.shardDone(100)
	p.shardFailed(100) // retry budget exhausted: these trials are gone
	s := p.Snapshot()
	if s.TrialsFailed != 100 {
		t.Fatalf("TrialsFailed = %d, want 100", s.TrialsFailed)
	}
	if s.ETA != 0 {
		t.Fatalf("ETA = %v, want 0: no remaining work once failed trials are discounted", s.ETA)
	}
	line := s.String()
	if !strings.Contains(line, "shards 4/4") {
		t.Fatalf("shards counter did not converge with a failed shard: %q", line)
	}
	if !strings.Contains(line, "(1 FAILED)") {
		t.Fatalf("failed-shard annotation missing: %q", line)
	}
}

// Failed trials clamp the remaining-work estimate at zero rather than
// producing a negative ETA when counters transiently over-count.
func TestSnapshotClampsNegativeRemaining(t *testing.T) {
	p := NewProgress()
	p.start = time.Now().Add(-time.Second)
	p.addCampaign(2, 200)
	p.shardDone(150)
	p.shardFailed(100) // done+failed > total
	if eta := p.Snapshot().ETA; eta != 0 {
		t.Fatalf("ETA = %v, want 0 when accounted trials exceed the total", eta)
	}
}

// Context cancellation must still emit the final snapshot line.
// (Regression: the reporter goroutine used to exit on ctx-done without
// writing anything, so an interrupted run ended with no final status.)
func TestProgressReporterFinalLineOnContextCancel(t *testing.T) {
	p := NewProgress()
	p.addCampaign(2, 200)
	p.shardDone(100)
	w := &syncWriter{}
	ctx, cancel := context.WithCancel(context.Background())
	stop := p.Report(ctx, w, time.Hour) // interval long enough that no tick fires
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(w.String(), "progress:") {
		if time.Now().After(deadline) {
			t.Fatalf("no final snapshot line after ctx cancel; output %q", w.String())
		}
		time.Sleep(time.Millisecond)
	}
	stop() // idempotent: must not write a second final line
	if n := strings.Count(w.String(), "progress:"); n != 1 {
		t.Fatalf("want exactly 1 final line after cancel+stop, got %d: %q", n, w.String())
	}
}

// overlapWriter fails the test if two Write calls ever overlap — the
// interleaved-output defect stop() used to cause by writing the final
// snapshot from the caller's goroutine while a ticker write was in
// flight.
type overlapWriter struct {
	t       *testing.T
	writing atomic.Bool
	lines   atomic.Int64
}

func (w *overlapWriter) Write(b []byte) (int, error) {
	if !w.writing.CompareAndSwap(false, true) {
		w.t.Error("concurrent Write calls: reporter output can interleave")
		return len(b), nil
	}
	time.Sleep(100 * time.Microsecond) // widen the race window
	w.lines.Add(1)
	w.writing.Store(false)
	return len(b), nil
}

func TestProgressReporterSerializesWrites(t *testing.T) {
	for i := 0; i < 20; i++ {
		p := NewProgress()
		w := &overlapWriter{t: t}
		stop := p.Report(context.Background(), w, 200*time.Microsecond)
		time.Sleep(time.Millisecond) // let a few ticks land
		stop()
		if w.lines.Load() < 1 {
			t.Fatal("stop returned before the final line was written")
		}
	}
}
