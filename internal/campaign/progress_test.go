package campaign

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter collects reporter output under a lock (the reporter
// goroutine and the test read/write concurrently).
type syncWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *syncWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(b)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestProgressReporterTicks(t *testing.T) {
	p := NewProgress()
	p.addCampaign(4, 400)
	p.shardDone(100)
	w := &syncWriter{}
	stop := p.Report(context.Background(), w, 2*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(w.String(), "shards 1/4") {
		if time.Now().After(deadline) {
			t.Fatalf("reporter never ticked; output %q", w.String())
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	if n := strings.Count(w.String(), "progress:"); n < 2 {
		t.Fatalf("want >= 2 progress lines (ticks + final), got %d: %q", n, w.String())
	}
}

func TestProgressReporterStopsOnContextCancel(t *testing.T) {
	p := NewProgress()
	w := &syncWriter{}
	ctx, cancel := context.WithCancel(context.Background())
	stop := p.Report(ctx, w, time.Millisecond)
	cancel()
	time.Sleep(10 * time.Millisecond)
	before := w.String()
	time.Sleep(20 * time.Millisecond)
	if after := w.String(); after != before {
		t.Fatalf("reporter kept ticking after cancel: %q -> %q", before, after)
	}
	stop() // still emits the final line, idempotently
	if !strings.Contains(w.String(), "progress:") {
		t.Fatalf("no final line after stop: %q", w.String())
	}
}

func TestSnapshotRateAndETA(t *testing.T) {
	p := NewProgress()
	p.start = time.Now().Add(-2 * time.Second) // fake 2s of elapsed work
	p.addCampaign(10, 1000)
	p.shardDone(100)
	p.shardDone(100)
	s := p.Snapshot()
	if s.TrialsPerSec <= 0 {
		t.Fatalf("TrialsPerSec = %v, want > 0", s.TrialsPerSec)
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA = %v, want > 0 with %d trials remaining", s.ETA, s.TrialsTotal-s.TrialsDone)
	}
	line := s.String()
	if !strings.Contains(line, "trials/s") || !strings.Contains(line, "ETA") {
		t.Fatalf("snapshot line %q lacks rate/ETA", line)
	}
}

func TestNilProgressIsSafe(t *testing.T) {
	var p *Progress
	p.addCampaign(1, 1)
	p.shardDone(1)
	p.shardResumed(1)
	p.shardRetried()
	p.shardFailed()
}
