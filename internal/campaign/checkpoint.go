package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"pair/internal/failpoint"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpointFile is the persisted form of a campaign's completed shards.
// Shard results are stored as raw JSON so the file format is independent
// of the concrete result type a campaign aggregates.
type checkpointFile struct {
	Version   int                     `json:"version"`
	Label     string                  `json:"label"`
	Seed      int64                   `json:"seed"`
	Trials    int                     `json:"trials"`
	ShardSize int                     `json:"shard_size"`
	Shards    map[int]json.RawMessage `json:"shards"`
}

// Checkpoint tracks the completed shards of one campaign and mirrors
// them to a JSON file. Every update rewrites the file via a temp file,
// an fsync, and an atomic rename, so a kill or power loss at any
// instant leaves either the previous or the new complete checkpoint —
// never a torn, empty, or stale one.
//
// Transient I/O failures are retried with exponential backoff; when the
// budget is exhausted the checkpoint degrades to memory-only mode: the
// campaign keeps running to completion, a warning records that
// resumability was lost, and no further disk I/O is attempted.
type Checkpoint struct {
	path     string
	backoff  Backoff
	report   *Report
	warnSink func(string, ...any)

	mu       sync.Mutex
	file     checkpointFile
	degraded bool
}

// CheckpointPath returns the checkpoint file path a campaign label maps
// to inside dir.
func CheckpointPath(dir, label string) string {
	return filepath.Join(dir, sanitizeLabel(label)+".json")
}

// sanitizeLabel maps a campaign label to a safe file stem. Replacing
// unsafe runes with '_' alone is lossy — distinct labels like "a/b" and
// "a_b" would share a stem, and a fresh (non-resume) run of one would
// silently overwrite the other's checkpoint — so whenever any rune was
// replaced, a short FNV-1a hash of the raw label is appended to keep
// stems collision-free. Labels that need no replacement (and therefore
// never collided) keep their historical stems.
func sanitizeLabel(label string) string {
	out := make([]rune, 0, len(label))
	lossy := false
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_', r == '=':
			out = append(out, r)
		default:
			out = append(out, '_')
			lossy = true
		}
	}
	if len(out) == 0 {
		return "campaign"
	}
	if !lossy {
		return string(out)
	}
	h := fnv.New32a()
	h.Write([]byte(label))
	return fmt.Sprintf("%s-%08x", string(out), h.Sum32())
}

// openCheckpoint binds a checkpoint to dir for the given spec. With
// opts.Resume it loads any existing file and validates that it belongs
// to the same campaign shape; without resume it starts empty (a stale
// file is overwritten on the first save, and a stale temp file from a
// killed run is removed so it cannot linger or be mistaken for a
// checkpoint).
//
// With opts.Salvage, a corrupted or truncated checkpoint no longer
// aborts the resume: every intact shard — from the main file and from a
// leftover .tmp a crash stranded between write and rename — is
// recovered, the rest are dropped with a warning, and the campaign
// recomputes only what was lost.
func openCheckpoint(dir string, spec Spec, opts Options) (*Checkpoint, error) {
	c := &Checkpoint{
		path:     CheckpointPath(dir, spec.Label),
		backoff:  opts.CheckpointBackoff,
		report:   opts.Report,
		warnSink: opts.Warnf,
		file: checkpointFile{
			Version:   checkpointVersion,
			Label:     spec.Label,
			Seed:      spec.Seed,
			Trials:    spec.Trials,
			ShardSize: spec.shardSize(),
			Shards:    map[int]json.RawMessage{},
		},
	}
	retries, err := c.backoff.retry(spec.Label, func() error {
		if err := failpoint.Hit(FailpointMkdir); err != nil {
			return err
		}
		return os.MkdirAll(dir, 0o755)
	})
	c.report.addCheckpointRetries(retries)
	if err != nil {
		// An unusable checkpoint directory is not fatal: run in memory.
		c.degrade("creating checkpoint dir %s: %v", dir, err)
		return c, nil
	}
	tmpPath := c.path + ".tmp"
	if !opts.Resume {
		os.Remove(tmpPath)
		return c, nil
	}

	raw, readErr := c.readRetry(c.path)
	if readErr != nil && !opts.Salvage {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", readErr)
	}

	if !opts.Salvage {
		os.Remove(tmpPath)
		if raw == nil {
			return c, nil // nothing to resume yet
		}
		var loaded checkpointFile
		if err := json.Unmarshal(raw, &loaded); err != nil {
			return nil, fmt.Errorf("campaign: parse checkpoint %s: %w (rerun with salvage to recover intact shards)", c.path, err)
		}
		if loaded.Version != checkpointVersion {
			return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d", c.path, loaded.Version, checkpointVersion)
		}
		if loaded.Label != spec.Label || loaded.Seed != spec.Seed ||
			loaded.Trials != spec.Trials || loaded.ShardSize != spec.shardSize() {
			return nil, fmt.Errorf("campaign: checkpoint %s was written by a different campaign (label %q seed %d trials %d shard %d; want %q %d %d %d)",
				c.path, loaded.Label, loaded.Seed, loaded.Trials, loaded.ShardSize,
				spec.Label, spec.Seed, spec.Trials, spec.shardSize())
		}
		if loaded.Shards != nil {
			c.file.Shards = loaded.Shards
		}
		return c, nil
	}

	// Salvage path: fold main file + leftover .tmp, keep every shard
	// whose bytes survived, warn about the rest.
	if readErr != nil {
		c.report.warnf(c.warnSink, "campaign %q: unreadable checkpoint %s (%v); resuming with nothing", spec.Label, c.path, readErr)
	}
	tmpRaw, _ := os.ReadFile(tmpPath)
	os.Remove(tmpPath)
	if raw == nil && tmpRaw == nil {
		return c, nil
	}
	n := spec.NumShards()
	// A checkpoint that is fully intact (parses strictly, header
	// matches, every shard in range) resumes silently: salvage only
	// announces itself when it actually recovered something.
	if raw != nil && tmpRaw == nil {
		var loaded checkpointFile
		if json.Unmarshal(raw, &loaded) == nil && headerMatches(loaded, spec) {
			intact := true
			for i, p := range loaded.Shards {
				if i < 0 || i >= n || isNullJSON(p) {
					intact = false
					break
				}
			}
			if intact {
				if loaded.Shards != nil {
					c.file.Shards = loaded.Shards
				}
				return c, nil
			}
		}
	}
	rep := SalvageReport{Label: spec.Label, Path: c.path}
	absorb := func(data []byte, fromTmp bool) {
		if data == nil {
			return
		}
		f := salvageParse(data)
		if !headerMatches(f, spec) {
			rep.Dropped += len(f.Shards)
			return
		}
		rep.HeaderOK = true
		for i, payload := range f.Shards {
			if i < 0 || i >= n || isNullJSON(payload) {
				rep.Dropped++
				continue
			}
			if _, dup := c.file.Shards[i]; dup {
				continue
			}
			c.file.Shards[i] = payload
			rep.Recovered++
			if fromTmp {
				rep.FromTmp++
			}
		}
	}
	absorb(raw, false)
	absorb(tmpRaw, true)
	c.report.addSalvage(rep)
	c.report.warnf(c.warnSink, "campaign %q: %s", spec.Label, rep)
	return c, nil
}

// readRetry reads path with the transient-I/O retry policy. A missing
// file is not an error: it returns (nil, nil).
func (c *Checkpoint) readRetry(path string) ([]byte, error) {
	var raw []byte
	retries, err := c.backoff.retry(c.file.Label, func() error {
		if err := failpoint.Hit(FailpointRead); err != nil {
			return err
		}
		var rerr error
		raw, rerr = os.ReadFile(path)
		if errors.Is(rerr, fs.ErrNotExist) {
			raw = nil
			return nil
		}
		return rerr
	})
	c.report.addCheckpointRetries(retries)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// shard returns the stored raw result of shard i, if present.
func (c *Checkpoint) shard(i int) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.file.Shards[i]
	return raw, ok
}

// drop removes shard i from the in-memory set, so a payload rejected at
// unmarshal time is never persisted again.
func (c *Checkpoint) drop(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.file.Shards, i)
}

// numDone returns how many shard results the checkpoint holds.
func (c *Checkpoint) numDone() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.file.Shards)
}

// record stores shard i's result and rewrites the checkpoint file with
// retry/backoff; an exhausted budget degrades to memory-only mode
// instead of failing the campaign. Callers (the runner) serialize
// record calls, so the file on disk always reflects a prefix of the
// recorded shards.
func (c *Checkpoint) record(i int, raw json.RawMessage) {
	c.mu.Lock()
	if c.degraded {
		c.mu.Unlock()
		return
	}
	c.file.Shards[i] = raw
	buf, err := json.MarshalIndent(&c.file, "", " ")
	c.mu.Unlock()
	if err != nil {
		c.degrade("marshal checkpoint: %v", err)
		return
	}
	retries, err := c.backoff.retry(c.file.Label, func() error {
		return c.writeOnce(append(buf, '\n'))
	})
	c.report.addCheckpointRetries(retries)
	if err != nil {
		c.degrade("%v", err)
	}
}

// writeOnce performs one durable checkpoint write: temp file, fsync,
// atomic rename, directory sync. Any step failing (or an armed
// failpoint standing in for it) fails the whole attempt; record's
// backoff loop decides whether to try again.
func (c *Checkpoint) writeOnce(buf []byte) error {
	tmp := c.path + ".tmp"
	if err := failpoint.Hit(FailpointWrite); err != nil {
		return fmt.Errorf("write checkpoint: %w", err)
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("write checkpoint: %w", err)
	}
	_, werr := f.Write(buf)
	if werr == nil {
		// fsync before rename: without it a power loss can commit the
		// rename but not the data, leaving a zero-length checkpoint.
		if werr = failpoint.Hit(FailpointFsync); werr == nil {
			werr = f.Sync()
		}
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("write checkpoint: %w", werr)
	}
	if err := failpoint.Hit(FailpointRename); err != nil {
		return fmt.Errorf("commit checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("commit checkpoint: %w", err)
	}
	// Sync the directory so the rename itself is durable. Best effort:
	// some filesystems reject fsync on a directory handle.
	if d, err := os.Open(filepath.Dir(c.path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// degrade switches the checkpoint to memory-only mode (idempotently)
// and records why.
func (c *Checkpoint) degrade(format string, args ...any) {
	c.mu.Lock()
	already := c.degraded
	c.degraded = true
	c.mu.Unlock()
	if already {
		return
	}
	reason := fmt.Sprintf(format, args...)
	c.report.setDegraded(reason)
	c.report.warnf(c.warnSink, "campaign %q: checkpointing degraded to memory-only (%s); this run will finish but cannot be resumed", c.file.Label, reason)
}

// isDegraded reports whether the checkpoint fell back to memory-only.
func (c *Checkpoint) isDegraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}
