package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpointFile is the persisted form of a campaign's completed shards.
// Shard results are stored as raw JSON so the file format is independent
// of the concrete result type a campaign aggregates.
type checkpointFile struct {
	Version   int                     `json:"version"`
	Label     string                  `json:"label"`
	Seed      int64                   `json:"seed"`
	Trials    int                     `json:"trials"`
	ShardSize int                     `json:"shard_size"`
	Shards    map[int]json.RawMessage `json:"shards"`
}

// Checkpoint tracks the completed shards of one campaign and mirrors
// them to a JSON file. Every update rewrites the file via a temp file and
// an atomic rename, so a kill at any instant leaves either the previous
// or the new complete checkpoint — never a torn one.
type Checkpoint struct {
	path string

	mu   sync.Mutex
	file checkpointFile
}

// CheckpointPath returns the checkpoint file path a campaign label maps
// to inside dir.
func CheckpointPath(dir, label string) string {
	return filepath.Join(dir, sanitizeLabel(label)+".json")
}

// sanitizeLabel maps a campaign label to a safe file stem.
func sanitizeLabel(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_', r == '=':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "campaign"
	}
	return string(out)
}

// openCheckpoint binds a checkpoint to dir for the given spec. With
// resume it loads any existing file and validates that it belongs to the
// same campaign shape; without resume it starts empty (a stale file is
// overwritten on the first save).
func openCheckpoint(dir string, spec Spec, resume bool) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint dir: %w", err)
	}
	c := &Checkpoint{
		path: CheckpointPath(dir, spec.Label),
		file: checkpointFile{
			Version:   checkpointVersion,
			Label:     spec.Label,
			Seed:      spec.Seed,
			Trials:    spec.Trials,
			ShardSize: spec.shardSize(),
			Shards:    map[int]json.RawMessage{},
		},
	}
	if !resume {
		return c, nil
	}
	raw, err := os.ReadFile(c.path)
	if errors.Is(err, fs.ErrNotExist) {
		return c, nil // nothing to resume yet
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var loaded checkpointFile
	if err := json.Unmarshal(raw, &loaded); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint %s: %w", c.path, err)
	}
	if loaded.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d", c.path, loaded.Version, checkpointVersion)
	}
	if loaded.Label != spec.Label || loaded.Seed != spec.Seed ||
		loaded.Trials != spec.Trials || loaded.ShardSize != spec.shardSize() {
		return nil, fmt.Errorf("campaign: checkpoint %s was written by a different campaign (label %q seed %d trials %d shard %d; want %q %d %d %d)",
			c.path, loaded.Label, loaded.Seed, loaded.Trials, loaded.ShardSize,
			spec.Label, spec.Seed, spec.Trials, spec.shardSize())
	}
	if loaded.Shards != nil {
		c.file.Shards = loaded.Shards
	}
	return c, nil
}

// shard returns the stored raw result of shard i, if present.
func (c *Checkpoint) shard(i int) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.file.Shards[i]
	return raw, ok
}

// numDone returns how many shard results the checkpoint holds.
func (c *Checkpoint) numDone() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.file.Shards)
}

// record stores shard i's result and rewrites the checkpoint file
// atomically.
func (c *Checkpoint) record(i int, raw json.RawMessage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.file.Shards[i] = raw
	return c.save()
}

// save writes the checkpoint under c.mu: marshal, write to a sibling
// temp file, fsync-free atomic rename into place.
func (c *Checkpoint) save() error {
	buf, err := json.MarshalIndent(&c.file, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: marshal checkpoint: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("campaign: commit checkpoint: %w", err)
	}
	return nil
}
