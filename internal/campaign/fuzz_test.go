package campaign

import (
	"context"
	"encoding/json"
	"os"
	"testing"
)

// fuzzSpec is the fixed campaign shape every fuzz input is loaded
// against; its label/seed/trials also appear in the seed corpus so the
// fuzzer can reach the header-matched salvage paths.
var fuzzSpec = Spec{Label: "fuzz", Trials: 2000, ShardSize: 500, Seed: 21}

// FuzzCheckpointLoad feeds arbitrary bytes — and mutations of a valid
// checkpoint — to the loader in both strict and salvage mode. Strict
// mode may reject the file with an error; salvage mode must always
// produce a resumable state; neither may ever panic. (A mutation that
// stays a semantically valid shard payload is indistinguishable from a
// real result by design — the fuzz property is salvage-or-reject, not
// byte-level authentication.)
func FuzzCheckpointLoad(f *testing.F) {
	// Seed corpus: a genuine checkpoint plus characteristic damage.
	dir := f.TempDir()
	if _, err := Run(context.Background(), fuzzSpec, Options{CheckpointDir: dir}, sumFn, sumMerge); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(CheckpointPath(dir, fuzzSpec.Label))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])               // truncated
	f.Add(valid[:len(valid)-2])               // missing closing braces
	f.Add([]byte("{not json"))                // garbage
	f.Add([]byte(`{"version":99}`))           // wrong version
	f.Add([]byte(`null`))                     // null document
	f.Add([]byte(`{"shards":{"0":null}}`))    // null shard payload
	f.Add([]byte(`{"shards":{"-1":{}}}`))     // out-of-range index
	f.Add([]byte(`{"shards":{"zz":{"n":1}}`)) // bad key, truncated
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 200 {
		corrupt[180] ^= 0xff // bit-flip inside the shards section
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := CheckpointPath(dir, fuzzSpec.Label)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		// Strict mode: error or success, never a panic.
		if c, err := openCheckpoint(dir, fuzzSpec, Options{Resume: true}); err == nil && c == nil {
			t.Fatal("strict open returned nil, nil")
		}
		// Salvage mode never hard-fails on checkpoint content, and
		// whatever it keeps must be a loadable shard of this campaign.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		c, err := openCheckpoint(dir, fuzzSpec, Options{Resume: true, Salvage: true})
		if err != nil {
			t.Fatalf("salvage open errored on %q: %v", data, err)
		}
		n := fuzzSpec.NumShards()
		for i := 0; i < n; i++ {
			if raw, ok := c.shard(i); ok && (!json.Valid(raw) || isNullJSON(raw)) {
				t.Fatalf("salvage kept unusable shard %d payload %q", i, raw)
			}
		}
		if c.numDone() > n {
			t.Fatalf("salvage kept %d shards for a %d-shard campaign", c.numDone(), n)
		}
	})
}

// FuzzSalvageParse hits the tolerant parser directly with arbitrary
// bytes: it must never panic and must only ever return well-formed raw
// shard payloads.
func FuzzSalvageParse(f *testing.F) {
	f.Add([]byte(`{"version":1,"label":"fuzz","seed":21,"trials":2000,"shard_size":500,"shards":{"0":{"n":500,"sum":1}}}`))
	f.Add([]byte(`{"shards":{"0":`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		out := salvageParse(data)
		for i, p := range out.Shards {
			if !json.Valid(p) {
				t.Fatalf("salvaged shard %d payload %q is not valid JSON", i, p)
			}
		}
	})
}
