package campaign

import (
	"math/rand"
	"time"
)

// Backoff configures retry of transient checkpoint I/O (mkdir, write,
// fsync, rename, read). The zero value means "use defaults"; set
// Attempts to a negative value to disable retrying entirely.
type Backoff struct {
	// Attempts is the total number of tries, including the first.
	// 0 means DefaultBackoffAttempts; negative means exactly one try.
	Attempts int

	// Base is the delay before the first retry; each further retry
	// doubles it, capped at Max. 0 means 5ms.
	Base time.Duration

	// Max caps the per-retry delay. 0 means 250ms.
	Max time.Duration

	// Sleep, when non-nil, replaces time.Sleep — tests inject a
	// recording sleeper so backoff schedules are asserted without
	// wall-clock waits.
	Sleep func(time.Duration)
}

// DefaultBackoffAttempts is the checkpoint I/O retry budget used when
// Backoff.Attempts is zero: one initial try plus three retries.
const DefaultBackoffAttempts = 4

// withDefaults resolves the zero-value conventions.
func (b Backoff) withDefaults() Backoff {
	if b.Attempts == 0 {
		b.Attempts = DefaultBackoffAttempts
	}
	if b.Attempts < 1 {
		b.Attempts = 1
	}
	if b.Base <= 0 {
		b.Base = 5 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 250 * time.Millisecond
	}
	if b.Sleep == nil {
		b.Sleep = time.Sleep
	}
	return b
}

// retry runs op up to the attempt budget, sleeping an exponentially
// growing, jittered delay between tries. The jitter stream is seeded
// from the salt (the checkpoint label), not from global randomness, so
// a test run's backoff schedule is reproducible while concurrent
// campaigns still spread their retries apart. Returns the number of
// retries performed and op's final error (nil on success).
func (b Backoff) retry(salt string, op func() error) (retries int, err error) {
	b = b.withDefaults()
	var jitter *rand.Rand
	delay := b.Base
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || attempt+1 >= b.Attempts {
			return attempt, err
		}
		if jitter == nil {
			jitter = rand.New(rand.NewSource(ShardSeed(int64(b.Attempts), salt, 0)))
		}
		// Full jitter on top of the exponential floor: sleep in
		// [delay/2, delay), so synchronized failures decorrelate.
		d := delay/2 + time.Duration(jitter.Int63n(int64(delay/2)+1))
		b.Sleep(d)
		if delay < b.Max {
			delay *= 2
			if delay > b.Max {
				delay = b.Max
			}
		}
	}
}
