package campaign

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Merge folds shard fragments computed elsewhere (fleet workers holding
// shard leases) into the standard campaign checkpoint. It reuses the
// Checkpoint machinery verbatim — same file format, same atomic
// write/fsync/rename discipline, same retry/backoff and memory-only
// degradation — so a directory a coordinator merged into is
// indistinguishable from one a local Run wrote, and `pairsim -resume`
// picks a fleet run up exactly where the fleet left it.
//
// Duplicate completions are the normal case in a fleet (an expired lease
// is re-issued while the original worker may still finish): Record
// deduplicates by shard index, keeping the first fragment. Results are
// derived from (label, seed, shard index) alone, so first-wins and
// last-wins are byte-identical anyway.
type Merge struct {
	mu    sync.Mutex
	spec  Spec
	n     int
	frags map[int]json.RawMessage
	ckpt  *Checkpoint // nil when merging in memory only
}

// OpenMerge prepares a merge target for one campaign. With a checkpoint
// directory every recorded fragment is mirrored to the campaign's
// checkpoint file; with opts.Resume fragments already on disk are loaded
// (and reported by Done/NumDone) so a restarted coordinator re-issues
// only the missing shards. An empty dir merges in memory. The namespace
// is joined onto the label exactly as Run does.
func OpenMerge(dir string, spec Spec, opts Options) (*Merge, error) {
	if spec.Trials < 0 {
		return nil, fmt.Errorf("campaign %q: negative trial count %d", spec.Label, spec.Trials)
	}
	spec.Label = JoinLabel(opts.Namespace, spec.Label)
	m := &Merge{spec: spec, n: spec.NumShards(), frags: map[int]json.RawMessage{}}
	if dir == "" {
		return m, nil
	}
	ckpt, err := openCheckpoint(dir, spec, opts)
	if err != nil {
		return nil, err
	}
	m.ckpt = ckpt
	for i, raw := range ckpt.shards() {
		if i >= 0 && i < m.n {
			m.frags[i] = raw
		}
	}
	return m, nil
}

// Label returns the full (namespaced) campaign label.
func (m *Merge) Label() string { return m.spec.Label }

// Spec returns the namespaced campaign spec the merge was opened with.
func (m *Merge) Spec() Spec { return m.spec }

// NumShards returns the campaign's shard count.
func (m *Merge) NumShards() int { return m.n }

// Done reports whether shard i's fragment has been recorded.
func (m *Merge) Done(i int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.frags[i]
	return ok
}

// NumDone returns how many fragments have been recorded.
func (m *Merge) NumDone() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.frags)
}

// Complete reports whether every shard has a fragment.
func (m *Merge) Complete() bool { return m.NumDone() == m.n }

// Record merges shard i's raw JSON fragment. It returns fresh=false for
// a duplicate completion (the fragment is discarded; determinism makes
// it byte-identical to the recorded one) and an error for an
// out-of-range index or a fragment that is not valid JSON. A fresh
// fragment is persisted to the checkpoint before Record returns.
func (m *Merge) Record(i int, frag json.RawMessage) (fresh bool, err error) {
	if i < 0 || i >= m.n {
		return false, fmt.Errorf("campaign %q: shard %d out of range [0,%d)", m.spec.Label, i, m.n)
	}
	if !json.Valid(frag) || isNullJSON(frag) {
		return false, fmt.Errorf("campaign %q: shard %d fragment is not a JSON value", m.spec.Label, i)
	}
	cp := append(json.RawMessage(nil), frag...)
	m.mu.Lock()
	if _, dup := m.frags[i]; dup {
		m.mu.Unlock()
		return false, nil
	}
	m.frags[i] = cp
	m.mu.Unlock()
	if m.ckpt != nil {
		m.ckpt.record(i, cp)
	}
	return true, nil
}

// Fragment returns the recorded fragment of shard i, if any.
func (m *Merge) Fragment(i int) (json.RawMessage, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	raw, ok := m.frags[i]
	return raw, ok
}

// Fold visits every recorded fragment in ascending shard order — the
// same order Run merges in, so an aggregate folded here is
// byte-identical to a local run's.
func (m *Merge) Fold(visit func(i int, frag json.RawMessage) error) error {
	for i := 0; i < m.n; i++ {
		raw, ok := m.Fragment(i)
		if !ok {
			continue
		}
		if err := visit(i, raw); err != nil {
			return fmt.Errorf("campaign %q: shard %d: %w", m.spec.Label, i, err)
		}
	}
	return nil
}

// Degraded reports whether the underlying checkpoint fell back to
// memory-only mode (always false for an in-memory merge).
func (m *Merge) Degraded() bool {
	return m.ckpt != nil && m.ckpt.isDegraded()
}

// shards returns a copy of the checkpoint's shard map.
func (c *Checkpoint) shards() map[int]json.RawMessage {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]json.RawMessage, len(c.file.Shards))
	for i, raw := range c.file.Shards {
		out[i] = raw
	}
	return out
}
