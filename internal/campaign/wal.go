package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pair/internal/failpoint"
)

// WAL failpoint names, following the checkpoint I/O convention: an
// error action makes the guarded syscall fail without touching disk.
const (
	FailpointWALAppend = "campaign/wal/append"
	FailpointWALSync   = "campaign/wal/sync"
)

// WAL is a fsync-correct append-only log of JSON records, the durable
// complement to the Checkpoint's rewrite-and-rename files: where a
// checkpoint persists a campaign's *results*, a WAL persists an ordered
// history of *state transitions* (the fleet coordinator journals job
// and lease lifecycle events through one). Each Append writes a single
// line and fsyncs before returning, so a crash at any instant loses at
// most the record being written — and a torn tail is detected and
// truncated on the next Open, never mistaken for a valid record.
type WAL struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	closed bool
}

// OpenWAL opens (creating if absent) the log at path and returns the
// intact records already on disk, in append order. Recovery rules:
//
//   - A torn tail — a final line that is incomplete or not valid JSON,
//     exactly what a crash mid-Append leaves — is dropped and truncated
//     away so subsequent appends start on a clean boundary.
//   - A corrupt record *followed by* intact ones cannot have been
//     produced by the append discipline; that is real corruption and
//     OpenWAL rejects the whole log rather than silently replaying a
//     history with a hole in the middle.
func OpenWAL(path string) (*WAL, []json.RawMessage, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("wal %s: %w", path, err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("wal %s: read: %w", path, err)
	}
	recs, validLen, err := ParseWAL(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("wal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal %s: %w", path, err)
	}
	if validLen < int64(len(raw)) {
		// Torn tail from a crash mid-append: truncate so the next
		// record starts on a line boundary.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal %s: truncating torn tail: %w", path, err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal %s: %w", path, err)
	}
	return &WAL{path: path, f: f}, recs, nil
}

// ParseWAL splits raw log bytes into intact records, returning the
// records, the byte length of the valid prefix, and an error for
// mid-log corruption (an invalid record with valid records after it).
// A trailing torn record is not an error; it is simply excluded from
// the valid prefix. Exported so the fuzz target can drive the exact
// replay-or-reject surface OpenWAL uses.
func ParseWAL(raw []byte) (recs []json.RawMessage, validLen int64, err error) {
	off := int64(0)
	torn := int64(-1) // offset of the first invalid line, -1 if none
	for len(raw) > 0 {
		line := raw
		rest := []byte(nil)
		terminated := false
		if i := bytes.IndexByte(raw, '\n'); i >= 0 {
			line, rest, terminated = raw[:i], raw[i+1:], true
		}
		lineLen := int64(len(line))
		if terminated {
			lineLen++
		}
		ok := terminated && len(bytes.TrimSpace(line)) > 0 && json.Valid(line)
		switch {
		case ok && torn >= 0:
			return nil, 0, fmt.Errorf("corrupt record at byte %d followed by intact records: log is damaged, not torn", torn)
		case ok:
			recs = append(recs, json.RawMessage(append([]byte(nil), line...)))
			off += lineLen
		case torn < 0:
			torn = off
			off += lineLen
		default:
			off += lineLen
		}
		raw = rest
	}
	if torn >= 0 {
		return recs, torn, nil
	}
	return recs, off, nil
}

// Append marshals rec, writes it as one line and fsyncs. The write and
// the sync are separately failpointed (FailpointWALAppend,
// FailpointWALSync) so tests can model a record lost before it reached
// the disk. Append on a closed WAL is a silent no-op — the hook chaos
// tests use to model a killed process whose in-flight handlers must
// not write into a successor's log.
func (w *WAL) Append(rec any) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal %s: marshal: %w", w.path, err)
	}
	buf = append(buf, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if err := failpoint.Hit(FailpointWALAppend); err != nil {
		return fmt.Errorf("wal %s: append: %w", w.path, err)
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("wal %s: append: %w", w.path, err)
	}
	if err := failpoint.Hit(FailpointWALSync); err != nil {
		return fmt.Errorf("wal %s: sync: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal %s: sync: %w", w.path, err)
	}
	return nil
}

// Close stops all future appends and closes the file. Safe to call
// more than once.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Abandon stops all future appends without flushing or closing cleanly
// — the in-process stand-in for the process dying with the file handle
// open. The OS keeps whatever Append already pushed through; records
// in flight when Abandon lands are lost, exactly like a kill.
func (w *WAL) Abandon() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }
