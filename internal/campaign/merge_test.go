package campaign

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
)

// A checkpoint assembled out of order from ExecShard fragments (the
// fleet path) must be byte-identical to the one a local Run writes, and
// a local Run must resume from it.
func TestMergeMatchesLocalRunByteForByte(t *testing.T) {
	spec := Spec{Label: "merge/byte-id", Trials: 500, ShardSize: 100, Seed: 42}
	ctx := context.Background()

	localDir := t.TempDir()
	want, err := Run(ctx, spec, Options{CheckpointDir: localDir}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}

	fleetDir := t.TempDir()
	m, err := OpenMerge(fleetDir, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Workers complete shards in arbitrary order; the duplicate of shard 2
	// (a re-issued lease whose original worker also finished) is dropped.
	for _, i := range []int{3, 0, 2, 4, 2, 1} {
		res, err := ExecShard(spec, i, Options{}, sumFn)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := m.Record(i, raw)
		if err != nil {
			t.Fatal(err)
		}
		if was := m.Done(i); !was {
			t.Fatalf("shard %d not recorded", i)
		}
		_ = fresh
	}
	if !m.Complete() {
		t.Fatalf("merge incomplete: %d/%d", m.NumDone(), m.NumShards())
	}

	var got sumShard
	if err := m.Fold(func(i int, frag json.RawMessage) error {
		var s sumShard
		if err := json.Unmarshal(frag, &s); err != nil {
			return err
		}
		sumMerge(&got, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fleet aggregate %+v != local %+v", got, want)
	}

	localBytes, err := os.ReadFile(CheckpointPath(localDir, spec.Label))
	if err != nil {
		t.Fatal(err)
	}
	fleetBytes, err := os.ReadFile(CheckpointPath(fleetDir, spec.Label))
	if err != nil {
		t.Fatal(err)
	}
	if string(localBytes) != string(fleetBytes) {
		t.Fatalf("checkpoint bytes differ:\nlocal: %s\nfleet: %s", localBytes, fleetBytes)
	}

	// And the local engine resumes from the merged checkpoint: every
	// shard loads (a recompute would change the aggregate via the
	// tripwire fn below), identical aggregate.
	resumed, err := Run(ctx, spec, Options{CheckpointDir: fleetDir, Resume: true},
		func(rng *rand.Rand, trials int) sumShard {
			return sumShard{N: -1 << 40} // tripwire: resumed runs must not recompute
		}, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != want {
		t.Fatalf("resume from merged checkpoint = %+v, want %+v", resumed, want)
	}
}

// A restarted coordinator re-opens its merge with Resume and sees the
// fragments already on disk, so only missing shards are re-leased.
func TestMergeResumeLoadsFragments(t *testing.T) {
	spec := Spec{Label: "merge/resume", Trials: 300, ShardSize: 100, Seed: 7}
	dir := t.TempDir()
	m, err := OpenMerge(dir, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh, err := m.Record(1, json.RawMessage(`{"n":100,"sum":1}`)); err != nil || !fresh {
		t.Fatalf("record: fresh=%v err=%v", fresh, err)
	}

	re, err := OpenMerge(dir, spec, Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !re.Done(1) || re.Done(0) || re.NumDone() != 1 {
		t.Fatalf("resumed merge state wrong: done(1)=%v done(0)=%v n=%d", re.Done(1), re.Done(0), re.NumDone())
	}
}

func TestMergeRejectsBadFragments(t *testing.T) {
	m, err := OpenMerge("", Spec{Label: "merge/bad", Trials: 100, ShardSize: 100, Seed: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Record(5, json.RawMessage(`1`)); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := m.Record(0, json.RawMessage(`{"n":`)); err == nil {
		t.Fatal("truncated JSON fragment accepted")
	}
	if _, err := m.Record(0, json.RawMessage(`null`)); err == nil {
		t.Fatal("null fragment accepted")
	}
	if fresh, err := m.Record(0, json.RawMessage(`1`)); err != nil || !fresh {
		t.Fatalf("valid fragment rejected: fresh=%v err=%v", fresh, err)
	}
	if fresh, err := m.Record(0, json.RawMessage(`2`)); err != nil || fresh {
		t.Fatalf("duplicate completion not deduplicated: fresh=%v err=%v", fresh, err)
	}
	if raw, _ := m.Fragment(0); string(raw) != "1" {
		t.Fatalf("dedup must keep the first fragment, got %s", raw)
	}
}

// ExecShard surfaces the engine's failure machinery: a shard whose
// attempts all fail returns the same *ShardError a local Run records.
func TestExecShardFailure(t *testing.T) {
	spec := Spec{Label: "merge/fail", Trials: 100, ShardSize: 100, Seed: 1}
	boom := func(rng *rand.Rand, trials int) sumShard { panic("shard bug") }
	_, err := ExecShard(spec, 0, Options{Retries: 1}, boom)
	serr, ok := err.(*ShardError)
	if !ok {
		t.Fatalf("want *ShardError, got %v", err)
	}
	if serr.Attempts != 2 || serr.Shard != 0 {
		t.Fatalf("ShardError = %+v, want 2 attempts on shard 0", serr)
	}
}
