package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// sumShard is the toy campaign used throughout: each trial draws one
// int63 and the shard reports the count and sum, so any change in stream
// assignment, shard sizing or merge order shows up in the aggregate.
type sumShard struct {
	N   int   `json:"n"`
	Sum int64 `json:"sum"`
}

func sumFn(rng *rand.Rand, trials int) sumShard {
	s := sumShard{N: trials}
	for i := 0; i < trials; i++ {
		s.Sum += rng.Int63()
	}
	return s
}

func sumMerge(agg *sumShard, s sumShard) {
	agg.N += s.N
	agg.Sum += s.Sum
}

func TestSpecShardMath(t *testing.T) {
	s := Spec{Label: "x", Trials: 2500, ShardSize: 1000, Seed: 1}
	if got := s.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d, want 3", got)
	}
	if sh := s.Shard(0); sh.Trials != 1000 || sh.Index != 0 {
		t.Fatalf("shard 0 = %+v", sh)
	}
	if sh := s.Shard(2); sh.Trials != 500 {
		t.Fatalf("tail shard trials = %d, want 500", sh.Trials)
	}
	total := 0
	for i := 0; i < s.NumShards(); i++ {
		total += s.Shard(i).Trials
	}
	if total != s.Trials {
		t.Fatalf("shard trials sum to %d, want %d", total, s.Trials)
	}
	if (Spec{Trials: 0}).NumShards() != 0 {
		t.Fatal("empty campaign must have 0 shards")
	}
	if (Spec{Trials: 1}).NumShards() != 1 {
		t.Fatal("default shard size must yield 1 shard for 1 trial")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range shard index did not panic")
		}
	}()
	s.Shard(3)
}

func TestShardSeedIndependence(t *testing.T) {
	seen := map[int64]string{}
	for _, label := range []string{"a", "b", "coverage/pair/pin"} {
		for _, seed := range []int64{1, 2, 999} {
			for shard := 0; shard < 50; shard++ {
				k := ShardSeed(seed, label, shard)
				if prev, dup := seen[k]; dup {
					t.Fatalf("seed collision: %q and (%s,%d,%d)", prev, label, seed, shard)
				}
				seen[k] = label
			}
		}
	}
	if ShardSeed(1, "x", 0) != ShardSeed(1, "x", 0) {
		t.Fatal("ShardSeed not deterministic")
	}
}

func TestRunIndependentOfWorkerCount(t *testing.T) {
	spec := Spec{Label: "workers", Trials: 5300, ShardSize: 500, Seed: 7}
	var ref sumShard
	for _, workers := range []int{1, 2, 8, 32} {
		got, err := Run(context.Background(), spec, Options{Workers: workers}, sumFn, sumMerge)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.N != spec.Trials {
			t.Fatalf("workers=%d: %d trials, want %d", workers, got.N, spec.Trials)
		}
		if workers == 1 {
			ref = got
		} else if got != ref {
			t.Fatalf("workers=%d: aggregate %+v != single-worker %+v", workers, got, ref)
		}
	}
}

func TestRunZeroTrials(t *testing.T) {
	got, err := Run(context.Background(), Spec{Label: "empty"}, Options{}, sumFn, sumMerge)
	if err != nil || got.N != 0 {
		t.Fatalf("empty campaign: %+v, %v", got, err)
	}
	if _, err := Run(context.Background(), Spec{Label: "neg", Trials: -1}, Options{}, sumFn, sumMerge); err == nil {
		t.Fatal("negative trials did not error")
	}
}

func TestRunNamespaceChangesStream(t *testing.T) {
	spec := Spec{Label: "ns", Trials: 100, ShardSize: 50, Seed: 1}
	a, err := Run(context.Background(), spec, Options{Namespace: "exp1"}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec, Options{Namespace: "exp2"}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different namespaces produced identical draws")
	}
}

// TestKillAndResumeByteIdentical is the core recoverability guarantee: a
// campaign cancelled mid-run and resumed from its checkpoint must produce
// byte-identical result JSON to an uninterrupted run.
func TestKillAndResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Label: "kill-resume", Trials: 8000, ShardSize: 500, Seed: 42}

	uninterrupted, err := Run(context.Background(), spec, Options{}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}

	// First run: cancel as soon as a few shards have completed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{
		Workers:       2,
		CheckpointDir: dir,
		OnShardDone: func(completed, total int) {
			if completed >= 3 {
				cancel()
			}
		},
	}
	if _, err := Run(ctx, spec, opts, sumFn, sumMerge); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	ck, err := openCheckpoint(dir, spec, Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	done := ck.numDone()
	if done < 3 || done >= spec.NumShards() {
		t.Fatalf("checkpoint holds %d shards after cancel, want partial coverage of %d", done, spec.NumShards())
	}

	// Resume: remaining shards run, aggregate matches bit-for-bit.
	var resumedFresh int
	resumeOpts := Options{
		CheckpointDir: dir,
		Resume:        true,
		OnShardDone:   func(completed, total int) { resumedFresh++ },
	}
	resumed, err := Run(context.Background(), spec, resumeOpts, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	if resumedFresh != spec.NumShards()-done {
		t.Fatalf("resume ran %d fresh shards, want %d", resumedFresh, spec.NumShards()-done)
	}
	wantJSON, _ := json.Marshal(uninterrupted)
	gotJSON, _ := json.Marshal(resumed)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("resumed JSON %s != uninterrupted %s", gotJSON, wantJSON)
	}

	// A second resume finds everything done and recomputes nothing.
	again, err := Run(context.Background(), spec, Options{CheckpointDir: dir, Resume: true,
		OnShardDone: func(int, int) { t.Fatal("fully resumed campaign ran a shard") }}, sumFn, sumMerge)
	if err != nil || again != uninterrupted {
		t.Fatalf("full resume: %+v, %v", again, err)
	}
}

func TestFreshRunOverwritesStaleCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Label: "fresh", Trials: 300, ShardSize: 100, Seed: 3}
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	// Without Resume the run must not consume the existing checkpoint.
	ran := 0
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir,
		OnShardDone: func(int, int) { ran++ }}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	if ran != spec.NumShards() {
		t.Fatalf("fresh run executed %d shards, want %d", ran, spec.NumShards())
	}
}

func TestResumeRejectsMismatchedSpec(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Label: "shape", Trials: 200, ShardSize: 100, Seed: 1}
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Spec{
		{Label: "shape", Trials: 200, ShardSize: 100, Seed: 2},
		{Label: "shape", Trials: 400, ShardSize: 100, Seed: 1},
		{Label: "shape", Trials: 200, ShardSize: 50, Seed: 1},
	} {
		if _, err := Run(context.Background(), bad, Options{CheckpointDir: dir, Resume: true}, sumFn, sumMerge); err == nil {
			t.Fatalf("resume with mismatched spec %+v did not error", bad)
		}
	}
}

func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Label: "corrupt", Trials: 100, ShardSize: 100, Seed: 1}
	path := CheckpointPath(dir, "corrupt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir, Resume: true}, sumFn, sumMerge); err == nil {
		t.Fatal("corrupt checkpoint did not error")
	}
	// Corrupt shard payloads are detected too.
	if err := os.WriteFile(path, []byte(`{"version":1,"label":"corrupt","seed":1,"trials":100,"shard_size":100,"shards":{"0":{"n":"nope"}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir, Resume: true}, sumFn, sumMerge); err == nil {
		t.Fatal("corrupt shard payload did not error")
	}
}

// Distinct labels must never share a checkpoint file. (Regression:
// sanitization used to be lossy — "a/b" and "a_b" both mapped to
// "a_b.json" — so a fresh run of one campaign silently overwrote a
// sibling's checkpoint and a later resume aborted on a label mismatch.)
func TestCheckpointPathCollisions(t *testing.T) {
	if CheckpointPath("d", "a/b") == CheckpointPath("d", "a_b") {
		t.Fatal(`labels "a/b" and "a_b" map to the same checkpoint file`)
	}
	if CheckpointPath("d", "a/b") == CheckpointPath("d", "a:b") {
		t.Fatal(`lossy labels "a/b" and "a:b" map to the same checkpoint file`)
	}
	// Lossless labels keep their historical stems: no hash suffix.
	if got := filepath.Base(CheckpointPath("d", "a_b")); got != "a_b.json" {
		t.Fatalf("lossless label stem changed: %q", got)
	}

	dir := t.TempDir()
	ctx := context.Background()
	slash := Spec{Label: "a/b", Trials: 100, ShardSize: 50, Seed: 1}
	under := Spec{Label: "a_b", Trials: 60, ShardSize: 20, Seed: 7}
	if _, err := Run(ctx, slash, Options{CheckpointDir: dir}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	// A fresh (non-resume) run of the sibling label must not clobber the
	// first campaign's checkpoint.
	if _, err := Run(ctx, under, Options{CheckpointDir: dir}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, slash, Options{CheckpointDir: dir, Resume: true}, sumFn, sumMerge); err != nil {
		t.Fatalf("resume after sibling fresh run: %v", err)
	}
}

func TestCheckpointPathSanitizes(t *testing.T) {
	p := CheckpointPath("dir", "t2/coverage/pair x16:bl8/pin")
	base := filepath.Base(p)
	if strings.ContainsAny(base, "/: ") {
		t.Fatalf("unsanitized checkpoint name %q", base)
	}
	if !strings.HasSuffix(base, ".json") {
		t.Fatalf("checkpoint name %q lacks .json", base)
	}
	if filepath.Base(CheckpointPath("d", "")) != "campaign.json" {
		t.Fatal("empty label must map to a stable default stem")
	}
}

func TestJoinLabelAndSublabel(t *testing.T) {
	if got := JoinLabel("a", "", "b", "c"); got != "a/b/c" {
		t.Fatalf("JoinLabel = %q", got)
	}
	if got := JoinLabel(); got != "" {
		t.Fatalf("JoinLabel() = %q", got)
	}
	o := Options{Namespace: "f6"}.Sublabel("exp=2")
	if o.Namespace != "f6/exp=2" {
		t.Fatalf("Sublabel namespace = %q", o.Namespace)
	}
	if (Options{}).Sublabel("x").Namespace != "x" {
		t.Fatal("Sublabel on empty namespace wrong")
	}
}

func TestProgressCountersAndSnapshot(t *testing.T) {
	p := NewProgress()
	spec := Spec{Label: "prog", Trials: 1000, ShardSize: 100, Seed: 1}
	if _, err := Run(context.Background(), spec, Options{Progress: p}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if s.ShardsTotal != 10 || s.ShardsDone != 10 || s.TrialsDone != 1000 || s.TrialsTotal != 1000 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.ShardsResumed != 0 || s.ETA != 0 {
		t.Fatalf("completed campaign snapshot %+v", s)
	}
	line := s.String()
	if !strings.Contains(line, "shards 10/10") || !strings.Contains(line, "trials 1000/1000") {
		t.Fatalf("snapshot string %q", line)
	}

	// Resumed shards are reported separately.
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	p2 := NewProgress()
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir, Resume: true, Progress: p2}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	s2 := p2.Snapshot()
	if s2.ShardsResumed != 10 || s2.ShardsDone != 0 || s2.TrialsResumed != 1000 {
		t.Fatalf("resumed snapshot %+v", s2)
	}
	if !strings.Contains(s2.String(), "resumed") {
		t.Fatalf("resumed snapshot string %q", s2.String())
	}
}

func TestProgressReporterEmitsFinalLine(t *testing.T) {
	p := NewProgress()
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(b []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(b)
	})
	stop := p.Report(context.Background(), w, time.Hour)
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "progress: shards 0/0") {
		t.Fatalf("reporter output %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }
