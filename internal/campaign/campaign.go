// Package campaign implements the resumable sharded Monte-Carlo engine
// behind the reliability study's heavy campaigns.
//
// A campaign is split into fixed-size trial shards. Each shard draws its
// randomness from a seed derived by FNV-1a over (campaign label, campaign
// seed, shard index) — never from a worker index or from scheduling order —
// so the aggregated result is bit-identical no matter the worker count,
// the execution order, or where a previous run was interrupted. Completed
// shards can be persisted to a JSON checkpoint (written with an atomic
// rename) and skipped on resume, which is what makes a killed multi-hour
// campaign recoverable instead of lost.
package campaign

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"
)

// DefaultShardSize is the trials-per-shard used when Spec.ShardSize is
// zero. It is small enough that quick-mode campaigns still split into
// several shards (so cancellation loses little work) and large enough
// that per-shard overhead (one RNG, one checkpoint write) is noise.
const DefaultShardSize = 1000

// Spec identifies one deterministic campaign: how many trials to run,
// how they are sliced into shards, and the seed material every shard
// stream is derived from. Label must be unique among campaigns sharing a
// checkpoint directory; it both names the checkpoint file and salts the
// shard seeds (the per-label streams of the Coverage engine, extended to
// per-shard).
type Spec struct {
	Label     string
	Trials    int
	ShardSize int // trials per shard; 0 means DefaultShardSize
	Seed      int64
}

// shardSize returns the effective shard size.
func (s Spec) shardSize() int {
	if s.ShardSize > 0 {
		return s.ShardSize
	}
	return DefaultShardSize
}

// NumShards returns how many shards the campaign splits into. The last
// shard absorbs the remainder and may be short.
func (s Spec) NumShards() int {
	if s.Trials <= 0 {
		return 0
	}
	sz := s.shardSize()
	return (s.Trials + sz - 1) / sz
}

// Shard is one independently seeded unit of campaign work.
type Shard struct {
	Index  int
	Trials int
	Seed   int64
}

// Shard returns shard i of the campaign.
func (s Spec) Shard(i int) Shard {
	n := s.NumShards()
	if i < 0 || i >= n {
		panic(fmt.Sprintf("campaign: shard %d out of range [0,%d)", i, n))
	}
	sz := s.shardSize()
	trials := sz
	if i == n-1 {
		trials = s.Trials - sz*(n-1)
	}
	return Shard{Index: i, Trials: trials, Seed: ShardSeed(s.Seed, s.Label, i)}
}

// ShardSeed derives the RNG seed of one shard: FNV-1a over the campaign
// label followed by the little-endian campaign seed and shard index. The
// label salt keeps campaigns that share a numeric seed on independent
// streams; the index salt keeps shards independent of each other and of
// any notion of "worker".
func ShardSeed(seed int64, label string, shard int) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(shard))
	h.Write(b[:])
	return int64(h.Sum64())
}

// Options configures how a campaign executes. The zero value runs with
// GOMAXPROCS workers, no checkpointing and no progress reporting — the
// fire-and-forget behavior the blocking wrappers use.
type Options struct {
	// Workers caps the number of concurrent shard workers. 0 means
	// GOMAXPROCS. The result does not depend on this value.
	Workers int

	// Namespace prefixes campaign labels built by higher layers (the
	// reliability engine joins it with its own scheme/kind labels), so
	// one checkpoint directory can serve many experiments without label
	// collisions. It participates in seed derivation through the label.
	Namespace string

	// CheckpointDir, when non-empty, enables checkpointing: each
	// campaign persists completed-shard results to
	// <dir>/<sanitized-label>.json after every shard.
	CheckpointDir string

	// Resume loads an existing checkpoint (if any) before running and
	// skips its completed shards. Without Resume a fresh run overwrites
	// any stale checkpoint for the same label.
	Resume bool

	// Progress, when non-nil, receives shard/trial completion counts.
	Progress *Progress

	// OnShardDone, when non-nil, is called after each shard completes
	// (serialized; completed counts both fresh and resumed shards). It
	// exists for tests and custom reporters that need a hook at shard
	// granularity, e.g. to cancel a run at a known point.
	OnShardDone func(completed, total int)

	// Retries is the per-shard retry budget: a shard attempt that
	// panics, errors, or exceeds the watchdog is re-attempted up to
	// this many extra times (each attempt reseeds from the shard seed,
	// so a successful retry is byte-identical to a first-attempt
	// success). 0 disables retries; a shard whose budget is exhausted
	// becomes a ShardError in the returned RunError while the rest of
	// the campaign keeps running.
	Retries int

	// ShardTimeout, when positive, arms a watchdog per shard attempt:
	// an attempt running longer is abandoned (its goroutine finishes in
	// the background; its result is discarded) and counts as a failed
	// attempt against the retry budget.
	ShardTimeout time.Duration

	// Salvage relaxes resume: instead of aborting on a corrupted or
	// truncated checkpoint (or a stale .tmp left by a crash), every
	// intact shard is recovered, the damaged ones are dropped with a
	// warning, and only the lost work is recomputed. Without Salvage a
	// damaged checkpoint is a hard error, exactly as before.
	Salvage bool

	// CheckpointBackoff tunes the retry/backoff policy for transient
	// checkpoint I/O (mkdir, read, write, fsync, rename). The zero
	// value uses defaults; tests inject a recording Sleep to make the
	// schedule deterministic. When the budget is exhausted the
	// checkpoint degrades to memory-only mode and the campaign
	// completes without resumability rather than failing.
	CheckpointBackoff Backoff

	// Report, when non-nil, collects the structured defect record of
	// the run: shard failures, retry counts, salvage outcomes and
	// degradation warnings. Shareable across campaigns like Progress.
	Report *Report

	// Warnf, when non-nil, receives each engine warning as it happens
	// (degradation, salvage, dropped shards). Warnings are also
	// recorded in Report regardless.
	Warnf func(format string, args ...any)
}

// Sublabel returns a copy of o with extra joined onto the namespace,
// keeping checkpoint labels unique when one experiment runs several
// otherwise-identical campaigns (expansion levels, scrub intervals, ...).
func (o Options) Sublabel(extra string) Options {
	o.Namespace = JoinLabel(o.Namespace, extra)
	return o
}

// JoinLabel joins label parts with '/', skipping empty parts.
func JoinLabel(parts ...string) string {
	out := ""
	for _, p := range parts {
		if p == "" {
			continue
		}
		if out != "" {
			out += "/"
		}
		out += p
	}
	return out
}
