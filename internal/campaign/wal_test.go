package campaign

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pair/internal/failpoint"
)

type walRec struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func openTestWAL(t *testing.T, path string) (*WAL, []json.RawMessage) {
	t.Helper()
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	t.Cleanup(func() { w.Close() })
	return w, recs
}

func TestWALAppendAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j", "log.wal")
	w, recs := openTestWAL(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(walRec{N: i, S: "x"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	w.Close()

	_, recs = openTestWAL(t, path)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, raw := range recs {
		var r walRec
		if err := json.Unmarshal(raw, &r); err != nil || r.N != i {
			t.Fatalf("record %d = %s (%v), want n=%d", i, raw, err, i)
		}
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, _ := openTestWAL(t, path)
	for i := 0; i < 3; i++ {
		if err := w.Append(walRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// A crash mid-append leaves a partial record at the tail; both an
	// unterminated line and a terminated-but-invalid one must be
	// dropped and truncated away.
	for _, tail := range []string{`{"n":3,"s":"tor`, "{\"n\":3,,,}\n", "\n"} {
		intact, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(append([]byte(nil), intact...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		w2, recs := openTestWAL(t, path)
		if len(recs) != 3 {
			t.Fatalf("tail %q: replayed %d records, want 3", tail, len(recs))
		}
		// The truncation must leave a clean boundary: appending works
		// and the next replay sees exactly 4 records.
		if err := w2.Append(walRec{N: 3}); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		_, recs = openTestWAL(t, path)
		if len(recs) != 4 {
			t.Fatalf("tail %q: after truncate+append replayed %d records, want 4", tail, len(recs))
		}
		// Reset to 3 intact records for the next tail case.
		if err := os.WriteFile(path, intact, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALMidLogCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	if err := os.WriteFile(path, []byte("{\"n\":0}\nGARBAGE\n{\"n\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); err == nil {
		t.Fatal("OpenWAL accepted a log with mid-file corruption")
	}
}

func TestWALAppendFailpointsSurface(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "log.wal")
	w, _ := openTestWAL(t, path)
	if err := w.Append(walRec{N: 0}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk gone")
	failpoint.Arm(FailpointWALAppend, failpoint.Action{Err: boom, Times: 1})
	if err := w.Append(walRec{N: 1}); !errors.Is(err, boom) {
		t.Fatalf("append under failpoint = %v, want disk gone", err)
	}
	failpoint.Arm(FailpointWALSync, failpoint.Action{Err: boom, Times: 1})
	if err := w.Append(walRec{N: 2}); !errors.Is(err, boom) {
		t.Fatalf("sync under failpoint = %v, want disk gone", err)
	}
}

func TestWALClosedAndAbandonedAppendsAreNoOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, _ := openTestWAL(t, path)
	if err := w.Append(walRec{N: 0}); err != nil {
		t.Fatal(err)
	}
	w.Abandon()
	if err := w.Append(walRec{N: 1}); err != nil {
		t.Fatalf("append after Abandon returned %v, want silent no-op", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close after abandon: %v", err)
	}
	_, recs := openTestWAL(t, path)
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want only the pre-abandon one", len(recs))
	}
}

// FuzzWALParse holds the parse-or-reject contract: arbitrary bytes
// never panic, the valid prefix length is consistent (re-parsing the
// valid prefix yields the same records with no error), and every
// returned record is intact JSON.
func FuzzWALParse(f *testing.F) {
	f.Add([]byte("{\"n\":0}\n{\"n\":1}\n"))
	f.Add([]byte("{\"n\":0}\n{\"n\":1"))
	f.Add([]byte("junk\n{\"n\":1}\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, validLen, err := ParseWAL(raw)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if validLen < 0 || validLen > int64(len(raw)) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(raw))
		}
		for i, r := range recs {
			if !json.Valid(r) {
				t.Fatalf("record %d is not valid JSON: %q", i, r)
			}
		}
		recs2, len2, err2 := ParseWAL(raw[:validLen])
		if err2 != nil {
			t.Fatalf("re-parsing the valid prefix failed: %v", err2)
		}
		if len2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("re-parse diverged: len %d->%d, records %d->%d", validLen, len2, len(recs), len(recs2))
		}
	})
}
