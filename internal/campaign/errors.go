package campaign

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ErrShardTimeout marks a shard attempt abandoned by the watchdog
// (Options.ShardTimeout). The attempt's goroutine is left to finish in
// the background and its result is discarded.
var ErrShardTimeout = errors.New("shard attempt exceeded watchdog timeout")

// ShardError is the permanent failure of one shard: every attempt in
// the retry budget panicked, errored, or timed out. It carries the full
// campaign context of the shard so a defect report can reproduce it
// (the seed alone replays the shard's RNG stream).
type ShardError struct {
	Label    string // full campaign label (namespace included)
	Shard    int    // shard index within the campaign
	Seed     int64  // derived shard seed (replays the stream)
	Trials   int    // trials the shard was asked to run
	Attempts int    // attempts made (1 + retries)
	Panic    any    // panic value of the last attempt, if it panicked
	Stack    string // goroutine stack of the last panicking attempt
	Err      error  // error of the last attempt, if it failed non-panicking
}

// Error renders the failure with its reproduction context.
func (e *ShardError) Error() string {
	cause := ""
	switch {
	case e.Panic != nil:
		cause = fmt.Sprintf("panic: %v", e.Panic)
	case e.Err != nil:
		cause = e.Err.Error()
	default:
		cause = "unknown failure"
	}
	return fmt.Sprintf("campaign %q: shard %d (seed %d, %d trials) failed after %d attempt(s): %s",
		e.Label, e.Shard, e.Seed, e.Trials, e.Attempts, cause)
}

// Unwrap exposes the underlying attempt error (nil for panics).
func (e *ShardError) Unwrap() error { return e.Err }

// RunError aggregates the shard failures of one campaign run. Run
// returns it alongside the partial aggregate of the shards that did
// complete, so callers can degrade gracefully instead of losing the
// whole campaign to one defective shard.
type RunError struct {
	Label     string
	Failed    []*ShardError
	Completed int // shards that finished successfully (fresh + resumed)
	Total     int
}

// Error summarizes the run and its first failure.
func (e *RunError) Error() string {
	return fmt.Sprintf("campaign %q: %d/%d shards failed (%d completed); first: %v",
		e.Label, len(e.Failed), e.Total, e.Completed, e.Failed[0])
}

// Unwrap exposes every shard failure to errors.Is/As.
func (e *RunError) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		out[i] = f
	}
	return out
}

// SalvageReport describes one checkpoint-salvage operation: how many
// shard results survived a corrupted/truncated checkpoint and how many
// were dropped (unparseable, out of range, or lost to truncation).
type SalvageReport struct {
	Label     string
	Path      string
	Recovered int  // intact shards loaded
	Dropped   int  // shards present but rejected
	FromTmp   int  // of Recovered, how many came from a leftover .tmp
	HeaderOK  bool // the campaign header survived and matched the spec
}

func (s SalvageReport) String() string {
	out := fmt.Sprintf("salvaged %d shard(s) from %s", s.Recovered, s.Path)
	if s.Dropped > 0 {
		out += fmt.Sprintf(", dropped %d", s.Dropped)
	}
	if s.FromTmp > 0 {
		out += fmt.Sprintf(" (%d from leftover .tmp)", s.FromTmp)
	}
	if !s.HeaderOK {
		out += " (header unrecoverable: starting fresh)"
	}
	return out
}

// Report collects the structured defect record of one or more campaign
// runs sharing an Options value: shard failures, retry counts, salvage
// outcomes, checkpoint degradation and warnings. All methods are safe
// for concurrent use and nil-receiver safe, mirroring Progress, so a
// caller that doesn't care simply leaves Options.Report nil.
type Report struct {
	mu             sync.Mutex
	shardErrors    []*ShardError
	shardRetries   int
	ckptRetries    int
	degraded       bool
	degradedReason string
	salvages       []SalvageReport
	warnings       []string
}

// warnf records a warning line and forwards it to sink (if non-nil).
// It is the single funnel for every degradation message the engine
// emits, so callers see warnings live and in the final report alike.
func (r *Report) warnf(sink func(string, ...any), format string, args ...any) {
	if r != nil {
		r.mu.Lock()
		r.warnings = append(r.warnings, fmt.Sprintf(format, args...))
		r.mu.Unlock()
	}
	if sink != nil {
		sink(format, args...)
	}
}

// AddShardError records one permanent shard failure. Exported for
// remote executors (fleet coordinators) recording failures reported by
// worker processes; local runs record through Run.
func (r *Report) AddShardError(e *ShardError) { r.addShardError(e) }

// AddShardRetry counts one re-attempt of a failed shard (exported for
// remote executors; a re-issued lease is a retry).
func (r *Report) AddShardRetry() { r.addShardRetry() }

// Warningf records a warning line and forwards it to sink if non-nil
// (exported for remote executors sharing a Report with the engine).
func (r *Report) Warningf(sink func(string, ...any), format string, args ...any) {
	r.warnf(sink, format, args...)
}

// addShardError records one permanent shard failure.
func (r *Report) addShardError(e *ShardError) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardErrors = append(r.shardErrors, e)
}

// addShardRetry counts one re-attempt of a failed shard.
func (r *Report) addShardRetry() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardRetries++
}

// addCheckpointRetries counts re-attempts of checkpoint I/O.
func (r *Report) addCheckpointRetries(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ckptRetries += n
}

// setDegraded records that checkpointing fell back to memory-only mode.
func (r *Report) setDegraded(reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.degraded = true
	r.degradedReason = reason
}

// addSalvage records one salvage operation.
func (r *Report) addSalvage(s SalvageReport) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.salvages = append(r.salvages, s)
}

// ShardErrors returns the recorded permanent shard failures.
func (r *Report) ShardErrors() []*ShardError {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*ShardError(nil), r.shardErrors...)
}

// Retries returns (shard retries, checkpoint I/O retries).
func (r *Report) Retries() (shard, checkpoint int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shardRetries, r.ckptRetries
}

// Degraded reports whether checkpointing degraded to memory-only mode,
// and why.
func (r *Report) Degraded() (bool, string) {
	if r == nil {
		return false, ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.degraded, r.degradedReason
}

// Salvages returns the recorded salvage operations.
func (r *Report) Salvages() []SalvageReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SalvageReport(nil), r.salvages...)
}

// Warnings returns every warning line recorded so far.
func (r *Report) Warnings() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.warnings...)
}

// Empty reports whether nothing noteworthy happened: no failures, no
// retries, no salvage, no degradation.
func (r *Report) Empty() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.shardErrors) == 0 && r.shardRetries == 0 && r.ckptRetries == 0 &&
		!r.degraded && len(r.salvages) == 0 && len(r.warnings) == 0
}

// Summary renders the report as a short human-readable block, one item
// per line; "" when Empty.
func (r *Report) Summary() string {
	if r.Empty() {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	if r.shardRetries > 0 || r.ckptRetries > 0 {
		fmt.Fprintf(&b, "retries: %d shard, %d checkpoint I/O\n", r.shardRetries, r.ckptRetries)
	}
	for _, s := range r.salvages {
		fmt.Fprintf(&b, "%s\n", s)
	}
	if r.degraded {
		fmt.Fprintf(&b, "checkpointing degraded to memory-only: %s\n", r.degradedReason)
	}
	for _, e := range r.shardErrors {
		fmt.Fprintf(&b, "shard failure: %v\n", e)
	}
	return strings.TrimRight(b.String(), "\n")
}
