package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pair/internal/failpoint"
)

// fastBackoff returns a backoff whose sleeper records instead of
// sleeping, so failure tests assert the schedule without wall-clock
// waits.
func fastBackoff(sleeps *[]time.Duration, mu *sync.Mutex) Backoff {
	return Backoff{Sleep: func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		*sleeps = append(*sleeps, d)
	}}
}

// TestPanickingShardYieldsPartialResultsAndReport is the headline
// hardening guarantee: a shard function that panics no longer kills the
// process — the panic is recovered with full context, the other shards
// keep running, and Run returns the partial aggregate plus a typed
// defect report.
func TestPanickingShardYieldsPartialResultsAndReport(t *testing.T) {
	defer failpoint.Reset()
	spec := Spec{Label: "panic", Trials: 4000, ShardSize: 500, Seed: 9}
	clean, err := Run(context.Background(), spec, Options{}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}

	failpoint.Arm(FailpointShard, failpoint.Action{Panic: "injected shard crash", Times: 1})
	rep := new(Report)
	got, err := Run(context.Background(), spec, Options{Workers: 4, Report: rep}, sumFn, sumMerge)

	var runErr *RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("panicking shard returned %v, want *RunError", err)
	}
	if len(runErr.Failed) != 1 || runErr.Completed != spec.NumShards()-1 || runErr.Total != spec.NumShards() {
		t.Fatalf("run error %+v, want 1 failure of %d shards", runErr, spec.NumShards())
	}
	se := runErr.Failed[0]
	if se.Panic == nil || !strings.Contains(se.Stack, "campaign") {
		t.Fatalf("shard error lacks panic context: %+v", se)
	}
	sh := spec.Shard(se.Shard)
	if se.Seed != sh.Seed || se.Trials != sh.Trials || se.Label != "panic" || se.Attempts != 1 {
		t.Fatalf("shard error context %+v does not match shard %+v", se, sh)
	}
	var asShard *ShardError
	if !errors.As(err, &asShard) {
		t.Fatal("errors.As cannot reach the ShardError through the RunError")
	}
	// Partial aggregate: everything except the panicked shard.
	if got.N != clean.N-sh.Trials {
		t.Fatalf("partial aggregate has %d trials, want %d", got.N, clean.N-sh.Trials)
	}
	if len(rep.ShardErrors()) != 1 || rep.Empty() {
		t.Fatalf("report did not record the failure: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "shard failure") {
		t.Fatalf("report summary %q lacks the failure", rep.Summary())
	}
}

// TestPanickingShardRetriedToSuccess: with a retry budget, a transient
// panic costs one retry and the final aggregate is byte-identical to a
// clean run (every attempt reseeds from the shard seed).
func TestPanickingShardRetriedToSuccess(t *testing.T) {
	defer failpoint.Reset()
	spec := Spec{Label: "panic-retry", Trials: 3000, ShardSize: 500, Seed: 5}
	clean, err := Run(context.Background(), spec, Options{}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Arm(FailpointShard, failpoint.Action{Panic: "transient crash", Times: 1})
	rep := new(Report)
	prog := NewProgress()
	got, err := Run(context.Background(), spec, Options{Retries: 2, Report: rep, Progress: prog}, sumFn, sumMerge)
	if err != nil {
		t.Fatalf("retried run failed: %v", err)
	}
	if got != clean {
		t.Fatalf("retried aggregate %+v != clean %+v", got, clean)
	}
	if sr, _ := rep.Retries(); sr != 1 {
		t.Fatalf("report counts %d shard retries, want 1", sr)
	}
	if s := prog.Snapshot(); s.ShardsRetried != 1 || s.ShardsFailed != 0 {
		t.Fatalf("progress snapshot %+v, want 1 retried / 0 failed", s)
	}
}

// TestInjectedShardErrorExhaustsBudget: an error-action failpoint that
// always fires consumes the whole retry budget and surfaces as a
// ShardError wrapping the injected error.
func TestInjectedShardErrorExhaustsBudget(t *testing.T) {
	defer failpoint.Reset()
	boom := errors.New("injected shard error")
	failpoint.Arm(FailpointShard, failpoint.Action{Err: boom})
	spec := Spec{Label: "err", Trials: 1000, ShardSize: 500, Seed: 2}
	prog := NewProgress()
	_, err := Run(context.Background(), spec, Options{Workers: 1, Retries: 2, Progress: prog}, sumFn, sumMerge)
	var runErr *RunError
	if !errors.As(err, &runErr) || len(runErr.Failed) != 2 {
		t.Fatalf("got %v, want RunError with both shards failed", err)
	}
	if !errors.Is(err, boom) {
		t.Fatal("injected error not reachable via errors.Is")
	}
	for _, se := range runErr.Failed {
		if se.Attempts != 3 {
			t.Fatalf("shard %d made %d attempts, want 3", se.Shard, se.Attempts)
		}
	}
	s := prog.Snapshot()
	if s.ShardsFailed != 2 || s.ShardsRetried != 4 {
		t.Fatalf("progress %+v, want 2 failed / 4 retried", s)
	}
	if line := s.String(); !strings.Contains(line, "FAILED") || !strings.Contains(line, "retried") {
		t.Fatalf("snapshot line %q lacks failure counters", line)
	}
}

// TestWatchdogAbandonsStuckShard: a shard attempt stalled past
// ShardTimeout is abandoned and retried; with no budget left it surfaces
// as ErrShardTimeout.
func TestWatchdogAbandonsStuckShard(t *testing.T) {
	defer failpoint.Reset()
	spec := Spec{Label: "stuck", Trials: 1000, ShardSize: 500, Seed: 3}
	clean, err := Run(context.Background(), spec, Options{}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}

	// First attempt of one shard stalls; the retry succeeds.
	failpoint.Arm(FailpointShard, failpoint.Action{Delay: 30 * time.Second, Times: 1})
	rep := new(Report)
	got, err := Run(context.Background(), spec,
		Options{Workers: 2, Retries: 1, ShardTimeout: 50 * time.Millisecond, Report: rep}, sumFn, sumMerge)
	if err != nil {
		t.Fatalf("watchdog run failed: %v", err)
	}
	if got != clean {
		t.Fatalf("watchdog aggregate %+v != clean %+v", got, clean)
	}
	if sr, _ := rep.Retries(); sr != 1 {
		t.Fatalf("report counts %d retries, want 1", sr)
	}

	// Every attempt stalls and the budget runs out: typed timeout error.
	failpoint.Arm(FailpointShard, failpoint.Action{Delay: 30 * time.Second})
	_, err = Run(context.Background(), spec,
		Options{Workers: 2, ShardTimeout: 20 * time.Millisecond}, sumFn, sumMerge)
	if !errors.Is(err, ErrShardTimeout) {
		t.Fatalf("stuck campaign returned %v, want ErrShardTimeout", err)
	}
	var runErr *RunError
	if !errors.As(err, &runErr) || len(runErr.Failed) != spec.NumShards() {
		t.Fatalf("want every shard timed out, got %v", err)
	}
}

// TestTransientCheckpointWriteRetriedWithBackoff: two injected write
// failures are absorbed by the backoff loop — the run completes, the
// checkpoint is intact, and the recorded sleeps follow the schedule.
func TestTransientCheckpointWriteRetriedWithBackoff(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	spec := Spec{Label: "transient", Trials: 2000, ShardSize: 500, Seed: 4}
	clean, err := Run(context.Background(), spec, Options{}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var sleeps []time.Duration
	failpoint.Arm(FailpointWrite, failpoint.Action{Err: errors.New("transient EIO"), Times: 2})
	rep := new(Report)
	got, err := Run(context.Background(), spec, Options{
		Workers:           1,
		CheckpointDir:     dir,
		CheckpointBackoff: fastBackoff(&sleeps, &mu),
		Report:            rep,
	}, sumFn, sumMerge)
	if err != nil {
		t.Fatalf("run with transient checkpoint errors failed: %v", err)
	}
	if got != clean {
		t.Fatalf("aggregate %+v != clean %+v", got, clean)
	}
	if degraded, _ := rep.Degraded(); degraded {
		t.Fatal("transient errors within budget must not degrade")
	}
	if _, cr := rep.Retries(); cr != 2 {
		t.Fatalf("report counts %d checkpoint retries, want 2", cr)
	}
	if len(sleeps) != 2 || sleeps[0] <= 0 || sleeps[1] <= 0 {
		t.Fatalf("backoff sleeps %v, want two positive delays", sleeps)
	}

	// The checkpoint survived the turbulence: a full resume recomputes
	// nothing and reproduces the aggregate.
	failpoint.Reset()
	again, err := Run(context.Background(), spec, Options{CheckpointDir: dir, Resume: true,
		OnShardDone: func(int, int) { t.Fatal("resume after transient errors recomputed a shard") }}, sumFn, sumMerge)
	if err != nil || again != clean {
		t.Fatalf("resume: %+v, %v", again, err)
	}
}

// TestExhaustedCheckpointBudgetDegradesToMemory: when every write
// attempt fails, the campaign still completes — checkpointing switches
// to memory-only mode with a warning instead of killing the run.
func TestExhaustedCheckpointBudgetDegradesToMemory(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	spec := Spec{Label: "degrade", Trials: 2000, ShardSize: 500, Seed: 6}
	clean, err := Run(context.Background(), spec, Options{}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var sleeps []time.Duration
	var warned []string
	failpoint.Arm(FailpointWrite, failpoint.Action{Err: errors.New("disk on fire")})
	rep := new(Report)
	got, err := Run(context.Background(), spec, Options{
		Workers:           1,
		CheckpointDir:     dir,
		CheckpointBackoff: fastBackoff(&sleeps, &mu),
		Report:            rep,
		Warnf: func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			warned = append(warned, format)
		},
	}, sumFn, sumMerge)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if got != clean {
		t.Fatalf("degraded aggregate %+v != clean %+v", got, clean)
	}
	degraded, reason := rep.Degraded()
	if !degraded || !strings.Contains(reason, "disk on fire") {
		t.Fatalf("degraded=%v reason=%q", degraded, reason)
	}
	mu.Lock()
	gotWarning := len(warned) > 0
	mu.Unlock()
	if !gotWarning {
		t.Fatal("degradation emitted no live warning")
	}
	if !strings.Contains(rep.Summary(), "memory-only") {
		t.Fatalf("report summary %q lacks degradation", rep.Summary())
	}
	// Exactly one full budget was spent; later shards skip disk I/O.
	if _, cr := rep.Retries(); cr != DefaultBackoffAttempts-1 {
		t.Fatalf("checkpoint retries %d, want %d", cr, DefaultBackoffAttempts-1)
	}
	if _, err := os.Stat(CheckpointPath(dir, spec.Label)); !os.IsNotExist(err) {
		t.Fatal("degraded run left a (possibly torn) checkpoint behind")
	}
}

// TestUnusableCheckpointDirDegrades: a checkpoint directory that cannot
// be created degrades the run to memory-only instead of failing it.
func TestUnusableCheckpointDirDegrades(t *testing.T) {
	defer failpoint.Reset()
	var mu sync.Mutex
	var sleeps []time.Duration
	failpoint.Arm(FailpointMkdir, failpoint.Action{Err: errors.New("read-only fs")})
	spec := Spec{Label: "nodir", Trials: 1000, ShardSize: 500, Seed: 7}
	rep := new(Report)
	got, err := Run(context.Background(), spec, Options{
		CheckpointDir:     t.TempDir(),
		CheckpointBackoff: fastBackoff(&sleeps, &mu),
		Report:            rep,
	}, sumFn, sumMerge)
	if err != nil {
		t.Fatalf("run with unusable dir failed: %v", err)
	}
	if got.N != spec.Trials {
		t.Fatalf("aggregate %+v incomplete", got)
	}
	if degraded, reason := rep.Degraded(); !degraded || !strings.Contains(reason, "read-only fs") {
		t.Fatalf("degraded=%v reason=%q", degraded, reason)
	}
}

// TestSalvageTruncatedCheckpoint: a checkpoint cut mid-file (the
// classic crash/ENOSPC shape) resumes with every shard before the cut
// salvaged and only the lost tail recomputed, byte-identical.
func TestSalvageTruncatedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Label: "truncated", Trials: 8000, ShardSize: 500, Seed: 42}
	clean, err := Run(context.Background(), spec, Options{CheckpointDir: dir}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	path := CheckpointPath(dir, spec.Label)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:2*len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	// Without salvage the truncated file is still a hard error.
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir, Resume: true}, sumFn, sumMerge); err == nil {
		t.Fatal("truncated checkpoint resumed without salvage")
	}

	rep := new(Report)
	fresh := 0
	got, err := Run(context.Background(), spec, Options{
		CheckpointDir: dir, Resume: true, Salvage: true, Report: rep,
		OnShardDone: func(int, int) { fresh++ },
	}, sumFn, sumMerge)
	if err != nil {
		t.Fatalf("salvage resume failed: %v", err)
	}
	if got != clean {
		t.Fatalf("salvaged aggregate %+v != clean %+v", got, clean)
	}
	salv := rep.Salvages()
	if len(salv) != 1 {
		t.Fatalf("report has %d salvages, want 1", len(salv))
	}
	s := salv[0]
	if !s.HeaderOK || s.Recovered == 0 || s.Recovered >= spec.NumShards() {
		t.Fatalf("salvage report %+v, want partial recovery with intact header", s)
	}
	if fresh != spec.NumShards()-s.Recovered {
		t.Fatalf("recomputed %d shards, want %d", fresh, spec.NumShards()-s.Recovered)
	}
}

// TestSalvageDropsCorruptShardPayload: a shard whose payload is valid
// JSON but no longer the campaign's result type is dropped and
// recomputed; every other shard is reused.
func TestSalvageDropsCorruptShardPayload(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Label: "badshard", Trials: 3000, ShardSize: 500, Seed: 8}
	clean, err := Run(context.Background(), spec, Options{CheckpointDir: dir}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	path := CheckpointPath(dir, spec.Label)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	f.Shards[2] = json.RawMessage(`{"n":"not a number"}`)
	f.Shards[4] = json.RawMessage(`null`)
	mut, _ := json.Marshal(&f)
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := 0
	rep := new(Report)
	got, err := Run(context.Background(), spec, Options{
		CheckpointDir: dir, Resume: true, Salvage: true, Report: rep,
		OnShardDone: func(int, int) { fresh++ },
	}, sumFn, sumMerge)
	if err != nil {
		t.Fatalf("salvage resume failed: %v", err)
	}
	if got != clean {
		t.Fatalf("salvaged aggregate %+v != clean %+v", got, clean)
	}
	// Shard 4 (null) is dropped at the file layer, shard 2 (wrong type)
	// at the unmarshal layer; both are recomputed.
	if fresh != 2 {
		t.Fatalf("recomputed %d shards, want 2", fresh)
	}
	if len(rep.Warnings()) == 0 {
		t.Fatal("dropping corrupt shards emitted no warning")
	}
}

// TestSalvageFromStrayTmp: a crash between the temp-file write and the
// rename leaves only <label>.json.tmp; salvage recovers its shards and
// the tmp file is removed either way.
func TestSalvageFromStrayTmp(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Label: "straytmp", Trials: 2000, ShardSize: 500, Seed: 10}
	clean, err := Run(context.Background(), spec, Options{CheckpointDir: dir}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	path := CheckpointPath(dir, spec.Label)
	if err := os.Rename(path, path+".tmp"); err != nil {
		t.Fatal(err)
	}

	rep := new(Report)
	got, err := Run(context.Background(), spec, Options{
		CheckpointDir: dir, Resume: true, Salvage: true, Report: rep,
		OnShardDone: func(int, int) { t.Fatal("tmp salvage recomputed a shard") },
	}, sumFn, sumMerge)
	if err != nil {
		t.Fatalf("tmp salvage failed: %v", err)
	}
	if got != clean {
		t.Fatalf("tmp-salvaged aggregate %+v != clean %+v", got, clean)
	}
	salv := rep.Salvages()
	if len(salv) != 1 || salv[0].FromTmp != spec.NumShards() {
		t.Fatalf("salvage report %+v, want all %d shards from tmp", salv, spec.NumShards())
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("stray .tmp not removed after salvage")
	}
}

// TestStaleTmpRemovedOnFreshOpen: a leftover .tmp from a killed run is
// deleted on any open so it can neither accumulate nor be mistaken for
// a checkpoint later.
func TestStaleTmpRemovedOnFreshOpen(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Label: "tmpclean", Trials: 500, ShardSize: 500, Seed: 1}
	tmp := CheckpointPath(dir, spec.Label) + ".tmp"
	if err := os.WriteFile(tmp, []byte("{half a checkp"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale .tmp survived a fresh open")
	}

	// Resume (non-salvage) also clears it.
	if err := os.WriteFile(tmp, []byte("{half a checkp"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, Options{CheckpointDir: dir, Resume: true}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale .tmp survived a resume open")
	}
}

// TestSalvageRejectsForeignHeader: shards recorded under a different
// campaign header (seed/label/shape) are never reused — salvage drops
// them all and recomputes, still finishing with correct results.
func TestSalvageRejectsForeignHeader(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Label: "foreign", Trials: 1000, ShardSize: 500, Seed: 11}
	other := spec
	other.Seed = 999
	if _, err := Run(context.Background(), other, Options{CheckpointDir: dir}, sumFn, sumMerge); err != nil {
		t.Fatal(err)
	}
	clean, err := Run(context.Background(), spec, Options{}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	fresh := 0
	rep := new(Report)
	got, err := Run(context.Background(), spec, Options{
		CheckpointDir: dir, Resume: true, Salvage: true, Report: rep,
		OnShardDone: func(int, int) { fresh++ },
	}, sumFn, sumMerge)
	if err != nil {
		t.Fatalf("foreign-header salvage failed: %v", err)
	}
	if got != clean || fresh != spec.NumShards() {
		t.Fatalf("foreign shards were reused: %+v (fresh %d)", got, fresh)
	}
	salv := rep.Salvages()
	if len(salv) != 1 || salv[0].Recovered != 0 || salv[0].HeaderOK {
		t.Fatalf("salvage report %+v, want 0 recovered, header mismatch", salv)
	}
}

// TestTransientReadErrorRetriedOnResume: a transient read failure on
// resume is retried; within budget the resume proceeds normally.
func TestTransientReadErrorRetriedOnResume(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	spec := Spec{Label: "readretry", Trials: 1000, ShardSize: 500, Seed: 12}
	clean, err := Run(context.Background(), spec, Options{CheckpointDir: dir}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var sleeps []time.Duration
	failpoint.Arm(FailpointRead, failpoint.Action{Err: errors.New("transient read"), Times: 1})
	rep := new(Report)
	got, err := Run(context.Background(), spec, Options{
		CheckpointDir: dir, Resume: true, Report: rep,
		CheckpointBackoff: fastBackoff(&sleeps, &mu),
		OnShardDone:       func(int, int) { t.Fatal("retried resume recomputed a shard") },
	}, sumFn, sumMerge)
	if err != nil || got != clean {
		t.Fatalf("resume with transient read error: %+v, %v", got, err)
	}
	if _, cr := rep.Retries(); cr != 1 {
		t.Fatalf("checkpoint retries %d, want 1", cr)
	}
}

// TestHardenedOptionsAreNoOpWhenNothingFails: with retries, watchdog,
// salvage and reporting all enabled but no failpoints armed, the
// campaign produces results identical to the plain engine and an empty
// report — the hardening layer is invisible on the happy path.
func TestHardenedOptionsAreNoOpWhenNothingFails(t *testing.T) {
	failpoint.Reset()
	dir := t.TempDir()
	spec := Spec{Label: "noop", Trials: 5300, ShardSize: 500, Seed: 7}
	plain, err := Run(context.Background(), spec, Options{}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	rep := new(Report)
	hardened, err := Run(context.Background(), spec, Options{
		Workers:       4,
		CheckpointDir: dir,
		Retries:       3,
		ShardTimeout:  time.Minute,
		Salvage:       true,
		Report:        rep,
	}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	if hardened != plain {
		t.Fatalf("hardened run %+v != plain %+v", hardened, plain)
	}
	if !rep.Empty() || rep.Summary() != "" {
		t.Fatalf("clean run produced a non-empty report: %s", rep.Summary())
	}

	// And a salvage resume of the intact checkpoint recomputes nothing.
	got, err := Run(context.Background(), spec, Options{
		CheckpointDir: dir, Resume: true, Salvage: true, Report: rep,
		OnShardDone: func(int, int) { t.Fatal("salvage resume of intact checkpoint recomputed a shard") },
	}, sumFn, sumMerge)
	if err != nil || got != plain {
		t.Fatalf("salvage resume of intact checkpoint: %+v, %v", got, err)
	}
	if !rep.Empty() {
		t.Fatalf("intact salvage resume logged something: %s", rep.Summary())
	}
}

// TestKillAndResumeWithSalvageStillByteIdentical re-runs the PR 2
// byte-identity guarantee with the full hardening stack enabled, so the
// new failure paths cannot have perturbed determinism.
func TestKillAndResumeWithSalvageStillByteIdentical(t *testing.T) {
	failpoint.Reset()
	dir := t.TempDir()
	spec := Spec{Label: "kill-resume-hardened", Trials: 8000, ShardSize: 500, Seed: 42}
	clean, err := Run(context.Background(), spec, Options{}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{
		Workers:       2,
		CheckpointDir: dir,
		Retries:       2,
		Salvage:       true,
		OnShardDone: func(completed, total int) {
			if completed >= 3 {
				cancel()
			}
		},
	}
	if _, err := Run(ctx, spec, opts, sumFn, sumMerge); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	resumed, err := Run(context.Background(), spec, Options{
		CheckpointDir: dir, Resume: true, Salvage: true, Retries: 2,
	}, sumFn, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(clean)
	gotJSON, _ := json.Marshal(resumed)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("hardened resume JSON %s != clean %s", gotJSON, wantJSON)
	}
}
