package campaign

import (
	"bytes"
	"encoding/json"
	"strconv"
)

// salvageParse extracts as much of a checkpoint file as survives
// corruption. A fully intact file parses strictly; otherwise the bytes
// are walked token by token, keeping every header field and every
// syntactically complete shard entry up to the first point of damage —
// which, for the common crash shape (a truncated write), is everything
// before the cut. Semantically corrupt shard payloads (valid JSON that
// no longer matches the result type) are caught later, when the runner
// unmarshals each shard into the concrete type.
//
// salvageParse never fails: garbage in yields an empty checkpointFile
// whose header will not match any spec.
func salvageParse(raw []byte) checkpointFile {
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err == nil {
		if f.Shards == nil {
			f.Shards = map[int]json.RawMessage{}
		}
		return f
	}
	out := checkpointFile{Shards: map[int]json.RawMessage{}}
	dec := json.NewDecoder(bytes.NewReader(raw))
	tok, err := dec.Token()
	if err != nil || tok != json.Delim('{') {
		return out
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return out
		}
		key, ok := keyTok.(string)
		if !ok {
			return out
		}
		switch key {
		case "version":
			if dec.Decode(&out.Version) != nil {
				return out
			}
		case "label":
			if dec.Decode(&out.Label) != nil {
				return out
			}
		case "seed":
			if dec.Decode(&out.Seed) != nil {
				return out
			}
		case "trials":
			if dec.Decode(&out.Trials) != nil {
				return out
			}
		case "shard_size":
			if dec.Decode(&out.ShardSize) != nil {
				return out
			}
		case "shards":
			t, err := dec.Token()
			if err != nil || t != json.Delim('{') {
				return out
			}
			for dec.More() {
				kTok, err := dec.Token()
				if err != nil {
					return out
				}
				ks, ok := kTok.(string)
				if !ok {
					return out
				}
				var payload json.RawMessage
				if err := dec.Decode(&payload); err != nil {
					return out // damage point: keep what we have
				}
				idx, err := strconv.Atoi(ks)
				if err != nil {
					continue // malformed key: drop the entry, keep walking
				}
				out.Shards[idx] = payload
			}
			if _, err := dec.Token(); err != nil { // closing '}'
				return out
			}
		default:
			var skip json.RawMessage
			if dec.Decode(&skip) != nil {
				return out
			}
		}
	}
	return out
}

// headerMatches reports whether a (possibly salvaged) checkpoint header
// identifies exactly the campaign in spec. Shards from a mismatched or
// unrecoverable header were derived from different seed streams and
// must never be reused.
func headerMatches(f checkpointFile, spec Spec) bool {
	return f.Version == checkpointVersion &&
		f.Label == spec.Label &&
		f.Seed == spec.Seed &&
		f.Trials == spec.Trials &&
		f.ShardSize == spec.shardSize()
}

// isNullJSON reports whether a shard payload is the JSON null literal,
// which would silently unmarshal into a zero result and corrupt the
// aggregate if resumed.
func isNullJSON(raw json.RawMessage) bool {
	return string(bytes.TrimSpace(raw)) == "null"
}
