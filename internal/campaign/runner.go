package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"pair/internal/failpoint"
)

// Failpoint names the campaign engine evaluates, exported so tests (and
// operators reproducing a defect) can arm them by name. Disarmed they
// are zero-cost no-ops; see internal/failpoint.
const (
	// FailpointShard is hit at the start of every shard attempt: an
	// error action fails the attempt, a panic action crashes it (and is
	// recovered like any shard panic), a delay action stalls it for the
	// watchdog.
	FailpointShard = "campaign/shard"
	// FailpointMkdir, FailpointRead, FailpointWrite, FailpointFsync and
	// FailpointRename stand in for the checkpoint I/O syscalls they
	// precede; an error action makes the guarded operation fail without
	// touching the filesystem.
	FailpointMkdir  = "campaign/checkpoint/mkdir"
	FailpointRead   = "campaign/checkpoint/read"
	FailpointWrite  = "campaign/checkpoint/write"
	FailpointFsync  = "campaign/checkpoint/fsync"
	FailpointRename = "campaign/checkpoint/rename"
)

// Run executes a campaign: every shard runs fn with the shard's derived
// RNG and trial count, and the per-shard results are folded with merge in
// ascending shard order, so the aggregate is bit-identical regardless of
// worker count or completion order. The result type must round-trip
// through encoding/json when checkpointing is enabled.
//
// On context cancellation Run stops dispatching new shards, lets
// in-flight shards finish (recording them in the checkpoint, so no work
// is lost), and returns the context's error. A later Run with
// Options.Resume picks up exactly where the campaign stopped.
//
// Run survives its own failures. A shard whose function panics is
// recovered (with the shard's label, index, seed and stack captured),
// re-attempted up to Options.Retries times, and — if every attempt
// fails — reported as a *ShardError inside the returned *RunError while
// every other shard keeps running: the first return value then holds
// the partial aggregate of the shards that completed. Transient
// checkpoint I/O errors are retried with exponential backoff and
// degrade to memory-only checkpointing when the budget is exhausted;
// they never abort the campaign.
func Run[T any](ctx context.Context, spec Spec, opts Options, fn func(rng *rand.Rand, trials int) T, merge func(agg *T, shard T)) (T, error) {
	var zero T
	if spec.Trials < 0 {
		return zero, fmt.Errorf("campaign %q: negative trial count %d", spec.Label, spec.Trials)
	}
	spec.Label = JoinLabel(opts.Namespace, spec.Label)
	n := spec.NumShards()
	results := make([]T, n)
	done := make([]bool, n)
	pending := make([]int, 0, n)

	var ckpt *Checkpoint
	if opts.CheckpointDir != "" {
		var err error
		ckpt, err = openCheckpoint(opts.CheckpointDir, spec, opts)
		if err != nil {
			return zero, err
		}
	}
	opts.Progress.addCampaign(n, spec.Trials)
	completed := 0
	for i := 0; i < n; i++ {
		if ckpt != nil {
			if raw, ok := ckpt.shard(i); ok {
				if err := json.Unmarshal(raw, &results[i]); err != nil {
					if !opts.Salvage {
						return zero, fmt.Errorf("campaign %q: corrupt shard %d in checkpoint: %w (rerun with salvage to recompute it)", spec.Label, i, err)
					}
					// Salvage: the payload is syntactically valid JSON
					// but not a result of this campaign's type — drop
					// it and recompute the shard.
					ckpt.drop(i)
					results[i] = zero
					opts.Report.warnf(opts.Warnf, "campaign %q: dropping corrupt shard %d payload (%v); recomputing", spec.Label, i, err)
					pending = append(pending, i)
					continue
				}
				done[i] = true
				opts.Progress.shardResumed(spec.Shard(i).Trials)
				completed++
				continue
			}
		}
		pending = append(pending, i)
	}

	var failures []*ShardError
	if len(pending) > 0 {
		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(pending) {
			workers = len(pending)
		}

		idxCh := make(chan int)
		go func() {
			defer close(idxCh)
			for _, i := range pending {
				select {
				case idxCh <- i:
				case <-ctx.Done():
					return
				}
			}
		}()

		var wg sync.WaitGroup
		var mu sync.Mutex // serializes checkpoint writes, callbacks, failures
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					sh := spec.Shard(i)
					res, serr := runShard(spec.Label, sh, opts, fn)
					if serr != nil {
						opts.Report.addShardError(serr)
						opts.Progress.shardFailed(sh.Trials)
						mu.Lock()
						failures = append(failures, serr)
						mu.Unlock()
						continue
					}
					results[i] = res
					done[i] = true
					opts.Progress.shardDone(sh.Trials)
					mu.Lock()
					completed++
					if ckpt != nil {
						if raw, err := json.Marshal(res); err != nil {
							ckpt.degrade("marshal shard result: %v", err)
						} else {
							ckpt.record(i, raw)
						}
					}
					if opts.OnShardDone != nil {
						opts.OnShardDone(completed, n)
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}

	// Merge whatever completed, ascending: on a clean run this is the
	// full aggregate; with failed shards it is the partial result that
	// accompanies the RunError.
	var agg T
	for i := 0; i < n; i++ {
		if done[i] {
			merge(&agg, results[i])
		}
	}

	if err := ctx.Err(); err != nil && completed+len(failures) < n {
		// Cancelled with shards never attempted: the resumable
		// interruption outranks any shard defects (both stay visible
		// through Options.Report).
		return agg, err
	}
	if len(failures) > 0 {
		sort.Slice(failures, func(a, b int) bool { return failures[a].Shard < failures[b].Shard })
		return agg, &RunError{Label: spec.Label, Failed: failures, Completed: completed, Total: n}
	}
	return agg, nil
}

// ExecShard runs exactly one shard of a campaign through the engine's
// failure machinery — panic isolation, the watchdog, the per-shard retry
// budget and the FailpointShard hook — and returns its result. It is the
// remote-execution entry point: a fleet worker holding a shard lease
// executes it through this path, so the result (and the RNG stream that
// produced it) is byte-identical to the same shard run locally by Run.
// Options.Namespace is joined onto the label exactly as Run does;
// checkpointing options are ignored (the lease's coordinator owns the
// merged checkpoint).
func ExecShard[T any](spec Spec, index int, opts Options, fn func(rng *rand.Rand, trials int) T) (T, error) {
	spec.Label = JoinLabel(opts.Namespace, spec.Label)
	sh := spec.Shard(index)
	res, serr := runShard(spec.Label, sh, opts, fn)
	if serr != nil {
		opts.Report.addShardError(serr)
		opts.Progress.shardFailed(sh.Trials)
		var zero T
		return zero, serr
	}
	opts.Progress.shardDone(sh.Trials)
	return res, nil
}

// runShard executes one shard with panic isolation, the watchdog, and
// the per-shard retry budget. Every attempt reseeds the RNG from the
// shard seed, so a retry that succeeds yields a byte-identical result
// to a first-attempt success and determinism survives transient faults.
func runShard[T any](label string, sh Shard, opts Options, fn func(*rand.Rand, int) T) (T, *ShardError) {
	attempts := opts.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var zero T
	for a := 1; ; a++ {
		res, serr := attemptShard(label, sh, opts.ShardTimeout, fn)
		if serr == nil {
			return res, nil
		}
		serr.Attempts = a
		if a >= attempts {
			return zero, serr
		}
		opts.Report.addShardRetry()
		opts.Progress.shardRetried()
	}
}

// attemptShard makes one attempt at a shard, converting a panic in fn
// into a *ShardError carrying the recovered value and stack. With a
// positive timeout the attempt runs under a watchdog: an attempt that
// exceeds it is abandoned (its goroutine finishes in the background,
// its result is discarded) and reported as ErrShardTimeout.
func attemptShard[T any](label string, sh Shard, timeout time.Duration, fn func(*rand.Rand, int) T) (T, *ShardError) {
	type outcome struct {
		res   T
		err   error
		pan   any
		stack string
	}
	run := func() (out outcome) {
		defer func() {
			if p := recover(); p != nil {
				out = outcome{pan: p, stack: string(debug.Stack())}
			}
		}()
		if err := failpoint.Hit(FailpointShard); err != nil {
			return outcome{err: err}
		}
		return outcome{res: fn(rand.New(rand.NewSource(sh.Seed)), sh.Trials)}
	}

	var out outcome
	if timeout <= 0 {
		out = run()
	} else {
		ch := make(chan outcome, 1)
		go func() { ch <- run() }()
		timer := time.NewTimer(timeout)
		select {
		case out = <-ch:
			timer.Stop()
		case <-timer.C:
			out = outcome{err: fmt.Errorf("%w (%v)", ErrShardTimeout, timeout)}
		}
	}
	if out.pan == nil && out.err == nil {
		return out.res, nil
	}
	var zero T
	return zero, &ShardError{
		Label:  label,
		Shard:  sh.Index,
		Seed:   sh.Seed,
		Trials: sh.Trials,
		Panic:  out.pan,
		Stack:  out.stack,
		Err:    out.err,
	}
}
