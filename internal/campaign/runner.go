package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Run executes a campaign: every shard runs fn with the shard's derived
// RNG and trial count, and the per-shard results are folded with merge in
// ascending shard order, so the aggregate is bit-identical regardless of
// worker count or completion order. The result type must round-trip
// through encoding/json when checkpointing is enabled.
//
// On context cancellation Run stops dispatching new shards, lets
// in-flight shards finish (recording them in the checkpoint, so no work
// is lost), and returns the context's error. A later Run with
// Options.Resume picks up exactly where the campaign stopped.
func Run[T any](ctx context.Context, spec Spec, opts Options, fn func(rng *rand.Rand, trials int) T, merge func(agg *T, shard T)) (T, error) {
	var zero T
	if spec.Trials < 0 {
		return zero, fmt.Errorf("campaign %q: negative trial count %d", spec.Label, spec.Trials)
	}
	spec.Label = JoinLabel(opts.Namespace, spec.Label)
	n := spec.NumShards()
	results := make([]T, n)
	pending := make([]int, 0, n)

	var ckpt *Checkpoint
	if opts.CheckpointDir != "" {
		var err error
		ckpt, err = openCheckpoint(opts.CheckpointDir, spec, opts.Resume)
		if err != nil {
			return zero, err
		}
	}
	opts.Progress.addCampaign(n, spec.Trials)
	completed := 0
	for i := 0; i < n; i++ {
		if ckpt != nil {
			if raw, ok := ckpt.shard(i); ok {
				if err := json.Unmarshal(raw, &results[i]); err != nil {
					return zero, fmt.Errorf("campaign %q: corrupt shard %d in checkpoint: %w", spec.Label, i, err)
				}
				opts.Progress.shardResumed(spec.Shard(i).Trials)
				completed++
				continue
			}
		}
		pending = append(pending, i)
	}

	if len(pending) > 0 {
		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(pending) {
			workers = len(pending)
		}

		idxCh := make(chan int)
		go func() {
			defer close(idxCh)
			for _, i := range pending {
				select {
				case idxCh <- i:
				case <-ctx.Done():
					return
				}
			}
		}()

		var wg sync.WaitGroup
		var mu sync.Mutex // serializes checkpoint writes, callbacks, firstErr
		var firstErr error
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					sh := spec.Shard(i)
					res := fn(rand.New(rand.NewSource(sh.Seed)), sh.Trials)
					results[i] = res
					opts.Progress.shardDone(sh.Trials)
					mu.Lock()
					completed++
					if ckpt != nil && firstErr == nil {
						raw, err := json.Marshal(res)
						if err == nil {
							err = ckpt.record(i, raw)
						}
						if err != nil {
							firstErr = fmt.Errorf("campaign %q: shard %d: %w", spec.Label, i, err)
						}
					}
					if opts.OnShardDone != nil {
						opts.OnShardDone(completed, n)
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return zero, firstErr
		}
		if err := ctx.Err(); err != nil && completed < n {
			return zero, err
		}
	}

	var agg T
	for i := 0; i < n; i++ {
		merge(&agg, results[i])
	}
	return agg, nil
}
