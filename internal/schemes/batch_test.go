package schemes

import (
	"bytes"
	"math/rand"
	"testing"

	"pair/internal/ecc"
)

// batchSpecs returns every canonical (scheme, org) spec plus the spared
// PAIR variant, so the batch suites cover each registered construction.
func batchSpecs() []string {
	var specs []string
	for _, e := range All() {
		for _, orgID := range e.Orgs {
			specs = append(specs, CanonicalSpec(e, orgID))
		}
	}
	return append(specs, "pair:spare=3.7")
}

// TestBatchSchemeCoverage pins the slab fast path to the buffered
// schemes: every BufferedScheme must also implement BatchScheme (the
// campaign engine dispatches on the interface, so a missing method pair
// silently drops a scheme back to the scalar loop), and nothing else may
// implement it half-way.
func TestBatchSchemeCoverage(t *testing.T) {
	batchNames := map[string]bool{}
	for _, spec := range batchSpecs() {
		s, err := New(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		_, buffered := s.(ecc.BufferedScheme)
		_, batch := s.(ecc.BatchScheme)
		if buffered != batch {
			t.Errorf("%s: BufferedScheme=%v but BatchScheme=%v", spec, buffered, batch)
		}
		if batch {
			batchNames[s.Name()] = true
		}
	}
	for _, name := range []string{"none", "iecc", "xed", "duo", "pair", "pair-spared"} {
		if !batchNames[name] {
			t.Errorf("scheme %q lost its BatchScheme implementation", name)
		}
	}
}

// TestBatchDifferentialAllSchemes is the defining property of
// BatchScheme, checked against every registered implementation on every
// organization it supports: EncodeBatchInto/DecodeBatchInto produce
// byte- and claim-identical results to the per-image
// EncodeInto/DecodeInto loops. Each image carries a different injected
// fault weight (0..4 flipped stored bits, cycling), so the slabs mix
// clean, correctable, and beyond-bound codewords; widths 9 and 16
// exercise both padded and exact slab layouts, and the spared-PAIR spec
// exercises the uniform per-chip erasure path.
func TestBatchDifferentialAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, spec := range batchSpecs() {
		s, err := New(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		bs, ok := s.(ecc.BatchScheme)
		if !ok {
			continue
		}
		t.Run(spec, func(t *testing.T) {
			for _, nimg := range []int{9, 16} {
				testBatchDifferential(t, rng, bs, nimg)
			}
		})
	}
}

func testBatchDifferential(t *testing.T, rng *rand.Rand, s ecc.BatchScheme, nimg int) {
	t.Helper()
	lineBytes := s.Org().LineBytes()
	lines := make([][]byte, nimg)
	sts := make([]*ecc.Stored, nimg)
	ref := make([]*ecc.Stored, nimg)
	for i := range sts {
		lines[i] = make([]byte, lineBytes)
		rng.Read(lines[i])
		sts[i] = s.NewStored()
		ref[i] = s.NewStored()
	}

	// Encode: the batch call must rebuild images identical to the loop.
	s.EncodeBatchInto(sts, lines)
	for i := range ref {
		s.EncodeInto(ref[i], lines[i])
		if !storedEqual(sts[i], ref[i]) {
			t.Fatalf("nimg=%d image %d: EncodeBatchInto differs from EncodeInto", nimg, i)
		}
	}

	// Inject: image i gets i%5 random stored-bit flips, mixing clean,
	// correctable and beyond-bound codewords in one slab.
	for i := range sts {
		ecc.FlipRandomStoredBits(rng, sts[i], i%5)
	}

	// Decode both ways from the SAME images (decode does not mutate the
	// stored image) and demand identical bytes and claims.
	scalarDst := make([][]byte, nimg)
	batchDst := make([][]byte, nimg)
	scalarClaims := make([]ecc.Claim, nimg)
	batchClaims := make([]ecc.Claim, nimg)
	for i := range sts {
		scalarDst[i] = make([]byte, lineBytes)
		batchDst[i] = make([]byte, lineBytes)
		scalarClaims[i] = s.DecodeInto(scalarDst[i], sts[i])
	}
	s.DecodeBatchInto(batchDst, sts, batchClaims)
	for i := range sts {
		if batchClaims[i] != scalarClaims[i] {
			t.Fatalf("nimg=%d image %d: batch claim %v, scalar claim %v",
				nimg, i, batchClaims[i], scalarClaims[i])
		}
		if !bytes.Equal(batchDst[i], scalarDst[i]) {
			t.Fatalf("nimg=%d image %d (claim %v): batch bytes differ from scalar decode",
				nimg, i, scalarClaims[i])
		}
	}
}

// storedEqual reports whether two stored images are bit-identical across
// every chip region.
func storedEqual(a, b *ecc.Stored) bool {
	if len(a.Chips) != len(b.Chips) {
		return false
	}
	for i, ca := range a.Chips {
		cb := b.Chips[i]
		if (ca.Data == nil) != (cb.Data == nil) ||
			(ca.OnDie == nil) != (cb.OnDie == nil) ||
			(ca.Xfer == nil) != (cb.Xfer == nil) {
			return false
		}
		if ca.Data != nil && !ca.Data.Bits().Equal(cb.Data.Bits()) {
			return false
		}
		if ca.OnDie != nil && !ca.OnDie.Equal(cb.OnDie) {
			return false
		}
		if ca.Xfer != nil && !ca.Xfer.Bits().Equal(cb.Xfer.Bits()) {
			return false
		}
	}
	return true
}
