package schemes

import (
	"fmt"
	"strings"

	"pair/internal/ecc"
)

// costSummary renders an AccessCost as a compact human-readable string
// for listings ("-" for a free scheme), so the listed cost model always
// reflects the scheme's actual cost hooks.
func costSummary(c ecc.AccessCost) string {
	var parts []string
	if c.ExtraReadBeats != 0 {
		parts = append(parts, fmt.Sprintf("+%d rd beat", c.ExtraReadBeats))
	}
	if c.ExtraWriteBeats != 0 {
		parts = append(parts, fmt.Sprintf("+%d wr beat", c.ExtraWriteBeats))
	}
	if c.DecodeLatencyNS != 0 {
		parts = append(parts, fmt.Sprintf("%.1fns dec", c.DecodeLatencyNS))
	}
	if c.ExtraWritesPerWrite != 0 {
		parts = append(parts, fmt.Sprintf("+%g wr/wr", c.ExtraWritesPerWrite))
	}
	if c.ExtraReadsPerWrite != 0 {
		parts = append(parts, fmt.Sprintf("+%g rd/wr", c.ExtraReadsPerWrite))
	}
	if c.ExtraReadsPerMaskedWrite != 0 {
		parts = append(parts, fmt.Sprintf("+%g rd/masked-wr", c.ExtraReadsPerMaskedWrite))
	}
	if c.DetectionRereadRate != 0 {
		parts = append(parts, fmt.Sprintf("+%g reread/rd", c.DetectionRereadRate))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ", ")
}

// ListText renders the registry as the text every CLI prints for
// -list-schemes: the spec grammar, one line per scheme (organizations
// with the default starred, codec, cost model on the default
// organization), the per-scheme option keys, the registered
// organizations and the named sets. The output is deterministic; CI
// diffs it against the README scheme table so docs cannot drift.
func ListText() string {
	var b strings.Builder
	b.WriteString("scheme spec grammar: name[@org][:key=val,...]   e.g. pair@ddr5x16, pair:spare=3.7\n\n")

	b.WriteString("schemes\n")
	for _, e := range All() {
		fmt.Fprintf(&b, "  %-10s %s\n", e.ID, e.Description)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "%-10s %-44s %-24s %s\n", "scheme", "organizations (default *)", "codec", "cost model")
	for _, e := range All() {
		orgs := make([]string, len(e.Orgs))
		for i, id := range e.Orgs {
			orgs[i] = id
			if id == e.DefaultOrg {
				orgs[i] += "*"
			}
		}
		s, err := New(e.ID)
		if err != nil {
			panic(err) // registration already proved the default builds
		}
		fmt.Fprintf(&b, "%-10s %-44s %-24s %s\n", e.ID, strings.Join(orgs, " "), e.Codec, costSummary(s.Cost()))
	}

	b.WriteString("\noptions\n")
	for _, e := range All() {
		if len(e.Options) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s:\n", e.ID)
		for _, o := range e.Options {
			fmt.Fprintf(&b, "    %-8s %s\n", o.Key, o.Doc)
		}
	}

	b.WriteString("\norganizations\n")
	for _, o := range Orgs() {
		fmt.Fprintf(&b, "  %-10s %s\n", o.ID, o.Description)
	}

	b.WriteString("\nsets\n")
	for _, s := range Sets() {
		fmt.Fprintf(&b, "  %-10s %-52s %s\n", s.ID, strings.Join(s.Specs, ","), s.Description)
	}
	return b.String()
}
