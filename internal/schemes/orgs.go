package schemes

import (
	"fmt"
	"strings"

	"pair/internal/dram"
)

// OrgEntry is one registered DRAM organization a spec can name.
type OrgEntry struct {
	ID          string
	Description string
	Org         dram.Organization
}

var (
	orgRegistry = map[string]*OrgEntry{}
	orgOrder    []string
)

// RegisterOrg adds an organization to the registry; like Register it
// panics on duplicates since it runs from init functions.
func RegisterOrg(e OrgEntry) {
	if e.ID == "" {
		panic("schemes: organization needs an ID")
	}
	if _, dup := orgRegistry[e.ID]; dup {
		panic(fmt.Sprintf("schemes: duplicate organization %q", e.ID))
	}
	if err := e.Org.Validate(); err != nil {
		panic(fmt.Sprintf("schemes: organization %q: %v", e.ID, err))
	}
	cp := e
	orgRegistry[e.ID] = &cp
	orgOrder = append(orgOrder, e.ID)
}

// OrgByID resolves a registered organization ID.
func OrgByID(id string) (dram.Organization, error) {
	e, ok := orgRegistry[id]
	if !ok {
		return dram.Organization{}, fmt.Errorf("schemes: unknown organization %q (valid: %s)",
			id, strings.Join(OrgIDs(), "|"))
	}
	return e.Org, nil
}

// OrgIDs returns every registered organization ID in registration order.
func OrgIDs() []string {
	return append([]string(nil), orgOrder...)
}

// Orgs returns every registered organization entry in registration order.
func Orgs() []*OrgEntry {
	out := make([]*OrgEntry, len(orgOrder))
	for i, id := range orgOrder {
		out[i] = orgRegistry[id]
	}
	return out
}
