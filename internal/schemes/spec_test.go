package schemes

import (
	"strings"
	"testing"

	"pair/internal/core"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"pair", Spec{ID: "pair"}},
		{"pair@ddr5x16", Spec{ID: "pair", Org: "ddr5x16"}},
		{"pair:spare=3.7", Spec{ID: "pair", Options: map[string]string{"spare": "3.7"}}},
		{"pair@ddr5x16:exp=4,lat=2.5", Spec{ID: "pair", Org: "ddr5x16", Options: map[string]string{"exp": "4", "lat": "2.5"}}},
		{"duo-rank@ddr4x8ecc", Spec{ID: "duo-rank", Org: "ddr4x8ecc"}},
		{"pair:spare=", Spec{ID: "pair", Options: map[string]string{"spare": ""}}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got.ID != c.want.ID || got.Org != c.want.Org || len(got.Options) != len(c.want.Options) {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		for k, v := range c.want.Options {
			if got.Options[k] != v {
				t.Fatalf("ParseSpec(%q) option %s = %q, want %q", c.in, k, got.Options[k], v)
			}
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{"", "@ddr4x16", "pair@", "pair:spare", "pair:=3", "pair:a=1,a=2"} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

func TestSpecCanonicalString(t *testing.T) {
	s, err := ParseSpec("pair@ddr5x16:lat=2.5,exp=4")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "pair@ddr5x16:exp=4,lat=2.5" {
		t.Fatalf("canonical form %q", got)
	}
}

func TestNewErrorsEnumerateRegistry(t *testing.T) {
	_, err := New("quantum")
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	for _, id := range IDs() {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("unknown-scheme error %q does not enumerate %q", err, id)
		}
	}

	_, err = New("secded@ddr4x16")
	if err == nil {
		t.Fatal("unsupported org accepted")
	}
	if !strings.Contains(err.Error(), "ddr4x8ecc") {
		t.Fatalf("unsupported-org error %q does not enumerate the valid orgs", err)
	}

	_, err = New("pair@nowhere")
	if err == nil || !strings.Contains(err.Error(), "ddr4x16") {
		t.Fatalf("unknown-org error %q does not enumerate pair's orgs", err)
	}

	_, err = New("duo:spare=1")
	if err == nil || !strings.Contains(err.Error(), "no options") {
		t.Fatalf("option on option-less scheme: %v", err)
	}

	_, err = New("pair:bogus=1")
	if err == nil || !strings.Contains(err.Error(), "spare") {
		t.Fatalf("unknown-option error %q does not enumerate valid keys", err)
	}

	_, err = New("pair:chip=1")
	if err == nil {
		t.Fatal("chip without spare accepted")
	}
}

func TestSpecVariants(t *testing.T) {
	// pair@ddr5x16: two symbols per pin, RS(36,32) at t=2.
	s := MustNew("pair@ddr5x16")
	ps, ok := s.(*core.Scheme)
	if !ok {
		t.Fatalf("pair@ddr5x16 built %T", s)
	}
	if ps.Org().BurstLen != 16 || ps.CodewordLength() != 36 || ps.T() != 2 {
		t.Fatalf("pair@ddr5x16: BL%d RS(%d,·) t=%d", ps.Org().BurstLen, ps.CodewordLength(), ps.T())
	}

	// Spared-PAIR purely via the spec grammar, wrapping core.WithSparedPins.
	sp, ok := MustNew("pair:spare=3.7,chip=2").(*core.SparedScheme)
	if !ok {
		t.Fatal("spare spec did not build a SparedScheme")
	}
	if sp.SparedPins() != 2 || sp.Name() != "pair-spared" {
		t.Fatalf("spared spec: %d pins, name %q", sp.SparedPins(), sp.Name())
	}

	// Expansion / latency overrides.
	e4 := MustNew("pair:exp=4,lat=3.5").(*core.Scheme)
	if e4.CodewordLength() != 22 || e4.T() != 3 || e4.Cost().DecodeLatencyNS != 3.5 {
		t.Fatalf("pair:exp=4,lat=3.5 built RS(%d,·) t=%d lat=%v", e4.CodewordLength(), e4.T(), e4.Cost().DecodeLatencyNS)
	}

	// exp=0 on the pair entry degrades to the base code (reported name follows).
	if s := MustNew("pair:exp=0"); s.Name() != "pair-base" {
		t.Fatalf("pair:exp=0 named %q", s.Name())
	}
}

func TestParseSpecList(t *testing.T) {
	got, err := ParseSpecList("pair@ddr5x16,pair:spare=3.7,chip=1,iecc")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		names := []string{}
		for _, s := range got {
			names = append(names, s.Name())
		}
		t.Fatalf("ParseSpecList split into %v", names)
	}
	if got[0].Org().BurstLen != 16 || got[1].Name() != "pair-spared" || got[2].Name() != "iecc" {
		t.Fatalf("ParseSpecList built %s/%s/%s", got[0].Name(), got[1].Name(), got[2].Name())
	}

	// Whitespace separation also works.
	got, err = ParseSpecList("pair:spare=3.7 duo")
	if err != nil || len(got) != 2 || got[1].Name() != "duo" {
		t.Fatalf("whitespace list: %v (%d schemes)", err, len(got))
	}

	if _, err := ParseSpecList("pair,quantum"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestSetsBuild(t *testing.T) {
	for _, set := range Sets() {
		built := MustBuildSet(set.ID)
		if len(built) != len(set.Specs) {
			t.Fatalf("set %s built %d of %d", set.ID, len(built), len(set.Specs))
		}
	}
	if _, err := BuildSet("nope"); err == nil || !strings.Contains(err.Error(), "eval") {
		t.Fatalf("unknown-set error should enumerate sets: %v", err)
	}
}

func TestCanonicalSpec(t *testing.T) {
	e, _ := Lookup("pair")
	if CanonicalSpec(e, "") != "pair" || CanonicalSpec(e, "ddr4x16") != "pair" || CanonicalSpec(e, "ddr5x16") != "pair@ddr5x16" {
		t.Fatal("CanonicalSpec wrong")
	}
}
