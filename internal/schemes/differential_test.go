package schemes

import (
	"bytes"
	"math/rand"
	"testing"

	"pair/internal/ecc"
)

// TestDifferentialAllSchemesAllOrgs round-trips random lines through
// every registered scheme on EVERY organization it claims to support —
// the seed tests only exercised default-organization constructors. For
// each (scheme, org) pair it checks fault-free Encode/Decode identity
// (on both the allocating and buffered paths), a sane non-negative
// AccessCost, and TotalBits consistency between the two encode paths.
func TestDifferentialAllSchemesAllOrgs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, e := range All() {
		for _, orgID := range e.Orgs {
			spec := CanonicalSpec(e, orgID)
			s, err := New(spec)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			t.Run(spec, func(t *testing.T) {
				testRoundTrip(t, rng, s)
			})
		}
	}
}

func testRoundTrip(t *testing.T, rng *rand.Rand, s ecc.Scheme) {
	cost := s.Cost()
	if cost.ExtraReadBeats < 0 || cost.ExtraWriteBeats < 0 || cost.DecodeLatencyNS < 0 ||
		cost.ExtraWritesPerWrite < 0 || cost.ExtraReadsPerWrite < 0 ||
		cost.ExtraReadsPerMaskedWrite < 0 || cost.DetectionRereadRate < 0 {
		t.Fatalf("negative AccessCost field: %+v", cost)
	}
	if ovh := s.StorageOverhead(); ovh < 0 || ovh > 2 {
		t.Fatalf("implausible storage overhead %v", ovh)
	}

	line := make([]byte, s.Org().LineBytes())
	buf, buffered := s.(ecc.BufferedScheme)
	var st *ecc.Stored
	var decoded []byte
	if buffered {
		st = buf.NewStored()
		decoded = make([]byte, len(line))
	}
	totalBits := -1
	for trial := 0; trial < 25; trial++ {
		rng.Read(line)
		stored := s.Encode(line)
		if totalBits == -1 {
			totalBits = stored.TotalBits()
			if totalBits < len(line)*8 {
				t.Fatalf("stored image smaller than the line: %d bits", totalBits)
			}
		} else if got := stored.TotalBits(); got != totalBits {
			t.Fatalf("TotalBits drifted across encodes: %d then %d", totalBits, got)
		}
		got, claim := s.Decode(stored)
		if claim != ecc.ClaimClean || !bytes.Equal(got, line) {
			t.Fatalf("fault-free decode: claim %v, match %v", claim, bytes.Equal(got, line))
		}
		if !buffered {
			continue
		}
		buf.EncodeInto(st, line)
		if got := st.TotalBits(); got != totalBits {
			t.Fatalf("buffered image TotalBits %d != %d", got, totalBits)
		}
		if claim := buf.DecodeInto(decoded, st); claim != ecc.ClaimClean || !bytes.Equal(decoded, line) {
			t.Fatalf("buffered fault-free decode: claim %v, match %v", claim, bytes.Equal(decoded, line))
		}
	}
}

// TestCampaignIDStability pins the frozen campaign/checkpoint identity
// of every seed scheme (built from its registry entry on each supported
// organization). These strings salt every Monte-Carlo seed stream and
// name every checkpoint file: a change here silently reseeds campaigns
// and orphans existing checkpoint directories, so the expected values
// are spelled out literally rather than derived.
func TestCampaignIDStability(t *testing.T) {
	want := map[string]string{
		"none":              "none-x16-bl8-c4",
		"iecc":              "iecc-x16-bl8-c4",
		"xed":               "xed-x16-bl8-c4",
		"duo":               "duo-x16-bl8-c4",
		"duo-rank":          "duo-rank-x8-bl8-c8",
		"pair-base":         "pair-base-x16-bl8-c4",
		"pair":              "pair-x16-bl8-c4",
		"secded":            "secded-x8-bl8-c8",
		"pair@ddr5x16":      "pair-x16-bl16-c2",
		"pair-base@ddr5x16": "pair-base-x16-bl16-c2",
		"pair@ddr4x8":       "pair-x8-bl8-c8",
		"pair@ddr4x4":       "pair-x4-bl8-c16",
		"pair:spare=3.7":    "pair-spared-x16-bl8-c4",
	}
	for spec, id := range want {
		s, err := New(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got := CampaignID(s); got != id {
			t.Fatalf("CampaignID(%s) = %q, want frozen %q (checkpoint identity must not change)", spec, got, id)
		}
	}
}

func TestListTextMentionsEverything(t *testing.T) {
	text := ListText()
	for _, id := range IDs() {
		if !bytes.Contains([]byte(text), []byte(id)) {
			t.Fatalf("ListText missing scheme %q", id)
		}
	}
	for _, id := range OrgIDs() {
		if !bytes.Contains([]byte(text), []byte(id)) {
			t.Fatalf("ListText missing organization %q", id)
		}
	}
	for _, id := range SetIDs() {
		if !bytes.Contains([]byte(text), []byte(id)) {
			t.Fatalf("ListText missing set %q", id)
		}
	}
}
