package schemes

import (
	"fmt"
	"strings"

	"pair/internal/ecc"
)

// SetEntry is a named, ordered list of scheme specs — the presentation
// sets the experiments iterate (the paper compares scheme *families*, so
// the sets live in the registry next to the schemes themselves).
type SetEntry struct {
	ID          string
	Description string
	Specs       []string
}

var (
	setRegistry = map[string]*SetEntry{}
	setOrder    []string
)

// RegisterSet adds a named scheme set; it panics on duplicates or specs
// that do not build (registration runs from init functions).
func RegisterSet(e SetEntry) {
	if e.ID == "" || len(e.Specs) == 0 {
		panic("schemes: set needs an ID and at least one spec")
	}
	if _, dup := setRegistry[e.ID]; dup {
		panic(fmt.Sprintf("schemes: duplicate set %q", e.ID))
	}
	for _, spec := range e.Specs {
		if _, err := New(spec); err != nil {
			panic(fmt.Sprintf("schemes: set %q: %v", e.ID, err))
		}
	}
	cp := e
	cp.Specs = append([]string(nil), e.Specs...)
	setRegistry[e.ID] = &cp
	setOrder = append(setOrder, e.ID)
}

// SetByID returns the specs of a registered set.
func SetByID(id string) (*SetEntry, error) {
	e, ok := setRegistry[id]
	if !ok {
		return nil, fmt.Errorf("schemes: unknown scheme set %q (valid: %s)", id, strings.Join(SetIDs(), "|"))
	}
	return e, nil
}

// SetIDs returns every registered set ID in registration order.
func SetIDs() []string {
	return append([]string(nil), setOrder...)
}

// Sets returns every registered set in registration order.
func Sets() []*SetEntry {
	out := make([]*SetEntry, len(setOrder))
	for i, id := range setOrder {
		out[i] = setRegistry[id]
	}
	return out
}

// BuildSet constructs every scheme of a registered set, in order.
func BuildSet(id string) ([]ecc.Scheme, error) {
	e, err := SetByID(id)
	if err != nil {
		return nil, err
	}
	return Build(e.Specs)
}

// MustBuildSet is BuildSet, panicking on error; registration already
// proved every member builds.
func MustBuildSet(id string) []ecc.Scheme {
	s, err := BuildSet(id)
	if err != nil {
		panic(err)
	}
	return s
}
