package schemes

import (
	"fmt"
	"strconv"
	"strings"

	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/ecc"
)

// init registers the built-in organizations, the study's scheme family
// and the presentation sets, in presentation order. Everything below is
// plain registration — adding a scheme variant here is the only step
// needed for it to reach the facade, the campaigns, every experiment
// table and all five CLIs.
func init() {
	registerOrgs()
	registerSchemes()
	registerSets()
}

func registerOrgs() {
	RegisterOrg(OrgEntry{ID: "ddr4x16", Description: "4x x16 BL8 commodity 64-bit rank (the study's default)", Org: dram.DDR4x16()})
	RegisterOrg(OrgEntry{ID: "ddr4x8", Description: "8x x8 BL8 commodity rank", Org: dram.DDR4x8()})
	RegisterOrg(OrgEntry{ID: "ddr4x4", Description: "16x x4 BL8 commodity rank", Org: dram.DDR4x4()})
	RegisterOrg(OrgEntry{ID: "ddr5x16", Description: "2x x16 BL16 DDR5 32-bit subchannel", Org: dram.DDR5x16()})
	RegisterOrg(OrgEntry{ID: "ddr4x8ecc", Description: "9x x8 BL8 ECC DIMM (72-bit bus)", Org: dram.DDR4x8ECC()})
}

// noOpts wraps an option-less constructor as an Entry hook.
func noOpts(build func(org dram.Organization) ecc.Scheme) func(dram.Organization, map[string]string) (ecc.Scheme, error) {
	return func(org dram.Organization, _ map[string]string) (ecc.Scheme, error) {
		return build(org), nil
	}
}

// pairOptions documents the option keys both PAIR entries accept.
var pairOptions = []OptionDoc{
	{Key: "base", Doc: "base parity symbols (default 2)"},
	{Key: "exp", Doc: "expansion symbols stored in spare columns (pair: 2, pair-base: 0)"},
	{Key: "lat", Doc: "in-die decode latency in ns (default 2.0)"},
	{Key: "spare", Doc: "dot-separated known-bad DQ pins decoded as erasures (spared-PAIR), e.g. spare=3.7"},
	{Key: "chip", Doc: "chip index the spared pins live on (default 0; requires spare)"},
}

// pairHook builds a PAIR scheme from the entry defaults plus spec
// options, wrapping with core.WithSparedPins when a spare list is given.
// Note the reported Name() follows the effective expansion level
// ("pair-base" at exp=0, "pair" otherwise), not the entry ID.
func pairHook(defaults core.Config) func(dram.Organization, map[string]string) (ecc.Scheme, error) {
	return func(org dram.Organization, opts map[string]string) (ecc.Scheme, error) {
		cfg := defaults
		if v, ok := opts["base"]; ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("option base: %w", err)
			}
			cfg.BaseParity = n
		}
		if v, ok := opts["exp"]; ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("option exp: %w", err)
			}
			cfg.Expansion = n
		}
		if v, ok := opts["lat"]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("option lat: %w", err)
			}
			cfg.DecodeLatencyNS = f
		}
		s, err := core.New(org, cfg)
		if err != nil {
			return nil, err
		}
		spare, spared := opts["spare"]
		if _, hasChip := opts["chip"]; hasChip && !spared {
			return nil, fmt.Errorf("option chip requires option spare")
		}
		if !spared {
			return s, nil
		}
		pins, err := parsePinList(spare)
		if err != nil {
			return nil, err
		}
		chip := 0
		if v, ok := opts["chip"]; ok {
			chip, err = strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("option chip: %w", err)
			}
		}
		return s.WithSparedPins(map[int][]int{chip: pins})
	}
}

// parsePinList parses a dot-separated pin list ("3.7" -> [3 7]); the
// empty string is an empty list (a spared wrapper with no erasures).
func parsePinList(v string) ([]int, error) {
	pins := []int{}
	if v == "" {
		return pins, nil
	}
	for _, part := range strings.Split(v, ".") {
		p, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("option spare: bad pin %q (want dot-separated pin indices)", part)
		}
		pins = append(pins, p)
	}
	return pins, nil
}

func registerSchemes() {
	commodity := []string{"ddr4x16", "ddr4x8", "ddr4x4", "ddr5x16"}

	Register(Entry{
		ID:          "none",
		Description: "unprotected baseline",
		Codec:       "-", Granularity: "-", Alignment: "-", Corrects: "0", BusChange: "none",
		Orgs:       append(append([]string{}, commodity...), "ddr4x8ecc"),
		DefaultOrg: "ddr4x16",
		New:        noOpts(func(org dram.Organization) ecc.Scheme { return ecc.NewNone(org) }),
	})
	Register(Entry{
		ID:          "iecc",
		Description: "conventional in-DRAM ECC: per-access SEC Hamming",
		Codec:       "Hamming (136,128) SEC", Granularity: "chip access (128b)", Alignment: "bit",
		Corrects: "1 bit", BusChange: "none",
		Orgs:       commodity,
		DefaultOrg: "ddr4x16",
		New:        noOpts(func(org dram.Organization) ecc.Scheme { return ecc.NewIECC(org) }),
	})
	Register(Entry{
		ID:          "xed",
		Description: "on-die detection + rank-XOR correction (commodity adaptation)",
		Codec:       "on-die detect + rank XOR", Granularity: "chip access / rank", Alignment: "bit / chip",
		Corrects: "1 chip*", BusChange: "+1 wr/wr",
		NoDBI:      true, // catch-word signaling occupies the DBI encoding freedom
		Orgs:       []string{"ddr4x16", "ddr4x8", "ddr5x16"},
		DefaultOrg: "ddr4x16",
		New:        noOpts(func(org dram.Organization) ecc.Scheme { return ecc.NewXED(org) }),
	})
	Register(Entry{
		ID:          "duo",
		Description: "on-die redundancy forwarded to a controller-side RS over beat-aligned symbols",
		Codec:       "RS(18,16) GF(256)", Granularity: "chip access", Alignment: "beat (byte)",
		Corrects: "1 sym", BusChange: "BL8->BL9",
		// The forwarded-redundancy region holds two byte symbols per
		// access, which needs a 16-pin extension beat: x16 devices only.
		Orgs: []string{"ddr4x16", "ddr5x16"},
		DefaultOrg: "ddr4x16",
		New:        noOpts(func(org dram.Organization) ecc.Scheme { return ecc.NewDUO(org) }),
	})
	Register(Entry{
		ID:          "duo-rank",
		Description: "original nine-chip ECC-DIMM DUO: rank-level RS, chip-erasure retry",
		Codec:       "RS(81,64) GF(256)", Granularity: "rank access", Alignment: "beat (byte)",
		Corrects: "8 sym", BusChange: "BL8->BL9 + 9th chip",
		Orgs:       []string{"ddr4x8ecc"},
		DefaultOrg: "ddr4x8ecc",
		New:        noOpts(func(org dram.Organization) ecc.Scheme { return ecc.NewDUORank(org) }),
	})
	Register(Entry{
		ID:          "pair-base",
		Description: "PAIR without expansion: pin-aligned RS, t=1",
		Codec:       "RS(18,16) GF(256)", Granularity: "chip access", Alignment: "pin",
		Corrects: "1 sym", BusChange: "none",
		Orgs:       commodity,
		DefaultOrg: "ddr4x16",
		Options:    pairOptions,
		New:        pairHook(core.BaseConfig()),
	})
	Register(Entry{
		ID:          "pair",
		Description: "headline PAIR: pin-aligned expandable RS, t=2",
		Codec:       "RS(20,16) expandable", Granularity: "chip access", Alignment: "pin",
		Corrects: "2 sym", BusChange: "none",
		Orgs:       commodity,
		DefaultOrg: "ddr4x16",
		Options:    pairOptions,
		New:        pairHook(core.DefaultConfig()),
	})
	Register(Entry{
		ID:          "secded",
		Description: "rank-level Hsiao SEC-DED on the nine-chip ECC DIMM",
		Codec:       "Hsiao (72,64) SEC-DED", Granularity: "beat (64b)", Alignment: "bit",
		Corrects: "1 bit", BusChange: "9th chip",
		Orgs:       []string{"ddr4x8ecc"},
		DefaultOrg: "ddr4x8ecc",
		New:        noOpts(func(org dram.Organization) ecc.Scheme { return ecc.NewSECDED(org) }),
	})
}

func registerSets() {
	RegisterSet(SetEntry{
		ID:          "eval",
		Description: "the facade's presentation set (AllSchemes)",
		Specs:       []string{"none", "iecc", "xed", "duo", "pair-base", "pair"},
	})
	RegisterSet(SetEntry{
		ID:          "commodity",
		Description: "x16 reliability evaluation set (F1/F2, T2, F3, F7, F8, F12)",
		Specs:       []string{"iecc", "xed", "duo", "pair-base", "pair"},
	})
	RegisterSet(SetEntry{
		ID:          "perf",
		Description: "performance comparison set (F4/F4b/F4c, F5)",
		Specs:       []string{"none", "iecc", "xed", "duo", "pair"},
	})
	RegisterSet(SetEntry{
		ID:          "extended",
		Description: "commodity set plus the rank-level ECC-DIMM schemes (T2X, F3X)",
		Specs:       []string{"iecc", "xed", "duo", "pair-base", "pair", "secded", "duo-rank"},
	})
	RegisterSet(SetEntry{
		ID:          "t1",
		Description: "configuration-table presentation order (T1)",
		Specs:       []string{"none", "iecc", "secded", "xed", "duo", "pair-base", "pair"},
	})
	RegisterSet(SetEntry{
		ID:          "energy",
		Description: "bus-energy proxy comparison set (T4)",
		Specs:       []string{"none", "iecc", "xed", "duo", "duo-rank", "pair"},
	})
}
