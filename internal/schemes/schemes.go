// Package schemes is the single registry of every ECC architecture the
// study evaluates. Each scheme registers itself once — with a canonical
// ID, descriptive metadata, the organizations it supports and an option
// hook — and every consumer (the pair facade, the reliability campaigns,
// the experiment tables, all five cmd/ binaries and the examples) builds
// schemes exclusively through the registry. Adding a new RS variant is
// one Register call; no consumer layer changes.
//
// # Spec grammar
//
// A scheme spec is a one-line description of a scheme instance:
//
//	name[@org][:key=val,...]
//
// where name is a registered scheme ID, org is a registered organization
// ID (defaulting to the scheme's natural organization) and the key=val
// options are interpreted by the scheme's constructor hook. Examples:
//
//	pair                    headline PAIR, RS(20,16) on DDR4 x16
//	pair@ddr5x16            the same code family on a DDR5 subchannel
//	pair:exp=4              PAIR expanded to RS(22,16), t=3
//	pair:spare=3.7          spared-PAIR: pins 3 and 7 of chip 0 erased
//	duo-rank@ddr4x8ecc      rank-level DUO on the 9-chip ECC DIMM
//
// ParseSpec parses the grammar; New builds a scheme from a spec string.
//
// # Campaign identity
//
// CampaignID returns the frozen label the Monte-Carlo campaigns use for
// seed derivation and checkpoint file names. It is intentionally NOT the
// spec form: its format predates the registry and is kept byte-identical
// so existing checkpoint directories keep resuming (see CampaignID).
package schemes

import (
	"fmt"
	"sort"
	"strings"

	"pair/internal/dram"
	"pair/internal/ecc"
)

// OptionDoc documents one option key a scheme's constructor hook accepts.
type OptionDoc struct {
	Key string
	Doc string
}

// Entry is one registered scheme: identity, presentation metadata, the
// organizations it can be built on and the constructor hook.
type Entry struct {
	// ID is the canonical scheme identifier ("pair", "duo-rank", ...).
	ID string
	// Description is a one-line summary for listings.
	Description string

	// Presentation metadata (the T1 configuration-table columns).
	Codec       string // code construction, e.g. "RS(20,16) expandable"
	Granularity string // protection granularity, e.g. "chip access"
	Alignment   string // symbol alignment, e.g. "pin"
	Corrects    string // guaranteed correction capability, e.g. "2 sym"
	BusChange   string // bus-protocol change, e.g. "BL8->BL9"

	// NoDBI marks schemes whose signaling occupies the Data Bus Inversion
	// encoding freedom (XED's catch-words), for the bus-energy model.
	NoDBI bool

	// Orgs lists the registered organization IDs the scheme supports;
	// DefaultOrg (which must appear in Orgs) is used when a spec names no
	// organization.
	Orgs       []string
	DefaultOrg string

	// Options documents the option keys the hook accepts; specs using any
	// other key are rejected before the hook runs.
	Options []OptionDoc

	// New builds the scheme on an organization resolved from Orgs with
	// the spec's validated options.
	New func(org dram.Organization, opts map[string]string) (ecc.Scheme, error)
}

// supportsOrg reports whether the entry lists the organization ID.
func (e *Entry) supportsOrg(id string) bool {
	for _, o := range e.Orgs {
		if o == id {
			return true
		}
	}
	return false
}

// optionKeys returns the documented option keys.
func (e *Entry) optionKeys() []string {
	keys := make([]string, len(e.Options))
	for i, o := range e.Options {
		keys[i] = o.Key
	}
	return keys
}

var (
	registry = map[string]*Entry{}
	order    []string // registration (presentation) order
)

// Register adds a scheme to the registry. It panics on a duplicate or
// malformed entry — registration happens in init functions, where a
// panic is a build-time error.
func Register(e Entry) {
	if e.ID == "" || e.New == nil {
		panic("schemes: entry needs an ID and a constructor")
	}
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("schemes: duplicate scheme %q", e.ID))
	}
	if len(e.Orgs) == 0 || e.DefaultOrg == "" {
		panic(fmt.Sprintf("schemes: scheme %q needs supported organizations and a default", e.ID))
	}
	if !e.supportsOrg(e.DefaultOrg) {
		panic(fmt.Sprintf("schemes: scheme %q default org %q not in supported set", e.ID, e.DefaultOrg))
	}
	for _, id := range e.Orgs {
		if _, err := OrgByID(id); err != nil {
			panic(fmt.Sprintf("schemes: scheme %q: %v", e.ID, err))
		}
	}
	cp := e
	registry[e.ID] = &cp
	order = append(order, e.ID)
}

// Lookup returns the entry registered under id.
func Lookup(id string) (*Entry, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns every registered scheme ID in registration order.
func IDs() []string {
	return append([]string(nil), order...)
}

// All returns every registered entry in registration order.
func All() []*Entry {
	out := make([]*Entry, len(order))
	for i, id := range order {
		out[i] = registry[id]
	}
	return out
}

// unknownSchemeError builds the error for an unregistered scheme ID; the
// valid-ID list is generated from the registry so it can never drift.
func unknownSchemeError(id string) error {
	return fmt.Errorf("schemes: unknown scheme %q (valid: %s)", id, strings.Join(IDs(), "|"))
}

// validateOptions checks that every option key of a spec is documented by
// the entry.
func validateOptions(e *Entry, opts map[string]string) error {
	if len(opts) == 0 {
		return nil
	}
	keys := e.optionKeys()
	allowed := map[string]bool{}
	for _, k := range keys {
		allowed[k] = true
	}
	var bad []string
	for k := range opts {
		if !allowed[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	if len(keys) == 0 {
		return fmt.Errorf("schemes: scheme %q takes no options, got %s", e.ID, strings.Join(bad, ","))
	}
	return fmt.Errorf("schemes: scheme %q does not accept option(s) %s (valid: %s)",
		e.ID, strings.Join(bad, ","), strings.Join(keys, "|"))
}

// CampaignID is the campaign/checkpoint identity of a scheme instance:
// the label component that salts every Monte-Carlo seed stream and names
// checkpoint files.
//
// Compatibility shim — the format is FROZEN. It predates the registry
// (it was reliability.schemeLabel) and deliberately stays byte-identical
// to it: "<name>-x<pins>-bl<burstlen>-c<chips>". Changing it would both
// orphan every existing checkpoint directory (labels name the files and
// must match on resume) and silently reseed every campaign (labels salt
// the shard RNG streams). Human-facing canonical identity is the spec
// form (Spec.String / CanonicalSpec); machine campaign identity is this.
func CampaignID(s ecc.Scheme) string {
	org := s.Org()
	return fmt.Sprintf("%s-x%d-bl%d-c%d", s.Name(), org.Pins, org.BurstLen, org.ChipsPerRank)
}
