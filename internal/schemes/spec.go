package schemes

import (
	"fmt"
	"sort"
	"strings"

	"pair/internal/ecc"
)

// Spec is a parsed scheme spec: name[@org][:key=val,...].
type Spec struct {
	// ID is the registered scheme identifier.
	ID string
	// Org is the registered organization ID, or "" for the scheme's
	// default organization.
	Org string
	// Options holds the key=val options, if any.
	Options map[string]string
}

// ParseSpec parses the spec grammar name[@org][:key=val,...]. It only
// validates the syntax; New resolves the parts against the registry.
func ParseSpec(spec string) (Spec, error) {
	s := Spec{}
	head := spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		head = spec[:i]
		opts := spec[i+1:]
		s.Options = map[string]string{}
		for _, kv := range strings.Split(opts, ",") {
			k, v, found := strings.Cut(kv, "=")
			if !found || k == "" {
				return Spec{}, fmt.Errorf("schemes: malformed option %q in spec %q (want key=val)", kv, spec)
			}
			if _, dup := s.Options[k]; dup {
				return Spec{}, fmt.Errorf("schemes: duplicate option %q in spec %q", k, spec)
			}
			s.Options[k] = v
		}
	}
	if i := strings.IndexByte(head, '@'); i >= 0 {
		s.Org = head[i+1:]
		head = head[:i]
		if s.Org == "" {
			return Spec{}, fmt.Errorf("schemes: empty organization in spec %q", spec)
		}
	}
	if head == "" {
		return Spec{}, fmt.Errorf("schemes: empty scheme name in spec %q", spec)
	}
	s.ID = head
	return s, nil
}

// String renders the spec in canonical form: options sorted by key, the
// organization omitted only when unset.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.ID)
	if s.Org != "" {
		b.WriteByte('@')
		b.WriteString(s.Org)
	}
	if len(s.Options) > 0 {
		keys := make([]string, 0, len(s.Options))
		for k := range s.Options {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sep := byte(':')
		for _, k := range keys {
			b.WriteByte(sep)
			sep = ','
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(s.Options[k])
		}
	}
	return b.String()
}

// Build resolves the spec against the registry and constructs the scheme.
func (s Spec) Build() (ecc.Scheme, error) {
	e, ok := Lookup(s.ID)
	if !ok {
		return nil, unknownSchemeError(s.ID)
	}
	orgID := s.Org
	if orgID == "" {
		orgID = e.DefaultOrg
	}
	if !e.supportsOrg(orgID) {
		return nil, fmt.Errorf("schemes: scheme %q does not support organization %q (valid: %s)",
			s.ID, orgID, strings.Join(e.Orgs, "|"))
	}
	org, err := OrgByID(orgID)
	if err != nil {
		return nil, err
	}
	if err := validateOptions(e, s.Options); err != nil {
		return nil, err
	}
	scheme, err := e.New(org, s.Options)
	if err != nil {
		return nil, fmt.Errorf("schemes: building %q: %w", s.String(), err)
	}
	return scheme, nil
}

// New parses a spec string and builds the scheme it describes. Errors
// enumerate the valid scheme IDs, organizations or option keys, all
// generated from the registry.
func New(spec string) (ecc.Scheme, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// MustNew is New, panicking on error; for specs known at compile time.
func MustNew(spec string) ecc.Scheme {
	s, err := New(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// CanonicalSpec returns the canonical spec string of an entry on an
// organization: the bare ID on its default organization, id@org
// otherwise.
func CanonicalSpec(e *Entry, orgID string) string {
	if orgID == "" || orgID == e.DefaultOrg {
		return e.ID
	}
	return e.ID + "@" + orgID
}

// Build constructs every spec in the list, stopping at the first error.
func Build(specs []string) ([]ecc.Scheme, error) {
	out := make([]ecc.Scheme, 0, len(specs))
	for _, spec := range specs {
		s, err := New(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ParseSpecList splits a comma-separated spec list and builds each entry.
// Option lists inside a spec also use commas, so list entries that need
// options must be separated by whitespace instead; both separators are
// accepted and a comma directly following a key=val option continues the
// same spec's option list.
func ParseSpecList(list string) ([]ecc.Scheme, error) {
	specs, err := SplitSpecList(list)
	if err != nil {
		return nil, err
	}
	return Build(specs)
}

// SplitSpecList splits a comma/whitespace-separated spec list into its
// individual spec strings, validating only the syntax of each. It is the
// wire-format helper for remote submission: a fleet client ships the
// spec strings and the coordinator and every worker build them against
// their own registries.
func SplitSpecList(list string) ([]string, error) {
	var specs []string
	for _, f := range strings.FieldsFunc(list, func(r rune) bool { return r == ' ' || r == '\t' }) {
		specs = append(specs, splitSpecs(f)...)
	}
	for _, spec := range specs {
		if _, err := ParseSpec(spec); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// splitSpecs splits one whitespace-free token into specs on the commas
// that separate specs (a comma after "key=val" continues an option list;
// a comma before a token without '=' starts a new spec).
func splitSpecs(tok string) []string {
	var out []string
	parts := strings.Split(tok, ",")
	cur := ""
	for _, p := range parts {
		switch {
		case cur == "":
			cur = p
		case strings.Contains(cur, ":") && strings.Contains(p, "="):
			// continuing the current spec's option list
			cur += "," + p
		default:
			out = append(out, cur)
			cur = p
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
