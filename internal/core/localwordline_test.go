package core

import (
	"math/rand"
	"testing"

	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/faults"
)

func TestPAIRCorrectsLocalWordlineFaults(t *testing.T) {
	// A mat-local wordline fault spans MatPins=2 adjacent pins = exactly
	// two pin-aligned symbols: the expanded t=2 PAIR corrects every one,
	// where IECC's bit-granularity SEC collapses.
	rng := rand.New(rand.NewSource(1))
	pairS := MustNew(dram.DDR4x16(), DefaultConfig())
	iecc := ecc.NewIECC(dram.DDR4x16())
	pairOK, ieccFail := 0, 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)

		st := pairS.Encode(line)
		ecc.InjectAccessFault(rng, st, faults.PermanentLocalWordline, 0)
		if d, c := pairS.Decode(st); ecc.Classify(line, d, c) == ecc.OutcomeCE {
			pairOK++
		}

		st = iecc.Encode(line)
		ecc.InjectAccessFault(rng, st, faults.PermanentLocalWordline, 0)
		if d, c := iecc.Decode(st); ecc.Classify(line, d, c).IsFailure() {
			ieccFail++
		}
	}
	if pairOK != trials {
		t.Fatalf("PAIR corrected only %d/%d local wordline faults", pairOK, trials)
	}
	if float64(ieccFail)/trials < 0.8 {
		t.Fatalf("IECC failed only %d/%d — fault too mild", ieccFail, trials)
	}
}
