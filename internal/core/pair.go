// Package core implements PAIR — the Pin-Aligned In-DRAM ECC architecture
// using the expandability of Reed-Solomon codes (Jeong, Kang, Yang;
// DAC 2020) — as an ecc.Scheme plus the supporting configuration and
// analysis surface the experiments use.
//
// # Construction
//
// One PAIR codeword protects one chip access. Its symbols are *aligned to
// DQ pins*: symbol p of the codeword is exactly the 8 bits pin p carries
// during the BL8 burst. An x16 access therefore contributes 16 data
// symbols; parity symbols live in the on-die redundancy region and are
// consumed by the in-die decoder — they never cross the pins.
//
// The code is an *expandable* (evaluation-view) Reed-Solomon code: the
// base configuration stores 2 parity symbols — RS(18,16), t=1 — and the
// vendor can raise the correction capability to t=2 (RS(20,16)) or beyond
// by storing additional evaluation symbols in the spare-column region,
// without rewriting a single already-programmed bit. The default
// configuration of the study is the expanded RS(20,16).
//
// # Why pin alignment matters
//
//   - A weak/faulty cell corrupts one bit => one symbol.
//   - A DQ-pin, TSV or serializer fault corrupts one pin's whole burst
//     => still one symbol.
//   - A burst error along a pin (consecutive beats) => one symbol.
//   - Widely distributed inherent faults land in different accesses, so
//     each codeword sees few bad symbols.
//
// Beat-aligned symbolizations (DUO's controller-side view) smear a pin
// fault across up to BurstLen symbols, which is the gap the paper's
// reliability results quantify.
package core

import (
	"fmt"
	"sync"

	"pair/internal/bitvec"
	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/rs"
)

// Config selects a PAIR operating point.
type Config struct {
	// BaseParity is the number of parity symbols in the base (always
	// stored) code; the architectural baseline is 2 (t=1).
	BaseParity int
	// Expansion is the number of additional evaluation symbols stored in
	// the spare-column region; the study's default is 2 (raising the code
	// to t=2).
	Expansion int
	// DecodeLatencyNS is the in-die decoder latency added to reads.
	DecodeLatencyNS float64
}

// DefaultConfig is the headline PAIR configuration: RS(20,16) via a
// 2-symbol base parity plus a 2-symbol expansion.
func DefaultConfig() Config {
	return Config{BaseParity: 2, Expansion: 2, DecodeLatencyNS: 2.0}
}

// BaseConfig is PAIR without expansion: RS(18,16), t=1.
func BaseConfig() Config {
	return Config{BaseParity: 2, Expansion: 0, DecodeLatencyNS: 2.0}
}

// Scheme is the PAIR ecc.Scheme.
type Scheme struct {
	org   dram.Organization
	cfg   Config
	base  *rs.Expandable // (pins+BaseParity, pins)
	full  *rs.Expandable // (pins+BaseParity+Expansion, pins)
	name  string
	scr   sync.Pool // *pairScratch per-decode workspace
	batch sync.Pool // *pairBatch per-goroutine slab workspace
}

// pairScratch is the per-goroutine codec workspace: a reusable decoder on
// the full code, a codeword buffer, and a burst for corrected symbols.
type pairScratch struct {
	dec  *rs.ExpandableDecoder
	word []byte
	b    *dram.Burst
}

// pairBatch is the per-goroutine slab workspace for DecodeBatchInto: the
// batch decoder on the full code, a slab sized to the last batch width,
// per-codeword result buffers, the column staging block for the
// transposed gather and a burst for corrected symbols.
type pairBatch struct {
	ws       *rs.ExpandableBatchWorkspace
	slab     *rs.Slab
	nchanged []int
	errs     []error
	word     []byte
	b        *dram.Burst
	cols     [][64]byte // one staging column per codeword position
}

// ensure sizes the slab and result buffers for w codewords (a multiple
// of 8). The slab is rebuilt only when the width changes.
func (bb *pairBatch) ensure(n, w int) {
	if bb.slab == nil || bb.slab.W() != w {
		bb.slab = rs.NewSlab(n, w)
	}
	if cap(bb.nchanged) < w {
		bb.nchanged = make([]int, w)
		bb.errs = make([]error, w)
	}
	bb.nchanged = bb.nchanged[:w]
	bb.errs = bb.errs[:w]
}

// New builds a PAIR scheme on the given organization.
func New(org dram.Organization, cfg Config) (*Scheme, error) {
	if err := org.Validate(); err != nil {
		return nil, err
	}
	if org.BurstLen%8 != 0 {
		return nil, fmt.Errorf("core: PAIR pin symbols need a burst length divisible by 8, got BL%d", org.BurstLen)
	}
	if cfg.BaseParity < 1 {
		return nil, fmt.Errorf("core: base parity %d < 1", cfg.BaseParity)
	}
	if cfg.Expansion < 0 {
		return nil, fmt.Errorf("core: negative expansion %d", cfg.Expansion)
	}
	k := org.Pins * org.BurstLen / 8
	nBase := k + cfg.BaseParity
	nFull := nBase + cfg.Expansion
	base, err := rs.NewExpandableDefault(nBase, k)
	if err != nil {
		return nil, fmt.Errorf("core: base code: %w", err)
	}
	full := base
	if cfg.Expansion > 0 {
		full, err = base.Expand(rs.DefaultPoints(nFull)[nBase:]...)
		if err != nil {
			return nil, fmt.Errorf("core: expansion: %w", err)
		}
	}
	name := "pair"
	if cfg.Expansion == 0 {
		name = "pair-base"
	}
	s := &Scheme{org: org, cfg: cfg, base: base, full: full, name: name}
	s.scr.New = func() any {
		return &pairScratch{
			dec:  s.full.NewDecoder(),
			word: make([]byte, s.full.N()),
			b:    dram.NewBurst(org.Pins, org.BurstLen),
		}
	}
	s.batch.New = func() any {
		return &pairBatch{
			ws:   s.full.NewBatchWorkspace(),
			word: make([]byte, s.full.N()),
			b:    dram.NewBurst(org.Pins, org.BurstLen),
			cols: make([][64]byte, s.full.N()),
		}
	}
	return s, nil
}

// MustNew is New, panicking on error.
func MustNew(org dram.Organization, cfg Config) *Scheme {
	s, err := New(org, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements ecc.Scheme.
func (s *Scheme) Name() string { return s.name }

// symbolsPerPin returns how many 8-bit symbols one pin carries per burst
// (1 for BL8, 2 for DDR5 BL16).
func (s *Scheme) symbolsPerPin() int { return s.org.BurstLen / 8 }

// k returns the data symbols per codeword.
func (s *Scheme) k() int { return s.org.Pins * s.symbolsPerPin() }

// dataSymbols extracts the pin-aligned data symbols of one chip access:
// symbol pin*spp+part is bits [part*8, part*8+8) of the pin's burst.
func (s *Scheme) dataSymbols(b *dram.Burst) []byte {
	out := make([]byte, s.k())
	s.dataSymbolsInto(out, b)
	return out
}

// dataSymbolsInto is dataSymbols into a caller-owned slice (length k). It
// transposes beat-major burst bits into pin-major symbols one beat field at
// a time instead of one bit at a time.
func (s *Scheme) dataSymbolsInto(syms []byte, b *dram.Burst) {
	spp := s.symbolsPerPin()
	for i := range syms {
		syms[i] = 0
	}
	bits := b.Bits()
	for beat := 0; beat < s.org.BurstLen; beat++ {
		field := bits.GetBits(beat*s.org.Pins, s.org.Pins)
		part := beat / 8
		sh := uint(beat % 8)
		for p := 0; p < s.org.Pins; p++ {
			syms[p*spp+part] |= byte((field>>uint(p))&1) << sh
		}
	}
}

// writeDataSymbols writes pin-aligned symbols back into a burst.
func (s *Scheme) writeDataSymbols(b *dram.Burst, syms []byte) {
	spp := s.symbolsPerPin()
	for p := 0; p < s.org.Pins; p++ {
		for part := 0; part < spp; part++ {
			b.SetPinSymbolPart(p, part, syms[p*spp+part])
		}
	}
}

// Org implements ecc.Scheme.
func (s *Scheme) Org() dram.Organization { return s.org }

// Config returns the operating point.
func (s *Scheme) Config() Config { return s.cfg }

// CodewordLength returns the total symbols per codeword (data + base
// parity + expansion).
func (s *Scheme) CodewordLength() int { return s.full.N() }

// T returns the guaranteed symbol-correction capability.
func (s *Scheme) T() int { return s.full.T() }

// parityBits returns the on-die redundancy size in bits per access.
func (s *Scheme) parityBits() int {
	return (s.cfg.BaseParity + s.cfg.Expansion) * 8
}

// NewStored implements ecc.BufferedScheme: one data burst plus the on-die
// parity region per chip.
func (s *Scheme) NewStored() *ecc.Stored {
	st := &ecc.Stored{Org: s.org, Chips: make([]*ecc.ChipImage, s.org.ChipsPerRank)}
	for i := range st.Chips {
		st.Chips[i] = &ecc.ChipImage{
			Data:  dram.NewBurst(s.org.Pins, s.org.BurstLen),
			OnDie: bitvec.New(s.parityBits()),
		}
	}
	return st
}

// Encode implements ecc.Scheme. Each chip's access is encoded into one
// pin-aligned codeword; parity symbols go to the on-die region (base
// parity first, then expansion symbols).
func (s *Scheme) Encode(line []byte) *ecc.Stored {
	st := s.NewStored()
	s.EncodeInto(st, line)
	return st
}

// EncodeInto implements ecc.BufferedScheme.
func (s *Scheme) EncodeInto(st *ecc.Stored, line []byte) {
	scr := s.scr.Get().(*pairScratch)
	word := scr.word
	k := s.k()
	for i, ci := range st.Chips {
		dram.SplitChipInto(s.org, line, i, ci.Data)
		s.dataSymbolsInto(word[:k], ci.Data)
		s.full.EncodeTo(word[:k], word)
		ci.OnDie.Clear()
		for j, sym := range word[k:] {
			ci.OnDie.OrBits(j*8, uint64(sym), 8)
		}
	}
	s.scr.Put(scr)
}

// Decode implements ecc.Scheme: each chip decodes its pin-aligned
// codeword in-die with the full (expanded) decoder.
func (s *Scheme) Decode(st *ecc.Stored) ([]byte, ecc.Claim) {
	line := make([]byte, s.org.LineBytes())
	return line, s.decodeInto(line, st, nil)
}

// DecodeInto implements ecc.BufferedScheme.
func (s *Scheme) DecodeInto(dst []byte, st *ecc.Stored) ecc.Claim {
	return s.decodeInto(dst, st, nil)
}

// decodeInto implements DecodeInto with optional per-chip erasure symbol
// lists (see WithSparedPins).
func (s *Scheme) decodeInto(dst []byte, st *ecc.Stored, erasures map[int][]int) ecc.Claim {
	for i := range dst {
		dst[i] = 0
	}
	claim := ecc.ClaimClean
	k := s.k()
	np := s.cfg.BaseParity + s.cfg.Expansion
	scr := s.scr.Get().(*pairScratch)
	word := scr.word
	for i, ci := range st.Chips {
		s.dataSymbolsInto(word[:k], ci.Data)
		for j := 0; j < np; j++ {
			word[k+j] = byte(ci.OnDie.GetBits(j*8, 8))
		}
		nerr, err := scr.dec.DecodeInto(word, word, erasures[i])
		switch {
		case err != nil:
			claim = ecc.ClaimDetected
			// Pass the raw data along with the flag (word is unspecified
			// after a decode failure).
			dram.OrChipInto(s.org, dst, i, ci.Data)
		case nerr == 0:
			dram.OrChipInto(s.org, dst, i, ci.Data)
		default:
			if claim != ecc.ClaimDetected {
				claim = ecc.ClaimCorrected
			}
			s.writeDataSymbols(scr.b, word[:k])
			dram.OrChipInto(s.org, dst, i, scr.b)
		}
	}
	s.scr.Put(scr)
	return claim
}

// EncodeBatchInto implements ecc.BatchScheme. Encoding is dominated by the
// per-image burst split, so the batch call is the defining loop.
func (s *Scheme) EncodeBatchInto(sts []*ecc.Stored, lines [][]byte) {
	ecc.CheckEncodeBatchArgs(sts, lines)
	for i, st := range sts {
		s.EncodeInto(st, lines[i])
	}
}

// DecodeBatchInto implements ecc.BatchScheme on the slab path: per chip,
// the pin-aligned codewords of every image are transposed into one slab
// and certified by a single bitsliced syndrome sweep; only dirty
// codewords reach the scalar decoder. Results are identical to a
// DecodeInto loop.
func (s *Scheme) DecodeBatchInto(dst [][]byte, sts []*ecc.Stored, claims []ecc.Claim) {
	s.decodeBatchInto(dst, sts, claims, nil)
}

// decodeBatchInto implements DecodeBatchInto with optional per-chip
// erasure symbol lists, mirroring decodeInto. The erasure list of a chip
// applies uniformly to every image's codeword for that chip, which is
// exactly the per-call erasure contract of the slab decoder.
func (s *Scheme) decodeBatchInto(dst [][]byte, sts []*ecc.Stored, claims []ecc.Claim, erasures map[int][]int) {
	ecc.CheckDecodeBatchArgs(dst, sts, claims)
	nimg := len(sts)
	if nimg == 0 {
		return
	}
	bb := s.batch.Get().(*pairBatch)
	defer s.batch.Put(bb)
	k := s.k()
	n := s.full.N()
	np := s.cfg.BaseParity + s.cfg.Expansion
	bb.ensure(n, ecc.PadBatchWidth(nimg))
	for i := 0; i < nimg; i++ {
		claims[i] = ecc.ClaimClean
		for j := range dst[i] {
			dst[i][j] = 0
		}
	}
	for chip := 0; chip < s.org.ChipsPerRank; chip++ {
		// Gather: assemble each image's codeword for this chip, staging 64
		// images per group and writing whole transposed columns.
		for grp := 0; grp < bb.slab.Groups(); grp++ {
			lo := grp * 64
			hi := lo + 64
			if hi > nimg {
				hi = nimg
			}
			for j := 0; j < n; j++ {
				bb.cols[j] = [64]byte{}
			}
			for i := lo; i < hi; i++ {
				ci := sts[i].Chips[chip]
				s.dataSymbolsInto(bb.word[:k], ci.Data)
				for j := 0; j < np; j++ {
					bb.word[k+j] = byte(ci.OnDie.GetBits(j*8, 8))
				}
				for j := 0; j < n; j++ {
					bb.cols[j][i-lo] = bb.word[j]
				}
			}
			for j := 0; j < n; j++ {
				bb.slab.SetColumn(j, grp, &bb.cols[j])
			}
		}
		bb.ws.DecodeBatch(bb.slab, erasures[chip], bb.nchanged, bb.errs)
		// Write back: clean and errored codewords pass the raw burst
		// through (identical bytes to the scalar paths); corrected ones
		// read their repaired data symbols out of the slab.
		for i := 0; i < nimg; i++ {
			ci := sts[i].Chips[chip]
			switch {
			case bb.errs[i] != nil:
				claims[i] = ecc.ClaimDetected
				dram.OrChipInto(s.org, dst[i], chip, ci.Data)
			case bb.nchanged[i] == 0:
				dram.OrChipInto(s.org, dst[i], chip, ci.Data)
			default:
				if claims[i] != ecc.ClaimDetected {
					claims[i] = ecc.ClaimCorrected
				}
				bb.slab.CodewordInto(bb.word, i)
				s.writeDataSymbols(bb.b, bb.word[:k])
				dram.OrChipInto(s.org, dst[i], chip, bb.b)
			}
		}
	}
}

// StorageOverhead implements ecc.Scheme: parity bits per data bits.
func (s *Scheme) StorageOverhead() float64 {
	return float64(s.parityBits()) / float64(s.org.AccessBits())
}

// Cost implements ecc.Scheme: PAIR changes nothing on the bus — parity is
// produced and consumed inside the die and reads keep BL8. The in-die
// decoder adds a small fixed latency; masked writes trigger the same
// internal read-modify-write every per-access in-DRAM code needs.
func (s *Scheme) Cost() ecc.AccessCost {
	return ecc.AccessCost{
		DecodeLatencyNS:          s.cfg.DecodeLatencyNS,
		ExtraReadsPerMaskedWrite: 1.0,
	}
}

// SparedScheme is PAIR with a per-device map of known-bad DQ pins
// (vendor repair/test data). Symbols carried by spared pins are decoded
// as erasures, which stretches the budget from 2t symbol errors to
// 2*errors + erasures <= n-k: the default RS(20,16) then rides out two
// dead pins *plus* one fresh symbol error per access.
type SparedScheme struct {
	*Scheme
	erasures map[int][]int // chip -> erased symbol positions
	npins    int
}

// WithSparedPins wraps the scheme with spared-pin knowledge. spared maps
// chip index to the list of its known-bad pins. The wrapper shares the
// underlying encoder (stored images are identical; sparing is purely a
// decode-side hint).
func (s *Scheme) WithSparedPins(spared map[int][]int) (*SparedScheme, error) {
	erasures := make(map[int][]int, len(spared))
	npins := 0
	spp := s.symbolsPerPin()
	for chip, pins := range spared {
		if chip < 0 || chip >= s.org.ChipsPerRank {
			return nil, fmt.Errorf("core: spared chip %d out of range", chip)
		}
		for _, p := range pins {
			if p < 0 || p >= s.org.Pins {
				return nil, fmt.Errorf("core: spared pin %d out of range", p)
			}
			for part := 0; part < spp; part++ {
				erasures[chip] = append(erasures[chip], p*spp+part)
			}
			npins++
		}
		if len(erasures[chip]) > s.full.N()-s.k() {
			return nil, fmt.Errorf("core: chip %d spares %d symbols, exceeding the %d-symbol parity budget",
				chip, len(erasures[chip]), s.full.N()-s.k())
		}
	}
	return &SparedScheme{Scheme: s, erasures: erasures, npins: npins}, nil
}

// Name implements ecc.Scheme.
func (s *SparedScheme) Name() string { return s.Scheme.name + "-spared" }

// Decode implements ecc.Scheme with the spared pins erased.
func (s *SparedScheme) Decode(st *ecc.Stored) ([]byte, ecc.Claim) {
	line := make([]byte, s.org.LineBytes())
	return line, s.decodeInto(line, st, s.erasures)
}

// DecodeInto implements ecc.BufferedScheme with the spared pins erased.
func (s *SparedScheme) DecodeInto(dst []byte, st *ecc.Stored) ecc.Claim {
	return s.decodeInto(dst, st, s.erasures)
}

// DecodeBatchInto implements ecc.BatchScheme with the spared pins erased.
// The override matters: the promoted Scheme method would decode without
// erasures.
func (s *SparedScheme) DecodeBatchInto(dst [][]byte, sts []*ecc.Stored, claims []ecc.Claim) {
	s.decodeBatchInto(dst, sts, claims, s.erasures)
}

// SparedPins returns the number of pins marked bad.
func (s *SparedScheme) SparedPins() int { return s.npins }

// BaseCode exposes the base (always stored) expandable code.
func (s *Scheme) BaseCode() *rs.Expandable { return s.base }

// FullCode exposes the expanded code the decoder runs.
func (s *Scheme) FullCode() *rs.Expandable { return s.full }

// ExpandStored computes the expansion symbols for an image encoded by a
// base-only scheme and returns the image upgraded to this scheme's
// expansion level. The base parity bits are preserved verbatim — the
// demonstration of in-place expandability. The source scheme must share
// this scheme's organization and base parity.
func (s *Scheme) ExpandStored(baseScheme *Scheme, st *ecc.Stored) (*ecc.Stored, error) {
	if baseScheme.org != s.org || baseScheme.cfg.BaseParity != s.cfg.BaseParity {
		return nil, fmt.Errorf("core: incompatible base scheme")
	}
	if baseScheme.cfg.Expansion != 0 {
		return nil, fmt.Errorf("core: source scheme already expanded")
	}
	out := &ecc.Stored{Org: st.Org, Chips: make([]*ecc.ChipImage, len(st.Chips))}
	for i, ci := range st.Chips {
		cwBase := make([]byte, baseScheme.full.N())
		copy(cwBase, s.dataSymbols(ci.Data))
		for j := 0; j < baseScheme.cfg.BaseParity; j++ {
			var sym byte
			for bit := 0; bit < 8; bit++ {
				if ci.OnDie.Get(j*8 + bit) {
					sym |= 1 << bit
				}
			}
			cwBase[s.k()+j] = sym
		}
		cwFull, err := baseScheme.full.ExtendCodeword(cwBase, s.full)
		if err != nil {
			return nil, err
		}
		onDie := bitvec.New(s.parityBits())
		for j, sym := range cwFull[s.k():] {
			for bit := 0; bit < 8; bit++ {
				onDie.Set(j*8+bit, sym&(1<<bit) != 0)
			}
		}
		out.Chips[i] = &ecc.ChipImage{Data: ci.Data.Clone(), OnDie: onDie}
	}
	return out, nil
}
