package core

import (
	"bytes"
	"math/rand"
	"testing"

	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/faults"
)

func pairStoredEqual(a, b *ecc.Stored) bool {
	if len(a.Chips) != len(b.Chips) {
		return false
	}
	for i := range a.Chips {
		if !a.Chips[i].Data.Equal(b.Chips[i].Data) ||
			!a.Chips[i].OnDie.Equal(b.Chips[i].OnDie) {
			return false
		}
	}
	return true
}

// corruptBoth applies the identical corruption to both images by replaying
// the same RNG stream.
func corruptBoth(seed int64, mode int, a, b *ecc.Stored) {
	apply := func(rng *rand.Rand, st *ecc.Stored) {
		switch mode % 4 {
		case 0:
			ecc.FlipRandomStoredBits(rng, st, rng.Intn(7))
		case 1:
			ecc.InjectAccessFault(rng, st, faults.PermanentPin, -1)
		case 2:
			chip := rng.Intn(len(st.Chips))
			ecc.InjectAccessFault(rng, st, faults.PermanentCell, chip)
			ecc.InjectAccessFault(rng, st, faults.PermanentCell, chip)
		case 3:
			ecc.FlipRandomStoredBits(rng, st, 20+rng.Intn(20))
		}
	}
	apply(rand.New(rand.NewSource(seed)), a)
	apply(rand.New(rand.NewSource(seed)), b)
}

// TestPairBufferedDifferential checks EncodeInto ≡ Encode and
// DecodeInto ≡ Decode for PAIR (expanded, base-only, and spared variants)
// with buffers reused dirty across trials.
func TestPairBufferedDifferential(t *testing.T) {
	org := dram.DDR4x16()
	full := MustNew(org, DefaultConfig())
	spared, err := full.WithSparedPins(map[int][]int{0: {3}, 2: {7, 11}})
	if err != nil {
		t.Fatal(err)
	}
	schemes := []ecc.BufferedScheme{
		full,
		MustNew(org, BaseConfig()),
		spared,
	}
	for _, s := range schemes {
		t.Run(s.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			st := s.NewStored()
			dst := make([]byte, s.Org().LineBytes())
			for trial := 0; trial < 300; trial++ {
				line := randLine(rng, s.Org().LineBytes())
				ref := s.Encode(line)
				s.EncodeInto(st, line)
				if !pairStoredEqual(ref, st) {
					t.Fatalf("trial %d: EncodeInto image differs from Encode", trial)
				}
				corruptBoth(rng.Int63(), trial, ref, st)
				refLine, refClaim := s.Decode(ref)
				claim := s.DecodeInto(dst, st)
				if claim != refClaim {
					t.Fatalf("trial %d: claim %v, want %v", trial, claim, refClaim)
				}
				if !bytes.Equal(dst, refLine) {
					t.Fatalf("trial %d: DecodeInto line differs from Decode", trial)
				}
			}
		})
	}
}

