package core

import (
	"bytes"
	"math/rand"
	"testing"

	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/faults"
)

func randLine(rng *rand.Rand, n int) []byte {
	line := make([]byte, n)
	rng.Read(line)
	return line
}

func TestNewValidation(t *testing.T) {
	org := dram.DDR4x16()
	if _, err := New(org, Config{BaseParity: 0, Expansion: 2}); err == nil {
		t.Fatal("base parity 0 accepted")
	}
	if _, err := New(org, Config{BaseParity: 2, Expansion: -1}); err == nil {
		t.Fatal("negative expansion accepted")
	}
	bl16 := org
	bl16.BurstLen = 16
	if _, err := New(bl16, DefaultConfig()); err != nil {
		t.Fatalf("BL16 rejected (two symbols per pin should work): %v", err)
	}
	bad := org
	bad.Pins = 5
	if _, err := New(bad, DefaultConfig()); err == nil {
		t.Fatal("invalid organization accepted")
	}
}

func TestShapes(t *testing.T) {
	org := dram.DDR4x16()
	s := MustNew(org, DefaultConfig())
	if s.CodewordLength() != 20 || s.T() != 2 {
		t.Fatalf("default PAIR = (%d,16) t=%d, want (20,16) t=2", s.CodewordLength(), s.T())
	}
	if s.Name() != "pair" {
		t.Fatalf("name %q", s.Name())
	}
	b := MustNew(org, BaseConfig())
	if b.CodewordLength() != 18 || b.T() != 1 {
		t.Fatalf("base PAIR = (%d,16) t=%d, want (18,16) t=1", b.CodewordLength(), b.T())
	}
	if b.Name() != "pair-base" {
		t.Fatalf("name %q", b.Name())
	}
	if got := s.StorageOverhead(); got != 32.0/128.0 {
		t.Fatalf("default overhead %v", got)
	}
	if got := b.StorageOverhead(); got != 16.0/128.0 {
		t.Fatalf("base overhead %v", got)
	}
}

func TestCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []Config{DefaultConfig(), BaseConfig(), {BaseParity: 2, Expansion: 4}} {
		s := MustNew(dram.DDR4x16(), cfg)
		for trial := 0; trial < 20; trial++ {
			line := randLine(rng, 64)
			decoded, claim := s.Decode(s.Encode(line))
			if claim != ecc.ClaimClean || !bytes.Equal(decoded, line) {
				t.Fatalf("expansion=%d: clean round trip failed (%v)", cfg.Expansion, claim)
			}
		}
	}
}

func TestPinFaultAlwaysCorrected(t *testing.T) {
	// The headline property: a whole-pin fault is one pin-aligned symbol,
	// so even the base t=1 configuration corrects every pin fault.
	rng := rand.New(rand.NewSource(2))
	for _, cfg := range []Config{BaseConfig(), DefaultConfig()} {
		s := MustNew(dram.DDR4x16(), cfg)
		for trial := 0; trial < 400; trial++ {
			line := randLine(rng, 64)
			st := s.Encode(line)
			ecc.InjectAccessFault(rng, st, faults.PermanentPin, -1)
			decoded, claim := s.Decode(st)
			if out := ecc.Classify(line, decoded, claim); out != ecc.OutcomeCE {
				t.Fatalf("expansion=%d: pin fault -> %v", cfg.Expansion, out)
			}
		}
	}
}

func TestPinBurstAlwaysCorrected(t *testing.T) {
	// Burst errors along a pin of any length stay in one symbol.
	rng := rand.New(rand.NewSource(3))
	s := MustNew(dram.DDR4x16(), BaseConfig())
	for b := 1; b <= 8; b++ {
		for trial := 0; trial < 100; trial++ {
			line := randLine(rng, 64)
			st := s.Encode(line)
			chip := rng.Intn(4)
			faults.InjectPinBurst(rng, st.Chips[chip].Data, b)
			decoded, claim := s.Decode(st)
			if out := ecc.Classify(line, decoded, claim); out != ecc.OutcomeCE {
				t.Fatalf("burst length %d -> %v", b, out)
			}
		}
	}
}

func TestSingleCellCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := MustNew(dram.DDR4x16(), BaseConfig())
	for trial := 0; trial < 300; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		ecc.InjectAccessFault(rng, st, faults.PermanentCell, -1)
		decoded, claim := s.Decode(st)
		if out := ecc.Classify(line, decoded, claim); out != ecc.OutcomeCE {
			t.Fatalf("single cell -> %v", out)
		}
	}
}

func TestTwoSymbolErrorsNeedExpansion(t *testing.T) {
	// Two corrupted pins in one chip: base (t=1) fails, expanded (t=2)
	// corrects — the expandability payoff.
	rng := rand.New(rand.NewSource(5))
	base := MustNew(dram.DDR4x16(), BaseConfig())
	full := MustNew(dram.DDR4x16(), DefaultConfig())
	baseFailed, fullOK := 0, 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)

		stB := base.Encode(line)
		stF := full.Encode(line)
		chip := rng.Intn(4)
		pins := rng.Perm(16)[:2]
		for _, p := range pins {
			v := byte(1 + rng.Intn(255))
			stB.Chips[chip].Data.SetPinSymbol(p, stB.Chips[chip].Data.PinSymbol(p)^v)
			stF.Chips[chip].Data.SetPinSymbol(p, stF.Chips[chip].Data.PinSymbol(p)^v)
		}
		if d, c := base.Decode(stB); ecc.Classify(line, d, c).IsFailure() {
			baseFailed++
		}
		if d, c := full.Decode(stF); ecc.Classify(line, d, c) == ecc.OutcomeCE {
			fullOK++
		}
	}
	if fullOK != trials {
		t.Fatalf("expanded PAIR corrected only %d/%d double-pin errors", fullOK, trials)
	}
	if baseFailed == 0 {
		t.Fatal("base PAIR corrected all double-pin errors — t=1 model wrong")
	}
}

func TestParityRegionFaultsHandled(t *testing.T) {
	// A fault in the on-die parity region is also just symbol errors.
	rng := rand.New(rand.NewSource(6))
	s := MustNew(dram.DDR4x16(), DefaultConfig())
	for trial := 0; trial < 200; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		ci := st.Chips[rng.Intn(4)]
		// Corrupt up to 8 bits of ONE parity symbol.
		sym := rng.Intn(4)
		for _, b := range rng.Perm(8)[:1+rng.Intn(8)] {
			ci.OnDie.Flip(sym*8 + b)
		}
		decoded, claim := s.Decode(st)
		if out := ecc.Classify(line, decoded, claim); out != ecc.OutcomeCE {
			t.Fatalf("parity-region fault -> %v", out)
		}
	}
}

func TestRowFaultDetectedNotSilent(t *testing.T) {
	// A row/bank fault garbles the whole access; PAIR cannot correct 16+
	// bad symbols but must almost always flag rather than miscorrect.
	rng := rand.New(rand.NewSource(7))
	s := MustNew(dram.DDR4x16(), DefaultConfig())
	counts := map[ecc.Outcome]int{}
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		ecc.InjectAccessFault(rng, st, faults.PermanentRow, 0)
		decoded, claim := s.Decode(st)
		counts[ecc.Classify(line, decoded, claim)]++
	}
	if counts[ecc.OutcomeDUE] < trials*9/10 {
		t.Fatalf("row faults not reliably detected: %v", counts)
	}
}

func TestExpandStoredPreservesBaseParity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := MustNew(dram.DDR4x16(), BaseConfig())
	full := MustNew(dram.DDR4x16(), DefaultConfig())
	line := randLine(rng, 64)
	stBase := base.Encode(line)
	stFull, err := full.ExpandStored(base, stBase)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stFull.Chips {
		// Data unchanged.
		if !stFull.Chips[i].Data.Equal(stBase.Chips[i].Data) {
			t.Fatal("expansion modified data")
		}
		// Base parity bits bit-identical.
		for j := 0; j < 16; j++ {
			if stFull.Chips[i].OnDie.Get(j) != stBase.Chips[i].OnDie.Get(j) {
				t.Fatal("expansion modified base parity")
			}
		}
	}
	// The expanded image must equal a direct full encoding.
	direct := full.Encode(line)
	for i := range direct.Chips {
		if !direct.Chips[i].OnDie.Equal(stFull.Chips[i].OnDie) {
			t.Fatal("expanded image differs from direct encoding")
		}
	}
	// And decode cleanly with t=2 power.
	st := stFull.Clone()
	pins := rng.Perm(16)[:2]
	for _, p := range pins {
		st.Chips[0].Data.SetPinSymbol(p, st.Chips[0].Data.PinSymbol(p)^0x3C)
	}
	decoded, claim := full.Decode(st)
	if out := ecc.Classify(line, decoded, claim); out != ecc.OutcomeCE {
		t.Fatalf("expanded image failed double-error decode: %v", out)
	}
}

func TestExpandStoredValidation(t *testing.T) {
	base := MustNew(dram.DDR4x16(), BaseConfig())
	full := MustNew(dram.DDR4x16(), DefaultConfig())
	otherBase := MustNew(dram.DDR4x16(), Config{BaseParity: 3, Expansion: 0})
	line := make([]byte, 64)
	if _, err := full.ExpandStored(otherBase, otherBase.Encode(line)); err == nil {
		t.Fatal("mismatched base parity accepted")
	}
	if _, err := full.ExpandStored(full, full.Encode(line)); err == nil {
		t.Fatal("already-expanded source accepted")
	}
	_ = base
}

func TestCostIsBusNeutral(t *testing.T) {
	s := MustNew(dram.DDR4x16(), DefaultConfig())
	c := s.Cost()
	if c.ExtraReadBeats != 0 || c.ExtraWriteBeats != 0 || c.ExtraWritesPerWrite != 0 {
		t.Fatal("PAIR must not change bus traffic")
	}
	if c.DecodeLatencyNS <= 0 {
		t.Fatal("PAIR decode latency missing")
	}
}

func TestBeatBurstIsPAIRsWeakSpot(t *testing.T) {
	// Crosstalk across many pins in one beat spreads over many symbols:
	// the expanded t=2 code fails once >2 pins flip. Verify the model is
	// honest about this (documented in DESIGN.md as the trade-off).
	rng := rand.New(rand.NewSource(9))
	s := MustNew(dram.DDR4x16(), DefaultConfig())
	fails := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		line := randLine(rng, 64)
		st := s.Encode(line)
		faults.InjectBeatBurst(rng, st.Chips[0].Data, 4)
		decoded, claim := s.Decode(st)
		if ecc.Classify(line, decoded, claim).IsFailure() {
			fails++
		}
	}
	if fails != trials {
		t.Fatalf("4-pin beat burst failed only %d/%d — t=2 cannot correct 4 symbols", fails, trials)
	}
}
