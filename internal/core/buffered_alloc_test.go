// The scheme scratch pool is a sync.Pool, and the race detector randomly
// drops Pool.Put items, so the zero-allocation guarantee only holds in
// normal builds.
//go:build !race

package core

import (
	"math/rand"
	"testing"

	"pair/internal/dram"
)

// TestPairBufferedAllocs pins PAIR's buffered encode+decode steady state at
// zero allocations per trial.
func TestPairBufferedAllocs(t *testing.T) {
	s := MustNew(dram.DDR4x16(), DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	line := randLine(rng, s.Org().LineBytes())
	st := s.NewStored()
	dst := make([]byte, len(line))
	s.EncodeInto(st, line) // warm the scratch pool
	s.DecodeInto(dst, st)
	if n := testing.AllocsPerRun(200, func() {
		s.EncodeInto(st, line)
		s.DecodeInto(dst, st)
	}); n != 0 {
		t.Fatalf("EncodeInto+DecodeInto allocated %.1f/op, want 0", n)
	}
}
