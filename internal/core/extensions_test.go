package core

import (
	"bytes"
	"math/rand"
	"testing"

	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/faults"
)

// --- DDR5 BL16: two pin-aligned symbols per pin ------------------------

func TestDDR5Shapes(t *testing.T) {
	org := dram.DDR5x16()
	if err := org.Validate(); err != nil {
		t.Fatal(err)
	}
	if org.LineBytes() != 64 {
		t.Fatalf("DDR5 line bytes %d", org.LineBytes())
	}
	s := MustNew(org, DefaultConfig())
	// 16 pins x 2 symbols = 32 data symbols -> RS(36,32), t=2.
	if s.CodewordLength() != 36 || s.T() != 2 {
		t.Fatalf("DDR5 PAIR = RS(%d,32) t=%d, want RS(36,32) t=2", s.CodewordLength(), s.T())
	}
	if got := s.StorageOverhead(); got != 32.0/256.0 {
		t.Fatalf("DDR5 overhead %v", got)
	}
}

func TestDDR5CleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := MustNew(dram.DDR5x16(), DefaultConfig())
	for trial := 0; trial < 20; trial++ {
		line := make([]byte, 64)
		rng.Read(line)
		decoded, claim := s.Decode(s.Encode(line))
		if claim != ecc.ClaimClean || !bytes.Equal(decoded, line) {
			t.Fatal("DDR5 clean round trip failed")
		}
	}
}

func TestDDR5PinFaultIsTwoSymbols(t *testing.T) {
	// On BL16 a dead pin spans two symbols — exactly why the default
	// configuration carries t=2. The base t=1 config must fail multi-part
	// pin faults; the expanded one must always correct them.
	rng := rand.New(rand.NewSource(2))
	org := dram.DDR5x16()
	base := MustNew(org, BaseConfig())
	full := MustNew(org, DefaultConfig())
	baseFails, fullOK := 0, 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		line := make([]byte, 64)
		rng.Read(line)
		stB := base.Encode(line)
		stF := full.Encode(line)
		chip := rng.Intn(org.ChipsPerRank)
		pin := rng.Intn(org.Pins)
		// Corrupt both halves of the pin's burst.
		for _, part := range []int{0, 1} {
			v := byte(1 + rng.Intn(255))
			stB.Chips[chip].Data.SetPinSymbolPart(pin, part, stB.Chips[chip].Data.PinSymbolPart(pin, part)^v)
			stF.Chips[chip].Data.SetPinSymbolPart(pin, part, stF.Chips[chip].Data.PinSymbolPart(pin, part)^v)
		}
		if d, c := base.Decode(stB); ecc.Classify(line, d, c).IsFailure() {
			baseFails++
		}
		if d, c := full.Decode(stF); ecc.Classify(line, d, c) == ecc.OutcomeCE {
			fullOK++
		}
	}
	if fullOK != trials {
		t.Fatalf("expanded DDR5 PAIR corrected only %d/%d pin faults", fullOK, trials)
	}
	if baseFails == 0 {
		t.Fatal("base t=1 survived all two-symbol pin faults — implausible")
	}
}

func TestPinSymbolPartRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := dram.NewBurst(16, 16)
	want := make([][2]byte, 16)
	for p := 0; p < 16; p++ {
		want[p] = [2]byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		b.SetPinSymbolPart(p, 0, want[p][0])
		b.SetPinSymbolPart(p, 1, want[p][1])
	}
	for p := 0; p < 16; p++ {
		if b.PinSymbolPart(p, 0) != want[p][0] || b.PinSymbolPart(p, 1) != want[p][1] {
			t.Fatalf("pin %d parts mismatch", p)
		}
	}
}

// --- Pin sparing: erasure decoding of known-bad pins -------------------

func TestWithSparedPinsValidation(t *testing.T) {
	s := MustNew(dram.DDR4x16(), DefaultConfig())
	if _, err := s.WithSparedPins(map[int][]int{9: {0}}); err == nil {
		t.Fatal("out-of-range chip accepted")
	}
	if _, err := s.WithSparedPins(map[int][]int{0: {16}}); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
	// 5 spared pins on one chip exceed the 4-symbol parity budget.
	if _, err := s.WithSparedPins(map[int][]int{0: {0, 1, 2, 3, 4}}); err == nil {
		t.Fatal("over-budget sparing accepted")
	}
	sp, err := s.WithSparedPins(map[int][]int{1: {3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if sp.SparedPins() != 2 || sp.Name() != "pair-spared" {
		t.Fatalf("spared scheme wrong: %d pins, %q", sp.SparedPins(), sp.Name())
	}
}

func TestSparingRaisesEffectiveCapability(t *testing.T) {
	// Two dead pins + one fresh cell error in the same chip access: three
	// bad symbols. Plain RS(20,16) t=2 must fail; with the two dead pins
	// spared (erased) the budget is 2*1+2 = 4 <= 4 and the access decodes.
	rng := rand.New(rand.NewSource(4))
	s := MustNew(dram.DDR4x16(), DefaultConfig())
	spared, err := s.WithSparedPins(map[int][]int{0: {2, 9}})
	if err != nil {
		t.Fatal(err)
	}
	plainFails, sparedOK := 0, 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		line := make([]byte, 64)
		rng.Read(line)
		st := s.Encode(line)
		ci := st.Chips[0]
		// The two dead pins return garbage...
		ci.Data.SetPinSymbolPart(2, 0, ci.Data.PinSymbolPart(2, 0)^byte(1+rng.Intn(255)))
		ci.Data.SetPinSymbolPart(9, 0, ci.Data.PinSymbolPart(9, 0)^byte(1+rng.Intn(255)))
		// ...plus a fresh weak cell on a third pin.
		third := 5
		ci.Data.Flip(third, rng.Intn(8))

		if d, c := s.Decode(st.Clone()); ecc.Classify(line, d, c).IsFailure() {
			plainFails++
		}
		if d, c := spared.Decode(st); ecc.Classify(line, d, c) == ecc.OutcomeCE {
			sparedOK++
		}
	}
	if sparedOK != trials {
		t.Fatalf("spared decode corrected only %d/%d", sparedOK, trials)
	}
	if plainFails < trials*9/10 {
		t.Fatalf("plain decode failed only %d/%d three-symbol patterns", plainFails, trials)
	}
}

func TestSparingCleanDeviceUnaffected(t *testing.T) {
	// Sparing healthy pins must not hurt a clean or lightly-erring device.
	rng := rand.New(rand.NewSource(5))
	s := MustNew(dram.DDR4x16(), DefaultConfig())
	spared, _ := s.WithSparedPins(map[int][]int{2: {11}})
	for trial := 0; trial < 100; trial++ {
		line := make([]byte, 64)
		rng.Read(line)
		st := s.Encode(line)
		ecc.InjectAccessFault(rng, st, faults.PermanentCell, -1)
		decoded, claim := spared.Decode(st)
		if out := ecc.Classify(line, decoded, claim); out != ecc.OutcomeCE && out != ecc.OutcomeOK {
			t.Fatalf("spared healthy decode -> %v", out)
		}
	}
}

func TestSparedSchemeSharesEncoder(t *testing.T) {
	s := MustNew(dram.DDR4x16(), DefaultConfig())
	spared, _ := s.WithSparedPins(map[int][]int{0: {1}})
	line := make([]byte, 64)
	a := s.Encode(line)
	b := spared.Encode(line)
	for i := range a.Chips {
		if !a.Chips[i].OnDie.Equal(b.Chips[i].OnDie) {
			t.Fatal("sparing changed the stored image")
		}
	}
}
