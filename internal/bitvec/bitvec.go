// Package bitvec provides a compact bit-vector used throughout the DRAM
// and ECC models for data words, error masks and parity-check columns.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a fixed-length bit vector. Bit i of the vector is bit (i%64) of
// word i/64. The zero value of Vec is unusable; create with New.
type Vec struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of n bits.
func New(n int) *Vec {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vec{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBytes returns an n-bit vector initialized from buf in LSB-first
// order: bit i of the vector is bit (i%8) of buf[i/8]. buf must hold at
// least (n+7)/8 bytes.
func FromBytes(buf []byte, n int) *Vec {
	if len(buf) < (n+7)/8 {
		panic(fmt.Sprintf("bitvec: buffer %d bytes too small for %d bits", len(buf), n))
	}
	v := New(n)
	for i := 0; i < n; i++ {
		if buf[i/8]&(1<<(i%8)) != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// Len returns the number of bits.
func (v *Vec) Len() int { return v.n }

// Get returns bit i.
func (v *Vec) Get(i int) bool {
	v.check(i)
	return v.words[i/64]&(1<<(i%64)) != 0
}

// Set assigns bit i.
func (v *Vec) Set(i int, val bool) {
	v.check(i)
	if val {
		v.words[i/64] |= 1 << (i % 64)
	} else {
		v.words[i/64] &^= 1 << (i % 64)
	}
}

// Flip toggles bit i.
func (v *Vec) Flip(i int) {
	v.check(i)
	v.words[i/64] ^= 1 << (i % 64)
}

func (v *Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns a deep copy.
func (v *Vec) Clone() *Vec {
	out := New(v.n)
	copy(out.words, v.words)
	return out
}

// Xor sets v ^= other. Lengths must match.
func (v *Vec) Xor(other *Vec) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: Xor length mismatch %d != %d", v.n, other.n))
	}
	for i := range v.words {
		v.words[i] ^= other.words[i]
	}
}

// PopCount returns the number of set bits.
func (v *Vec) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (v *Vec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether v and other have identical length and contents.
func (v *Vec) Equal(other *Vec) bool {
	if v.n != other.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Clear zeroes all bits.
func (v *Vec) Clear() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// CopyFrom overwrites v with other's contents. Lengths must match.
func (v *Vec) CopyFrom(other *Vec) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: CopyFrom length mismatch %d != %d", v.n, other.n))
	}
	copy(v.words, other.words)
}

// NumWords returns the number of backing 64-bit words.
func (v *Vec) NumWords() int { return len(v.words) }

// Word returns backing word i (bits [64i, 64i+64) of the vector; bits at
// or beyond Len are zero).
func (v *Vec) Word(i int) uint64 { return v.words[i] }

// GetBits reads the w-bit field starting at bit off (w <= 64, field fully
// inside the vector) as an LSB-first integer.
func (v *Vec) GetBits(off, w int) uint64 {
	if w < 0 || w > 64 || off < 0 || off+w > v.n {
		panic(fmt.Sprintf("bitvec: GetBits [%d,%d+%d) out of range [0,%d)", off, off, w, v.n))
	}
	if w == 0 {
		return 0
	}
	wi, sh := off/64, uint(off%64)
	val := v.words[wi] >> sh
	if sh+uint(w) > 64 {
		val |= v.words[wi+1] << (64 - sh)
	}
	if w == 64 {
		return val
	}
	return val & (1<<uint(w) - 1)
}

// OrBits ORs the low w bits of val into the field starting at bit off
// (w <= 64, field fully inside the vector). Callers writing over a cleared
// vector use it as a field store.
func (v *Vec) OrBits(off int, val uint64, w int) {
	if w < 0 || w > 64 || off < 0 || off+w > v.n {
		panic(fmt.Sprintf("bitvec: OrBits [%d,%d+%d) out of range [0,%d)", off, off, w, v.n))
	}
	if w == 0 {
		return
	}
	if w < 64 {
		val &= 1<<uint(w) - 1
	}
	wi, sh := off/64, uint(off%64)
	v.words[wi] |= val << sh
	if sh+uint(w) > 64 {
		v.words[wi+1] |= val >> (64 - sh)
	}
}

// Bytes serializes the vector LSB-first into a fresh buffer of
// (Len()+7)/8 bytes (the inverse of FromBytes).
func (v *Vec) Bytes() []byte {
	out := make([]byte, (v.n+7)/8)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// OnesPositions returns the indices of set bits in ascending order.
func (v *Vec) OnesPositions() []int {
	var out []int
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// String renders the vector as a 0/1 string, bit 0 first, for debugging.
func (v *Vec) String() string {
	var sb strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
