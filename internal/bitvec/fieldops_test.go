package bitvec

import (
	"math/rand"
	"testing"
)

// mustPanic asserts fn panics, for the bounds-check contract.
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

// naiveGetBits is the bit-at-a-time reference for the word-level fast path.
func naiveGetBits(v *Vec, off, w int) uint64 {
	var val uint64
	for i := 0; i < w; i++ {
		if v.Get(off + i) {
			val |= 1 << uint(i)
		}
	}
	return val
}

func TestGetBitsDifferentialAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 63, 64, 65, 130, 200} {
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		for trial := 0; trial < 500; trial++ {
			w := rng.Intn(min(n, 64) + 1)
			off := rng.Intn(n - w + 1)
			if got, want := v.GetBits(off, w), naiveGetBits(v, off, w); got != want {
				t.Fatalf("n=%d GetBits(%d,%d) = %#x, want %#x", n, off, w, got, want)
			}
		}
	}
}

func TestGetBitsCrossWordAndEdges(t *testing.T) {
	v := New(128)
	// A field straddling the word boundary: bits 60..67 set alternately.
	for i := 60; i < 68; i += 2 {
		v.Set(i, true)
	}
	if got := v.GetBits(60, 8); got != 0b01010101 {
		t.Fatalf("cross-word field %#b", got)
	}
	if got := v.GetBits(60, 0); got != 0 {
		t.Fatalf("zero-width field %#x", got)
	}
	// Full-word read at a non-zero unaligned offset.
	v.Clear()
	v.Set(3, true)
	v.Set(66, true)
	if got := v.GetBits(3, 64); got != 1|1<<63 {
		t.Fatalf("64-bit unaligned read %#x", got)
	}
	// Aligned full-word read must round-trip Word().
	v.Clear()
	v.OrBits(64, 0xdeadbeefcafef00d, 64)
	if v.GetBits(64, 64) != v.Word(1) || v.Word(1) != 0xdeadbeefcafef00d {
		t.Fatalf("aligned word read %#x vs %#x", v.GetBits(64, 64), v.Word(1))
	}
}

func TestGetBitsBounds(t *testing.T) {
	v := New(100)
	mustPanic(t, "negative off", func() { v.GetBits(-1, 4) })
	mustPanic(t, "negative width", func() { v.GetBits(0, -1) })
	mustPanic(t, "width > 64", func() { v.GetBits(0, 65) })
	mustPanic(t, "field past end", func() { v.GetBits(98, 3) })
}

func TestOrBitsDifferentialAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 63, 64, 65, 130, 200} {
		fast, slow := New(n), New(n)
		for trial := 0; trial < 500; trial++ {
			w := rng.Intn(min(n, 64) + 1)
			off := rng.Intn(n - w + 1)
			val := rng.Uint64()
			fast.OrBits(off, val, w)
			for i := 0; i < w; i++ {
				if val&(1<<uint(i)) != 0 {
					slow.Set(off+i, true)
				}
			}
			if !fast.Equal(slow) {
				t.Fatalf("n=%d OrBits(%d,%#x,%d) diverged:\n%s\n%s", n, off, val, w, fast, slow)
			}
		}
	}
}

func TestOrBitsMasksHighBits(t *testing.T) {
	v := New(64)
	// Bits of val above width w must not leak into the vector.
	v.OrBits(0, ^uint64(0), 4)
	if v.PopCount() != 4 || v.GetBits(0, 64) != 0xf {
		t.Fatalf("high bits leaked: %s", v)
	}
	// Zero width is a no-op.
	v.OrBits(10, ^uint64(0), 0)
	if v.PopCount() != 4 {
		t.Fatalf("zero-width OrBits wrote bits: %s", v)
	}
}

func TestOrBitsBounds(t *testing.T) {
	v := New(100)
	mustPanic(t, "negative off", func() { v.OrBits(-1, 1, 4) })
	mustPanic(t, "negative width", func() { v.OrBits(0, 1, -1) })
	mustPanic(t, "width > 64", func() { v.OrBits(0, 1, 65) })
	mustPanic(t, "field past end", func() { v.OrBits(98, 1, 3) })
}

func TestGetBitsOrBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	v := New(544) // one PAIR stored-image worth of bits
	// Pack 8-bit symbols, then read them back.
	want := make([]uint64, 68)
	for i := range want {
		want[i] = uint64(rng.Intn(256))
		v.OrBits(i*8, want[i], 8)
	}
	for i := range want {
		if got := v.GetBits(i*8, 8); got != want[i] {
			t.Fatalf("symbol %d: %#x != %#x", i, got, want[i])
		}
	}
}

func TestLenWordAccessors(t *testing.T) {
	v := New(130)
	if v.Len() != 130 || v.NumWords() != 3 {
		t.Fatalf("Len=%d NumWords=%d", v.Len(), v.NumWords())
	}
	v.Set(129, true)
	if v.Word(2) != 2 {
		t.Fatalf("Word(2) = %#x", v.Word(2))
	}
	if New(0).NumWords() != 0 {
		t.Fatal("empty vector has backing words")
	}
}

func TestCopyFrom(t *testing.T) {
	src := New(70)
	src.Set(0, true)
	src.Set(69, true)
	dst := New(70)
	dst.Set(35, true)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatalf("CopyFrom left %s", dst)
	}
	// Deep copy: mutating dst must not touch src.
	dst.Flip(1)
	if src.Get(1) {
		t.Fatal("CopyFrom aliased the backing words")
	}
	mustPanic(t, "length mismatch", func() { dst.CopyFrom(New(71)) })
}

func TestConstructorAndEqualEdges(t *testing.T) {
	mustPanic(t, "negative length", func() { New(-1) })
	mustPanic(t, "short buffer", func() { FromBytes([]byte{1}, 9) })
	if !New(5).Equal(New(5)) {
		t.Fatal("fresh vectors unequal")
	}
	if New(5).Equal(New(6)) {
		t.Fatal("length mismatch compared equal")
	}
	if New(64).Any() {
		t.Fatal("zero vector Any() = true")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
