package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	if v.Any() {
		t.Fatal("new vector not all-zero")
	}
	v.Set(0, true)
	v.Set(63, true)
	v.Set(64, true)
	v.Set(129, true)
	for _, i := range []int{0, 63, 64, 129} {
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.PopCount() != 4 {
		t.Fatalf("popcount %d, want 4", v.PopCount())
	}
	v.Flip(63)
	if v.Get(63) || v.PopCount() != 3 {
		t.Fatal("flip failed")
	}
	v.Set(0, false)
	if v.Get(0) {
		t.Fatal("clear failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, f := range []func(){
		func() { v.Get(8) },
		func() { v.Set(-1, true) },
		func() { v.Flip(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 8, 9, 64, 65, 128, 136, 200} {
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		back := FromBytes(v.Bytes(), n)
		if !v.Equal(back) {
			t.Fatalf("round trip failed for n=%d", n)
		}
	}
}

func TestXorProperties(t *testing.T) {
	f := func(a, b [4]byte) bool {
		va := FromBytes(a[:], 32)
		vb := FromBytes(b[:], 32)
		sum := va.Clone()
		sum.Xor(vb)
		sum.Xor(vb) // x ^ b ^ b == x
		return sum.Equal(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	New(8).Xor(New(9))
}

func TestOnesPositions(t *testing.T) {
	v := New(130)
	want := []int{3, 64, 127, 129}
	for _, i := range want {
		v.Set(i, true)
	}
	got := v.OnesPositions()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New(10)
	v.Set(3, true)
	c := v.Clone()
	c.Flip(3)
	if !v.Get(3) {
		t.Fatal("clone shares storage with original")
	}
}

func TestClearAndString(t *testing.T) {
	v := New(4)
	v.Set(1, true)
	if v.String() != "0100" {
		t.Fatalf("String = %q", v.String())
	}
	v.Clear()
	if v.Any() {
		t.Fatal("Clear left bits set")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(8).Equal(New(9)) {
		t.Fatal("vectors of different length compared equal")
	}
}
