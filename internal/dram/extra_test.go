package dram

import (
	"math/rand"
	"testing"
)

func TestCommodityWidthPresets(t *testing.T) {
	for _, o := range []Organization{DDR4x4(), DDR4x8(), DDR5x16()} {
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		if o.LineBytes() != 64 {
			t.Fatalf("x%d line bytes %d", o.Pins, o.LineBytes())
		}
		if o.ECCChips != 0 {
			t.Fatalf("x%d commodity preset has ECC chips", o.Pins)
		}
	}
	if DDR4x4().ChipsPerRank != 16 || DDR4x8().ChipsPerRank != 8 {
		t.Fatal("chip counts wrong")
	}
	if got := DDR5x16().AccessBits(); got != 256 {
		t.Fatalf("DDR5 access bits %d", got)
	}
}

func TestChipBitsPerBank(t *testing.T) {
	o := DDR4x16()
	want := int64(o.Rows) * int64(o.Cols) * 128
	if got := o.ChipBitsPerBank(); got != want {
		t.Fatalf("bits per bank %d, want %d", got, want)
	}
}

func TestSplitJoinDDR5(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := DDR5x16()
	line := make([]byte, 64)
	rng.Read(line)
	back := JoinLine(o, SplitLine(o, line))
	for i := range line {
		if back[i] != line[i] {
			t.Fatal("DDR5 split/join round trip failed")
		}
	}
}

func TestBurstShapePanics(t *testing.T) {
	cases := []func(){
		func() { NewBurst(0, 8) },
		func() { NewBurst(16, 8).PinSymbolPart(0, 1) }, // part beyond BL8
		func() { NewBurst(16, 8).SetPinSymbolPart(0, 1, 0) },
		func() { NewBurst(16, 16).PinSymbol(0) }, // BL16 needs parts
		func() { NewBurst(16, 16).SetPinSymbol(0, 1) },
		func() { NewBurst(16, 8).BeatByte(0, 2) }, // group beyond pins
		func() { NewBurst(16, 8).SetBeatByte(0, 2, 0) },
		func() { NewBurst(8, 8).Xor(NewBurst(16, 8)) },
		func() { SplitLine(DDR4x16(), make([]byte, 63)) },
		func() { JoinLine(DDR4x16(), nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestJoinLineShapeMismatchPanics(t *testing.T) {
	o := DDR4x16()
	bursts := SplitLine(o, make([]byte, 64))
	bursts[1] = NewBurst(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	JoinLine(o, bursts)
}

func TestAddressString(t *testing.T) {
	a := Address{Rank: 1, Group: 2, Bank: 3, Row: 0x10, Col: 0x20}
	if a.String() == "" {
		t.Fatal("empty address string")
	}
}

func TestMapperCapacityDDR5(t *testing.T) {
	m, err := NewAddressMapper(DDR5x16(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(32) * uint64(1<<16) * uint64(1<<7)
	if m.Capacity() != want {
		t.Fatalf("capacity %d, want %d", m.Capacity(), want)
	}
}
