package dram

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestOrganizationDefaults(t *testing.T) {
	o := DDR4x16()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.AccessBits() != 128 {
		t.Fatalf("x16 BL8 access bits = %d, want 128", o.AccessBits())
	}
	if o.LineBytes() != 64 {
		t.Fatalf("line bytes = %d, want 64", o.LineBytes())
	}
	if o.Banks() != 8 {
		t.Fatalf("banks = %d, want 8", o.Banks())
	}

	e := DDR4x8ECC()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.LineBytes() != 64 || e.TotalChips() != 9 {
		t.Fatalf("x8 ECC rank: line %dB chips %d", e.LineBytes(), e.TotalChips())
	}
}

func TestOrganizationValidateRejects(t *testing.T) {
	bad := DDR4x16()
	bad.Pins = 5
	if bad.Validate() == nil {
		t.Fatal("x5 accepted")
	}
	bad = DDR4x16()
	bad.BurstLen = 4
	if bad.Validate() == nil {
		t.Fatal("BL4 accepted")
	}
	bad = DDR4x16()
	bad.Rows = 0
	if bad.Validate() == nil {
		t.Fatal("0 rows accepted")
	}
}

func TestBurstGetSetFlip(t *testing.T) {
	b := NewBurst(16, 8)
	b.Set(3, 5, true)
	if !b.Get(3, 5) || b.PopCount() != 1 {
		t.Fatal("set/get failed")
	}
	b.Flip(3, 5)
	if b.Get(3, 5) || b.PopCount() != 0 {
		t.Fatal("flip failed")
	}
}

func TestBurstIndexPanics(t *testing.T) {
	b := NewBurst(16, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range burst access did not panic")
		}
	}()
	b.Get(16, 0)
}

func TestPinSymbolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBurst(16, 8)
	want := make([]byte, 16)
	for p := range want {
		want[p] = byte(rng.Intn(256))
		b.SetPinSymbol(p, want[p])
	}
	for p := range want {
		if b.PinSymbol(p) != want[p] {
			t.Fatalf("pin %d symbol mismatch", p)
		}
	}
}

func TestPinSymbolBeatOrientation(t *testing.T) {
	// Bit of beat k must land in bit k of the symbol.
	b := NewBurst(16, 8)
	b.Set(7, 3, true)
	if b.PinSymbol(7) != 1<<3 {
		t.Fatalf("symbol = %#x, want %#x", b.PinSymbol(7), 1<<3)
	}
}

func TestBeatByteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewBurst(16, 8)
	for beat := 0; beat < 8; beat++ {
		for g := 0; g < 2; g++ {
			v := byte(rng.Intn(256))
			b.SetBeatByte(beat, g, v)
			if b.BeatByte(beat, g) != v {
				t.Fatalf("beat %d group %d mismatch", beat, g)
			}
		}
	}
}

func TestPinAndBeatViewsSeeSamePhysicalBits(t *testing.T) {
	// A single physical bit (pin 9, beat 4) must appear in pin symbol 9 at
	// bit 4 AND in beat 4's group-1 byte at bit 1.
	b := NewBurst(16, 8)
	b.Set(9, 4, true)
	if b.PinSymbol(9) != 1<<4 {
		t.Fatal("pin view wrong")
	}
	if b.BeatByte(4, 1) != 1<<1 {
		t.Fatal("beat view wrong")
	}
}

func TestBurstBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBurst(16, 8)
	for p := 0; p < 16; p++ {
		b.SetPinSymbol(p, byte(rng.Intn(256)))
	}
	back := BurstFromBytes(b.Bytes(), 16, 8)
	if !b.Equal(back) {
		t.Fatal("bytes round trip failed")
	}
}

func TestBurstXorAsErrorMask(t *testing.T) {
	b := NewBurst(8, 8)
	b.SetPinSymbol(2, 0xFF)
	mask := NewBurst(8, 8)
	mask.Set(2, 0, true)
	b.Xor(mask)
	if b.PinSymbol(2) != 0xFE {
		t.Fatalf("mask application wrong: %#x", b.PinSymbol(2))
	}
}

func TestSplitJoinLineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, org := range []Organization{DDR4x16(), DDR4x8ECC()} {
		line := make([]byte, org.LineBytes())
		rng.Read(line)
		bursts := SplitLine(org, line)
		if len(bursts) != org.ChipsPerRank {
			t.Fatalf("split produced %d bursts", len(bursts))
		}
		back := JoinLine(org, bursts)
		if !bytes.Equal(back, line) {
			t.Fatalf("split/join round trip failed for x%d", org.Pins)
		}
	}
}

func TestSplitLineChipLocality(t *testing.T) {
	// Byte 0 of the line travels on chip 0's pins during beat 0 for x16.
	org := DDR4x16()
	line := make([]byte, 64)
	line[0] = 0xFF // bits 0..7 of beat 0 => chip 0, pins 0..7
	bursts := SplitLine(org, line)
	for p := 0; p < 8; p++ {
		if !bursts[0].Get(p, 0) {
			t.Fatalf("chip 0 pin %d beat 0 not set", p)
		}
	}
	for c := 1; c < 4; c++ {
		if bursts[c].PopCount() != 0 {
			t.Fatalf("chip %d unexpectedly carries data", c)
		}
	}
}

func TestAddressMapperRoundTripUniqueness(t *testing.T) {
	org := DDR4x16()
	org.Rows = 64 // shrink for exhaustiveness
	org.Cols = 8
	m, err := NewAddressMapper(org, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Address]uint64)
	for line := uint64(0); line < m.Capacity(); line++ {
		a := m.Map(line)
		if a.Rank < 0 || a.Rank >= 2 || a.Group < 0 || a.Group >= org.BankGroups ||
			a.Bank < 0 || a.Bank >= org.BanksPerGrp || a.Row < 0 || a.Row >= org.Rows ||
			a.Col < 0 || a.Col >= org.Cols {
			t.Fatalf("address out of range: %v", a)
		}
		if prev, dup := seen[a]; dup {
			t.Fatalf("lines %d and %d map to same address %v", prev, line, a)
		}
		seen[a] = line
	}
	if uint64(len(seen)) != m.Capacity() {
		t.Fatal("mapping not a bijection")
	}
}

func TestAddressMapperSpreadsBankGroups(t *testing.T) {
	// Consecutive lines must not all hit the same bank group (the XOR
	// permutation's purpose).
	m, _ := NewAddressMapper(DDR4x16(), 1)
	groups := make(map[int]bool)
	for line := uint64(0); line < 8; line++ {
		groups[m.Map(line).Group] = true
	}
	if len(groups) < 2 {
		t.Fatal("consecutive lines all in one bank group")
	}
}

func TestFlatBankDense(t *testing.T) {
	m, _ := NewAddressMapper(DDR4x16(), 2)
	seen := make(map[int]bool)
	for r := 0; r < 2; r++ {
		for g := 0; g < 2; g++ {
			for b := 0; b < 4; b++ {
				fb := m.FlatBank(Address{Rank: r, Group: g, Bank: b})
				if fb < 0 || fb >= m.NumFlatBanks() {
					t.Fatalf("flat bank %d out of range", fb)
				}
				if seen[fb] {
					t.Fatalf("flat bank %d duplicated", fb)
				}
				seen[fb] = true
			}
		}
	}
	if len(seen) != m.NumFlatBanks() {
		t.Fatal("flat bank indices not dense")
	}
}

func TestNewAddressMapperValidation(t *testing.T) {
	if _, err := NewAddressMapper(DDR4x16(), 0); err == nil {
		t.Fatal("0 ranks accepted")
	}
	bad := DDR4x16()
	bad.Pins = 3
	if _, err := NewAddressMapper(bad, 1); err == nil {
		t.Fatal("invalid organization accepted")
	}
}
