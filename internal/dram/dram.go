// Package dram models the organization of a DDR4-style memory subsystem at
// the fidelity the PAIR study needs: device geometry (channel, rank, chip,
// bank group, bank, row, column), the DQ-pin/beat structure of a burst
// access, and the mapping between 64-byte cache lines and per-chip bursts.
//
// The pin/beat structure matters because PAIR's codewords are aligned to DQ
// pins: the 8 bits a pin carries during a BL8 burst form one Reed-Solomon
// symbol. The same Burst container therefore exposes both views — the
// pin-aligned view PAIR uses and the beat-aligned byte view DUO's
// rank-level code uses — so fault injection happens once, in physical
// coordinates, and each scheme sees the same physical corruption through
// its own symbolization.
package dram

import (
	"fmt"

	"pair/internal/bitvec"
)

// Organization describes a DRAM device and its rank-level arrangement.
type Organization struct {
	Pins         int // DQ pins per chip (x4/x8/x16)
	BurstLen     int // beats per column access (BL8 for DDR4)
	ChipsPerRank int // data chips per rank
	ECCChips     int // additional redundancy chips (rank-level schemes)
	BankGroups   int
	BanksPerGrp  int
	Rows         int // rows per bank
	Cols         int // column accesses per row (each = Pins*BurstLen bits)
}

// DDR4x16 is the default organization of the study: a 64-bit channel built
// from four x16 devices, BL8. One rank access moves 4 chips x 16 pins x 8
// beats = 64 bytes — one cache line.
func DDR4x16() Organization {
	return Organization{
		Pins:         16,
		BurstLen:     8,
		ChipsPerRank: 4,
		ECCChips:     0,
		BankGroups:   2,
		BanksPerGrp:  4,
		Rows:         1 << 16,
		Cols:         1 << 7,
	}
}

// DDR4x8 is a commodity (non-ECC) eight-chip x8 rank.
func DDR4x8() Organization {
	return Organization{
		Pins:         8,
		BurstLen:     8,
		ChipsPerRank: 8,
		ECCChips:     0,
		BankGroups:   4,
		BanksPerGrp:  4,
		Rows:         1 << 16,
		Cols:         1 << 7,
	}
}

// DDR4x4 is a commodity (non-ECC) sixteen-chip x4 rank.
func DDR4x4() Organization {
	return Organization{
		Pins:         4,
		BurstLen:     8,
		ChipsPerRank: 16,
		ECCChips:     0,
		BankGroups:   4,
		BanksPerGrp:  4,
		Rows:         1 << 17,
		Cols:         1 << 7,
	}
}

// DDR5x16 models a DDR5 32-bit subchannel: two x16 devices, BL16. One
// access still moves a 64-byte line (2 chips x 16 pins x 16 beats), but
// each pin now carries 16 bits per burst — two PAIR symbols ("latest
// DRAM model" in the abstract's phrasing).
func DDR5x16() Organization {
	return Organization{
		Pins:         16,
		BurstLen:     16,
		ChipsPerRank: 2,
		ECCChips:     0,
		BankGroups:   8,
		BanksPerGrp:  4,
		Rows:         1 << 16,
		Cols:         1 << 7,
	}
}

// LPDDR5x16 models one LPDDR5 x16 channel as two x16 dies sharing the
// channel, BL16: one access moves a 64-byte line (2 dies x 16 pins x 16
// beats). LPDDR5 has 4 bank groups of 4 banks and refreshes per bank.
func LPDDR5x16() Organization {
	return Organization{
		Pins:         16,
		BurstLen:     16,
		ChipsPerRank: 2,
		ECCChips:     0,
		BankGroups:   4,
		BanksPerGrp:  4,
		Rows:         1 << 16,
		Cols:         1 << 7,
	}
}

// DDR4x8ECC is the organization rank-level baselines (SECDED, XED, DUO)
// assume: nine x8 devices (72-bit bus), BL8.
func DDR4x8ECC() Organization {
	return Organization{
		Pins:         8,
		BurstLen:     8,
		ChipsPerRank: 8,
		ECCChips:     1,
		BankGroups:   4,
		BanksPerGrp:  4,
		Rows:         1 << 16,
		Cols:         1 << 7,
	}
}

// Validate checks internal consistency.
func (o Organization) Validate() error {
	switch {
	case o.Pins != 4 && o.Pins != 8 && o.Pins != 16:
		return fmt.Errorf("dram: unsupported pin width x%d", o.Pins)
	case o.BurstLen != 8 && o.BurstLen != 16:
		return fmt.Errorf("dram: unsupported burst length %d", o.BurstLen)
	case o.ChipsPerRank <= 0 || o.ECCChips < 0:
		return fmt.Errorf("dram: invalid chip counts %d+%d", o.ChipsPerRank, o.ECCChips)
	case o.BankGroups <= 0 || o.BanksPerGrp <= 0 || o.Rows <= 0 || o.Cols <= 0:
		return fmt.Errorf("dram: invalid bank/row/col geometry")
	}
	return nil
}

// TotalChips returns data + ECC chips per rank.
func (o Organization) TotalChips() int { return o.ChipsPerRank + o.ECCChips }

// Banks returns the number of banks per chip.
func (o Organization) Banks() int { return o.BankGroups * o.BanksPerGrp }

// AccessBits returns the data bits one chip moves per column access.
func (o Organization) AccessBits() int { return o.Pins * o.BurstLen }

// LineBytes returns the cache-line size one rank access delivers from the
// data chips.
func (o Organization) LineBytes() int { return o.ChipsPerRank * o.AccessBits() / 8 }

// ChipBitsPerBank returns data bits stored per bank of one chip.
func (o Organization) ChipBitsPerBank() int64 {
	return int64(o.Rows) * int64(o.Cols) * int64(o.AccessBits())
}

// Burst is the bits one chip transfers during one column access, indexed by
// (pin, beat). Bit (pin, beat) is stored at index beat*Pins + pin.
type Burst struct {
	Pins, Beats int
	bits        *bitvec.Vec
}

// NewBurst returns an all-zero burst of the given shape.
func NewBurst(pins, beats int) *Burst {
	if pins <= 0 || beats <= 0 {
		panic(fmt.Sprintf("dram: invalid burst shape %dx%d", pins, beats))
	}
	return &Burst{Pins: pins, Beats: beats, bits: bitvec.New(pins * beats)}
}

func (b *Burst) index(pin, beat int) int {
	if pin < 0 || pin >= b.Pins || beat < 0 || beat >= b.Beats {
		panic(fmt.Sprintf("dram: burst index (%d,%d) out of %dx%d", pin, beat, b.Pins, b.Beats))
	}
	return beat*b.Pins + pin
}

// Get returns the bit carried by pin during beat.
func (b *Burst) Get(pin, beat int) bool { return b.bits.Get(b.index(pin, beat)) }

// Set assigns the bit carried by pin during beat.
func (b *Burst) Set(pin, beat int, v bool) { b.bits.Set(b.index(pin, beat), v) }

// Flip toggles the bit carried by pin during beat.
func (b *Burst) Flip(pin, beat int) { b.bits.Flip(b.index(pin, beat)) }

// Bits returns the underlying bit vector (shared, not a copy).
func (b *Burst) Bits() *bitvec.Vec { return b.bits }

// Clone returns a deep copy.
func (b *Burst) Clone() *Burst {
	return &Burst{Pins: b.Pins, Beats: b.Beats, bits: b.bits.Clone()}
}

// CopyFrom overwrites b with other's contents. Shapes must match.
func (b *Burst) CopyFrom(other *Burst) {
	if b.Pins != other.Pins || b.Beats != other.Beats {
		panic("dram: burst shape mismatch in CopyFrom")
	}
	b.bits.CopyFrom(other.bits)
}

// Xor applies an error mask of identical shape.
func (b *Burst) Xor(mask *Burst) {
	if b.Pins != mask.Pins || b.Beats != mask.Beats {
		panic("dram: burst shape mismatch in Xor")
	}
	b.bits.Xor(mask.bits)
}

// Equal reports shape and content equality.
func (b *Burst) Equal(other *Burst) bool {
	return b.Pins == other.Pins && b.Beats == other.Beats && b.bits.Equal(other.bits)
}

// PopCount returns the number of set bits (error weight for masks).
func (b *Burst) PopCount() int { return b.bits.PopCount() }

// PinSymbol returns the up-to-8 bits pin carries across the burst as one
// byte, beat 0 in bit 0 — the PAIR symbolization. Beats must be <= 8.
func (b *Burst) PinSymbol(pin int) byte {
	if b.Beats > 8 {
		panic("dram: PinSymbol requires burst length <= 8")
	}
	var v byte
	for beat := 0; beat < b.Beats; beat++ {
		if b.Get(pin, beat) {
			v |= 1 << beat
		}
	}
	return v
}

// SetPinSymbol writes the pin-aligned symbol back (inverse of PinSymbol).
func (b *Burst) SetPinSymbol(pin int, v byte) {
	if b.Beats > 8 {
		panic("dram: SetPinSymbol requires burst length <= 8")
	}
	for beat := 0; beat < b.Beats; beat++ {
		b.Set(pin, beat, v&(1<<beat) != 0)
	}
}

// PinSymbolPart returns 8 bits of pin's burst starting at beat part*8 —
// the generalization of PinSymbol for bursts longer than 8 beats (DDR5
// BL16 pins carry two symbols each).
func (b *Burst) PinSymbolPart(pin, part int) byte {
	base := part * 8
	if base+8 > b.Beats {
		panic(fmt.Sprintf("dram: symbol part %d exceeds %d beats", part, b.Beats))
	}
	var v byte
	for i := 0; i < 8; i++ {
		if b.Get(pin, base+i) {
			v |= 1 << i
		}
	}
	return v
}

// SetPinSymbolPart writes a pin symbol part back (inverse of
// PinSymbolPart).
func (b *Burst) SetPinSymbolPart(pin, part int, v byte) {
	base := part * 8
	if base+8 > b.Beats {
		panic(fmt.Sprintf("dram: symbol part %d exceeds %d beats", part, b.Beats))
	}
	for i := 0; i < 8; i++ {
		b.Set(pin, base+i, v&(1<<i) != 0)
	}
}

// BeatByte returns the byte formed by pins [8*group, 8*group+8) during
// beat — the beat-aligned symbolization rank-level codes (DUO) use.
func (b *Burst) BeatByte(beat, group int) byte {
	base := group * 8
	if base+8 > b.Pins {
		panic(fmt.Sprintf("dram: beat byte group %d exceeds %d pins", group, b.Pins))
	}
	var v byte
	for i := 0; i < 8; i++ {
		if b.Get(base+i, beat) {
			v |= 1 << i
		}
	}
	return v
}

// SetBeatByte writes the beat-aligned byte back (inverse of BeatByte).
func (b *Burst) SetBeatByte(beat, group int, v byte) {
	base := group * 8
	if base+8 > b.Pins {
		panic(fmt.Sprintf("dram: beat byte group %d exceeds %d pins", group, b.Pins))
	}
	for i := 0; i < 8; i++ {
		b.Set(base+i, beat, v&(1<<i) != 0)
	}
}

// Bytes serializes the burst beat-major (beat 0's pins first, LSB = pin 0).
func (b *Burst) Bytes() []byte { return b.bits.Bytes() }

// BurstFromBytes deserializes a burst previously produced by Bytes.
func BurstFromBytes(buf []byte, pins, beats int) *Burst {
	return &Burst{Pins: pins, Beats: beats, bits: bitvec.FromBytes(buf, pins*beats)}
}

// getLineBits reads the w-bit field (w <= 16) at bit offset off of an
// LSB-first byte buffer.
func getLineBits(buf []byte, off, w int) uint64 {
	var v uint64
	bo, sh := off>>3, off&7
	nb := (sh + w + 7) / 8
	for i := 0; i < nb; i++ {
		v |= uint64(buf[bo+i]) << (8 * i)
	}
	return (v >> uint(sh)) & (1<<uint(w) - 1)
}

// orLineBits ORs the low w bits (w <= 16) of val into the byte buffer at
// bit offset off.
func orLineBits(buf []byte, off int, val uint64, w int) {
	val &= 1<<uint(w) - 1
	bo, sh := off>>3, off&7
	val <<= uint(sh)
	for i := 0; val != 0; i++ {
		buf[bo+i] |= byte(val)
		val >>= 8
	}
}

// SplitLine distributes a cache line over the data chips of a rank access:
// beat-major, chip c carrying bits [c*Pins, (c+1)*Pins) of each beat. The
// returned slice has one Burst per data chip. len(line) must equal
// o.LineBytes().
func SplitLine(o Organization, line []byte) []*Burst {
	bursts := make([]*Burst, o.ChipsPerRank)
	for c := range bursts {
		bursts[c] = NewBurst(o.Pins, o.BurstLen)
	}
	SplitLineInto(o, line, bursts)
	return bursts
}

// SplitLineInto is SplitLine over caller-owned bursts: it overwrites every
// bit of each burst and allocates nothing. Bursts must have the access
// shape (Pins x BurstLen).
func SplitLineInto(o Organization, line []byte, bursts []*Burst) {
	if len(bursts) != o.ChipsPerRank {
		panic(fmt.Sprintf("dram: %d bursts, want %d", len(bursts), o.ChipsPerRank))
	}
	for c, b := range bursts {
		SplitChipInto(o, line, c, b)
	}
}

// SplitChipInto extracts chip's burst of the rank access into b,
// overwriting every bit and allocating nothing.
func SplitChipInto(o Organization, line []byte, chip int, b *Burst) {
	if len(line) != o.LineBytes() {
		panic(fmt.Sprintf("dram: line length %d, want %d", len(line), o.LineBytes()))
	}
	if b.Pins != o.Pins || b.Beats != o.BurstLen {
		panic("dram: burst shape mismatch in SplitChipInto")
	}
	busWidth := o.ChipsPerRank * o.Pins
	b.bits.Clear()
	for beat := 0; beat < o.BurstLen; beat++ {
		field := getLineBits(line, beat*busWidth+chip*o.Pins, o.Pins)
		b.bits.OrBits(beat*o.Pins, field, o.Pins)
	}
}

// OrChipInto ORs chip's burst bits into their line positions. Callers
// assembling a line chip by chip zero it first (JoinLineInto does both).
func OrChipInto(o Organization, line []byte, chip int, b *Burst) {
	if len(line) != o.LineBytes() {
		panic(fmt.Sprintf("dram: line length %d, want %d", len(line), o.LineBytes()))
	}
	if b.Pins != o.Pins || b.Beats != o.BurstLen {
		panic("dram: burst shape mismatch in OrChipInto")
	}
	busWidth := o.ChipsPerRank * o.Pins
	for beat := 0; beat < o.BurstLen; beat++ {
		field := b.bits.GetBits(beat*o.Pins, o.Pins)
		orLineBits(line, beat*busWidth+chip*o.Pins, field, o.Pins)
	}
}

// JoinLine reassembles a cache line from per-chip bursts (inverse of
// SplitLine).
func JoinLine(o Organization, bursts []*Burst) []byte {
	line := make([]byte, o.LineBytes())
	JoinLineInto(o, line, bursts)
	return line
}

// JoinLineInto is JoinLine into a caller-owned line buffer: it overwrites
// every byte and allocates nothing.
func JoinLineInto(o Organization, line []byte, bursts []*Burst) {
	if len(line) != o.LineBytes() {
		panic(fmt.Sprintf("dram: line length %d, want %d", len(line), o.LineBytes()))
	}
	if len(bursts) != o.ChipsPerRank {
		panic(fmt.Sprintf("dram: %d bursts, want %d", len(bursts), o.ChipsPerRank))
	}
	for i := range line {
		line[i] = 0
	}
	for c, b := range bursts {
		OrChipInto(o, line, c, b)
	}
}
