package dram

import "fmt"

// Address identifies one column access within a channel.
type Address struct {
	Rank  int
	Group int // bank group
	Bank  int // bank within group
	Row   int
	Col   int
}

// String renders the address for logs.
func (a Address) String() string {
	return fmt.Sprintf("rk%d bg%d ba%d r%#x c%#x", a.Rank, a.Group, a.Bank, a.Row, a.Col)
}

// AddressMapper converts flat cache-line addresses to DRAM coordinates
// using the row-interleaved mapping common in servers:
//
//	row : high bits | bank group ^ col-low (XOR-permuted) | bank | rank | column
//
// The XOR permutation on the bank-group bits spreads consecutive lines over
// bank groups so back-to-back accesses avoid tCCD_L, matching what real
// controllers do; without it the timing results would punish streaming
// workloads unrealistically.
type AddressMapper struct {
	Org   Organization
	Ranks int
}

// NewAddressMapper builds a mapper for the given organization and rank
// count (>= 1).
func NewAddressMapper(org Organization, ranks int) (*AddressMapper, error) {
	if err := org.Validate(); err != nil {
		return nil, err
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("dram: invalid rank count %d", ranks)
	}
	return &AddressMapper{Org: org, Ranks: ranks}, nil
}

// Capacity returns the number of cache lines the channel holds.
func (m *AddressMapper) Capacity() uint64 {
	o := m.Org
	return uint64(m.Ranks) * uint64(o.Banks()) * uint64(o.Rows) * uint64(o.Cols)
}

// Map converts a cache-line index (0-based, < Capacity) to an Address.
func (m *AddressMapper) Map(line uint64) Address {
	o := m.Org
	col := int(line % uint64(o.Cols))
	line /= uint64(o.Cols)
	rank := int(line % uint64(m.Ranks))
	line /= uint64(m.Ranks)
	bank := int(line % uint64(o.BanksPerGrp))
	line /= uint64(o.BanksPerGrp)
	group := int(line % uint64(o.BankGroups))
	line /= uint64(o.BankGroups)
	row := int(line % uint64(o.Rows))
	// XOR-permute the bank group with the low column bits.
	group ^= col & (o.BankGroups - 1)
	return Address{Rank: rank, Group: group, Bank: bank, Row: row, Col: col}
}

// FlatBank returns a dense index for the (rank, group, bank) triple, used
// by the timing simulator to index bank state.
func (m *AddressMapper) FlatBank(a Address) int {
	o := m.Org
	return (a.Rank*o.BankGroups+a.Group)*o.BanksPerGrp + a.Bank
}

// NumFlatBanks returns the number of distinct FlatBank values.
func (m *AddressMapper) NumFlatBanks() int {
	return m.Ranks * m.Org.Banks()
}
