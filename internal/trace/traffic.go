package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Open-loop traffic front end. Generate's gaps model one core's
// instruction stream; the tail-latency experiments instead need an
// arrival process: many concurrent users sharing the channels, issuing
// requests at an offered load the memory system does not back-pressure.
// Under an open loop a saturated system grows its queues without bound,
// which is exactly what exposes the p99/p999 knee each ECC scheme's
// extra traffic shifts.

// Arrival selects the shape of the arrival process.
type Arrival int

const (
	// PoissonArrival draws i.i.d. exponential inter-arrival gaps: the
	// memoryless baseline of open-loop load generators.
	PoissonArrival Arrival = iota
	// BurstyArrival clusters arrivals into geometric bursts (mean length
	// BurstLen) separated by long idle gaps; offered load matches the
	// Poisson process but variance concentrates in the bursts.
	BurstyArrival
	// DiurnalArrival modulates a Poisson process with a sinusoidal rate
	// (Swing around the mean over Periods cycles of the trace): the
	// slow-timescale load swing of user-facing fleets.
	DiurnalArrival
)

func (a Arrival) String() string {
	switch a {
	case PoissonArrival:
		return "poisson"
	case BurstyArrival:
		return "bursty"
	case DiurnalArrival:
		return "diurnal"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// ParseArrival parses an arrival-process name.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "poisson":
		return PoissonArrival, nil
	case "bursty":
		return BurstyArrival, nil
	case "diurnal":
		return DiurnalArrival, nil
	}
	return 0, fmt.Errorf("trace: unknown arrival process %q (valid: poisson, bursty, diurnal)", s)
}

// TrafficParams parameterize an open-loop traffic workload.
type TrafficParams struct {
	Name     string
	Requests int
	Arrival  Arrival
	// Load is the offered load in requests per front-end cycle (mean
	// arrival rate); 0.25 on a 4-cycle-burst bus is the saturation point
	// of a single channel.
	Load float64
	// Users is the number of concurrent request sources; it becomes the
	// MLP window, so more users keep more requests in flight.
	Users      int
	ReadFrac   float64
	MaskedFrac float64
	Lines      uint64
	// HotFraction sends that fraction of accesses to 1/32 of the lines
	// (shared hot data); 0 is uniform.
	HotFraction float64
	// BurstLen is the mean burst length for BurstyArrival (default 8).
	BurstLen float64
	// Swing is the relative rate swing for DiurnalArrival in [0,1)
	// (default 0.6); Periods the number of full sine periods across the
	// trace (default 2).
	Swing   float64
	Periods float64
	Seed    int64
}

// Traffic builds a deterministic open-loop workload from the parameters.
func Traffic(p TrafficParams) Workload {
	if p.Requests <= 0 || p.Lines == 0 {
		panic(fmt.Sprintf("trace: invalid traffic params %+v", p))
	}
	if p.Load <= 0 {
		p.Load = 0.1
	}
	if p.Users <= 0 {
		p.Users = 16
	}
	if p.BurstLen <= 0 {
		p.BurstLen = 8
	}
	if p.Swing <= 0 || p.Swing >= 1 {
		p.Swing = 0.6
	}
	if p.Periods <= 0 {
		p.Periods = 2
	}
	rng := rand.New(rand.NewSource(p.Seed))
	meanGap := 1 / p.Load
	reqs := make([]Request, p.Requests)
	hotLines := p.Lines / 32
	if hotLines == 0 {
		hotLines = 1
	}
	burstLeft := 0
	for i := range reqs {
		var gapF float64
		switch p.Arrival {
		case PoissonArrival:
			gapF = rng.ExpFloat64() * meanGap
		case BurstyArrival:
			if burstLeft > 0 {
				// Inside a burst: back-to-back arrivals.
				burstLeft--
				gapF = 0
			} else {
				// Burst leader: the idle gap carries the whole burst's
				// share of the mean, preserving offered load.
				gapF = rng.ExpFloat64() * meanGap * p.BurstLen
				for rng.Float64() < 1-1/p.BurstLen {
					burstLeft++
				}
			}
		case DiurnalArrival:
			phase := 2 * math.Pi * p.Periods * float64(i) / float64(p.Requests)
			// The sqrt(1-s^2) factor corrects Jensen's gap between mean
			// rate and mean inter-arrival time, so the sinusoidal rate
			// still realizes the requested offered load.
			rate := p.Load / math.Sqrt(1-p.Swing*p.Swing) * (1 + p.Swing*math.Sin(phase))
			gapF = rng.ExpFloat64() / rate
		default:
			panic(fmt.Sprintf("trace: unknown arrival %v", p.Arrival))
		}
		gap := uint32(gapF)
		if gap > 100000 {
			gap = 100000
		}
		var line uint64
		if p.HotFraction > 0 && rng.Float64() < p.HotFraction {
			line = uint64(rng.Int63n(int64(hotLines)))
		} else {
			line = uint64(rng.Int63n(int64(p.Lines)))
		}
		op := Read
		if rng.Float64() >= p.ReadFrac {
			op = Write
			if rng.Float64() < p.MaskedFrac {
				op = MaskedWrite
			}
		}
		reqs[i] = Request{Op: op, Line: line, Gap: gap}
	}
	name := p.Name
	if name == "" {
		name = fmt.Sprintf("%s-%.2f", p.Arrival, p.Load)
	}
	return Workload{Name: name, Window: p.Users, Reqs: reqs}
}

// OfferedLoad returns a workload's mean arrival rate in requests per
// front-end cycle (requests divided by the sum of gaps).
func (w Workload) OfferedLoad() float64 {
	var total uint64
	for _, r := range w.Reqs {
		total += uint64(r.Gap)
	}
	if total == 0 {
		return math.Inf(1)
	}
	return float64(len(w.Reqs)) / float64(total)
}
