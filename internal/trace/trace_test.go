package trace

import (
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Name: "x", Requests: 500, Lines: 1024, Pattern: Random, ReadFrac: 0.7, MaskedFrac: 0.3, Seed: 9}
	a := Generate(p)
	b := Generate(p)
	if len(a.Reqs) != 500 || len(b.Reqs) != 500 {
		t.Fatal("wrong length")
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateMix(t *testing.T) {
	w := Generate(Params{Name: "mix", Requests: 20000, Lines: 1 << 16, Pattern: Random, ReadFrac: 0.6, MaskedFrac: 0.5, Seed: 4})
	s := w.Stats()
	total := s.Reads + s.Writes + s.MaskedWrites
	if total != 20000 {
		t.Fatalf("total %d", total)
	}
	readFrac := float64(s.Reads) / float64(total)
	if readFrac < 0.57 || readFrac > 0.63 {
		t.Fatalf("read fraction %v, want ~0.6", readFrac)
	}
	maskedFrac := float64(s.MaskedWrites) / float64(s.Writes+s.MaskedWrites)
	if maskedFrac < 0.45 || maskedFrac > 0.55 {
		t.Fatalf("masked fraction %v, want ~0.5", maskedFrac)
	}
}

func TestGenerateAllReads(t *testing.T) {
	w := Generate(Params{Name: "r", Requests: 1000, Lines: 64, Pattern: Sequential, ReadFrac: 1.0, Seed: 2})
	if s := w.Stats(); s.Writes != 0 || s.MaskedWrites != 0 {
		t.Fatalf("pure-read trace has writes: %+v", s)
	}
}

func TestSequentialWalksFootprint(t *testing.T) {
	w := Generate(Params{Name: "seq", Requests: 10, Lines: 1 << 20, Pattern: Sequential, ReadFrac: 1, Seed: 3})
	for i, r := range w.Reqs {
		if r.Line != uint64(i) {
			t.Fatalf("req %d line %d", i, r.Line)
		}
	}
}

func TestStridedPattern(t *testing.T) {
	w := Generate(Params{Name: "st", Requests: 5, Lines: 1000, Pattern: Strided, ReadFrac: 1, Stride: 7, Seed: 3})
	for i, r := range w.Reqs {
		if r.Line != uint64(i*7%1000) {
			t.Fatalf("req %d line %d", i, r.Line)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	lines := uint64(1 << 15)
	w := Generate(Params{Name: "hot", Requests: 20000, Lines: lines, Pattern: Hotspot, ReadFrac: 1, HotFraction: 0.8, Seed: 5})
	hot := lines / 32
	inHot := 0
	for _, r := range w.Reqs {
		if r.Line < hot {
			inHot++
		}
	}
	frac := float64(inHot) / float64(len(w.Reqs))
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("hot fraction %v, want ~0.8", frac)
	}
}

func TestLinesInRange(t *testing.T) {
	for _, pat := range []Pattern{Sequential, Random, Strided, Hotspot, PointerChase} {
		w := Generate(Params{Name: "rng", Requests: 5000, Lines: 777, Pattern: pat, ReadFrac: 0.5, HotFraction: 0.5, Seed: 6})
		for _, r := range w.Reqs {
			if r.Line >= 777 {
				t.Fatalf("%v: line %d out of footprint", pat, r.Line)
			}
		}
	}
}

func TestSPECLikeSuite(t *testing.T) {
	suite := SPECLike(1000)
	if len(suite) != 10 {
		t.Fatalf("suite has %d workloads", len(suite))
	}
	names := map[string]bool{}
	for _, w := range suite {
		if names[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
		if len(w.Reqs) != 1000 {
			t.Fatalf("%s has %d requests", w.Name, len(w.Reqs))
		}
		if w.Window <= 0 {
			t.Fatalf("%s has no window", w.Name)
		}
	}
	// mcf must be read-dominated and low-MLP; x264 masked-write heavy.
	for _, w := range suite {
		s := w.Stats()
		switch w.Name {
		case "mcf":
			if float64(s.Reads)/float64(len(w.Reqs)) < 0.9 || w.Window > 2 {
				t.Fatalf("mcf mix wrong: %+v window %d", s, w.Window)
			}
		case "x264":
			if s.MaskedWrites == 0 || s.MaskedWrites < s.Writes/2 {
				t.Fatalf("x264 masked writes too few: %+v", s)
			}
		}
	}
}

func TestWriteSweep(t *testing.T) {
	ws := WriteSweep(5000, []float64{0, 0.25, 0.5}, 0.4)
	if len(ws) != 3 {
		t.Fatal("sweep size wrong")
	}
	s0 := ws[0].Stats()
	if s0.Writes+s0.MaskedWrites != 0 {
		t.Fatal("0% write point has writes")
	}
	s2 := ws[2].Stats()
	frac := float64(s2.Writes+s2.MaskedWrites) / 5000
	if frac < 0.46 || frac > 0.54 {
		t.Fatalf("50%% write point has %v", frac)
	}
}

func TestOpAndPatternStrings(t *testing.T) {
	for _, o := range []Op{Read, Write, MaskedWrite, Op(9)} {
		if o.String() == "" {
			t.Fatal("empty op string")
		}
	}
	for _, p := range []Pattern{Sequential, Random, Strided, Hotspot, PointerChase, Pattern(9)} {
		if p.String() == "" {
			t.Fatal("empty pattern string")
		}
	}
}

func TestGenerateInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params did not panic")
		}
	}()
	Generate(Params{Requests: 0, Lines: 10})
}
