package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes the workload in the text format `tracegen` emits and
// Parse reads:
//
//	# trace <name> window=<n> requests=<n>
//	R|W|M <line-address-hex> <gap-cycles>
func (w Workload) Write(out io.Writer) error {
	bw := bufio.NewWriter(out)
	if _, err := fmt.Fprintf(bw, "# trace %s window=%d requests=%d\n", w.Name, w.Window, len(w.Reqs)); err != nil {
		return err
	}
	for _, r := range w.Reqs {
		op := "R"
		switch r.Op {
		case Write:
			op = "W"
		case MaskedWrite:
			op = "M"
		}
		if _, err := fmt.Fprintf(bw, "%s %x %d\n", op, r.Line, r.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a workload from the text trace format. The header comment
// is optional; without it the name defaults to "trace" and the window
// to 8.
func Parse(in io.Reader) (Workload, error) {
	w := Workload{Name: "trace", Window: 8}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			parseHeader(text, &w)
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return w, fmt.Errorf("trace: line %d: want `op addr gap`, got %q", lineNo, text)
		}
		var op Op
		switch fields[0] {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		case "M", "m":
			op = MaskedWrite
		default:
			return w, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return w, fmt.Errorf("trace: line %d: bad address: %v", lineNo, err)
		}
		gap, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return w, fmt.Errorf("trace: line %d: bad gap: %v", lineNo, err)
		}
		w.Reqs = append(w.Reqs, Request{Op: op, Line: addr, Gap: uint32(gap)})
	}
	if err := sc.Err(); err != nil {
		return w, err
	}
	if len(w.Reqs) == 0 {
		return w, fmt.Errorf("trace: empty trace")
	}
	return w, nil
}

func parseHeader(text string, w *Workload) {
	fields := strings.Fields(strings.TrimPrefix(text, "#"))
	for i, f := range fields {
		switch {
		case f == "trace" && i+1 < len(fields):
			w.Name = fields[i+1]
		case strings.HasPrefix(f, "window="):
			if v, err := strconv.Atoi(strings.TrimPrefix(f, "window=")); err == nil && v > 0 {
				w.Window = v
			}
		}
	}
}
