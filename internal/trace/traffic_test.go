package trace

import (
	"math"
	"testing"
)

func TestParseArrival(t *testing.T) {
	for _, a := range []Arrival{PoissonArrival, BurstyArrival, DiurnalArrival} {
		got, err := ParseArrival(a.String())
		if err != nil || got != a {
			t.Fatalf("round-trip %v: %v, %v", a, got, err)
		}
	}
	if _, err := ParseArrival("uniform"); err == nil {
		t.Fatal("bad arrival accepted")
	}
}

func TestTrafficDeterministic(t *testing.T) {
	p := TrafficParams{
		Name: "t", Requests: 2000, Arrival: PoissonArrival, Load: 0.1,
		Users: 32, ReadFrac: 0.7, MaskedFrac: 0.2, Lines: 1 << 16, Seed: 9,
	}
	a, b := Traffic(p), Traffic(p)
	if len(a.Reqs) != 2000 || a.Window != 32 {
		t.Fatalf("shape: %d reqs window %d", len(a.Reqs), a.Window)
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatalf("req %d differs: %+v vs %+v", i, a.Reqs[i], b.Reqs[i])
		}
	}
}

func TestTrafficOfferedLoad(t *testing.T) {
	// Every arrival process must realize the requested offered load
	// within sampling noise (20k requests => a few percent).
	for _, arr := range []Arrival{PoissonArrival, BurstyArrival, DiurnalArrival} {
		for _, load := range []float64{0.05, 0.2} {
			wl := Traffic(TrafficParams{
				Requests: 20000, Arrival: arr, Load: load,
				Users: 16, ReadFrac: 0.7, Lines: 1 << 16, Seed: 7,
			})
			got := wl.OfferedLoad()
			// Gap truncation to integers biases the realized rate up,
			// noticeably at high loads where gaps are O(1) cycles.
			if got < load*0.9 || got > load*1.6 {
				t.Fatalf("%v at %.2f realized %.4f", arr, load, got)
			}
		}
	}
}

func TestTrafficBurstyClusters(t *testing.T) {
	p := TrafficParams{
		Requests: 20000, Load: 0.1, Users: 16, ReadFrac: 1,
		Lines: 1 << 16, BurstLen: 8, Seed: 3,
	}
	p.Arrival = BurstyArrival
	bursty := Traffic(p)
	p.Arrival = PoissonArrival
	poisson := Traffic(p)
	zeros := func(w Workload) float64 {
		n := 0
		for _, r := range w.Reqs {
			if r.Gap == 0 {
				n++
			}
		}
		return float64(n) / float64(len(w.Reqs))
	}
	// Mean burst length 8: ~7/8 of arrivals ride inside a burst with a
	// zero gap; a Poisson process at mean gap 10 has far fewer.
	if zb, zp := zeros(bursty), zeros(poisson); zb < 0.7 || zb < 2*zp {
		t.Fatalf("bursty zero-gap frac %.3f vs poisson %.3f", zb, zp)
	}
}

func TestTrafficDiurnalSwings(t *testing.T) {
	wl := Traffic(TrafficParams{
		Requests: 40000, Arrival: DiurnalArrival, Load: 0.1, Swing: 0.8,
		Periods: 1, Users: 16, ReadFrac: 1, Lines: 1 << 16, Seed: 5,
	})
	// One sine period across the trace: the first half (rate rising to
	// peak) arrives much denser than the second (trough).
	half := len(wl.Reqs) / 2
	var first, second uint64
	for i, r := range wl.Reqs {
		if i < half {
			first += uint64(r.Gap)
		} else {
			second += uint64(r.Gap)
		}
	}
	if float64(second)/float64(first) < 1.5 {
		t.Fatalf("diurnal halves not skewed: first %d, second %d", first, second)
	}
}

func TestTrafficMixAndHotspot(t *testing.T) {
	wl := Traffic(TrafficParams{
		Requests: 20000, Arrival: PoissonArrival, Load: 0.1, Users: 16,
		ReadFrac: 0.6, MaskedFrac: 0.5, Lines: 1 << 16, HotFraction: 0.5, Seed: 11,
	})
	s := wl.Stats()
	rf := float64(s.Reads) / float64(len(wl.Reqs))
	if math.Abs(rf-0.6) > 0.02 {
		t.Fatalf("read frac %.3f, want ~0.6", rf)
	}
	if s.MaskedWrites == 0 || s.Writes == 0 {
		t.Fatalf("mix degenerate: %+v", s)
	}
	hot := 0
	hotLines := uint64(1<<16) / 32
	for _, r := range wl.Reqs {
		if r.Line < hotLines {
			hot++
		}
	}
	if frac := float64(hot) / float64(len(wl.Reqs)); frac < 0.45 {
		t.Fatalf("hot fraction %.3f, want >= ~0.5", frac)
	}
}

func TestTrafficDefaultName(t *testing.T) {
	wl := Traffic(TrafficParams{
		Requests: 10, Arrival: BurstyArrival, Load: 0.25, Lines: 64, ReadFrac: 1, Seed: 1,
	})
	if wl.Name != "bursty-0.25" {
		t.Fatalf("default name %q", wl.Name)
	}
}
