// Package trace generates the synthetic memory-request streams the
// performance experiments run. The paper evaluated SPEC-like workloads on
// a simulator; those traces are proprietary, so this package substitutes
// deterministic generators whose knobs — read/write mix, masked-write
// fraction, locality pattern and memory-level parallelism — are fitted to
// the well-known memory behaviour classes of SPEC CPU (streaming lbm,
// pointer-chasing mcf, strided milc, hot-spotted gcc, ...). Relative
// scheme performance depends only on these knobs, which is what makes the
// substitution behaviour-preserving (see DESIGN.md).
package trace

import (
	"fmt"
	"math/rand"
)

// Op is the request type.
type Op int

const (
	// Read is a 64-byte line read.
	Read Op = iota
	// Write is a full-line write.
	Write
	// MaskedWrite is a sub-line (byte-enabled) write; per-access ECC
	// schemes must read-modify-write it.
	MaskedWrite
)

func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	case MaskedWrite:
		return "masked-write"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is one memory access. Gap is the number of front-end cycles
// between this request becoming issueable and the previous one's issue —
// the arrival-process knob.
type Request struct {
	Op   Op
	Line uint64
	Gap  uint32
}

// Workload is a named request stream with its processor-side MLP window.
type Workload struct {
	Name   string
	Window int // maximum outstanding requests
	Reqs   []Request
}

// Stats summarizes a workload's mix.
type Stats struct {
	Reads, Writes, MaskedWrites int
}

// Stats computes the operation mix.
func (w Workload) Stats() Stats {
	var s Stats
	for _, r := range w.Reqs {
		switch r.Op {
		case Read:
			s.Reads++
		case Write:
			s.Writes++
		case MaskedWrite:
			s.MaskedWrites++
		}
	}
	return s
}

// Params parameterize a generated workload.
type Params struct {
	Name        string
	Requests    int
	ReadFrac    float64 // fraction of requests that are reads
	MaskedFrac  float64 // fraction of *writes* that are masked
	Pattern     Pattern
	Lines       uint64  // footprint in cache lines
	MeanGap     float64 // mean front-end cycles between requests
	Window      int     // MLP window
	HotFraction float64 // for Hotspot: fraction of accesses to 1/32 of lines
	Stride      uint64  // for Strided
	Seed        int64
}

// Pattern selects the address-stream shape.
type Pattern int

const (
	// Sequential walks the footprint line by line (streaming).
	Sequential Pattern = iota
	// Random draws lines uniformly.
	Random
	// Strided walks with a fixed line stride.
	Strided
	// Hotspot concentrates HotFraction of accesses on 1/32 of the lines.
	Hotspot
	// PointerChase draws random lines with a serialized front end
	// (dependent loads); combine with Window=1-2.
	PointerChase
)

func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	case Strided:
		return "strided"
	case Hotspot:
		return "hotspot"
	case PointerChase:
		return "pointer-chase"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Generate builds a deterministic workload from the parameters.
func Generate(p Params) Workload {
	if p.Requests <= 0 || p.Lines == 0 {
		panic(fmt.Sprintf("trace: invalid params %+v", p))
	}
	if p.Window <= 0 {
		p.Window = 8
	}
	if p.MeanGap <= 0 {
		p.MeanGap = 4
	}
	if p.Stride == 0 {
		p.Stride = 17
	}
	rng := rand.New(rand.NewSource(p.Seed))
	reqs := make([]Request, p.Requests)
	var cursor uint64
	hotLines := p.Lines / 32
	if hotLines == 0 {
		hotLines = 1
	}
	for i := range reqs {
		var line uint64
		switch p.Pattern {
		case Sequential:
			line = cursor % p.Lines
			cursor++
		case Strided:
			line = cursor % p.Lines
			cursor += p.Stride
		case Random, PointerChase:
			line = uint64(rng.Int63n(int64(p.Lines)))
		case Hotspot:
			if rng.Float64() < p.HotFraction {
				line = uint64(rng.Int63n(int64(hotLines)))
			} else {
				line = hotLines + uint64(rng.Int63n(int64(p.Lines-hotLines)))
			}
		default:
			panic(fmt.Sprintf("trace: unknown pattern %v", p.Pattern))
		}
		op := Read
		if rng.Float64() >= p.ReadFrac {
			op = Write
			if rng.Float64() < p.MaskedFrac {
				op = MaskedWrite
			}
		}
		// Geometric-ish gap around the mean; keeps arrivals bursty
		// without heavy tails.
		gap := uint32(rng.ExpFloat64() * p.MeanGap)
		if gap > 1000 {
			gap = 1000
		}
		reqs[i] = Request{Op: op, Line: line, Gap: gap}
	}
	return Workload{Name: p.Name, Window: p.Window, Reqs: reqs}
}

// SPECLike returns the ten-workload suite of the performance experiments.
// The mixes are fitted to the published memory behaviour of the SPEC
// CPU2017 rate workloads this literature evaluates on; requests counts
// are sized for simulation speed, not realism — relative scheme
// performance converges within a few thousand requests.
func SPECLike(requests int) []Workload {
	if requests <= 0 {
		requests = 20000
	}
	lines := uint64(1 << 20)
	mk := func(p Params) Workload {
		p.Requests = requests
		p.Lines = lines
		return Generate(p)
	}
	return []Workload{
		mk(Params{Name: "lbm", Pattern: Sequential, ReadFrac: 0.55, MaskedFrac: 0.05, MeanGap: 2, Window: 16, Seed: 101}),
		mk(Params{Name: "mcf", Pattern: PointerChase, ReadFrac: 0.97, MaskedFrac: 0.0, MeanGap: 12, Window: 2, Seed: 102}),
		mk(Params{Name: "milc", Pattern: Strided, ReadFrac: 0.70, MaskedFrac: 0.10, MeanGap: 3, Window: 12, Stride: 33, Seed: 103}),
		mk(Params{Name: "gcc", Pattern: Hotspot, ReadFrac: 0.80, MaskedFrac: 0.35, MeanGap: 6, Window: 6, HotFraction: 0.6, Seed: 104}),
		mk(Params{Name: "bwaves", Pattern: Sequential, ReadFrac: 0.65, MaskedFrac: 0.02, MeanGap: 2, Window: 16, Seed: 105}),
		mk(Params{Name: "cactu", Pattern: Strided, ReadFrac: 0.60, MaskedFrac: 0.15, MeanGap: 4, Window: 10, Stride: 129, Seed: 106}),
		mk(Params{Name: "omnetpp", Pattern: Random, ReadFrac: 0.85, MaskedFrac: 0.30, MeanGap: 8, Window: 4, Seed: 107}),
		mk(Params{Name: "x264", Pattern: Hotspot, ReadFrac: 0.60, MaskedFrac: 0.50, MeanGap: 5, Window: 8, HotFraction: 0.4, Seed: 108}),
		mk(Params{Name: "xz", Pattern: Random, ReadFrac: 0.75, MaskedFrac: 0.25, MeanGap: 7, Window: 6, Seed: 109}),
		mk(Params{Name: "fotonik", Pattern: Sequential, ReadFrac: 0.50, MaskedFrac: 0.08, MeanGap: 2, Window: 16, Seed: 110}),
	}
}

// WriteSweep returns workloads with a swept write ratio (figure F5): a
// random-pattern stream whose write fraction runs over the given values,
// masked fraction fixed.
func WriteSweep(requests int, writeFracs []float64, maskedFrac float64) []Workload {
	out := make([]Workload, len(writeFracs))
	for i, wf := range writeFracs {
		out[i] = Generate(Params{
			Name:       fmt.Sprintf("wr%02.0f", wf*100),
			Requests:   requests,
			Lines:      1 << 20,
			Pattern:    Random,
			ReadFrac:   1 - wf,
			MaskedFrac: maskedFrac,
			MeanGap:    3,
			Window:     8,
			Seed:       200 + int64(i),
		})
	}
	return out
}
