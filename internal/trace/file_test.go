package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteParseRoundTrip(t *testing.T) {
	w := Generate(Params{Name: "rt", Requests: 500, Lines: 1 << 12, Pattern: Random,
		ReadFrac: 0.6, MaskedFrac: 0.4, Window: 5, Seed: 1})
	var buf bytes.Buffer
	if err := w.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "rt" || back.Window != 5 || len(back.Reqs) != 500 {
		t.Fatalf("header lost: %+v", back)
	}
	for i := range w.Reqs {
		if back.Reqs[i] != w.Reqs[i] {
			t.Fatalf("request %d differs: %+v != %+v", i, back.Reqs[i], w.Reqs[i])
		}
	}
}

func TestParseWithoutHeader(t *testing.T) {
	w, err := Parse(strings.NewReader("R ff 3\nW 10 0\nM a0 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "trace" || w.Window != 8 || len(w.Reqs) != 3 {
		t.Fatalf("defaults wrong: %+v", w)
	}
	if w.Reqs[0] != (Request{Op: Read, Line: 0xff, Gap: 3}) {
		t.Fatalf("req 0 = %+v", w.Reqs[0])
	}
	if w.Reqs[2].Op != MaskedWrite {
		t.Fatal("masked write not parsed")
	}
}

func TestParseLowercaseAndBlank(t *testing.T) {
	w, err := Parse(strings.NewReader("\n  \nr 1 0\nw 2 1\n"))
	if err != nil || len(w.Reqs) != 2 {
		t.Fatalf("lenient parse failed: %v %+v", err, w)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"R ff\n",        // missing field
		"X ff 3\n",      // bad op
		"R zz 3\n",      // bad address
		"R ff notnum\n", // bad gap
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}
