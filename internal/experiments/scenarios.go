package experiments

import (
	"context"
	"fmt"

	"pair/internal/campaign"
	"pair/internal/ecc"
	"pair/internal/faults"
	"pair/internal/reliability"
)

// FaultScenarios builds every registered fault scenario at its default
// options, in registration (presentation) order — the default roster for
// the F13 differential table.
func FaultScenarios() []faults.Scenario {
	ids := faults.ScenarioIDs()
	out := make([]faults.Scenario, 0, len(ids))
	for _, id := range ids {
		out = append(out, faults.MustScenario(id))
	}
	return out
}

// F13Scenarios runs the scenario-vs-scheme differential table. It is the
// blocking wrapper around F13ScenariosCtx.
func F13Scenarios(schemes []ecc.Scheme, scenarios []faults.Scenario, trials int, seed int64) *Table {
	return must(F13ScenariosCtx(context.Background(), schemes, scenarios, trials, seed, campaign.Options{}))
}

// F13ScenariosCtx sweeps the registered fault scenarios across the
// scheme set as cancellable, checkpointable campaigns — one per
// (scenario, scheme) cell, labelled by the scenario's canonical spec.
// This is the strength/weakness matrix: each scheme's niche shows up as
// a column of 100/0/0 cells on the scenario family its geometry covers.
func F13ScenariosCtx(ctx context.Context, schemes []ecc.Scheme, scenarios []faults.Scenario, trials int, seed int64, opts campaign.Options) (*Table, error) {
	return F13ScenariosCells(schemes, scenarios, trials, func(s ecc.Scheme, sc faults.Scenario) (reliability.OutcomeRates, error) {
		r, err := reliability.ScenarioCoverageCtx(ctx, s, sc, trials, seed, opts)
		if err != nil {
			return reliability.OutcomeRates{}, err
		}
		return r.Rates, nil
	})
}

// F13ScenariosCells renders the differential table from a cell supplier,
// decoupling the table from where the campaigns ran: F13ScenariosCtx
// plugs in local campaign runs, pairsim's -fleet mode plugs in a lookup
// over a fleet job's merged shard counts. Cells are visited row-major
// (scenario outer, scheme inner) in presentation order, so a supplier
// that runs campaigns lazily reproduces the local execution order.
func F13ScenariosCells(schemes []ecc.Scheme, scenarios []faults.Scenario, trials int, cell func(s ecc.Scheme, sc faults.Scenario) (reliability.OutcomeRates, error)) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("F13: outcome by fault scenario (%d trials each; CE/DUE/SDC shares)", trials),
		Header: []string{"scenario"},
	}
	for _, s := range schemes {
		t.Header = append(t.Header, s.Name())
	}
	for _, sc := range scenarios {
		row := []string{sc.Spec()}
		for _, s := range schemes {
			rates, err := cell(s, sc)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f/%.0f/%.0f", rates.CE*100, rates.DUE*100, rates.SDC*100))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"cells are CE/DUE/SDC percentages; 100/0/0 = always corrected",
		"pin/pinburst are PAIR's aligned axis; beatburst is DUO's; chipkill:chips=1 is XED's rank-XOR niche")
	return t, nil
}
