package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"pair/internal/campaign"
	"pair/internal/core"
	"pair/internal/ecc"
	"pair/internal/faults"
	"pair/internal/reliability"
	"pair/internal/schemes"
)

// ExtendedSchemes returns the commodity set plus the two rank-level
// schemes (their natural ECC-DIMM organization), for the experiments
// where the cross-organization comparison is meaningful per 64B line.
// The composition lives in the registry's "extended" set.
func ExtendedSchemes() []ecc.Scheme {
	return schemes.MustBuildSet("extended")
}

// F8ScrubSweep varies the scrub interval in the lifetime model — the
// knob that controls how long transient faults linger and can pair with
// permanent ones. It is the blocking wrapper around F8ScrubSweepCtx.
func F8ScrubSweep(schemes []ecc.Scheme, devices int, seed int64) *Table {
	return must(F8ScrubSweepCtx(context.Background(), schemes, devices, seed, campaign.Options{}))
}

// F8ScrubSweepCtx varies the scrub interval as cancellable,
// checkpointable campaigns; each interval runs under an h=<n> campaign
// sublabel since the scheme set repeats across intervals.
func F8ScrubSweepCtx(ctx context.Context, schemes []ecc.Scheme, devices int, seed int64, opts campaign.Options) (*Table, error) {
	intervals := []float64{1, 6, 24, 168} // hours
	t := &Table{
		Title:  fmt.Sprintf("F8: 7-year failure probability vs scrub interval (%d ranks; transient FIT x20 to expose the knob)", devices),
		Header: []string{"scheme"},
	}
	for _, h := range intervals {
		t.Header = append(t.Header, fmt.Sprintf("%gh", h))
	}
	// Amplify the transient rate so pairing is observable at feasible
	// population sizes; the relative effect of scrubbing is what the
	// figure shows.
	fits := faults.DefaultFITTable()
	for i := range fits {
		if fits[i].Kind == faults.TransientBit {
			fits[i].Rate *= 20
		}
	}
	for _, s := range schemes {
		row := []string{s.Name()}
		for _, h := range intervals {
			r, err := reliability.RunLifetimeCtx(ctx, reliability.LifetimeConfig{
				Scheme:     s,
				Devices:    devices,
				ScrubHours: h,
				Seed:       seed,
				FITs:       fits,
			}, opts.Sublabel(fmt.Sprintf("h=%g", h)))
			if err != nil {
				return nil, err
			}
			row = append(row, sci(r.FailProb()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"longer scrub intervals let transient bits linger and pair with permanent faults",
		"at field-realistic rates the curves are flat: transient pairing is negligible against permanent-fault hazards — itself a finding (scrubbing buys little for per-access in-DRAM codes)")
	return t, nil
}

// F9DDR5 compares PAIR across DRAM generations: DDR4 x16 BL8 (one symbol
// per pin) against DDR5 x16 BL16 (two symbols per pin), at both
// expansion levels, under the pin-fault and inherent-cell hazards. It is
// the blocking wrapper around F9DDR5Ctx.
func F9DDR5(trials int, seed int64) *Table {
	return must(F9DDR5Ctx(context.Background(), trials, seed, campaign.Options{}))
}

// F9DDR5Ctx compares PAIR across DRAM generations as cancellable,
// checkpointable campaigns. The scheme/organization campaign labels
// already distinguish the four cases (name and burst length differ).
func F9DDR5Ctx(ctx context.Context, trials int, seed int64, opts campaign.Options) (*Table, error) {
	t := &Table{
		Title:  "F9: PAIR across DRAM generations (pin-fault fail rate / inherent 2-cell fail rate)",
		Header: []string{"device", "code", "t", "pin fault", "2-cell"},
	}
	cases := []struct {
		label, spec string
	}{
		{"DDR4 x16 BL8", "pair-base"},
		{"DDR4 x16 BL8", "pair"},
		{"DDR5 x16 BL16", "pair-base@ddr5x16"},
		{"DDR5 x16 BL16", "pair@ddr5x16"},
	}
	for _, c := range cases {
		s := schemes.MustNew(c.spec).(*core.Scheme)
		pin, err := reliability.CoverageCtx(ctx, s, "pin", trials, seed, func(rng *rand.Rand, st *ecc.Stored) {
			ecc.InjectAccessFault(rng, st, faults.PermanentPin, -1)
		}, opts)
		if err != nil {
			return nil, err
		}
		cells, err := reliability.CoverageCtx(ctx, s, "2cell", trials, seed, func(rng *rand.Rand, st *ecc.Stored) {
			chip := rng.Intn(st.Org.ChipsPerRank)
			ecc.InjectAccessFault(rng, st, faults.PermanentCell, chip)
			ecc.InjectAccessFault(rng, st, faults.PermanentCell, chip)
		}, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.label,
			fmt.Sprintf("RS(%d,%d)", s.CodewordLength(), s.CodewordLength()-s.Config().BaseParity-s.Config().Expansion),
			fmt.Sprintf("%d", s.T()),
			sci(pin.Rates.Fail()),
			sci(cells.Rates.Fail()),
		)
	}
	t.Notes = append(t.Notes,
		"a BL16 pin carries two symbols, so DDR5 pin faults need the expanded t=2 code — the expandability story across generations")
	return t, nil
}

// T5Widths shows the PAIR design space across device widths: the
// codeword shrinks with the pin count, so the fixed two-symbol parity
// floor costs proportionally more on narrow devices — the economics
// behind PAIR's focus on x16 (and the abstract's "latest DRAM model").
// It is the blocking wrapper around T5WidthsCtx.
func T5Widths(trials int, seed int64) *Table {
	return must(T5WidthsCtx(context.Background(), trials, seed, campaign.Options{}))
}

// T5WidthsCtx runs the device-width design-space table as cancellable,
// checkpointable campaigns (pin counts distinguish the campaign labels).
func T5WidthsCtx(ctx context.Context, trials int, seed int64, opts campaign.Options) (*Table, error) {
	t := &Table{
		Title:  "T5: PAIR across device widths (expanded config, t=2)",
		Header: []string{"device", "chips/rank", "code", "storage ovh", "pin-fault fail", "2-cell fail"},
	}
	cases := []struct {
		label, spec string
	}{
		{"DDR4 x4", "pair@ddr4x4"},
		{"DDR4 x8", "pair@ddr4x8"},
		{"DDR4 x16", "pair"},
		{"DDR5 x16", "pair@ddr5x16"},
	}
	for _, c := range cases {
		s := schemes.MustNew(c.spec).(*core.Scheme)
		pin, err := reliability.CoverageCtx(ctx, s, "pin", trials, seed, func(rng *rand.Rand, st *ecc.Stored) {
			ecc.InjectAccessFault(rng, st, faults.PermanentPin, -1)
		}, opts)
		if err != nil {
			return nil, err
		}
		cells, err := reliability.CoverageCtx(ctx, s, "2cell", trials, seed, func(rng *rand.Rand, st *ecc.Stored) {
			chip := rng.Intn(st.Org.ChipsPerRank)
			ecc.InjectAccessFault(rng, st, faults.PermanentCell, chip)
			ecc.InjectAccessFault(rng, st, faults.PermanentCell, chip)
		}, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.label,
			fmt.Sprintf("%d", s.Org().ChipsPerRank),
			fmt.Sprintf("RS(%d,%d)", s.CodewordLength(), s.CodewordLength()-4),
			pct(s.StorageOverhead()),
			sci(pin.Rates.Fail()),
			sci(cells.Rates.Fail()),
		)
	}
	t.Notes = append(t.Notes,
		"the 4-symbol parity floor is 100% overhead on x4 but 25% on x16: pin-aligned RS wants wide devices")
	return t, nil
}

// F12Repair compares 7-year failure probability without and with a
// post-package-repair budget. Only *detected* failures can trigger
// repair, so schemes that convert failures into DUEs (PAIR) benefit
// fully while miscorrecting schemes (IECC) and alias-prone ones (XED)
// keep dying silently — the operational argument for low SDC. It is the
// blocking wrapper around F12RepairCtx.
func F12Repair(schemes []ecc.Scheme, devices int, seed int64) *Table {
	return must(F12RepairCtx(context.Background(), schemes, devices, seed, campaign.Options{}))
}

// F12RepairCtx runs the post-package-repair comparison as cancellable,
// checkpointable campaigns; the base and PPR populations run under
// distinct campaign sublabels since they share scheme, devices and seed.
func F12RepairCtx(ctx context.Context, schemes []ecc.Scheme, devices int, seed int64, opts campaign.Options) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("F12: 7-year failure probability without / with post-package repair (budget 4; %d ranks)", devices),
		Header: []string{"scheme", "no repair", "with PPR", "improvement", "repairs used", "residual SDC"},
	}
	for _, s := range schemes {
		base, err := reliability.RunLifetimeCtx(ctx, reliability.LifetimeConfig{
			Scheme: s, Devices: devices, Seed: seed,
		}, opts.Sublabel("base"))
		if err != nil {
			return nil, err
		}
		ppr, err := reliability.RunLifetimeCtx(ctx, reliability.LifetimeConfig{
			Scheme: s, Devices: devices, Seed: seed, RepairBudget: 4,
		}, opts.Sublabel("ppr"))
		if err != nil {
			return nil, err
		}
		imp := "-"
		if ppr.FailProb() > 0 {
			imp = fmt.Sprintf("%.1fx", base.FailProb()/ppr.FailProb())
		} else if base.FailProb() > 0 {
			imp = ">max"
		}
		t.AddRow(s.Name(), sci(base.FailProb()), sci(ppr.FailProb()), imp,
			fmt.Sprintf("%d", ppr.Repairs), sci(ppr.SDCProb()))
	}
	t.Notes = append(t.Notes,
		"PPR can only act on detected (DUE) failures; silent corruption is unrepairable by construction")
	return t, nil
}

// F10Sparing quantifies the pin-sparing (erasure) extension: a device
// with d dead pins on one chip, with and without the repair map, under
// an additional fresh cell error per access. It is the blocking wrapper
// around F10SparingCtx.
func F10Sparing(trials int, seed int64) *Table {
	return must(F10SparingCtx(context.Background(), trials, seed, campaign.Options{}))
}

// F10SparingCtx runs the pin-sparing comparison as cancellable,
// checkpointable campaigns; each dead-pin count runs under a dead=<n>
// campaign sublabel since the schemes and labels repeat across counts.
func F10SparingCtx(ctx context.Context, trials int, seed int64, opts campaign.Options) (*Table, error) {
	t := &Table{
		Title:  "F10: decode outcome with dead pins, plain vs spared (erasure) decoding, +1 fresh cell",
		Header: []string{"dead pins", "plain fail", "spared fail"},
	}
	for _, dead := range []int{0, 1, 2} {
		plain := schemes.MustNew("pair")
		pins := make([]int, dead)
		spareList := ""
		for i := range pins {
			pins[i] = 2 + 5*i
			if i > 0 {
				spareList += "."
			}
			spareList += fmt.Sprintf("%d", pins[i])
		}
		// Built through the spec grammar — the same string a CLI user
		// would pass (dead=2 is "pair:spare=2.7").
		sparedScheme := schemes.MustNew("pair:spare=" + spareList)
		inject := func(rng *rand.Rand, st *ecc.Stored) {
			ci := st.Chips[0]
			for _, p := range pins {
				ci.Data.SetPinSymbolPart(p, 0, ci.Data.PinSymbolPart(p, 0)^byte(1+rng.Intn(255)))
			}
			ecc.InjectAccessFault(rng, st, faults.PermanentCell, 0)
		}
		dOpts := opts.Sublabel(fmt.Sprintf("dead=%d", dead))
		p, err := reliability.CoverageCtx(ctx, plain, "plain", trials, seed, inject, dOpts)
		if err != nil {
			return nil, err
		}
		sp, err := reliability.CoverageCtx(ctx, sparedScheme, "spared", trials, seed, inject, dOpts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", dead), sci(p.Rates.Fail()), sci(sp.Rates.Fail()))
	}
	t.Notes = append(t.Notes,
		"sparing turns known-bad pins into erasures: budget 2*errors + erasures <= 4, so two dead pins + one fresh error still decode")
	return t, nil
}
