package experiments

import (
	"strings"
	"testing"
)

func TestExtendedSchemesIncludeRankLevel(t *testing.T) {
	names := map[string]bool{}
	for _, s := range ExtendedSchemes() {
		names[s.Name()] = true
	}
	for _, want := range []string{"iecc", "xed", "duo", "pair", "secded", "duo-rank"} {
		if !names[want] {
			t.Fatalf("extended set missing %s", want)
		}
	}
}

func TestF8ScrubSweepShape(t *testing.T) {
	tb := F8ScrubSweep(CommoditySchemes()[:2], 150, 1)
	if len(tb.Rows) != 2 || len(tb.Header) != 5 {
		t.Fatalf("F8 shape wrong: %d rows, %d cols", len(tb.Rows), len(tb.Header))
	}
	if !strings.Contains(tb.Render(), "scrub") {
		t.Fatal("F8 render broken")
	}
}

func TestF9DDR5Story(t *testing.T) {
	tb := F9DDR5(250, 1)
	if len(tb.Rows) != 4 {
		t.Fatalf("F9 rows %d", len(tb.Rows))
	}
	// Row 2 is DDR5 base (t=1): pin faults must fail nearly always.
	// Row 3 is DDR5 expanded (t=2): pin faults must never fail.
	if tb.Rows[2][3] == "0" {
		t.Fatalf("DDR5 t=1 pin faults reported as safe: %v", tb.Rows[2])
	}
	if tb.Rows[3][3] != "0" {
		t.Fatalf("DDR5 t=2 pin faults failing: %v", tb.Rows[3])
	}
	// DDR4 rows: both configurations correct pin faults.
	if tb.Rows[0][3] != "0" || tb.Rows[1][3] != "0" {
		t.Fatalf("DDR4 pin faults failing: %v / %v", tb.Rows[0], tb.Rows[1])
	}
}

func TestF12RepairStory(t *testing.T) {
	tb := F12Repair(CommoditySchemes(), 3000, 1)
	if len(tb.Rows) != len(CommoditySchemes()) {
		t.Fatalf("F12 rows %d", len(tb.Rows))
	}
	var pairRow, xedRow []string
	for _, row := range tb.Rows {
		switch row[0] {
		case "pair":
			pairRow = row
		case "xed":
			xedRow = row
		}
	}
	if pairRow == nil || xedRow == nil {
		t.Fatal("schemes missing from F12")
	}
	// XED's failures are silent: repair must not help it (improvement 1.0x
	// or no failures at all).
	if xedRow[4] != "0" {
		t.Fatalf("XED consumed repairs: %v", xedRow)
	}
	// PAIR must consume repairs (its failures are DUEs).
	if pairRow[4] == "0" {
		t.Fatalf("PAIR consumed no repairs: %v", pairRow)
	}
}

func TestF10SparingStory(t *testing.T) {
	tb := F10Sparing(250, 1)
	if len(tb.Rows) != 3 {
		t.Fatalf("F10 rows %d", len(tb.Rows))
	}
	// Two dead pins + fresh cell: plain decode fails, spared succeeds.
	last := tb.Rows[2]
	if last[1] == "0" {
		t.Fatalf("plain decode with 2 dead pins reported safe: %v", last)
	}
	if last[2] != "0" {
		t.Fatalf("spared decode failing: %v", last)
	}
}
