// Package experiments defines every table and figure of the PAIR study's
// evaluation as a runnable, renderable artifact. The pairsim CLI and the
// repository benchmarks are thin wrappers over these functions; the
// experiment identifiers (T1, F1, ...) are indexed in DESIGN.md and the
// measured-vs-claimed record lives in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a fixed-width text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// sci formats a probability in scientific notation, with exact zero shown
// as "0" (meaning "no failures observed at this trial count").
func sci(x float64) string {
	if x == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", x)
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
