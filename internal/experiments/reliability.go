package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"pair/internal/campaign"
	"pair/internal/core"
	"pair/internal/ecc"
	"pair/internal/faults"
	"pair/internal/reliability"
	"pair/internal/schemes"
	"pair/internal/stats"
)

// must unwraps a (result, error) pair for the blocking experiment
// wrappers, whose campaigns run without a cancellable context or
// checkpointing and therefore cannot fail.
func must[T any](v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return v
}

// CommoditySchemes returns the x16 evaluation set in presentation order,
// as defined by the registry's "commodity" set.
func CommoditySchemes() []ecc.Scheme {
	return schemes.MustBuildSet("commodity")
}

// T1Config renders the scheme-configuration comparison table. The rows
// come straight from the registry's "t1" set: each entry carries its
// codec/granularity/alignment/correction metadata, and the storage
// overhead is read off the constructed scheme — registering a scheme is
// all it takes to appear here.
func T1Config() *Table {
	t := &Table{
		Title:  "T1: evaluated ECC configurations (commodity DDR4 x16, BL8; SECDED on 9x x8)",
		Header: []string{"scheme", "code", "granularity", "symbol alignment", "corrects", "storage ovh", "bus change"},
	}
	set, err := schemes.SetByID("t1")
	if err != nil {
		panic(err)
	}
	for _, spec := range set.Specs {
		e, s := mustEntry(spec)
		t.AddRow(s.Name(), e.Codec, e.Granularity, e.Alignment, e.Corrects, pct(s.StorageOverhead()), e.BusChange)
	}
	t.Notes = append(t.Notes,
		"XED corrects one *flagged* chip per access via the rank-XOR image; unflagged (aliased) corruption escapes.",
		"PAIR expansion symbols live in spare columns and never cross the DQ pins.")
	return t
}

// mustEntry resolves a spec string to its registry entry plus a built
// scheme, for tables that mix entry metadata with live scheme state.
func mustEntry(spec string) (*schemes.Entry, ecc.Scheme) {
	parsed, err := schemes.ParseSpec(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	e, ok := schemes.Lookup(parsed.ID)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown scheme %q", parsed.ID))
	}
	return e, schemes.MustNew(spec)
}

// SweepSettings sizes the F1/F2/F6 semi-analytic sweeps.
type SweepSettings struct {
	Trials int     // Monte-Carlo trials per conditioned flip count
	MaxK   int     // largest conditioned flip count
	BERLo  float64 // sweep range
	BERHi  float64
	Points int
	Seed   int64
	// Faults optionally layers an ambient fault scenario over every sweep
	// trial (the -faults flag); nil reproduces the frozen default sweeps.
	Faults faults.Scenario
}

// DefaultSweep returns publication-scale settings.
func DefaultSweep() SweepSettings {
	return SweepSettings{Trials: 20000, MaxK: 12, BERLo: 1e-8, BERHi: 1e-4, Points: 9, Seed: 1}
}

// QuickSweep returns bench/CI-scale settings.
func QuickSweep() SweepSettings {
	return SweepSettings{Trials: 2500, MaxK: 8, BERLo: 1e-8, BERHi: 1e-4, Points: 5, Seed: 1}
}

// SweepResult holds the F1/F2 series for a scheme set.
type SweepResult struct {
	BERs     []float64
	Schemes  []string
	Fail     [][]float64 // [scheme][ber] DUE+SDC probability per line access
	SDC      [][]float64 // [scheme][ber]
	Profiles []*reliability.ConditionalProfile
}

// F1F2 runs the inherent-fault reliability sweep over the given schemes.
// It is the blocking wrapper around F1F2Ctx.
func F1F2(schemes []ecc.Scheme, st SweepSettings) *SweepResult {
	return must(F1F2Ctx(context.Background(), schemes, st, campaign.Options{}))
}

// F1F2Ctx runs the inherent-fault reliability sweep as cancellable,
// checkpointable campaigns (one per scheme per conditioned flip count).
func F1F2Ctx(ctx context.Context, schemes []ecc.Scheme, st SweepSettings, opts campaign.Options) (*SweepResult, error) {
	bers := reliability.LogspaceBERs(st.BERLo, st.BERHi, st.Points)
	res := &SweepResult{BERs: bers}
	for _, s := range schemes {
		prof, err := reliability.BuildProfileCtx(ctx, s, reliability.SweepConfig{MaxK: st.MaxK, Trials: st.Trials, Seed: st.Seed, Faults: st.Faults}, opts)
		if err != nil {
			return nil, err
		}
		res.Profiles = append(res.Profiles, prof)
		res.Schemes = append(res.Schemes, s.Name())
		fail := make([]float64, len(bers))
		sdc := make([]float64, len(bers))
		for i, b := range bers {
			r := prof.AtBER(b)
			fail[i] = r.Fail()
			sdc[i] = r.SDC
		}
		res.Fail = append(res.Fail, fail)
		res.SDC = append(res.SDC, sdc)
	}
	return res, nil
}

// RenderF1 renders the uncorrectable/failure probability series.
func (r *SweepResult) RenderF1() string {
	t := &Table{
		Title:  "F1: P(DUE or SDC) per 64B line access vs inherent weak-cell BER",
		Header: append([]string{"BER"}, r.Schemes...),
	}
	for i, b := range r.BERs {
		row := []string{sci(b)}
		for s := range r.Schemes {
			row = append(row, sci(r.Fail[s][i]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, r.headline()...)
	return t.Render()
}

// RenderF2 renders the SDC-only series.
func (r *SweepResult) RenderF2() string {
	t := &Table{
		Title:  "F2: P(SDC, silent corruption) per 64B line access vs inherent weak-cell BER",
		Header: append([]string{"BER"}, r.Schemes...),
	}
	for i, b := range r.BERs {
		row := []string{sci(b)}
		for s := range r.Schemes {
			row = append(row, sci(r.SDC[s][i]))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// headline extracts the abstract's comparison ratios from the sweep.
func (r *SweepResult) headline() []string {
	idx := map[string]int{}
	for i, n := range r.Schemes {
		idx[n] = i
	}
	pairIdx, okP := idx["pair"]
	var notes []string
	if !okP {
		return nil
	}
	for _, rival := range []string{"xed", "duo"} {
		ri, ok := idx[rival]
		if !ok {
			continue
		}
		best := 0.0
		at := 0.0
		for i := range r.BERs {
			ratio := stats.Ratio(r.Fail[ri][i], r.Fail[pairIdx][i])
			if ratio > best {
				best = ratio
				at = r.BERs[i]
			}
		}
		notes = append(notes, fmt.Sprintf("max reliability ratio %s/pair = %.1e (at BER %.0e)", rival, best, at))
	}
	return notes
}

// T2Coverage runs the fault-type coverage table over the scheme set. It
// is the blocking wrapper around T2CoverageCtx.
func T2Coverage(schemes []ecc.Scheme, trials int, seed int64) *Table {
	return must(T2CoverageCtx(context.Background(), schemes, trials, seed, campaign.Options{}))
}

// T2CoverageCtx runs the fault-type coverage table as cancellable,
// checkpointable campaigns (one per scheme per fault pattern).
func T2CoverageCtx(ctx context.Context, schemes []ecc.Scheme, trials int, seed int64, opts campaign.Options) (*Table, error) {
	return T2CoverageEnvCtx(ctx, schemes, trials, seed, nil, opts)
}

// T2CoverageEnvCtx is T2CoverageCtx with an optional ambient fault
// scenario corrupting every trial on top of each row's pattern. A nil
// env reproduces the frozen default table (same campaign labels and
// checkpoints); a non-nil env tags the title with its canonical spec.
func T2CoverageEnvCtx(ctx context.Context, schemes []ecc.Scheme, trials int, seed int64, env faults.Scenario, opts campaign.Options) (*Table, error) {
	title := fmt.Sprintf("T2: outcome by injected fault pattern (%d trials each; CE/DUE/SDC shares)", trials)
	if env != nil {
		title = fmt.Sprintf("T2: outcome by injected fault pattern under ambient %s (%d trials each; CE/DUE/SDC shares)", env.Spec(), trials)
	}
	t := &Table{
		Title:  title,
		Header: []string{"pattern"},
	}
	for _, s := range schemes {
		t.Header = append(t.Header, s.Name())
	}
	for _, l := range reliability.StandardCoverageLabels() {
		row := []string{l.Label}
		for _, s := range schemes {
			r, err := reliability.CoverageEnvCtx(ctx, s, l.Label, trials, seed, l.Inject, env, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f/%.0f/%.0f", r.Rates.CE*100, r.Rates.DUE*100, r.Rates.SDC*100))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "cells are CE/DUE/SDC percentages; 100/0/0 = always corrected")
	return t, nil
}

// F3Lifetime runs the lifetime Monte-Carlo for each scheme and renders
// the 7-year failure and SDC probabilities plus the yearly CDF. It is
// the blocking wrapper around F3LifetimeCtx.
func F3Lifetime(schemes []ecc.Scheme, devices int, seed int64) *Table {
	return must(F3LifetimeCtx(context.Background(), schemes, devices, seed, campaign.Options{}))
}

// F3LifetimeCtx runs the lifetime Monte-Carlo as cancellable,
// checkpointable campaigns (one per scheme).
func F3LifetimeCtx(ctx context.Context, schemes []ecc.Scheme, devices int, seed int64, opts campaign.Options) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("F3: 7-year mission failure probability, field FIT rates, %d ranks, 24h scrub", devices),
		Header: []string{"scheme", "P(fail)", "P(SDC)", "P(DUE)", "yearly CDF"},
	}
	for _, s := range schemes {
		r, err := reliability.RunLifetimeCtx(ctx, reliability.LifetimeConfig{
			Scheme:  s,
			Devices: devices,
			Seed:    seed,
		}, opts)
		if err != nil {
			return nil, err
		}
		cdf := ""
		for i, c := range r.FailYearCDF {
			if i > 0 {
				cdf += " "
			}
			cdf += sci(c)
		}
		t.AddRow(s.Name(), sci(r.FailProb()), sci(r.SDCProb()),
			sci(float64(r.DUEFailures)/float64(r.Devices)), cdf)
	}
	t.Notes = append(t.Notes,
		"operational (field-FIT) faults; inherent weak-cell hazards are the F1/F2 sweeps",
		"XED's rank-XOR reconstructs whole-chip faults, so its DUE column benefits here; its SDC column shows the aliasing hazard")
	return t, nil
}

// F6Expandability sweeps the PAIR expansion level at a fixed adverse
// BER. It is the blocking wrapper around F6ExpandabilityCtx.
func F6Expandability(trials int, seed int64) *Table {
	return must(F6ExpandabilityCtx(context.Background(), trials, seed, campaign.Options{}))
}

// F6ExpandabilityCtx sweeps the PAIR expansion level as cancellable,
// checkpointable campaigns. Expansion levels 1..4 all report the scheme
// name "pair", so each level runs under an exp=<n> campaign sublabel.
func F6ExpandabilityCtx(ctx context.Context, trials int, seed int64, opts campaign.Options) (*Table, error) {
	const ber = 1e-5
	t := &Table{
		Title:  fmt.Sprintf("F6: PAIR reliability vs expansion level (inherent BER %.0e)", ber),
		Header: []string{"config", "codeword", "t", "storage ovh", "P(fail)", "P(SDC)"},
	}
	for exp := 0; exp <= 4; exp++ {
		s := schemes.MustNew(fmt.Sprintf("pair:exp=%d", exp)).(*core.Scheme)
		prof, err := reliability.BuildProfileCtx(ctx, s, reliability.SweepConfig{MaxK: 8, Trials: trials, Seed: seed},
			opts.Sublabel(fmt.Sprintf("exp=%d", exp)))
		if err != nil {
			return nil, err
		}
		r := prof.AtBER(ber)
		t.AddRow(
			fmt.Sprintf("base+%d", exp),
			fmt.Sprintf("RS(%d,16)", s.CodewordLength()),
			fmt.Sprintf("%d", s.T()),
			pct(s.StorageOverhead()),
			sci(r.Fail()),
			sci(r.SDC),
		)
	}
	t.Notes = append(t.Notes, "each +1 expansion symbol is appended to spare columns without rewriting stored data")
	return t, nil
}

// F7Burst measures burst-error correction vs burst length, along pins
// (PAIR's aligned axis) and across pins (the crosstalk axis). It is the
// blocking wrapper around F7BurstCtx.
func F7Burst(schemes []ecc.Scheme, trials int, seed int64) *Table {
	return must(F7BurstCtx(context.Background(), schemes, trials, seed, campaign.Options{}))
}

// F7BurstCtx measures burst-error correction as cancellable,
// checkpointable campaigns; each burst length runs under a b=<n>
// campaign sublabel since the coverage labels repeat across lengths.
func F7BurstCtx(ctx context.Context, schemes []ecc.Scheme, trials int, seed int64, opts campaign.Options) (*Table, error) {
	t := &Table{
		Title:  "F7: failure rate under burst errors (along-pin b@1pin / across-pin b@1beat)",
		Header: []string{"burst len"},
	}
	for _, s := range schemes {
		t.Header = append(t.Header, s.Name())
	}
	for _, b := range []int{2, 4, 8} {
		row := []string{fmt.Sprintf("%d", b)}
		bOpts := opts.Sublabel(fmt.Sprintf("b=%d", b))
		for _, s := range schemes {
			blen := b
			along, err := reliability.CoverageCtx(ctx, s, "pin-burst", trials, seed, func(rng *rand.Rand, st *ecc.Stored) {
				faults.InjectPinBurst(rng, st.Chips[rng.Intn(st.Org.ChipsPerRank)].Data, blen)
			}, bOpts)
			if err != nil {
				return nil, err
			}
			across, err := reliability.CoverageCtx(ctx, s, "beat-burst", trials, seed, func(rng *rand.Rand, st *ecc.Stored) {
				faults.InjectBeatBurst(rng, st.Chips[rng.Intn(st.Org.ChipsPerRank)].Data, blen)
			}, bOpts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%s / %s", sci(along.Rates.Fail()), sci(across.Rates.Fail())))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "PAIR corrects every along-pin burst by construction; across-pin bursts are its documented trade-off")
	return t, nil
}
