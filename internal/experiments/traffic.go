package experiments

import (
	"fmt"

	"pair/internal/ecc"
	"pair/internal/memsim"
	"pair/internal/trace"
)

// F4PerformanceOn is F4Performance on a specific memory profile (nil =
// the DDR4 default).
func F4PerformanceOn(schemes []ecc.Scheme, requests int, prof *memsim.Profile) (*PerfResult, error) {
	suite := trace.SPECLike(requests)
	return perfOnProfile(schemes, suite, prof)
}

// F4ProfileGeomeans runs the SPEC-like suite on every given profile spec
// and renders the per-scheme geomean columns side by side: how each ECC
// scheme's cost model lands across memory generations. DDR5's BL16 makes
// DUO's +1 extension beat relatively cheaper (1/16 vs 1/8 of a burst)
// while XED's whole-burst parity writes stay expensive everywhere.
func F4ProfileGeomeans(set []ecc.Scheme, requests int, specs []string) (*Table, error) {
	t := &Table{
		Title:  "F4d: normalized performance geomean per scheme across profiles",
		Header: []string{"scheme"},
	}
	cols := make([]*PerfResult, len(specs))
	for pi, spec := range specs {
		prof, err := memsim.NewProfile(spec)
		if err != nil {
			return nil, err
		}
		t.Header = append(t.Header, prof.Spec())
		res, err := F4PerformanceOn(set, requests, prof)
		if err != nil {
			return nil, err
		}
		cols[pi] = res
	}
	for si, s := range set {
		row := []string{s.Name()}
		for pi := range specs {
			row = append(row, fmt.Sprintf("%.3f", cols[pi].GeoMean[si]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"geomean over the ten SPEC-like workloads, normalized to No-ECC on the same profile")
	return t, nil
}

// f14Points are the offered-load points of the tail-latency experiment:
// a Poisson ramp towards saturation plus a bursty and a diurnal process
// at the mid load, where arrival variance — not mean load — moves the
// tail.
type f14Point struct {
	arrival trace.Arrival
	load    float64
}

func f14Points() []f14Point {
	return []f14Point{
		{trace.PoissonArrival, 0.05},
		{trace.PoissonArrival, 0.10},
		{trace.PoissonArrival, 0.20},
		{trace.PoissonArrival, 0.35},
		{trace.BurstyArrival, 0.20},
		{trace.DiurnalArrival, 0.20},
	}
}

// F14TailLatency drives an open-loop traffic front end — many concurrent
// users sharing the channels — through the timing simulator at a sweep
// of offered loads and renders p99/p999 read latency per scheme. The
// open loop means queues grow when a scheme's extra traffic pushes the
// system past its knee: exactly where ECC overheads become user-visible.
func F14TailLatency(set []ecc.Scheme, requests int, prof *memsim.Profile) (*Table, error) {
	title := "F14: tail read latency (p99 / p999, ns) vs offered load"
	if prof != nil {
		title += " [" + prof.Spec() + "]"
	}
	t := &Table{
		Title:  title,
		Header: []string{"arrival@load"},
	}
	for _, s := range set {
		t.Header = append(t.Header, s.Name())
	}
	for i, pt := range f14Points() {
		wl := trace.Traffic(trace.TrafficParams{
			Requests: requests, Arrival: pt.arrival, Load: pt.load,
			Users: 32, ReadFrac: 0.7, MaskedFrac: 0.2, Lines: 1 << 20,
			HotFraction: 0.3, Seed: 300 + int64(i),
		})
		row := []string{fmt.Sprintf("%s@%.2f", pt.arrival, pt.load)}
		for _, s := range set {
			cfg := simConfig(prof)
			cfg.Cost = s.Cost()
			res, err := runSim(simLabel(prof, s.Name()+"/f14/"+wl.Name), cfg, wl)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f/%.0f",
				res.P99ReadLatencyNS(cfg.Timing), res.P999ReadLatencyNS(cfg.Timing)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"open-loop arrivals: queues are not back-pressured, so past the knee the tail grows without bound",
		"bursty/diurnal rows hold the mid load constant and move only the arrival variance")
	return t, nil
}
