package experiments

import (
	"strconv"
	"strings"
	"testing"

	"pair/internal/memsim"
)

func TestF4ProfileGeomeansShape(t *testing.T) {
	set := PerfSchemes()
	tb, err := F4ProfileGeomeans(set, 600, []string{"ddr4-2400", "ddr5-4800"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Header) != 3 || tb.Header[1] != "ddr4-2400" || tb.Header[2] != "ddr5-4800" {
		t.Fatalf("header %v", tb.Header)
	}
	if len(tb.Rows) != len(set) {
		t.Fatalf("rows %d, want %d", len(tb.Rows), len(set))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v <= 0 || v > 1.001 {
				t.Fatalf("geomean cell %q out of (0,1]", cell)
			}
		}
		// The baseline scheme normalizes to exactly 1.0 on every profile.
		if row[0] == "none" && (row[1] != "1.000" || row[2] != "1.000") {
			t.Fatalf("none row %v", row)
		}
	}
	if _, err := F4ProfileGeomeans(set, 100, []string{"ddr6"}); err == nil {
		t.Fatal("unknown profile spec accepted")
	}
}

func TestF14TailLatencyShape(t *testing.T) {
	set := PerfSchemes()
	prof := memsim.MustProfile("ddr5-4800")
	tb, err := F14TailLatency(set, 1500, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Title, "ddr5-4800") {
		t.Fatalf("title %q misses profile", tb.Title)
	}
	if len(tb.Rows) != len(f14Points()) {
		t.Fatalf("rows %d, want %d", len(tb.Rows), len(f14Points()))
	}
	parse := func(cell string) (p99, p999 float64) {
		parts := strings.Split(cell, "/")
		if len(parts) != 2 {
			t.Fatalf("bad tail cell %q", cell)
		}
		a, err1 := strconv.ParseFloat(parts[0], 64)
		b, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad tail cell %q", cell)
		}
		return a, b
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatal("row width mismatch")
		}
		for _, cell := range row[1:] {
			p99, p999 := parse(cell)
			if p99 <= 0 || p999 < p99 {
				t.Fatalf("tail ordering broken in %q", cell)
			}
		}
	}
	// Load ramp: the Poisson p99 at 0.35 req/cycle must exceed the p99 at
	// 0.05 for the baseline scheme (open-loop queueing).
	lo, _ := parse(tb.Rows[0][1])
	hi, _ := parse(tb.Rows[3][1])
	if hi <= lo {
		t.Fatalf("p99 did not grow with load: %.0f -> %.0f", lo, hi)
	}
}

func TestF4LatencyOnProfileRuns(t *testing.T) {
	tb, err := F4LatencyOn(PerfSchemes(), 1000, memsim.MustProfile("ddr5-4800"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if strings.Count(cell, "/") != 2 {
				t.Fatalf("want mean/p99/p999 cell, got %q", cell)
			}
		}
	}
}

func TestF5WriteSweepOnProfileRuns(t *testing.T) {
	tb, err := F5WriteSweepOn(PerfSchemes(), 800, memsim.MustProfile("ddr5-4800"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Title, "ddr5-4800") {
		t.Fatalf("title %q misses profile", tb.Title)
	}
}
