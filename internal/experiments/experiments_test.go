package experiments

import (
	"strings"
	"testing"
)

func tiny() SweepSettings {
	return SweepSettings{Trials: 400, MaxK: 5, BERLo: 1e-7, BERHi: 1e-4, Points: 4, Seed: 3}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "n")
	out := tb.Render()
	for _, want := range []string{"T\n", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSciAndPct(t *testing.T) {
	if sci(0) != "0" {
		t.Fatal("sci(0)")
	}
	if sci(1.5e-3) != "1.50e-03" {
		t.Fatalf("sci = %q", sci(1.5e-3))
	}
	if pct(0.125) != "12.5%" {
		t.Fatalf("pct = %q", pct(0.125))
	}
}

func TestT1ConfigComplete(t *testing.T) {
	tb := T1Config()
	out := tb.Render()
	for _, s := range []string{"none", "iecc", "secded", "xed", "duo", "pair-base", "pair"} {
		if !strings.Contains(out, s) {
			t.Fatalf("T1 missing scheme %s", s)
		}
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("row width %d != header width %d", len(row), len(tb.Header))
		}
	}
}

func TestF1F2ShapeAndOrdering(t *testing.T) {
	r := F1F2(CommoditySchemes(), tiny())
	if len(r.Schemes) != 5 || len(r.Fail) != 5 || len(r.SDC) != 5 {
		t.Fatalf("sweep shape wrong: %d schemes", len(r.Schemes))
	}
	idx := map[string]int{}
	for i, n := range r.Schemes {
		idx[n] = i
	}
	// The paper's central ordering at every BER: pair strictly better
	// than iecc and xed on total failures.
	for i := range r.BERs {
		pairF := r.Fail[idx["pair"]][i]
		if pairF > r.Fail[idx["iecc"]][i] || pairF > r.Fail[idx["xed"]][i] {
			t.Fatalf("PAIR not best at BER %v", r.BERs[i])
		}
	}
	// Rendering works and carries the headline notes.
	f1 := r.RenderF1()
	if !strings.Contains(f1, "xed/pair") {
		t.Fatalf("F1 headline missing:\n%s", f1)
	}
	if !strings.Contains(r.RenderF2(), "SDC") {
		t.Fatal("F2 render broken")
	}
}

func TestT2CoverageShape(t *testing.T) {
	tb := T2Coverage(CommoditySchemes(), 150, 1)
	if len(tb.Rows) < 8 {
		t.Fatalf("T2 has %d rows", len(tb.Rows))
	}
	// The pin row must show PAIR at 100/0/0 (always corrected).
	var pinRow []string
	for _, row := range tb.Rows {
		if row[0] == "pin" {
			pinRow = row
		}
	}
	if pinRow == nil {
		t.Fatal("no pin row")
	}
	pairCol := 0
	for i, h := range tb.Header {
		if h == "pair" {
			pairCol = i
		}
	}
	if pinRow[pairCol] != "100/0/0" {
		t.Fatalf("PAIR pin coverage = %s, want 100/0/0", pinRow[pairCol])
	}
}

func TestF3LifetimeSmoke(t *testing.T) {
	tb := F3Lifetime(CommoditySchemes()[:2], 150, 1)
	if len(tb.Rows) != 2 {
		t.Fatalf("F3 rows %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Render(), "7-year") {
		t.Fatal("F3 render broken")
	}
}

func TestF4PerformanceHeadlines(t *testing.T) {
	r, err := F4Performance(PerfSchemes(), 2500)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 10 {
		t.Fatalf("%d workloads", len(r.Workloads))
	}
	idx := map[string]int{}
	for i, n := range r.Schemes {
		idx[n] = i
	}
	// Baseline normalizes to exactly 1.0 everywhere.
	for wi := range r.Workloads {
		if r.Normalized[wi][idx["none"]] != 1.0 {
			t.Fatal("baseline not 1.0")
		}
	}
	// The abstract's ordering: pair >= duo >= xed in geomean.
	gm := r.GeoMean
	if !(gm[idx["pair"]] >= gm[idx["duo"]] && gm[idx["duo"]] >= gm[idx["xed"]]) {
		t.Fatalf("performance ordering broken: pair=%v duo=%v xed=%v",
			gm[idx["pair"]], gm[idx["duo"]], gm[idx["xed"]])
	}
	// PAIR's advantage over XED must be visible (paper: ~14%).
	adv := gm[idx["pair"]]/gm[idx["xed"]] - 1
	if adv < 0.05 {
		t.Fatalf("PAIR over XED only %.1f%%", adv*100)
	}
	// PAIR vs DUO "similar performance": within a few percent.
	if d := gm[idx["pair"]]/gm[idx["duo"]] - 1; d < 0 || d > 0.10 {
		t.Fatalf("PAIR vs DUO gap %.1f%% out of band", d*100)
	}
	if !strings.Contains(r.Render(), "geomean") {
		t.Fatal("F4 render broken")
	}
}

func TestF5WriteSweepMonotone(t *testing.T) {
	tb, err := F5WriteSweep(PerfSchemes(), 2500)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("F5 rows %d", len(tb.Rows))
	}
	// XED's normalized performance must degrade as writes increase.
	xedCol := -1
	for i, h := range tb.Header {
		if h == "xed" {
			xedCol = i
		}
	}
	first := tb.Rows[0][xedCol]
	last := tb.Rows[len(tb.Rows)-1][xedCol]
	if !(last < first) { // string compare works for "0.xxx" fixed format
		t.Fatalf("XED not degrading with writes: %s -> %s", first, last)
	}
}

func TestF6ExpandabilityMonotone(t *testing.T) {
	tb := F6Expandability(400, 1)
	if len(tb.Rows) != 5 {
		t.Fatalf("F6 rows %d", len(tb.Rows))
	}
	if tb.Rows[0][1] != "RS(18,16)" || tb.Rows[4][1] != "RS(22,16)" {
		t.Fatalf("F6 codewords wrong: %v", tb.Rows)
	}
}

func TestF7BurstPAIRColumn(t *testing.T) {
	tb := F7Burst(CommoditySchemes(), 200, 1)
	pairCol := -1
	for i, h := range tb.Header {
		if h == "pair" {
			pairCol = i
		}
	}
	// Along-pin bursts (first number of each cell) must be 0 for PAIR.
	for _, row := range tb.Rows {
		if !strings.HasPrefix(row[pairCol], "0 /") {
			t.Fatalf("PAIR failed along-pin burst: %v", row)
		}
	}
}

func TestT3ComplexityRows(t *testing.T) {
	tb := T3Complexity()
	if len(tb.Rows) != 5 {
		t.Fatalf("T3 rows %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatal("T3 row width mismatch")
		}
	}
}
