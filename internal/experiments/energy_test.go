package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestT4BusEnergyOrdering(t *testing.T) {
	tb := T4BusEnergy()
	if len(tb.Rows) != 6 {
		t.Fatalf("T4 rows %d", len(tb.Rows))
	}
	mix := map[string]float64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad mix cell %q", row[4])
		}
		mix[row[0]] = v
	}
	if !(mix["pair"] == mix["none"] && mix["pair"] < mix["duo"] && mix["duo"] < mix["xed"]) {
		t.Fatalf("energy ordering broken: %v", mix)
	}
	if !strings.Contains(tb.Render(), "catch-words") {
		t.Fatal("XED DBI conflict not rendered")
	}
}

func TestF11ScrubTraffic(t *testing.T) {
	tb, err := F11ScrubTraffic(3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("F11 rows %d", len(tb.Rows))
	}
	// Normalized performance must be monotone non-increasing with rate.
	prev := 2.0
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[3])
		}
		if v > prev+1e-9 {
			t.Fatalf("scrub cost not monotone: %v", tb.Rows)
		}
		prev = v
	}
}

func TestF4LatencyTable(t *testing.T) {
	tb, err := F4Latency(PerfSchemes(), 2500)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("F4b rows %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatal("row width mismatch")
		}
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "/") {
				t.Fatalf("bad latency cell %q", cell)
			}
		}
	}
}
