package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"pair/internal/campaign"
	"pair/internal/failpoint"
)

// TestT2CoverageHardeningOptionsPropagate proves the failure-hardening
// knobs flow from the experiment layer down to the campaign runner: a
// T2 coverage sweep whose checkpoint writes always fail still completes
// (memory-only mode), its table matches an unhampered run, and the
// report records the degradation; a panicking shard with a retry budget
// is likewise absorbed without changing a single cell.
func TestT2CoverageHardeningOptionsPropagate(t *testing.T) {
	defer failpoint.Reset()
	schemes := CommoditySchemes()[:2]
	clean, err := T2CoverageCtx(context.Background(), schemes, 300, 1, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}

	failpoint.Arm(campaign.FailpointWrite, failpoint.Action{Err: errors.New("disk gone")})
	rep := new(campaign.Report)
	got, err := T2CoverageCtx(context.Background(), schemes, 300, 1, campaign.Options{
		CheckpointDir:     t.TempDir(),
		Report:            rep,
		CheckpointBackoff: campaign.Backoff{Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatalf("degraded t2 run failed: %v", err)
	}
	if degraded, _ := rep.Degraded(); !degraded {
		t.Fatal("exhausted checkpoint budget did not degrade")
	}
	if got.Render() != clean.Render() {
		t.Fatalf("degraded table differs:\n--- clean\n%s\n--- degraded\n%s", clean.Render(), got.Render())
	}
	failpoint.Reset()

	failpoint.Arm(campaign.FailpointShard, failpoint.Action{Panic: "t2 crash", Times: 1})
	rep = new(campaign.Report)
	got, err = T2CoverageCtx(context.Background(), schemes, 300, 1,
		campaign.Options{Retries: 2, Report: rep})
	if err != nil {
		t.Fatalf("retried t2 run failed: %v", err)
	}
	if sr, _ := rep.Retries(); sr != 1 {
		t.Fatalf("report counts %d shard retries, want 1", sr)
	}
	if got.Render() != clean.Render() {
		t.Fatalf("retried table differs:\n--- clean\n%s\n--- retried\n%s", clean.Render(), got.Render())
	}
}
