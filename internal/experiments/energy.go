package experiments

import (
	"fmt"

	"pair/internal/bus"
	"pair/internal/schemes"
)

// T4BusEnergy renders the data-bus energy-proxy comparison: driven zeros
// per logical 64-byte transfer (POD12 static-power proxy), accounting for
// each scheme's DBI capability, burst extension and write-traffic
// amplification.
//
// The mechanism: DDR4's Data Bus Inversion halves worst-case driven
// zeros, but XED's catch-word signaling occupies exactly that encoding
// freedom, so an XED bus runs un-inverted AND writes twice (inline
// parity). DUO keeps DBI but stretches every burst by a beat. PAIR
// changes nothing — its redundancy never crosses the pins.
//
// The rows iterate the registry's "energy" set; the DBI column comes
// from each entry's NoDBI flag and the burst/write terms are read off
// the scheme's live AccessCost, so a registered scheme's energy row can
// never drift from its cost model.
func T4BusEnergy() *Table {
	t := &Table{
		Title:  "T4: bus energy proxy (expected driven zeros per 64B transfer; 8 byte lanes)",
		Header: []string{"scheme", "DBI", "read proxy", "write proxy", "70/30 mix", "vs none"},
	}
	set, err := schemes.SetByID("energy")
	if err != nil {
		panic(err)
	}
	const lanes, beats = 8, 8
	baseline := 0.7*bus.AccessEnergyProxy(lanes, beats, true, 0, 1.0) +
		0.3*bus.AccessEnergyProxy(lanes, beats, true, 0, 1.0)
	for _, spec := range set.Specs {
		e, s := mustEntry(spec)
		cost := s.Cost()
		dbi := !e.NoDBI
		writeAmp := 1.0 + cost.ExtraWritesPerWrite
		read := bus.AccessEnergyProxy(lanes, beats, dbi, cost.ExtraReadBeats, 1.0)
		write := bus.AccessEnergyProxy(lanes, beats, dbi, cost.ExtraWriteBeats, writeAmp)
		mix := 0.7*read + 0.3*write
		dbiStr := "on"
		if !dbi {
			dbiStr = "off (catch-words)"
		}
		t.AddRow(e.ID, dbiStr,
			fmt.Sprintf("%.1f", read),
			fmt.Sprintf("%.1f", write),
			fmt.Sprintf("%.1f", mix),
			fmt.Sprintf("%.2fx", mix/baseline),
		)
	}
	t.Notes = append(t.Notes,
		"proxy counts expected driven zeros on a terminated (POD12) bus for uniform data; relative numbers are what matters",
		"XED pays twice: no DBI (catch-word encoding conflict) and doubled write traffic (inline parity image)")
	return t
}
