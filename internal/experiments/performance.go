package experiments

import (
	"fmt"
	"io"

	"pair/internal/ecc"
	"pair/internal/hamming"
	"pair/internal/memsim"
	"pair/internal/memsim/check"
	"pair/internal/schemes"
	"pair/internal/stats"
	"pair/internal/trace"
)

// PerfSchemes returns the schemes of the performance comparison (figure
// F4): baseline plus the three architectures the abstract compares, as
// defined by the registry's "perf" set.
func PerfSchemes() []ecc.Scheme {
	return schemes.MustBuildSet("perf")
}

// SimInstrumentation configures observers attached to every timing-
// simulator run the performance experiments execute (the -check and
// -cmdtrace modes of cmd/pairsim).
type SimInstrumentation struct {
	// Check attaches an independent JEDEC protocol checker to each run;
	// any violation fails the experiment with command context.
	Check bool
	// CmdTrace, when non-nil, streams every run's DRAM command trace to
	// the writer, each run prefixed by a "# sim <label>" header.
	CmdTrace io.Writer
}

var simInst SimInstrumentation

// SetSimInstrumentation installs the instrumentation for subsequent
// experiment runs (pass the zero value to disable).
func SetSimInstrumentation(si SimInstrumentation) { simInst = si }

// simRuns counts timing-simulator invocations (regression hook: the
// baseline-reuse path must not re-simulate identical zero-cost runs).
var simRuns int

// runSim executes one timing simulation under the installed
// instrumentation.
func runSim(label string, cfg memsim.Config, wl trace.Workload) (memsim.Result, error) {
	simRuns++
	var chk *check.Checker
	var obs []memsim.Observer
	if simInst.Check {
		if cfg.Profile != nil {
			chk = check.ForProfile(cfg.Profile)
		} else {
			chk = check.New(cfg.Timing)
		}
		obs = append(obs, chk)
	}
	if simInst.CmdTrace != nil {
		fmt.Fprintf(simInst.CmdTrace, "# sim %s\n", label)
		obs = append(obs, &check.Tracer{W: simInst.CmdTrace})
	}
	cfg.Observer = memsim.MultiObserver(obs...)
	res, err := memsim.Run(cfg, wl)
	if err != nil {
		return res, fmt.Errorf("%s: %w", label, err)
	}
	if chk != nil {
		if err := chk.Err(); err != nil {
			return res, fmt.Errorf("%s: %w", label, err)
		}
	}
	return res, nil
}

// PerfResult holds normalized performance per workload per scheme.
type PerfResult struct {
	Workloads []string
	Schemes   []string
	// Normalized[w][s] = cycles(none) / cycles(scheme): 1.0 = baseline
	// speed, higher is better.
	Normalized [][]float64
	GeoMean    []float64
}

// F4Performance runs the SPEC-like suite through the timing simulator
// under every scheme's cost model.
func F4Performance(schemes []ecc.Scheme, requests int) (*PerfResult, error) {
	suite := trace.SPECLike(requests)
	return perfOn(schemes, suite)
}

func perfOn(schemes []ecc.Scheme, suite []trace.Workload) (*PerfResult, error) {
	return perfOnProfile(schemes, suite, nil)
}

// simConfig returns the simulator configuration of one experiment run:
// the DDR4 default when prof is nil (the legacy golden-pinned path), the
// profile's otherwise.
func simConfig(prof *memsim.Profile) memsim.Config {
	if prof == nil {
		return memsim.DefaultConfig()
	}
	return prof.Config()
}

// simLabel prefixes a run label with the profile spec so -cmdtrace
// headers and error messages identify the memory generation.
func simLabel(prof *memsim.Profile, label string) string {
	if prof == nil {
		return label
	}
	return prof.Spec() + "/" + label
}

func perfOnProfile(schemes []ecc.Scheme, suite []trace.Workload, prof *memsim.Profile) (*PerfResult, error) {
	res := &PerfResult{}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name())
	}
	baseline := make([]uint64, len(suite))
	for wi, wl := range suite {
		res.Workloads = append(res.Workloads, wl.Name)
		r, err := runSim(simLabel(prof, "baseline/"+wl.Name), simConfig(prof), wl)
		if err != nil {
			return nil, err
		}
		baseline[wi] = r.Cycles
	}
	res.Normalized = make([][]float64, len(suite))
	for wi, wl := range suite {
		res.Normalized[wi] = make([]float64, len(schemes))
		for si, s := range schemes {
			cost := s.Cost()
			cycles := baseline[wi]
			// A zero cost model is bit-identical to the baseline run —
			// reuse it instead of simulating the workload a second time.
			if cost != (ecc.AccessCost{}) {
				cfg := simConfig(prof)
				cfg.Cost = cost
				r, err := runSim(simLabel(prof, s.Name()+"/"+wl.Name), cfg, wl)
				if err != nil {
					return nil, err
				}
				cycles = r.Cycles
			}
			res.Normalized[wi][si] = float64(baseline[wi]) / float64(cycles)
		}
	}
	res.GeoMean = make([]float64, len(schemes))
	for si := range schemes {
		col := make([]float64, len(suite))
		for wi := range suite {
			col[wi] = res.Normalized[wi][si]
		}
		res.GeoMean[si] = stats.GeoMean(col)
	}
	return res, nil
}

// Render formats the F4 table.
func (r *PerfResult) Render() string {
	t := &Table{
		Title:  "F4: performance normalized to No-ECC (higher is better)",
		Header: append([]string{"workload"}, r.Schemes...),
	}
	for wi, w := range r.Workloads {
		row := []string{w}
		for si := range r.Schemes {
			row = append(row, fmt.Sprintf("%.3f", r.Normalized[wi][si]))
		}
		t.AddRow(row...)
	}
	gm := []string{"geomean"}
	for _, g := range r.GeoMean {
		gm = append(gm, fmt.Sprintf("%.3f", g))
	}
	t.AddRow(gm...)
	t.Notes = append(t.Notes, r.headline()...)
	return t.Render()
}

// headline extracts the abstract's performance comparisons.
func (r *PerfResult) headline() []string {
	idx := map[string]int{}
	for i, n := range r.Schemes {
		idx[n] = i
	}
	var notes []string
	if pi, ok := idx["pair"]; ok {
		if xi, ok := idx["xed"]; ok {
			notes = append(notes, fmt.Sprintf("PAIR over XED: %+.1f%% (geomean)", (r.GeoMean[pi]/r.GeoMean[xi]-1)*100))
		}
		if di, ok := idx["duo"]; ok {
			notes = append(notes, fmt.Sprintf("PAIR over DUO: %+.1f%% (geomean)", (r.GeoMean[pi]/r.GeoMean[di]-1)*100))
		}
	}
	return notes
}

// F5WriteSweep sweeps the write ratio on a random-access stream — the
// ablation isolating where XED's parity-write traffic and the RMW costs
// bite (figure F5).
func F5WriteSweep(schemes []ecc.Scheme, requests int) (*Table, error) {
	return F5WriteSweepOn(schemes, requests, nil)
}

// F5WriteSweepOn is F5WriteSweep on a specific memory profile (nil = the
// DDR4 default).
func F5WriteSweepOn(schemes []ecc.Scheme, requests int, prof *memsim.Profile) (*Table, error) {
	fracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	suite := trace.WriteSweep(requests, fracs, 0.3)
	res, err := perfOnProfile(schemes, suite, prof)
	if err != nil {
		return nil, err
	}
	title := "F5: normalized performance vs write ratio (30% of writes masked)"
	if prof != nil {
		title += " [" + prof.Spec() + "]"
	}
	t := &Table{
		Title:  title,
		Header: append([]string{"write ratio"}, res.Schemes...),
	}
	for wi := range suite {
		row := []string{fmt.Sprintf("%.0f%%", fracs[wi]*100)}
		for si := range res.Schemes {
			row = append(row, fmt.Sprintf("%.3f", res.Normalized[wi][si]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// F4Latency renders the tail read-latency companion to F4: mean, p99 and
// p999 read latency per scheme on the two most latency-revealing
// workloads (a pointer-chaser and a masked-write-heavy mix). Companion
// writes and RMW reads interfere with demand reads, which shows in the
// tail long before it moves the mean.
func F4Latency(set []ecc.Scheme, requests int) (*Table, error) {
	return F4LatencyOn(set, requests, nil)
}

// F4LatencyOn is F4Latency on a specific memory profile (nil = the DDR4
// default).
func F4LatencyOn(set []ecc.Scheme, requests int, prof *memsim.Profile) (*Table, error) {
	title := "F4b: read latency (mean / p99 / p999, ns) per scheme"
	if prof != nil {
		title += " [" + prof.Spec() + "]"
	}
	t := &Table{
		Title:  title,
		Header: []string{"workload"},
	}
	for _, s := range set {
		t.Header = append(t.Header, s.Name())
	}
	suite := trace.SPECLike(requests)
	for _, wl := range suite {
		if wl.Name != "mcf" && wl.Name != "x264" {
			continue
		}
		row := []string{wl.Name}
		for _, s := range set {
			cfg := simConfig(prof)
			cfg.Cost = s.Cost()
			res, err := runSim(simLabel(prof, s.Name()+"/lat/"+wl.Name), cfg, wl)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f/%.0f/%.0f",
				res.AvgReadLatencyNS(cfg.Timing), res.P99ReadLatencyNS(cfg.Timing),
				res.P999ReadLatencyNS(cfg.Timing)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "XED's parity writes queue ahead of demand reads: the p99 inflates far more than the mean")
	return t, nil
}

// F4CommandMix renders the command-stream observability companion to F4:
// the DRAM command histogram, row-buffer behavior and data-bus occupancy
// per scheme on the masked-write-heavy x264 mix — the mechanism-level
// view behind the normalized-cycles rows.
func F4CommandMix(set []ecc.Scheme, requests int) (*Table, error) {
	t := &Table{
		Title:  "F4c: command mix and bus occupancy (x264 mix)",
		Header: []string{"scheme", "ACT", "PRE", "RD", "WR", "REF", "row hit%", "bus util%"},
	}
	var wl trace.Workload
	for _, w := range trace.SPECLike(requests) {
		if w.Name == "x264" {
			wl = w
		}
	}
	for _, s := range set {
		cfg := memsim.DefaultConfig()
		cfg.Cost = s.Cost()
		res, err := runSim(s.Name()+"/mix/"+wl.Name, cfg, wl)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name(),
			fmt.Sprintf("%d", res.Cmds.ACT),
			fmt.Sprintf("%d", res.Cmds.PRE),
			fmt.Sprintf("%d", res.Cmds.RD),
			fmt.Sprintf("%d", res.Cmds.WR),
			fmt.Sprintf("%d", res.Cmds.REF),
			fmt.Sprintf("%.1f", res.RowHitRate()*100),
			fmt.Sprintf("%.1f", res.BusUtilization()*100))
	}
	t.Notes = append(t.Notes,
		"XED's extra WR column is the companion parity-write traffic; DUO's bus util is the +1 extension beat")
	return t, nil
}

// F11ScrubTraffic measures the performance cost of patrol scrubbing at
// several rates on a moderately loaded workload — the bandwidth side of
// the reliability/scrub-interval trade-off (F8 is the reliability side).
func F11ScrubTraffic(requests int) (*Table, error) {
	wl := trace.Generate(trace.Params{
		Name: "mixed", Requests: requests, Lines: 1 << 20, Pattern: trace.Random,
		ReadFrac: 0.7, MaskedFrac: 0.2, MeanGap: 4, Window: 8, Seed: 42,
	})
	t := &Table{
		Title:  "F11: performance vs patrol-scrub rate (PAIR cost model)",
		Header: []string{"scrub period (cycles)", "scrub reads", "cycles", "normalized"},
	}
	pairCost := schemes.MustNew("pair").Cost()
	baseCfg := memsim.DefaultConfig()
	baseCfg.Cost = pairCost
	base, err := runSim("scrub-off", baseCfg, wl)
	if err != nil {
		return nil, err
	}
	t.AddRow("off", "0", fmt.Sprintf("%d", base.Cycles), "1.000")
	for _, period := range []uint64{10000, 1000, 100} {
		cfg := memsim.DefaultConfig()
		cfg.Cost = pairCost
		cfg.ScrubPeriod = period
		r, err := runSim(fmt.Sprintf("scrub-%d", period), cfg, wl)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", period),
			fmt.Sprintf("%d", r.ScrubReads),
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.3f", float64(base.Cycles)/float64(r.Cycles)))
	}
	t.Notes = append(t.Notes, "pairs with F8: tighter scrubbing buys transient-fault pairing protection at this bandwidth price")
	return t, nil
}

// T3Complexity renders the decoder-complexity and latency comparison.
// Gate counts are analytic estimates: Hamming costs are exact XOR counts
// from the parity-check columns; Reed-Solomon costs use the standard
// constant-multiplier estimate of ~20 XOR2 gates per GF(256) multiply
// (encoder: k*(n-k) multipliers; syndrome/interpolation decoder: ~2x).
func T3Complexity() *Table {
	t := &Table{
		Title:  "T3: storage, logic and latency overheads",
		Header: []string{"scheme", "storage ovh", "enc XOR (est)", "dec XOR (est)", "read latency adder", "write cost"},
	}
	const gfMulXOR = 20
	rsEnc := func(n, k int) int { return k * (n - k) * gfMulXOR }
	rsDec := func(n, k int) int { return 2 * n * (n - k) * gfMulXOR }
	hammingEncXOR := func(k int) int { return hamming.MustSEC(k).EncoderXORs() }

	iecc := schemes.MustNew("iecc")
	t.AddRow("iecc", pct(iecc.StorageOverhead()),
		fmt.Sprintf("%d", hammingEncXOR(128)),
		fmt.Sprintf("%d", hammingEncXOR(128)+136),
		fmt.Sprintf("%.1fns", iecc.Cost().DecodeLatencyNS), "internal RMW (masked)")

	xed := schemes.MustNew("xed")
	t.AddRow("xed", pct(xed.StorageOverhead()),
		fmt.Sprintf("%d", hammingEncXOR(128)+128*3),
		fmt.Sprintf("%d", hammingEncXOR(128)+128*3),
		fmt.Sprintf("%.1fns", xed.Cost().DecodeLatencyNS), "+1 parity write / write")

	duo := schemes.MustNew("duo")
	t.AddRow("duo", pct(duo.StorageOverhead()),
		fmt.Sprintf("%d", rsEnc(18, 16)),
		fmt.Sprintf("%d", rsDec(18, 16)),
		fmt.Sprintf("%.1fns", duo.Cost().DecodeLatencyNS), "BL9 bursts; RMW (masked)")

	pairBase := schemes.MustNew("pair-base")
	t.AddRow("pair-base", pct(pairBase.StorageOverhead()),
		fmt.Sprintf("%d", rsEnc(18, 16)),
		fmt.Sprintf("%d", rsDec(18, 16)),
		fmt.Sprintf("%.1fns", pairBase.Cost().DecodeLatencyNS), "internal RMW (masked)")

	pairFull := schemes.MustNew("pair")
	t.AddRow("pair", pct(pairFull.StorageOverhead()),
		fmt.Sprintf("%d", rsEnc(20, 16)),
		fmt.Sprintf("%d", rsDec(20, 16)),
		fmt.Sprintf("%.1fns", pairFull.Cost().DecodeLatencyNS), "internal RMW (masked)")

	t.Notes = append(t.Notes,
		"XED enc/dec adds the 4-chip XOR tree (128*3) for the rank-parity image",
		"RS costs: k*(n-k) const multipliers encode, ~2*n*(n-k) decode, 20 XOR2 per GF(256) multiplier")
	return t
}
