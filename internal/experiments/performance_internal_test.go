package experiments

import (
	"strings"
	"testing"

	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/trace"
)

// TestPerfOnReusesBaselineRun pins the fix for the double simulation of
// the zero-cost baseline: the "none" scheme's cycles are the baseline
// run's cycles, not a second simulation of the identical configuration.
func TestPerfOnReusesBaselineRun(t *testing.T) {
	suite := trace.SPECLike(400)[:3]
	schemes := []ecc.Scheme{ecc.NewNone(dram.DDR4x16()), ecc.NewIECC(dram.DDR4x16())}

	before := simRuns
	res, err := perfOn(schemes, suite)
	if err != nil {
		t.Fatal(err)
	}
	used := simRuns - before
	// 3 baseline runs + 3 iecc runs; the none column costs no extra runs.
	if used != 6 {
		t.Fatalf("perfOn used %d simulations, want 6 (baseline reused for the zero-cost scheme)", used)
	}
	// Reuse makes the equality exact, not approximate: baseline cycles ==
	// none-scheme cycles, so the normalized column is identically 1.0.
	for wi, w := range res.Workloads {
		if res.Normalized[wi][0] != 1.0 {
			t.Fatalf("%s: none normalized to %v, want exactly 1.0", w, res.Normalized[wi][0])
		}
	}
}

// TestSimInstrumentationCheck wires the instrumentation layer through a
// real experiment: with Check on, a clean run succeeds; the command
// trace writer receives one header per simulation.
func TestSimInstrumentationCheck(t *testing.T) {
	var sb strings.Builder
	SetSimInstrumentation(SimInstrumentation{Check: true, CmdTrace: &sb})
	defer SetSimInstrumentation(SimInstrumentation{})

	suite := trace.SPECLike(300)[:2]
	schemes := []ecc.Scheme{ecc.NewNone(dram.DDR4x16()), ecc.NewXED(dram.DDR4x16())}
	if _, err := perfOn(schemes, suite); err != nil {
		t.Fatalf("checked run failed: %v", err)
	}
	out := sb.String()
	// 2 baseline + 2 xed headers; none reuses the baseline runs.
	if n := strings.Count(out, "# sim "); n != 4 {
		t.Fatalf("%d trace headers, want 4:\n%.400s", n, out)
	}
	if !strings.Contains(out, "# sim baseline/lbm") || !strings.Contains(out, "# sim xed/mcf") {
		t.Fatalf("missing run labels:\n%.400s", out)
	}
	if !strings.Contains(out, " ACT ") {
		t.Fatal("trace carries no commands")
	}
}
