package hamming

import (
	"math/bits"
	"math/rand"
	"testing"

	"pair/internal/bitvec"
)

func randData(rng *rand.Rand, k int) *bitvec.Vec {
	v := bitvec.New(k)
	for i := 0; i < k; i++ {
		v.Set(i, rng.Intn(2) == 1)
	}
	return v
}

func TestSECShapes(t *testing.T) {
	// The canonical IECC code: (136,128).
	c := MustSEC(128)
	if c.N != 136 || c.M != 8 {
		t.Fatalf("SEC(128) = (%d,%d) with %d checks, want (136,128) m=8", c.N, c.K, c.M)
	}
	// (71,64) per-64-bit-word variant.
	c = MustSEC(64)
	if c.N != 71 || c.M != 7 {
		t.Fatalf("SEC(64) = (%d,%d), want (71,64)", c.N, c.K)
	}
}

func TestSECDEDShapes(t *testing.T) {
	c := MustSECDED(64)
	if c.N != 72 || c.M != 8 {
		t.Fatalf("SECDED(64) = (%d,%d), want (72,64)", c.N, c.K)
	}
	if !c.IsSECDED() {
		t.Fatal("IsSECDED false")
	}
}

func TestInvalidK(t *testing.T) {
	if _, err := NewSEC(0); err == nil {
		t.Fatal("SEC k=0 accepted")
	}
	if _, err := NewSECDED(-1); err == nil {
		t.Fatal("SECDED k=-1 accepted")
	}
}

func TestColumnsDistinct(t *testing.T) {
	for _, c := range []*Code{MustSEC(128), MustSEC(64), MustSECDED(64), MustSECDED(128)} {
		seen := make(map[uint16]bool)
		for _, col := range c.cols {
			if col == 0 {
				t.Fatal("zero column")
			}
			if seen[col] {
				t.Fatalf("duplicate column %#x", col)
			}
			seen[col] = true
		}
	}
}

func TestEncodeZeroSyndrome(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []*Code{MustSEC(128), MustSECDED(64)} {
		for trial := 0; trial < 100; trial++ {
			cw := c.Encode(randData(rng, c.K))
			if c.Syndrome(cw) != 0 {
				t.Fatalf("(%d,%d): encoded word has nonzero syndrome", c.N, c.K)
			}
		}
	}
}

func TestSingleErrorAlwaysCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range []*Code{MustSEC(128), MustSEC(64), MustSECDED(64)} {
		for pos := 0; pos < c.N; pos++ {
			data := randData(rng, c.K)
			cw := c.Encode(data)
			rx := cw.Clone()
			rx.Flip(pos)
			out, outcome := c.Decode(rx)
			if outcome != Corrected {
				t.Fatalf("(%d,%d) pos=%d: outcome %v", c.N, c.K, pos, outcome)
			}
			if !out.Equal(cw) {
				t.Fatalf("(%d,%d) pos=%d: wrong correction", c.N, c.K, pos)
			}
		}
	}
}

func TestCleanDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := MustSEC(128)
	cw := c.Encode(randData(rng, 128))
	out, outcome := c.Decode(cw)
	if outcome != Clean || !out.Equal(cw) {
		t.Fatal("clean word not accepted")
	}
}

func TestSECDoubleErrorNeverSilentlyClean(t *testing.T) {
	// Every double error must produce a nonzero syndrome (d >= 3): outcome
	// is Corrected (a miscorrection) or Detected, never Clean.
	rng := rand.New(rand.NewSource(4))
	c := MustSEC(128)
	miscorrections, detections := 0, 0
	for trial := 0; trial < 2000; trial++ {
		data := randData(rng, c.K)
		cw := c.Encode(data)
		rx := cw.Clone()
		i := rng.Intn(c.N)
		j := rng.Intn(c.N)
		for j == i {
			j = rng.Intn(c.N)
		}
		rx.Flip(i)
		rx.Flip(j)
		out, outcome := c.Decode(rx)
		switch outcome {
		case Clean:
			t.Fatal("double error decoded as clean")
		case Corrected:
			if out.Equal(cw) {
				t.Fatal("double error 'corrected' to the true word — impossible")
			}
			miscorrections++
		case Detected:
			detections++
		}
	}
	if miscorrections == 0 {
		t.Fatal("SEC never miscorrected a double error — the IECC hazard is not modeled")
	}
	if detections == 0 {
		t.Fatal("SEC never detected a double error — shortened-code detection missing")
	}
	t.Logf("SEC(136,128) doubles: %d miscorrected, %d detected", miscorrections, detections)
}

func TestSECDEDDetectsAllDoubleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := MustSECDED(64)
	for trial := 0; trial < 1500; trial++ {
		cw := c.Encode(randData(rng, c.K))
		rx := cw.Clone()
		i := rng.Intn(c.N)
		j := rng.Intn(c.N)
		for j == i {
			j = rng.Intn(c.N)
		}
		rx.Flip(i)
		rx.Flip(j)
		if _, outcome := c.Decode(rx); outcome != Detected {
			t.Fatalf("SECDED double error at (%d,%d) not detected: %v", i, j, outcome)
		}
	}
}

func TestSECDEDExhaustiveDoubleDetection(t *testing.T) {
	// Exhaustive over all C(72,2) = 2556 double-error positions for one
	// data word: the Hsiao property is structural, not statistical.
	c := MustSECDED(64)
	rng := rand.New(rand.NewSource(6))
	cw := c.Encode(randData(rng, 64))
	for i := 0; i < c.N; i++ {
		for j := i + 1; j < c.N; j++ {
			rx := cw.Clone()
			rx.Flip(i)
			rx.Flip(j)
			if _, outcome := c.Decode(rx); outcome != Detected {
				t.Fatalf("double (%d,%d) not detected", i, j)
			}
		}
	}
}

func TestDataExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := MustSEC(128)
	data := randData(rng, 128)
	if !c.Data(c.Encode(data)).Equal(data) {
		t.Fatal("Data() does not invert Encode()")
	}
}

func TestStorageOverhead(t *testing.T) {
	if got := MustSEC(128).StorageOverhead(); got != 8.0/128.0 {
		t.Fatalf("SEC(136,128) overhead %v", got)
	}
	if got := MustSECDED(64).StorageOverhead(); got != 8.0/64.0 {
		t.Fatalf("SECDED(72,64) overhead %v", got)
	}
}

func TestOutcomeString(t *testing.T) {
	if Clean.String() != "clean" || Corrected.String() != "corrected" || Detected.String() != "detected" {
		t.Fatal("Outcome strings wrong")
	}
	if Outcome(9).String() == "" {
		t.Fatal("unknown outcome must still render")
	}
}

func TestOversizedCodesRejected(t *testing.T) {
	if _, err := NewSEC(1 << 17); err == nil {
		t.Fatal("SEC beyond 16 check bits accepted")
	}
	if _, err := NewSECDED(1 << 17); err == nil {
		t.Fatal("SECDED beyond 16 check bits accepted")
	}
}

func TestMustPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSEC did not panic")
		}
	}()
	MustSEC(0)
}

func TestEncoderXORsPlausible(t *testing.T) {
	c := MustSEC(128)
	x := c.EncoderXORs()
	// Each of 128 data columns has weight >= 2 (non-unit), so the total
	// is at least 2*128 - 8; and every column has weight <= 8.
	if x < 2*128-8 || x > 8*128 {
		t.Fatalf("encoder XOR count %d implausible", x)
	}
	// Hsiao (72,64): 56 weight-3 columns + 8 weight-5 columns = 208 ones,
	// minus one per check bit = exactly 200 XORs.
	h := MustSECDED(64)
	if hx := h.EncoderXORs(); hx != 200 {
		t.Fatalf("Hsiao encoder XOR count %d, want 200", hx)
	}
}

func TestSECDEDOddWeightColumns(t *testing.T) {
	c := MustSECDED(64)
	for i, col := range c.cols {
		if bits.OnesCount16(col)%2 != 1 {
			t.Fatalf("column %d has even weight", i)
		}
	}
}

func TestDecodePreservesInput(t *testing.T) {
	// Decode must work on a clone: the received word is evidence.
	c := MustSEC(64)
	data := bitvec.New(64)
	data.Set(5, true)
	cw := c.Encode(data)
	rx := cw.Clone()
	rx.Flip(10)
	before := rx.String()
	c.Decode(rx)
	if rx.String() != before {
		t.Fatal("Decode mutated its input")
	}
}

func TestDecodeIntoMatchesDecode(t *testing.T) {
	// DecodeInto is Decode without the clone: identical outcome and bits
	// for clean, single-error and double-error words, for a separate
	// destination and for in-place correction.
	rng := rand.New(rand.NewSource(9))
	for _, c := range []*Code{MustSEC(128), MustSECDED(64)} {
		dst := bitvec.New(c.N)
		for trial := 0; trial < 200; trial++ {
			cw := c.Encode(randData(rng, c.K))
			rx := cw.Clone()
			for f := 0; f < trial%3; f++ {
				rx.Flip(rng.Intn(c.N))
			}
			want, wantOutcome := c.Decode(rx)
			if got := c.DecodeInto(dst, rx); got != wantOutcome || !dst.Equal(want) {
				t.Fatalf("(%d,%d): DecodeInto outcome %v bits-match %v, Decode outcome %v",
					c.N, c.K, got, dst.Equal(want), wantOutcome)
			}
			inPlace := rx.Clone()
			if got := c.DecodeInto(inPlace, inPlace); got != wantOutcome || !inPlace.Equal(want) {
				t.Fatalf("(%d,%d): in-place DecodeInto diverged", c.N, c.K)
			}
		}
	}
}

func TestDecodeIntoAllocs(t *testing.T) {
	// The per-access decode loops of the on-die schemes lean on DecodeInto
	// being allocation-free (Decode clones: 2 allocs, 56 B for (136,128)).
	c := MustSEC(128)
	cw := c.Encode(randData(rand.New(rand.NewSource(10)), c.K))
	cw.Flip(40)
	dst := bitvec.New(c.N)
	if n := testing.AllocsPerRun(100, func() {
		if c.DecodeInto(dst, cw) != Corrected {
			t.Fatal("unexpected outcome")
		}
	}); n != 0 {
		t.Fatalf("DecodeInto allocates %v objects per run, want 0", n)
	}
}
