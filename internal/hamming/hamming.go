// Package hamming implements the binary linear codes used by the baseline
// ECC schemes in the PAIR study:
//
//   - SEC: a shortened Hamming single-error-correcting code, e.g. the
//     (136,128) code conventional In-DRAM ECC (IECC) uses per 128-bit
//     chip access. Presented with a double-bit error a SEC code either
//     flags it (syndrome matches no column) or silently *miscorrects*
//     (syndrome aliases a third column) — the central reliability hazard
//     the PAIR paper attacks.
//
//   - SECDED: a Hsiao single-error-correcting double-error-detecting
//     code with odd-weight columns, e.g. the (72,64) code of rank-level
//     ECC DIMMs. All double errors yield even-weight syndromes and are
//     detected, never miscorrected; triples can still alias.
//
// Codeword layout is systematic: data bits occupy positions [0,K), check
// bits positions [K,N).
package hamming

import (
	"fmt"
	"math/bits"

	"pair/internal/bitvec"
)

// Outcome classifies a decode attempt. The decoder cannot see the golden
// data, so "Corrected" only means the syndrome pointed at a bit; whether
// the flip restored the truth is for the caller (which injected the error)
// to judge.
type Outcome int

const (
	// Clean: zero syndrome, word accepted as-is.
	Clean Outcome = iota
	// Corrected: the decoder flipped one bit it believes erroneous.
	Corrected
	// Detected: the decoder flagged an uncorrectable pattern.
	Detected
)

func (o Outcome) String() string {
	switch o {
	case Clean:
		return "clean"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Code is a systematic binary code defined by per-position parity-check
// columns.
type Code struct {
	N, K, M int      // codeword, data, check bit counts (N = K + M)
	secded  bool     // Hsiao odd-weight-column construction
	cols    []uint16 // parity-check column for each codeword position
	colIdx  map[uint16]int
}

// NewSEC constructs a shortened Hamming SEC code with k data bits and the
// minimum number of check bits m such that 2^m >= k + m + 1.
func NewSEC(k int) (*Code, error) {
	if k <= 0 {
		return nil, fmt.Errorf("hamming: invalid k=%d", k)
	}
	m := 1
	for (1 << m) < k+m+1 {
		m++
	}
	if m > 16 {
		return nil, fmt.Errorf("hamming: k=%d needs more than 16 check bits", k)
	}
	c := &Code{N: k + m, K: k, M: m, colIdx: make(map[uint16]int)}
	c.cols = make([]uint16, c.N)
	// Data columns: nonzero, non-unit patterns in increasing order.
	next := uint16(1)
	for i := 0; i < k; i++ {
		for isZeroOrUnit(next) {
			next++
		}
		c.cols[i] = next
		next++
	}
	// Check columns: unit vectors.
	for j := 0; j < m; j++ {
		c.cols[k+j] = 1 << j
	}
	for i, col := range c.cols {
		c.colIdx[col] = i
	}
	return c, nil
}

// NewSECDED constructs a Hsiao SEC-DED code with k data bits: all columns
// have odd weight, so any double error (even-weight syndrome) is detected.
func NewSECDED(k int) (*Code, error) {
	if k <= 0 {
		return nil, fmt.Errorf("hamming: invalid k=%d", k)
	}
	// Find m such that the number of odd-weight non-unit m-bit patterns
	// covers k: count = 2^(m-1) - m.
	m := 2
	for (1<<(m-1))-m < k {
		m++
	}
	if m > 16 {
		return nil, fmt.Errorf("hamming: k=%d needs more than 16 check bits", k)
	}
	c := &Code{N: k + m, K: k, M: m, secded: true, colIdx: make(map[uint16]int)}
	c.cols = make([]uint16, c.N)
	// Data columns: odd-weight non-unit patterns, lowest weight first
	// (Hsiao's minimal-gate-count ordering).
	idx := 0
	for w := 3; w <= m && idx < k; w += 2 {
		for p := uint16(1); int(p) < (1<<m) && idx < k; p++ {
			if bits.OnesCount16(p) == w {
				c.cols[idx] = p
				idx++
			}
		}
	}
	if idx < k {
		return nil, fmt.Errorf("hamming: internal: insufficient odd-weight columns for k=%d, m=%d", k, m)
	}
	for j := 0; j < m; j++ {
		c.cols[k+j] = 1 << j
	}
	for i, col := range c.cols {
		c.colIdx[col] = i
	}
	return c, nil
}

// MustSEC is NewSEC, panicking on error.
func MustSEC(k int) *Code {
	c, err := NewSEC(k)
	if err != nil {
		panic(err)
	}
	return c
}

// MustSECDED is NewSECDED, panicking on error.
func MustSECDED(k int) *Code {
	c, err := NewSECDED(k)
	if err != nil {
		panic(err)
	}
	return c
}

// IsSECDED reports whether the code uses the Hsiao odd-weight construction.
func (c *Code) IsSECDED() bool { return c.secded }

// Encode returns the N-bit codeword for the K-bit data vector.
func (c *Code) Encode(data *bitvec.Vec) *bitvec.Vec {
	if data.Len() != c.K {
		panic(fmt.Sprintf("hamming: data length %d, want %d", data.Len(), c.K))
	}
	cw := bitvec.New(c.N)
	var syn uint16
	for i := 0; i < c.K; i++ {
		if data.Get(i) {
			cw.Set(i, true)
			syn ^= c.cols[i]
		}
	}
	for j := 0; j < c.M; j++ {
		if syn&(1<<j) != 0 {
			cw.Set(c.K+j, true)
		}
	}
	return cw
}

// Syndrome computes the M-bit syndrome of word.
func (c *Code) Syndrome(word *bitvec.Vec) uint16 {
	if word.Len() != c.N {
		panic(fmt.Sprintf("hamming: word length %d, want %d", word.Len(), c.N))
	}
	return c.xorCols(word)
}

// CheckBits returns the M check bits implied by the K-bit data vector —
// the XOR of the parity-check columns of its set bits. Because the check
// columns are unit vectors, the syndrome of a full word equals
// CheckBits(data) XOR storedCheckBits, which lets callers that keep data
// and check bits in separate containers (the on-die ECC schemes) skip
// assembling an N-bit word entirely. Allocates nothing.
func (c *Code) CheckBits(data *bitvec.Vec) uint16 {
	if data.Len() != c.K {
		panic(fmt.Sprintf("hamming: data length %d, want %d", data.Len(), c.K))
	}
	return c.xorCols(data)
}

// xorCols XORs the columns of v's set bits by iterating the backing words
// directly (no position-slice allocation).
func (c *Code) xorCols(v *bitvec.Vec) uint16 {
	var syn uint16
	for wi := 0; wi < v.NumWords(); wi++ {
		w := v.Word(wi)
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			syn ^= c.cols[base+b]
			w &= w - 1
		}
	}
	return syn
}

// DecodeSyndrome classifies a precomputed syndrome without touching the
// word: it returns the codeword position to flip and Corrected, or -1 with
// Clean/Detected.
func (c *Code) DecodeSyndrome(syn uint16) (int, Outcome) {
	if syn == 0 {
		return -1, Clean
	}
	if c.secded && bits.OnesCount16(syn)%2 == 0 {
		// Even-weight syndrome with odd-weight columns: an even number of
		// errors — detected, uncorrectable.
		return -1, Detected
	}
	pos, ok := c.colIdx[syn]
	if !ok {
		// Syndrome matches no column: detected uncorrectable (possible for
		// shortened codes and for >=2-bit patterns).
		return -1, Detected
	}
	return pos, Corrected
}

// Decode attempts to correct word in place (on a clone) and returns the
// possibly-corrected word with the outcome classification.
func (c *Code) Decode(word *bitvec.Vec) (*bitvec.Vec, Outcome) {
	pos, outcome := c.DecodeSyndrome(c.Syndrome(word))
	out := word.Clone()
	if outcome == Corrected {
		out.Flip(pos)
	}
	return out, outcome
}

// DecodeInto is Decode into a caller-owned destination vector (length N;
// dst may be word itself for in-place correction). Allocates nothing, so
// per-access decode loops can run at a zero-allocation steady state.
func (c *Code) DecodeInto(dst, word *bitvec.Vec) Outcome {
	pos, outcome := c.DecodeSyndrome(c.Syndrome(word))
	if dst != word {
		dst.CopyFrom(word)
	}
	if outcome == Corrected {
		dst.Flip(pos)
	}
	return outcome
}

// Data extracts the data bits from a codeword.
func (c *Code) Data(cw *bitvec.Vec) *bitvec.Vec {
	if cw.Len() != c.N {
		panic(fmt.Sprintf("hamming: word length %d, want %d", cw.Len(), c.N))
	}
	d := bitvec.New(c.K)
	for i := 0; i < c.K; i++ {
		d.Set(i, cw.Get(i))
	}
	return d
}

// StorageOverhead returns M/K, the redundancy ratio.
func (c *Code) StorageOverhead() float64 { return float64(c.M) / float64(c.K) }

// EncoderXORs returns the exact 2-input XOR count of the parity generator:
// each check bit XORs together its class of data bits, costing
// (class size - 1) gates.
func (c *Code) EncoderXORs() int {
	total := 0
	for i := 0; i < c.K; i++ {
		total += bits.OnesCount16(c.cols[i])
	}
	return total - c.M
}

func isZeroOrUnit(p uint16) bool {
	return p == 0 || bits.OnesCount16(p) == 1
}
