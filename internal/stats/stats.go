// Package stats provides the small statistical toolkit the experiments
// use: outcome counters, binomial confidence intervals, and aggregate
// helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter tallies string-keyed events.
type Counter struct {
	counts map[string]int64
	total  int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Add increments key by n.
func (c *Counter) Add(key string, n int64) {
	c.counts[key] += n
	c.total += n
}

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.Add(key, 1) }

// Get returns key's count.
func (c *Counter) Get(key string) int64 { return c.counts[key] }

// Total returns the sum over all keys.
func (c *Counter) Total() int64 { return c.total }

// Rate returns key's share of the total (0 if empty).
func (c *Counter) Rate(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// Keys returns the keys in sorted order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge adds another counter's tallies into c.
func (c *Counter) Merge(other *Counter) {
	for k, v := range other.counts {
		c.Add(k, v)
	}
}

// String renders the counter for logs.
func (c *Counter) String() string {
	s := ""
	for _, k := range c.Keys() {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, c.counts[k])
	}
	return s
}

// WilsonInterval returns the Wilson score 95% confidence interval for a
// binomial proportion with k successes out of n trials.
func WilsonInterval(k, n int64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // 97.5th percentile of the normal
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// GeoMean returns the geometric mean of strictly positive values; it
// panics on non-positive inputs and returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Ratio returns a/b, or +Inf when b is zero and a positive, or 1 when
// both are zero — the convention the reliability-ratio tables use so a
// scheme with zero observed failures reads as "at least this much
// better".
func Ratio(a, b float64) float64 {
	switch {
	case b != 0:
		return a / b
	case a == 0:
		return 1
	default:
		return math.Inf(1)
	}
}
