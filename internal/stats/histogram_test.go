package stats

import (
	"math"
	"testing"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 100; i >= 1; i-- { // reverse order: sorting must handle it
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Observing after a query must re-sort.
	h.Observe(1000)
	if h.Max() != 1000 {
		t.Fatal("lazy sort stale after Observe")
	}
}

func TestHistogramEmptyAndInvalid(t *testing.T) {
	h := NewHistogram()
	if !math.IsNaN(h.Percentile(50)) || !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram must return NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid percentile did not panic")
		}
	}()
	h.Observe(1)
	h.Percentile(101)
}
