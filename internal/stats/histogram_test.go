package stats

import (
	"math"
	"testing"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 100; i >= 1; i-- { // reverse order: sorting must handle it
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Observing after a query must re-sort.
	h.Observe(1000)
	if h.Max() != 1000 {
		t.Fatal("lazy sort stale after Observe")
	}
}

func TestHistogramPercentileEdges(t *testing.T) {
	single := NewHistogram()
	single.Observe(7)
	cases := []struct {
		name string
		h    *Histogram
		p    float64
		want float64
	}{
		{"single-p0", single, 0, 7},
		{"single-p50", single, 50, 7},
		{"single-p999", single, 99.9, 7},
		{"single-p100", single, 100, 7},
	}
	for _, tc := range cases {
		if got := tc.h.Percentile(tc.p); got != tc.want {
			t.Fatalf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
	// p=100 and p=99.9 must never index past the last sample, whatever
	// rounding p/100*n does; sweep sizes around powers of ten where the
	// ceil boundary lands exactly on n.
	for _, n := range []int{2, 3, 10, 999, 1000, 1001} {
		h := NewHistogram()
		for i := 1; i <= n; i++ {
			h.Observe(float64(i))
		}
		if got := h.Percentile(100); got != float64(n) {
			t.Fatalf("n=%d p100 = %v", n, got)
		}
		if got := h.Percentile(99.9); got > float64(n) {
			t.Fatalf("n=%d p99.9 = %v beyond max", n, got)
		}
	}
}

func TestHistogramNaNPercentilePanics(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("NaN percentile did not panic")
		}
	}()
	h.Percentile(math.NaN())
}

func TestHistogramEmptyAndInvalid(t *testing.T) {
	h := NewHistogram()
	if !math.IsNaN(h.Percentile(50)) || !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram must return NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid percentile did not panic")
		}
	}()
	h.Observe(1)
	h.Percentile(101)
}
