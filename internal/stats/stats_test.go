package stats

import (
	"math"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc("a")
	c.Add("b", 3)
	c.Inc("a")
	if c.Get("a") != 2 || c.Get("b") != 3 || c.Total() != 5 {
		t.Fatalf("counts wrong: %v", c)
	}
	if c.Rate("a") != 0.4 {
		t.Fatalf("rate = %v", c.Rate("a"))
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	other := NewCounter()
	other.Add("a", 8)
	c.Merge(other)
	if c.Get("a") != 10 || c.Total() != 13 {
		t.Fatal("merge failed")
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
	empty := NewCounter()
	if empty.Rate("x") != 0 {
		t.Fatal("rate on empty counter")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatal("n=0 must give [0,1]")
	}
	lo, hi = WilsonInterval(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("50/100 interval [%v,%v] must straddle 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval too wide: [%v,%v]", lo, hi)
	}
	// Zero successes: lower bound 0, upper bound small but positive.
	lo, hi = WilsonInterval(0, 10000)
	if lo != 0 || hi <= 0 || hi > 0.01 {
		t.Fatalf("0/10000 interval [%v,%v]", lo, hi)
	}
	// All successes mirror.
	lo, hi = WilsonInterval(10000, 10000)
	if hi != 1 || lo < 0.99 {
		t.Fatalf("10000/10000 interval [%v,%v]", lo, hi)
	}
	// Monotone tightening with n.
	_, hi1 := WilsonInterval(0, 100)
	_, hi2 := WilsonInterval(0, 10000)
	if hi2 >= hi1 {
		t.Fatal("interval does not tighten with n")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive input did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("plain ratio wrong")
	}
	if Ratio(0, 0) != 1 {
		t.Fatal("0/0 must be 1")
	}
	if !math.IsInf(Ratio(5, 0), 1) {
		t.Fatal("x/0 must be +Inf")
	}
}
