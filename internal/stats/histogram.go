package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram collects float64 samples for percentile queries. It stores
// samples exactly (the experiment scales here are small enough) and sorts
// lazily.
type Histogram struct {
	samples []float64
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank,
// or NaN when empty.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return math.NaN()
	}
	if math.IsNaN(p) || p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: invalid percentile %v", p))
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	// Clamp both ends: p=0 maps to the first sample, and float rounding
	// of p/100*n at p near 100 must not index past the last.
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Mean returns the arithmetic mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return math.NaN()
	}
	return Mean(h.samples)
}

// Max returns the largest sample (NaN when empty).
func (h *Histogram) Max() float64 { return h.Percentile(100) }
