package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

func mustPanicGF(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

// TestRowDifferentialAgainstMul checks every entry of the 64 KiB table
// against the log/exp scalar multiply it caches.
func TestRowDifferentialAgainstMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		row := Row(byte(c))
		for b := 0; b < 256; b++ {
			if row[b] != Mul(byte(c), byte(b)) {
				t.Fatalf("Row(%d)[%d] = %d, want Mul = %d", c, b, row[b], Mul(byte(c), byte(b)))
			}
		}
	}
}

func TestMulSliceTo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 73)
	rng.Read(src)
	dst := make([]byte, len(src))
	want := make([]byte, len(src))
	for _, c := range []byte{0, 1, 2, 0x1d, 255} {
		MulSliceTo(dst, c, src)
		for i := range src {
			want[i] = Mul(c, src[i])
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulSliceTo(c=%d) diverged from scalar Mul", c)
		}
	}
	// Aliased in-place multiply.
	alias := append([]byte(nil), src...)
	MulSliceTo(alias, 7, alias)
	for i := range src {
		if alias[i] != Mul(7, src[i]) {
			t.Fatal("aliased MulSliceTo wrong")
		}
	}
	mustPanicGF(t, "length mismatch", func() { MulSliceTo(dst[:1], 3, src) })
}

// naiveEval is the Pow/Mul reference both Horner kernels must match.
func naiveEval(coeff func(i int) byte, n int, x byte) byte {
	var acc byte
	for i := 0; i < n; i++ {
		acc ^= Mul(coeff(i), Pow(x, i))
	}
	return acc
}

func TestEvalAscAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p := make([]byte, 1+rng.Intn(32))
		rng.Read(p)
		x := byte(rng.Intn(256))
		want := naiveEval(func(i int) byte { return p[i] }, len(p), x)
		if got := EvalAsc(p, x); got != want {
			t.Fatalf("EvalAsc(%v, %d) = %d, want %d", p, x, got, want)
		}
	}
	if EvalAsc(nil, 3) != 0 {
		t.Fatal("empty polynomial must evaluate to 0")
	}
}

func TestEvalDescAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		w := make([]byte, 1+rng.Intn(32))
		rng.Read(w)
		x := byte(rng.Intn(256))
		// word[0] is the highest-degree coefficient.
		want := naiveEval(func(i int) byte { return w[len(w)-1-i] }, len(w), x)
		if got := EvalDesc(w, x); got != want {
			t.Fatalf("EvalDesc(%v, %d) = %d, want %d", w, x, got, want)
		}
	}
}

// TestEvalOrientations pins the asc/desc duality on one concrete word.
func TestEvalOrientations(t *testing.T) {
	p := []byte{5, 3, 1} // asc: 5 + 3x + x^2, desc: 5x^2 + 3x + 1
	rev := []byte{1, 3, 5}
	for x := 0; x < 256; x++ {
		if EvalAsc(p, byte(x)) != EvalDesc(rev, byte(x)) {
			t.Fatalf("asc/desc disagree at x=%d", x)
		}
	}
}

func TestNibbleTable(t *testing.T) {
	for _, c := range []byte{0, 1, 2, 0x1d, 0x80, 255} {
		nt := MakeNibbleTable(c)
		for b := 0; b < 256; b++ {
			if nt.Mul(byte(b)) != Mul(c, byte(b)) {
				t.Fatalf("NibbleTable(%d).Mul(%d) = %d, want %d", c, b, nt.Mul(byte(b)), Mul(c, byte(b)))
			}
		}
	}
}

func TestNibbleTableSliceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := make([]byte, 61)
	rng.Read(src)
	nt := MakeNibbleTable(0x53)

	dst := make([]byte, len(src))
	nt.MulSliceTo(dst, src)
	for i := range src {
		if dst[i] != Mul(0x53, src[i]) {
			t.Fatal("NibbleTable.MulSliceTo wrong")
		}
	}

	acc := make([]byte, len(src))
	rng.Read(acc)
	want := append([]byte(nil), acc...)
	nt.MulSliceXor(acc, src)
	for i := range src {
		if acc[i] != want[i]^Mul(0x53, src[i]) {
			t.Fatal("NibbleTable.MulSliceXor wrong")
		}
	}

	mustPanicGF(t, "MulSliceXor mismatch", func() { nt.MulSliceXor(dst[:2], src) })
	mustPanicGF(t, "MulSliceTo mismatch", func() { nt.MulSliceTo(dst[:2], src) })
}

func TestLogPowEdges(t *testing.T) {
	mustPanicGF(t, "Log(0)", func() { Log(0) })
	if Log(1) != 0 {
		t.Fatalf("Log(1) = %d", Log(1))
	}
	// Log and Exp are inverses on the nonzero field.
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
	if Pow(0, 0) != 1 || Pow(0, 5) != 0 {
		t.Fatal("Pow zero-base convention broken")
	}
	mustPanicGF(t, "Pow(0, -1)", func() { Pow(0, -1) })
	// Negative exponents are inverses: a^-1 * a = 1.
	for a := 1; a < 256; a++ {
		if Mul(Pow(byte(a), -1), byte(a)) != 1 {
			t.Fatalf("Pow(%d, -1) is not the inverse", a)
		}
	}
	if Pow(7, -3) != Inv(Pow(7, 3)) {
		t.Fatal("Pow(a, -e) != Inv(Pow(a, e))")
	}
}

func TestMulSliceEdges(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := []byte{9, 9, 9}
	MulSlice(0, src, dst)
	if !bytes.Equal(dst, []byte{9, 9, 9}) {
		t.Fatal("MulSlice with c=0 must be a no-op")
	}
	mustPanicGF(t, "MulSlice mismatch", func() { MulSlice(3, src, dst[:1]) })
	mustPanicGF(t, "DotProduct mismatch", func() { DotProduct(src, dst[:1]) })
}

func TestMatrixMulVecMismatch(t *testing.T) {
	m := NewMatrix(2, 3)
	mustPanicGF(t, "MulVec mismatch", func() { m.MulVec([]byte{1}) })
}

func TestPolyScaleAndEqual(t *testing.T) {
	p := Polynomial{1, 2, 3}
	if !PolyEqual(PolyScale(p, 1), p) {
		t.Fatal("scale by 1 changed the polynomial")
	}
	if PolyDegree(PolyScale(p, 0)) >= 0 {
		t.Fatal("scale by 0 must give the zero polynomial")
	}
	for x := 0; x < 256; x++ {
		if PolyEval(PolyScale(p, 7), byte(x)) != Mul(7, PolyEval(p, byte(x))) {
			t.Fatalf("PolyScale not pointwise at x=%d", x)
		}
	}
	if PolyEqual(p, Polynomial{1, 2}) {
		t.Fatal("different degrees compared equal")
	}
	if PolyEqual(p, Polynomial{1, 5, 3}) {
		t.Fatal("different coefficients compared equal")
	}
	if !PolyEqual(Polynomial{1, 2, 0, 0}, Polynomial{1, 2}) {
		t.Fatal("trailing zeros must not matter")
	}
}

func TestPolyMulXZero(t *testing.T) {
	if PolyDegree(PolyMulX(Polynomial{}, 3)) >= 0 {
		t.Fatal("shifting the zero polynomial must stay zero")
	}
	got := PolyMulX(Polynomial{1, 2}, 2)
	if !PolyEqual(got, Polynomial{0, 0, 1, 2}) {
		t.Fatalf("PolyMulX shift wrong: %v", got)
	}
}

func TestLagrangeInterpolatePanics(t *testing.T) {
	mustPanicGF(t, "count mismatch", func() { LagrangeInterpolate([]byte{1, 2}, []byte{3}) })
	mustPanicGF(t, "duplicate points", func() { LagrangeInterpolate([]byte{1, 1}, []byte{3, 4}) })
}
