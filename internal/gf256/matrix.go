package gf256

import "fmt"

// Matrix is a dense matrix over GF(2^8), stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []byte
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// MulVec returns m * v.
func (m *Matrix) MulVec(v []byte) []byte {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("gf256: MulVec dimension mismatch %d != %d", len(v), m.Cols))
	}
	out := make([]byte, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = DotProduct(m.Row(r), v)
	}
	return out
}

// SolveLinear solves the square system A*x = b by Gaussian elimination with
// partial pivoting (any nonzero pivot works in a field). It returns the
// solution vector, or ok=false if A is singular. A and b are not modified.
func SolveLinear(a *Matrix, b []byte) (x []byte, ok bool) {
	if a.Rows != a.Cols || len(b) != a.Rows {
		panic("gf256: SolveLinear requires a square system")
	}
	n := a.Rows
	m := a.Clone()
	rhs := make([]byte, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		m.SwapRows(col, pivot)
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]

		inv := Inv(m.At(col, col))
		row := m.Row(col)
		for c := col; c < n; c++ {
			row[c] = Mul(row[c], inv)
		}
		rhs[col] = Mul(rhs[col], inv)

		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := m.At(r, col)
			if factor == 0 {
				continue
			}
			target := m.Row(r)
			for c := col; c < n; c++ {
				target[c] ^= Mul(factor, row[c])
			}
			rhs[r] ^= Mul(factor, rhs[col])
		}
	}
	return rhs, true
}

// Vandermonde returns the n x k matrix with entry (i, j) = xs[i]^j.
// It is the generator matrix of an evaluation-style Reed-Solomon code.
func Vandermonde(xs []byte, k int) *Matrix {
	m := NewMatrix(len(xs), k)
	for i, x := range xs {
		v := byte(1)
		for j := 0; j < k; j++ {
			m.Set(i, j, v)
			v = Mul(v, x)
		}
	}
	return m
}
