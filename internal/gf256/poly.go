package gf256

// Polynomial represents a polynomial over GF(2^8) in ascending-power order:
// p[i] is the coefficient of x^i. The zero polynomial is represented by an
// empty (or all-zero) slice.
type Polynomial []byte

// PolyDegree returns the degree of p, or -1 for the zero polynomial.
func PolyDegree(p Polynomial) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// PolyTrim returns p with trailing zero coefficients removed.
func PolyTrim(p Polynomial) Polynomial {
	d := PolyDegree(p)
	return p[:d+1]
}

// PolyAdd returns a + b.
func PolyAdd(a, b Polynomial) Polynomial {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Polynomial, n)
	copy(out, a)
	for i := range b {
		out[i] ^= b[i]
	}
	return PolyTrim(out)
}

// PolyScale returns c * p.
func PolyScale(p Polynomial, c byte) Polynomial {
	out := make(Polynomial, len(p))
	for i := range p {
		out[i] = Mul(p[i], c)
	}
	return PolyTrim(out)
}

// PolyMul returns a * b.
func PolyMul(a, b Polynomial) Polynomial {
	da, db := PolyDegree(a), PolyDegree(b)
	if da < 0 || db < 0 {
		return Polynomial{}
	}
	out := make(Polynomial, da+db+1)
	for i := 0; i <= da; i++ {
		if a[i] == 0 {
			continue
		}
		la := int(logTable[a[i]])
		for j := 0; j <= db; j++ {
			if b[j] != 0 {
				out[i+j] ^= expTable[la+int(logTable[b[j]])]
			}
		}
	}
	return out
}

// PolyMulX returns p * x^n (shift up by n).
func PolyMulX(p Polynomial, n int) Polynomial {
	d := PolyDegree(p)
	if d < 0 {
		return Polynomial{}
	}
	out := make(Polynomial, d+1+n)
	copy(out[n:], p[:d+1])
	return out
}

// PolyDivMod returns the quotient and remainder of a / b.
// It panics if b is the zero polynomial.
func PolyDivMod(a, b Polynomial) (q, r Polynomial) {
	db := PolyDegree(b)
	if db < 0 {
		panic("gf256: polynomial division by zero")
	}
	r = make(Polynomial, len(a))
	copy(r, a)
	dr := PolyDegree(r)
	if dr < db {
		return Polynomial{}, PolyTrim(r)
	}
	q = make(Polynomial, dr-db+1)
	lead := Inv(b[db])
	for dr >= db {
		c := Mul(r[dr], lead)
		q[dr-db] = c
		for i := 0; i <= db; i++ {
			r[dr-db+i] ^= Mul(c, b[i])
		}
		dr = PolyDegree(r)
	}
	return PolyTrim(q), PolyTrim(r)
}

// PolyEval evaluates p at x using Horner's rule.
func PolyEval(p Polynomial, x byte) byte {
	var acc byte
	for i := len(p) - 1; i >= 0; i-- {
		acc = Mul(acc, x) ^ p[i]
	}
	return acc
}

// PolyDeriv returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish and odd-power terms shift down.
func PolyDeriv(p Polynomial) Polynomial {
	if len(p) <= 1 {
		return Polynomial{}
	}
	out := make(Polynomial, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return PolyTrim(out)
}

// PolyFromRoots returns prod_i (x - roots[i]) = prod_i (x + roots[i]).
func PolyFromRoots(roots []byte) Polynomial {
	out := Polynomial{1}
	for _, r := range roots {
		out = PolyMul(out, Polynomial{r, 1})
	}
	return out
}

// PolyEqual reports whether a and b denote the same polynomial
// (ignoring trailing zeros).
func PolyEqual(a, b Polynomial) bool {
	da, db := PolyDegree(a), PolyDegree(b)
	if da != db {
		return false
	}
	for i := 0; i <= da; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LagrangeInterpolate returns the unique polynomial of degree < len(xs)
// passing through the points (xs[i], ys[i]). The xs must be distinct;
// it panics otherwise.
func LagrangeInterpolate(xs, ys []byte) Polynomial {
	if len(xs) != len(ys) {
		panic("gf256: interpolation point count mismatch")
	}
	n := len(xs)
	result := make(Polynomial, n)
	// master(x) = prod (x - xs[i])
	master := PolyFromRoots(xs)
	for i := 0; i < n; i++ {
		// li(x) = master / (x - xs[i]) scaled so li(xs[i]) = 1.
		num, rem := PolyDivMod(master, Polynomial{xs[i], 1})
		if PolyDegree(rem) >= 0 {
			panic("gf256: interpolation master polynomial not divisible")
		}
		denom := PolyEval(num, xs[i])
		if denom == 0 {
			panic("gf256: duplicate interpolation points")
		}
		c := Div(ys[i], denom)
		for j := range num {
			result[j] ^= Mul(num[j], c)
		}
	}
	return PolyTrim(result)
}
