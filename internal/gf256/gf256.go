// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed modulo the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the polynomial used by most
// storage-oriented Reed-Solomon codes. The generator element is
// alpha = 0x02.
//
// All operations are table-driven and allocation-free; the package is the
// arithmetic substrate for the Reed-Solomon codecs in internal/rs.
package gf256

import "fmt"

// Poly is the primitive polynomial defining the field, with the x^8 term
// included (bit 8 set).
const Poly = 0x11D

// Alpha is the primitive element (generator) of the multiplicative group.
const Alpha = 0x02

// Order is the number of elements in the multiplicative group (2^8 - 1).
const Order = 255

var (
	expTable [512]byte // expTable[i] = alpha^i, doubled to avoid mod in Mul
	logTable [256]byte // logTable[x] = log_alpha(x); logTable[0] is unused
	invTable [256]byte // invTable[x] = x^-1; invTable[0] is unused
)

func init() {
	x := 1
	for i := 0; i < Order; i++ {
		expTable[i] = byte(x)
		expTable[i+Order] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	// Fill the tail of expTable so Exp(i) works for i in [0,511].
	expTable[2*Order] = expTable[0]
	expTable[2*Order+1] = expTable[1]
	for i := 1; i < 256; i++ {
		invTable[i] = expTable[Order-int(logTable[i])]
	}
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub is identical to Add.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8) (identical to Add in characteristic 2).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+Order-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invTable[a]
}

// Exp returns alpha^e for any non-negative exponent e.
func Exp(e int) byte {
	if e < 0 {
		e = e%Order + Order
	}
	return expTable[e%Order]
}

// Log returns log_alpha(a). It panics if a == 0 (zero has no logarithm).
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^e in GF(2^8) for any integer exponent e (negative exponents
// use the inverse). Pow(0, 0) is defined as 1; Pow(0, e) for e > 0 is 0 and
// for e < 0 panics.
func Pow(a byte, e int) byte {
	if a == 0 {
		if e == 0 {
			return 1
		}
		if e < 0 {
			panic("gf256: negative power of zero")
		}
		return 0
	}
	if e == 0 {
		return 1
	}
	l := int(logTable[a]) * e
	l %= Order
	if l < 0 {
		l += Order
	}
	return expTable[l]
}

// MulSlice computes dst[i] ^= c * src[i] for all i. dst and src must have
// the same length. It is the inner loop of systematic RS encoding.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf256: MulSlice length mismatch %d != %d", len(src), len(dst)))
	}
	if c == 0 {
		return
	}
	lc := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+int(logTable[s])]
		}
	}
}

// DotProduct returns sum_i a[i]*b[i] over GF(2^8).
func DotProduct(a, b []byte) byte {
	if len(a) != len(b) {
		panic(fmt.Sprintf("gf256: DotProduct length mismatch %d != %d", len(a), len(b)))
	}
	var acc byte
	for i := range a {
		acc ^= Mul(a[i], b[i])
	}
	return acc
}
