package gf256

// This file holds the allocation-free, bounds-check-friendly kernels the
// hot codec paths (internal/rs) are built on: a full 64 KiB multiplication
// table with per-constant row access, fused Horner evaluation steps, and
// 4-bit nibble-split tables for long-slice multiplication where a full row
// would thrash the cache.

// mulTab[a][b] = a*b over GF(2^8). 64 KiB; a row (fixed first operand) is
// four cache lines, which makes constant-times-variable inner loops a
// single branch-free lookup per element.
var mulTab [256][256]byte

func init() {
	// gf256.go's init (sorted first in the package) has already built
	// expTable/logTable.
	for a := 1; a < 256; a++ {
		la := int(logTable[a])
		row := &mulTab[a]
		for b := 1; b < 256; b++ {
			row[b] = expTable[la+int(logTable[b])]
		}
	}
}

// Row returns the multiplication row of c: Row(c)[b] == Mul(c, b) for all
// b. The row is shared and read-only; callers keep the pointer across an
// inner loop so each product is one table lookup with no branches.
func Row(c byte) *[256]byte { return &mulTab[c] }

// MulSliceTo computes dst[i] = c * src[i] for all i. dst and src must have
// the same length; they may alias. It is the scatter-free counterpart of
// MulSlice (which accumulates with ^=).
func MulSliceTo(dst []byte, c byte, src []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSliceTo length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	row := &mulTab[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// EvalAsc evaluates the ascending-power polynomial p (p[i] the x^i
// coefficient) at x with a fused table-row Horner step: one lookup and one
// XOR per coefficient, no branches.
func EvalAsc(p []byte, x byte) byte {
	row := &mulTab[x]
	var acc byte
	for i := len(p) - 1; i >= 0; i-- {
		acc = row[acc] ^ p[i]
	}
	return acc
}

// EvalDesc evaluates word as a descending-power polynomial (word[0] the
// highest-degree coefficient) at x — the orientation Reed-Solomon syndrome
// computation uses.
func EvalDesc(word []byte, x byte) byte {
	row := &mulTab[x]
	var acc byte
	for _, w := range word {
		acc = row[acc] ^ w
	}
	return acc
}

// NibbleTable is the 4-bit split multiplication table of a constant c:
// 32 bytes covering both nibbles, so c*b = lo[b&15] ^ hi[b>>4]. For long
// slices with a changing constant it beats a full 256-byte row because the
// whole table stays in registers/L1 regardless of the data distribution.
type NibbleTable struct {
	lo, hi [16]byte
}

// MakeNibbleTable builds the nibble-split table of c.
func MakeNibbleTable(c byte) NibbleTable {
	var t NibbleTable
	if c == 0 {
		return t
	}
	row := &mulTab[c]
	for i := 0; i < 16; i++ {
		t.lo[i] = row[i]
		t.hi[i] = row[i<<4]
	}
	return t
}

// Mul returns c*b using the table.
func (t *NibbleTable) Mul(b byte) byte { return t.lo[b&0x0f] ^ t.hi[b>>4] }

// MulSliceXor computes dst[i] ^= c*src[i] branch-free.
func (t *NibbleTable) MulSliceXor(dst, src []byte) {
	if len(src) != len(dst) {
		panic("gf256: NibbleTable.MulSliceXor length mismatch")
	}
	for i, s := range src {
		dst[i] ^= t.lo[s&0x0f] ^ t.hi[s>>4]
	}
}

// MulSliceTo computes dst[i] = c*src[i] branch-free.
func (t *NibbleTable) MulSliceTo(dst, src []byte) {
	if len(src) != len(dst) {
		panic("gf256: NibbleTable.MulSliceTo length mismatch")
	}
	for i, s := range src {
		dst[i] = t.lo[s&0x0f] ^ t.hi[s>>4]
	}
}
