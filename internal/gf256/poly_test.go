package gf256

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoly(rng *rand.Rand, maxDeg int) Polynomial {
	n := rng.Intn(maxDeg + 1)
	p := make(Polynomial, n+1)
	for i := range p {
		p[i] = byte(rng.Intn(256))
	}
	return p
}

func TestPolyDegree(t *testing.T) {
	cases := []struct {
		p Polynomial
		d int
	}{
		{Polynomial{}, -1},
		{Polynomial{0}, -1},
		{Polynomial{0, 0, 0}, -1},
		{Polynomial{5}, 0},
		{Polynomial{0, 1}, 1},
		{Polynomial{1, 0, 7, 0}, 2},
	}
	for i, c := range cases {
		if PolyDegree(c.p) != c.d {
			t.Fatalf("case %d: degree %d, want %d", i, PolyDegree(c.p), c.d)
		}
	}
}

func TestPolyAddSelfIsZero(t *testing.T) {
	p := Polynomial{1, 2, 3, 4}
	if PolyDegree(PolyAdd(p, p)) != -1 {
		t.Fatal("p + p must be zero")
	}
}

func TestPolyMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b, c := randPoly(rng, 8), randPoly(rng, 8), randPoly(rng, 8)
		left := PolyMul(a, PolyAdd(b, c))
		right := PolyAdd(PolyMul(a, b), PolyMul(a, c))
		if !PolyEqual(left, right) {
			t.Fatalf("distributivity failed: a=%v b=%v c=%v", a, b, c)
		}
	}
}

func TestPolyMulDegreeAdds(t *testing.T) {
	a := Polynomial{1, 1}    // x + 1
	b := Polynomial{2, 0, 1} // x^2 + 2
	if d := PolyDegree(PolyMul(a, b)); d != 3 {
		t.Fatalf("degree of product = %d, want 3", d)
	}
}

func TestPolyDivModRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a := randPoly(rng, 12)
		b := randPoly(rng, 6)
		if PolyDegree(b) < 0 {
			continue
		}
		q, r := PolyDivMod(a, b)
		if PolyDegree(r) >= PolyDegree(b) {
			t.Fatalf("remainder degree %d >= divisor degree %d", PolyDegree(r), PolyDegree(b))
		}
		back := PolyAdd(PolyMul(q, b), r)
		if !PolyEqual(back, a) {
			t.Fatalf("q*b + r != a: a=%v b=%v q=%v r=%v", a, b, q, r)
		}
	}
}

func TestPolyDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero polynomial did not panic")
		}
	}()
	PolyDivMod(Polynomial{1, 2}, Polynomial{0})
}

func TestPolyEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x^2 at x = alpha
	p := Polynomial{3, 2, 1}
	x := byte(Alpha)
	want := byte(3) ^ Mul(2, x) ^ Mul(1, Mul(x, x))
	if PolyEval(p, x) != want {
		t.Fatal("PolyEval mismatch")
	}
	if PolyEval(Polynomial{}, 5) != 0 {
		t.Fatal("eval of zero polynomial must be 0")
	}
	if PolyEval(p, 0) != 3 {
		t.Fatal("eval at 0 must give constant term")
	}
}

func TestPolyFromRootsHasThoseRoots(t *testing.T) {
	roots := []byte{1, 2, 4, 8, 16}
	p := PolyFromRoots(roots)
	if PolyDegree(p) != len(roots) {
		t.Fatalf("degree %d, want %d", PolyDegree(p), len(roots))
	}
	for _, r := range roots {
		if PolyEval(p, r) != 0 {
			t.Fatalf("root %d not a root", r)
		}
	}
	// A non-root must not evaluate to zero (it would make p reducible twice).
	if PolyEval(p, 3) == 0 {
		t.Fatal("non-root evaluates to zero")
	}
}

func TestPolyDeriv(t *testing.T) {
	// d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
	p := Polynomial{9, 7, 5, 3}
	d := PolyDeriv(p)
	want := Polynomial{7, 0, 3}
	if !PolyEqual(d, want) {
		t.Fatalf("deriv = %v, want %v", d, want)
	}
	if PolyDegree(PolyDeriv(Polynomial{42})) != -1 {
		t.Fatal("derivative of constant must be zero")
	}
}

func TestLagrangeInterpolateRecoversPolynomial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(16)
		p := make(Polynomial, k)
		for i := range p {
			p[i] = byte(rng.Intn(256))
		}
		xs := make([]byte, k)
		perm := rng.Perm(255)
		for i := 0; i < k; i++ {
			xs[i] = byte(perm[i] + 1)
		}
		ys := make([]byte, k)
		for i := range xs {
			ys[i] = PolyEval(p, xs[i])
		}
		got := LagrangeInterpolate(xs, ys)
		// got and p agree on k points and both have degree < k, so they
		// must be identical.
		if !PolyEqual(got, PolyTrim(p)) {
			t.Fatalf("interpolation mismatch: got %v want %v", got, p)
		}
	}
}

func TestLagrangeDuplicatePointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate interpolation points did not panic")
		}
	}()
	LagrangeInterpolate([]byte{1, 1}, []byte{2, 3})
}

func TestPolyMulXShifts(t *testing.T) {
	p := Polynomial{5, 6}
	q := PolyMulX(p, 3)
	want := Polynomial{0, 0, 0, 5, 6}
	if !PolyEqual(q, want) {
		t.Fatalf("PolyMulX = %v, want %v", q, want)
	}
}

func TestPolyEvalLinearity(t *testing.T) {
	f := func(a0, a1, b0, b1, x byte) bool {
		pa := Polynomial{a0, a1}
		pb := Polynomial{b0, b1}
		return PolyEval(PolyAdd(pa, pb), x) == (PolyEval(pa, x) ^ PolyEval(pb, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
