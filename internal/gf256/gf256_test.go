package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXorAndSelfInverse(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b += 17 {
			x, y := byte(a), byte(b)
			if Add(x, y) != x^y {
				t.Fatalf("Add(%d,%d) != xor", x, y)
			}
			if Add(Add(x, y), y) != x {
				t.Fatalf("Add not self-inverse at %d,%d", x, y)
			}
			if Sub(x, y) != Add(x, y) {
				t.Fatalf("Sub != Add at %d,%d", x, y)
			}
		}
	}
}

func TestMulTableAgainstSlowMul(t *testing.T) {
	// Reference: carry-less multiply reduced mod Poly.
	slow := func(a, b byte) byte {
		var p uint16
		x, y := uint16(a), uint16(b)
		for i := 0; i < 8; i++ {
			if y&1 != 0 {
				p ^= x
			}
			y >>= 1
			x <<= 1
			if x&0x100 != 0 {
				x ^= Poly
			}
		}
		return byte(p)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), slow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("Mul(%d, 1) != %d", a, a)
		}
		if Mul(byte(a), 0) != 0 || Mul(0, byte(a)) != 0 {
			t.Fatalf("Mul by zero not zero at %d", a)
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivInvRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%d)=%d is not an inverse", a, inv)
		}
		for b := 1; b < 256; b += 31 {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%d,%d)*%d != %d", a, b, b, a)
			}
		}
	}
	if Div(0, 7) != 0 {
		t.Fatal("Div(0, x) must be 0")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(3, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for e := 0; e < Order; e++ {
		if Log(Exp(e)) != e {
			t.Fatalf("Log(Exp(%d)) = %d", e, Log(Exp(e)))
		}
	}
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
	if Exp(Order) != 1 {
		t.Fatal("alpha^255 must be 1")
	}
	if Exp(-3) != Exp(Order-3) {
		t.Fatal("negative exponent handling broken")
	}
}

func TestAlphaGeneratesField(t *testing.T) {
	seen := make(map[byte]bool)
	x := byte(1)
	for i := 0; i < Order; i++ {
		if seen[x] {
			t.Fatalf("alpha is not primitive: repeat at power %d", i)
		}
		seen[x] = true
		x = Mul(x, Alpha)
	}
	if len(seen) != Order {
		t.Fatalf("multiplicative group has %d elements, want %d", len(seen), Order)
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Fatal("Pow(0,0) must be 1")
	}
	if Pow(0, 5) != 0 {
		t.Fatal("Pow(0,5) must be 0")
	}
	for a := 1; a < 256; a += 13 {
		acc := byte(1)
		for e := 0; e < 10; e++ {
			if Pow(byte(a), e) != acc {
				t.Fatalf("Pow(%d,%d) mismatch", a, e)
			}
			acc = Mul(acc, byte(a))
		}
		// Negative exponent: a^-1 == Inv(a).
		if Pow(byte(a), -1) != Inv(byte(a)) {
			t.Fatalf("Pow(%d,-1) != Inv", a)
		}
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := []byte{10, 20, 30, 40, 50}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = dst[i] ^ Mul(7, src[i])
	}
	MulSlice(7, src, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
	// c == 0 must be a no-op.
	before := append([]byte(nil), dst...)
	MulSlice(0, src, dst)
	for i := range before {
		if dst[i] != before[i] {
			t.Fatal("MulSlice with c=0 modified dst")
		}
	}
}

func TestDotProduct(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	want := Mul(1, 4) ^ Mul(2, 5) ^ Mul(3, 6)
	if DotProduct(a, b) != want {
		t.Fatal("DotProduct mismatch")
	}
}
