// Bitsliced GF(2^8) kernels: 64 field elements packed as 8 bit-planes.
//
// Multiplication by a constant is GF(2)-linear in the bits of the input,
// so over the bit-plane representation it becomes a fixed XOR network
// across planes — every 64-bit XOR advances all 64 elements at once, and
// no table lookups or per-byte masking survive in the inner loop. This is
// the representation behind the slab codec in internal/rs: syndrome
// sweeps there run the networks for multiply-by-alpha^k directly on slab
// planes, and fall back to MulXorPlanes for arbitrary constants.
package gf256

import "encoding/binary"

// Planes is the bitsliced image of 64 field elements: bit b of Planes[i]
// is bit i of element b.
type Planes [8]uint64

const (
	packLo     = 0x0101010101010101 // one bit per byte lane
	packGather = 0x0102040810204080 // folds the 8 spread bits into the top byte
)

// PackPlanes transposes the 64 elements of col into their bitsliced
// image, overwriting dst.
func PackPlanes(dst *Planes, col *[64]byte) {
	*dst = Planes{}
	for w := 0; w < 8; w++ {
		lane := binary.LittleEndian.Uint64(col[w*8:])
		sh := uint(8 * w)
		for i := 0; i < 8; i++ {
			dst[i] |= ((lane >> uint(i) & packLo) * packGather >> 56) << sh
		}
	}
}

// UnpackPlanes transposes the bitsliced image back into 64 elements,
// overwriting col. It is the inverse of PackPlanes.
func UnpackPlanes(col *[64]byte, src *Planes) {
	for w := 0; w < 8; w++ {
		sh := uint(8 * w)
		var t uint64
		for i := 0; i < 8; i++ {
			t |= (src[i] >> sh & 0xff) << uint(8*i)
		}
		for b := 0; b < 8; b++ {
			col[w*8+b] = byte((t >> uint(b) & packLo) * packGather >> 56)
		}
	}
}

// MulXorPlanes accumulates dst ^= c*src over the 64 packed elements.
// The multiplication matrix of c is applied column by column as
// branch-free masked XORs. dst and src must not overlap.
func MulXorPlanes(dst, src *Planes, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range dst {
			dst[i] ^= src[i]
		}
		return
	}
	for j := 0; j < 8; j++ {
		col := Mul(c, 1<<j) // image of input bit j under multiply-by-c
		v := src[j]
		dst[0] ^= v & -uint64(col&1)
		dst[1] ^= v & -uint64(col>>1&1)
		dst[2] ^= v & -uint64(col>>2&1)
		dst[3] ^= v & -uint64(col>>3&1)
		dst[4] ^= v & -uint64(col>>4&1)
		dst[5] ^= v & -uint64(col>>5&1)
		dst[6] ^= v & -uint64(col>>6&1)
		dst[7] ^= v & -uint64(col>>7&1)
	}
}
