package gf256

import (
	"math/rand"
	"testing"
)

// randElems draws 64 pseudo-random field elements.
func randElems(rng *rand.Rand) [64]byte {
	var col [64]byte
	rng.Read(col[:])
	return col
}

func TestPackUnpackPlanesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		col := randElems(rng)
		var p Planes
		PackPlanes(&p, &col)
		// Bit-level definition: bit b of plane i is bit i of element b.
		for b := 0; b < 64; b++ {
			for i := 0; i < 8; i++ {
				want := uint64(col[b] >> i & 1)
				if got := p[i] >> b & 1; got != want {
					t.Fatalf("plane %d bit %d = %d, want %d", i, b, got, want)
				}
			}
		}
		var back [64]byte
		UnpackPlanes(&back, &p)
		if back != col {
			t.Fatalf("round trip mismatch:\n got %x\nwant %x", back, col)
		}
	}
}

func TestMulXorPlanesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 256; c++ {
		src := randElems(rng)
		acc := randElems(rng)
		var ps, pd Planes
		PackPlanes(&ps, &src)
		PackPlanes(&pd, &acc)
		MulXorPlanes(&pd, &ps, byte(c))
		var got [64]byte
		UnpackPlanes(&got, &pd)
		for b := 0; b < 64; b++ {
			want := acc[b] ^ Mul(byte(c), src[b])
			if got[b] != want {
				t.Fatalf("c=%#x element %d: got %#x, want %#x", c, b, got[b], want)
			}
		}
	}
}
