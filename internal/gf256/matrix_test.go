package gf256

import (
	"math/rand"
	"testing"
)

func TestSolveLinearRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	solved := 0
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = byte(rng.Intn(256))
		}
		want := make([]byte, n)
		for i := range want {
			want[i] = byte(rng.Intn(256))
		}
		b := a.MulVec(want)
		got, ok := SolveLinear(a, b)
		if !ok {
			continue // singular draw; fine
		}
		solved++
		back := a.MulVec(got)
		for i := range b {
			if back[i] != b[i] {
				t.Fatalf("solution does not satisfy system (n=%d)", n)
			}
		}
	}
	if solved < 150 {
		t.Fatalf("too many singular draws: solved only %d/200", solved)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2) // identical rows -> singular
	if _, ok := SolveLinear(a, []byte{1, 2}); ok {
		t.Fatal("singular system reported as solvable")
	}
}

func TestSolveLinearDoesNotMutateInputs(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 7)
	a.Set(1, 1, 2)
	b := []byte{9, 4}
	aCopy := a.Clone()
	bCopy := append([]byte(nil), b...)
	SolveLinear(a, b)
	for i := range a.Data {
		if a.Data[i] != aCopy.Data[i] {
			t.Fatal("SolveLinear mutated A")
		}
	}
	for i := range b {
		if b[i] != bCopy[i] {
			t.Fatal("SolveLinear mutated b")
		}
	}
}

func TestVandermondeMatchesPolyEval(t *testing.T) {
	xs := []byte{1, 2, 3, 4, 5}
	k := 3
	v := Vandermonde(xs, k)
	msg := []byte{7, 11, 13} // polynomial 7 + 11x + 13x^2
	out := v.MulVec(msg)
	for i, x := range xs {
		if out[i] != PolyEval(Polynomial(msg), x) {
			t.Fatalf("Vandermonde eval mismatch at point %d", x)
		}
	}
}

func TestMatrixSwapRows(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Row(0), []byte{1, 2, 3})
	copy(m.Row(1), []byte{4, 5, 6})
	m.SwapRows(0, 1)
	if m.At(0, 0) != 4 || m.At(1, 2) != 3 {
		t.Fatal("SwapRows failed")
	}
	m.SwapRows(1, 1) // no-op
	if m.At(1, 0) != 1 {
		t.Fatal("self-swap corrupted row")
	}
}

func TestNewMatrixInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape did not panic")
		}
	}()
	NewMatrix(0, 3)
}
