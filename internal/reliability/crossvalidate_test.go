package reliability

import (
	"math"
	"math/rand"
	"testing"

	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/stats"
)

// TestSemiAnalyticMatchesRawMonteCarlo validates the methodology behind
// F1/F2: at a BER high enough for raw Monte-Carlo to resolve, the
// binomial-conditioned estimate must agree with direct injection. This is
// the cross-check that justifies trusting the semi-analytic curves at
// BERs raw MC cannot reach.
func TestSemiAnalyticMatchesRawMonteCarlo(t *testing.T) {
	const ber = 3e-4
	for _, scheme := range []ecc.Scheme{
		ecc.NewIECC(dram.DDR4x16()),
		core.MustNew(dram.DDR4x16(), core.BaseConfig()),
	} {
		prof := BuildProfile(scheme, SweepConfig{MaxK: 10, Trials: 8000, Seed: 21})
		analytic := prof.AtBER(ber).Fail()

		rng := rand.New(rand.NewSource(77))
		line := make([]byte, scheme.Org().LineBytes())
		fails := int64(0)
		const trials = 120000
		for i := 0; i < trials; i++ {
			rng.Read(line)
			st := scheme.Encode(line)
			if ecc.InjectInherent(rng, st, ber) == 0 {
				continue
			}
			decoded, claim := scheme.Decode(st)
			if ecc.Classify(line, decoded, claim).IsFailure() {
				fails++
			}
		}
		lo, hi := stats.WilsonInterval(fails, trials)
		// Widen the Wilson bounds slightly for the analytic side's own
		// Monte-Carlo error.
		lo *= 0.7
		hi = hi*1.3 + 1e-9
		if analytic < lo || analytic > hi {
			t.Fatalf("%s: analytic %.3e outside raw-MC interval [%.3e, %.3e] (%d/%d failures)",
				scheme.Name(), analytic, lo, hi, fails, trials)
		}
		t.Logf("%s: analytic %.3e, raw MC %.3e (n=%d)", scheme.Name(), analytic, float64(fails)/trials, trials)
	}
}

// TestProfileScalesQuadratically pins the k=2-dominated regime: for a t=1
// scheme, halving the BER must quarter the failure probability.
func TestProfileScalesQuadratically(t *testing.T) {
	s := core.MustNew(dram.DDR4x16(), core.BaseConfig())
	prof := BuildProfile(s, SweepConfig{MaxK: 8, Trials: 4000, Seed: 5})
	f1 := prof.AtBER(2e-6).Fail()
	f2 := prof.AtBER(1e-6).Fail()
	ratio := f1 / f2
	if math.Abs(ratio-4) > 0.4 {
		t.Fatalf("quadratic scaling violated: ratio %v, want ~4", ratio)
	}
}

// TestProfileScalesCubicallyForT2 pins the k=3-dominated regime of the
// expanded code.
func TestProfileScalesCubicallyForT2(t *testing.T) {
	s := core.MustNew(dram.DDR4x16(), core.DefaultConfig())
	prof := BuildProfile(s, SweepConfig{MaxK: 8, Trials: 6000, Seed: 6})
	f1 := prof.AtBER(2e-6).Fail()
	f2 := prof.AtBER(1e-6).Fail()
	ratio := f1 / f2
	if math.Abs(ratio-8) > 1.5 {
		t.Fatalf("cubic scaling violated: ratio %v, want ~8", ratio)
	}
}
