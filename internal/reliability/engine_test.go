package reliability

import (
	"math"
	"math/rand"
	"testing"

	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/faults"
)

func smallCfg() SweepConfig { return SweepConfig{MaxK: 6, Trials: 3000, Seed: 7} }

func TestBuildProfileBasicShape(t *testing.T) {
	s := ecc.NewIECC(dram.DDR4x16())
	p := BuildProfile(s, smallCfg())
	if p.TotalBits != 544 {
		t.Fatalf("total bits %d", p.TotalBits)
	}
	if p.PerK[0].OK != 1 || p.PerK[0].Fail() != 0 {
		t.Fatal("k=0 must be all OK")
	}
	// One weak cell is always corrected by IECC.
	if p.PerK[1].Fail() != 0 {
		t.Fatalf("IECC k=1 fail rate %v, want 0", p.PerK[1].Fail())
	}
	if p.PerK[1].CE < 0.99 {
		t.Fatalf("IECC k=1 CE rate %v", p.PerK[1].CE)
	}
	// Two cells fail whenever they land in the same chip (~26%), and
	// rates must sum to ~1.
	f2 := p.PerK[2]
	if f2.Fail() < 0.1 || f2.Fail() > 0.5 {
		t.Fatalf("IECC k=2 fail rate %v implausible", f2.Fail())
	}
	sum := f2.OK + f2.CE + f2.DUE + f2.SDC
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rates sum to %v", sum)
	}
	// IECC's double-cell hazard must include silent corruption.
	if f2.SDC == 0 {
		t.Fatal("IECC k=2 SDC rate is zero — miscorrection missing")
	}
}

func TestProfilePAIRStrongerThanBase(t *testing.T) {
	base := BuildProfile(core.MustNew(dram.DDR4x16(), core.BaseConfig()), smallCfg())
	full := BuildProfile(core.MustNew(dram.DDR4x16(), core.DefaultConfig()), smallCfg())
	// k=2: expanded PAIR corrects everything (t=2 covers any 2 symbols),
	// base fails when the two cells hit different symbols of one chip.
	if full.PerK[2].Fail() != 0 {
		t.Fatalf("PAIR(20,16) k=2 fail %v, want 0", full.PerK[2].Fail())
	}
	if base.PerK[2].Fail() == 0 {
		t.Fatal("PAIR(18,16) k=2 never fails — implausible")
	}
	// k=3: expanded PAIR must fail strictly less often than base.
	if full.PerK[3].Fail() >= base.PerK[3].Fail() {
		t.Fatalf("expansion did not help at k=3: %v >= %v", full.PerK[3].Fail(), base.PerK[3].Fail())
	}
}

func TestAtBERFoldsBinomial(t *testing.T) {
	s := ecc.NewIECC(dram.DDR4x16())
	p := BuildProfile(s, smallCfg())
	r0 := p.AtBER(0)
	if r0.OK != 1 || r0.Fail() != 0 {
		t.Fatal("BER 0 must be all OK")
	}
	lo := p.AtBER(1e-7)
	hi := p.AtBER(1e-4)
	if lo.Fail() >= hi.Fail() {
		t.Fatal("failure rate not increasing in BER")
	}
	// At BER 1e-7 the failure probability must scale like the k=2 term:
	// C(544,2) * ber^2 * P(fail|2).
	want := math.Exp(lchoose(544, 2)) * 1e-14 * p.PerK[2].Fail()
	if lo.Fail() < want/3 || lo.Fail() > want*3 {
		t.Fatalf("low-BER failure %v not ~ %v", lo.Fail(), want)
	}
}

func TestAtBERPanicsOnBadInput(t *testing.T) {
	s := ecc.NewNone(dram.DDR4x16())
	p := BuildProfile(s, SweepConfig{MaxK: 2, Trials: 100, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("invalid BER did not panic")
		}
	}()
	p.AtBER(2)
}

func TestBinomPMFSumsToOne(t *testing.T) {
	n := 100
	for _, p := range []float64{0, 1e-3, 0.5, 1} {
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += binomPMF(n, k, p)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("p=%v: pmf sums to %v", p, sum)
		}
	}
	if binomPMF(10, 0, 0) != 1 || binomPMF(10, 3, 0) != 0 {
		t.Fatal("p=0 edge cases wrong")
	}
	if binomPMF(10, 10, 1) != 1 || binomPMF(10, 9, 1) != 0 {
		t.Fatal("p=1 edge cases wrong")
	}
}

func TestLogspaceBERs(t *testing.T) {
	bers := LogspaceBERs(1e-8, 1e-4, 5)
	if len(bers) != 5 || math.Abs(bers[0]-1e-8) > 1e-20 || math.Abs(bers[4]-1e-4)/1e-4 > 1e-9 {
		t.Fatalf("endpoints wrong: %v", bers)
	}
	for i := 1; i < len(bers); i++ {
		ratio := bers[i] / bers[i-1]
		if math.Abs(ratio-10) > 1e-6 {
			t.Fatalf("not log-spaced: %v", bers)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid range did not panic")
		}
	}()
	LogspaceBERs(0, 1, 3)
}

func TestSweepMonotoneFailure(t *testing.T) {
	s := core.MustNew(dram.DDR4x16(), core.DefaultConfig())
	p := BuildProfile(s, smallCfg())
	pts := p.Sweep(LogspaceBERs(1e-7, 1e-4, 7))
	for i := 1; i < len(pts); i++ {
		if pts[i].Rates.Fail() < pts[i-1].Rates.Fail() {
			t.Fatalf("failure not monotone at %v", pts[i].BER)
		}
	}
}

func TestCoveragePAIRPinVsDUOPin(t *testing.T) {
	pairS := core.MustNew(dram.DDR4x16(), core.DefaultConfig())
	duoS := ecc.NewDUO(dram.DDR4x16())
	inject := func(rng *rand.Rand, st *ecc.Stored) {
		ecc.InjectAccessFault(rng, st, faults.PermanentPin, -1)
	}
	p := Coverage(pairS, "pin", 1000, 3, inject)
	d := Coverage(duoS, "pin", 1000, 3, inject)
	if p.Rates.Fail() != 0 {
		t.Fatalf("PAIR pin-fault fail rate %v, want 0", p.Rates.Fail())
	}
	if d.Rates.Fail() < 0.8 {
		t.Fatalf("DUO pin-fault fail rate %v, want > 0.8", d.Rates.Fail())
	}
}

func TestStandardCoverageLabelsRun(t *testing.T) {
	s := core.MustNew(dram.DDR4x16(), core.DefaultConfig())
	labels := StandardCoverageLabels()
	if len(labels) < 8 {
		t.Fatalf("only %d coverage labels", len(labels))
	}
	for _, l := range labels {
		r := Coverage(s, l.Label, 200, 5, l.Inject)
		sum := r.Rates.OK + r.Rates.CE + r.Rates.DUE + r.Rates.SDC
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: rates sum to %v", l.Label, sum)
		}
	}
}

func TestCoverageDeterministic(t *testing.T) {
	s := ecc.NewIECC(dram.DDR4x16())
	inject := func(rng *rand.Rand, st *ecc.Stored) {
		ecc.InjectAccessFault(rng, st, faults.PermanentCell, -1)
		ecc.InjectAccessFault(rng, st, faults.PermanentCell, -1)
	}
	a := Coverage(s, "2cell", 2000, 42, inject)
	b := Coverage(s, "2cell", 2000, 42, inject)
	if a.Rates != b.Rates {
		t.Fatal("coverage not deterministic for fixed seed")
	}
}
